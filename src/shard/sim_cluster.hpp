// ShardedSimCluster: the sharded twin of harness::run_experiment's cluster
// construction — n physical machines each hosting S Leopard cores (one per
// shard, ids rotated so each shard's leader lands on a different machine),
// per-shard threshold schemes with domain-separated seeds, hash-partitioned
// client groups, and per-node sequencers merging the shard commit streams.
//
// Shared by bench_shard (kreq/s vs S), shard_test (end-to-end S=2 merge),
// and the chaos sharded scenario (merge oracle under faults); the bench and
// the oracles must agree on construction or their numbers describe
// different systems.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "chaos/oracles.hpp"
#include "shard/sim_shard.hpp"
#include "sim/simulator.hpp"

namespace leopard::shard {

/// Deterministic reference re-merge of per-shard Execute streams into the
/// global stream — an independent reimplementation of the Sequencer rule
/// (round-robin by sseq, slot closed by proof sseq > q, incremental
/// emission at the parked cursor) used as the merge oracle: Sequencer
/// output and this function must agree record-for-record.
[[nodiscard]] std::vector<chaos::ExecRecord> reference_merge(
    const std::vector<std::vector<chaos::ExecRecord>>& shard_streams);

struct ShardedClusterConfig {
  std::uint32_t n = 4;
  std::uint32_t shards = 1;
  std::uint32_t payload_size = 128;

  // Per-shard Leopard batch parameters. Large τ·α amortizes per-block leader
  // work so each shard's single core is bound by per-request replica CPU —
  // the resource sharding multiplies (one CPU lane per hosted core).
  std::uint32_t datablock_requests = 2000;
  std::uint32_t bftblock_links = 100;

  double bandwidth_bps = 9.8e9;
  /// TOTAL offered load across all shards (req/s); 0 = auto-saturate at
  /// ~0.9 × shards × single-shard capacity.
  double offered_load = 0;

  std::uint64_t seed = 1;
  sim::SimTime stall_tick = 100 * sim::kMillisecond;
  sim::SimTime proposal_max_wait = 0;   // 0 = library default
  sim::SimTime datablock_max_wait = 0;  // 0 = library default

  /// False builds a quiet cluster with no client groups — liveness tests
  /// drive single shards through ShardedSimNode::inject_local_request.
  bool spawn_clients = true;

  /// Chaos hook: mutate the spec of one (machine, shard) core — e.g. make a
  /// node byzantine in every shard, or in one.
  std::function<void(protocol::ProtocolSpec& spec, sim::NodeId phys, std::uint32_t shard)>
      mutate_spec;
};

class ShardedSimCluster {
 public:
  explicit ShardedSimCluster(ShardedClusterConfig cfg);

  ShardedSimCluster(const ShardedSimCluster&) = delete;
  ShardedSimCluster& operator=(const ShardedSimCluster&) = delete;

  /// Advances simulated time (starts all nodes on the first call).
  void run_until(sim::SimTime t);

  [[nodiscard]] sim::Simulator& sim() { return sim_; }
  [[nodiscard]] sim::Network& net() { return *net_; }
  [[nodiscard]] core::ProtocolMetrics& metrics() { return metrics_; }
  [[nodiscard]] std::uint32_t n() const { return cfg_.n; }
  [[nodiscard]] std::uint32_t shards() const { return cfg_.shards; }
  [[nodiscard]] double offered_load() const { return offered_; }
  [[nodiscard]] ShardedSimNode& node(std::uint32_t i) { return *nodes_.at(i); }
  [[nodiscard]] const ShardedSimNode& node(std::uint32_t i) const { return *nodes_.at(i); }
  [[nodiscard]] std::uint64_t client_acked() const;

  /// The sharded safety oracle: per-node the merged stream must equal the
  /// reference re-merge of its shard streams; per shard every stream must
  /// be monotonic; across replicas the merged streams must be monotonic and
  /// conflict-free at shared global coordinates.
  [[nodiscard]] chaos::OracleResult check_sharded_invariants() const;

 private:
  ShardedClusterConfig cfg_;
  sim::Simulator sim_;
  std::unique_ptr<sim::Network> net_;
  std::vector<crypto::ThresholdScheme> schemes_;  // one per shard
  core::ProtocolMetrics metrics_;
  std::vector<std::unique_ptr<ShardedSimNode>> nodes_;
  std::vector<std::unique_ptr<ShardedSimClient>> clients_;
  double offered_ = 0;
  bool started_ = false;
};

}  // namespace leopard::shard
