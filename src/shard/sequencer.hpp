// Deterministic cross-shard ordering: merges the commit streams of S
// independent protocol shards into ONE global Execute stream that every
// honest replica derives identically from the per-shard consensus outputs
// alone — no extra agreement rounds, no communication.
//
// Model. Shard s runs an unmodified sans-I/O core whose Execute records
// carry shard-local coordinates (sseq, sordinal), strictly increasing
// lexicographically (sseq = BFTblock sn / baseline height, sordinal = link
// index within it). The sequencer interleaves shards round-robin by
// *round*, where round q of shard s is the set of shard-s records with
// sseq == q in sordinal order:
//
//   global order = round 0 of shard 0, round 0 of shard 1, ...,
//                  round 0 of shard S-1, round 1 of shard 0, ...
//
// A round (q, s) may only be passed once its completeness is *proven*: the
// shard-s stream has shown a record with sseq > q (per-shard FIFO delivery
// means nothing at sseq <= q can still arrive). A shard that committed
// nothing at sseq == q contributes an empty round — the Raptr-style
// explicit empty slot — and the global stream simply skips it, the same
// gap semantics the single-instance stream already has across checkpoint
// adoption. Liveness when a shard is idle (it will never prove q on its
// own) is the host's job: after a bounded stall it injects a no-op client
// request (client id >= kNoopClientBase, acks dropped at the env boundary)
// into its local core of the blocking shard; the no-op commits through
// ordinary consensus at the shard's next sn, simultaneously filling the
// stalled round and proving every earlier one.
//
// Global coordinates. An emitted record keeps its round as the global
// sequence number and packs its provenance into the ordinal:
//
//   gseq     = q
//   gordinal = shard << 20 | sordinal        (shard < 4096, sordinal < 2^20)
//
// which is strictly increasing in emission order, so the PR6 durability
// stack (WAL, snapshots, state transfer) consumes the merged stream
// completely unchanged — (seq, ordinal) remains the durable-commit
// identity, and `advance_to` re-seats the cursor from a recovered tail.
//
// Determinism argument: the emitted prefix is a pure function of the S
// shard streams (each agreed by consensus) — the merge rule references
// only (sseq, sordinal) and the round-robin cursor, never arrival time.
// Arrival interleaving across shards changes *when* records are emitted,
// never their order (tests/shard_test.cpp sweeps interleavings).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "protocol/protocol.hpp"

namespace leopard::shard {

/// gordinal layout: high bits shard, low bits shard-local ordinal.
inline constexpr std::uint32_t kShardOrdinalBits = 20;
inline constexpr std::uint32_t kMaxShardOrdinal = (1u << kShardOrdinalBits) - 1;
/// Hard cap on the shard count (gordinal leaves 12 bits of shard id).
inline constexpr std::uint32_t kMaxShards = 1u << (32 - kShardOrdinalBits);

/// Transport ids at or above this base are pseudo-clients with no network
/// presence: every shard env drops sends addressed to them instead of
/// handing them to the network. Hosts (and tests) use this range for any
/// locally-injected request whose acks have no consumer.
inline constexpr sim::NodeId kNoopClientBase = 0xF0000000u;

/// Sub-range of the pseudo-client space reserved for stall FILLER no-ops
/// (kFillerClientBase + physical replica id). Only requests from this range
/// mark a block as filler for is_filler_block(); pseudo-clients below it
/// (ack-dropped, but semantically real payloads) still count as real work.
inline constexpr sim::NodeId kFillerClientBase = 0xF8000000u;

[[nodiscard]] constexpr std::uint32_t pack_ordinal(std::uint32_t shard,
                                                   std::uint32_t shard_ordinal) {
  return (shard << kShardOrdinalBits) | shard_ordinal;
}
[[nodiscard]] constexpr std::uint32_t ordinal_shard(std::uint32_t gordinal) {
  return gordinal >> kShardOrdinalBits;
}
[[nodiscard]] constexpr std::uint32_t ordinal_within(std::uint32_t gordinal) {
  return gordinal & kMaxShardOrdinal;
}

/// Stable request→shard partition used by every client driver (sim and
/// TCP): splitmix64 over (client_id, request index) so load spreads evenly
/// without coordination and every driver computes the same assignment.
[[nodiscard]] std::uint32_t shard_of(std::uint64_t client_id, std::uint64_t index,
                                     std::uint32_t shards);

/// True when `block` carries only liveness-filler content: a datablock all
/// of whose requests come from filler pseudo-clients (or an empty one). The
/// stall logic injects no-ops only while REAL records wait behind the
/// cursor — a filler commit lands one round ahead of the cursor and would
/// otherwise re-arm the stall detector forever (perpetual heartbeat);
/// trailing filler may instead stay buffered until real traffic resumes.
[[nodiscard]] bool is_filler_block(const sim::Payload& block);

/// One record of the merged global stream. `exec.seq`/`exec.ordinal` carry
/// the GLOBAL coordinates; the shard-local provenance rides alongside for
/// reports and oracles.
struct GlobalRecord {
  std::uint32_t shard = 0;
  std::uint64_t shard_seq = 0;
  std::uint32_t shard_ordinal = 0;
  protocol::Execute exec;
};

class Sequencer {
 public:
  using Sink = std::function<void(const GlobalRecord&)>;

  /// `shards` in [1, kMaxShards]. `sink` receives merged records in global
  /// order, synchronously from inside push()/advance_to().
  Sequencer(std::uint32_t shards, Sink sink);

  /// Feeds one shard-local Execute record (exec.seq/ordinal are the SHARD
  /// coordinates). Per-shard records must arrive in stream order; records
  /// at or below the emitted floor (restart re-emissions) are dropped and
  /// counted, returning false. May emit any number of records through the
  /// sink before returning.
  bool push(std::uint32_t shard, const protocol::Execute& exec);

  /// Fast-forwards past a durable tail (gseq, gordinal) recovered from the
  /// WAL/snapshot or adopted via state transfer: the cursor re-seats just
  /// after that global record and anything at or before it is pruned as
  /// already-executed. A target behind the current cursor is a no-op.
  void advance_to(std::uint64_t gseq, std::uint32_t gordinal);

  /// Current round (the global seq the merge is working on).
  [[nodiscard]] std::uint64_t round() const { return round_; }
  /// The shard the cursor is waiting on.
  [[nodiscard]] std::uint32_t cursor_shard() const { return cursor_; }
  /// Total records emitted through the sink.
  [[nodiscard]] std::uint64_t emitted() const { return emitted_; }
  /// True when some shard has progressed beyond the cursor's round while
  /// the merge is blocked — the signal that stall no-ops are warranted (a
  /// fully idle system has no backlog and injects nothing).
  [[nodiscard]] bool has_backlog() const;
  [[nodiscard]] std::uint64_t duplicates_dropped() const { return duplicates_dropped_; }
  [[nodiscard]] std::uint32_t shards() const { return static_cast<std::uint32_t>(states_.size()); }

 private:
  struct ShardState {
    /// Buffered records beyond the cursor, keyed by (sseq, sordinal).
    std::map<std::pair<std::uint64_t, std::uint32_t>, GlobalRecord> buffer;
    /// Lexicographic floor: pushes strictly below are duplicates.
    std::pair<std::uint64_t, std::uint32_t> floor{0, 0};
    /// Highest sseq observed (valid when seen) — the completeness proof.
    std::uint64_t frontier = 0;
    bool seen = false;
  };

  /// Emits everything emittable at the cursor and advances it as far as
  /// proofs allow.
  void pump();

  Sink sink_;
  std::vector<ShardState> states_;
  std::uint64_t round_ = 0;   // global seq under construction
  std::uint32_t cursor_ = 0;  // shard whose slot of round_ is open
  std::uint64_t emitted_ = 0;
  std::uint64_t duplicates_dropped_ = 0;
};

}  // namespace leopard::shard
