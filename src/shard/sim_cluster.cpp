#include "shard/sim_cluster.hpp"

#include <algorithm>
#include <string>

#include "harness/experiment.hpp"
#include "util/check.hpp"

namespace leopard::shard {

std::vector<chaos::ExecRecord> reference_merge(
    const std::vector<std::vector<chaos::ExecRecord>>& shard_streams) {
  const auto shards = static_cast<std::uint32_t>(shard_streams.size());
  std::vector<chaos::ExecRecord> out;
  std::vector<std::size_t> next(shards, 0);
  for (std::uint64_t q = 0;; ++q) {
    for (std::uint32_t s = 0; s < shards; ++s) {
      const auto& stream = shard_streams[s];
      auto& idx = next[s];
      // Emit this shard's round-q records (incremental emission: they come
      // out even if the slot never closes).
      while (idx < stream.size() && stream[idx].seq == q) {
        out.push_back(chaos::ExecRecord{q, pack_ordinal(s, stream[idx].ordinal),
                                        stream[idx].fingerprint, stream[idx].requests});
        ++idx;
      }
      // The slot closes only on proof sseq > q; without it the cursor parks
      // here forever.
      if (idx >= stream.size()) return out;
    }
  }
}

ShardedSimCluster::ShardedSimCluster(ShardedClusterConfig cfg) : cfg_(std::move(cfg)) {
  util::expects(cfg_.n >= 4, "sharded cluster requires n >= 4");
  util::expects(cfg_.shards >= 1 && cfg_.shards <= kMaxShards, "bad shard count");

  sim::NetworkConfig net_cfg;
  net_cfg.default_out_bps = cfg_.bandwidth_bps;
  net_cfg.default_in_bps = cfg_.bandwidth_bps;
  net_ = std::make_unique<sim::Network>(sim_, net_cfg);

  const std::uint32_t f = (cfg_.n - 1) / 3;
  // Per-shard crypto domain separation: shard s signs under seed + s, so a
  // share never verifies across shards.
  schemes_.reserve(cfg_.shards);
  for (std::uint32_t s = 0; s < cfg_.shards; ++s) {
    schemes_.emplace_back(cfg_.n, 2 * f + 1, cfg_.seed + s);
  }

  // Single-shard capacity from the harness model. Each machine runs one CPU
  // lane per hosted core, so shards multiply CPU capacity; only the shared
  // NIC carries S× the wire load, and at these payloads it has the headroom.
  harness::ExperimentConfig est;
  est.protocol = harness::Protocol::kLeopard;
  est.n = cfg_.n;
  est.payload_size = cfg_.payload_size;
  est.datablock_requests = cfg_.datablock_requests;
  est.bftblock_links = cfg_.bftblock_links;
  est.bandwidth_bps = cfg_.bandwidth_bps;
  const double per_shard_cap = harness::estimate_capacity(est);
  offered_ = cfg_.offered_load > 0 ? cfg_.offered_load
                                   : 0.9 * per_shard_cap * cfg_.shards;

  core::LeopardConfig lcfg;
  lcfg.n = cfg_.n;
  lcfg.datablock_requests = cfg_.datablock_requests;
  lcfg.bftblock_links = cfg_.bftblock_links;
  lcfg.payload_size = cfg_.payload_size;
  lcfg.mempool_capacity = std::max<std::uint32_t>(3 * cfg_.datablock_requests, 4000);
  if (cfg_.proposal_max_wait > 0) lcfg.proposal_max_wait = cfg_.proposal_max_wait;
  if (cfg_.datablock_max_wait > 0) lcfg.datablock_max_wait = cfg_.datablock_max_wait;
  // Same rationale as the harness: saturation legitimately queues deep;
  // spurious view changes are a different experiment.
  lcfg.view_timeout = 3600 * sim::kSecond;

  const sim::NodeId leader_core = 1 % cfg_.n;

  // --- Replica machines (phys ids 0..n-1, in registration order) ----------
  for (std::uint32_t phys = 0; phys < cfg_.n; ++phys) {
    auto spec_for = [&, phys](std::uint32_t s) {
      protocol::ProtocolSpec spec;
      spec.config = lcfg;
      if (cfg_.mutate_spec) cfg_.mutate_spec(spec, phys, s);
      return spec;
    };
    auto node = std::make_unique<ShardedSimNode>(*net_, metrics_, spec_for, schemes_,
                                                 cfg_.shards, phys, cfg_.stall_tick);
    const auto id = net_->add_node(node.get());
    util::ensures(id == phys, "replica node ids must equal phys ids");
    // One CPU lane per hosted core (the machine runs one instance per
    // hardware core, like the threaded SocketEnv deployment); envelopes
    // demux to their shard's lane, bare payloads to shard 0's.
    net_->set_cpu_lanes(id, cfg_.shards, [](const sim::Payload& p) {
      const auto* env = dynamic_cast<const ShardEnvelope*>(&p);
      return env ? env->shard : 0u;
    });
    nodes_.push_back(std::move(node));
  }

  // --- Client groups (one per non-leader core replica, like the harness) --
  const double per_group = offered_ / static_cast<double>(cfg_.n - 1);
  const auto backlog = std::max<std::uint32_t>(3 * cfg_.datablock_requests, 4000);
  for (std::uint32_t c = 0; c < cfg_.n && cfg_.spawn_clients; ++c) {
    if (c == leader_core) continue;
    core::ClientConfig ccfg;
    ccfg.request_rate = per_group;
    ccfg.payload_size = cfg_.payload_size;
    ccfg.initial_backlog = backlog;
    auto client = std::make_unique<ShardedSimClient>(*net_, metrics_, ccfg, c, cfg_.n,
                                                     leader_core, cfg_.shards,
                                                     cfg_.seed + 1000 + c);
    const auto id = net_->add_node(client.get(), /*metered=*/false);
    client->set_self_id(id);
    clients_.push_back(std::move(client));
  }
}

void ShardedSimCluster::run_until(sim::SimTime t) {
  if (!started_) {
    net_->start_all();
    started_ = true;
  }
  sim_.run_until(t);
}

std::uint64_t ShardedSimCluster::client_acked() const {
  std::uint64_t sum = 0;
  for (const auto& c : clients_) sum += c->acked();
  return sum;
}

chaos::OracleResult ShardedSimCluster::check_sharded_invariants() const {
  chaos::OracleResult out;
  std::vector<std::vector<chaos::ExecRecord>> merged_streams;
  merged_streams.reserve(nodes_.size());
  for (std::uint32_t i = 0; i < nodes_.size(); ++i) {
    const auto& node = *nodes_[i];
    const auto label = "replica " + std::to_string(i);
    for (std::uint32_t s = 0; s < cfg_.shards; ++s) {
      out.merge(chaos::check_monotonic_commit(node.shard_streams()[s],
                                              label + " shard " + std::to_string(s)));
    }
    if (reference_merge(node.shard_streams()) != node.merged()) {
      out.violations.push_back(label +
                               ": merged stream diverges from the reference re-merge "
                               "of its shard streams");
    }
    merged_streams.push_back(node.merged());
  }
  out.merge(chaos::check_cross_replica_consistency(merged_streams));
  return out;
}

}  // namespace leopard::shard
