#include "shard/mux_env.hpp"

#include <utility>

#include "protocol/sim_env.hpp"  // apply_metrics_update
#include "util/check.hpp"

namespace leopard::shard {

MuxEnv::MuxEnv(net::SocketEnv& socket, core::ProtocolMetrics& metrics,
               std::uint32_t n_replicas, std::uint32_t shard, std::uint32_t shards)
    : socket_(socket), n_(n_replicas), shard_(shard), metrics_(metrics) {
  util::expects(shard < shards, "MuxEnv: shard out of range");
  util::expects(shards <= kMaxShards, "MuxEnv: too many shards");
  net::SocketEnv::InstanceHooks hooks;
  hooks.on_start = [this] { on_start(); };
  hooks.deliver = [this](sim::NodeId from, const sim::PayloadPtr& payload) {
    deliver(from, payload);
  };
  hooks.on_timer = [this](std::uint64_t token) {
    core_->on_timer(*this, static_cast<protocol::TimerToken>(token));
  };
  socket_.register_instance(shard, std::move(hooks));
}

sim::NodeId MuxEnv::rotate_out(sim::NodeId core_id) const {
  if (core_id >= n_) return core_id;  // clients pass through unrotated
  return (core_id + shard_) % n_;
}

sim::NodeId MuxEnv::rotate_in(sim::NodeId transport_id) const {
  if (transport_id >= n_) return transport_id;
  return (transport_id + n_ - shard_ % n_) % n_;
}

void MuxEnv::on_start() {
  util::expects(core_ != nullptr, "MuxEnv: run() without an attached core");
  core_->on_start(*this);
}

void MuxEnv::deliver(sim::NodeId from, const sim::PayloadPtr& payload) {
  const auto core_from = rotate_in(from);
  if (auto cr = std::dynamic_pointer_cast<const proto::ClientRequestMsg>(payload)) {
    core_->on_client_request(*this, core_from, cr);
  } else {
    core_->on_message(*this, core_from, payload);
  }
}

void MuxEnv::inject_request(sim::NodeId from,
                            std::shared_ptr<const proto::ClientRequestMsg> msg) {
  // Hop to the thread that owns this shard's core (inline outside io-thread
  // mode): the caller is the transport, the core may live on a worker.
  socket_.post_to_instance(shard_, [this, from, msg = std::move(msg)]() mutable {
    core_->on_client_request(*this, from, std::move(msg));
  });
}

void MuxEnv::apply(protocol::Action action) {
  std::visit(
      [&](auto& a) {
        using T = std::decay_t<decltype(a)>;
        if constexpr (std::is_same_v<T, protocol::Send>) {
          // Pseudo-client acks (stall no-ops) die here: the transport would
          // only shed them per-frame anyway, with noisier stats.
          if (a.to >= kNoopClientBase) return;
          socket_.send_payload(shard_, rotate_out(a.to), *a.payload);
        } else if constexpr (std::is_same_v<T, protocol::Broadcast>) {
          // Rotation is a bijection on [0, n): "all replicas but self" is
          // the same transport set, so broadcasts need no per-target rotation.
          socket_.broadcast_payload(shard_, *a.payload);
        } else if constexpr (std::is_same_v<T, protocol::SetTimer>) {
          socket_.arm_instance_timer(shard_, a.token, a.delay);
        } else if constexpr (std::is_same_v<T, protocol::CancelTimer>) {
          socket_.cancel_instance_timer(shard_, a.token);
        } else if constexpr (std::is_same_v<T, protocol::Execute>) {
          // The observer pushes into the host's cross-shard Sequencer, which
          // the transport thread owns — hop there (inline outside io-thread
          // mode). Per-producer FIFO preserves this shard's Execute order,
          // which is all the Sequencer's determinism needs.
          if (execute_observer_) {
            socket_.post_to_transport([this, e = a] { execute_observer_(e); });
          }
        } else if constexpr (std::is_same_v<T, protocol::MetricsUpdate>) {
          // `metrics_` may be shared across shards (the host merges
          // histograms), so it belongs to the transport thread too.
          socket_.post_to_transport(
              [this, m = a] { protocol::apply_metrics_update(metrics_, m); });
        } else {
          // ChargeCpu: the real CPU already charged itself.
        }
      },
      action);
}

}  // namespace leopard::shard
