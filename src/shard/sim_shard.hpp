// Sharded simulation hosting: S unmodified sans-I/O cores per physical sim
// node, multiplexed over the node's single metered NIC with one CPU lane
// per core (the machine runs one instance per hardware core) — the
// simulator twin of the SocketEnv instance registry and its per-instance
// threads.
//
// Identity model. Shard s rotates the replica-id space by s: core-level
// replica c of shard s lives on physical node (c + s) mod n, so every shard
// sees a full n-replica cluster while each shard's LEADER (core id 1 mod n)
// lands on a different machine — the whole point of sharding a
// leader-CPU-bound protocol. Ids >= n (clients) pass through unrotated;
// ids >= shard::kNoopClientBase are liveness no-op pseudo-clients whose
// sends are dropped at this boundary (the simulator aborts on unknown
// destinations, and the acks have no consumer).
//
// Transport mux. Shard 0 traffic travels as the bare inner payload —
// byte-compatible with an unsharded cluster — while shard s > 0 rides a
// ShardEnvelope (the sim analogue of the kShardFrame wire envelope, +4
// bytes like its u32 instance id). The physical node demuxes envelopes to
// the per-shard env; bare payloads go to shard 0.
//
// Ordering. Each replica node feeds its S per-shard Execute streams through
// a shard::Sequencer; the merged global stream (and its fold digest) is
// what reports, durability, and cross-replica oracles consume. A stall
// tick injects no-op requests into the local core of the shard blocking
// the merge (see sequencer.hpp for the liveness argument).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "chaos/oracles.hpp"
#include "core/client.hpp"
#include "core/metrics.hpp"
#include "protocol/factory.hpp"
#include "protocol/protocol.hpp"
#include "shard/sequencer.hpp"
#include "sim/network.hpp"

namespace leopard::shard {

/// Sim twin of the kShardFrame envelope: tags an inner payload with the
/// shard (instance) id it is addressed to. Bandwidth accounting delegates
/// to the inner payload so Table-III component breakdowns stay honest.
struct ShardEnvelope final : sim::Payload {
  std::uint32_t shard = 0;
  sim::PayloadPtr inner;

  ShardEnvelope(std::uint32_t s, sim::PayloadPtr p) : shard(s), inner(std::move(p)) {}
  [[nodiscard]] std::size_t wire_size() const override { return inner->wire_size() + 4; }
  [[nodiscard]] sim::Component component() const override { return inner->component(); }
};

/// protocol::Env adapter for ONE core (replica or client) of ONE shard,
/// hosted on a physical sim node owned by ShardedSimNode/ShardedSimClient.
/// Applies the id rotation both ways, wraps outbound payloads for shards
/// > 0, drops no-op-client sends, and forwards Execute to the owner.
class ShardSimEnv final : public protocol::Env {
 public:
  ShardSimEnv(sim::Network& net, core::ProtocolMetrics& metrics, std::uint32_t n_replicas,
              std::uint32_t shard, std::uint32_t shards);

  void attach(protocol::Protocol& core) { core_ = &core; }
  /// Physical node id sends originate from (assigned by Network::add_node).
  void set_phys_id(sim::NodeId id) { phys_ = id; }

  using ExecuteObserver = std::function<void(const protocol::Execute&)>;
  void set_execute_observer(ExecuteObserver obs) { execute_observer_ = std::move(obs); }

  /// Starts the attached core (owner calls once from sim::Node::start).
  void start();
  /// One inbound payload from physical node `phys_from`, already unwrapped.
  void deliver(sim::NodeId phys_from, const sim::PayloadPtr& inner);
  /// Direct client-request injection into the core (stall no-ops).
  void inject_request(sim::NodeId from, std::shared_ptr<const proto::ClientRequestMsg> msg);

  [[nodiscard]] std::uint32_t shard() const { return shard_; }

  // -- protocol::Env ---------------------------------------------------------
  [[nodiscard]] sim::SimTime now() const override { return net_.sim().now(); }
  [[nodiscard]] const sim::CostModel& costs() const override { return net_.costs(); }
  void apply(protocol::Action action) override;

 private:
  void fire_timer(protocol::TimerToken token);
  [[nodiscard]] sim::NodeId rotate_out(sim::NodeId core_id) const;
  [[nodiscard]] sim::NodeId rotate_in(sim::NodeId phys_id) const;
  [[nodiscard]] sim::PayloadPtr wrap(sim::PayloadPtr payload) const;

  sim::Network& net_;
  core::ProtocolMetrics& metrics_;
  protocol::Protocol* core_ = nullptr;
  sim::NodeId phys_ = 0;
  std::uint32_t n_;
  std::uint32_t shard_;
  std::vector<sim::NodeId> replica_phys_ids_;  // broadcast target set
  std::unordered_map<protocol::TimerToken, sim::EventHandle> timers_;
  ExecuteObserver execute_observer_;
};

/// One physical replica machine hosting core (phys - s) mod n of every
/// shard s, plus the sequencer merging their commit streams.
class ShardedSimNode final : public sim::Node {
 public:
  /// `spec_for(shard)` builds the per-shard core spec (byzantine hooks for
  /// chaos live here); `schemes[shard]` is that shard's threshold scheme.
  ShardedSimNode(sim::Network& net, core::ProtocolMetrics& metrics,
                 const std::function<protocol::ProtocolSpec(std::uint32_t shard)>& spec_for,
                 const std::vector<crypto::ThresholdScheme>& schemes, std::uint32_t shards,
                 sim::NodeId phys_id, sim::SimTime stall_tick);

  // -- sim::Node -------------------------------------------------------------
  void start() override;
  void on_message(sim::NodeId from, const sim::PayloadPtr& msg) override;

  /// Merged global Execute stream (chaos-oracle form: exec.seq/ordinal are
  /// the global coordinates).
  [[nodiscard]] const std::vector<chaos::ExecRecord>& merged() const { return merged_; }
  /// Shard-local Execute streams, for the merge oracle (recomputing the
  /// global stream from these must reproduce `merged()` exactly).
  [[nodiscard]] const std::vector<std::vector<chaos::ExecRecord>>& shard_streams() const {
    return shard_streams_;
  }
  [[nodiscard]] const Sequencer& sequencer() const { return sequencer_; }
  [[nodiscard]] std::uint64_t noops_injected() const { return noops_injected_; }
  [[nodiscard]] sim::NodeId phys_id() const { return phys_; }

  /// Typed access to the shard-s core (tests).
  template <typename T>
  [[nodiscard]] T& core_as(std::uint32_t shard) const {
    return dynamic_cast<T&>(*cores_.at(shard));
  }

  /// Injects one request straight into the shard-s core on this machine
  /// (tests and chaos scenarios drive one shard without a client). The
  /// request must use a no-op pseudo-client id so its acks die at the env
  /// boundary instead of targeting a nonexistent sim node.
  void inject_local_request(std::uint32_t shard, proto::Request req);

 private:
  void stall_tick();

  sim::Network& net_;
  sim::NodeId phys_;
  std::uint32_t shards_;
  sim::SimTime stall_tick_interval_;
  std::vector<std::unique_ptr<ShardSimEnv>> envs_;
  std::vector<std::unique_ptr<protocol::Protocol>> cores_;
  Sequencer sequencer_;
  std::vector<chaos::ExecRecord> merged_;
  std::vector<std::vector<chaos::ExecRecord>> shard_streams_;
  sim::EventHandle stall_event_;
  std::uint64_t last_emitted_ = 0;
  std::uint64_t noops_injected_ = 0;
  std::uint64_t noop_seq_ = 0;
  /// Real (non-filler) records pushed but not yet merged — the stall
  /// detector's trigger. Filler commits deliberately don't count, or every
  /// no-op would re-arm the detector and an idle cluster would heartbeat
  /// no-ops forever.
  std::uint64_t pending_real_ = 0;
};

/// One client group split into S sub-clients sharing the group's node id:
/// request index i of the group goes to shard shard_of(seed, i, S), so the
/// offered load hash-partitions across shards exactly like the TCP driver.
/// Acks demux by envelope shard, so per-shard seq spaces may overlap
/// without protocol-level collision (per-core identity spaces are
/// disjoint).
class ShardedSimClient final : public sim::Node {
 public:
  /// `cfg` describes the WHOLE group; rate/backlog/window/total split across
  /// shards by the hash partition. `target` is the core-level replica the
  /// group submits to (rotation spreads the physical destination per shard).
  ShardedSimClient(sim::Network& net, core::ProtocolMetrics& metrics,
                   const core::ClientConfig& cfg, sim::NodeId target,
                   std::uint32_t replica_count, sim::NodeId avoid, std::uint32_t shards,
                   std::uint64_t seed);

  /// Group node id (assigned by Network::add_node) — the client_id every
  /// sub-client stamps on its requests.
  void set_self_id(sim::NodeId id);

  // -- sim::Node -------------------------------------------------------------
  void start() override;
  void on_message(sim::NodeId from, const sim::PayloadPtr& msg) override;

  [[nodiscard]] std::uint64_t submitted() const;
  [[nodiscard]] std::uint64_t acked() const;
  [[nodiscard]] bool done() const;

 private:
  std::vector<std::unique_ptr<ShardSimEnv>> envs_;
  std::vector<std::unique_ptr<core::LeopardClient>> subs_;
};

}  // namespace leopard::shard
