#include "shard/sim_shard.hpp"

#include <utility>

#include "protocol/replay.hpp"
#include "protocol/sim_env.hpp"
#include "util/check.hpp"

namespace leopard::shard {

// ---------------------------------------------------------------------------
// ShardSimEnv
// ---------------------------------------------------------------------------

ShardSimEnv::ShardSimEnv(sim::Network& net, core::ProtocolMetrics& metrics,
                         std::uint32_t n_replicas, std::uint32_t shard, std::uint32_t shards)
    : net_(net), metrics_(metrics), n_(n_replicas), shard_(shard) {
  util::expects(shard < shards, "ShardSimEnv: shard out of range");
  util::expects(shards <= kMaxShards, "ShardSimEnv: too many shards");
  replica_phys_ids_.resize(n_replicas);
  for (std::uint32_t i = 0; i < n_replicas; ++i) replica_phys_ids_[i] = i;
}

sim::NodeId ShardSimEnv::rotate_out(sim::NodeId core_id) const {
  if (core_id >= n_) return core_id;  // clients pass through unrotated
  return (core_id + shard_) % n_;
}

sim::NodeId ShardSimEnv::rotate_in(sim::NodeId phys_id) const {
  if (phys_id >= n_) return phys_id;
  return (phys_id + n_ - shard_ % n_) % n_;
}

sim::PayloadPtr ShardSimEnv::wrap(sim::PayloadPtr payload) const {
  if (shard_ == 0) return payload;  // bare: byte-compatible with S=1
  return std::make_shared<ShardEnvelope>(shard_, std::move(payload));
}

void ShardSimEnv::start() {
  util::expects(core_ != nullptr, "ShardSimEnv::start without an attached core");
  net_.set_active_lane(phys_, shard_);
  core_->on_start(*this);
}

void ShardSimEnv::deliver(sim::NodeId phys_from, const sim::PayloadPtr& inner) {
  const auto from = rotate_in(phys_from);
  if (auto cr = std::dynamic_pointer_cast<const proto::ClientRequestMsg>(inner)) {
    core_->on_client_request(*this, from, cr);
  } else {
    core_->on_message(*this, from, inner);
  }
}

void ShardSimEnv::inject_request(sim::NodeId from,
                                 std::shared_ptr<const proto::ClientRequestMsg> msg) {
  // Local injection enters the core outside network dispatch: pin this
  // core's CPU lane so its charges don't bill whichever lane ran last.
  net_.set_active_lane(phys_, shard_);
  core_->on_client_request(*this, from, msg);
}

void ShardSimEnv::fire_timer(protocol::TimerToken token) {
  timers_.erase(token);
  // Timers fire outside network dispatch: pin this core's lane (see above).
  net_.set_active_lane(phys_, shard_);
  core_->on_timer(*this, token);
}

void ShardSimEnv::apply(protocol::Action action) {
  std::visit(
      [&](auto& a) {
        using T = std::decay_t<decltype(a)>;
        if constexpr (std::is_same_v<T, protocol::Send>) {
          // No-op pseudo-clients have no network presence: their acks die
          // here, before the simulator can reject the unknown destination.
          if (a.to >= kNoopClientBase) return;
          net_.send(phys_, rotate_out(a.to), wrap(std::move(a.payload)));
        } else if constexpr (std::is_same_v<T, protocol::Broadcast>) {
          // Rotation is a bijection on [0, n): "all replicas but self" is
          // the same physical set, so broadcasts need no per-target rotation.
          net_.multicast(phys_, replica_phys_ids_, wrap(std::move(a.payload)));
        } else if constexpr (std::is_same_v<T, protocol::SetTimer>) {
          auto& slot = timers_[a.token];
          slot.cancel();
          slot = net_.sim().schedule_after(a.delay,
                                           [this, token = a.token] { fire_timer(token); });
        } else if constexpr (std::is_same_v<T, protocol::CancelTimer>) {
          if (const auto it = timers_.find(a.token); it != timers_.end()) {
            it->second.cancel();
            timers_.erase(it);
          }
        } else if constexpr (std::is_same_v<T, protocol::Execute>) {
          if (execute_observer_) execute_observer_(a);
        } else if constexpr (std::is_same_v<T, protocol::MetricsUpdate>) {
          protocol::apply_metrics_update(metrics_, a);
        } else {
          net_.charge_cpu(phys_, a.cost);
        }
      },
      action);
}

// ---------------------------------------------------------------------------
// ShardedSimNode
// ---------------------------------------------------------------------------

ShardedSimNode::ShardedSimNode(
    sim::Network& net, core::ProtocolMetrics& metrics,
    const std::function<protocol::ProtocolSpec(std::uint32_t shard)>& spec_for,
    const std::vector<crypto::ThresholdScheme>& schemes, std::uint32_t shards,
    sim::NodeId phys_id, sim::SimTime stall_tick)
    : net_(net),
      phys_(phys_id),
      shards_(shards),
      stall_tick_interval_(stall_tick),
      sequencer_(shards,
                 [this](const GlobalRecord& r) {
                   if (!is_filler_block(*r.exec.block)) --pending_real_;
                   merged_.push_back(chaos::ExecRecord{
                       r.exec.seq, r.exec.ordinal,
                       protocol::payload_fingerprint(*r.exec.block), r.exec.requests});
                 }),
      shard_streams_(shards) {
  util::expects(schemes.size() == shards, "ShardedSimNode: one threshold scheme per shard");
  for (std::uint32_t s = 0; s < shards; ++s) {
    const auto spec = spec_for(s);
    const auto n = spec.n();
    util::expects(phys_id < n, "ShardedSimNode: phys id out of range");
    // Shard s rotates ids by s: this machine hosts core (phys - s) mod n.
    const auto core_id = static_cast<proto::ReplicaId>((phys_id + n - s % n) % n);
    auto env = std::make_unique<ShardSimEnv>(net, metrics, n, s, shards);
    env->set_phys_id(phys_id);
    auto core = protocol::make_protocol(spec, schemes[s], core_id);
    env->attach(*core);
    env->set_execute_observer([this, s](const protocol::Execute& e) {
      shard_streams_[s].push_back(chaos::ExecRecord{
          e.seq, e.ordinal, protocol::payload_fingerprint(*e.block), e.requests});
      // Count BEFORE push (the push may merge, and decrement, synchronously)
      // and roll back if the record was a duplicate re-emission.
      const bool real = !is_filler_block(*e.block);
      if (real) ++pending_real_;
      if (!sequencer_.push(s, e) && real) --pending_real_;
    });
    envs_.push_back(std::move(env));
    cores_.push_back(std::move(core));
  }
}

void ShardedSimNode::start() {
  for (auto& env : envs_) env->start();
  if (shards_ > 1 && stall_tick_interval_ > 0) {
    stall_event_ = net_.sim().schedule_after(stall_tick_interval_, [this] { stall_tick(); });
  }
}

void ShardedSimNode::on_message(sim::NodeId from, const sim::PayloadPtr& msg) {
  if (auto envelope = std::dynamic_pointer_cast<const ShardEnvelope>(msg)) {
    // Unknown shard ids are dropped frame-level, mirroring the SocketEnv
    // unknown_instance stat: a mixed-S cluster must not lose whole links.
    if (envelope->shard < shards_) envs_[envelope->shard]->deliver(from, envelope->inner);
    return;
  }
  envs_[0]->deliver(from, msg);
}

void ShardedSimNode::inject_local_request(std::uint32_t shard, proto::Request req) {
  util::expects(shard < shards_, "inject_local_request: shard out of range");
  util::expects(req.client_id >= kNoopClientBase,
                "injected requests must use no-op pseudo-client ids");
  const auto from = static_cast<sim::NodeId>(req.client_id);
  envs_[shard]->inject_request(from, std::make_shared<proto::ClientRequestMsg>(std::move(req)));
}

void ShardedSimNode::stall_tick() {
  // The merge stalled with REAL work buffered behind the cursor: commit a
  // no-op through the blocking shard's LOCAL core so the round fills (and
  // every earlier round is proven) via ordinary consensus. Filler-only
  // backlog never triggers injection — it stays buffered until real
  // traffic resumes, so an idle cluster quiesces.
  if (sequencer_.emitted() == last_emitted_ && pending_real_ > 0) {
    const auto s = sequencer_.cursor_shard();
    proto::Request req;
    req.client_id = kFillerClientBase + phys_;
    req.seq = noop_seq_++;
    req.payload_size = 1;
    req.submitted_at = net_.sim().now();
    envs_[s]->inject_request(static_cast<sim::NodeId>(kFillerClientBase + phys_),
                             std::make_shared<proto::ClientRequestMsg>(std::move(req)));
    ++noops_injected_;
  }
  last_emitted_ = sequencer_.emitted();
  stall_event_ = net_.sim().schedule_after(stall_tick_interval_, [this] { stall_tick(); });
}

// ---------------------------------------------------------------------------
// ShardedSimClient
// ---------------------------------------------------------------------------

ShardedSimClient::ShardedSimClient(sim::Network& net, core::ProtocolMetrics& metrics,
                                   const core::ClientConfig& cfg, sim::NodeId target,
                                   std::uint32_t replica_count, sim::NodeId avoid,
                                   std::uint32_t shards, std::uint64_t seed) {
  util::expects(shards >= 1 && shards <= kMaxShards, "ShardedSimClient: bad shard count");

  // Hash-partition the group's request index space across shards with the
  // same shard_of the TCP driver uses; rates use a sampled horizon, counts
  // are split exactly.
  constexpr std::uint64_t kHorizon = 4096;
  std::vector<std::uint64_t> horizon_counts(shards, 0);
  for (std::uint64_t i = 0; i < kHorizon; ++i) ++horizon_counts[shard_of(seed, i, shards)];
  std::vector<std::uint32_t> backlog(shards, 0);
  for (std::uint64_t i = 0; i < cfg.initial_backlog; ++i) {
    ++backlog[shard_of(seed, i, shards)];
  }
  std::vector<std::uint64_t> totals(shards, 0);
  for (std::uint64_t i = 0; i < cfg.total_requests; ++i) {
    ++totals[shard_of(seed, i, shards)];
  }

  for (std::uint32_t s = 0; s < shards; ++s) {
    const double share =
        static_cast<double>(horizon_counts[s]) / static_cast<double>(kHorizon);
    core::ClientConfig sub_cfg = cfg;
    sub_cfg.request_rate = cfg.request_rate * share;
    sub_cfg.initial_backlog = backlog[s];
    sub_cfg.total_requests = totals[s];
    if (cfg.closed_loop_window > 0) {
      // Per-shard in-flight window: floor of the fair share, at least 1.
      sub_cfg.closed_loop_window = std::max(1u, cfg.closed_loop_window / shards);
    }
    auto env = std::make_unique<ShardSimEnv>(net, metrics, replica_count, s, shards);
    auto sub = std::make_unique<core::LeopardClient>(sub_cfg, target, replica_count, avoid,
                                                     seed + 7919ull * s);
    env->attach(*sub);
    envs_.push_back(std::move(env));
    subs_.push_back(std::move(sub));
  }
}

void ShardedSimClient::set_self_id(sim::NodeId id) {
  for (std::size_t s = 0; s < subs_.size(); ++s) {
    subs_[s]->set_self_id(id);
    envs_[s]->set_phys_id(id);
  }
}

void ShardedSimClient::start() {
  for (auto& env : envs_) env->start();
}

void ShardedSimClient::on_message(sim::NodeId from, const sim::PayloadPtr& msg) {
  if (auto envelope = std::dynamic_pointer_cast<const ShardEnvelope>(msg)) {
    if (envelope->shard < envs_.size()) envs_[envelope->shard]->deliver(from, envelope->inner);
    return;
  }
  envs_[0]->deliver(from, msg);
}

std::uint64_t ShardedSimClient::submitted() const {
  std::uint64_t sum = 0;
  for (const auto& sub : subs_) sum += sub->submitted();
  return sum;
}

std::uint64_t ShardedSimClient::acked() const {
  std::uint64_t sum = 0;
  for (const auto& sub : subs_) sum += sub->acked();
  return sum;
}

bool ShardedSimClient::done() const {
  for (const auto& sub : subs_) {
    if (!sub->done()) return false;
  }
  return true;
}

}  // namespace leopard::shard
