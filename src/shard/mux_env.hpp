// MuxEnv: protocol::Env adapter for ONE shard's core hosted over a SHARED
// net::SocketEnv — the real-wire twin of ShardSimEnv. S MuxEnvs multiplex S
// unmodified sans-I/O cores over the same TCP connections, timer wheels and
// event loop:
//
//   - outbound Send/Broadcast route through SocketEnv::send_payload /
//     broadcast_payload tagged with this shard's instance id (shard 0
//     travels as bare frames, byte-compatible with unsharded peers);
//   - SetTimer/CancelTimer land in this instance's private wheel, so token
//     spaces of different shards never collide;
//   - inbound frames arrive through the InstanceHooks this env registers,
//     already demuxed by the transport;
//   - Execute feeds the host's observer (which pushes into the
//     shard::Sequencer), MetricsUpdate a per-shard ProtocolMetrics.
//
// Identity model matches the sim: shard s rotates the replica-id space by
// s, so core-level replica c lives on transport node (c + s) mod n and each
// shard's leader (core id 1 mod n) lands on a different machine. Ids >= n
// (clients) pass through unrotated; sends to pseudo-clients (>=
// kNoopClientBase) are dropped here — their acks have no consumer.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "core/metrics.hpp"
#include "net/socket_env.hpp"
#include "protocol/protocol.hpp"
#include "shard/sequencer.hpp"

namespace leopard::shard {

class MuxEnv final : public protocol::Env {
 public:
  /// Registers instance `shard` on `socket` immediately (so construction
  /// must precede SocketEnv::run()). `n_replicas` is the shard's cluster
  /// size, used for the id rotation. `metrics` is host-owned — pass one per
  /// shard for per-shard reports or share one to merge histograms (clients).
  MuxEnv(net::SocketEnv& socket, core::ProtocolMetrics& metrics, std::uint32_t n_replicas,
         std::uint32_t shard, std::uint32_t shards);

  MuxEnv(const MuxEnv&) = delete;
  MuxEnv& operator=(const MuxEnv&) = delete;

  /// Binds the core this env hosts (not owned). Must precede run().
  void attach(protocol::Protocol& core) { core_ = &core; }

  using ExecuteObserver = std::function<void(const protocol::Execute&)>;
  void set_execute_observer(ExecuteObserver obs) { execute_observer_ = std::move(obs); }

  /// Direct client-request injection into the core (stall no-ops), from the
  /// SocketEnv transport thread only; hops to the owning io-thread when the
  /// transport runs with --io-threads.
  void inject_request(sim::NodeId from, std::shared_ptr<const proto::ClientRequestMsg> msg);

  [[nodiscard]] std::uint32_t shard() const { return shard_; }

  // -- protocol::Env ---------------------------------------------------------
  [[nodiscard]] sim::SimTime now() const override { return socket_.now(); }
  [[nodiscard]] const sim::CostModel& costs() const override { return socket_.costs(); }
  void apply(protocol::Action action) override;

 private:
  void on_start();
  void deliver(sim::NodeId from, const sim::PayloadPtr& payload);
  [[nodiscard]] sim::NodeId rotate_out(sim::NodeId core_id) const;
  [[nodiscard]] sim::NodeId rotate_in(sim::NodeId transport_id) const;

  net::SocketEnv& socket_;
  protocol::Protocol* core_ = nullptr;
  std::uint32_t n_;
  std::uint32_t shard_;
  core::ProtocolMetrics& metrics_;
  ExecuteObserver execute_observer_;
};

}  // namespace leopard::shard
