#include "shard/sequencer.hpp"

#include <utility>

#include "util/check.hpp"

namespace leopard::shard {

namespace {

/// splitmix64 finalizer — cheap, well-mixed, identical everywhere.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

std::uint32_t shard_of(std::uint64_t client_id, std::uint64_t index, std::uint32_t shards) {
  util::expects(shards >= 1, "shard_of: shards must be >= 1");
  if (shards == 1) return 0;
  return static_cast<std::uint32_t>(mix64(client_id * 0x100000001b3ull + index) % shards);
}

bool is_filler_block(const sim::Payload& block) {
  const auto* db = dynamic_cast<const proto::DatablockMsg*>(&block);
  if (db == nullptr) return false;  // unknown block types count as real
  for (const auto& r : db->datablock.requests) {
    if (r.client_id < kFillerClientBase) return false;
  }
  return true;
}

Sequencer::Sequencer(std::uint32_t shards, Sink sink) : sink_(std::move(sink)) {
  util::expects(shards >= 1 && shards <= kMaxShards, "Sequencer: shard count out of range");
  util::expects(sink_ != nullptr, "Sequencer: sink required");
  states_.resize(shards);
}

bool Sequencer::push(std::uint32_t shard, const protocol::Execute& exec) {
  util::expects(shard < states_.size(), "Sequencer::push: shard out of range");
  util::expects(exec.ordinal <= kMaxShardOrdinal,
                "Sequencer::push: shard ordinal exceeds 2^20");
  auto& st = states_[shard];
  const std::pair<std::uint64_t, std::uint32_t> key{exec.seq, exec.ordinal};
  if (key < st.floor) {
    // Restart re-emission of an already-merged record.
    ++duplicates_dropped_;
    return false;
  }
  if (st.seen && exec.seq > st.frontier) {
    st.frontier = exec.seq;
  } else if (!st.seen) {
    st.frontier = exec.seq;
    st.seen = true;
  }
  GlobalRecord record;
  record.shard = shard;
  record.shard_seq = exec.seq;
  record.shard_ordinal = exec.ordinal;
  record.exec = exec;
  st.buffer.emplace(key, std::move(record));
  pump();
  return true;
}

void Sequencer::pump() {
  for (;;) {
    auto& st = states_[cursor_];
    // Emit the open slot incrementally: every buffered record of the
    // cursor's round, in sordinal order.
    auto it = st.buffer.begin();
    while (it != st.buffer.end() && it->first.first == round_) {
      GlobalRecord record = std::move(it->second);
      record.exec.seq = round_;
      record.exec.ordinal = pack_ordinal(cursor_, record.shard_ordinal);
      st.floor = {round_, record.shard_ordinal + 1};
      it = st.buffer.erase(it);
      ++emitted_;
      sink_(record);
    }
    // The slot closes only once the shard has provably moved past it.
    if (!st.seen || st.frontier <= round_) return;
    if (st.floor < std::pair<std::uint64_t, std::uint32_t>{round_ + 1, 0}) {
      st.floor = {round_ + 1, 0};
    }
    if (++cursor_ == states_.size()) {
      cursor_ = 0;
      ++round_;
    }
  }
}

void Sequencer::advance_to(std::uint64_t gseq, std::uint32_t gordinal) {
  const std::uint32_t tail_shard = ordinal_shard(gordinal);
  const std::uint32_t tail_ordinal = ordinal_within(gordinal);
  util::expects(tail_shard < states_.size(),
                "Sequencer::advance_to: tail shard out of range");
  // A target at or behind the cursor is already covered.
  if (std::pair<std::uint64_t, std::uint32_t>{gseq, tail_shard} <
      std::pair<std::uint64_t, std::uint32_t>{round_, cursor_}) {
    pump();
    return;
  }
  round_ = gseq;
  cursor_ = tail_shard;
  for (std::uint32_t s = 0; s < states_.size(); ++s) {
    auto& st = states_[s];
    // The floor implied by the tail: shards before the tail shard finished
    // round gseq, the tail shard emitted through tail_ordinal, later shards
    // have not opened round gseq yet.
    std::pair<std::uint64_t, std::uint32_t> implied{gseq, 0};
    if (s < tail_shard) {
      implied = {gseq + 1, 0};
    } else if (s == tail_shard) {
      implied = {gseq, tail_ordinal + 1};
    }
    if (st.floor < implied) st.floor = implied;
    st.buffer.erase(st.buffer.begin(), st.buffer.lower_bound(st.floor));
  }
  pump();
}

bool Sequencer::has_backlog() const {
  for (std::uint32_t s = 0; s < states_.size(); ++s) {
    const auto& st = states_[s];
    if (!st.buffer.empty()) return true;
    if (st.seen && st.frontier > round_) return true;
  }
  return false;
}

}  // namespace leopard::shard
