#include "net/wire.hpp"

#include <cstring>
#include <memory>

#include "util/check.hpp"

namespace leopard::net {

namespace {

using util::ByteReader;
using util::ByteWriter;

// Guard against allocation-bomb counts: every element of a decoded sequence
// occupies at least `min_element_bytes` of the remaining body, so a count
// beyond remaining/min is malformed and decoding bails before reserving.
std::uint32_t read_count(util::ByteReader& r, std::size_t min_element_bytes) {
  const auto count = r.u32();
  util::expects(count <= r.remaining() / min_element_bytes,
                "wire: element count exceeds body size");
  return count;
}

void write_digest(ByteWriter& w, const crypto::Digest& d) { w.raw(d.bytes()); }

crypto::Digest read_digest(ByteReader& r) {
  crypto::Sha256::DigestBytes bytes{};
  const auto view = r.raw(crypto::Digest::kSize);
  std::memcpy(bytes.data(), view.data(), bytes.size());
  return crypto::Digest(bytes);
}

void write_share(ByteWriter& w, const crypto::SignatureShare& s) {
  w.u32(s.signer);
  w.raw(s.bytes);
}

crypto::SignatureShare read_share(ByteReader& r) {
  crypto::SignatureShare s;
  s.signer = r.u32();
  const auto view = r.raw(crypto::kSignatureSize);
  std::memcpy(s.bytes.data(), view.data(), s.bytes.size());
  return s;
}

void write_tsig(ByteWriter& w, const crypto::ThresholdSignature& s) { w.raw(s.bytes); }

crypto::ThresholdSignature read_tsig(ByteReader& r) {
  crypto::ThresholdSignature s;
  const auto view = r.raw(crypto::kSignatureSize);
  std::memcpy(s.bytes.data(), view.data(), s.bytes.size());
  return s;
}

/// Minimum encoded size of a Request: client_id + seq + payload_size + the
/// payload blob's own length prefix.
constexpr std::size_t kMinRequestBytes = 8 + 8 + 4 + 4;

proto::Request read_request(ByteReader& r, sim::SimTime local_now) {
  auto req = proto::Request::decode(r);
  req.submitted_at = local_now;  // sim-only metadata: receiver's clock
  return req;
}

// --- per-type body encoders --------------------------------------------------

void encode_body(ByteWriter& w, const proto::ClientRequestMsg& m) {
  w.u32(static_cast<std::uint32_t>(m.requests.size()));
  for (const auto& req : m.requests) req.encode(w);
}

void encode_body(ByteWriter& w, const proto::AckMsg& m) {
  w.u64(m.client_id);
  w.u32(static_cast<std::uint32_t>(m.seqs.size()));
  for (const auto seq : m.seqs) w.u64(seq);
}

void encode_body(ByteWriter& w, const proto::DatablockMsg& m) { m.datablock.encode(w); }

void encode_body(ByteWriter& w, const proto::ReadyMsg& m) {
  w.u32(static_cast<std::uint32_t>(m.datablock_hashes.size()));
  for (const auto& d : m.datablock_hashes) write_digest(w, d);
}

void encode_body(ByteWriter& w, const proto::BftBlockMsg& m) {
  m.block.encode(w);
  write_share(w, m.leader_share);
}

void encode_body(ByteWriter& w, const proto::VoteMsg& m) {
  w.u8(m.round);
  write_digest(w, m.block_digest);
  write_share(w, m.share);
}

void encode_body(ByteWriter& w, const proto::ProofMsg& m) {
  w.u8(m.round);
  write_digest(w, m.block_digest);
  write_tsig(w, m.signature);
}

void encode_body(ByteWriter& w, const proto::QueryMsg& m) {
  w.u32(static_cast<std::uint32_t>(m.missing.size()));
  for (const auto& d : m.missing) write_digest(w, d);
}

void encode_body(ByteWriter& w, const proto::ChunkResponseMsg& m) {
  write_digest(w, m.datablock_hash);
  write_digest(w, m.merkle_root);
  w.u32(m.chunk_index);
  w.u32(m.leaf_count);
  w.u32(m.chunk_size);
  w.blob(m.chunk);
  w.u32(static_cast<std::uint32_t>(m.proof.size()));
  for (const auto& d : m.proof) write_digest(w, d);
}

void encode_body(ByteWriter& w, const proto::CheckpointMsg& m) {
  w.u64(m.sn);
  write_digest(w, m.state);
  std::uint8_t flags = 0;
  if (m.share) flags |= 1u;
  if (m.signature) flags |= 2u;
  w.u8(flags);
  if (m.share) write_share(w, *m.share);
  if (m.signature) write_tsig(w, *m.signature);
}

void encode_body(ByteWriter& w, const proto::TimeoutMsg& m) {
  w.u32(m.view);
  write_share(w, m.share);
}

void encode_body(ByteWriter& w, const proto::ViewChangeMsg& m) {
  w.u32(m.new_view);
  w.u64(m.checkpoint_sn);
  write_digest(w, m.checkpoint_state);
  write_tsig(w, m.checkpoint_proof);
  w.u32(static_cast<std::uint32_t>(m.notarized.size()));
  for (const auto& nb : m.notarized) {
    nb.block.encode(w);
    write_tsig(w, nb.notarization);
  }
  write_share(w, m.sender_sig);
  w.u32(m.sender);
}

void encode_body(ByteWriter& w, const proto::NewViewMsg& m) {
  w.u32(m.new_view);
  w.u32(static_cast<std::uint32_t>(m.view_changes.size()));
  for (const auto& vc : m.view_changes) encode_body(w, vc);
  write_share(w, m.leader_sig);
}

void encode_body(ByteWriter& w, const proto::BaselineBlockMsg& m) {
  w.u32(m.view);
  w.u64(m.height);
  write_digest(w, m.parent);
  write_digest(w, m.justify_target);
  write_tsig(w, m.justify_sig);
  w.u32(static_cast<std::uint32_t>(m.batch.size()));
  for (const auto& req : m.batch) req.encode(w);
}

void encode_body(ByteWriter& w, const proto::BaselineVoteMsg& m) {
  w.u8(m.phase);
  w.u32(m.view);
  w.u64(m.height);
  write_digest(w, m.block_digest);
  write_share(w, m.share);
}

void encode_body(ByteWriter& w, const proto::StateOfferMsg& m) {
  w.u8(m.kind);
  w.u64(m.transfer_id);
  w.u64(m.from_index);
  w.u64(m.until_index);
  write_digest(w, m.exec_digest);
}

void encode_body(ByteWriter& w, const proto::StateChunkMsg& m) {
  w.u64(m.transfer_id);
  w.u64(m.from_index);
  w.u64(m.until_index);
  write_digest(w, m.exec_digest);
  w.u32(m.chunk_index);
  w.u32(m.data_shards);
  w.u32(m.total_shards);
  w.blob(m.chunk);
}

// --- per-type body decoders --------------------------------------------------

sim::PayloadPtr decode_client_request(ByteReader& r, sim::SimTime now) {
  auto m = std::make_shared<proto::ClientRequestMsg>();
  const auto count = read_count(r, kMinRequestBytes);
  m->requests.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) m->requests.push_back(read_request(r, now));
  return m;
}

sim::PayloadPtr decode_ack(ByteReader& r) {
  auto m = std::make_shared<proto::AckMsg>();
  m->client_id = r.u64();
  const auto count = read_count(r, 8);
  m->seqs.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) m->seqs.push_back(r.u64());
  return m;
}

sim::PayloadPtr decode_datablock(ByteReader& r, sim::SimTime now) {
  // The canonical decoder (messages.cpp) is the single definition of the
  // Datablock encoding (and carries its own hostile-count bound); only the
  // sim-metadata stamping is wire-specific. DatablockMsg's constructor
  // recomputes cached_digest from the decoded content, so a relayed digest
  // can never disagree with the bytes.
  auto db = proto::Datablock::decode(r);
  for (auto& req : db.requests) req.submitted_at = now;
  auto m = std::make_shared<proto::DatablockMsg>(std::move(db));
  m->created_at = now;
  return m;
}

sim::PayloadPtr decode_ready(ByteReader& r) {
  auto m = std::make_shared<proto::ReadyMsg>();
  const auto count = read_count(r, crypto::Digest::kSize);
  m->datablock_hashes.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) m->datablock_hashes.push_back(read_digest(r));
  return m;
}

sim::PayloadPtr decode_bftblock(ByteReader& r) {
  auto block = proto::BftBlock::decode(r);
  const auto share = read_share(r);
  return std::make_shared<proto::BftBlockMsg>(std::move(block), share);
}

sim::PayloadPtr decode_vote(ByteReader& r) {
  auto m = std::make_shared<proto::VoteMsg>();
  m->round = r.u8();
  m->block_digest = read_digest(r);
  m->share = read_share(r);
  return m;
}

sim::PayloadPtr decode_proof(ByteReader& r) {
  auto m = std::make_shared<proto::ProofMsg>();
  m->round = r.u8();
  m->block_digest = read_digest(r);
  m->signature = read_tsig(r);
  return m;
}

sim::PayloadPtr decode_query(ByteReader& r) {
  auto m = std::make_shared<proto::QueryMsg>();
  const auto count = read_count(r, crypto::Digest::kSize);
  m->missing.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) m->missing.push_back(read_digest(r));
  return m;
}

sim::PayloadPtr decode_chunk_response(ByteReader& r) {
  auto m = std::make_shared<proto::ChunkResponseMsg>();
  m->datablock_hash = read_digest(r);
  m->merkle_root = read_digest(r);
  m->chunk_index = r.u32();
  m->leaf_count = r.u32();
  m->chunk_size = r.u32();
  const auto chunk = r.blob();
  m->chunk.assign(chunk.begin(), chunk.end());
  const auto count = read_count(r, crypto::Digest::kSize);
  m->proof.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) m->proof.push_back(read_digest(r));
  return m;
}

sim::PayloadPtr decode_checkpoint(ByteReader& r) {
  auto m = std::make_shared<proto::CheckpointMsg>();
  m->sn = r.u64();
  m->state = read_digest(r);
  const auto flags = r.u8();
  if ((flags & 1u) != 0) m->share = read_share(r);
  if ((flags & 2u) != 0) m->signature = read_tsig(r);
  return m;
}

sim::PayloadPtr decode_timeout(ByteReader& r) {
  auto m = std::make_shared<proto::TimeoutMsg>();
  m->view = r.u32();
  m->share = read_share(r);
  return m;
}

void decode_view_change_body(ByteReader& r, proto::ViewChangeMsg& m) {
  m.new_view = r.u32();
  m.checkpoint_sn = r.u64();
  m.checkpoint_state = read_digest(r);
  m.checkpoint_proof = read_tsig(r);
  const auto count = read_count(r, 16 + crypto::kSignatureSize);
  m.notarized.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    proto::NotarizedBlock nb;
    nb.block = proto::BftBlock::decode(r);
    nb.notarization = read_tsig(r);
    m.notarized.push_back(std::move(nb));
  }
  m.sender_sig = read_share(r);
  m.sender = r.u32();
}

sim::PayloadPtr decode_view_change(ByteReader& r) {
  auto m = std::make_shared<proto::ViewChangeMsg>();
  decode_view_change_body(r, *m);
  return m;
}

sim::PayloadPtr decode_new_view(ByteReader& r) {
  auto m = std::make_shared<proto::NewViewMsg>();
  m->new_view = r.u32();
  const auto count = read_count(r, 64);
  m->view_changes.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    proto::ViewChangeMsg vc;
    decode_view_change_body(r, vc);
    m->view_changes.push_back(std::move(vc));
  }
  m->leader_sig = read_share(r);
  return m;
}

sim::PayloadPtr decode_baseline_block(ByteReader& r, sim::SimTime now) {
  auto m = std::make_shared<proto::BaselineBlockMsg>();
  m->view = r.u32();
  m->height = r.u64();
  m->parent = read_digest(r);
  m->justify_target = read_digest(r);
  m->justify_sig = read_tsig(r);
  const auto count = read_count(r, kMinRequestBytes);
  m->batch.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) m->batch.push_back(read_request(r, now));
  // Recompute the digest the proposer caches — the shared definition, so a
  // relayed digest can never disagree with the bytes or the formula.
  m->cached_digest = m->compute_digest();
  return m;
}

sim::PayloadPtr decode_baseline_vote(ByteReader& r) {
  auto m = std::make_shared<proto::BaselineVoteMsg>();
  m->phase = r.u8();
  m->view = r.u32();
  m->height = r.u64();
  m->block_digest = read_digest(r);
  m->share = read_share(r);
  return m;
}

sim::PayloadPtr decode_state_offer(ByteReader& r) {
  auto m = std::make_shared<proto::StateOfferMsg>();
  m->kind = r.u8();
  if (m->kind > proto::StateOfferMsg::kPull) return nullptr;
  m->transfer_id = r.u64();
  m->from_index = r.u64();
  m->until_index = r.u64();
  m->exec_digest = read_digest(r);
  return m;
}

sim::PayloadPtr decode_state_chunk(ByteReader& r) {
  auto m = std::make_shared<proto::StateChunkMsg>();
  m->transfer_id = r.u64();
  m->from_index = r.u64();
  m->until_index = r.u64();
  m->exec_digest = read_digest(r);
  m->chunk_index = r.u32();
  m->data_shards = r.u32();
  m->total_shards = r.u32();
  const auto chunk = r.blob();
  m->chunk.assign(chunk.begin(), chunk.end());
  return m;
}

}  // namespace

namespace {

/// One RTTI probe, validating that the payload really is the class its
/// component tag claims (a mismatched subclass yields nullopt, never UB).
template <typename T>
std::optional<MsgType> check_is(const sim::Payload& payload, MsgType type) {
  if (dynamic_cast<const T*>(&payload) != nullptr) return type;
  return std::nullopt;
}

}  // namespace

std::optional<MsgType> type_of(const sim::Payload& payload) {
  // Keyed on the component tag (already 1:1 with the message class, except
  // the two request-dissemination and vote buckets shared with the
  // baselines), so the send hot path pays one or two dynamic_cast probes
  // instead of a 15-deep chain.
  switch (payload.component()) {
    case sim::Component::kClientRequest:
      return check_is<proto::ClientRequestMsg>(payload, MsgType::kClientRequest);
    case sim::Component::kAck:
      return check_is<proto::AckMsg>(payload, MsgType::kAck);
    case sim::Component::kDatablock:
      if (dynamic_cast<const proto::DatablockMsg*>(&payload) != nullptr) {
        return MsgType::kDatablock;
      }
      return check_is<proto::BaselineBlockMsg>(payload, MsgType::kBaselineBlock);
    case sim::Component::kReady:
      return check_is<proto::ReadyMsg>(payload, MsgType::kReady);
    case sim::Component::kBftBlock:
      return check_is<proto::BftBlockMsg>(payload, MsgType::kBftBlock);
    case sim::Component::kVote:
      if (dynamic_cast<const proto::VoteMsg*>(&payload) != nullptr) {
        return MsgType::kVote;
      }
      return check_is<proto::BaselineVoteMsg>(payload, MsgType::kBaselineVote);
    case sim::Component::kProof:
      return check_is<proto::ProofMsg>(payload, MsgType::kProof);
    case sim::Component::kQuery:
      return check_is<proto::QueryMsg>(payload, MsgType::kQuery);
    case sim::Component::kChunkResponse:
      return check_is<proto::ChunkResponseMsg>(payload, MsgType::kChunkResponse);
    case sim::Component::kCheckpoint:
      return check_is<proto::CheckpointMsg>(payload, MsgType::kCheckpoint);
    case sim::Component::kTimeout:
      return check_is<proto::TimeoutMsg>(payload, MsgType::kTimeout);
    case sim::Component::kViewChange:
      return check_is<proto::ViewChangeMsg>(payload, MsgType::kViewChange);
    case sim::Component::kNewView:
      return check_is<proto::NewViewMsg>(payload, MsgType::kNewView);
    case sim::Component::kStateOffer:
      return check_is<proto::StateOfferMsg>(payload, MsgType::kStateOffer);
    case sim::Component::kStateChunk:
      return check_is<proto::StateChunkMsg>(payload, MsgType::kStateChunk);
    default:
      return std::nullopt;  // kMisc / application-defined payloads: no wire form
  }
}

bool encode_frame(const sim::Payload& payload, util::Bytes& out) {
  return encode_frame(payload, /*instance=*/0, out);
}

namespace {

/// Serializes `payload` as tag + body (no length prefix) into `w`; false if
/// the payload type has no wire form. The single definition both the
/// contiguous and the shared-frame encoders go through.
bool encode_tag_and_body(const sim::Payload& payload, ByteWriter& w) {
  const auto type = type_of(payload);
  if (!type) return false;
  w.u8(static_cast<std::uint8_t>(*type));
  switch (*type) {
    case MsgType::kClientRequest:
      encode_body(w, static_cast<const proto::ClientRequestMsg&>(payload));
      break;
    case MsgType::kAck:
      encode_body(w, static_cast<const proto::AckMsg&>(payload));
      break;
    case MsgType::kDatablock:
      encode_body(w, static_cast<const proto::DatablockMsg&>(payload));
      break;
    case MsgType::kReady:
      encode_body(w, static_cast<const proto::ReadyMsg&>(payload));
      break;
    case MsgType::kBftBlock:
      encode_body(w, static_cast<const proto::BftBlockMsg&>(payload));
      break;
    case MsgType::kVote:
      encode_body(w, static_cast<const proto::VoteMsg&>(payload));
      break;
    case MsgType::kProof:
      encode_body(w, static_cast<const proto::ProofMsg&>(payload));
      break;
    case MsgType::kQuery:
      encode_body(w, static_cast<const proto::QueryMsg&>(payload));
      break;
    case MsgType::kChunkResponse:
      encode_body(w, static_cast<const proto::ChunkResponseMsg&>(payload));
      break;
    case MsgType::kCheckpoint:
      encode_body(w, static_cast<const proto::CheckpointMsg&>(payload));
      break;
    case MsgType::kTimeout:
      encode_body(w, static_cast<const proto::TimeoutMsg&>(payload));
      break;
    case MsgType::kViewChange:
      encode_body(w, static_cast<const proto::ViewChangeMsg&>(payload));
      break;
    case MsgType::kNewView:
      encode_body(w, static_cast<const proto::NewViewMsg&>(payload));
      break;
    case MsgType::kBaselineBlock:
      encode_body(w, static_cast<const proto::BaselineBlockMsg&>(payload));
      break;
    case MsgType::kBaselineVote:
      encode_body(w, static_cast<const proto::BaselineVoteMsg&>(payload));
      break;
    case MsgType::kStateOffer:
      encode_body(w, static_cast<const proto::StateOfferMsg&>(payload));
      break;
    case MsgType::kStateChunk:
      encode_body(w, static_cast<const proto::StateChunkMsg&>(payload));
      break;
    case MsgType::kHello:
    case MsgType::kShardFrame:
      return false;  // unreachable: neither is a Payload encoding
  }
  return true;
}

/// Fills a SharedFrame's inline header for a body of `body_size` bytes
/// addressed to `instance` (0: bare 4-byte length prefix; else the 9-byte
/// length + envelope prefix). Byte-identical to the contiguous layout.
void fill_shared_header(SharedFrame& frame, std::size_t body_size, std::uint32_t instance) {
  const auto put_u32 = [&frame](std::size_t at, std::uint32_t v) {
    for (std::size_t i = 0; i < 4; ++i) {
      frame.header[at + i] = static_cast<std::uint8_t>(v >> (8 * i));
    }
  };
  if (instance == 0) {
    put_u32(0, static_cast<std::uint32_t>(body_size));
    frame.header_len = 4;
    return;
  }
  put_u32(0, static_cast<std::uint32_t>(body_size + 5));
  frame.header[4] = static_cast<std::uint8_t>(MsgType::kShardFrame);
  put_u32(5, instance);
  frame.header_len = 9;
}

}  // namespace

bool encode_frame(const sim::Payload& payload, std::uint32_t instance, util::Bytes& out) {
  ByteWriter w(payload.wire_size() + 8);
  if (!encode_tag_and_body(payload, w)) return false;

  const auto& frame = w.bytes();
  ByteWriter header(kFrameHeaderBytes);
  if (instance == 0) {
    // Bare frame: byte-identical to the pre-shard wire format.
    header.u32(static_cast<std::uint32_t>(frame.size()));
    out.insert(out.end(), header.bytes().begin(), header.bytes().end());
    out.insert(out.end(), frame.begin(), frame.end());
    return true;
  }
  // kShardFrame envelope: u32 len | u8 kShardFrame | u32 instance | inner.
  header.u32(static_cast<std::uint32_t>(frame.size() + 5));
  ByteWriter envelope(5);
  envelope.u8(static_cast<std::uint8_t>(MsgType::kShardFrame));
  envelope.u32(instance);
  out.insert(out.end(), header.bytes().begin(), header.bytes().end());
  out.insert(out.end(), envelope.bytes().begin(), envelope.bytes().end());
  out.insert(out.end(), frame.begin(), frame.end());
  return true;
}

bool encode_shared_frame(const sim::Payload& payload, std::uint32_t instance,
                         SharedFrame& out) {
  ByteWriter w(payload.wire_size() + 8);
  if (!encode_tag_and_body(payload, w)) return false;
  out.body = std::make_shared<const util::Bytes>(w.take());
  fill_shared_header(out, out.body->size(), instance);
  return true;
}

util::Bytes encode_frame(const sim::Payload& payload) {
  return encode_frame(payload, /*instance=*/0);
}

util::Bytes encode_frame(const sim::Payload& payload, std::uint32_t instance) {
  util::Bytes out;
  const bool ok = encode_frame(payload, instance, out);
  util::ensures(ok, "encode_frame: payload type has no wire form");
  return out;
}

util::Bytes encode_hello_frame(const Hello& hello) {
  util::Bytes out;
  ByteWriter body(9);
  body.u8(static_cast<std::uint8_t>(MsgType::kHello));
  body.u32(hello.magic);
  body.u32(hello.node_id);
  ByteWriter header(kFrameHeaderBytes);
  header.u32(static_cast<std::uint32_t>(body.size()));
  out.insert(out.end(), header.bytes().begin(), header.bytes().end());
  out.insert(out.end(), body.bytes().begin(), body.bytes().end());
  return out;
}

std::optional<Hello> decode_hello(std::span<const std::uint8_t> body) {
  try {
    ByteReader r(body);
    Hello h;
    h.magic = r.u32();
    h.node_id = r.u32();
    if (h.magic != Hello::kMagic || !r.done()) return std::nullopt;
    return h;
  } catch (const util::ContractViolation&) {
    return std::nullopt;
  }
}

sim::PayloadPtr decode_payload(MsgType type, std::span<const std::uint8_t> body,
                               sim::SimTime local_now) {
  try {
    ByteReader r(body);
    sim::PayloadPtr msg;
    switch (type) {
      case MsgType::kClientRequest:
        msg = decode_client_request(r, local_now);
        break;
      case MsgType::kAck:
        msg = decode_ack(r);
        break;
      case MsgType::kDatablock:
        msg = decode_datablock(r, local_now);
        break;
      case MsgType::kReady:
        msg = decode_ready(r);
        break;
      case MsgType::kBftBlock:
        msg = decode_bftblock(r);
        break;
      case MsgType::kVote:
        msg = decode_vote(r);
        break;
      case MsgType::kProof:
        msg = decode_proof(r);
        break;
      case MsgType::kQuery:
        msg = decode_query(r);
        break;
      case MsgType::kChunkResponse:
        msg = decode_chunk_response(r);
        break;
      case MsgType::kCheckpoint:
        msg = decode_checkpoint(r);
        break;
      case MsgType::kTimeout:
        msg = decode_timeout(r);
        break;
      case MsgType::kViewChange:
        msg = decode_view_change(r);
        break;
      case MsgType::kNewView:
        msg = decode_new_view(r);
        break;
      case MsgType::kBaselineBlock:
        msg = decode_baseline_block(r, local_now);
        break;
      case MsgType::kBaselineVote:
        msg = decode_baseline_vote(r);
        break;
      case MsgType::kStateOffer:
        msg = decode_state_offer(r);
        break;
      case MsgType::kStateChunk:
        msg = decode_state_chunk(r);
        break;
      case MsgType::kHello:
      case MsgType::kShardFrame:
        // Handshake frames belong to the connection layer; shard envelopes
        // are unwrapped by FrameReader and never reach the payload decoder.
        return nullptr;
    }
    // Trailing garbage after a well-formed body is a framing bug somewhere;
    // reject rather than silently accept a longer-than-declared message.
    if (msg != nullptr && !r.done()) return nullptr;
    return msg;
  } catch (const util::ContractViolation&) {
    return nullptr;  // truncated or inconsistent body
  } catch (const std::bad_alloc&) {
    return nullptr;  // hostile count field within the element limit
  }
}

void FrameReader::feed(std::span<const std::uint8_t> data) {
  if (errored_ || data.empty()) return;
  const auto dst = write_buffer(data.size());
  std::memcpy(dst.data(), data.data(), data.size());
  commit(data.size());
}

std::span<std::uint8_t> FrameReader::write_buffer(std::size_t min_bytes) {
  // Compact the consumed prefix before growing: keeps the buffer bounded by
  // max_frame + one read chunk instead of the whole connection history. Only
  // the committed suffix moves — scratch beyond end_ holds no stream bytes.
  if (pos_ > 0 && (pos_ == end_ || pos_ >= (64u << 10))) {
    std::memmove(buf_.data(), buf_.data() + pos_, end_ - pos_);
    end_ -= pos_;
    pos_ = 0;
  }
  if (buf_.size() - end_ < min_bytes) buf_.resize(end_ + min_bytes);
  return {buf_.data() + end_, buf_.size() - end_};
}

void FrameReader::commit(std::size_t n) {
  if (errored_) return;
  util::expects(n <= buf_.size() - end_, "FrameReader: commit past the write buffer");
  end_ += n;
}

FrameReader::Status FrameReader::next(Frame& out) {
  if (errored_) return Status::kError;
  const std::size_t avail = end_ - pos_;
  if (avail < kFrameHeaderBytes) return Status::kNeedMore;

  std::uint32_t len = 0;
  for (std::size_t i = 0; i < kFrameHeaderBytes; ++i) {
    len |= static_cast<std::uint32_t>(buf_[pos_ + i]) << (8 * i);
  }
  if (len == 0 || len > max_frame_) {
    errored_ = true;  // stream desync: nothing after this header is trustable
    return Status::kError;
  }
  if (avail < kFrameHeaderBytes + len) return Status::kNeedMore;

  out.type = static_cast<MsgType>(buf_[pos_ + kFrameHeaderBytes]);
  out.instance = 0;
  out.body = std::span<const std::uint8_t>(buf_.data() + pos_ + kFrameHeaderBytes + 1, len - 1);
  pos_ += kFrameHeaderBytes + len;

  if (out.type == MsgType::kShardFrame) {
    // Unwrap the envelope: u32 instance | u8 inner type | inner body. The
    // inner frame must be a real message — a nested envelope or a wrapped
    // Hello is a protocol violation (handshakes identify the connection, not
    // an instance), and a truncated envelope is indistinguishable from
    // desync; all three poison the stream like a bad length header.
    if (out.body.size() < 5) {
      errored_ = true;
      return Status::kError;
    }
    std::uint32_t instance = 0;
    for (std::size_t i = 0; i < 4; ++i) {
      instance |= static_cast<std::uint32_t>(out.body[i]) << (8 * i);
    }
    const auto inner = static_cast<MsgType>(out.body[4]);
    if (inner == MsgType::kShardFrame || inner == MsgType::kHello) {
      errored_ = true;
      return Status::kError;
    }
    out.instance = instance;
    out.type = inner;
    out.body = out.body.subspan(5);
  }
  return Status::kFrame;
}

}  // namespace leopard::net
