#include "net/socket_env.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "obs/metrics.hpp"
#include "protocol/sim_env.hpp"  // apply_metrics_update
#include "util/check.hpp"

namespace leopard::net {

namespace {

sim::SimTime monotonic_ns() {
  timespec ts{};
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<sim::SimTime>(ts.tv_sec) * sim::kSecond + ts.tv_nsec;
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

void set_nodelay(int fd) {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

/// Real CPUs charge themselves: every modelled cost is zero under SocketEnv.
const sim::CostModel& zero_costs() {
  static const sim::CostModel zeroed = [] {
    sim::CostModel c;
    c.send_per_msg = 0;
    c.send_per_byte_ns = 0;
    c.recv_per_msg = 0;
    c.recv_per_byte_ns = 0;
    c.client_request_ingress = 0;
    c.client_request_shed = 0;
    c.datablock_per_request = 0;
    c.block_per_request = 0;
    c.execute_per_request = 0;
    c.share_sign = 0;
    c.share_verify = 0;
    c.combine_base = 0;
    c.combine_per_share = 0;
    c.combined_verify = 0;
    c.hash_per_byte_ns = 0;
    c.erasure_encode_per_byte_ns = 0;
    c.erasure_decode_per_byte_ns = 0;
    return c;
  }();
  return zeroed;
}

bool make_sockaddr(const PeerAddr& addr, sockaddr_in& out) {
  std::memset(&out, 0, sizeof(out));
  out.sin_family = AF_INET;
  out.sin_port = htons(addr.port);
  return ::inet_pton(AF_INET, addr.host.c_str(), &out.sin_addr) == 1;
}

}  // namespace

SocketEnv::SocketEnv(SocketEnvOptions opts)
    : opts_(std::move(opts)),
      core_timers_(opts_.timer_tick),
      internal_timers_(opts_.timer_tick),
      aux_timers_(opts_.timer_tick),
      epoch_ns_(monotonic_ns()) {
  for (const auto& [id, addr] : opts_.dial) {
    Peer peer;
    peer.addr = addr;
    peer.dialable = true;
    peer.backoff = opts_.reconnect_min;
    peers_.emplace(id, std::move(peer));
  }
  // Every replica gets a persistent peer slot even before it connects, so
  // frames sent toward a peer that dials US (higher id) queue during startup
  // and reconnect windows instead of being dropped. Only client slots
  // (id >= n_replicas) are ephemeral.
  for (sim::NodeId id = 0; id < opts_.n_replicas; ++id) {
    if (id != opts_.self) peers_.try_emplace(id);
  }
  if (!opts_.listen_host.empty()) open_listener();
}

SocketEnv::~SocketEnv() {
  for (auto& [fd, conn] : conns_) {
    loop_.remove(fd);
    ::close(fd);
    (void)conn;
  }
  conns_.clear();
  if (listen_fd_ >= 0) {
    loop_.remove(listen_fd_);
    ::close(listen_fd_);
  }
}

sim::SimTime SocketEnv::now() const { return monotonic_ns() - epoch_ns_; }

const sim::CostModel& SocketEnv::costs() const { return zero_costs(); }

void SocketEnv::stop() {
  stop_requested_.store(true, std::memory_order_relaxed);
  loop_.wakeup();
}

// ---------------------------------------------------------------------------
// Env actions
// ---------------------------------------------------------------------------

void SocketEnv::apply(protocol::Action action) {
  std::visit(
      [&](auto& a) {
        using T = std::decay_t<decltype(a)>;
        if constexpr (std::is_same_v<T, protocol::Send>) {
          send_payload(/*instance=*/0, a.to, *a.payload);
        } else if constexpr (std::is_same_v<T, protocol::Broadcast>) {
          broadcast_payload(/*instance=*/0, *a.payload);
        } else if constexpr (std::is_same_v<T, protocol::SetTimer>) {
          core_timers_.arm(a.token, now() + std::max<sim::SimTime>(a.delay, 0));
        } else if constexpr (std::is_same_v<T, protocol::CancelTimer>) {
          core_timers_.cancel(a.token);
        } else if constexpr (std::is_same_v<T, protocol::Execute>) {
          if (execute_observer_) execute_observer_(a);
        } else if constexpr (std::is_same_v<T, protocol::MetricsUpdate>) {
          protocol::apply_metrics_update(metrics_, a);
        } else {
          // ChargeCpu: the real CPU already charged itself.
        }
      },
      action);
}

void SocketEnv::register_instance(std::uint32_t instance, InstanceHooks hooks) {
  util::expects(!started_, "register_instance after run()");
  util::expects(hooks.deliver != nullptr, "register_instance: deliver hook required");
  const auto [it, inserted] =
      instances_.try_emplace(instance, opts_.timer_tick);
  util::expects(inserted, "register_instance: duplicate instance id");
  it->second.hooks = std::move(hooks);
}

void SocketEnv::send_payload(std::uint32_t instance, sim::NodeId to, const sim::Payload& payload) {
  // Serialize on the CALLING thread (io-thread mode: S shards encode in
  // parallel), then queue on the transport thread, which owns all sockets
  // and stats.
  SharedFrame frame;
  if (!encode_shared_frame(payload, instance, frame)) return;
  if (on_transport_thread()) {
    if (!check_frame_size(frame)) return;
    ++stats_.payload_copies;
    send_frame(to, std::move(frame));
    return;
  }
  post_to_transport([this, to, frame = std::move(frame)]() mutable {
    if (!check_frame_size(frame)) return;
    ++stats_.payload_copies;
    send_frame(to, std::move(frame));
  });
}

void SocketEnv::broadcast_payload(std::uint32_t instance, const sim::Payload& payload) {
  SharedFrame frame;
  if (!encode_shared_frame(payload, instance, frame)) return;
  if (on_transport_thread()) {
    if (!check_frame_size(frame)) return;
    ++stats_.payload_copies;
    broadcast_frame(std::move(frame));
    return;
  }
  post_to_transport([this, frame = std::move(frame)]() mutable {
    if (!check_frame_size(frame)) return;
    ++stats_.payload_copies;
    broadcast_frame(std::move(frame));
  });
}

void SocketEnv::broadcast_frame(SharedFrame frame) {
  // One serialization, zero per-peer copies: every queue gets the same
  // refcounted body (send_frame copies 9 inline header bytes + a shared_ptr).
  bool first = true;
  for (sim::NodeId id = 0; id < opts_.n_replicas; ++id) {
    if (id == opts_.self) continue;
    if (!first) ++stats_.frames_shared;
    first = false;
    send_frame(id, frame);
  }
}

void SocketEnv::arm_instance_timer(std::uint32_t instance, std::uint64_t token,
                                   sim::SimTime delay) {
  instances_.at(instance).timers.arm(token, now() + std::max<sim::SimTime>(delay, 0));
}

void SocketEnv::cancel_instance_timer(std::uint32_t instance, std::uint64_t token) {
  instances_.at(instance).timers.cancel(token);
}

bool SocketEnv::check_frame_size(const SharedFrame& frame) {
  // Enforce the receive-side frame ceiling at the SENDER too: an oversized
  // frame would be flagged as stream desync by every receiver, and each
  // reconnect would re-send it — a permanent decode-error livelock. Dropping
  // it here (with a loud one-time diagnostic: this is a config error, e.g.
  // datablock_requests × payload_size past the frame limit) keeps the
  // cluster alive.
  if (frame.wire_size() - kFrameHeaderBytes <= opts_.max_frame_bytes) return true;
  ++stats_.frames_dropped;
  if (!oversized_frame_reported_) {
    oversized_frame_reported_ = true;
    std::fprintf(stderr,
                 "leopard/net: dropping %zu-byte frame over the %zu-byte frame limit "
                 "(lower datablock_requests/batch_size x payload_size)\n",
                 frame.wire_size(), opts_.max_frame_bytes);
  }
  return false;
}

void SocketEnv::send_frame(sim::NodeId to, SharedFrame frame) {
  const auto pit = peers_.find(to);
  if (pit == peers_.end()) {
    // A destination we neither dial nor currently accept (e.g. an ack to a
    // spoofed client_id): drop rather than let an attacker-chosen id space
    // grow the peer map without bound.
    ++stats_.frames_dropped;
    ++peer_counters_[to].shed_frames;
    return;
  }
  auto& peer = pit->second;
  if (peer.fd >= 0) {
    const auto it = conns_.find(peer.fd);
    if (it != conns_.end() && !it->second->connecting) {
      enqueue_on_conn(*it->second, std::move(frame));
      return;
    }
  }
  if (!peer.dialable && to >= opts_.n_replicas) {
    // Disconnected client: only IT can re-establish the link, and it
    // re-submits unacked requests when it does — nothing to keep.
    ++stats_.frames_dropped;
    ++peer_counters_[to].shed_frames;
    return;
  }
  // Disconnected replica peer (one we re-dial, or one that dials us and
  // will flush on its Hello): queue bounded, dropping the oldest first.
  // Leopard tolerates the loss (retrieval, client re-submission,
  // view-change); the baselines are normal-case-only cores with no
  // retransmission, so sustained shedding can stall them — see
  // docs/DEPLOY.md "Differences from a hardened production deployment".
  // SendQueue accounts FULL wire bytes (header + body), so
  // peer_buffer_limit bounds what actually hits the wire.
  const auto result = peer.pending.push(std::move(frame), opts_.peer_buffer_limit);
  const auto dropped = result.shed + (result.queued ? 0 : 1);
  if (dropped > 0) {
    stats_.frames_dropped += dropped;
    peer_counters_[to].shed_frames += dropped;
  }
}

void SocketEnv::append_frame(Conn& conn, SharedFrame frame) {
  // Slow peer: shed rather than balloon, oldest first (matching the
  // disconnected-peer policy — stale frames are the least useful to a BFT
  // protocol). The queue front is pinned once partially written: a frame
  // must leave the wire whole or not at all.
  const auto result = conn.outq.push(std::move(frame), opts_.peer_buffer_limit);
  const auto dropped = result.shed + (result.queued ? 0 : 1);
  if (dropped > 0) {
    stats_.frames_dropped += dropped;
    if (conn.bound) peer_counters_[conn.peer].shed_frames += dropped;
  }
}

void SocketEnv::enqueue_on_conn(Conn& conn, SharedFrame frame) {
  append_frame(conn, std::move(frame));
  flush_conn(conn);  // NOTE: may close and destroy `conn` on a fatal error
}

// ---------------------------------------------------------------------------
// Listener / dialing
// ---------------------------------------------------------------------------

void SocketEnv::open_listener() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  util::ensures(listen_fd_ >= 0, "socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  const bool ok = make_sockaddr(PeerAddr{opts_.listen_host, opts_.listen_port}, addr);
  util::expects(ok, "listen_host must be an IPv4 dotted quad");
  int rc = ::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
  util::ensures(rc == 0, "bind() failed (address in use?)");
  rc = ::listen(listen_fd_, 128);
  util::ensures(rc == 0, "listen() failed");

  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
  bound_port_ = ntohs(bound.sin_port);

  set_nonblocking(listen_fd_);
  loop_.add(listen_fd_, EventLoop::kReadable,
            [this](std::uint32_t events) { on_listener_ready(events); });
}

void SocketEnv::on_listener_ready(std::uint32_t) {
  for (;;) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == ECONNABORTED ||
          errno == EINTR) {
        return;  // drained (or transient): wait for the next readiness event
      }
      // Persistent failure (EMFILE/ENFILE/...): the level-triggered listener
      // would re-report readable immediately and busy-spin the loop. Park it
      // and retry after a beat — fds may have been released by then.
      loop_.remove(listen_fd_);
      internal_timers_.arm(kListenerRetryToken, now() + 100 * sim::kMillisecond);
      return;
    }
    set_nodelay(fd);
    auto conn = std::make_unique<Conn>(opts_.max_frame_bytes);
    conn->fd = fd;
    conns_.emplace(fd, std::move(conn));
    loop_.add(fd, EventLoop::kReadable,
              [this, fd](std::uint32_t events) { on_conn_ready(fd, events); });
    ++stats_.accepts;
  }
}

void SocketEnv::dial_peer(sim::NodeId id) {
  auto& peer = peers_.at(id);
  if (peer.fd >= 0) return;  // already connected / connecting

  sockaddr_in addr{};
  if (!make_sockaddr(peer.addr, addr)) return;  // unroutable manifest entry

  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    schedule_reconnect(id);
    return;
  }
  set_nodelay(fd);

  auto conn = std::make_unique<Conn>(opts_.max_frame_bytes);
  conn->fd = fd;
  conn->dialed = true;
  conn->bound = true;  // the dialer knows who it dialed
  conn->peer = id;
  peer.fd = fd;

  const int rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
  if (rc == 0) {
    conns_.emplace(fd, std::move(conn));
    loop_.add(fd, EventLoop::kReadable,
              [this, fd](std::uint32_t events) { on_conn_ready(fd, events); });
    finish_connect(*conns_.at(fd));
  } else if (errno == EINPROGRESS) {
    conn->connecting = true;
    conns_.emplace(fd, std::move(conn));
    loop_.add(fd, EventLoop::kWritable,
              [this, fd](std::uint32_t events) { on_conn_ready(fd, events); });
  } else {
    ::close(fd);
    peer.fd = -1;
    schedule_reconnect(id);
  }
}

void SocketEnv::schedule_reconnect(sim::NodeId id) {
  auto& peer = peers_.at(id);
  // ±25% deterministic jitter keyed by (self, peer, attempt): a cluster
  // restarted in lockstep (or a downed peer everyone redials) decorrelates
  // its reconnect storms instead of thundering in phase every backoff step.
  const std::uint64_t key = (static_cast<std::uint64_t>(opts_.self) << 40) ^
                            (static_cast<std::uint64_t>(id) << 16) ^
                            peer.reconnect_attempts;
  ++peer.reconnect_attempts;
  ++peer_counters_[id].reconnect_attempts;
  internal_timers_.arm(id, now() + jittered(peer.backoff, key));
  peer.backoff = std::min(peer.backoff * 2, opts_.reconnect_max);
}

void SocketEnv::finish_connect(Conn& conn) {
  conn.connecting = false;
  auto& peer = peers_.at(conn.peer);
  peer.backoff = opts_.reconnect_min;  // link is good again
  peer.reconnect_attempts = 0;
  ++stats_.connects;

  // Identify ourselves first (TCP FIFO: the peer sees Hello before anything
  // else), then drain everything queued while disconnected. Queue it all
  // before the single flush: flush_conn may close and destroy `conn` on a
  // fatal send error, so nothing may touch it afterwards.
  append_frame(conn, SharedFrame::from_wire(encode_hello_frame(Hello{Hello::kMagic, opts_.self})));
  SharedFrame queued;
  while (peer.pending.pop_front(queued)) append_frame(conn, std::move(queued));
  flush_conn(conn);  // may destroy conn; must be the last use
}

void SocketEnv::bind_conn_to_peer(Conn& conn, sim::NodeId id) {
  conn.bound = true;
  conn.peer = id;
  auto& peer = peers_[id];
  if (peer.fd >= 0 && peer.fd != conn.fd) {
    close_conn(peer.fd, /*reconnect=*/false);  // stale duplicate: latest wins
  }
  peer.fd = conn.fd;
  SharedFrame queued;
  while (peer.pending.pop_front(queued)) append_frame(conn, std::move(queued));
  flush_conn(conn);  // may destroy conn; must be the last use
}

void SocketEnv::close_conn(int fd, bool reconnect) {
  const auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  const auto conn = std::move(it->second);
  conns_.erase(it);
  loop_.remove(fd);
  ::close(fd);

  if (conn->bound) {
    if (const auto pit = peers_.find(conn->peer); pit != peers_.end() && pit->second.fd == fd) {
      pit->second.fd = -1;
      if (pit->second.dialable) {
        if (reconnect) schedule_reconnect(conn->peer);
      } else if (conn->peer >= opts_.n_replicas) {
        // Client slots exist while their connection does: dropping them here
        // keeps the peer map bounded by the live connection count, not by
        // the id space clients claim. Replica slots persist (the peer
        // re-dials us).
        peers_.erase(pit);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// I/O readiness
// ---------------------------------------------------------------------------

void SocketEnv::on_conn_ready(int fd, std::uint32_t events) {
  const auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  Conn& conn = *it->second;

  if (conn.connecting) {
    int err = 0;
    socklen_t len = sizeof(err);
    ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len);
    if ((events & EventLoop::kError) != 0 || err != 0) {
      close_conn(fd, /*reconnect=*/true);
      return;
    }
    loop_.modify(fd, EventLoop::kReadable);
    finish_connect(conn);
    return;
  }

  if ((events & EventLoop::kError) != 0) {
    close_conn(fd, /*reconnect=*/true);
    return;
  }
  if ((events & EventLoop::kWritable) != 0) flush_conn(conn);
  if (!conns_.contains(fd)) return;  // write error closed it
  if ((events & EventLoop::kReadable) != 0) read_conn(conn);
}

void SocketEnv::flush_conn(Conn& conn) {
  // Scatter-gather flush: one sendmsg() per batch of up to kMaxIov spans
  // (header + body per frame), resuming at arbitrary byte offsets — a
  // partial write may stop mid-header, mid-body, or between frames, and the
  // next call picks up exactly there without copying or re-assembling.
  constexpr std::size_t kMaxIov = 64;
  iovec iov[kMaxIov];
  while (!conn.outq.empty()) {
    std::size_t total = 0;
    const auto n_iov = conn.outq.fill_iovecs(iov, kMaxIov, &total);
    msghdr msg{};
    msg.msg_iov = iov;
    msg.msg_iovlen = n_iov;
    const auto n = ::sendmsg(conn.fd, &msg, MSG_NOSIGNAL);
    ++stats_.writev_calls;
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      close_conn(conn.fd, /*reconnect=*/true);
      return;
    }
    stats_.bytes_sent += static_cast<std::uint64_t>(n);
    stats_.frames_sent += conn.outq.consume(static_cast<std::size_t>(n));
    if (static_cast<std::size_t>(n) < total) break;  // kernel buffer full
  }
  update_interest(conn);
}

void SocketEnv::update_interest(Conn& conn) {
  const bool want_write = !conn.outq.empty();
  if (want_write == conn.want_write) return;
  conn.want_write = want_write;
  loop_.modify(conn.fd,
               EventLoop::kReadable | (want_write ? EventLoop::kWritable : 0u));
}

void SocketEnv::read_conn(Conn& conn) {
  const int fd = conn.fd;
  for (;;) {
    // Decode-in-place ingest: recv() lands bytes directly in the reader's
    // buffer, where next() parses them and hands out body spans — no
    // intermediate stack buffer, no memcpy per inbound byte.
    const auto dst = conn.reader.write_buffer(64 * 1024);
    const auto n = ::recv(fd, dst.data(), dst.size(), 0);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      close_conn(fd, /*reconnect=*/true);
      return;
    }
    if (n == 0) {  // orderly shutdown by the peer
      close_conn(fd, /*reconnect=*/true);
      return;
    }
    stats_.bytes_received += static_cast<std::uint64_t>(n);
    conn.reader.commit(static_cast<std::size_t>(n));

    FrameReader::Frame frame;
    for (;;) {
      const auto status = conn.reader.next(frame);
      if (status == FrameReader::Status::kNeedMore) break;
      if (status == FrameReader::Status::kError) {
        ++stats_.decode_errors;
        close_conn(fd, /*reconnect=*/true);  // desync: resync via reconnect
        return;
      }
      ++stats_.frames_received;
      deliver_frame(conn, frame);
      if (!conns_.contains(fd)) return;  // a malformed body closed it
    }
    if (static_cast<std::size_t>(n) < dst.size()) break;  // drained the socket
  }
}

void SocketEnv::deliver_frame(Conn& conn, const FrameReader::Frame& frame) {
  if (frame.type == MsgType::kHello) {
    const auto hello = decode_hello(frame.body);
    if (!hello) {
      ++stats_.decode_errors;
      close_conn(conn.fd, /*reconnect=*/true);
      return;
    }
    if (!conn.bound) bind_conn_to_peer(conn, hello->node_id);
    return;  // repeated hellos on a bound connection are ignored
  }
  if (!conn.bound) {
    // Frames before the handshake: protocol violation by the peer.
    ++stats_.decode_errors;
    close_conn(conn.fd, /*reconnect=*/false);
    return;
  }

  // Resolve the destination instance before decoding: a frame for an id we
  // never registered (a peer running more shards than us, or a hostile tag)
  // is dropped at frame level — the connection carries other instances'
  // traffic and must survive.
  Instance* instance = nullptr;
  if (frame.instance != 0 || protocol_ == nullptr) {
    const auto it = instances_.find(frame.instance);
    if (it == instances_.end()) {
      ++stats_.unknown_instance;
      return;
    }
    instance = &it->second;
  }

  const auto payload = decode_payload(frame.type, frame.body, now());
  if (payload == nullptr) {
    ++stats_.decode_errors;
    close_conn(conn.fd, /*reconnect=*/true);
    return;
  }

  const auto from = conn.peer;
  // Node-level subsystems (state sync) speak untagged frames: the tap sees
  // only instance-0 traffic, whichever core hosts it.
  if (frame.instance == 0 && payload_interceptor_ && payload_interceptor_(from, payload)) {
    return;
  }
  if (instance != nullptr) {
    // Io-thread mode: hop to the owning worker. `payload` is a refcounted
    // heap message independent of the reader buffer, so it survives the
    // handoff; the closure copy keeps it alive.
    if (instance->worker != nullptr && mt_active_.load(std::memory_order_relaxed)) {
      post_to_worker(*instance->worker,
                     [inst = instance, from, payload] { inst->hooks.deliver(from, payload); });
    } else {
      instance->hooks.deliver(from, payload);
    }
    return;
  }
  if (auto cr = std::dynamic_pointer_cast<const proto::ClientRequestMsg>(payload)) {
    protocol_->on_client_request(*this, from, cr);
  } else {
    protocol_->on_message(*this, from, payload);
  }
}

// ---------------------------------------------------------------------------
// Io-thread machinery
// ---------------------------------------------------------------------------

bool SocketEnv::on_transport_thread() const {
  // Before start_workers()/after stop_workers() everything is the transport
  // thread: the single-threaded path never pays for an id compare.
  return !mt_active_.load(std::memory_order_acquire) ||
         std::this_thread::get_id() == transport_tid_;
}

void SocketEnv::post_to_transport(std::function<void()> fn) {
  if (on_transport_thread()) {
    fn();
    return;
  }
  // The transport drains its ring every loop iteration, so spinning here is
  // bounded; per-producer FIFO (Vyukov ticket order) keeps each shard's
  // frames in submission order.
  while (!transport_ring_.try_push(std::move(fn))) std::this_thread::yield();
  // Dekker-style wake: our push must be visible before we read the idle
  // flag, and the transport sets the flag before checking the ring.
  std::atomic_thread_fence(std::memory_order_seq_cst);
  if (transport_idle_.load(std::memory_order_relaxed)) loop_.wakeup();
}

void SocketEnv::post_to_instance(std::uint32_t instance, std::function<void()> fn) {
  auto& inst = instances_.at(instance);
  if (!mt_active_.load(std::memory_order_acquire) || inst.worker == nullptr) {
    fn();
    return;
  }
  post_to_worker(*inst.worker, std::move(fn));
}

void SocketEnv::post_to_worker(Worker& worker, std::function<void()> fn) {
  while (!worker.ring.try_push(std::move(fn))) {
    // Drain our own inbox while waiting: the worker may be blocked pushing
    // toward the transport ring, and we are its only consumer — draining
    // breaks the cycle (classic two-ring deadlock).
    drain_transport_ring();
    std::this_thread::yield();
  }
  std::atomic_thread_fence(std::memory_order_seq_cst);
  if (worker.idle.load(std::memory_order_relaxed)) worker.loop.wakeup();
}

void SocketEnv::drain_transport_ring() {
  std::function<void()> fn;
  while (transport_ring_.try_pop(fn)) fn();
}

void SocketEnv::start_workers() {
  if (opts_.io_threads <= 1 || instances_.size() <= 1) return;  // single-thread path
  const auto n_workers = std::min<std::size_t>(opts_.io_threads, instances_.size());
  workers_.reserve(n_workers);
  for (std::size_t i = 0; i < n_workers; ++i) workers_.push_back(std::make_unique<Worker>());
  // Round-robin by registration order (instance ids ascend in the map):
  // deterministic placement, balanced within one instance.
  std::size_t idx = 0;
  for (auto& [id, instance] : instances_) {
    auto& worker = *workers_[idx % n_workers];
    instance.worker = &worker;
    worker.instances.push_back(&instance);
    ++idx;
  }
  mt_active_.store(true, std::memory_order_release);
  for (auto& worker : workers_) {
    worker->thread = std::thread([this, w = worker.get()] { worker_main(*w); });
  }
}

void SocketEnv::stop_workers() {
  if (workers_.empty()) return;
  for (auto& worker : workers_) {
    worker->stop.store(true, std::memory_order_release);
    worker->loop.wakeup();
  }
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) worker->thread.join();
  }
  mt_active_.store(false, std::memory_order_release);
  for (auto& [id, instance] : instances_) instance.worker = nullptr;
  workers_.clear();
  // Workers flushed their final sends/Executes into our ring before exiting.
  drain_transport_ring();
}

void SocketEnv::worker_main(Worker& worker) {
  constexpr int kMaxPollMs = 100;
  while (!worker.stop.load(std::memory_order_acquire)) {
    std::function<void()> fn;
    while (worker.ring.try_pop(fn)) fn();

    const auto t = now();
    sim::SimTime wake = -1;
    for (auto* instance : worker.instances) {
      instance->timers.advance(t, [instance](TimerWheel::Token token) {
        if (instance->hooks.on_timer) instance->hooks.on_timer(token);
      });
      const auto instance_wake = instance->timers.next_wake();
      if (wake < 0 || (instance_wake >= 0 && instance_wake < wake)) wake = instance_wake;
    }

    int timeout_ms = kMaxPollMs;
    if (wake >= 0) {
      const auto delta = wake - now();
      timeout_ms = delta <= 0
                       ? 0
                       : static_cast<int>(std::min<sim::SimTime>(
                             (delta + sim::kMillisecond - 1) / sim::kMillisecond, kMaxPollMs));
    }
    // Sleep via the idle-flag protocol: publish idle, then re-check the ring
    // (the producer's fence pairs with ours). The bounded poll caps the cost
    // of any missed wake at one slice.
    worker.idle.store(true, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (worker.ring.empty() && !worker.stop.load(std::memory_order_acquire)) {
      worker.loop.poll(timeout_ms);
    }
    worker.idle.store(false, std::memory_order_relaxed);
  }
  // Final drain: deliveries posted between the last pop and stop.
  std::function<void()> fn;
  while (worker.ring.try_pop(fn)) fn();
}

// ---------------------------------------------------------------------------
// Main loop
// ---------------------------------------------------------------------------

void SocketEnv::fire_core_timer(TimerWheel::Token token) { protocol_->on_timer(*this, token); }

void SocketEnv::arm_aux_timer(std::uint64_t token, sim::SimTime delay) {
  aux_timers_.arm(token, now() + std::max<sim::SimTime>(delay, 0));
}

void SocketEnv::cancel_aux_timer(std::uint64_t token) { aux_timers_.cancel(token); }

void SocketEnv::run(const std::function<bool()>& should_stop) {
  util::expects(protocol_ != nullptr || !instances_.empty(),
                "SocketEnv::run without an attached protocol or registered instances");
  transport_tid_ = std::this_thread::get_id();
  if (!started_) {
    started_ = true;
    // on_start hooks run on THIS thread before any worker exists: everything
    // they touch is published to workers by the thread-spawn happens-before.
    if (protocol_ != nullptr) protocol_->on_start(*this);
    for (auto& [id, instance] : instances_) {
      if (instance.hooks.on_start) instance.hooks.on_start();
    }
    for (const auto& [id, peer] : peers_) {
      if (peer.dialable) dial_peer(id);
    }
  }
  start_workers();

  // Poll in bounded slices so stop()/should_stop and coarse timers are
  // honoured even when the sockets are idle.
  constexpr int kMaxPollMs = 100;
  while (!stop_requested_.load(std::memory_order_relaxed)) {
    if (should_stop && should_stop()) break;

    const bool mt = mt_active_.load(std::memory_order_relaxed);
    if (mt) drain_transport_ring();

    const auto t = now();
    core_timers_.advance(t, [this](TimerWheel::Token token) { fire_core_timer(token); });
    if (!mt) {
      // Instance wheels belong to their workers in io-thread mode.
      for (auto& [id, instance] : instances_) {
        instance.timers.advance(t, [&instance](TimerWheel::Token token) {
          if (instance.hooks.on_timer) instance.hooks.on_timer(token);
        });
      }
    }
    aux_timers_.advance(t, [this](TimerWheel::Token token) {
      if (aux_timer_handler_) aux_timer_handler_(token);
    });
    internal_timers_.advance(t, [this](TimerWheel::Token token) {
      if (token == kListenerRetryToken) {
        loop_.add(listen_fd_, EventLoop::kReadable,
                  [this](std::uint32_t events) { on_listener_ready(events); });
        on_listener_ready(EventLoop::kReadable);  // drain the parked backlog
      } else {
        dial_peer(static_cast<sim::NodeId>(token));
      }
    });

    sim::SimTime wake = core_timers_.next_wake();
    const auto internal_wake = internal_timers_.next_wake();
    if (wake < 0 || (internal_wake >= 0 && internal_wake < wake)) wake = internal_wake;
    const auto aux_wake = aux_timers_.next_wake();
    if (wake < 0 || (aux_wake >= 0 && aux_wake < wake)) wake = aux_wake;
    if (!mt) {
      for (const auto& [id, instance] : instances_) {
        const auto instance_wake = instance.timers.next_wake();
        if (wake < 0 || (instance_wake >= 0 && instance_wake < wake)) wake = instance_wake;
      }
    }

    int timeout_ms = kMaxPollMs;
    if (wake >= 0) {
      const auto delta = wake - now();
      timeout_ms = delta <= 0
                       ? 0
                       : static_cast<int>(std::min<sim::SimTime>(
                             (delta + sim::kMillisecond - 1) / sim::kMillisecond, kMaxPollMs));
    }
    if (mt) {
      // Same idle-flag protocol as the workers, with the poll bounded so a
      // missed wake costs at most one slice.
      transport_idle_.store(true, std::memory_order_relaxed);
      std::atomic_thread_fence(std::memory_order_seq_cst);
      if (!transport_ring_.empty()) timeout_ms = 0;
      loop_.poll(timeout_ms);
      transport_idle_.store(false, std::memory_order_relaxed);
    } else {
      loop_.poll(timeout_ms);
    }
  }
  stop_workers();
  stop_requested_.store(false, std::memory_order_relaxed);  // later run() may resume
}

// ---------------------------------------------------------------------------
// Observability
// ---------------------------------------------------------------------------

std::vector<SocketEnv::PeerSnapshot> SocketEnv::peer_snapshots() const {
  std::vector<PeerSnapshot> out;
  out.reserve(peer_counters_.size());
  // Every id that ever dialed, was dialed, or shed appears in at least one of
  // peers_ / peer_counters_; merge both maps so accepted-only peers show too.
  std::map<sim::NodeId, PeerSnapshot> merged;
  for (const auto& [id, peer] : peers_) {
    auto& snap = merged[id];
    snap.id = id;
    snap.connected = peer.fd >= 0;
    snap.queued_bytes += peer.pending.bytes();
    if (peer.fd >= 0) {
      if (const auto it = conns_.find(peer.fd); it != conns_.end()) {
        snap.queued_bytes += it->second->outq.bytes();
      }
    }
  }
  for (const auto& [fd, conn] : conns_) {
    if (!conn->bound || peers_.contains(conn->peer)) continue;
    auto& snap = merged[conn->peer];
    snap.id = conn->peer;
    snap.connected = true;
    snap.queued_bytes += conn->outq.bytes();
  }
  for (const auto& [id, counters] : peer_counters_) {
    auto& snap = merged[id];
    snap.id = id;
    snap.shed_frames = counters.shed_frames;
    snap.reconnect_attempts = counters.reconnect_attempts;
  }
  for (auto& [id, snap] : merged) out.push_back(snap);
  return out;
}

void SocketEnv::register_observability(obs::Registry& registry) {
  const struct {
    const char* name;
    const char* help;
    const std::uint64_t* field;
  } kCounters[] = {
      {"leopard_net_frames_sent_total", "Frames written to peer connections",
       &stats_.frames_sent},
      {"leopard_net_bytes_sent_total", "Wire bytes written to peer connections",
       &stats_.bytes_sent},
      {"leopard_net_frames_received_total", "Frames decoded from peer connections",
       &stats_.frames_received},
      {"leopard_net_bytes_received_total", "Wire bytes read from peer connections",
       &stats_.bytes_received},
      {"leopard_net_decode_errors_total", "Malformed frames (connection dropped)",
       &stats_.decode_errors},
      {"leopard_net_frames_shed_total", "Frames dropped by peer-buffer overflow",
       &stats_.frames_dropped},
      {"leopard_net_connects_total", "Successful dials including reconnects",
       &stats_.connects},
      {"leopard_net_accepts_total", "Accepted inbound connections", &stats_.accepts},
      {"leopard_net_unknown_instance_total",
       "Frames addressed to an unregistered shard instance", &stats_.unknown_instance},
      {"leopard_net_writev_calls_total", "sendmsg() syscalls on the flush path",
       &stats_.writev_calls},
      {"leopard_net_payload_copies_total", "Outbound payload serializations",
       &stats_.payload_copies},
      {"leopard_net_frames_shared_total",
       "Broadcast enqueues aliasing an existing frame body", &stats_.frames_shared},
  };
  for (const auto& c : kCounters) {
    registry.counter_fn(c.name, c.help, {},
                        [field = c.field] { return static_cast<double>(*field); });
  }

  registry.gauge_fn("leopard_net_send_queue_bytes",
                    "Outbound bytes queued across all peer links", {}, [this] {
                      double total = 0;
                      for (const auto& snap : peer_snapshots()) {
                        total += static_cast<double>(snap.queued_bytes);
                      }
                      return total;
                    });
  registry.gauge_fn("leopard_net_connected_peers", "Peer links currently established",
                    {}, [this] {
                      double n = 0;
                      for (const auto& snap : peer_snapshots()) n += snap.connected ? 1 : 0;
                      return n;
                    });

  const auto peer_label = [](sim::NodeId id) {
    return "peer=\"" + std::to_string(id) + "\"";
  };
  for (const auto& [id, peer] : peers_) {
    const auto pid = id;
    registry.counter_fn("leopard_net_peer_shed_frames_total",
                        "Frames dropped toward one peer", peer_label(pid), [this, pid] {
                          const auto it = peer_counters_.find(pid);
                          return it == peer_counters_.end()
                                     ? 0.0
                                     : static_cast<double>(it->second.shed_frames);
                        });
    registry.counter_fn("leopard_net_peer_reconnects_total",
                        "Dial retries scheduled toward one peer", peer_label(pid),
                        [this, pid] {
                          const auto it = peer_counters_.find(pid);
                          return it == peer_counters_.end()
                                     ? 0.0
                                     : static_cast<double>(it->second.reconnect_attempts);
                        });
    registry.gauge_fn("leopard_net_peer_queue_bytes",
                      "Outbound bytes queued toward one peer", peer_label(pid),
                      [this, pid] {
                        for (const auto& snap : peer_snapshots()) {
                          if (snap.id == pid) return static_cast<double>(snap.queued_bytes);
                        }
                        return 0.0;
                      });
  }

  // Protocol-core counters derived from MetricsUpdate actions. metrics_ is
  // mutated only on the transport thread (MuxEnv posts its updates here), the
  // same thread that scrapes.
  registry.counter_fn("leopard_executed_requests_total",
                      "Requests executed (counted at the designated observer)", {},
                      [this] { return static_cast<double>(metrics_.executed_requests); });
  registry.counter_fn("leopard_view_changes_total", "View changes completed", {},
                      [this] { return static_cast<double>(metrics_.view_changes_completed); });
  registry.counter_fn("leopard_datablocks_recovered_total",
                      "Datablocks reconstructed via erasure retrieval", {},
                      [this] { return static_cast<double>(metrics_.datablocks_recovered); });
  registry.gauge_fn("leopard_safety_violation",
                    "1 if this node ever observed conflicting confirmations", {},
                    [this] { return metrics_.safety_violation ? 1.0 : 0.0; });
}

}  // namespace leopard::net
