#include "net/manifest.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>

#include <charconv>
#include <fstream>
#include <sstream>

#include "shard/sequencer.hpp"  // kMaxShards
#include "util/check.hpp"

namespace leopard::net {

namespace {

[[noreturn]] void fail(std::size_t line_no, const std::string& what) {
  throw util::ContractViolation("manifest line " + std::to_string(line_no) + ": " + what);
}

std::uint64_t parse_u64(std::string_view token, std::size_t line_no) {
  std::uint64_t value = 0;
  const auto* end = token.data() + token.size();
  const auto [ptr, ec] = std::from_chars(token.data(), end, value);
  if (ec != std::errc{} || ptr != end) fail(line_no, "expected a number, got '" + std::string(token) + "'");
  return value;
}

PeerAddr parse_addr(std::string_view token, std::size_t line_no) {
  const auto colon = token.rfind(':');
  if (colon == std::string_view::npos || colon == 0 || colon + 1 == token.size()) {
    fail(line_no, "expected host:port, got '" + std::string(token) + "'");
  }
  PeerAddr addr;
  addr.host = std::string(token.substr(0, colon));
  // Validate here, where the line diagnostic is available: an unparseable
  // host would otherwise only surface as a silent dial failure at runtime.
  in_addr parsed{};
  if (::inet_pton(AF_INET, addr.host.c_str(), &parsed) != 1) {
    fail(line_no, "host must be an IPv4 dotted quad, got '" + addr.host + "'");
  }
  const auto port = parse_u64(token.substr(colon + 1), line_no);
  if (port == 0 || port > 65535) fail(line_no, "port out of range");
  addr.port = static_cast<std::uint16_t>(port);
  return addr;
}

}  // namespace

Manifest Manifest::parse(std::string_view text) {
  Manifest m;
  std::istringstream in{std::string(text)};
  std::string line;
  std::size_t line_no = 0;
  bool saw_n = false;
  std::map<std::string, sim::NodeId> seen_addrs;  // "host:port" -> node id

  while (std::getline(in, line)) {
    ++line_no;
    if (const auto hash = line.find('#'); hash != std::string::npos) line.resize(hash);
    std::istringstream fields(line);
    std::string key;
    if (!(fields >> key)) continue;  // blank / comment-only line

    std::string value;
    if (!(fields >> value)) fail(line_no, "key '" + key + "' is missing a value");

    if (key == "protocol") {
      if (value != "leopard" && value != "hotstuff" && value != "pbft") {
        fail(line_no, "unknown protocol '" + value + "'");
      }
      m.protocol = value;
    } else if (key == "n") {
      m.n = static_cast<std::uint32_t>(parse_u64(value, line_no));
      saw_n = true;
    } else if (key == "seed") {
      m.seed = parse_u64(value, line_no);
    } else if (key == "payload_size") {
      m.payload_size = static_cast<std::uint32_t>(parse_u64(value, line_no));
    } else if (key == "datablock_requests") {
      m.datablock_requests = static_cast<std::uint32_t>(parse_u64(value, line_no));
    } else if (key == "bftblock_links") {
      m.bftblock_links = static_cast<std::uint32_t>(parse_u64(value, line_no));
    } else if (key == "max_parallel_instances") {
      m.max_parallel_instances = static_cast<std::uint32_t>(parse_u64(value, line_no));
    } else if (key == "datablock_max_wait_ms") {
      m.datablock_max_wait = static_cast<sim::SimTime>(parse_u64(value, line_no)) * sim::kMillisecond;
    } else if (key == "proposal_max_wait_ms") {
      m.proposal_max_wait = static_cast<sim::SimTime>(parse_u64(value, line_no)) * sim::kMillisecond;
    } else if (key == "retrieval_timeout_ms") {
      m.retrieval_timeout = static_cast<sim::SimTime>(parse_u64(value, line_no)) * sim::kMillisecond;
    } else if (key == "view_timeout_ms") {
      m.view_timeout = static_cast<sim::SimTime>(parse_u64(value, line_no)) * sim::kMillisecond;
    } else if (key == "mempool_capacity") {
      m.mempool_capacity = static_cast<std::uint32_t>(parse_u64(value, line_no));
    } else if (key == "batch_size") {
      m.batch_size = static_cast<std::uint32_t>(parse_u64(value, line_no));
    } else if (key == "peer_buffer_bytes") {
      m.peer_buffer_bytes = parse_u64(value, line_no);
      if (m.peer_buffer_bytes == 0) fail(line_no, "peer_buffer_bytes must be > 0");
    } else if (key == "shards") {
      m.shards = static_cast<std::uint32_t>(parse_u64(value, line_no));
      if (m.shards < 1 || m.shards > shard::kMaxShards) {
        fail(line_no, "shards must be in [1, " + std::to_string(shard::kMaxShards) + "]");
      }
    } else if (key == "encode_workers") {
      m.encode_workers = static_cast<std::uint32_t>(parse_u64(value, line_no));
    } else if (key == "proxy") {
      const auto id = static_cast<sim::NodeId>(parse_u64(value, line_no));
      std::string addr;
      if (!(fields >> addr)) fail(line_no, "proxy line is missing host:port");
      if (m.proxies.contains(id)) fail(line_no, "duplicate proxy id");
      m.proxies.emplace(id, parse_addr(addr, line_no));
    } else if (key == "node") {
      const auto id = static_cast<sim::NodeId>(parse_u64(value, line_no));
      std::string addr;
      if (!(fields >> addr)) fail(line_no, "node line is missing host:port");
      if (m.nodes.contains(id)) fail(line_no, "duplicate node id");
      const auto parsed = parse_addr(addr, line_no);
      // Key on the parsed form so "host:01234" and "host:1234" collide.
      const auto addr_key = parsed.host + ":" + std::to_string(parsed.port);
      if (const auto [it, inserted] = seen_addrs.emplace(addr_key, id); !inserted) {
        fail(line_no, "duplicate address " + addr_key + " (already used by node " +
                          std::to_string(it->second) + ")");
      }
      m.nodes.emplace(id, parsed);
    } else {
      fail(line_no, "unknown key '" + key + "'");
    }

    std::string extra;
    if (fields >> extra) fail(line_no, "trailing token '" + extra + "'");
  }

  if (!saw_n) throw util::ContractViolation("manifest: missing 'n'");
  if (m.n < 1) throw util::ContractViolation("manifest: n must be >= 1");
  for (sim::NodeId id = 0; id < m.n; ++id) {
    if (!m.nodes.contains(id)) {
      throw util::ContractViolation("manifest: missing node line for replica " +
                                    std::to_string(id));
    }
  }
  for (const auto& [id, addr] : m.nodes) {
    if (id >= m.n) {
      throw util::ContractViolation("manifest: node id " + std::to_string(id) +
                                    " out of range for n");
    }
    (void)addr;
  }
  for (const auto& [id, addr] : m.proxies) {
    if (id >= m.n) {
      throw util::ContractViolation("manifest: proxy id " + std::to_string(id) +
                                    " out of range for n");
    }
    (void)addr;
  }
  return m;
}

Manifest Manifest::parse_file(const std::string& path) {
  std::ifstream in(path);
  util::expects(in.good(), "manifest: cannot open file");
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse(buf.str());
}

protocol::ProtocolSpec Manifest::spec() const {
  protocol::ProtocolSpec spec;
  if (protocol == "leopard") {
    core::LeopardConfig cfg;
    cfg.n = n;
    cfg.payload_size = payload_size;
    cfg.datablock_requests = datablock_requests;
    cfg.bftblock_links = bftblock_links;
    cfg.max_parallel_instances = max_parallel_instances;
    cfg.datablock_max_wait = datablock_max_wait;
    cfg.proposal_max_wait = proposal_max_wait;
    cfg.retrieval_timeout = retrieval_timeout;
    cfg.view_timeout = view_timeout;
    cfg.mempool_capacity = mempool_capacity;
    spec.config = cfg;
  } else if (protocol == "hotstuff") {
    baselines::HotStuffConfig cfg;
    cfg.n = n;
    cfg.payload_size = payload_size;
    cfg.batch_size = batch_size;
    cfg.proposal_max_wait = proposal_max_wait;
    cfg.mempool_capacity = mempool_capacity;
    spec.config = cfg;
  } else {
    baselines::PbftConfig cfg;
    cfg.n = n;
    cfg.payload_size = payload_size;
    cfg.batch_size = batch_size;
    cfg.proposal_max_wait = proposal_max_wait;
    cfg.mempool_capacity = mempool_capacity;
    spec.config = cfg;
  }
  return spec;
}

const PeerAddr& Manifest::dial_addr(sim::NodeId id) const {
  const auto it = proxies.find(id);
  return it != proxies.end() ? it->second : nodes.at(id);
}

SocketEnvOptions Manifest::replica_env_options(sim::NodeId id) const {
  util::expects(id < n, "replica id out of manifest range");
  SocketEnvOptions opts;
  opts.self = id;
  opts.n_replicas = n;
  const auto& self_addr = nodes.at(id);
  opts.listen_host = self_addr.host;
  opts.listen_port = self_addr.port;
  // The higher id dials: each replica pair shares exactly one connection,
  // and a restarted replica re-establishes every link it is responsible for.
  for (sim::NodeId peer = 0; peer < id; ++peer) opts.dial.emplace(peer, dial_addr(peer));
  opts.peer_buffer_limit = peer_buffer_bytes;
  return opts;
}

SocketEnvOptions Manifest::client_env_options(sim::NodeId self) const {
  util::expects(self >= n, "client transport ids start at n");
  SocketEnvOptions opts;
  opts.self = self;
  opts.n_replicas = n;
  for (const auto& [id, addr] : nodes) opts.dial.emplace(id, dial_addr(id));
  opts.peer_buffer_limit = peer_buffer_bytes;
  return opts;
}

}  // namespace leopard::net
