// Hierarchical timer wheel keyed by the protocol cores' opaque timer tokens.
//
// Four levels of 256 slots at a fixed tick (default 1 ms) cover ~136 years of
// horizon; a timer lands in the coarsest level whose span still resolves its
// deadline and cascades inward as the wheel turns, so arming, re-arming, and
// cancelling are all O(1) and advancing costs O(ticks elapsed + timers due).
//
// Env-contract semantics (protocol.hpp): re-arming a pending token replaces
// it; cancelling an unknown or already-fired token is a no-op. Timers due in
// different ticks fire in deadline order; timers sharing a tick fire in
// arming order.
//
// Not thread-safe: the event loop owns it.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "sim/time.hpp"

namespace leopard::net {

/// Deterministic ±25% jitter for retry/backoff delays: scales `nominal` by a
/// factor in [0.75, 1.25) drawn from a splitmix64 hash of `key`. Same key,
/// same result — reconnect storms decorrelate across (node, peer, attempt)
/// keys while tests and replays stay reproducible. Zero/negative delays pass
/// through unchanged.
[[nodiscard]] constexpr sim::SimTime jittered(sim::SimTime nominal, std::uint64_t key) {
  if (nominal <= 0) return nominal;
  std::uint64_t z = key + 0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  z ^= z >> 31;
  // [0.75, 1.25) in 1/4096 steps: nominal * (3072 + z mod 2048) / 4096.
  const auto num = static_cast<double>(nominal) * static_cast<double>(3072 + (z & 2047));
  return static_cast<sim::SimTime>(num / 4096.0);
}

class TimerWheel {
 public:
  using Token = std::uint64_t;

  /// `tick` is the firing resolution; `start` anchors tick 0 (deadlines are
  /// absolute times on the same clock).
  explicit TimerWheel(sim::SimTime tick = sim::kMillisecond, sim::SimTime start = 0);

  /// Arms (or re-arms, replacing) `token` to fire at absolute `deadline`.
  /// Deadlines at or before the current tick fire on the next advance().
  void arm(Token token, sim::SimTime deadline);

  /// O(1) cancel; returns false if the token is not armed.
  bool cancel(Token token);

  [[nodiscard]] bool armed(Token token) const { return by_token_.contains(token); }
  [[nodiscard]] std::size_t size() const { return by_token_.size(); }

  /// Fires every timer with deadline <= now, in tick order (arming order
  /// within a tick), invoking `fire(token)` for each. Firing callbacks may
  /// arm/cancel timers reentrantly. Returns the number fired.
  std::size_t advance(sim::SimTime now, const std::function<void(Token)>& fire);

  /// Earliest instant by which the owner should call advance() again: the
  /// exact deadline when the next timer sits in the innermost level, else the
  /// next cascade boundary (always <= the real deadline, so waking then and
  /// re-querying is correct). Returns -1 when nothing is armed.
  [[nodiscard]] sim::SimTime next_wake() const;

 private:
  static constexpr std::uint32_t kLevelBits = 8;
  static constexpr std::uint32_t kSlots = 1u << kLevelBits;  // 256
  static constexpr std::uint32_t kLevels = 4;
  static constexpr std::uint32_t kNil = 0xFFFFFFFFu;

  struct Node {
    Token token = 0;
    sim::SimTime deadline = 0;
    std::uint32_t prev = kNil;
    std::uint32_t next = kNil;
    std::uint32_t slot = kNil;  // flat slot index (level * kSlots + slot), kNil = detached
  };

  [[nodiscard]] std::uint64_t tick_of(sim::SimTime t) const {
    return t <= 0 ? 0 : static_cast<std::uint64_t>(t) / static_cast<std::uint64_t>(tick_);
  }

  std::uint32_t alloc_node();
  void free_node(std::uint32_t idx);
  void unlink(std::uint32_t idx);
  void link(std::uint32_t flat_slot, std::uint32_t idx);
  /// Places `idx` by its deadline relative to current_tick_.
  void place(std::uint32_t idx);
  /// Re-places every node of flat slot `s` (cascade one level inward).
  void cascade(std::uint32_t flat_slot);

  sim::SimTime tick_;
  std::uint64_t current_tick_;

  std::vector<Node> slab_;
  std::uint32_t free_head_ = kNil;
  // kLevels * kSlots wheel slots + 2 pseudo-slots (already-due list, and the
  // batch being fired), as parallel head/tail lists (FIFO within a slot).
  std::vector<std::uint32_t> slots_;
  std::vector<std::uint32_t> tails_;
  std::unordered_map<Token, std::uint32_t> by_token_;
};

}  // namespace leopard::net
