// Bounded lock-free multi-producer single-consumer ring (Vyukov sequence
// ring): every cell carries a sequence counter that encodes whose turn it is,
// so producers claim slots with one CAS and the consumer pops without any.
// Used for the io-thread handoff in SocketEnv — workers post outbound frames
// and Execute closures toward the transport thread, the transport posts
// inbound deliveries toward instance workers.
//
// try_push is safe from any number of threads; try_pop/empty must only be
// called by the single consumer (the destructor counts as the consumer —
// join all producers first).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <utility>

#include "util/check.hpp"

namespace leopard::net {

template <typename T>
class MpscRing {
 public:
  /// `capacity` must be a power of two >= 2.
  explicit MpscRing(std::size_t capacity)
      : mask_(capacity - 1), cells_(std::make_unique<Cell[]>(capacity)) {
    util::expects(capacity >= 2 && (capacity & mask_) == 0,
                  "MpscRing: capacity must be a power of two");
    for (std::size_t i = 0; i < capacity; ++i) {
      cells_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  ~MpscRing() {
    T drained;
    while (try_pop(drained)) {
    }
  }

  MpscRing(const MpscRing&) = delete;
  MpscRing& operator=(const MpscRing&) = delete;

  /// False when full, leaving `value` untouched so the caller can retry
  /// (spin, drop, or drain) without losing it. Call as try_push(std::move(v)).
  bool try_push(T&& value) {
    Cell* cell = nullptr;
    std::size_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      const std::size_t seq = cell->seq.load(std::memory_order_acquire);
      const auto lag =
          static_cast<std::intptr_t>(seq) - static_cast<std::intptr_t>(pos);
      if (lag == 0) {
        if (tail_.compare_exchange_weak(pos, pos + 1, std::memory_order_relaxed)) break;
      } else if (lag < 0) {
        return false;  // the consumer has not freed this cell yet: full
      } else {
        pos = tail_.load(std::memory_order_relaxed);  // lost the race, re-read
      }
    }
    ::new (static_cast<void*>(cell->storage)) T(std::move(value));
    cell->seq.store(pos + 1, std::memory_order_release);
    return true;
  }

  /// Single consumer only.
  bool try_pop(T& out) {
    Cell& cell = cells_[head_ & mask_];
    const std::size_t seq = cell.seq.load(std::memory_order_acquire);
    if (static_cast<std::intptr_t>(seq) !=
        static_cast<std::intptr_t>(head_ + 1)) {
      return false;  // producer claimed but not yet published, or empty
    }
    T* item = std::launder(reinterpret_cast<T*>(cell.storage));
    out = std::move(*item);
    item->~T();
    cell.seq.store(head_ + mask_ + 1, std::memory_order_release);
    ++head_;
    return true;
  }

  /// Single consumer only: true when no published item is waiting. A
  /// concurrent producer may make this stale immediately — callers pair it
  /// with a wakeup protocol, not with correctness.
  [[nodiscard]] bool empty() const {
    const Cell& cell = cells_[head_ & mask_];
    return cell.seq.load(std::memory_order_acquire) != head_ + 1;
  }

 private:
  struct Cell {
    std::atomic<std::size_t> seq{0};
    alignas(T) unsigned char storage[sizeof(T)];
  };

  std::size_t mask_;
  std::unique_ptr<Cell[]> cells_;
  // Producers and consumer touch disjoint cache lines for their cursors.
  alignas(64) std::atomic<std::size_t> tail_{0};  // next slot producers claim
  alignas(64) std::size_t head_ = 0;              // next slot the consumer reads
};

}  // namespace leopard::net
