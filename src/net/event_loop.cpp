#include "net/event_loop.hpp"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <array>
#include <cerrno>

#include "util/check.hpp"

namespace leopard::net {

namespace {

std::uint32_t to_epoll(std::uint32_t events) {
  std::uint32_t out = 0;
  if ((events & EventLoop::kReadable) != 0) out |= EPOLLIN;
  if ((events & EventLoop::kWritable) != 0) out |= EPOLLOUT;
  return out;
}

std::uint32_t from_epoll(std::uint32_t events) {
  std::uint32_t out = 0;
  if ((events & EPOLLIN) != 0) out |= EventLoop::kReadable;
  if ((events & EPOLLOUT) != 0) out |= EventLoop::kWritable;
  if ((events & (EPOLLERR | EPOLLHUP)) != 0) out |= EventLoop::kError;
  return out;
}

}  // namespace

EventLoop::EventLoop() {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  util::ensures(epoll_fd_ >= 0, "epoll_create1 failed");
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  util::ensures(wake_fd_ >= 0, "eventfd failed");

  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = wake_fd_;
  const int rc = ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);
  util::ensures(rc == 0, "epoll_ctl(wakeup fd) failed");
}

EventLoop::~EventLoop() {
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

void EventLoop::add(int fd, std::uint32_t events, IoCallback cb) {
  const auto generation = next_generation_++;
  epoll_event ev{};
  ev.events = to_epoll(events);
  ev.data.u64 = (static_cast<std::uint64_t>(generation) << 32) |
                static_cast<std::uint32_t>(fd);
  const int rc = ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
  util::expects(rc == 0, "epoll_ctl(ADD) failed");
  callbacks_[fd] = Entry{std::make_shared<IoCallback>(std::move(cb)), generation};
}

void EventLoop::modify(int fd, std::uint32_t events) {
  const auto it = callbacks_.find(fd);
  util::expects(it != callbacks_.end(), "modify() of an unregistered fd");
  epoll_event ev{};
  ev.events = to_epoll(events);
  ev.data.u64 = (static_cast<std::uint64_t>(it->second.generation) << 32) |
                static_cast<std::uint32_t>(fd);
  const int rc = ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev);
  util::expects(rc == 0, "epoll_ctl(MOD) failed");
}

void EventLoop::remove(int fd) {
  if (callbacks_.erase(fd) == 0) return;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);  // fd may already be closed
}

int EventLoop::poll(int timeout_ms) {
  std::array<epoll_event, 64> events{};
  const int n = ::epoll_wait(epoll_fd_, events.data(), static_cast<int>(events.size()),
                             timeout_ms);
  if (n < 0) {
    util::expects(errno == EINTR, "epoll_wait failed");
    return 0;
  }

  int dispatched = 0;
  for (int i = 0; i < n; ++i) {
    const auto data = events[static_cast<std::size_t>(i)].data.u64;
    const int fd = static_cast<int>(data & 0xFFFFFFFFu);
    const auto generation = static_cast<std::uint32_t>(data >> 32);
    if (fd == wake_fd_) {
      std::uint64_t drained = 0;
      [[maybe_unused]] const auto rc = ::read(wake_fd_, &drained, sizeof(drained));
      continue;
    }
    // A callback dispatched earlier this round may have removed this fd (or
    // the fd number may have been reused by a NEW registration — detected by
    // the generation mismatch); consult the live registry, and hold a
    // reference so a callback removing itself stays valid while running.
    const auto it = callbacks_.find(fd);
    if (it == callbacks_.end() || it->second.generation != generation) continue;
    const auto cb = it->second.callback;
    (*cb)(from_epoll(events[static_cast<std::size_t>(i)].events));
    ++dispatched;
  }
  return dispatched;
}

void EventLoop::wakeup() {
  const std::uint64_t one = 1;
  [[maybe_unused]] const auto rc = ::write(wake_fd_, &one, sizeof(one));
}

}  // namespace leopard::net
