// Zero-copy outbound frame queue for the socket transport.
//
// A SharedFrame splits a wire frame into a tiny inline header (the u32 length
// field, plus the kShardFrame envelope prefix when addressed to a nonzero
// instance) and a refcounted immutable body (the serialized tag + message
// body). Broadcast enqueues the SAME body on every peer queue — one
// serialization total, never a per-peer memcpy — and the flush path writes
// (header, body) scatter-gather via sendmsg without ever gluing them into a
// contiguous buffer.
//
// SendQueue owns the per-connection (and per-disconnected-peer) frame queue:
// byte accounting is on the FULL wire size (header + body, so a
// peer_buffer_limit of N bounds actual wire bytes, not just payload bytes),
// shedding is oldest-first with the front pinned once partially written (a
// frame leaves the wire whole or not at all), and partial-write resume works
// at arbitrary byte offsets — mid-header, mid-body, or between iovecs.
#pragma once

#include <sys/uio.h>

#include <array>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>

#include "util/bytes.hpp"

namespace leopard::net {

/// Refcounted immutable wire frame. `header` carries the length prefix (and
/// the shard envelope, when present) inline; `body` is shared across every
/// queue that carries this frame. A frame wrapped whole via from_wire() has
/// header_len == 0 and the complete frame in `body`.
struct SharedFrame {
  static constexpr std::size_t kMaxHeaderBytes = 9;  // u32 len + u8 tag + u32 instance

  std::array<std::uint8_t, kMaxHeaderBytes> header{};
  std::uint8_t header_len = 0;
  std::shared_ptr<const util::Bytes> body;

  /// Total bytes this frame puts on the wire.
  [[nodiscard]] std::size_t wire_size() const {
    return header_len + (body ? body->size() : 0);
  }

  [[nodiscard]] bool valid() const { return body != nullptr; }

  /// Wraps an already-framed byte string (length prefix included) as-is.
  [[nodiscard]] static SharedFrame from_wire(util::Bytes wire);
};

/// Bounded outbound queue of SharedFrames with scatter-gather drain.
/// Single-threaded; the limit is passed per push so one queue type serves
/// both connected and disconnected peers.
class SendQueue {
 public:
  struct PushResult {
    std::size_t shed = 0;  // older frames evicted to make room
    bool queued = false;   // false: the new frame itself was rejected
  };

  /// Appends `frame`, evicting oldest-first to keep total wire bytes within
  /// `byte_limit`. The front frame is pinned while partially written; if only
  /// pinned frames remain and the new frame still does not fit (or it alone
  /// exceeds the limit), the NEW frame is rejected without purging the queue.
  PushResult push(SharedFrame frame, std::size_t byte_limit);

  /// Fills up to `max_iov` iovecs with the unsent byte ranges of queued
  /// frames, starting at the partial-write offset. Returns the iovec count;
  /// `*total` (optional) receives the sum of their lengths.
  std::size_t fill_iovecs(iovec* iov, std::size_t max_iov,
                          std::size_t* total = nullptr) const;

  /// Records `n` bytes written; drops fully-sent frames off the front.
  /// Returns the number of frames completed.
  std::size_t consume(std::size_t n);

  /// Moves the front frame out (queue drain toward a new connection). Only
  /// valid when nothing has been partially written.
  [[nodiscard]] bool pop_front(SharedFrame& out);

  [[nodiscard]] bool empty() const { return q_.empty(); }
  [[nodiscard]] std::size_t frames() const { return q_.size(); }
  /// Total wire bytes queued (header + body of every frame, ignoring the
  /// partial-write offset — the limit bounds what is HELD, not what is left).
  [[nodiscard]] std::size_t bytes() const { return bytes_; }
  /// Bytes of the front frame already written to the socket.
  [[nodiscard]] std::size_t offset() const { return offset_; }

  void clear();

 private:
  std::deque<SharedFrame> q_;
  std::size_t offset_ = 0;  // written prefix of q_.front()
  std::size_t bytes_ = 0;   // sum of wire_size() over q_
};

}  // namespace leopard::net
