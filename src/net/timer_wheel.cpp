#include "net/timer_wheel.hpp"

#include "util/check.hpp"

namespace leopard::net {

namespace {
constexpr std::uint32_t kSlotMask = 255;
}

TimerWheel::TimerWheel(sim::SimTime tick, sim::SimTime start)
    : tick_(tick), current_tick_(tick_of(start)) {
  util::expects(tick > 0, "TimerWheel: tick must be positive");
  // Two extra pseudo-slots at the end, handled uniformly by unlink(): the
  // already-due (expired) list, and the batch currently being fired (so
  // cancel()/arm() from fire callbacks stay O(1) and corruption-free).
  slots_.assign(kLevels * kSlots + 2, kNil);
  tails_.assign(kLevels * kSlots + 2, kNil);
}

std::uint32_t TimerWheel::alloc_node() {
  if (free_head_ != kNil) {
    const auto idx = free_head_;
    free_head_ = slab_[idx].next;
    slab_[idx] = Node{};
    return idx;
  }
  slab_.emplace_back();
  return static_cast<std::uint32_t>(slab_.size() - 1);
}

void TimerWheel::free_node(std::uint32_t idx) {
  slab_[idx].next = free_head_;
  slab_[idx].slot = kNil;
  free_head_ = idx;
}

void TimerWheel::link(std::uint32_t flat_slot, std::uint32_t idx) {
  Node& n = slab_[idx];
  n.slot = flat_slot;
  n.prev = tails_[flat_slot];
  n.next = kNil;
  if (tails_[flat_slot] != kNil) {
    slab_[tails_[flat_slot]].next = idx;
  } else {
    slots_[flat_slot] = idx;
  }
  tails_[flat_slot] = idx;
}

void TimerWheel::unlink(std::uint32_t idx) {
  Node& n = slab_[idx];
  if (n.slot == kNil) return;
  if (n.prev != kNil) {
    slab_[n.prev].next = n.next;
  } else {
    slots_[n.slot] = n.next;
  }
  if (n.next != kNil) {
    slab_[n.next].prev = n.prev;
  } else {
    tails_[n.slot] = n.prev;
  }
  n.prev = n.next = kNil;
  n.slot = kNil;
}

void TimerWheel::place(std::uint32_t idx) {
  const Node& n = slab_[idx];
  const std::uint64_t ticks = tick_of(n.deadline);
  if (ticks <= current_tick_) {
    link(kLevels * kSlots, idx);  // already due: expired pseudo-slot
    return;
  }
  // Innermost level whose higher digits `ticks` shares with the current tick:
  // there the slot digit resolves the deadline exactly, so level-0 firing is
  // always exact and cascades only ever move timers inward.
  for (std::uint32_t level = 0; level < kLevels; ++level) {
    const std::uint32_t shift = kLevelBits * (level + 1);
    if (shift < 64 && (ticks >> shift) != (current_tick_ >> shift)) continue;
    link(level * kSlots + static_cast<std::uint32_t>((ticks >> (kLevelBits * level)) & kSlotMask),
         idx);
    return;
  }
  // Beyond the wheel horizon (~2^32 ticks): park in the outermost slot that
  // cascades last; re-placed (never fired early) on each cascade.
  const auto top = static_cast<std::uint32_t>(
      ((current_tick_ >> (kLevelBits * (kLevels - 1))) + kSlots - 1) & kSlotMask);
  link((kLevels - 1) * kSlots + top, idx);
}

void TimerWheel::cascade(std::uint32_t flat_slot) {
  auto idx = slots_[flat_slot];
  slots_[flat_slot] = kNil;
  tails_[flat_slot] = kNil;
  while (idx != kNil) {
    const auto next = slab_[idx].next;
    slab_[idx].prev = slab_[idx].next = kNil;
    slab_[idx].slot = kNil;
    place(idx);
    idx = next;
  }
}

void TimerWheel::arm(Token token, sim::SimTime deadline) {
  if (const auto it = by_token_.find(token); it != by_token_.end()) {
    // Re-arm replaces: move the existing node to the new deadline.
    const auto idx = it->second;
    unlink(idx);
    slab_[idx].deadline = deadline;
    place(idx);
    return;
  }
  const auto idx = alloc_node();
  slab_[idx].token = token;
  slab_[idx].deadline = deadline;
  by_token_.emplace(token, idx);
  place(idx);
}

bool TimerWheel::cancel(Token token) {
  const auto it = by_token_.find(token);
  if (it == by_token_.end()) return false;
  const auto idx = it->second;
  by_token_.erase(it);
  unlink(idx);
  free_node(idx);
  return true;
}

std::size_t TimerWheel::advance(sim::SimTime now, const std::function<void(Token)>& fire) {
  std::size_t fired = 0;

  // Splice the due slot onto the firing pseudo-slot, then head-pop: every
  // still-pending node stays properly linked (slot field updated), so a fire
  // callback cancelling a sibling due in the same batch unlinks it cleanly
  // and it does NOT fire. Timers armed by callbacks land in the expired
  // pseudo-slot (deadline <= now) or a future slot — never in the batch
  // being fired — so a 0-delay re-arm loop cannot spin inside one advance().
  const std::uint32_t firing_slot = kLevels * kSlots + 1;
  const auto drain = [&](std::uint32_t flat_slot) {
    slots_[firing_slot] = slots_[flat_slot];
    tails_[firing_slot] = tails_[flat_slot];
    slots_[flat_slot] = kNil;
    tails_[flat_slot] = kNil;
    for (auto idx = slots_[firing_slot]; idx != kNil; idx = slab_[idx].next) {
      slab_[idx].slot = firing_slot;
    }
    while (slots_[firing_slot] != kNil) {
      const auto idx = slots_[firing_slot];
      unlink(idx);
      const auto token = slab_[idx].token;
      by_token_.erase(token);
      free_node(idx);
      ++fired;
      fire(token);
    }
  };

  drain(kLevels * kSlots);  // timers armed already-due since the last advance

  const std::uint64_t target = tick_of(now);
  while (current_tick_ < target) {
    ++current_tick_;
    bool cascaded = false;
    for (std::uint32_t level = 1; level < kLevels; ++level) {
      const std::uint32_t shift = kLevelBits * level;
      if ((current_tick_ & ((1ull << shift) - 1)) != 0) break;  // not at this boundary
      cascade(level * kSlots +
              static_cast<std::uint32_t>((current_tick_ >> shift) & kSlotMask));
      cascaded = true;
    }
    // A cascade re-places timers due exactly NOW into the expired
    // pseudo-slot; fire them at their own tick, before later slots, so the
    // cross-tick deadline-order contract holds across boundaries. (Only
    // after cascades — not every tick — so 0-delay re-arm loops stay
    // bounded per advance.)
    if (cascaded && slots_[kLevels * kSlots] != kNil) drain(kLevels * kSlots);
    drain(static_cast<std::uint32_t>(current_tick_ & kSlotMask));
  }

  drain(kLevels * kSlots);  // due timers armed by callbacks during this advance
  return fired;
}

sim::SimTime TimerWheel::next_wake() const {
  if (by_token_.empty()) return -1;
  if (slots_[kLevels * kSlots] != kNil) {
    return static_cast<sim::SimTime>(current_tick_) * tick_;  // already due
  }
  // Level 0 holds exact ticks within the current 256-tick block.
  for (std::uint64_t t = current_tick_ + 1; (t >> kLevelBits) == (current_tick_ >> kLevelBits);
       ++t) {
    if (slots_[t & kSlotMask] != kNil) return static_cast<sim::SimTime>(t) * tick_;
  }
  // Something is parked in an outer level: wake at the next cascade boundary
  // (always at or before its true deadline) and re-query.
  const std::uint64_t boundary = (current_tick_ | kSlotMask) + 1;
  return static_cast<sim::SimTime>(boundary) * tick_;
}

}  // namespace leopard::net
