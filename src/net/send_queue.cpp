#include "net/send_queue.hpp"

#include <utility>

#include "util/check.hpp"

namespace leopard::net {

SharedFrame SharedFrame::from_wire(util::Bytes wire) {
  SharedFrame f;
  f.header_len = 0;
  f.body = std::make_shared<const util::Bytes>(std::move(wire));
  return f;
}

SendQueue::PushResult SendQueue::push(SharedFrame frame, std::size_t byte_limit) {
  PushResult result;
  const std::size_t size = frame.wire_size();
  if (size > byte_limit) return result;  // can never fit: don't purge the queue for it
  while (bytes_ + size > byte_limit) {
    // The front is pinned once partially written: a frame must leave the
    // wire whole or not at all.
    const std::size_t victim = offset_ > 0 ? 1 : 0;
    if (victim >= q_.size()) return result;  // only the in-flight frame remains
    bytes_ -= q_[victim].wire_size();
    q_.erase(q_.begin() + static_cast<std::ptrdiff_t>(victim));
    ++result.shed;
  }
  bytes_ += size;
  q_.push_back(std::move(frame));
  result.queued = true;
  return result;
}

std::size_t SendQueue::fill_iovecs(iovec* iov, std::size_t max_iov, std::size_t* total) const {
  std::size_t n = 0;
  std::size_t sum = 0;
  std::size_t skip = offset_;  // nonzero only for the first ranges of q_.front()
  for (const auto& frame : q_) {
    if (n == max_iov) break;
    if (skip < frame.header_len) {
      iov[n].iov_base = const_cast<std::uint8_t*>(frame.header.data() + skip);
      iov[n].iov_len = frame.header_len - skip;
      sum += iov[n].iov_len;
      ++n;
      skip = 0;
    } else {
      skip -= frame.header_len;
    }
    if (n == max_iov) break;
    const auto& body = *frame.body;
    if (skip < body.size()) {
      iov[n].iov_base = const_cast<std::uint8_t*>(body.data() + skip);
      iov[n].iov_len = body.size() - skip;
      sum += iov[n].iov_len;
      ++n;
    }
    skip = 0;
  }
  if (total != nullptr) *total = sum;
  return n;
}

std::size_t SendQueue::consume(std::size_t n) {
  std::size_t completed = 0;
  offset_ += n;
  while (!q_.empty() && offset_ >= q_.front().wire_size()) {
    const std::size_t size = q_.front().wire_size();
    offset_ -= size;
    bytes_ -= size;
    q_.pop_front();
    ++completed;
  }
  util::expects(!q_.empty() || offset_ == 0, "SendQueue: consumed past the queued bytes");
  return completed;
}

bool SendQueue::pop_front(SharedFrame& out) {
  if (q_.empty()) return false;
  util::expects(offset_ == 0, "SendQueue: pop_front with a partially written front");
  bytes_ -= q_.front().wire_size();
  out = std::move(q_.front());
  q_.pop_front();
  return true;
}

void SendQueue::clear() {
  q_.clear();
  offset_ = 0;
  bytes_ = 0;
}

}  // namespace leopard::net
