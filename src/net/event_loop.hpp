// Minimal epoll reactor for the socket transport: level-triggered fd
// callbacks plus an eventfd wakeup for cross-thread stop requests. The loop
// itself is policy-free — SocketEnv layers connections, timers, and the
// protocol Env contract on top.
//
// Single-threaded except wakeup(), which is async-signal- and thread-safe.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>

namespace leopard::net {

class EventLoop {
 public:
  /// Bitmask of readiness reported to callbacks (subset of epoll events).
  static constexpr std::uint32_t kReadable = 0x1;   // EPOLLIN
  static constexpr std::uint32_t kWritable = 0x4;   // EPOLLOUT
  static constexpr std::uint32_t kError = 0x8;      // EPOLLERR | EPOLLHUP

  using IoCallback = std::function<void(std::uint32_t events)>;

  EventLoop();
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Registers `fd` for `events` (kReadable/kWritable). The callback may
  /// add/modify/remove any fd, including its own.
  void add(int fd, std::uint32_t events, IoCallback cb);
  void modify(int fd, std::uint32_t events);
  void remove(int fd);
  [[nodiscard]] bool watching(int fd) const { return callbacks_.contains(fd); }

  /// Waits up to `timeout_ms` (-1 = indefinitely) and dispatches ready fds.
  /// Returns the number of fds dispatched (0 on timeout). Interruptible by
  /// wakeup() and EINTR (both return 0 promptly).
  int poll(int timeout_ms);

  /// Forces a concurrent/later poll() to return immediately. Safe from other
  /// threads and signal handlers (a single eventfd write).
  void wakeup();

 private:
  struct Entry {
    // shared_ptr so a callback that removes itself mid-dispatch stays alive
    // for the duration of its own invocation.
    std::shared_ptr<IoCallback> callback;
    // Registration generation, packed into epoll_event.data alongside the
    // fd: if an fd is closed and its number reused by a new registration
    // within one epoll_wait batch, stale events from the old socket carry
    // the old generation and are discarded instead of being delivered to
    // the new connection.
    std::uint32_t generation = 0;
  };

  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  std::uint32_t next_generation_ = 0;
  std::unordered_map<int, Entry> callbacks_;
};

}  // namespace leopard::net
