// Canonical wire framing for the socket transport (the real-network twin of
// sim::Payload): every proto message serializes to a length-prefixed,
// type-tagged frame over the same ByteWriter/ByteReader machinery that
// already defines the canonical digest encodings.
//
// Frame layout (all integers little-endian):
//
//   u32 length   — byte count of everything after this field (tag + body)
//   u8  type     — MsgType tag
//   body         — message-specific encoding (length - 1 bytes)
//
// Hard limits and error recovery: a frame whose `length` exceeds the
// configured maximum, carries an unknown tag, or whose body fails to decode
// is rejected without crashing — FrameReader turns stream desync into a
// sticky error the connection layer answers by dropping the connection
// (reconnect re-synchronizes at a frame boundary). Decoding never throws;
// malformed bodies yield nullptr.
//
// Simulation-only metadata (Request::submitted_at, DatablockMsg::created_at)
// is NOT carried on the wire: decoders stamp it with the receiver's local
// clock so per-replica latency breakdowns stay monotonic without assuming
// synchronized clocks.
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "net/send_queue.hpp"
#include "proto/messages.hpp"
#include "sim/message.hpp"
#include "util/bytes.hpp"

namespace leopard::net {

/// Frame type tags. Stable wire values: append only, never renumber.
enum class MsgType : std::uint8_t {
  kHello = 1,  // connection handshake (wire::Hello, not a sim::Payload)
  kClientRequest = 2,
  kAck = 3,
  kDatablock = 4,
  kReady = 5,
  kBftBlock = 6,
  kVote = 7,
  kProof = 8,
  kQuery = 9,
  kChunkResponse = 10,
  kCheckpoint = 11,
  kTimeout = 12,
  kViewChange = 13,
  kNewView = 14,
  kBaselineBlock = 15,
  kBaselineVote = 16,
  kStateOffer = 17,
  kStateChunk = 18,
  // Sharding wrapper: u32 instance id + one complete inner frame body
  // (u8 inner type + inner body). Instance 0 is never wrapped — a
  // single-instance cluster emits byte-identical pre-shard frames — so the
  // tag only appears on the wire between shard-aware nodes.
  kShardFrame = 19,
};

/// Default ceiling on `length` (tag + body). A Leopard datablock of 4000
/// 1 KiB requests is ~4 MiB; 64 MiB leaves an order of magnitude of headroom
/// while still rejecting garbage headers immediately.
inline constexpr std::size_t kDefaultMaxFrameBytes = 64u << 20;

/// Size of the fixed frame header (the u32 length field).
inline constexpr std::size_t kFrameHeaderBytes = 4;

/// Connection handshake, sent exactly once by the dialing/connecting side as
/// the first frame. Identifies the peer for the lifetime of the connection.
struct Hello {
  static constexpr std::uint32_t kMagic = 0x314F454Cu;  // "LEO1"
  std::uint32_t magic = kMagic;
  sim::NodeId node_id = 0;

  friend bool operator==(const Hello&, const Hello&) = default;
};

/// Tag for a payload's dynamic type; nullopt for payload types that have no
/// wire form (there are none today — every proto message is covered).
[[nodiscard]] std::optional<MsgType> type_of(const sim::Payload& payload);

/// Serializes `payload` as one complete frame (header + tag + body) appended
/// to `out`. Returns false (appending nothing) if the payload type is
/// unknown.
bool encode_frame(const sim::Payload& payload, util::Bytes& out);

/// As above, addressed to a protocol instance: instance 0 emits the bare
/// (pre-shard, byte-compatible) frame; any other instance wraps the frame in
/// a kShardFrame envelope carrying the instance id.
bool encode_frame(const sim::Payload& payload, std::uint32_t instance, util::Bytes& out);

/// Convenience: a freshly allocated frame for `payload`.
[[nodiscard]] util::Bytes encode_frame(const sim::Payload& payload);

/// Convenience: a freshly allocated frame addressed to `instance`.
[[nodiscard]] util::Bytes encode_frame(const sim::Payload& payload, std::uint32_t instance);

/// Zero-copy serialization: the tag + body are written ONCE into a
/// refcounted buffer and the length prefix (plus shard envelope for nonzero
/// instances) lands in the SharedFrame's inline header. The resulting wire
/// bytes are identical to encode_frame's. Returns false (leaving `out`
/// invalid) if the payload type has no wire form.
bool encode_shared_frame(const sim::Payload& payload, std::uint32_t instance,
                         SharedFrame& out);

/// Serializes a Hello handshake frame.
[[nodiscard]] util::Bytes encode_hello_frame(const Hello& hello);

/// Decodes a Hello body (frame payload after the tag); nullopt if malformed
/// or the magic does not match.
[[nodiscard]] std::optional<Hello> decode_hello(std::span<const std::uint8_t> body);

/// Decodes one frame body into a fresh heap message. `local_now` stamps the
/// simulation-only metadata fields (see file comment). Returns nullptr on an
/// unknown tag or malformed body — never throws.
[[nodiscard]] sim::PayloadPtr decode_payload(MsgType type, std::span<const std::uint8_t> body,
                                             sim::SimTime local_now);

/// Incremental frame reassembly over a TCP byte stream: feed() arbitrary
/// read() chunks, then drain complete frames with next(). Tolerates frames
/// split across any number of reads and multiple frames per read.
///
/// Once a hard limit is violated (length == 0 or length > max_frame) the
/// reader enters a sticky error state: the stream has lost frame alignment
/// and nothing after the bad header can be trusted.
class FrameReader {
 public:
  explicit FrameReader(std::size_t max_frame = kDefaultMaxFrameBytes)
      : max_frame_(max_frame) {}

  enum class Status : std::uint8_t {
    kFrame,     // *out was filled with a complete frame
    kNeedMore,  // no complete frame buffered; feed() more bytes
    kError,     // stream desync (bad length); drop the connection
  };

  /// One reassembled frame. `body` points into the reader's buffer and is
  /// valid until the next feed()/next() call. kShardFrame envelopes are
  /// unwrapped here: `type`/`body` describe the inner frame and `instance`
  /// carries the envelope's instance id (0 for bare frames). A malformed
  /// envelope — truncated, nested, or wrapping a Hello — is a stream error
  /// like any bad header.
  struct Frame {
    MsgType type{};
    std::uint32_t instance = 0;
    std::span<const std::uint8_t> body;
  };

  /// Appends raw stream bytes. No-op once in the error state.
  void feed(std::span<const std::uint8_t> data);

  /// Zero-copy ingest: exposes at least `min_bytes` of writable scratch at
  /// the end of the internal buffer (compacting the consumed prefix first),
  /// so recv() can land bytes directly where next() will parse them — no
  /// intermediate read buffer, no memcpy per inbound byte. Pair with
  /// commit(): only committed bytes become part of the stream.
  [[nodiscard]] std::span<std::uint8_t> write_buffer(std::size_t min_bytes);

  /// Makes `n` bytes of the last write_buffer() span part of the stream.
  /// No-op once in the error state.
  void commit(std::size_t n);

  /// Extracts the next complete frame, if any.
  [[nodiscard]] Status next(Frame& out);

  [[nodiscard]] bool errored() const { return errored_; }
  /// Bytes currently buffered (tests; also a DoS guard for the caller).
  [[nodiscard]] std::size_t buffered() const { return end_ - pos_; }

 private:
  std::size_t max_frame_;
  // buf_[pos_, end_) is the unparsed stream; [end_, buf_.size()) is scratch
  // handed out by write_buffer() and not yet committed.
  util::Bytes buf_;
  std::size_t pos_ = 0;  // consumed prefix of buf_
  std::size_t end_ = 0;  // committed suffix boundary
  bool errored_ = false;
};

}  // namespace leopard::net
