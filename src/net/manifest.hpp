// Cluster manifest: one small text file describing a real-wire deployment —
// which protocol core to run, its parameters, and every replica's listen
// address. Both the `leopard_node` daemon and the loopback integration tests
// parse it; docs/DEPLOY.md documents the format.
//
//   # comments and blank lines are ignored
//   protocol leopard            # leopard | hotstuff | pbft
//   n 4
//   seed 7
//   payload_size 128
//   datablock_requests 2000     # Leopard α (requests)
//   bftblock_links 100          # Leopard τ
//   max_parallel_instances 100  # Leopard k
//   datablock_max_wait_ms 500
//   proposal_max_wait_ms 50
//   retrieval_timeout_ms 10
//   view_timeout_ms 4000
//   mempool_capacity 12000
//   batch_size 800              # baselines: requests per block
//   node 0 127.0.0.1:4100       # one line per replica id 0..n-1
//   node 1 127.0.0.1:4101
//   ...
//   proxy 3 127.0.0.1:5103      # optional: dial replica 3 via this address
//   peer_buffer_bytes 67108864  # optional: per-peer outbound buffer cap
//   shards 2                    # optional: parallel protocol instances
//   encode_workers 4            # optional: erasure-encode worker threads
//
// Unknown keys are rejected (a typo must not silently fall back to a
// default). Parsing throws util::ContractViolation with a line diagnostic.
#pragma once

#include <map>
#include <string>
#include <string_view>

#include "net/socket_env.hpp"
#include "protocol/factory.hpp"

namespace leopard::net {

struct Manifest {
  std::string protocol = "leopard";
  std::uint32_t n = 4;
  std::uint64_t seed = 7;
  std::uint32_t payload_size = 128;

  // Leopard parameters (§IV; defaults mirror core::LeopardConfig).
  std::uint32_t datablock_requests = 2000;
  std::uint32_t bftblock_links = 100;
  std::uint32_t max_parallel_instances = 100;
  sim::SimTime datablock_max_wait = 500 * sim::kMillisecond;
  sim::SimTime proposal_max_wait = 50 * sim::kMillisecond;
  sim::SimTime retrieval_timeout = 10 * sim::kMillisecond;
  sim::SimTime view_timeout = 4 * sim::kSecond;
  std::uint32_t mempool_capacity = 12000;

  // Baseline parameters.
  std::uint32_t batch_size = 800;

  /// Replica listen addresses, keyed by replica id (must cover 0..n-1).
  std::map<sim::NodeId, PeerAddr> nodes;

  /// Dial-address overrides: `proxy <id> <host:port>` makes THIS node reach
  /// replica <id> through that address (a chaos proxy / NAT hop) instead of
  /// its listen address. Listen addresses are unaffected, so per-node
  /// manifests can interpose a proxy on selected links only.
  std::map<sim::NodeId, PeerAddr> proxies;

  /// Per-peer outbound buffer cap (SocketEnvOptions::peer_buffer_limit).
  /// Lower it to make shedding observable under chaos-proxy bandwidth caps.
  std::uint64_t peer_buffer_bytes = 64u << 20;

  /// Parallel protocol instances multiplexed over the same connections
  /// (shard s rotates replica ids by s; see src/shard/). 1 = classic
  /// single-instance deployment, byte-compatible on the wire.
  std::uint32_t shards = 1;

  /// Worker threads for leader-side erasure-encode bursts and retrieval
  /// share encoding (0 = derive from hardware_concurrency, 1 = serial).
  std::uint32_t encode_workers = 1;

  /// Parses manifest text / a manifest file; throws util::ContractViolation
  /// with a line diagnostic on malformed or incomplete input.
  static Manifest parse(std::string_view text);
  static Manifest parse_file(const std::string& path);

  /// Threshold for the shared ThresholdScheme: 2f + 1.
  [[nodiscard]] std::uint32_t quorum() const { return 2 * ((n - 1) / 3) + 1; }

  /// The ProtocolSpec this manifest names (honest replicas only — byzantine
  /// behaviour is a simulation harness feature).
  [[nodiscard]] protocol::ProtocolSpec spec() const;

  /// SocketEnv options for replica `id`: listen on its manifest address and
  /// dial every lower-id replica (each pair shares one connection; the
  /// higher id dials, so a restarted replica re-establishes its own links).
  [[nodiscard]] SocketEnvOptions replica_env_options(sim::NodeId id) const;

  /// SocketEnv options for a client with transport id `self` (>= n): no
  /// listener, dial every replica.
  [[nodiscard]] SocketEnvOptions client_env_options(sim::NodeId self) const;

  /// The initial leader's replica id (view 1 for Leopard, fixed 0 for the
  /// baselines) — clients avoid it (Leopard) or must target it (baselines).
  [[nodiscard]] sim::NodeId initial_leader() const {
    return protocol == "leopard" ? 1 % n : 0;
  }

 private:
  /// The address this node should dial to reach `id` (proxy override or the
  /// replica's listen address).
  [[nodiscard]] const PeerAddr& dial_addr(sim::NodeId id) const;
};

}  // namespace leopard::net
