// SocketEnv: the real-wire twin of SimEnv. Hosts an unmodified sans-I/O
// protocol core (LeopardReplica or either baseline) over nonblocking TCP:
//
//   - Send/Broadcast serialize through net/wire.hpp and go out over per-peer
//     connections with outbound buffering; frames for a disconnected peer
//     queue (bounded) and flush on (re)connect;
//   - SetTimer/CancelTimer land in a hierarchical timer wheel keyed by the
//     core's opaque tokens (re-arm replaces, cancel is O(1));
//   - Execute feeds the application observer, MetricsUpdate the embedded
//     ProtocolMetrics, and ChargeCpu is dropped (real CPUs charge
//     themselves);
//   - now() is the monotonic clock (ns since construction), costs() is
//     all-zero.
//
// Actions are applied synchronously in emission order, exactly per the Env
// contract. Everything runs on the single thread that calls run(); stop()
// is safe from other threads and signal handlers.
//
// Connection topology: each node dials the peers in `dial` (by convention a
// replica dials every lower-id replica and a client dials every replica) and
// accepts everyone else, so each pair shares exactly one TCP connection
// carrying traffic both ways. Dialed connections reconnect with exponential
// backoff; accepted ones are re-established by the dialing side. The dialer
// identifies itself with a Hello frame; a malformed frame (bad length,
// unknown tag, undecodable body) drops the connection, and reconnection
// re-synchronizes at a frame boundary.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/metrics.hpp"
#include "net/event_loop.hpp"
#include "net/mpsc_ring.hpp"
#include "net/send_queue.hpp"
#include "net/timer_wheel.hpp"
#include "net/wire.hpp"
#include "protocol/protocol.hpp"

namespace leopard::obs {
class Registry;
}  // namespace leopard::obs

namespace leopard::net {

struct PeerAddr {
  std::string host = "127.0.0.1";  // IPv4 dotted quad
  std::uint16_t port = 0;
};

struct SocketEnvOptions {
  /// This node's transport identity (replicas: 0..n-1; clients: >= n).
  sim::NodeId self = 0;
  /// Broadcast target set is replica ids 0..n_replicas-1 (minus self).
  std::uint32_t n_replicas = 4;

  /// Listening endpoint; port 0 with an empty host disables accepting
  /// (clients). Port 0 with a host binds an ephemeral port (tests).
  std::string listen_host;
  std::uint16_t listen_port = 0;

  /// Peers this node actively dials (and re-dials on disconnect).
  std::map<sim::NodeId, PeerAddr> dial;

  std::size_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Cap on frames queued for one disconnected/slow peer; beyond it the
  /// oldest queued frames are dropped (the protocol tolerates loss via
  /// retrieval and view-change, same as any real network).
  std::size_t peer_buffer_limit = 64u << 20;

  sim::SimTime reconnect_min = 50 * sim::kMillisecond;
  sim::SimTime reconnect_max = 2 * sim::kSecond;
  sim::SimTime timer_tick = sim::kMillisecond;

  /// Per-instance event-loop threads: with io_threads > 1 and registered
  /// instances, each shard instance (and its timer wheel) runs on a worker
  /// thread (instance order, round-robin across workers) while this thread
  /// keeps the sockets, the aux/internal wheels, and any directly-attached
  /// protocol. Handoff is lock-free MPSC rings both ways. io_threads <= 1 is
  /// the exact single-threaded path — bit-identical behavior.
  std::uint32_t io_threads = 1;
};

class SocketEnv final : public protocol::Env {
 public:
  explicit SocketEnv(SocketEnvOptions opts);
  ~SocketEnv() override;

  SocketEnv(const SocketEnv&) = delete;
  SocketEnv& operator=(const SocketEnv&) = delete;

  /// Binds the protocol core this env hosts (not owned).
  void attach(protocol::Protocol& protocol) { protocol_ = &protocol; }

  /// Multi-instance hosting (sharding): an additional core multiplexed over
  /// this env's connections. The hooks live in the instance's own Env
  /// adapter (shard::MuxEnv) — the transport only routes. Instance 0 travels
  /// as bare frames (wire-compatible with unsharded peers); any other id
  /// rides a kShardFrame envelope. Instance ids must be registered before
  /// run(); a frame tagged with an unregistered id is counted and dropped
  /// (frame-level, the connection survives — a mixed-S cluster must not
  /// flap links).
  struct InstanceHooks {
    /// Delivered once when run() starts (call the core's on_start).
    std::function<void()> on_start;
    /// One decoded inbound payload addressed to this instance.
    std::function<void(sim::NodeId from, const sim::PayloadPtr&)> deliver;
    /// One due timer from this instance's wheel.
    std::function<void(std::uint64_t token)> on_timer;
  };
  void register_instance(std::uint32_t instance, InstanceHooks hooks);

  /// Outbound path for registered instances: encodes `payload` addressed to
  /// `instance` and sends/queues it toward `to` (a transport-level node id).
  /// Safe from instance worker threads: the serialization happens on the
  /// calling thread (that is the point — S shards serialize in parallel) and
  /// the refcounted frame is handed to the transport thread for queueing.
  void send_payload(std::uint32_t instance, sim::NodeId to, const sim::Payload& payload);
  /// ONE serialization fanned to every replica peer except self: each peer
  /// queue receives the same refcounted body, never a copy. Thread-safe like
  /// send_payload.
  void broadcast_payload(std::uint32_t instance, const sim::Payload& payload);

  /// Runs `fn` on the transport thread: inline when already there (or when
  /// no io-threads are running — the single-threaded path is unchanged),
  /// otherwise via the lock-free ring + wakeup. Cross-thread posts from one
  /// producer run in FIFO order.
  void post_to_transport(std::function<void()> fn);

  /// Runs `fn` on the thread that owns `instance`'s core (inline outside
  /// io-thread mode). Must be called from the transport thread — this is the
  /// inbound half of the handoff (client-request injection, deliveries).
  void post_to_instance(std::uint32_t instance, std::function<void()> fn);

  /// Per-instance timer wheel (Env SetTimer/CancelTimer semantics: re-arm
  /// replaces, cancel of an unknown token is a no-op). `delay` is relative
  /// to now().
  void arm_instance_timer(std::uint32_t instance, std::uint64_t token, sim::SimTime delay);
  void cancel_instance_timer(std::uint32_t instance, std::uint64_t token);

  /// Application observer for Execute actions.
  using ExecuteObserver = std::function<void(const protocol::Execute&)>;
  void set_execute_observer(ExecuteObserver obs) { execute_observer_ = std::move(obs); }

  /// Deployment-layer tap on inbound payloads, called after decode and
  /// before the core sees the message. Return true to consume the payload
  /// (it is NOT delivered to the core) — how node-level subsystems like
  /// state transfer speak on the replica connections without the sans-I/O
  /// core knowing their message types.
  using PayloadInterceptor = std::function<bool(sim::NodeId from, const sim::PayloadPtr&)>;
  void set_payload_interceptor(PayloadInterceptor tap) {
    payload_interceptor_ = std::move(tap);
  }

  /// Auxiliary timers for deployment-layer subsystems: a third wheel whose
  /// tokens are private to the aux handler, so they can never collide with
  /// the core's SetTimer tokens. `delay` is relative to now(); re-arming a
  /// token replaces it.
  void set_aux_timer_handler(std::function<void(std::uint64_t)> handler) {
    aux_timer_handler_ = std::move(handler);
  }
  void arm_aux_timer(std::uint64_t token, sim::SimTime delay);
  void cancel_aux_timer(std::uint64_t token);

  /// Actual listening port (after ephemeral bind); 0 if not listening.
  [[nodiscard]] std::uint16_t listen_port() const { return bound_port_; }

  /// Delivers Start (first call only), then services sockets and timers
  /// until stop() or `should_stop` returns true (checked every iteration,
  /// at least every 100 ms).
  void run(const std::function<bool()>& should_stop = {});

  /// Ends a concurrent or future run(). Thread- and signal-safe.
  void stop();

  [[nodiscard]] core::ProtocolMetrics& metrics() { return metrics_; }

  struct Stats {
    std::uint64_t frames_sent = 0;
    std::uint64_t bytes_sent = 0;
    std::uint64_t frames_received = 0;
    std::uint64_t bytes_received = 0;
    std::uint64_t decode_errors = 0;   // malformed frames → dropped connections
    std::uint64_t frames_dropped = 0;  // peer-buffer overflow
    std::uint64_t connects = 0;        // successful dials (incl. reconnects)
    std::uint64_t accepts = 0;
    std::uint64_t unknown_instance = 0;  // frames for an unregistered instance
    std::uint64_t writev_calls = 0;    // sendmsg() syscalls on the flush path
    std::uint64_t payload_copies = 0;  // outbound serializations (one per send/broadcast)
    std::uint64_t frames_shared = 0;   // broadcast enqueues that aliased an
                                       // existing body instead of copying it
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

  /// Per-peer attribution of the aggregate counters above: which links shed
  /// frames under pressure and which links flapped. Chaos tests assert these
  /// are nonzero on attacked links; the SIGTERM report prints them so
  /// oldest-first shedding is never silent.
  struct PeerCounters {
    std::uint64_t shed_frames = 0;        // frames dropped toward this peer
    std::uint64_t reconnect_attempts = 0; // dial retries scheduled
  };
  [[nodiscard]] const std::map<sim::NodeId, PeerCounters>& peer_counters() const {
    return peer_counters_;
  }

  /// The transport event loop. Observability endpoints (obs::HttpServer)
  /// register on it so scrape handlers run on the transport thread and may
  /// read transport-owned state (stats_, metrics_, peers_) without locks.
  [[nodiscard]] EventLoop& loop() { return loop_; }

  /// Point-in-time view of one peer link for /statusz: connection state,
  /// outbound queue depth (pending + live-connection bytes), and the shed /
  /// reconnect counters. Transport thread only.
  struct PeerSnapshot {
    sim::NodeId id = 0;
    bool connected = false;
    std::uint64_t queued_bytes = 0;
    std::uint64_t shed_frames = 0;
    std::uint64_t reconnect_attempts = 0;
  };
  [[nodiscard]] std::vector<PeerSnapshot> peer_snapshots() const;

  /// Registers this env's transport stats as scrape-evaluated series
  /// (counter_fn/gauge_fn) in `registry`: aggregate frame/byte/shed/connect
  /// counters, total send-queue depth, and per-peer shed / reconnect / queue
  /// series for every currently-known peer. The registry must be scraped on
  /// the transport thread (serve the HTTP endpoints from loop()).
  void register_observability(obs::Registry& registry);

  // -- protocol::Env ---------------------------------------------------------
  [[nodiscard]] sim::SimTime now() const override;
  [[nodiscard]] const sim::CostModel& costs() const override;
  void apply(protocol::Action action) override;

 private:
  struct Conn {
    int fd = -1;
    bool dialed = false;
    bool connecting = false;  // nonblocking connect() still in flight
    bool bound = false;       // peer identity established
    sim::NodeId peer = 0;     // valid when bound
    FrameReader reader;
    SendQueue outq;
    bool want_write = false;

    explicit Conn(std::size_t max_frame) : reader(max_frame) {}
  };

  /// Internal-wheel token for re-arming a parked listener (peer-id tokens
  /// are node ids, which never reach this value).
  static constexpr TimerWheel::Token kListenerRetryToken = ~TimerWheel::Token{0};

  struct Peer {
    PeerAddr addr;
    bool dialable = false;
    int fd = -1;  // live connection, -1 when disconnected
    SendQueue pending;  // frames awaiting a connection
    sim::SimTime backoff = 0;
    std::uint64_t reconnect_attempts = 0;  // jitter key; resets on connect
  };

  void open_listener();
  void dial_peer(sim::NodeId id);
  void schedule_reconnect(sim::NodeId id);
  void on_listener_ready(std::uint32_t events);
  void on_conn_ready(int fd, std::uint32_t events);
  void finish_connect(Conn& conn);
  void read_conn(Conn& conn);
  void flush_conn(Conn& conn);
  void close_conn(int fd, bool reconnect);
  void bind_conn_to_peer(Conn& conn, sim::NodeId id);
  void deliver_frame(Conn& conn, const FrameReader::Frame& frame);
  /// False (and counts a drop) if the frame exceeds the receive-side frame
  /// ceiling — sending it would livelock every receiver on decode errors.
  bool check_frame_size(const SharedFrame& frame);
  void send_frame(sim::NodeId to, SharedFrame frame);
  /// send_frame with the copy/alias counters of an n-peer broadcast.
  void broadcast_frame(SharedFrame frame);
  /// Queues a frame (bounded) without any I/O; never invalidates `conn`.
  void append_frame(Conn& conn, SharedFrame frame);
  /// append_frame + flush; the flush may close and destroy `conn`.
  void enqueue_on_conn(Conn& conn, SharedFrame frame);
  void update_interest(Conn& conn);
  void fire_core_timer(TimerWheel::Token token);

  struct Worker;

  struct Instance {
    InstanceHooks hooks;
    TimerWheel timers;
    Worker* worker = nullptr;  // owning io-thread while run() is active

    explicit Instance(sim::SimTime tick) : timers(tick) {}
  };

  /// One io-thread: a private EventLoop used purely as a sleep/wake
  /// primitive (no fds — the sockets stay on the transport thread), the
  /// inbound work ring, and the instances whose cores and timer wheels this
  /// thread exclusively owns while running.
  struct Worker {
    std::thread thread;
    EventLoop loop;
    MpscRing<std::function<void()>> ring{kRingCapacity};
    std::vector<Instance*> instances;
    std::atomic<bool> idle{false};
    std::atomic<bool> stop{false};
  };

  static constexpr std::size_t kRingCapacity = 16384;

  [[nodiscard]] bool on_transport_thread() const;
  void start_workers();
  void stop_workers();
  void worker_main(Worker& worker);
  void drain_transport_ring();
  void post_to_worker(Worker& worker, std::function<void()> fn);

  SocketEnvOptions opts_;
  protocol::Protocol* protocol_ = nullptr;
  std::map<std::uint32_t, Instance> instances_;
  ExecuteObserver execute_observer_;
  PayloadInterceptor payload_interceptor_;
  std::function<void(std::uint64_t)> aux_timer_handler_;
  core::ProtocolMetrics metrics_;
  Stats stats_;

  EventLoop loop_;
  TimerWheel core_timers_;      // the protocol's SetTimer/CancelTimer tokens
  TimerWheel internal_timers_;  // transport housekeeping (reconnect backoff)
  TimerWheel aux_timers_;       // deployment-layer subsystems (state sync)
  sim::SimTime epoch_ns_ = 0;   // CLOCK_MONOTONIC at construction

  int listen_fd_ = -1;
  std::uint16_t bound_port_ = 0;
  std::unordered_map<int, std::unique_ptr<Conn>> conns_;
  std::map<sim::NodeId, Peer> peers_;
  std::map<sim::NodeId, PeerCounters> peer_counters_;

  bool started_ = false;
  bool oversized_frame_reported_ = false;  // one diagnostic per process
  // Lock-free atomic: stores are async-signal-safe and cross-thread visible
  // (a volatile bool would be neither — plain UB as a data race).
  std::atomic<bool> stop_requested_{false};

  // io-thread mode (opts_.io_threads > 1 with registered instances). All of
  // this is quiescent on the single-threaded path: mt_active_ false, rings
  // empty, no workers — zero behavior change.
  std::vector<std::unique_ptr<Worker>> workers_;
  MpscRing<std::function<void()>> transport_ring_{kRingCapacity};
  std::atomic<bool> transport_idle_{false};
  std::atomic<bool> mt_active_{false};
  std::thread::id transport_tid_{};
};

}  // namespace leopard::net
