#include "store/replica_store.hpp"

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "obs/metrics.hpp"
#include "util/check.hpp"

namespace leopard::store {

namespace {

// Process-wide durability latency histograms (all stores in a process share
// one WAL discipline; the per-thread shards keep multi-store recording
// uncontended anyway).
obs::Histogram wal_append_hist() {
  static const obs::Histogram h = obs::Registry::global().histogram(
      "leopard_wal_append_ns", "WAL entry encode+write latency in nanoseconds");
  return h;
}

obs::Histogram wal_fsync_hist() {
  static const obs::Histogram h = obs::Registry::global().histogram(
      "leopard_wal_fsync_ns", "WAL fsync latency in nanoseconds");
  return h;
}

constexpr std::uint32_t kSnapshotMagic = 0x504E534Cu;  // "LSNP"
constexpr std::uint8_t kSnapshotVersion = 1;

std::string errno_str() { return std::strerror(errno); }

void set_err(std::string* err, std::string what) {
  if (err != nullptr) *err = std::move(what);
}

/// snap-<20-digit index>-<16 hex digest chars>.snap
std::string snapshot_name(std::uint64_t entries, const crypto::Digest& digest) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "snap-%020llu-%016llx.snap",
                static_cast<unsigned long long>(entries),
                static_cast<unsigned long long>(digest.prefix64()));
  return buf;
}

bool parse_snapshot_index(const std::string& name, std::uint64_t& index) {
  // Lexicographic order of the zero-padded index equals numeric order, but
  // parse explicitly so a stray file cannot confuse the GC.
  if (name.size() != 4 + 1 + 20 + 1 + 16 + 5) return false;
  if (name.rfind("snap-", 0) != 0 || name.find(".snap") != name.size() - 5) return false;
  index = 0;
  for (std::size_t i = 5; i < 25; ++i) {
    if (name[i] < '0' || name[i] > '9') return false;
    index = index * 10 + static_cast<std::uint64_t>(name[i] - '0');
  }
  return true;
}

crypto::Digest read_digest(util::ByteReader& r) {
  crypto::Sha256::DigestBytes bytes{};
  const auto view = r.raw(crypto::Digest::kSize);
  std::memcpy(bytes.data(), view.data(), bytes.size());
  return crypto::Digest(bytes);
}

}  // namespace

ReplicaStore::ReplicaStore(StoreOptions opts) : opts_(std::move(opts)), io_(opts_.io) {}

ReplicaStore::~ReplicaStore() {
  if (fd_ >= 0) {
    if (dirty_ && opts_.fsync_policy != FsyncPolicy::kNever) do_fsync();
    io().close(fd_);
  }
}

RecoveryResult ReplicaStore::open(RecoverMode mode) {
  util::expects(fd_ < 0, "ReplicaStore::open called twice");
  RecoveryResult res;
  if (!io().mkdirs(opts_.dir)) {
    res.status = RecoveryResult::Status::kIoError;
    res.detail = "mkdir " + opts_.dir + ": " + errno_str();
    return res;
  }
  const int fd = io().open_rw(wal_path());
  if (fd < 0) {
    res.status = RecoveryResult::Status::kIoError;
    res.detail = "open " + wal_path() + ": " + errno_str();
    return res;
  }
  const auto size = io().file_size(fd);
  if (size < 0) {
    io().close(fd);
    res.status = RecoveryResult::Status::kIoError;
    res.detail = "stat " + wal_path() + ": " + errno_str();
    return res;
  }

  util::Bytes wal(static_cast<std::size_t>(size));
  if (size > 0 && !io().pread_exact(fd, 0, wal)) {
    io().close(fd);
    res.status = RecoveryResult::Status::kIoError;
    res.detail = "read " + wal_path() + ": " + errno_str();
    return res;
  }

  fd_ = fd;  // replay() needs the fd for repair truncation
  auto snap = load_best_snapshot(wal.size());
  res = replay(wal, snap, mode);
  if (snap.has_value() && res.status == RecoveryResult::Status::kCorrupt) {
    // The damage may sit in the prefix the snapshot vouches for (the fast
    // scan skips chain checks there) or the snapshot itself may lie about
    // the record boundary. Retry from genesis before giving up: the full
    // replay either proves the log good or pins the real damage.
    res = replay(wal, std::nullopt, mode);
  }
  if (!res.ok()) {
    io().close(fd_);
    fd_ = -1;
  }
  return res;
}

std::optional<ReplicaStore::Snapshot> ReplicaStore::load_best_snapshot(
    std::uint64_t wal_size) {
  std::vector<std::pair<std::uint64_t, std::string>> candidates;
  for (const auto& name : io().list_dir(opts_.dir)) {
    std::uint64_t index = 0;
    if (parse_snapshot_index(name, index)) candidates.emplace_back(index, name);
  }
  std::sort(candidates.rbegin(), candidates.rend());
  for (const auto& [index, name] : candidates) {
    auto snap = read_snapshot(name);
    if (snap.has_value() && snap->wal_offset <= wal_size) return snap;
  }
  return std::nullopt;
}

std::optional<ReplicaStore::Snapshot> ReplicaStore::read_snapshot(
    const std::string& name) {
  const auto path = opts_.dir + "/" + name;
  const int fd = io().open_rw(path);
  if (fd < 0) return std::nullopt;
  const auto size = io().file_size(fd);
  if (size <= 0 || static_cast<std::uint64_t>(size) >
                       kRecordHeaderBytes + kMaxRecordPayloadBytes) {
    io().close(fd);
    return std::nullopt;
  }
  util::Bytes data(static_cast<std::size_t>(size));
  const bool read_ok = io().pread_exact(fd, 0, data);
  io().close(fd);
  if (!read_ok) return std::nullopt;

  const auto rec = scan_record(data, 0);
  if (rec.status != RecordScan::Status::kRecord || rec.next_offset != data.size()) {
    return std::nullopt;
  }
  try {
    util::ByteReader r(rec.payload);
    if (r.u32() != kSnapshotMagic || r.u8() != kSnapshotVersion) return std::nullopt;
    Snapshot snap;
    snap.entries = r.u64();
    snap.wal_offset = r.u64();
    snap.executed_requests = r.u64();
    snap.tail_seq = r.u64();
    snap.tail_ordinal = r.u32();
    snap.exec_digest = read_digest(r);
    if (!r.done()) return std::nullopt;
    snap.filename = name;
    return snap;
  } catch (const util::ContractViolation&) {
    return std::nullopt;
  }
}

RecoveryResult ReplicaStore::replay(std::span<const std::uint8_t> wal,
                                    const std::optional<Snapshot>& snap,
                                    RecoverMode mode) {
  RecoveryResult res;
  entry_spans_.clear();
  exec_digest_ = crypto::Digest{};
  executed_requests_ = 0;
  tail_seq_ = 0;
  tail_ordinal_ = 0;

  const std::uint64_t fast_until = snap.has_value() ? snap->wal_offset : 0;
  std::uint64_t offset = 0;
  std::uint64_t valid_end = 0;
  bool snapshot_applied = !snap.has_value();

  const auto fail_at = [&](std::uint64_t at, const std::string& what) -> bool {
    // Returns true if replay may continue (kTruncate repaired); false aborts.
    if (mode == RecoverMode::kStrict) {
      res.status = RecoveryResult::Status::kCorrupt;
      res.detail = what + " at offset " + std::to_string(at) +
                   " (record " + std::to_string(entry_spans_.size()) +
                   "); rerun with --recover=truncate to drop the damaged suffix";
      return false;
    }
    res.corrupt_dropped = wal.size() - at;
    res.detail = what + " at offset " + std::to_string(at) + ": truncated";
    return true;
  };

  while (true) {
    const auto rec = scan_record(wal, offset);
    if (rec.status == RecordScan::Status::kEnd) break;
    if (rec.status == RecordScan::Status::kTorn) {
      res.torn_bytes = wal.size() - offset;
      break;
    }
    if (rec.status == RecordScan::Status::kCorrupt) {
      if (!fail_at(offset, "checksum/length failure")) return res;
      break;
    }

    const auto index = entry_spans_.size();
    if (offset >= fast_until && !snapshot_applied) {
      // First record at or past the snapshot's claimed end of prefix. It
      // must land exactly on the boundary with exactly the promised record
      // count — a snapshot pointing mid-record lies about the log.
      if (offset != fast_until || index != snap->entries) {
        if (!fail_at(offset, "snapshot/log boundary mismatch")) return res;
        break;
      }
      exec_digest_ = snap->exec_digest;
      executed_requests_ = snap->executed_requests;
      tail_seq_ = snap->tail_seq;
      tail_ordinal_ = snap->tail_ordinal;
      res.snapshot_index = snap->entries;
      snapshot_applied = true;
    }
    if (snapshot_applied) {
      // Full validation of the replayed suffix: decode, index continuity,
      // exec_digest chain. The prefix below the snapshot is CRC-checked
      // only — the snapshot vouches for its state.
      util::ByteReader r(rec.payload);
      const auto entry = decode_entry(r);
      if (!entry.has_value() || !r.done()) {
        if (!fail_at(offset, "undecodable entry")) return res;
        break;
      }
      if (entry->index != index) {
        if (!fail_at(offset, "index discontinuity")) return res;
        break;
      }
      if (fold_exec_digest(exec_digest_, entry->block_digest) != entry->post_digest) {
        if (!fail_at(offset, "exec_digest chain mismatch")) return res;
        break;
      }
      exec_digest_ = entry->post_digest;
      executed_requests_ += entry->requests;
      tail_seq_ = entry->seq;
      tail_ordinal_ = entry->ordinal;
    }
    entry_spans_.push_back(
        {offset, static_cast<std::uint32_t>(rec.payload.size())});
    offset = rec.next_offset;
    valid_end = offset;
  }

  if (snap.has_value() && !snapshot_applied) {
    if (valid_end == fast_until && entry_spans_.size() == snap->entries) {
      // The log ends exactly at the snapshot boundary (nothing appended
      // since, or a torn tail right after it): the snapshot IS the state.
      exec_digest_ = snap->exec_digest;
      executed_requests_ = snap->executed_requests;
      tail_seq_ = snap->tail_seq;
      tail_ordinal_ = snap->tail_ordinal;
      res.snapshot_index = snap->entries;
    } else {
      // The log ended before reaching the snapshot's claimed boundary (torn
      // or repaired away). The snapshot state cannot be joined to what is
      // on disk; report corruption so open() retries from genesis.
      res.status = RecoveryResult::Status::kCorrupt;
      res.detail = "snapshot claims more log than survives on disk";
      return res;
    }
  }

  if (valid_end < wal.size()) {
    if (!io().ftruncate(fd_, valid_end)) {
      res.status = RecoveryResult::Status::kIoError;
      res.detail = "truncating damaged tail: " + errno_str();
      return res;
    }
  }
  wal_size_ = valid_end;
  res.status = wal.empty() ? RecoveryResult::Status::kFreshStart
                           : RecoveryResult::Status::kRecovered;
  res.entries = entry_spans_.size();
  res.executed_requests = executed_requests_;
  res.exec_digest = exec_digest_;
  return res;
}

bool ReplicaStore::append(std::uint64_t seq, std::uint32_t ordinal,
                          const crypto::Digest& block_digest, std::uint64_t requests,
                          std::span<const std::uint8_t> frame, sim::SimTime now,
                          std::string* err) {
  util::expects(is_open(), "ReplicaStore::append before open");
  const auto append_t0 = obs::mono_now_ns();
  WalEntry entry;
  entry.index = entries();
  entry.seq = seq;
  entry.ordinal = ordinal;
  entry.requests = requests;
  entry.block_digest = block_digest;
  entry.post_digest = fold_exec_digest(exec_digest_, block_digest);
  entry.frame.assign(frame.begin(), frame.end());

  util::ByteWriter w(frame.size() + 128);
  encode_entry(w, entry);
  const auto record = frame_record(w.bytes());

  std::size_t written = 0;
  while (written < record.size()) {
    const auto n = io().append(
        fd_, std::span<const std::uint8_t>(record).subspan(written));
    if (n <= 0) {
      // Short-then-failed write (ENOSPC, I/O error): roll the file back to
      // the last good record boundary so the log never ends mid-record.
      ++stats_.append_errors;
      set_err(err, "wal append: " + (n < 0 ? errno_str() : std::string("no progress")));
      io().ftruncate(fd_, wal_size_);  // best effort; recovery repairs anyway
      return false;
    }
    written += static_cast<std::size_t>(n);
  }

  entry_spans_.push_back(
      {wal_size_, static_cast<std::uint32_t>(record.size() - kRecordHeaderBytes)});
  wal_size_ += record.size();
  exec_digest_ = entry.post_digest;
  executed_requests_ += requests;
  tail_seq_ = seq;
  tail_ordinal_ = ordinal;
  dirty_ = true;
  ++stats_.appends;
  wal_append_hist().record_since(append_t0);

  bool ok = true;
  switch (opts_.fsync_policy) {
    case FsyncPolicy::kAlways:
      ok = do_fsync();
      break;
    case FsyncPolicy::kInterval:
      if (now - last_fsync_ >= opts_.fsync_interval) {
        ok = do_fsync();
        last_fsync_ = now;
      }
      break;
    case FsyncPolicy::kNever:
      break;
  }
  if (!ok) set_err(err, "wal fsync: " + errno_str());

  maybe_snapshot();
  return ok;
}

bool ReplicaStore::flush(std::string* err) {
  if (!is_open() || !dirty_) return true;
  if (opts_.fsync_policy == FsyncPolicy::kNever) return true;
  if (!do_fsync()) {
    set_err(err, "wal fsync: " + errno_str());
    return false;
  }
  return true;
}

bool ReplicaStore::do_fsync() {
  ++stats_.fsyncs;
  const auto t0 = obs::mono_now_ns();
  if (!io().fsync(fd_)) {
    ++stats_.fsync_errors;
    return false;
  }
  wal_fsync_hist().record_since(t0);
  dirty_ = false;
  return true;
}

bool ReplicaStore::read_entries(std::uint64_t from, std::uint64_t to,
                                std::vector<WalEntry>& out) const {
  util::expects(is_open(), "ReplicaStore::read_entries before open");
  if (from > to || to > entries()) return false;
  out.clear();
  out.reserve(to - from);
  util::Bytes buf;
  for (std::uint64_t i = from; i < to; ++i) {
    const auto& span = entry_spans_[i];
    buf.resize(kRecordHeaderBytes + span.payload_len);
    if (!io().pread_exact(fd_, span.offset, buf)) return false;
    const auto rec = scan_record(buf, 0);
    if (rec.status != RecordScan::Status::kRecord) return false;
    util::ByteReader r(rec.payload);
    auto entry = decode_entry(r);
    if (!entry.has_value() || !r.done() || entry->index != i) return false;
    out.push_back(std::move(*entry));
  }
  return true;
}

bool ReplicaStore::digest_at(std::uint64_t index, crypto::Digest& out) const {
  util::expects(is_open(), "ReplicaStore::digest_at before open");
  if (index > entries()) return false;
  if (index == entries()) {
    out = exec_digest_;
    return true;
  }
  if (index == 0) {
    out = crypto::Digest{};
    return true;
  }
  std::vector<WalEntry> one;
  if (!read_entries(index - 1, index, one)) return false;
  out = one.front().post_digest;
  return true;
}

void ReplicaStore::maybe_snapshot() {
  if (opts_.snapshot_every == 0 || entries() == 0) return;
  if (entries() % opts_.snapshot_every != 0) return;

  // The snapshot asserts the WAL prefix below wal_offset is durable; make it
  // so before the rename lands (pointless under kNever — recovery falls back
  // to an older generation or full replay if the prefix went missing).
  if (opts_.fsync_policy != FsyncPolicy::kNever && dirty_ && !do_fsync()) {
    ++stats_.snapshot_errors;
    return;
  }

  util::ByteWriter w(128);
  w.u32(kSnapshotMagic);
  w.u8(kSnapshotVersion);
  w.u64(entries());
  w.u64(wal_size_);
  w.u64(executed_requests_);
  w.u64(tail_seq_);
  w.u32(tail_ordinal_);
  w.raw(exec_digest_.bytes());
  const auto record = frame_record(w.bytes());

  const auto tmp = opts_.dir + "/snap.tmp";
  io().unlink(tmp);  // stale tmp from a crashed predecessor
  const int fd = io().open_rw(tmp);
  if (fd < 0) {
    ++stats_.snapshot_errors;
    return;
  }
  std::size_t written = 0;
  while (written < record.size()) {
    const auto n =
        io().append(fd, std::span<const std::uint8_t>(record).subspan(written));
    if (n <= 0) {
      io().close(fd);
      io().unlink(tmp);
      ++stats_.snapshot_errors;
      return;
    }
    written += static_cast<std::size_t>(n);
  }
  const bool synced = io().fsync(fd);
  io().close(fd);
  if (!synced ||
      !io().rename(tmp, opts_.dir + "/" + snapshot_name(entries(), exec_digest_))) {
    io().unlink(tmp);
    ++stats_.snapshot_errors;
    return;
  }
  io().fsync_dir(opts_.dir);  // make the rename itself durable
  ++stats_.snapshots_written;
  gc_snapshots();
}

void ReplicaStore::gc_snapshots() {
  std::vector<std::pair<std::uint64_t, std::string>> snaps;
  for (const auto& name : io().list_dir(opts_.dir)) {
    std::uint64_t index = 0;
    if (parse_snapshot_index(name, index)) snaps.emplace_back(index, name);
  }
  if (snaps.size() <= opts_.keep_snapshots) return;
  std::sort(snaps.rbegin(), snaps.rend());
  for (std::size_t i = opts_.keep_snapshots; i < snaps.size(); ++i) {
    io().unlink(opts_.dir + "/" + snaps[i].second);
  }
}

}  // namespace leopard::store
