// StoreIo: the syscall seam between the persistence layer and the disk.
//
// ReplicaStore performs every filesystem operation through this interface so
// tests can inject the failures real disks produce — short writes, ENOSPC,
// fsync errors, crashes between a write and its rename — without mocking the
// store itself. Production uses the process-wide system() singleton, which is
// a thin veneer over POSIX fds.
//
// Error convention: operations return false / -1 and leave the POSIX error in
// `errno` (fault injectors set errno explicitly), matching the syscalls they
// wrap. Paths are plain absolute or cwd-relative strings; no path math
// happens behind the seam.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace leopard::store {

class StoreIo {
 public:
  virtual ~StoreIo() = default;

  /// Opens (creating if needed) a file for appending + reading. Returns an
  /// opaque fd (>= 0) or -1.
  virtual int open_rw(const std::string& path) = 0;

  /// Appends `data` at the current end of file. Returns the number of bytes
  /// actually written (a SHORT count models a torn write; the caller must
  /// retry or roll back), or -1 on error.
  virtual std::int64_t append(int fd, std::span<const std::uint8_t> data) = 0;

  /// Reads exactly `buf.size()` bytes at `offset`; false on error/EOF-short.
  virtual bool pread_exact(int fd, std::uint64_t offset, std::span<std::uint8_t> buf) = 0;

  virtual bool fsync(int fd) = 0;
  virtual bool ftruncate(int fd, std::uint64_t size) = 0;
  [[nodiscard]] virtual std::int64_t file_size(int fd) = 0;
  virtual void close(int fd) = 0;

  /// Atomic replace (POSIX rename semantics). The caller fsyncs the parent
  /// directory afterwards via fsync_dir for crash durability.
  virtual bool rename(const std::string& from, const std::string& to) = 0;
  virtual bool unlink(const std::string& path) = 0;
  virtual bool mkdirs(const std::string& path) = 0;
  virtual bool fsync_dir(const std::string& path) = 0;
  /// Names (not paths) of directory entries, unsorted; empty on error.
  [[nodiscard]] virtual std::vector<std::string> list_dir(const std::string& path) = 0;

  /// The real-POSIX implementation; process-wide singleton.
  static StoreIo& system();
};

}  // namespace leopard::store
