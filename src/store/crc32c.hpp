// CRC32C (Castagnoli polynomial 0x1EDC6F41, reflected 0x82F63B78): the
// checksum guarding every WAL record and snapshot on disk. Chosen over plain
// CRC32 for its better error-detection properties on storage workloads (the
// same polynomial iSCSI, ext4 metadata, and LevelDB/RocksDB use), and over a
// cryptographic hash because the threat model here is bit rot and torn
// writes, not an adversary with write access to the data directory — an
// attacker who can forge a CRC can simply replace the whole file.
//
// Software slice-by-8 implementation: ~1 GB/s, far above the fsync-bound
// append rate of the WAL. Tables are built at first use.
#pragma once

#include <cstdint>
#include <span>

namespace leopard::store {

/// CRC32C of `data`, with optional chaining: pass a previous crc32c() result
/// as `seed` to extend the checksum over discontiguous buffers.
[[nodiscard]] std::uint32_t crc32c(std::span<const std::uint8_t> data,
                                   std::uint32_t seed = 0);

}  // namespace leopard::store
