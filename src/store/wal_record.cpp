#include "store/wal_record.hpp"

#include <cstring>

#include "store/crc32c.hpp"
#include "util/check.hpp"

namespace leopard::store {

namespace {

crypto::Digest read_digest(util::ByteReader& r) {
  crypto::Sha256::DigestBytes bytes{};
  const auto view = r.raw(crypto::Digest::kSize);
  std::memcpy(bytes.data(), view.data(), bytes.size());
  return crypto::Digest(bytes);
}

}  // namespace

void encode_entry(util::ByteWriter& w, const WalEntry& entry) {
  w.u64(entry.index);
  w.u64(entry.seq);
  w.u32(entry.ordinal);
  w.u64(entry.requests);
  w.raw(entry.block_digest.bytes());
  w.raw(entry.post_digest.bytes());
  w.blob(entry.frame);
}

std::optional<WalEntry> decode_entry(util::ByteReader& r) {
  try {
    WalEntry e;
    e.index = r.u64();
    e.seq = r.u64();
    e.ordinal = r.u32();
    e.requests = r.u64();
    e.block_digest = read_digest(r);
    e.post_digest = read_digest(r);
    const auto frame = r.blob();
    e.frame.assign(frame.begin(), frame.end());
    return e;
  } catch (const util::ContractViolation&) {
    return std::nullopt;
  }
}

util::Bytes frame_record(std::span<const std::uint8_t> payload) {
  util::expects(payload.size() <= kMaxRecordPayloadBytes, "record payload too large");
  util::ByteWriter w(kRecordHeaderBytes + payload.size());
  w.u32(static_cast<std::uint32_t>(payload.size()));
  w.u32(crc32c(payload));
  w.raw(payload);
  return w.take();
}

RecordScan scan_record(std::span<const std::uint8_t> data, std::uint64_t offset) {
  RecordScan out;
  if (offset >= data.size()) {
    out.status = RecordScan::Status::kEnd;
    out.next_offset = offset;
    return out;
  }
  const auto avail = data.size() - offset;
  if (avail < kRecordHeaderBytes) {
    out.status = RecordScan::Status::kTorn;
    return out;
  }
  util::ByteReader r(data.subspan(offset, kRecordHeaderBytes));
  const auto len = r.u32();
  const auto crc = r.u32();
  if (len > kMaxRecordPayloadBytes) {
    // An absurd length is indistinguishable from a bit flip in the length
    // field itself; either way the record is complete garbage, not a tail
    // the process died writing.
    out.status = RecordScan::Status::kCorrupt;
    return out;
  }
  if (avail - kRecordHeaderBytes < len) {
    out.status = RecordScan::Status::kTorn;
    return out;
  }
  const auto payload = data.subspan(offset + kRecordHeaderBytes, len);
  if (crc32c(payload) != crc) {
    out.status = RecordScan::Status::kCorrupt;
    return out;
  }
  out.status = RecordScan::Status::kRecord;
  out.payload = payload;
  out.next_offset = offset + kRecordHeaderBytes + len;
  return out;
}

crypto::Digest fold_exec_digest(const crypto::Digest& prev,
                                const crypto::Digest& block_digest) {
  util::ByteWriter w(2 * crypto::Digest::kSize);
  w.raw(prev.bytes());
  w.raw(block_digest.bytes());
  return crypto::Digest::of(w.bytes());
}

}  // namespace leopard::store
