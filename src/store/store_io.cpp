#include "store/store_io.hpp"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>

namespace leopard::store {

namespace {

class SystemIo final : public StoreIo {
 public:
  int open_rw(const std::string& path) override {
    return ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  }

  std::int64_t append(int fd, std::span<const std::uint8_t> data) override {
    // O_APPEND is deliberately not used: recovery may ftruncate a torn tail
    // and the next append must land at the (new) end as lseek reports it.
    const auto end = ::lseek(fd, 0, SEEK_END);
    if (end < 0) return -1;
    return ::write(fd, data.data(), data.size());
  }

  bool pread_exact(int fd, std::uint64_t offset, std::span<std::uint8_t> buf) override {
    std::size_t done = 0;
    while (done < buf.size()) {
      const auto n = ::pread(fd, buf.data() + done, buf.size() - done,
                             static_cast<off_t>(offset + done));
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        return false;
      }
      done += static_cast<std::size_t>(n);
    }
    return true;
  }

  bool fsync(int fd) override { return ::fsync(fd) == 0; }

  bool ftruncate(int fd, std::uint64_t size) override {
    return ::ftruncate(fd, static_cast<off_t>(size)) == 0;
  }

  std::int64_t file_size(int fd) override {
    struct stat st{};
    if (::fstat(fd, &st) != 0) return -1;
    return st.st_size;
  }

  void close(int fd) override { ::close(fd); }

  bool rename(const std::string& from, const std::string& to) override {
    return ::rename(from.c_str(), to.c_str()) == 0;
  }

  bool unlink(const std::string& path) override { return ::unlink(path.c_str()) == 0; }

  bool mkdirs(const std::string& path) override {
    // Create each prefix in turn; EEXIST (including a pre-existing full path)
    // is success.
    std::string prefix;
    prefix.reserve(path.size());
    for (std::size_t i = 0; i <= path.size(); ++i) {
      if (i < path.size() && path[i] != '/') {
        prefix.push_back(path[i]);
        continue;
      }
      if (i < path.size()) prefix.push_back('/');
      if (prefix.empty() || prefix == "/") continue;
      if (::mkdir(prefix.c_str(), 0755) != 0 && errno != EEXIST) return false;
    }
    return true;
  }

  bool fsync_dir(const std::string& path) override {
    const int fd = ::open(path.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
    if (fd < 0) return false;
    const bool ok = ::fsync(fd) == 0;
    ::close(fd);
    return ok;
  }

  std::vector<std::string> list_dir(const std::string& path) override {
    std::vector<std::string> names;
    DIR* dir = ::opendir(path.c_str());
    if (dir == nullptr) return names;
    while (const dirent* ent = ::readdir(dir)) {
      const std::string name = ent->d_name;
      if (name != "." && name != "..") names.push_back(name);
    }
    ::closedir(dir);
    return names;
  }
};

}  // namespace

StoreIo& StoreIo::system() {
  static SystemIo io;
  return io;
}

}  // namespace leopard::store
