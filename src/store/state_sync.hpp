// StateSync: peer state transfer for a restarted replica, layered UNDER the
// consensus core at the deployment boundary (leopard_node), next to the
// ReplicaStore it fills.
//
// A replica that recovers `count` durable entries from disk may still be
// behind: Leopard's checkpoint adoption jumps a rejoining core forward
// without re-emitting the skipped Execute actions, so the local stream has a
// gap no amount of local replay closes. StateSync fills it from peers:
//
//   probe  — broadcast StateOffer{kProbe, from=count}; every peer answers
//            kOffer{until=its durable length, digest at that length}.
//   decide — with offers from >= n-1-f peers all reporting until <= count,
//            no gap can exist (a gap implies >= 2f peers ahead of us, and
//            n-1-f offers would include at least one of them): go live and
//            drain the pending buffer. Otherwise pull up to the (f+1)-th
//            largest offer — the longest prefix at least f+1 peers can serve.
//   pull   — each serving peer deterministically byte-caps the range to an
//            identical [from, T'), serializes it identically, Reed-Solomon
//            (k=f+1, n)-encodes the blob, and sends ONLY ITS OWN shard
//            (chunk_index == its replica id) — Algorithm 3's retrieval-
//            committee shape applied to catch-up, so a range of α bytes
//            costs each server ≈ α/(f+1).
//   verify — any k distinct shards reconstruct the blob; a chunk claiming a
//            shard index other than its sender's id is rejected outright, so
//            each peer contributes at most its own shard. The requester
//            re-validates everything (entry decode, index continuity, coord
//            monotonicity, per-frame block digest, the exec_digest fold
//            chain, and the final digest against the group's claim) before
//            appending a single entry, so f corrupt shards can waste a round
//            but never poison the store.
//
// Execute actions arriving live while syncing are buffered in `pending` and
// deduplicated by (seq, ordinal) coordinate against the durable tail; rounds
// repeat (probe timeouts retry with jittered exponential backoff) until the
// decide rule fires. One round pulls a bounded range, so a long outage syncs
// in several rounds, each re-verified end to end.
//
// Reporting state (exec_digest, executed counts) is owned HERE, not by the
// store: a disk failure degrades durability, never the report, so digest
// equality across the cluster stays checkable even when appends fail.
//
// Limits: Reed-Solomon over GF(2^8) caps n at 255 — beyond that StateSync
// disables itself and the node goes straight to live. A simultaneous
// full-cluster cold restart is out of scope (consensus sequence numbers
// restart; wipe the data dirs instead — see docs/DEPLOY.md).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <span>
#include <vector>

#include "crypto/digest.hpp"
#include "erasure/reed_solomon.hpp"
#include "proto/messages.hpp"
#include "sim/message.hpp"
#include "sim/time.hpp"
#include "store/replica_store.hpp"

namespace leopard::store {

struct StateSyncOptions {
  /// Wait for probe answers before retrying (retries back off exponentially
  /// with deterministic jitter, capped at `backoff_max`).
  sim::SimTime probe_timeout = 300 * sim::kMillisecond;
  sim::SimTime backoff_max = 3 * sim::kSecond;
  /// Abandon a pull round (insufficient chunks) after this long.
  sim::SimTime round_timeout = 2 * sim::kSecond;
  /// Requester-side cap on entries per pull round.
  std::uint64_t max_round_entries = 4096;
  /// Server-side cap on serialized bytes per round. MUST be configured
  /// identically across the cluster: servers never coordinate, they each cut
  /// the range at the same deterministic byte boundary so their shards
  /// describe the same blob.
  std::uint64_t max_round_bytes = 8u << 20;
  /// Per-group budget of RS decode+verify attempts. The subset search is
  /// C(m-1, f) per new shard — tiny for deployment-sized n but combinatorial
  /// at the GF(2^8) limit, so a garbled shard must not buy an attacker
  /// unbounded CPU: past the budget the group is abandoned (the round timer
  /// or a sibling group finishes the round).
  std::uint64_t max_decode_attempts = 2048;
  /// Recomputes a block's canonical digest from its wire frame (nullopt =
  /// frame malformed). Supplied by the node so the store layer stays
  /// transport-agnostic; unset skips per-frame verification (tests).
  std::function<std::optional<crypto::Digest>(std::span<const std::uint8_t>)> frame_digest;
};

class StateSync {
 public:
  /// Timer tokens passed to the arm/cancel hooks (and back via on_timer).
  static constexpr std::uint64_t kProbeTimer = 1;
  static constexpr std::uint64_t kRoundTimer = 2;

  /// `store` may be nullptr (node running without --data-dir): the replica
  /// then neither serves nor pulls state and goes live immediately.
  StateSync(sim::NodeId id, std::uint32_t n, std::uint32_t f, ReplicaStore* store,
            StateSyncOptions opts);

  /// Outbound message hook (required before start()).
  void set_send(std::function<void(sim::NodeId, sim::PayloadPtr)> send) {
    send_ = std::move(send);
  }
  /// Timer hooks: arm(token, delay-from-now) and cancel(token). Re-arming a
  /// token replaces it (Env contract).
  void set_timer_hooks(std::function<void(std::uint64_t, sim::SimTime)> arm,
                       std::function<void(std::uint64_t)> cancel) {
    arm_timer_ = std::move(arm);
    cancel_timer_ = std::move(cancel);
  }

  /// Seeds the reporting state from disk recovery. Call before start().
  void init_from_recovery(const RecoveryResult& rec);

  /// Begins probing (or goes live immediately when there is nothing to ask:
  /// n == 1, no store, or state sync disabled by the shard-count limit).
  void start(sim::SimTime now);

  /// Feeds an inbound payload. Returns true if it was a state-transfer
  /// message (consumed — never forward those to the consensus core).
  bool on_payload(sim::NodeId from, const sim::PayloadPtr& payload, sim::SimTime now);

  void on_timer(std::uint64_t token, sim::SimTime now);

  /// One committed Execute from the local core. `frame` is the block's wire
  /// frame (what a peer would need to replay it).
  void on_execute(std::uint64_t seq, std::uint32_t ordinal,
                  const crypto::Digest& block_digest, std::uint64_t requests,
                  std::span<const std::uint8_t> frame, sim::SimTime now);

  [[nodiscard]] bool live() const { return mode_ == Mode::kLive; }
  [[nodiscard]] const crypto::Digest& exec_digest() const { return exec_digest_; }
  [[nodiscard]] std::uint64_t executed_requests() const { return executed_requests_; }
  [[nodiscard]] std::uint64_t executed_blocks() const { return applied_count_; }
  /// Durable tail coordinate (last applied seq/ordinal) — a sharded host
  /// re-seats its cross-shard sequencer from this after recovery/transfer.
  [[nodiscard]] std::uint64_t tail_seq() const { return tail_seq_; }
  [[nodiscard]] std::uint32_t tail_ordinal() const { return tail_ordinal_; }

  struct Stats {
    std::uint64_t probes_sent = 0;
    std::uint64_t offers_sent = 0;
    std::uint64_t offers_received = 0;
    std::uint64_t pulls_sent = 0;
    std::uint64_t pulls_served = 0;
    std::uint64_t chunks_received = 0;
    std::uint64_t rounds_completed = 0;
    std::uint64_t entries_transferred = 0;
    std::uint64_t bytes_transferred = 0;  // decoded blob bytes applied
    std::uint64_t verify_failures = 0;
    std::uint64_t duplicates_dropped = 0;
    std::uint64_t pending_peak = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  enum class Mode : std::uint8_t { kProbing, kPulling, kLive };

  struct PendingEntry {
    std::uint64_t seq = 0;
    std::uint32_t ordinal = 0;
    crypto::Digest block_digest;
    std::uint64_t requests = 0;
    util::Bytes frame;
  };
  /// Chunks grouped by the range identity they claim; a group decodes once
  /// it holds data_shards distinct chunk indices.
  struct ChunkGroup {
    std::uint64_t until = 0;
    crypto::Digest digest;
    std::uint32_t data_shards = 0;
    std::uint64_t attempts = 0;  // decode+verify attempts spent on this group
    std::map<std::uint32_t, util::Bytes> chunks;  // chunk_index -> shard
  };

  /// A byzantine server can mint one ChunkGroup per forged (until, digest)
  /// pair; capping creations per sender bounds group memory at
  /// kMaxGroupsPerSender * (n-1) without letting an attacker crowd out groups
  /// honest servers have yet to open.
  static constexpr std::uint32_t kMaxGroupsPerSender = 3;

  [[nodiscard]] bool store_open() const { return store_ != nullptr && store_->is_open(); }
  [[nodiscard]] std::pair<std::uint64_t, std::uint32_t> tail() const {
    return {tail_seq_, tail_ordinal_};
  }

  void go_live(sim::SimTime now);
  void begin_probe(sim::SimTime now, bool backed_off);
  void decide(sim::SimTime now);
  void begin_pull(std::uint64_t target, sim::SimTime now);
  void serve_probe(sim::NodeId from, const proto::StateOfferMsg& msg);
  void serve_pull(sim::NodeId from, const proto::StateOfferMsg& msg);
  void on_offer(sim::NodeId from, const proto::StateOfferMsg& msg, sim::SimTime now);
  void on_chunk(sim::NodeId from, const proto::StateChunkMsg& msg, sim::SimTime now);
  /// Tries every data_shards-sized subset of the group that contains the
  /// just-inserted shard `new_index` until one decodes and fully re-verifies;
  /// applies on success. Subset search is what makes the pull robust to a
  /// lying server: its garbled shard fails the digest chain, but an untainted
  /// subset of the same group still completes. Restricting to subsets through
  /// the new shard is exact memoization — every other subset already failed
  /// when its own last member arrived.
  bool try_complete(ChunkGroup& group, std::uint32_t new_index, sim::SimTime now);
  /// Decodes + fully re-verifies one shard subset; applies on success.
  bool try_subset(const ChunkGroup& group, const std::vector<erasure::ShardView>& views,
                  sim::SimTime now);
  /// Appends one verified entry (store best-effort) and advances reporting.
  void apply_entry(std::uint64_t seq, std::uint32_t ordinal,
                   const crypto::Digest& block_digest, std::uint64_t requests,
                   std::span<const std::uint8_t> frame, sim::SimTime now);
  void purge_pending();

  sim::NodeId id_;
  std::uint32_t n_;
  std::uint32_t f_;
  ReplicaStore* store_;
  StateSyncOptions opts_;
  bool enabled_ = true;  // false when n > 255 (GF(2^8) shard-index limit)

  std::function<void(sim::NodeId, sim::PayloadPtr)> send_;
  std::function<void(std::uint64_t, sim::SimTime)> arm_timer_;
  std::function<void(std::uint64_t)> cancel_timer_;

  Mode mode_ = Mode::kProbing;
  // Reporting state: the node-level Execute-stream fold, seeded by recovery,
  // advanced by every applied entry (live or transferred).
  std::uint64_t applied_count_ = 0;
  std::uint64_t executed_requests_ = 0;
  crypto::Digest exec_digest_;
  std::uint64_t tail_seq_ = 0;
  std::uint32_t tail_ordinal_ = 0;

  std::uint64_t transfer_id_ = 0;   // current probe round
  std::uint32_t probe_round_ = 0;   // backoff/jitter key
  sim::SimTime probe_backoff_ = 0;  // current retry delay
  std::map<sim::NodeId, std::uint64_t> offers_;  // peer -> until (this round)
  std::uint64_t pull_from_ = 0;
  std::uint64_t pull_until_ = 0;  // requester-side target (servers may cut shorter)
  // Keyed by (served until_index, digest prefix): a lying server forks its
  // own group instead of poisoning the honest one.
  std::map<std::pair<std::uint64_t, std::uint64_t>, ChunkGroup> groups_;
  // Groups created by each sender this round (see kMaxGroupsPerSender).
  std::map<sim::NodeId, std::uint32_t> group_creates_;

  std::deque<PendingEntry> pending_;
  erasure::RsScratch rs_scratch_;
  Stats stats_;
};

}  // namespace leopard::store
