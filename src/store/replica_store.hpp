// ReplicaStore: durable record of this replica's committed Execute stream.
//
// Layout of a data directory:
//
//   wal.log                      append-only log of WalEntry records
//   snap-<index>-<digest16>.snap one-record snapshot files, newest wins
//   snap.tmp                     in-flight snapshot (ignored by recovery)
//
// The WAL is the source of truth; snapshots only summarize a prefix so
// recovery replays the suffix instead of the whole log. Each snapshot is
// keyed by the exec_digest it certifies (in its name and its payload) and is
// written write-temp + atomic-rename, so a crash at any instant leaves either
// the old generation or the new one, never a half-file that parses.
//
// Recovery semantics (open):
//   - a record extending past EOF is a torn append: truncated silently in
//     both modes (the entry was never acknowledged as durable);
//   - a complete record failing CRC, entry decode, index continuity, or the
//     exec_digest chain is CORRUPTION: open fails under RecoverMode::kStrict
//     and truncates at the damaged record under kTruncate;
//   - snapshots are redundancy, not truth: an unreadable/invalid snapshot is
//     skipped (older generation, then full replay), never an error.
//
// Group commit: FsyncPolicy::kAlways syncs every append (durable before the
// call returns); kInterval batches syncs on a clock (bounded data loss,
// much higher append rate); kNever leaves flushing to the kernel.
//
// Single-threaded, like the SocketEnv loop that drives it. All I/O goes
// through the injectable StoreIo seam.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "crypto/digest.hpp"
#include "sim/time.hpp"
#include "store/store_io.hpp"
#include "store/wal_record.hpp"

namespace leopard::store {

enum class FsyncPolicy : std::uint8_t { kAlways, kInterval, kNever };

enum class RecoverMode : std::uint8_t { kStrict, kTruncate };

struct StoreOptions {
  std::string dir;
  FsyncPolicy fsync_policy = FsyncPolicy::kAlways;
  sim::SimTime fsync_interval = 50 * sim::kMillisecond;  // kInterval batching
  /// Entries between snapshots; 0 disables snapshotting.
  std::uint64_t snapshot_every = 4096;
  std::size_t keep_snapshots = 2;
  StoreIo* io = nullptr;  // nullptr = StoreIo::system()
};

struct RecoveryResult {
  enum class Status : std::uint8_t {
    kFreshStart,  // no WAL (or empty): nothing to recover
    kRecovered,   // state restored (possibly after torn-tail/kTruncate repair)
    kCorrupt,     // kStrict refused a damaged record; store is NOT open
    kIoError,     // directory/file unusable; store is NOT open
  };
  Status status = Status::kFreshStart;
  std::string detail;
  std::uint64_t entries = 0;
  std::uint64_t executed_requests = 0;
  crypto::Digest exec_digest;
  std::uint64_t snapshot_index = 0;   // entries the loaded snapshot covered
  std::uint64_t torn_bytes = 0;       // auto-truncated torn tail
  std::uint64_t corrupt_dropped = 0;  // bytes dropped by kTruncate repair

  [[nodiscard]] bool ok() const {
    return status == Status::kFreshStart || status == Status::kRecovered;
  }
};

class ReplicaStore {
 public:
  explicit ReplicaStore(StoreOptions opts);
  ~ReplicaStore();

  ReplicaStore(const ReplicaStore&) = delete;
  ReplicaStore& operator=(const ReplicaStore&) = delete;

  /// Opens the data directory and recovers state. Must be called (and return
  /// ok()) before any other member. Idempotent-hostile: call once.
  RecoveryResult open(RecoverMode mode);

  /// Appends the next committed entry. The store assigns the index and folds
  /// the digest chain itself. On failure the file is rolled back to the last
  /// durable boundary and in-memory state is unchanged.
  bool append(std::uint64_t seq, std::uint32_t ordinal,
              const crypto::Digest& block_digest, std::uint64_t requests,
              std::span<const std::uint8_t> frame, sim::SimTime now,
              std::string* err = nullptr);

  /// Forces an fsync of the WAL (e.g. on shutdown) if anything is unsynced.
  bool flush(std::string* err = nullptr);

  [[nodiscard]] bool is_open() const { return fd_ >= 0; }
  [[nodiscard]] std::uint64_t entries() const { return entry_spans_.size(); }
  [[nodiscard]] const crypto::Digest& exec_digest() const { return exec_digest_; }
  [[nodiscard]] std::uint64_t executed_requests() const { return executed_requests_; }
  /// (seq, ordinal) of the last entry; (0, 0) when empty.
  [[nodiscard]] std::pair<std::uint64_t, std::uint32_t> tail_coord() const {
    return {tail_seq_, tail_ordinal_};
  }
  [[nodiscard]] std::uint64_t wal_bytes() const { return wal_size_; }

  /// Reads and decodes entries [from, to); false on range/IO/validation
  /// error. Serves state transfer, so every record re-verifies its CRC.
  bool read_entries(std::uint64_t from, std::uint64_t to,
                    std::vector<WalEntry>& out) const;

  /// exec_digest after the first `index` entries (0 = the zero digest,
  /// entries() = exec_digest()); any index within the log resolves because
  /// every record stores its post_digest. False on range or read error.
  bool digest_at(std::uint64_t index, crypto::Digest& out) const;

  struct Stats {
    std::uint64_t appends = 0;
    std::uint64_t append_errors = 0;
    std::uint64_t fsyncs = 0;
    std::uint64_t fsync_errors = 0;
    std::uint64_t snapshots_written = 0;
    std::uint64_t snapshot_errors = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  struct Snapshot {
    std::uint64_t entries = 0;
    std::uint64_t wal_offset = 0;
    std::uint64_t executed_requests = 0;
    std::uint64_t tail_seq = 0;
    std::uint32_t tail_ordinal = 0;
    crypto::Digest exec_digest;
    std::string filename;
  };
  struct EntrySpan {
    std::uint64_t offset = 0;  // record start (length header) in wal.log
    std::uint32_t payload_len = 0;
  };

  [[nodiscard]] StoreIo& io() const { return io_ != nullptr ? *io_ : StoreIo::system(); }
  [[nodiscard]] std::string wal_path() const { return opts_.dir + "/wal.log"; }

  /// Best valid snapshot whose wal_offset fits the file, or nullopt.
  std::optional<Snapshot> load_best_snapshot(std::uint64_t wal_size);
  [[nodiscard]] std::optional<Snapshot> read_snapshot(const std::string& name);
  /// Replays `wal` (the full file) on top of `snap` (or from genesis).
  RecoveryResult replay(std::span<const std::uint8_t> wal,
                        const std::optional<Snapshot>& snap, RecoverMode mode);
  bool do_fsync();
  void maybe_snapshot();
  void gc_snapshots();

  StoreOptions opts_;
  StoreIo* io_ = nullptr;
  int fd_ = -1;
  std::uint64_t wal_size_ = 0;
  std::vector<EntrySpan> entry_spans_;
  crypto::Digest exec_digest_;
  std::uint64_t executed_requests_ = 0;
  std::uint64_t tail_seq_ = 0;
  std::uint32_t tail_ordinal_ = 0;
  bool dirty_ = false;  // unsynced appends outstanding
  sim::SimTime last_fsync_ = 0;
  Stats stats_;
};

}  // namespace leopard::store
