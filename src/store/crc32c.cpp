#include "store/crc32c.hpp"

#include <array>

namespace leopard::store {

namespace {

constexpr std::uint32_t kPoly = 0x82F63B78u;  // Castagnoli, reflected

struct Tables {
  // table[0] is the classic byte-at-a-time table; tables 1..7 extend it so
  // eight bytes fold in one step (slice-by-8).
  std::array<std::array<std::uint32_t, 256>, 8> t{};

  Tables() {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc & 1u) != 0 ? (crc >> 1) ^ kPoly : crc >> 1;
      }
      t[0][i] = crc;
    }
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = t[0][i];
      for (std::size_t k = 1; k < 8; ++k) {
        crc = t[0][crc & 0xFFu] ^ (crc >> 8);
        t[k][i] = crc;
      }
    }
  }
};

const Tables& tables() {
  static const Tables tbl;
  return tbl;
}

}  // namespace

std::uint32_t crc32c(std::span<const std::uint8_t> data, std::uint32_t seed) {
  const auto& t = tables().t;
  std::uint32_t crc = ~seed;
  std::size_t i = 0;
  for (; i + 8 <= data.size(); i += 8) {
    const std::uint32_t lo = crc ^ (static_cast<std::uint32_t>(data[i]) |
                                    static_cast<std::uint32_t>(data[i + 1]) << 8 |
                                    static_cast<std::uint32_t>(data[i + 2]) << 16 |
                                    static_cast<std::uint32_t>(data[i + 3]) << 24);
    crc = t[7][lo & 0xFFu] ^ t[6][(lo >> 8) & 0xFFu] ^ t[5][(lo >> 16) & 0xFFu] ^
          t[4][lo >> 24] ^ t[3][data[i + 4]] ^ t[2][data[i + 5]] ^ t[1][data[i + 6]] ^
          t[0][data[i + 7]];
  }
  for (; i < data.size(); ++i) {
    crc = t[0][(crc ^ data[i]) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace leopard::store
