// On-disk record format shared by the WAL, snapshots, and state transfer.
//
// Record framing (all integers little-endian, via the canonical ByteWriter):
//
//   u32 length    — byte count of the payload that follows the two headers
//   u32 crc32c    — CRC32C over the payload bytes
//   payload       — `length` bytes
//
// A record that extends past end-of-file (incomplete header, or declared
// length beyond the remaining bytes) is a TORN WRITE: the tail of an append
// the process died inside. A complete record whose CRC or contents fail
// validation is CORRUPTION. Recovery treats the two differently — torn tails
// truncate silently, corruption refuses to start (see ReplicaStore).
//
// WAL entry payload — one committed Execute action:
//
//   u64  index          — position in the global Execute stream, from 0
//   u64  seq            — consensus sequence (BFTblock sn / baseline height)
//   u32  ordinal        — position within that sequence's block (Leopard
//                         links several datablocks per BFTblock)
//   u64  requests       — client requests the block carried
//   32B  block_digest   — the block's canonical digest (DatablockMsg /
//                         BaselineBlockMsg cached_digest)
//   32B  post_digest    — exec_digest AFTER folding this entry; chains each
//                         record to its predecessor so recovery verifies the
//                         whole prefix without decoding frames
//   blob frame          — full wire frame of the block (net::encode_frame),
//                         replayable to any peer during state transfer
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "crypto/digest.hpp"
#include "util/bytes.hpp"

namespace leopard::store {

/// Bytes of the two fixed headers preceding every record payload.
inline constexpr std::size_t kRecordHeaderBytes = 8;

/// Ceiling on one record payload: the 64 MiB wire-frame limit plus entry
/// metadata headroom. A length beyond this is corruption, not a huge record.
inline constexpr std::size_t kMaxRecordPayloadBytes = (64u << 20) + 4096;

struct WalEntry {
  std::uint64_t index = 0;
  std::uint64_t seq = 0;
  std::uint32_t ordinal = 0;
  std::uint64_t requests = 0;
  crypto::Digest block_digest;
  crypto::Digest post_digest;
  util::Bytes frame;

  /// (seq, ordinal) — strictly increasing along the global Execute stream.
  [[nodiscard]] std::pair<std::uint64_t, std::uint32_t> coord() const {
    return {seq, ordinal};
  }
};

void encode_entry(util::ByteWriter& w, const WalEntry& entry);

/// Decodes one entry from `r`; nullopt if malformed (underflow or trailing
/// inconsistency is the caller's concern — entries are self-delimiting).
[[nodiscard]] std::optional<WalEntry> decode_entry(util::ByteReader& r);

/// Wraps `payload` in the record framing (length + CRC32C headers).
[[nodiscard]] util::Bytes frame_record(std::span<const std::uint8_t> payload);

/// One step of a forward scan over record-framed bytes at `offset`.
struct RecordScan {
  enum class Status : std::uint8_t {
    kRecord,   // payload spans [payload_offset, payload_offset + length)
    kTorn,     // record extends past end-of-data: torn tail at `offset`
    kCorrupt,  // complete record, bad CRC or absurd length
    kEnd,      // offset == data.size(): clean end
  };
  Status status = Status::kEnd;
  std::span<const std::uint8_t> payload;
  std::uint64_t next_offset = 0;
};

[[nodiscard]] RecordScan scan_record(std::span<const std::uint8_t> data,
                                     std::uint64_t offset);

/// The exec_digest chain step: digest after executing a block with
/// `block_digest` on top of `prev`. MUST match the fold leopard_node applies
/// live (ByteWriter raw(prev) || raw(block); see tools/leopard_node.cpp).
[[nodiscard]] crypto::Digest fold_exec_digest(const crypto::Digest& prev,
                                              const crypto::Digest& block_digest);

}  // namespace leopard::store
