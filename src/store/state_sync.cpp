#include "store/state_sync.hpp"

#include <algorithm>
#include <memory>
#include <utility>

#include "net/timer_wheel.hpp"  // jittered()

namespace leopard::store {

namespace {

/// Lexicographic (seq, ordinal) comparison.
bool coord_le(std::pair<std::uint64_t, std::uint32_t> a,
              std::pair<std::uint64_t, std::uint32_t> b) {
  return a.first != b.first ? a.first < b.first : a.second <= b.second;
}

}  // namespace

StateSync::StateSync(sim::NodeId id, std::uint32_t n, std::uint32_t f,
                     ReplicaStore* store, StateSyncOptions opts)
    : id_(id), n_(n), f_(f), store_(store), opts_(std::move(opts)) {
  // GF(2^8) caps shard indices at 255; beyond that there is no (f+1, n) code.
  enabled_ = n_ >= 1 && n_ <= 255 && f_ + 1 <= n_;
  probe_backoff_ = opts_.probe_timeout;
}

void StateSync::init_from_recovery(const RecoveryResult& rec) {
  applied_count_ = rec.entries;
  executed_requests_ = rec.executed_requests;
  exec_digest_ = rec.exec_digest;
  if (store_ != nullptr && store_->is_open()) {
    const auto [s, o] = store_->tail_coord();
    tail_seq_ = s;
    tail_ordinal_ = o;
  }
}

void StateSync::start(sim::SimTime now) {
  // Nothing to ask: a single-node cluster, a node with no durable state to
  // reconcile (no --data-dir), or a cluster too large for the erasure code.
  if (!enabled_ || n_ <= 1 || !store_open()) {
    go_live(now);
    return;
  }
  begin_probe(now, /*backed_off=*/false);
}

// ---------------------------------------------------------------------------
// Live execute stream
// ---------------------------------------------------------------------------

void StateSync::on_execute(std::uint64_t seq, std::uint32_t ordinal,
                           const crypto::Digest& block_digest, std::uint64_t requests,
                           std::span<const std::uint8_t> frame, sim::SimTime now) {
  if (coord_le({seq, ordinal}, tail())) {
    // A replayed duplicate of an entry already durable/applied (the core
    // re-executed after restart, or a peer re-sent an old block).
    ++stats_.duplicates_dropped;
    return;
  }
  if (mode_ == Mode::kLive) {
    // A jump past tail_seq_ + 1 means the core adopted a checkpoint and
    // skipped Execute actions we never saw (a healed partition does exactly
    // this): appending the new coordinate would fold a divergent exec_digest
    // forever. Buffer it and re-enter catch-up to pull the gap from peers.
    // Checkpoints land on whole-sn boundaries, so a gap always shows up as a
    // skipped seq, never as a skipped ordinal within a seq.
    if (seq > tail_seq_ + 1 && enabled_ && n_ > 1 && store_open()) {
      pending_.push_back(PendingEntry{seq, ordinal, block_digest, requests,
                                      util::Bytes(frame.begin(), frame.end())});
      stats_.pending_peak = std::max<std::uint64_t>(stats_.pending_peak, pending_.size());
      begin_probe(now, /*backed_off=*/false);
      return;
    }
    apply_entry(seq, ordinal, block_digest, requests, frame, now);
    return;
  }
  pending_.push_back(PendingEntry{seq, ordinal, block_digest, requests,
                                  util::Bytes(frame.begin(), frame.end())});
  stats_.pending_peak = std::max<std::uint64_t>(stats_.pending_peak, pending_.size());
}

void StateSync::apply_entry(std::uint64_t seq, std::uint32_t ordinal,
                            const crypto::Digest& block_digest, std::uint64_t requests,
                            std::span<const std::uint8_t> frame, sim::SimTime now) {
  if (store_open()) {
    // Best-effort durability: an append failure is counted by the store's
    // stats but never stalls execution or the reporting chain.
    store_->append(seq, ordinal, block_digest, requests, frame, now);
  }
  exec_digest_ = fold_exec_digest(exec_digest_, block_digest);
  executed_requests_ += requests;
  ++applied_count_;
  tail_seq_ = seq;
  tail_ordinal_ = ordinal;
}

void StateSync::purge_pending() {
  while (!pending_.empty() &&
         coord_le({pending_.front().seq, pending_.front().ordinal}, tail())) {
    pending_.pop_front();
    ++stats_.duplicates_dropped;
  }
}

void StateSync::go_live(sim::SimTime now) {
  mode_ = Mode::kLive;
  if (cancel_timer_) {
    cancel_timer_(kProbeTimer);
    cancel_timer_(kRoundTimer);
  }
  offers_.clear();
  groups_.clear();
  group_creates_.clear();
  // Drain the live entries buffered while syncing. The go-live rule
  // guarantees no gap below them: >= n-1-f peers reported nothing beyond our
  // applied count, and any committed-but-unseen entry would put >= f+1
  // honest peers ahead of us.
  for (auto& p : pending_) {
    if (coord_le({p.seq, p.ordinal}, tail())) continue;
    apply_entry(p.seq, p.ordinal, p.block_digest, p.requests, p.frame, now);
  }
  pending_.clear();
}

// ---------------------------------------------------------------------------
// Probe / decide
// ---------------------------------------------------------------------------

void StateSync::begin_probe(sim::SimTime now, bool backed_off) {
  (void)now;
  mode_ = Mode::kProbing;
  ++probe_round_;
  transfer_id_ = (static_cast<std::uint64_t>(id_) << 32) | probe_round_;
  offers_.clear();
  groups_.clear();
  group_creates_.clear();

  auto probe = std::make_shared<proto::StateOfferMsg>();
  probe->kind = proto::StateOfferMsg::kProbe;
  probe->transfer_id = transfer_id_;
  probe->from_index = applied_count_;
  for (std::uint32_t peer = 0; peer < n_; ++peer) {
    if (peer == id_) continue;
    send_(peer, probe);
  }
  ++stats_.probes_sent;

  const auto delay = backed_off
                         ? net::jittered(probe_backoff_, transfer_id_)
                         : opts_.probe_timeout;
  if (arm_timer_) arm_timer_(kProbeTimer, delay);
}

void StateSync::on_offer(sim::NodeId from, const proto::StateOfferMsg& msg,
                         sim::SimTime now) {
  if (msg.transfer_id != transfer_id_) return;
  if (mode_ != Mode::kProbing) return;
  offers_[from] = msg.until_index;
  ++stats_.offers_received;
  const std::uint32_t need = n_ - 1 - std::min(f_, n_ - 1);
  if (offers_.size() >= need) decide(now);
}

void StateSync::decide(sim::SimTime now) {
  const std::uint32_t need = n_ - 1 - std::min(f_, n_ - 1);
  const bool complete = offers_.size() >= need;

  std::vector<std::uint64_t> untils;
  untils.reserve(offers_.size());
  for (const auto& [peer, until] : offers_) untils.push_back(until);
  std::sort(untils.begin(), untils.end(), std::greater<>());

  const std::uint64_t max_until = untils.empty() ? 0 : untils.front();
  if (complete && max_until <= applied_count_) {
    go_live(now);
    return;
  }

  if (untils.size() >= f_ + 1) {
    // The longest prefix at least f+1 peers claim to hold — enough distinct
    // shards to decode, and at least one of those claims is honest.
    std::uint64_t target = untils[f_];
    target = std::min(target, applied_count_ + opts_.max_round_entries);
    if (target > applied_count_) {
      begin_pull(target, now);
      return;
    }
    if (complete) {
      // Fewer than f+1 peers are ahead: every such claim could be a lie, and
      // no honest majority prefix extends past us. Join the live stream.
      go_live(now);
      return;
    }
  }

  // Not enough information yet; retry with exponential backoff.
  probe_backoff_ = std::min(probe_backoff_ * 2, opts_.backoff_max);
  begin_probe(now, /*backed_off=*/true);
}

// ---------------------------------------------------------------------------
// Pull / chunks
// ---------------------------------------------------------------------------

void StateSync::begin_pull(std::uint64_t target, sim::SimTime now) {
  (void)now;
  mode_ = Mode::kPulling;
  pull_from_ = applied_count_;
  pull_until_ = target;
  groups_.clear();
  group_creates_.clear();
  probe_backoff_ = opts_.probe_timeout;  // progress resets the backoff

  auto pull = std::make_shared<proto::StateOfferMsg>();
  pull->kind = proto::StateOfferMsg::kPull;
  pull->transfer_id = transfer_id_;
  pull->from_index = pull_from_;
  pull->until_index = target;
  // Ask EVERY peer, not just the offers seen at decide time: a server whose
  // offer is still in flight can cover the range too, and each extra distinct
  // shard widens the subset search that defeats a lying server. Peers that
  // cannot cover the range ignore the request (or cut it shorter, forking
  // their own harmless group).
  for (sim::NodeId peer = 0; peer < n_; ++peer) {
    if (peer == id_) continue;
    send_(peer, pull);
    ++stats_.pulls_sent;
  }
  if (cancel_timer_) cancel_timer_(kProbeTimer);
  if (arm_timer_) arm_timer_(kRoundTimer, opts_.round_timeout);
}

void StateSync::serve_probe(sim::NodeId from, const proto::StateOfferMsg& msg) {
  auto offer = std::make_shared<proto::StateOfferMsg>();
  offer->kind = proto::StateOfferMsg::kOffer;
  offer->transfer_id = msg.transfer_id;
  offer->until_index = store_open() ? store_->entries() : 0;
  if (store_open()) offer->exec_digest = store_->exec_digest();
  send_(from, offer);
  ++stats_.offers_sent;
}

void StateSync::serve_pull(sim::NodeId from, const proto::StateOfferMsg& msg) {
  if (!store_open() || id_ >= n_) return;
  const std::uint64_t lo = msg.from_index;
  std::uint64_t hi = std::min<std::uint64_t>(msg.until_index, store_->entries());
  if (lo >= hi) return;

  // Serialize entries until the byte cap. Every honest server cuts at the
  // same deterministic boundary (same entries, same encoding, same cap), so
  // their shards describe one identical blob.
  util::ByteWriter blob;
  std::uint64_t upto = lo;
  std::vector<WalEntry> one;
  for (std::uint64_t i = lo; i < hi; ++i) {
    one.clear();
    if (!store_->read_entries(i, i + 1, one) || one.size() != 1) break;
    util::ByteWriter enc;
    encode_entry(enc, one[0]);
    if (blob.size() != 0 && blob.size() + enc.size() > opts_.max_round_bytes) break;
    blob.raw(enc.bytes());
    upto = i + 1;
  }
  if (upto == lo) return;

  crypto::Digest at_upto;
  if (!store_->digest_at(upto, at_upto)) return;

  const erasure::ReedSolomon rs(f_ + 1, n_);
  const auto shards = rs.encode_into(blob.bytes(), rs_scratch_);
  const auto mine = shards.shard(id_);

  auto chunk = std::make_shared<proto::StateChunkMsg>();
  chunk->transfer_id = msg.transfer_id;
  chunk->from_index = lo;
  chunk->until_index = upto;
  chunk->exec_digest = at_upto;
  chunk->chunk_index = id_;
  chunk->data_shards = f_ + 1;
  chunk->total_shards = n_;
  chunk->chunk.assign(mine.begin(), mine.end());
  send_(from, chunk);
  ++stats_.pulls_served;
}

void StateSync::on_chunk(sim::NodeId from, const proto::StateChunkMsg& msg,
                         sim::SimTime now) {
  if (mode_ != Mode::kPulling || msg.transfer_id != transfer_id_) return;
  ++stats_.chunks_received;
  if (msg.data_shards != f_ + 1 || msg.total_shards != n_ || msg.chunk_index >= n_) {
    return;
  }
  // An honest server only ever sends its OWN shard (serve_pull sets
  // chunk_index = id_), so a chunk claiming someone else's index is forged.
  // Without this check a fast byzantine peer could squat every shard index
  // with garbage before honest answers land, leaving no untainted subset.
  if (msg.chunk_index != from) return;
  if (msg.from_index != pull_from_ || msg.until_index <= pull_from_ ||
      msg.until_index > pull_until_) {
    return;
  }

  const std::pair<std::uint64_t, std::uint64_t> key{msg.until_index,
                                                    msg.exec_digest.prefix64()};
  auto it = groups_.find(key);
  if (it == groups_.end()) {
    if (group_creates_[from] >= kMaxGroupsPerSender) return;
    ++group_creates_[from];
    it = groups_.emplace(key, ChunkGroup{}).first;
  }
  auto& group = it->second;
  group.until = msg.until_index;
  group.digest = msg.exec_digest;
  group.data_shards = msg.data_shards;
  if (!group.chunks.emplace(msg.chunk_index, msg.chunk).second) {
    return;  // retransmit of a shard already held — nothing new to try
  }

  if (group.chunks.size() >= group.data_shards) {
    // groups_ is reset by the round restart on success.
    if (try_complete(group, msg.chunk_index, now)) return;
    ++stats_.verify_failures;
    // A lying server's shard is indistinguishable inside the RS decode, so a
    // failed attempt keeps the group: the next honest shard may complete an
    // untainted subset. Hopeless once every possible server answered (the
    // requester's own index never arrives) or the decode budget is spent.
    if (group.chunks.size() + 1 >= n_ || group.attempts >= opts_.max_decode_attempts) {
      groups_.erase(key);
    }
  }
}

bool StateSync::try_complete(ChunkGroup& group, std::uint32_t new_index,
                             sim::SimTime now) {
  // A byzantine server can contribute a garbled shard that decodes into a
  // blob failing the digest chain below, and RS alone cannot attribute the
  // fault — so search data_shards-sized subsets of what arrived until one
  // verifies. Only subsets CONTAINING the just-inserted shard are tried:
  // every other subset already failed when its own last member arrived, so
  // this is exact memoization and each subset is attempted at most once per
  // group. C(m-1, f) stays tiny for deployment-sized n; group.attempts caps
  // the pathological large-n case (the caller abandons a spent group).
  std::vector<erasure::ShardView> others;
  others.reserve(group.chunks.size() - 1);
  const util::Bytes* fresh = nullptr;
  for (const auto& [index, data] : group.chunks) {
    if (index == new_index) {
      fresh = &data;
    } else {
      others.push_back(erasure::ShardView{index, data});
    }
  }
  const std::size_t k = group.data_shards;  // >= 1 (f+1)
  if (fresh == nullptr || others.size() + 1 < k) return false;
  const std::size_t m = k - 1;  // companions drawn from `others`
  std::vector<std::size_t> pick(m);
  for (std::size_t i = 0; i < m; ++i) pick[i] = i;
  std::vector<erasure::ShardView> views;
  for (;;) {
    if (group.attempts >= opts_.max_decode_attempts) return false;
    ++group.attempts;
    views.clear();
    views.reserve(k);
    for (const auto i : pick) views.push_back(others[i]);
    views.push_back(erasure::ShardView{new_index, *fresh});
    if (try_subset(group, views, now)) return true;
    // Advance to the next m-combination of [0, others.size()).
    std::size_t i = m;
    while (i > 0 && pick[i - 1] == i - 1 + others.size() - m) --i;
    if (i == 0) return false;
    ++pick[i - 1];
    for (std::size_t j = i; j < m; ++j) pick[j] = pick[j - 1] + 1;
  }
}

bool StateSync::try_subset(const ChunkGroup& group,
                           const std::vector<erasure::ShardView>& views, sim::SimTime now) {
  const erasure::ReedSolomon rs(group.data_shards, n_);
  util::Bytes blob;
  if (!rs.decode_into(views, rs_scratch_, blob)) return false;

  // Full re-validation before a single entry lands: decode, index
  // continuity, coordinate monotonicity, per-frame block digest, the
  // exec_digest fold chain, and the final digest against the group's claim.
  std::vector<WalEntry> entries;
  util::ByteReader r(blob);
  crypto::Digest d = exec_digest_;
  auto prev = tail();
  std::uint64_t expect = applied_count_;
  while (!r.done()) {
    auto e = decode_entry(r);
    if (!e) return false;
    if (e->index != expect) return false;
    ++expect;
    if (coord_le(e->coord(), prev)) return false;
    prev = e->coord();
    if (opts_.frame_digest) {
      const auto fd = opts_.frame_digest(e->frame);
      if (!fd || !(*fd == e->block_digest)) return false;
    }
    d = fold_exec_digest(d, e->block_digest);
    if (!(d == e->post_digest)) return false;
    entries.push_back(std::move(*e));
  }
  if (entries.empty() || expect != group.until) return false;
  if (!(d == group.digest)) return false;

  for (const auto& e : entries) {
    apply_entry(e.seq, e.ordinal, e.block_digest, e.requests, e.frame, now);
  }
  purge_pending();
  ++stats_.rounds_completed;
  stats_.entries_transferred += entries.size();
  stats_.bytes_transferred += blob.size();

  if (cancel_timer_) cancel_timer_(kRoundTimer);
  probe_backoff_ = opts_.probe_timeout;
  // Immediately re-probe: either another round is needed or the next decide
  // goes live.
  begin_probe(now, /*backed_off=*/false);
  return true;
}

// ---------------------------------------------------------------------------
// Dispatch
// ---------------------------------------------------------------------------

bool StateSync::on_payload(sim::NodeId from, const sim::PayloadPtr& payload,
                           sim::SimTime now) {
  if (const auto* offer = dynamic_cast<const proto::StateOfferMsg*>(payload.get())) {
    if (!enabled_ || from >= n_) return true;  // consumed, ignored
    switch (offer->kind) {
      case proto::StateOfferMsg::kProbe: serve_probe(from, *offer); break;
      case proto::StateOfferMsg::kOffer: on_offer(from, *offer, now); break;
      case proto::StateOfferMsg::kPull: serve_pull(from, *offer); break;
      default: break;
    }
    return true;
  }
  if (const auto* chunk = dynamic_cast<const proto::StateChunkMsg*>(payload.get())) {
    if (!enabled_ || from >= n_) return true;
    on_chunk(from, *chunk, now);
    return true;
  }
  return false;
}

void StateSync::on_timer(std::uint64_t token, sim::SimTime now) {
  if (token == kProbeTimer) {
    if (mode_ != Mode::kProbing) return;
    decide(now);  // acts on whatever offers arrived; re-probes if too few
    return;
  }
  if (token == kRoundTimer) {
    if (mode_ != Mode::kPulling) return;
    // Not enough chunks in time: abandon the round and start over.
    groups_.clear();
    group_creates_.clear();
    begin_probe(now, /*backed_off=*/false);
  }
}

}  // namespace leopard::store
