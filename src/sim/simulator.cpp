#include "sim/simulator.hpp"

#include <limits>

namespace leopard::sim {

std::size_t Simulator::run_until(SimTime deadline) {
  std::size_t executed = 0;
  // Advance the clock BEFORE executing: handlers must observe now() == their
  // fire time.
  while (auto e = queue_.pop_next(deadline)) {
    now_ = e->first;
    e->second();
    ++executed;
  }
  now_ = std::max(now_, deadline);
  return executed;
}

std::size_t Simulator::run_to_completion() {
  std::size_t executed = 0;
  while (auto e = queue_.pop_next(std::numeric_limits<SimTime>::max())) {
    now_ = e->first;
    e->second();
    ++executed;
  }
  return executed;
}

}  // namespace leopard::sim
