#include "sim/simulator.hpp"

#include <algorithm>
#include <limits>

namespace leopard::sim {

EventHandle Simulator::schedule_after(SimTime delay, std::function<void()> fn) {
  return schedule_at(now_ + std::max<SimTime>(delay, 0), std::move(fn));
}

EventHandle Simulator::schedule_at(SimTime at, std::function<void()> fn) {
  return queue_.schedule(std::max(at, now_), std::move(fn));
}

std::size_t Simulator::run_until(SimTime deadline) {
  std::size_t executed = 0;
  // Advance the clock BEFORE executing: handlers must observe now() == their
  // fire time.
  while (auto e = queue_.pop_next(deadline)) {
    now_ = e->first;
    (*e->second)();
    ++executed;
  }
  now_ = std::max(now_, deadline);
  return executed;
}

std::size_t Simulator::run_to_completion() {
  std::size_t executed = 0;
  while (auto e = queue_.pop_next(std::numeric_limits<SimTime>::max())) {
    now_ = e->first;
    (*e->second)();
    ++executed;
  }
  return executed;
}

}  // namespace leopard::sim
