// Simulated time: signed 64-bit nanoseconds since simulation start.
#pragma once

#include <cstdint>

namespace leopard::sim {

/// Nanoseconds of simulated time.
using SimTime = std::int64_t;

inline constexpr SimTime kNanosecond = 1;
inline constexpr SimTime kMicrosecond = 1'000;
inline constexpr SimTime kMillisecond = 1'000'000;
inline constexpr SimTime kSecond = 1'000'000'000;

constexpr SimTime from_seconds(double s) { return static_cast<SimTime>(s * 1e9); }
constexpr double to_seconds(SimTime t) { return static_cast<double>(t) / 1e9; }
constexpr double to_millis(SimTime t) { return static_cast<double>(t) / 1e6; }

/// Time to push `bytes` through a link of `bits_per_sec` capacity.
constexpr SimTime transmission_delay(std::uint64_t bytes, double bits_per_sec) {
  return static_cast<SimTime>(static_cast<double>(bytes) * 8.0 / bits_per_sec * 1e9);
}

}  // namespace leopard::sim
