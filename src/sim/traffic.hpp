// Per-node, per-direction, per-component byte/message accounting.
// Regenerates Table III (bandwidth-utilization breakdown) and Fig. 11
// (leader bandwidth), and measures retrieval/view-change costs.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "sim/message.hpp"
#include "sim/time.hpp"

namespace leopard::sim {

enum class Direction : std::uint8_t { kSend, kReceive };

class TrafficAccountant {
 public:
  explicit TrafficAccountant(std::size_t node_count);

  void record(NodeId node, Direction dir, Component comp, std::size_t bytes);

  /// Snapshot current counters as the measurement baseline (i.e., exclude
  /// warmup traffic from reports).
  void mark_measurement_start(SimTime now);
  [[nodiscard]] SimTime measurement_start() const { return window_start_; }

  /// Bytes since the measurement mark.
  [[nodiscard]] std::uint64_t bytes(NodeId node, Direction dir, Component comp) const;
  [[nodiscard]] std::uint64_t messages(NodeId node, Direction dir, Component comp) const;

  /// Sum over all components for one node/direction since the mark.
  [[nodiscard]] std::uint64_t total_bytes(NodeId node, Direction dir) const;

  /// Average bits per second for a node/direction over [mark, now].
  [[nodiscard]] double bandwidth_bps(NodeId node, Direction dir, SimTime now) const;

  [[nodiscard]] std::size_t node_count() const { return per_node_.size(); }

 private:
  struct Cell {
    std::uint64_t bytes = 0;
    std::uint64_t messages = 0;
  };
  using NodeTable =
      std::array<std::array<Cell, static_cast<std::size_t>(Component::kCount)>, 2>;

  [[nodiscard]] static std::size_t dir_index(Direction d) {
    return d == Direction::kSend ? 0 : 1;
  }

  std::vector<NodeTable> per_node_;
  std::vector<NodeTable> baseline_;
  SimTime window_start_ = 0;
};

}  // namespace leopard::sim
