// CPU cost model: simulated processing costs charged to a replica's single
// CPU timeline. Values are calibrated so the simulated cluster reproduces the
// paper's absolute throughput magnitudes (HotStuff ≈ 1.5·10^5 req/s peak at
// small n, Leopard ≈ 1.1·10^5 flat; see EXPERIMENTS.md "calibration").
//
// Rationale for the defaults:
//  - per-byte receive cost models deserialization + copy (≈ 2 ns/B);
//  - per-request handling models request parsing, dedup, mempool/pool
//    bookkeeping (the dominant per-request work in the paper's Go prototype);
//  - threshold-crypto costs model BLS share sign/verify/aggregate, which the
//    substituted keyed-hash scheme does not itself exhibit.
#pragma once

#include "sim/time.hpp"

namespace leopard::sim {

struct CostModel {
  // Transport-level costs (charged automatically by the Network).
  SimTime send_per_msg = 1 * kMicrosecond;
  double send_per_byte_ns = 1.0;
  SimTime recv_per_msg = 1500;  // 1.5 us
  double recv_per_byte_ns = 2.0;

  // Application-level costs (charged by protocol code via charge_cpu).
  // client_request_ingress and datablock_per_request are the calibration
  // knobs that set absolute throughput magnitudes; the defaults land the
  // paper's reported levels (HotStuff ≈ 3·10^5 at n = 4 and ≈ 1.2·10^5 at
  // n = 32; Leopard ≈ 1.1·10^5 flat). See EXPERIMENTS.md "Calibration".
  SimTime client_request_ingress = 2 * kMicrosecond;  // parse/authenticate/dedup
  SimTime client_request_shed = 300;                  // overload rejection is cheap
  SimTime datablock_per_request = 8 * kMicrosecond;   // Leopard pool bookkeeping
  SimTime block_per_request = 2 * kMicrosecond;       // baseline batch handling
  SimTime execute_per_request = 500;                  // 0.5 us state-machine apply

  // Threshold-signature costs (modelling BLS on a c5.xlarge core).
  SimTime share_sign = 25 * kMicrosecond;
  SimTime share_verify = 35 * kMicrosecond;
  SimTime combine_base = 30 * kMicrosecond;
  SimTime combine_per_share = 2 * kMicrosecond;
  SimTime combined_verify = 35 * kMicrosecond;

  // Hashing / erasure coding throughput (per byte).
  double hash_per_byte_ns = 1.0;
  double erasure_encode_per_byte_ns = 4.0;
  double erasure_decode_per_byte_ns = 6.0;

  [[nodiscard]] SimTime per_bytes(double ns_per_byte, std::size_t bytes) const {
    return static_cast<SimTime>(ns_per_byte * static_cast<double>(bytes));
  }
};

}  // namespace leopard::sim
