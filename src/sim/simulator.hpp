// Simulation clock and scheduler: the single driver of all activity in a run.
#pragma once

#include <algorithm>

#include "sim/event_queue.hpp"
#include "sim/time.hpp"

namespace leopard::sim {

class Simulator {
 public:
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedules `fn` to run `delay` from now (delay < 0 is clamped to 0).
  /// Accepts any void() callable; small captures are stored allocation-free
  /// (see EventCallback).
  template <typename F>
  EventHandle schedule_after(SimTime delay, F&& fn) {
    return schedule_at(now_ + std::max<SimTime>(delay, 0), std::forward<F>(fn));
  }

  /// Schedules `fn` at absolute time `at` (clamped to now if in the past).
  template <typename F>
  EventHandle schedule_at(SimTime at, F&& fn) {
    return queue_.schedule(std::max(at, now_), std::forward<F>(fn));
  }

  /// Runs events until the queue is exhausted or `deadline` is passed;
  /// advances the clock to min(deadline, last event). Returns the number of
  /// events executed.
  std::size_t run_until(SimTime deadline);

  /// Runs until no events remain (use with care: open-loop workloads never
  /// drain). Returns the number of events executed.
  std::size_t run_to_completion();

  /// Number of live scheduled events (diagnostics / capacity planning).
  [[nodiscard]] std::size_t pending_events() const { return queue_.size(); }

 private:
  EventQueue queue_;
  SimTime now_ = 0;
};

}  // namespace leopard::sim
