// Simulation clock and scheduler: the single driver of all activity in a run.
#pragma once

#include <functional>

#include "sim/event_queue.hpp"
#include "sim/time.hpp"

namespace leopard::sim {

class Simulator {
 public:
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedules `fn` to run `delay` from now (delay < 0 is clamped to 0).
  EventHandle schedule_after(SimTime delay, std::function<void()> fn);

  /// Schedules `fn` at absolute time `at` (clamped to now if in the past).
  EventHandle schedule_at(SimTime at, std::function<void()> fn);

  /// Runs events until the queue is exhausted or `deadline` is passed;
  /// advances the clock to min(deadline, last event). Returns the number of
  /// events executed.
  std::size_t run_until(SimTime deadline);

  /// Runs until no events remain (use with care: open-loop workloads never
  /// drain). Returns the number of events executed.
  std::size_t run_to_completion();

 private:
  EventQueue queue_;
  SimTime now_ = 0;
};

}  // namespace leopard::sim
