#include "sim/event_queue.hpp"

#include "util/check.hpp"

namespace leopard::sim {

// ---------------------------------------------------------------------------
// Slab
// ---------------------------------------------------------------------------

std::uint32_t EventQueue::acquire_slot() {
  if (free_head_ != kNilSlot) {
    const std::uint32_t idx = free_head_;
    free_head_ = slots_[idx].next_free;
    slots_[idx].next_free = kNilSlot;
    return idx;
  }
  util::expects(slots_.size() < kSlotMask, "event slab exhausted (2^24 concurrent events)");
  slots_.emplace_back();
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void EventQueue::release_slot(std::uint32_t idx) {
  Slot& s = slots_[idx];
  s.fn.reset();
  s.live = false;  // invalidates outstanding handles and heap entries
  s.next_free = free_head_;
  free_head_ = idx;
}

// ---------------------------------------------------------------------------
// 4-ary heap (logical indices; see phys() for the cache-aligned layout)
// ---------------------------------------------------------------------------

void EventQueue::sift_up(std::size_t logical) const {
  const HeapEntry e = at_logical(logical);
  while (logical > 0) {
    const std::size_t parent = (logical - 1) / 4;
    if (!earlier(e, at_logical(parent))) break;
    at_logical(logical) = at_logical(parent);
    logical = parent;
  }
  at_logical(logical) = e;
}

void EventQueue::sift_down(std::size_t logical) const {
  const std::size_t n = heap_count_;
  const HeapEntry e = at_logical(logical);
  for (;;) {
    const std::size_t first = 4 * logical + 1;
    if (first >= n) break;
    std::size_t best = first;
    const std::size_t last = std::min(first + 4, n);
    // Pull the likely next sibling group toward the cache while this level's
    // comparisons run; on deep heaps the walk is miss-bound.
    const std::size_t pf = phys(4 * first + 1);
    if (pf < heap_.size()) __builtin_prefetch(heap_.data() + pf);
    for (std::size_t c = first + 1; c < last; ++c) {
      if (earlier(at_logical(c), at_logical(best))) best = c;
    }
    if (!earlier(at_logical(best), e)) break;
    at_logical(logical) = at_logical(best);
    logical = best;
  }
  at_logical(logical) = e;
}

void EventQueue::pop_root() const {
  --heap_count_;
  if (heap_count_ > 0) {
    heap_[0] = at_logical(heap_count_);
    sift_down(0);
  }
}

void EventQueue::prune_dead_top() const {
  while (heap_count_ > 0 && !entry_live(heap_[0])) {
    pop_root();
    --dead_count_;
  }
}

void EventQueue::maybe_compact() {
  // Deterministic reclamation: once cancelled entries outnumber live ones
  // (and there are enough to matter), filter and rebuild in O(n). Without
  // this, a workload that schedules and cancels long-dated timers (client
  // resubmission, retrieval, view-change escalation) grows the heap without
  // bound — the seed design's exact failure mode.
  if (dead_count_ < 64 || dead_count_ * 2 < heap_count_) return;
  std::size_t kept = 0;
  for (std::size_t l = 0; l < heap_count_; ++l) {
    if (entry_live(at_logical(l))) {
      at_logical(kept) = at_logical(l);
      ++kept;
    }
  }
  heap_count_ = kept;
  dead_count_ = 0;
  if (kept > 1) {
    for (std::size_t l = (kept - 2) / 4 + 1; l-- > 0;) sift_down(l);
  }
}

// ---------------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------------

EventHandle EventQueue::commit_slot(SimTime at, std::uint32_t idx) {
  Slot& s = slots_[idx];
  const std::uint64_t seq = next_seq_++;
  util::expects(seq < (std::uint64_t{1} << 40), "event sequence space exhausted");
  s.seq = seq;
  s.live = true;
  const std::size_t logical = heap_count_++;
  const std::size_t p = phys(logical);
  if (p >= heap_.size()) heap_.resize(p + 1);
  heap_[p] = HeapEntry{at, (seq << kSlotBits) | idx};
  sift_up(logical);
  ++live_count_;
  return EventHandle(this, seq, idx);
}

void EventQueue::cancel_slot(std::uint32_t slot, std::uint64_t seq) {
  if (slot >= slots_.size()) return;
  Slot& s = slots_[slot];
  if (!s.live || s.seq != seq) return;  // already fired/cancelled, or recycled
  release_slot(slot);
  --live_count_;
  ++dead_count_;
  maybe_compact();
}

std::optional<SimTime> EventQueue::next_time() const {
  prune_dead_top();
  if (heap_count_ == 0) return std::nullopt;
  return heap_[0].at;
}

std::optional<EventQueue::Popped> EventQueue::pop_next(SimTime limit) {
  prune_dead_top();
  if (heap_count_ == 0 || heap_[0].at > limit) return std::nullopt;
  const HeapEntry top = heap_[0];
  pop_root();
  const auto slot = static_cast<std::uint32_t>(top.key & kSlotMask);
  EventCallback fn = std::move(slots_[slot].fn);
  release_slot(slot);
  --live_count_;
  return Popped{top.at, std::move(fn)};
}

std::optional<SimTime> EventQueue::run_next(SimTime limit) {
  auto popped = pop_next(limit);
  if (!popped) return std::nullopt;
  popped->second();
  return popped->first;
}

}  // namespace leopard::sim
