#include "sim/event_queue.hpp"

namespace leopard::sim {

EventHandle EventQueue::schedule(SimTime at, std::function<void()> fn) {
  auto flag = std::make_shared<bool>(false);
  heap_.push(Entry{at, next_seq_++,
                   std::make_shared<std::function<void()>>(std::move(fn)), flag});
  return EventHandle(std::move(flag));
}

void EventQueue::drop_cancelled() {
  while (!heap_.empty() && *heap_.top().cancelled) heap_.pop();
}

std::optional<SimTime> EventQueue::next_time() {
  drop_cancelled();
  if (heap_.empty()) return std::nullopt;
  return heap_.top().at;
}

std::optional<EventQueue::Popped> EventQueue::pop_next(SimTime limit) {
  drop_cancelled();
  if (heap_.empty() || heap_.top().at > limit) return std::nullopt;
  // Copy the (cheap, shared) entry out before running so the callback can
  // schedule new events freely.
  Entry e = heap_.top();
  heap_.pop();
  return Popped{e.at, std::move(e.fn)};
}

std::optional<SimTime> EventQueue::run_next(SimTime limit) {
  auto popped = pop_next(limit);
  if (!popped) return std::nullopt;
  (*popped->second)();
  return popped->first;
}

}  // namespace leopard::sim
