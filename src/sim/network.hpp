// Simulated point-to-point authenticated network with per-node NIC and CPU
// queues. This is the substitution for the paper's EC2 datacenter deployment
// (see DESIGN.md §2): throughput emerges from which resource saturates first.
//
// Message pipeline (metered sender/receiver):
//   sender CPU (serialize)  → egress NIC (size / out_bps)
//   → propagation (+ adversarial pre-GST extra delay)
//   → ingress NIC (size / in_bps) → receiver CPU → Node::on_message
//
// All queues are FIFO single-server timelines ("busy-until" clocks). With
// shared-duplex NICs (the NetEm-throttled configuration of Fig. 10) egress
// and ingress serialize on a single link timeline, matching §V's accounting
// of send+receive against one capacity C.
//
// CPU lanes. A node defaults to ONE CPU timeline (a single-core machine —
// the paper's per-replica accounting). A multi-core machine hosting several
// protocol cores (sharding: one instance per hardware core, like the
// threaded SocketEnv instances) registers N lanes via set_cpu_lanes: each
// lane is an independent busy-until timeline with its own dispatch FIFO,
// while the NIC timelines stay shared — cores parallelize compute, not the
// wire. A per-node selector routes each arriving payload to its lane;
// handler charges (charge_cpu) and sender-side serialization costs go to
// the node's *active* lane, pinned automatically during message dispatch
// and explicitly (set_active_lane) by timer/injection entry points.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "sim/cost_model.hpp"
#include "sim/message.hpp"
#include "sim/simulator.hpp"
#include "sim/traffic.hpp"

namespace leopard::sim {

/// A protocol participant. Implementations register with the Network and
/// receive messages through on_message; timers are plain Simulator events.
class Node {
 public:
  virtual ~Node() = default;

  /// Called once when the simulation starts (after all nodes registered).
  virtual void start() {}

  /// Delivery of a message from `from`. The network guarantees authenticated,
  /// reliable, FIFO-per-link delivery (§III-A model).
  virtual void on_message(NodeId from, const PayloadPtr& msg) = 0;
};

struct NetworkConfig {
  double default_out_bps = 9.8e9;  // c5.xlarge TCP bandwidth (paper §VI)
  double default_in_bps = 9.8e9;
  bool shared_duplex = false;      // true under NetEm-style throttling
  SimTime propagation_delay = 250 * kMicrosecond;  // intra-datacenter RTT/2
  std::size_t frame_overhead_bytes = 66;           // Ethernet + IP + TCP
  CostModel costs;

  /// Global stabilization time: before `gst`, `pre_gst_extra_delay` (if set)
  /// adds adversarial delay to every link. After GST, delays are bounded by
  /// propagation + queueing, matching the partial-synchrony model.
  SimTime gst = 0;
  std::function<SimTime(NodeId from, NodeId to, SimTime now)> pre_gst_extra_delay;
};

class Network {
 public:
  Network(Simulator& sim, NetworkConfig cfg);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Registers a node; `metered = false` for aggregate client sources whose
  /// own NIC/CPU are not modelled (their traffic still meters the peer side).
  NodeId add_node(Node* node, bool metered = true);

  /// Overrides the NIC of one node (e.g., a throttled replica).
  void set_nic(NodeId id, double out_bps, double in_bps, bool shared_duplex);

  /// Routes an arriving payload to the CPU lane (core) that handles it.
  /// Return values clamp to the node's lane count.
  using LaneSelector = std::function<std::uint32_t(const Payload&)>;

  /// Models `id` as a multi-core machine: `lanes` independent CPU timelines
  /// behind the shared NIC, one per hosted protocol core. Call before the
  /// simulation starts; without it a node has one lane and behaves exactly
  /// like the original single-CPU model.
  void set_cpu_lanes(NodeId id, std::uint32_t lanes, LaneSelector selector);

  /// Pins subsequent CPU charges at `id` (charge_cpu, sender-side send
  /// costs) to `lane`. Message dispatch pins the receiving lane
  /// automatically; code entering a core from OUTSIDE dispatch — timers,
  /// local request injection — must pin its core's lane first.
  void set_active_lane(NodeId id, std::uint32_t lane);

  /// Calls start() on every registered node.
  void start_all();

  /// Sends `msg` from `from` to `to` through the full pipeline.
  void send(NodeId from, NodeId to, PayloadPtr msg);

  /// Sends to every id in `targets` except `from` (the paper's "multicast to
  /// all other replicas"): the sender pays one CPU+egress serialization per
  /// copy, which is exactly the leader-bottleneck effect under study.
  void multicast(NodeId from, std::span<const NodeId> targets, const PayloadPtr& msg);

  /// Extends `id`'s active CPU lane (crypto, execution, bookkeeping).
  void charge_cpu(NodeId id, SimTime cost);

  [[nodiscard]] Simulator& sim() { return sim_; }
  [[nodiscard]] TrafficAccountant& traffic() { return traffic_; }
  [[nodiscard]] const TrafficAccountant& traffic() const { return traffic_; }
  [[nodiscard]] const NetworkConfig& config() const { return cfg_; }
  [[nodiscard]] const CostModel& costs() const { return cfg_.costs; }
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }

  /// Test hook: return false to drop a message (models scripted partitions;
  /// honest-path code never uses this).
  using LinkFilter = std::function<bool(NodeId from, NodeId to, const Payload&)>;
  void set_link_filter(LinkFilter filter) { filter_ = std::move(filter); }

 private:
  struct PendingDelivery {
    NodeId from = 0;
    PayloadPtr msg;
    SimTime ready_at = 0;  // ingress serialization finished
    std::size_t size = 0;
  };

  static constexpr std::uint32_t kNilSlot = 0xFFFFFFFFu;

  /// One core's compute timeline plus its receiver-side dispatch queue:
  /// handlers on a lane run strictly one at a time, and costs charged by a
  /// handler (charge_cpu) delay everything behind it ON THAT LANE only.
  /// The FIFO is an intrusive list of slots in the network-wide inbox slab
  /// (EventQueue's slab/free-list pattern): per-node std::deques cycled a
  /// chunk allocation/free per ~64 messages each at steady state, which at
  /// n=600 is pure allocator churn — the slab grows to the high-water mark
  /// once and then recycles.
  struct CpuLane {
    SimTime cpu_busy_until = 0;
    std::uint32_t inbox_head = kNilSlot;
    std::uint32_t inbox_tail = kNilSlot;
    bool dispatch_busy = false;
  };

  struct NodeState {
    Node* node = nullptr;
    bool metered = true;
    double out_bps = 0;
    double in_bps = 0;
    bool shared_duplex = false;
    SimTime tx_busy_until = 0;
    SimTime rx_busy_until = 0;  // aliases tx under shared duplex
    std::vector<CpuLane> lanes = std::vector<CpuLane>(1);
    std::uint32_t active_lane = 0;
    LaneSelector lane_selector;
  };

  /// One slab slot: a pending delivery plus its FIFO link. Free slots chain
  /// through `next` from free_head_.
  struct InboxSlot {
    PendingDelivery d;
    std::uint32_t next = kNilSlot;
  };

  void inbox_push(CpuLane& lane, PendingDelivery&& d);
  PendingDelivery inbox_pop(CpuLane& lane);
  [[nodiscard]] static bool inbox_empty(const CpuLane& lane) {
    return lane.inbox_head == kNilSlot;
  }

  void arrive(NodeId from, NodeId to, const PayloadPtr& msg, std::size_t size);
  void maybe_dispatch(NodeId to, std::uint32_t lane_idx);
  void process_inbox_front(NodeId to, std::uint32_t lane_idx);
  [[nodiscard]] SimTime extra_delay(NodeId from, NodeId to) const;

  Simulator& sim_;
  NetworkConfig cfg_;
  std::vector<NodeState> states_;
  std::vector<Node*> nodes_;
  std::vector<InboxSlot> inbox_slab_;     // shared by every node's FIFO
  std::uint32_t inbox_free_ = kNilSlot;   // head of the free-slot chain
  TrafficAccountant traffic_;
  LinkFilter filter_;
};

}  // namespace leopard::sim
