#include "sim/traffic.hpp"

#include "util/check.hpp"

namespace leopard::sim {

const char* component_name(Component c) {
  switch (c) {
    case Component::kClientRequest: return "Reqs. from Clients";
    case Component::kDatablock: return "Datablock";
    case Component::kBftBlock: return "BFTblock";
    case Component::kVote: return "Vote";
    case Component::kProof: return "Proof";
    case Component::kReady: return "Ready";
    case Component::kQuery: return "Query";
    case Component::kChunkResponse: return "ChunkResponse";
    case Component::kCheckpoint: return "Checkpoint";
    case Component::kTimeout: return "Timeout";
    case Component::kViewChange: return "ViewChange";
    case Component::kNewView: return "NewView";
    case Component::kAck: return "Ack";
    case Component::kStateOffer: return "StateOffer";
    case Component::kStateChunk: return "StateChunk";
    case Component::kMisc: return "Miscellaneous";
    case Component::kCount: break;
  }
  return "?";
}

TrafficAccountant::TrafficAccountant(std::size_t node_count)
    : per_node_(node_count), baseline_(node_count) {}

void TrafficAccountant::record(NodeId node, Direction dir, Component comp,
                               std::size_t bytes) {
  util::expects(node < per_node_.size(), "traffic: node out of range");
  auto& cell = per_node_[node][dir_index(dir)][static_cast<std::size_t>(comp)];
  cell.bytes += bytes;
  cell.messages += 1;
}

void TrafficAccountant::mark_measurement_start(SimTime now) {
  baseline_ = per_node_;
  window_start_ = now;
}

std::uint64_t TrafficAccountant::bytes(NodeId node, Direction dir, Component comp) const {
  const auto d = dir_index(dir);
  const auto c = static_cast<std::size_t>(comp);
  return per_node_[node][d][c].bytes - baseline_[node][d][c].bytes;
}

std::uint64_t TrafficAccountant::messages(NodeId node, Direction dir,
                                          Component comp) const {
  const auto d = dir_index(dir);
  const auto c = static_cast<std::size_t>(comp);
  return per_node_[node][d][c].messages - baseline_[node][d][c].messages;
}

std::uint64_t TrafficAccountant::total_bytes(NodeId node, Direction dir) const {
  std::uint64_t sum = 0;
  for (std::size_t c = 0; c < static_cast<std::size_t>(Component::kCount); ++c) {
    sum += bytes(node, dir, static_cast<Component>(c));
  }
  return sum;
}

double TrafficAccountant::bandwidth_bps(NodeId node, Direction dir, SimTime now) const {
  const auto window = now - window_start_;
  if (window <= 0) return 0.0;
  return static_cast<double>(total_bytes(node, dir)) * 8.0 / to_seconds(window);
}

}  // namespace leopard::sim
