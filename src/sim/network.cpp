#include "sim/network.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace leopard::sim {

Network::Network(Simulator& sim, NetworkConfig cfg)
    : sim_(sim), cfg_(std::move(cfg)), traffic_(0) {}

NodeId Network::add_node(Node* node, bool metered) {
  util::expects(node != nullptr, "add_node: null node");
  const auto id = static_cast<NodeId>(states_.size());
  NodeState st;
  st.node = node;
  st.metered = metered;
  st.out_bps = cfg_.default_out_bps;
  st.in_bps = cfg_.default_in_bps;
  st.shared_duplex = cfg_.shared_duplex;
  states_.push_back(st);
  nodes_.push_back(node);
  traffic_ = TrafficAccountant(states_.size());
  return id;
}

void Network::set_nic(NodeId id, double out_bps, double in_bps, bool shared_duplex) {
  util::expects(id < states_.size(), "set_nic: bad node id");
  util::expects(out_bps > 0 && in_bps > 0, "set_nic: capacities must be positive");
  states_[id].out_bps = out_bps;
  states_[id].in_bps = in_bps;
  states_[id].shared_duplex = shared_duplex;
}

void Network::set_cpu_lanes(NodeId id, std::uint32_t lanes, LaneSelector selector) {
  util::expects(id < states_.size(), "set_cpu_lanes: bad node id");
  util::expects(lanes >= 1, "set_cpu_lanes: need at least one lane");
  auto& st = states_[id];
  for (const auto& lane : st.lanes) {
    util::expects(inbox_empty(lane) && !lane.dispatch_busy,
                  "set_cpu_lanes: reshaping a node with traffic in flight");
  }
  st.lanes.assign(lanes, CpuLane{});
  st.active_lane = 0;
  st.lane_selector = std::move(selector);
}

void Network::set_active_lane(NodeId id, std::uint32_t lane) {
  util::expects(id < states_.size(), "set_active_lane: bad node id");
  auto& st = states_[id];
  st.active_lane = std::min<std::uint32_t>(lane, static_cast<std::uint32_t>(st.lanes.size()) - 1);
}

void Network::start_all() {
  for (auto* n : nodes_) n->start();
}

SimTime Network::extra_delay(NodeId from, NodeId to) const {
  if (sim_.now() >= cfg_.gst || !cfg_.pre_gst_extra_delay) return 0;
  return std::max<SimTime>(0, cfg_.pre_gst_extra_delay(from, to, sim_.now()));
}

void Network::send(NodeId from, NodeId to, PayloadPtr msg) {
  util::expects(from < states_.size() && to < states_.size(), "send: bad node id");
  util::expects(msg != nullptr, "send: null payload");
  util::expects(from != to, "send: self-delivery not modelled");

  if (filter_ && !filter_(from, to, *msg)) return;  // scripted drop (tests)

  const std::size_t size = msg->wire_size() + cfg_.frame_overhead_bytes;
  auto& s = states_[from];
  SimTime depart = sim_.now();

  if (s.metered) {
    traffic_.record(from, Direction::kSend, msg->component(), size);
    // Sender CPU: serialize/syscall, on the sending core's lane.
    const SimTime cpu_cost =
        cfg_.costs.send_per_msg + cfg_.costs.per_bytes(cfg_.costs.send_per_byte_ns, size);
    auto& lane = s.lanes[s.active_lane];
    lane.cpu_busy_until = std::max(lane.cpu_busy_until, sim_.now()) + cpu_cost;
    // Egress NIC serialization (shared duplex uses the tx timeline for both
    // directions).
    auto& link_busy = s.tx_busy_until;
    const SimTime tx_start = std::max(lane.cpu_busy_until, link_busy);
    link_busy = tx_start + transmission_delay(size, s.out_bps);
    if (s.shared_duplex) s.rx_busy_until = link_busy;
    depart = link_busy;
  }

  const SimTime arrival = depart + cfg_.propagation_delay + extra_delay(from, to);
  auto deliver = [this, from, to, msg = std::move(msg), size] { arrive(from, to, msg, size); };
  // The hop must stay allocation-free: the delivery closure has to fit the
  // event queue's inline callback storage.
  static_assert(sizeof(deliver) <= EventCallback::kInlineCapacity);
  sim_.schedule_at(arrival, std::move(deliver));
}

void Network::arrive(NodeId from, NodeId to, const PayloadPtr& msg, std::size_t size) {
  auto& r = states_[to];
  if (!r.metered) {
    // Aggregate client endpoints: no NIC/CPU model, deliver directly.
    sim_.schedule_at(sim_.now(), [this, from, to, msg] { nodes_[to]->on_message(from, msg); });
    return;
  }

  traffic_.record(to, Direction::kReceive, msg->component(), size);

  // Ingress NIC serialization.
  auto& link_busy = r.shared_duplex ? r.tx_busy_until : r.rx_busy_until;
  const SimTime rx_start = std::max(sim_.now(), link_busy);
  link_busy = rx_start + transmission_delay(size, r.in_bps);
  if (r.shared_duplex) r.rx_busy_until = link_busy;
  const SimTime rx_done = link_busy;

  // Demux to the receiving core's lane (single-lane nodes skip the selector).
  const auto lane_idx =
      r.lane_selector ? std::min<std::uint32_t>(
                            r.lane_selector(*msg),
                            static_cast<std::uint32_t>(r.lanes.size()) - 1)
                      : 0;
  inbox_push(r.lanes[lane_idx], PendingDelivery{from, msg, rx_done, size});
  maybe_dispatch(to, lane_idx);
}

void Network::inbox_push(CpuLane& st, PendingDelivery&& d) {
  std::uint32_t idx;
  if (inbox_free_ != kNilSlot) {
    idx = inbox_free_;
    inbox_free_ = inbox_slab_[idx].next;
  } else {
    idx = static_cast<std::uint32_t>(inbox_slab_.size());
    inbox_slab_.emplace_back();  // grows to the high-water mark, then recycles
  }
  auto& slot = inbox_slab_[idx];
  slot.d = std::move(d);
  slot.next = kNilSlot;
  if (st.inbox_tail == kNilSlot) {
    st.inbox_head = idx;
  } else {
    inbox_slab_[st.inbox_tail].next = idx;
  }
  st.inbox_tail = idx;
}

Network::PendingDelivery Network::inbox_pop(CpuLane& st) {
  util::expects(st.inbox_head != kNilSlot, "dispatch with empty inbox");
  const std::uint32_t idx = st.inbox_head;
  auto& slot = inbox_slab_[idx];
  st.inbox_head = slot.next;
  if (st.inbox_head == kNilSlot) st.inbox_tail = kNilSlot;
  PendingDelivery d = std::move(slot.d);
  slot.d.msg.reset();  // drop the payload ref while the slot idles in the free list
  slot.next = inbox_free_;
  inbox_free_ = idx;
  return d;
}

void Network::maybe_dispatch(NodeId to, std::uint32_t lane_idx) {
  auto& lane = states_[to].lanes[lane_idx];
  if (lane.dispatch_busy || inbox_empty(lane)) return;
  lane.dispatch_busy = true;
  const SimTime at =
      std::max({sim_.now(), inbox_slab_[lane.inbox_head].d.ready_at, lane.cpu_busy_until});
  sim_.schedule_at(at, [this, to, lane_idx] { process_inbox_front(to, lane_idx); });
}

void Network::process_inbox_front(NodeId to, std::uint32_t lane_idx) {
  auto& lane = states_[to].lanes[lane_idx];
  PendingDelivery d = inbox_pop(lane);

  // Receiver CPU: deserialize + dispatch. Additional handler costs (crypto,
  // bookkeeping) are charged by the handler via charge_cpu and delay the
  // dispatch of everything still queued behind it on this lane.
  const SimTime cpu_cost =
      cfg_.costs.recv_per_msg + cfg_.costs.per_bytes(cfg_.costs.recv_per_byte_ns, d.size);
  const SimTime start = std::max(sim_.now(), lane.cpu_busy_until);
  lane.cpu_busy_until = start + cpu_cost;

  auto dispatch = [this, to, lane_idx, from = d.from, msg = std::move(d.msg)] {
    // Pin the lane so handler charges and sends bill the dispatching core.
    states_[to].active_lane = lane_idx;
    nodes_[to]->on_message(from, msg);
    states_[to].lanes[lane_idx].dispatch_busy = false;
    maybe_dispatch(to, lane_idx);
  };
  static_assert(sizeof(dispatch) <= EventCallback::kInlineCapacity);
  sim_.schedule_at(lane.cpu_busy_until, std::move(dispatch));
}

void Network::multicast(NodeId from, std::span<const NodeId> targets, const PayloadPtr& msg) {
  for (const auto to : targets) {
    if (to == from) continue;
    send(from, to, msg);
  }
}

void Network::charge_cpu(NodeId id, SimTime cost) {
  util::expects(id < states_.size(), "charge_cpu: bad node id");
  auto& s = states_[id];
  if (!s.metered || cost <= 0) return;
  auto& lane = s.lanes[s.active_lane];
  lane.cpu_busy_until = std::max(lane.cpu_busy_until, sim_.now()) + cost;
}

}  // namespace leopard::sim
