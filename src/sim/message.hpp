// Payload abstraction the network carries. Protocol modules derive their wire
// messages from Payload; the network only needs sizes and a component tag for
// bandwidth accounting (Table III's breakdown).
#pragma once

#include <cstdint>
#include <memory>

namespace leopard::sim {

/// Identity of a participant (replica or client group) on the transport.
using NodeId = std::uint32_t;

/// Traffic component a message belongs to, mirroring the rows of the paper's
/// Table III bandwidth-utilization breakdown.
enum class Component : std::uint8_t {
  kClientRequest,  // client → replica submissions
  kDatablock,      // Leopard datablock dissemination / HotStuff+PBFT blocks
  kBftBlock,       // Leopard BFTblock proposals
  kVote,           // threshold signature shares (all voting rounds)
  kProof,          // combined notarization/confirmation proofs / QCs
  kReady,          // Leopard ready round
  kQuery,          // retrieval queries
  kChunkResponse,  // retrieval erasure-coded chunk responses
  kCheckpoint,     // checkpoint votes and proofs
  kTimeout,        // view-change trigger timeouts
  kViewChange,     // view-change messages
  kNewView,        // new-view messages
  kAck,            // replica → client acknowledgements
  kStateOffer,     // state-transfer probes/offers/pulls (node-level recovery)
  kStateChunk,     // state-transfer erasure-coded log chunks
  kMisc,
  kCount,
};

/// Human-readable component name for reports.
const char* component_name(Component c);

/// Base of every simulated wire message.
class Payload {
 public:
  virtual ~Payload() = default;

  /// Exact serialized size in bytes (excluding transport framing; the network
  /// adds per-message framing overhead itself).
  [[nodiscard]] virtual std::size_t wire_size() const = 0;

  /// Which accounting bucket this message belongs to.
  [[nodiscard]] virtual Component component() const = 0;
};

using PayloadPtr = std::shared_ptr<const Payload>;

}  // namespace leopard::sim
