// Deterministic discrete-event queue. Ties in time break by insertion
// sequence so identical runs replay identically.
//
// The queue is the single hottest structure in a large-n run (every network
// hop is two or three scheduled events), so it is built to make the
// per-event path allocation-free and cache-lean:
//
//   - callbacks live in EventCallback, a move-only function wrapper with
//     48 bytes of inline storage — every network/timer lambda fits, so no
//     per-event heap allocation (the seed design paid two shared_ptr
//     control blocks plus a heap-allocated std::function cell per event);
//   - events live in a slab (std::vector of slots) recycled through a free
//     list; EventHandle carries the event's unique sequence number, so
//     cancelling a stale handle after the slot was recycled is a detected
//     no-op rather than a use-after-free;
//   - ordering comes from a 4-ary implicit min-heap of packed 16-byte
//     entries laid out so each sibling group is one 64-byte cache line
//     (the root sits alone at physical index 0; children of logical i are
//     logical 4i+1..4i+4 = physical 4i+4..4i+7), halving the lines touched
//     per sift level versus a naive d-ary layout;
//   - cancellation reclaims the slot (and destroys the callback)
//     immediately; the matching heap entry is dropped lazily when it
//     surfaces, and a deterministic compaction sweep rebuilds the heap once
//     dead entries outnumber live ones, so long-idle cancelled timers
//     (client resubmission, view-change escalation, retrieval) cannot
//     accumulate — the seed design kept every cancelled entry until it
//     reached the top, inflating the heap without bound under
//     timeout-per-request workloads.
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>
#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/time.hpp"

namespace leopard::sim {

/// Minimal over-aligning allocator: places the vector's storage on an
/// `Align`-byte boundary so the heap's 4-entry sibling groups coincide with
/// cache lines.
template <typename T, std::size_t Align>
struct AlignedAlloc {
  using value_type = T;

  AlignedAlloc() = default;
  template <typename U>
  AlignedAlloc(const AlignedAlloc<U, Align>&) noexcept {}  // NOLINT: converting

  T* allocate(std::size_t n) {
    return static_cast<T*>(::operator new(n * sizeof(T), std::align_val_t{Align}));
  }
  void deallocate(T* p, std::size_t n) noexcept {
    ::operator delete(p, n * sizeof(T), std::align_val_t{Align});
  }

  template <typename U>
  struct rebind {
    using other = AlignedAlloc<U, Align>;
  };
  friend bool operator==(const AlignedAlloc&, const AlignedAlloc&) noexcept { return true; }
};

/// Move-only `void()` callable with small-buffer storage. Callables up to
/// kInlineCapacity bytes (and nothrow-movable) are stored in place; larger
/// ones fall back to the heap. The capacity is sized for the network hop
/// lambdas: this + two node ids + a PayloadPtr + a size.
class EventCallback {
 public:
  static constexpr std::size_t kInlineCapacity = 48;

  EventCallback() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, EventCallback> &&
                std::is_invocable_r_v<void, std::remove_cvref_t<F>&>>>
  EventCallback(F&& f) {  // NOLINT: implicit by design, mirrors std::function
    emplace(std::forward<F>(f));
  }

  EventCallback(EventCallback&& other) noexcept { move_from(other); }
  EventCallback& operator=(EventCallback&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  EventCallback(const EventCallback&) = delete;
  EventCallback& operator=(const EventCallback&) = delete;
  ~EventCallback() { reset(); }

  /// Replaces the held callable, constructing the new one in place (no
  /// intermediate move through a temporary wrapper).
  template <typename F>
  void emplace(F&& f) {
    reset();
    using Fn = std::remove_cvref_t<F>;
    if constexpr (fits_inline<Fn>) {
      ::new (static_cast<void*>(storage_.inline_buf)) Fn(std::forward<F>(f));
    } else {
      storage_.heap = new Fn(std::forward<F>(f));
    }
    ops_ = &ops_for<Fn>;
  }

  [[nodiscard]] explicit operator bool() const noexcept { return ops_ != nullptr; }

  void operator()() { ops_->invoke(storage_); }

  /// Destroys the held callable (no-op when empty).
  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

 private:
  union Storage {
    alignas(alignof(std::max_align_t)) unsigned char inline_buf[kInlineCapacity];
    void* heap;
  };
  struct Ops {
    void (*invoke)(Storage&);
    void (*relocate)(Storage& dst, Storage& src) noexcept;
    void (*destroy)(Storage&) noexcept;
  };

  template <typename Fn>
  static constexpr bool fits_inline = sizeof(Fn) <= kInlineCapacity &&
                                      alignof(Fn) <= alignof(std::max_align_t) &&
                                      std::is_nothrow_move_constructible_v<Fn>;

  template <typename Fn>
  static const Ops ops_for;

  void move_from(EventCallback& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(storage_, other.storage_);
      other.ops_ = nullptr;
    }
  }

  Storage storage_;
  const Ops* ops_ = nullptr;
};

template <typename Fn>
const EventCallback::Ops EventCallback::ops_for = {
    /*invoke=*/[](Storage& s) {
      if constexpr (fits_inline<Fn>) {
        (*std::launder(reinterpret_cast<Fn*>(s.inline_buf)))();
      } else {
        (*static_cast<Fn*>(s.heap))();
      }
    },
    /*relocate=*/[](Storage& dst, Storage& src) noexcept {
      if constexpr (fits_inline<Fn>) {
        Fn* from = std::launder(reinterpret_cast<Fn*>(src.inline_buf));
        ::new (static_cast<void*>(dst.inline_buf)) Fn(std::move(*from));
        from->~Fn();
      } else {
        dst.heap = src.heap;
      }
    },
    /*destroy=*/[](Storage& s) noexcept {
      if constexpr (fits_inline<Fn>) {
        std::launder(reinterpret_cast<Fn*>(s.inline_buf))->~Fn();
      } else {
        delete static_cast<Fn*>(s.heap);
      }
    },
};

class EventQueue;

/// Handle for cancelling a scheduled event; cheap to copy. Cancelling after
/// the event fired (or was already cancelled) is a detected no-op, even if
/// the underlying slot has been recycled for a newer event — the unique
/// per-event sequence tag disambiguates. Handles must not outlive their
/// queue.
class EventHandle {
 public:
  EventHandle() = default;

  void cancel();
  [[nodiscard]] bool valid() const { return queue_ != nullptr; }

 private:
  friend class EventQueue;
  EventHandle(EventQueue* queue, std::uint64_t seq, std::uint32_t slot)
      : queue_(queue), seq_(seq), slot_(slot) {}

  EventQueue* queue_ = nullptr;
  std::uint64_t seq_ = 0;
  std::uint32_t slot_ = 0;
};

class EventQueue {
 public:
  EventQueue() = default;
  // Handles and heap entries point into this queue; it must stay put.
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Schedules `fn` at absolute time `at`. Accepts any void() callable; no
  /// allocation when it fits EventCallback's inline storage and a slab slot
  /// is free. The callable is constructed directly into the slab.
  template <typename F>
  EventHandle schedule(SimTime at, F&& fn) {
    const std::uint32_t idx = acquire_slot();
    slots_[idx].fn.emplace(std::forward<F>(fn));
    return commit_slot(at, idx);
  }

  /// Time of the earliest live event, or nullopt if none remain.
  [[nodiscard]] std::optional<SimTime> next_time() const;

  /// A popped event ready to execute: fire time plus the callback.
  using Popped = std::pair<SimTime, EventCallback>;

  /// Pops the earliest live event if its time is <= `limit` WITHOUT running
  /// it, so the caller can advance its clock before executing the callback.
  std::optional<Popped> pop_next(SimTime limit);

  /// Pops and immediately runs the earliest live event due by `limit`.
  std::optional<SimTime> run_next(SimTime limit);

  /// True when no live events remain.
  [[nodiscard]] bool empty() const { return live_count_ == 0; }

  /// Number of live (scheduled, uncancelled, unfired) events.
  [[nodiscard]] std::size_t size() const { return live_count_; }

 private:
  friend class EventHandle;

  static constexpr std::uint32_t kNilSlot = 0xFFFFFFFFu;
  // Heap-entry key layout: seq in the high 40 bits, slot index in the low 24.
  // seq is unique per event, so comparing keys compares insertion order; the
  // bounds (~1.1e12 events, ~16.7M concurrent) are enforced in the .cpp.
  static constexpr int kSlotBits = 24;
  static constexpr std::uint64_t kSlotMask = (1u << kSlotBits) - 1;

  struct Slot {
    EventCallback fn;
    std::uint64_t seq = 0;  // seq of the current incarnation (0 = never used)
    std::uint32_t next_free = kNilSlot;
    bool live = false;
  };

  /// 16-byte packed heap entry; sibling groups of four share a cache line.
  struct HeapEntry {
    SimTime at = 0;
    std::uint64_t key = 0;  // seq << kSlotBits | slot
  };

  [[nodiscard]] static bool earlier(const HeapEntry& a, const HeapEntry& b) {
    if (a.at != b.at) return a.at < b.at;
    return a.key < b.key;  // high bits are seq: insertion order
  }

  /// Logical heap index -> physical vector index: the root sits alone at 0,
  /// every later logical index shifts by 3 so each 4-child group starts at a
  /// multiple of 4 (64-byte aligned for 16-byte entries).
  [[nodiscard]] static std::size_t phys(std::size_t logical) {
    return logical == 0 ? 0 : logical + 3;
  }

  [[nodiscard]] HeapEntry& at_logical(std::size_t logical) const {
    return heap_[phys(logical)];
  }

  EventHandle commit_slot(SimTime at, std::uint32_t idx);
  void cancel_slot(std::uint32_t slot, std::uint64_t seq);
  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t idx);

  [[nodiscard]] bool entry_live(const HeapEntry& e) const {
    const Slot& s = slots_[e.key & kSlotMask];
    return s.live && s.seq == (e.key >> kSlotBits);
  }

  // Heap primitives over logical indices. Mutable (with dead_count_) so the
  // logically-const readers next_time()/empty() can drop stale entries that
  // surface at the root — pruning never changes the observable event set.
  void sift_up(std::size_t logical) const;
  void sift_down(std::size_t logical) const;
  void pop_root() const;
  void prune_dead_top() const;
  void maybe_compact();

  std::vector<Slot> slots_;
  std::uint32_t free_head_ = kNilSlot;
  // Physical storage: index 0 is the root, 1..3 are never-read padding, and
  // logical entry l >= 1 lives at l + 3. Sized to the high-water mark;
  // heap_count_ tracks the logical size.
  mutable std::vector<HeapEntry, AlignedAlloc<HeapEntry, 64>> heap_;
  mutable std::size_t heap_count_ = 0;
  mutable std::size_t dead_count_ = 0;  // cancelled entries still in the heap
  std::size_t live_count_ = 0;
  std::uint64_t next_seq_ = 1;  // 0 is reserved for "never used"
};

inline void EventHandle::cancel() {
  if (queue_ != nullptr) queue_->cancel_slot(slot_, seq_);
}

}  // namespace leopard::sim
