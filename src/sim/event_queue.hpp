// Deterministic discrete-event queue. Ties in time break by insertion
// sequence so identical runs replay identically. Cancellation is lazy:
// cancelled entries are skipped when they surface at the top of the heap.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <queue>
#include <vector>

#include "sim/time.hpp"

namespace leopard::sim {

/// Handle for cancelling a scheduled event; cheap to copy, may outlive the
/// event (cancelling after the event fired is a no-op).
class EventHandle {
 public:
  EventHandle() = default;

  void cancel() {
    if (cancelled_) *cancelled_ = true;
  }
  [[nodiscard]] bool valid() const { return cancelled_ != nullptr; }

 private:
  friend class EventQueue;
  explicit EventHandle(std::shared_ptr<bool> flag) : cancelled_(std::move(flag)) {}
  std::shared_ptr<bool> cancelled_;
};

class EventQueue {
 public:
  /// Schedules `fn` at absolute time `at`.
  EventHandle schedule(SimTime at, std::function<void()> fn);

  /// Time of the earliest live event, or nullopt if none remain.
  [[nodiscard]] std::optional<SimTime> next_time();

  /// A popped event ready to execute: fire time plus the callback.
  using Popped = std::pair<SimTime, std::shared_ptr<std::function<void()>>>;

  /// Pops the earliest live event if its time is <= `limit` WITHOUT running
  /// it, so the caller can advance its clock before executing the callback.
  std::optional<Popped> pop_next(SimTime limit);

  /// Pops and immediately runs the earliest live event due by `limit`.
  std::optional<SimTime> run_next(SimTime limit);

  /// True when no live events remain (prunes cancelled entries).
  [[nodiscard]] bool empty() { return !next_time().has_value(); }

 private:
  struct Entry {
    SimTime at = 0;
    std::uint64_t seq = 0;
    // shared_ptr keeps Entry cheaply copyable inside the priority_queue
    // (std::priority_queue only exposes a const top()).
    std::shared_ptr<std::function<void()>> fn;
    std::shared_ptr<bool> cancelled;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  void drop_cancelled();

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace leopard::sim
