// Sans-I/O protocol core API: the §IV state machines (and the baselines) as
// pure event-driven cores, decoupled from any transport or clock.
//
// A `Protocol` consumes typed events — `MessageIn{from, payload}`,
// `TimerFired{token}`, `ClientRequest{from, request}`, `Start` — and emits a
// batch of typed actions (`Send`, `Broadcast`, `SetTimer`/`CancelTimer`,
// `Execute`, `MetricsUpdate`, `ChargeCpu`) through an `Env` sink. The core
// never calls `sim::Network::send` or `Simulator::schedule` itself, so the
// same state machine can run
//
//   - inside the discrete-event simulator (`SimEnv`, sim_env.hpp) — the
//     default for every bench and figure reproduction;
//   - against a recorded event stream (`ReplayEnv`, replay.hpp) for
//     deterministic debugging and byzantine/fuzz injection at the API
//     boundary;
//   - in a future socket-based deployment, by translating actions to real
//     I/O (see docs/ARCHITECTURE.md).
//
// Contract: actions are applied synchronously, in emission order, by the Env.
// The core may read the clock (`Env::now`) and the CPU cost model
// (`Env::costs`) — both are pure data — but performs no I/O of its own.
#pragma once

#include <cstdint>
#include <memory>
#include <variant>
#include <vector>

#include "proto/messages.hpp"
#include "sim/cost_model.hpp"
#include "sim/message.hpp"
#include "sim/time.hpp"

namespace leopard::protocol {

/// Transport-level peer identity (node ids are assigned by whichever Env
/// hosts the core; replicas use ids 0..n-1).
using NodeId = sim::NodeId;

/// Opaque timer identity, allocated by the protocol core. The Env echoes the
/// token back through `TimerFired`; it never interprets it.
using TimerToken = std::uint64_t;

// ---------------------------------------------------------------------------
// Events (inputs)
// ---------------------------------------------------------------------------

/// Delivered once when the deployment starts (after all peers are wired up).
struct Start {};

/// An authenticated peer message (reliable, FIFO per link — §III-A model).
struct MessageIn {
  NodeId from = 0;
  sim::PayloadPtr payload;
};

/// A timer previously requested via `SetTimer` fired.
struct TimerFired {
  TimerToken token = 0;
};

/// A client submission batch (split out of MessageIn so harnesses and replay
/// drivers can inject workload without faking a transport message).
struct ClientRequest {
  NodeId from = 0;
  std::shared_ptr<const proto::ClientRequestMsg> request;
};

using Event = std::variant<Start, MessageIn, TimerFired, ClientRequest>;

// ---------------------------------------------------------------------------
// Actions (outputs)
// ---------------------------------------------------------------------------

/// Run-wide metric the core wants updated. Value semantics per metric are
/// applied by the Env (see apply_metrics_update): counters accumulate,
/// `kVcTriggeredAt` sets-if-unset, `kVcCompletedAt` takes the max, and
/// `kSafetyViolation` latches true.
enum class Metric : std::uint8_t {
  kExecutedRequests,
  kBreakdownCount,
  kSumGenerationSec,
  kSumDisseminationSec,
  kSumAgreementSec,
  kQueriesSent,
  kChunksSent,
  kDatablocksRecovered,
  kRecoveryTimeSumSec,
  kViewChangesCompleted,
  kVcTriggeredAt,   // value: absolute time (SimTime as double)
  kVcCompletedAt,   // value: absolute time (SimTime as double)
  kSafetyViolation, // value ignored
  kAckLatencySample, // value: one submit→ack latency observation in seconds
};

/// Point-to-point send to `to`.
struct Send {
  NodeId to = 0;
  sim::PayloadPtr payload;
};

/// Send to every replica except self (the paper's "multicast to all other
/// replicas"; the sender pays one serialization per copy under SimEnv).
struct Broadcast {
  sim::PayloadPtr payload;
};

/// Request a `TimerFired{token}` event `delay` from now. Re-arming an
/// already-pending token replaces it.
struct SetTimer {
  TimerToken token = 0;
  sim::SimTime delay = 0;
};

/// Cancel a pending timer; unknown/fired tokens are a no-op.
struct CancelTimer {
  TimerToken token = 0;
};

/// A block of `requests` requests committed in total order and applied to the
/// replicated state machine. `block` is the carrying message (a DatablockMsg
/// for Leopard, a BaselineBlockMsg for the baselines); the Env forwards it to
/// the application-level observer, if any.
///
/// (seq, ordinal) is the block's coordinate in the total order: the consensus
/// sequence number (BFTblock sn / baseline height) and the block's position
/// within that sequence entry (a Leopard BFTblock links several datablocks,
/// executed in link order). Strictly increasing across the Execute stream —
/// the durable-commit identity the persistence layer keys on, letting a
/// recovered replica tell a replayed block from a new one.
struct Execute {
  sim::PayloadPtr block;
  std::uint64_t requests = 0;
  std::uint64_t seq = 0;
  std::uint32_t ordinal = 0;
};

/// Update one run-wide metric (see Metric for the per-id semantics).
struct MetricsUpdate {
  Metric metric = Metric::kExecutedRequests;
  double value = 0;
};

/// Extend this replica's CPU busy timeline (crypto, execution, bookkeeping).
/// Part of the action vocabulary because the metered-CPU semantics of a run
/// are protocol-visible: costs charged before a Send delay that send.
struct ChargeCpu {
  sim::SimTime cost = 0;
};

using Action =
    std::variant<Send, Broadcast, SetTimer, CancelTimer, Execute, MetricsUpdate, ChargeCpu>;
using ActionBatch = std::vector<Action>;

// ---------------------------------------------------------------------------
// Env: the action sink + ambient pure data (clock, cost model)
// ---------------------------------------------------------------------------

class Env {
 public:
  virtual ~Env() = default;

  /// Current time. Pure data: the core may branch on it but never blocks.
  [[nodiscard]] virtual sim::SimTime now() const = 0;

  /// CPU cost model used for ChargeCpu amounts.
  [[nodiscard]] virtual const sim::CostModel& costs() const = 0;

  /// Applies one action synchronously. Emission order is execution order.
  virtual void apply(Action action) = 0;

  // -- convenience emitters (sugar over apply) ------------------------------
  void send(NodeId to, sim::PayloadPtr payload) { apply(Send{to, std::move(payload)}); }
  void broadcast(sim::PayloadPtr payload) { apply(Broadcast{std::move(payload)}); }
  void set_timer(TimerToken token, sim::SimTime delay) { apply(SetTimer{token, delay}); }
  void cancel_timer(TimerToken token) { apply(CancelTimer{token}); }
  void execute(sim::PayloadPtr block, std::uint64_t requests, std::uint64_t seq = 0,
               std::uint32_t ordinal = 0) {
    apply(Execute{std::move(block), requests, seq, ordinal});
  }
  void metric(Metric m, double value) { apply(MetricsUpdate{m, value}); }
  void charge(sim::SimTime cost) { apply(ChargeCpu{cost}); }
};

// ---------------------------------------------------------------------------
// Protocol: the sans-I/O state machine
// ---------------------------------------------------------------------------

class Protocol {
 public:
  virtual ~Protocol() = default;

  /// Replica identity within the cluster (equals the Env-level node id).
  [[nodiscard]] virtual proto::ReplicaId id() const = 0;

  virtual void on_start(Env& env) = 0;
  virtual void on_message(Env& env, NodeId from, const sim::PayloadPtr& payload) = 0;
  virtual void on_timer(Env& env, TimerToken token) = 0;
  virtual void on_client_request(Env& env, NodeId from,
                                 const std::shared_ptr<const proto::ClientRequestMsg>& msg) = 0;

  /// Dispatches a type-erased event to the handlers above (replay drivers).
  /// A MessageIn whose payload is a ClientRequestMsg is routed to
  /// on_client_request, so hand-crafted injection traces need not know the
  /// event taxonomy.
  void deliver(Env& env, const Event& event);
};

/// Convenience base for concrete cores: stashes the delivering Env and
/// exposes the clock/cost/action helpers every state machine needs, so
/// implementations override the protected do_* hooks without re-plumbing
/// env state per protocol.
class ProtocolBase : public Protocol {
 public:
  void on_start(Env& env) final {
    env_ = &env;
    do_start();
  }
  void on_message(Env& env, NodeId from, const sim::PayloadPtr& payload) final {
    env_ = &env;
    do_message(from, payload);
  }
  void on_timer(Env& env, TimerToken token) final {
    env_ = &env;
    do_timer(token);
  }
  void on_client_request(Env& env, NodeId from,
                         const std::shared_ptr<const proto::ClientRequestMsg>& msg) final {
    env_ = &env;
    do_client_request(from, *msg);
  }

 protected:
  virtual void do_start() = 0;
  virtual void do_message(NodeId from, const sim::PayloadPtr& payload) = 0;
  virtual void do_timer(TimerToken token) = 0;
  virtual void do_client_request(NodeId from, const proto::ClientRequestMsg& msg) = 0;

  // Valid during event delivery (every do_* hook runs inside one).
  [[nodiscard]] Env& env() const { return *env_; }
  [[nodiscard]] sim::SimTime now() const { return env_->now(); }
  [[nodiscard]] const sim::CostModel& costs() const { return env_->costs(); }
  void charge(sim::SimTime cost) { env_->charge(cost); }

 private:
  Env* env_ = nullptr;
};

}  // namespace leopard::protocol
