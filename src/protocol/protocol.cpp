#include "protocol/protocol.hpp"

namespace leopard::protocol {

void Protocol::deliver(Env& env, const Event& event) {
  std::visit(
      [&](const auto& ev) {
        using T = std::decay_t<decltype(ev)>;
        if constexpr (std::is_same_v<T, Start>) {
          on_start(env);
        } else if constexpr (std::is_same_v<T, MessageIn>) {
          if (auto cr = std::dynamic_pointer_cast<const proto::ClientRequestMsg>(ev.payload)) {
            on_client_request(env, ev.from, cr);
          } else {
            on_message(env, ev.from, ev.payload);
          }
        } else if constexpr (std::is_same_v<T, TimerFired>) {
          on_timer(env, ev.token);
        } else {
          on_client_request(env, ev.from, ev.request);
        }
      },
      event);
}

}  // namespace leopard::protocol
