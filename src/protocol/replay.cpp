#include "protocol/replay.hpp"

#include <bit>

namespace leopard::protocol {

namespace {

void fold_share(util::ByteWriter& w, const crypto::SignatureShare& s) {
  w.u32(s.signer);
  w.raw(s.bytes);
}

void fold_sig(util::ByteWriter& w, const crypto::ThresholdSignature& s) { w.raw(s.bytes); }

void fold_digests(util::ByteWriter& w, const std::vector<crypto::Digest>& ds) {
  w.u32(static_cast<std::uint32_t>(ds.size()));
  for (const auto& d : ds) w.raw(d.bytes());
}

}  // namespace

std::uint64_t payload_fingerprint(const sim::Payload& payload) {
  util::ByteWriter w;
  w.u8(static_cast<std::uint8_t>(payload.component()));
  w.u64(payload.wire_size());

  if (const auto* m = dynamic_cast<const proto::ClientRequestMsg*>(&payload)) {
    for (const auto& r : m->requests) {
      w.u64(r.client_id);
      w.u64(r.seq);
    }
  } else if (const auto* m = dynamic_cast<const proto::AckMsg*>(&payload)) {
    w.u64(m->client_id);
    for (const auto s : m->seqs) w.u64(s);
  } else if (const auto* m = dynamic_cast<const proto::DatablockMsg*>(&payload)) {
    w.raw(m->cached_digest.bytes());
  } else if (const auto* m = dynamic_cast<const proto::ReadyMsg*>(&payload)) {
    fold_digests(w, m->datablock_hashes);
  } else if (const auto* m = dynamic_cast<const proto::BftBlockMsg*>(&payload)) {
    w.raw(m->cached_digest.bytes());
    fold_share(w, m->leader_share);
  } else if (const auto* m = dynamic_cast<const proto::VoteMsg*>(&payload)) {
    w.u8(m->round);
    w.raw(m->block_digest.bytes());
    fold_share(w, m->share);
  } else if (const auto* m = dynamic_cast<const proto::ProofMsg*>(&payload)) {
    w.u8(m->round);
    w.raw(m->block_digest.bytes());
    fold_sig(w, m->signature);
  } else if (const auto* m = dynamic_cast<const proto::QueryMsg*>(&payload)) {
    fold_digests(w, m->missing);
  } else if (const auto* m = dynamic_cast<const proto::ChunkResponseMsg*>(&payload)) {
    w.raw(m->datablock_hash.bytes());
    w.raw(m->merkle_root.bytes());
    w.u32(m->chunk_index);
    w.u32(m->leaf_count);
    w.blob(m->chunk);
  } else if (const auto* m = dynamic_cast<const proto::CheckpointMsg*>(&payload)) {
    w.u64(m->sn);
    w.raw(m->state.bytes());
    if (m->share) fold_share(w, *m->share);
    if (m->signature) fold_sig(w, *m->signature);
  } else if (const auto* m = dynamic_cast<const proto::TimeoutMsg*>(&payload)) {
    w.u32(m->view);
    fold_share(w, m->share);
  } else if (const auto* m = dynamic_cast<const proto::ViewChangeMsg*>(&payload)) {
    w.u32(m->new_view);
    w.u64(m->checkpoint_sn);
    w.raw(m->checkpoint_state.bytes());
    w.u32(m->sender);
    w.u32(static_cast<std::uint32_t>(m->notarized.size()));
    for (const auto& nb : m->notarized) {
      w.raw(nb.block.digest().bytes());
      fold_sig(w, nb.notarization);
    }
    fold_share(w, m->sender_sig);
  } else if (const auto* m = dynamic_cast<const proto::NewViewMsg*>(&payload)) {
    w.u32(m->new_view);
    w.u32(static_cast<std::uint32_t>(m->view_changes.size()));
    for (const auto& vc : m->view_changes) {
      w.u32(vc.sender);
      w.u64(vc.checkpoint_sn);
    }
    fold_share(w, m->leader_sig);
  } else if (const auto* m = dynamic_cast<const proto::BaselineBlockMsg*>(&payload)) {
    w.u64(m->height);
    w.raw(m->cached_digest.bytes());
  } else if (const auto* m = dynamic_cast<const proto::BaselineVoteMsg*>(&payload)) {
    w.u8(m->phase);
    w.u64(m->height);
    w.raw(m->block_digest.bytes());
    fold_share(w, m->share);
  } else if (const auto* m = dynamic_cast<const proto::StateOfferMsg*>(&payload)) {
    w.u8(m->kind);
    w.u64(m->transfer_id);
    w.u64(m->from_index);
    w.u64(m->until_index);
    w.raw(m->exec_digest.bytes());
  } else if (const auto* m = dynamic_cast<const proto::StateChunkMsg*>(&payload)) {
    w.u64(m->transfer_id);
    w.u64(m->from_index);
    w.u64(m->until_index);
    w.raw(m->exec_digest.bytes());
    w.u32(m->chunk_index);
    w.u32(m->data_shards);
    w.u32(m->total_shards);
    w.blob(m->chunk);
  }
  return crypto::Digest::of(w.bytes()).prefix64();
}

namespace {

void serialize_event(util::ByteWriter& w, const Event& event) {
  std::visit(
      [&](const auto& ev) {
        using T = std::decay_t<decltype(ev)>;
        if constexpr (std::is_same_v<T, Start>) {
          w.u8(0);
        } else if constexpr (std::is_same_v<T, MessageIn>) {
          w.u8(1);
          w.u32(ev.from);
          w.u64(payload_fingerprint(*ev.payload));
        } else if constexpr (std::is_same_v<T, TimerFired>) {
          w.u8(2);
          w.u64(ev.token);
        } else {
          w.u8(3);
          w.u32(ev.from);
          w.u64(payload_fingerprint(*ev.request));
        }
      },
      event);
}

void serialize_action(util::ByteWriter& w, const Action& action) {
  std::visit(
      [&](const auto& a) {
        using T = std::decay_t<decltype(a)>;
        if constexpr (std::is_same_v<T, Send>) {
          w.u8(0);
          w.u32(a.to);
          w.u64(payload_fingerprint(*a.payload));
        } else if constexpr (std::is_same_v<T, Broadcast>) {
          w.u8(1);
          w.u64(payload_fingerprint(*a.payload));
        } else if constexpr (std::is_same_v<T, SetTimer>) {
          w.u8(2);
          w.u64(a.token);
          w.i64(a.delay);
        } else if constexpr (std::is_same_v<T, CancelTimer>) {
          w.u8(3);
          w.u64(a.token);
        } else if constexpr (std::is_same_v<T, Execute>) {
          w.u8(4);
          w.u64(a.requests);
          w.u64(a.seq);
          w.u32(a.ordinal);
          w.u64(payload_fingerprint(*a.block));
        } else if constexpr (std::is_same_v<T, MetricsUpdate>) {
          w.u8(5);
          w.u8(static_cast<std::uint8_t>(a.metric));
          // Exact bit fold: avoids the float->int overflow UB a fixed-point
          // scale would hit on time-valued metrics in long runs.
          w.u64(std::bit_cast<std::uint64_t>(a.value));
        } else {
          w.u8(6);
          w.i64(a.cost);
        }
      },
      action);
}

}  // namespace

std::size_t Trace::action_count() const {
  std::size_t n = 0;
  for (const auto& s : steps) n += s.actions.size();
  return n;
}

void Trace::serialize(util::ByteWriter& w) const {
  w.u64(steps.size());
  for (const auto& step : steps) {
    w.i64(step.at);
    serialize_event(w, step.event);
    w.u32(static_cast<std::uint32_t>(step.actions.size()));
    for (const auto& a : step.actions) serialize_action(w, a);
  }
}

crypto::Digest Trace::digest() const {
  util::ByteWriter w;
  serialize(w);
  return crypto::Digest::of(w.bytes());
}

Trace ReplayEnv::replay(Protocol& core, const Trace& recorded) {
  Trace out;
  out.steps.reserve(recorded.steps.size());
  for (const auto& recorded_step : recorded.steps) {
    TraceStep step;
    step.at = recorded_step.at;
    step.event = recorded_step.event;
    if (filter_ && !filter_(step)) continue;

    now_ = step.at;
    out.steps.push_back(std::move(step));
    current_ = &out.steps.back();
    core.deliver(*this, out.steps.back().event);
    current_ = nullptr;
  }
  return out;
}

void ReplayEnv::apply(Action action) {
  // Collect only: the recorded event stream already contains the deliveries
  // and timer firings these actions produced in the original run.
  if (current_ != nullptr) current_->actions.push_back(std::move(action));
}

}  // namespace leopard::protocol
