// SimEnv: the discrete-event-simulator adapter for sans-I/O protocol cores.
//
// Implements `sim::Node` on the network side and `protocol::Env` on the core
// side: deliveries/timers become typed events into the attached Protocol, and
// the core's actions translate back into the existing metered network and
// event queue — same `Network::send`/`multicast`/`charge_cpu` calls, in the
// same order, at the same simulated instants as the pre-refactor inline code,
// so every bench and figure keeps its semantics and numbers.
//
// Optionally records the full event/action stream into a `Trace`
// (replay.hpp) for determinism checks and offline replay.
#pragma once

#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/metrics.hpp"
#include "protocol/protocol.hpp"
#include "sim/network.hpp"

namespace leopard::protocol {

class Trace;

/// Applies one MetricsUpdate to the shared metrics object, honouring the
/// per-metric semantics documented on `Metric`.
void apply_metrics_update(core::ProtocolMetrics& metrics, const MetricsUpdate& update);

class SimEnv final : public Env, public sim::Node {
 public:
  /// `n_replicas` defines the Broadcast target set (replica ids 0..n-1).
  SimEnv(sim::Network& net, core::ProtocolMetrics& metrics, std::uint32_t n_replicas);

  /// Binds the protocol core this env hosts. Must be called before the
  /// simulation starts; the env does not own the core.
  void attach(Protocol& protocol);

  /// Network node id of this replica; must be set right after add_node.
  void set_node_id(NodeId id) { id_ = id; }

  /// Application observer for Execute actions (e.g. a replicated KV store).
  using ExecuteObserver = std::function<void(const Execute&)>;
  void set_execute_observer(ExecuteObserver obs) { execute_observer_ = std::move(obs); }

  /// Starts (or stops, with nullptr) recording events and actions into
  /// `trace`. The recorder must outlive the run.
  void set_recorder(Trace* trace) { trace_ = trace; }

  // -- Env ------------------------------------------------------------------
  [[nodiscard]] sim::SimTime now() const override { return net_.sim().now(); }
  [[nodiscard]] const sim::CostModel& costs() const override { return net_.costs(); }
  void apply(Action action) override;

  // -- sim::Node ------------------------------------------------------------
  void start() override;
  void on_message(sim::NodeId from, const sim::PayloadPtr& msg) override;

 private:
  void fire_timer(TimerToken token);
  void begin_step(Event event);
  void record_action(const Action& action);

  sim::Network& net_;
  core::ProtocolMetrics& metrics_;
  Protocol* protocol_ = nullptr;
  NodeId id_ = 0;
  std::vector<NodeId> replica_ids_;  // 0..n-1, the Broadcast target set
  std::unordered_map<TimerToken, sim::EventHandle> timers_;
  ExecuteObserver execute_observer_;
  Trace* trace_ = nullptr;
};

}  // namespace leopard::protocol
