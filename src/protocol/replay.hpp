// Trace recording and offline replay for sans-I/O protocol cores.
//
// A `Trace` is the full observable behaviour of one core over one run: the
// sequence of (timestamped event → action batch) steps. Two runs of the same
// seed must produce byte-identical traces (protocol_api_test asserts this),
// which makes the trace the canonical artifact for deterministic debugging:
// diff the serialized traces of a good and a bad run and the first divergent
// step is the bug.
//
// `ReplayEnv` re-drives a fresh core from a recorded event stream with no
// simulator and no network — SetTimer/Send actions are collected, not
// executed, because the recorded stream already contains the deliveries and
// timer firings they produced. An optional event filter mutates or drops
// events before delivery, which is the byzantine/fuzz injection point: the
// core under replay faces message loss, reordering, or corrupted fields
// without any network machinery.
#pragma once

#include <functional>
#include <vector>

#include "crypto/digest.hpp"
#include "protocol/protocol.hpp"
#include "util/bytes.hpp"

namespace leopard::protocol {

/// Stable 64-bit content identity of a wire message: folds the
/// distinguishing fields of every proto message type (digests, signer ids,
/// signature bytes) so trace comparison detects payload divergence, not just
/// shape divergence.
[[nodiscard]] std::uint64_t payload_fingerprint(const sim::Payload& payload);

/// One step: the event delivered at `at` and the actions it produced.
struct TraceStep {
  sim::SimTime at = 0;
  Event event;
  ActionBatch actions;
};

class Trace {
 public:
  std::vector<TraceStep> steps;

  [[nodiscard]] std::size_t action_count() const;

  /// Canonical byte serialization (events and actions, with payload
  /// fingerprints). Byte-identical serializations <=> equivalent behaviour.
  void serialize(util::ByteWriter& w) const;

  /// Digest of serialize() — cheap whole-trace equality.
  [[nodiscard]] crypto::Digest digest() const;
};

class ReplayEnv final : public Env {
 public:
  explicit ReplayEnv(sim::CostModel costs = {}) : costs_(costs) {}

  /// Fault/fuzz injection hook, called with a mutable copy of each recorded
  /// step before delivery; return false to drop the event entirely.
  using EventFilter = std::function<bool(TraceStep& step)>;
  void set_event_filter(EventFilter filter) { filter_ = std::move(filter); }

  /// Feeds `recorded`'s event stream into `core` and returns the trace the
  /// core produced. With no filter installed and a core configured like the
  /// recording one, the result serializes byte-identically to `recorded`.
  Trace replay(Protocol& core, const Trace& recorded);

  // -- Env ------------------------------------------------------------------
  [[nodiscard]] sim::SimTime now() const override { return now_; }
  [[nodiscard]] const sim::CostModel& costs() const override { return costs_; }
  void apply(Action action) override;

 private:
  sim::CostModel costs_;
  EventFilter filter_;
  sim::SimTime now_ = 0;
  TraceStep* current_ = nullptr;
};

}  // namespace leopard::protocol
