#include "protocol/factory.hpp"

#include "util/check.hpp"

namespace leopard::protocol {

std::uint32_t ProtocolSpec::n() const {
  return std::visit([](const auto& cfg) { return cfg.n; }, config);
}

std::unique_ptr<Protocol> make_protocol(const ProtocolSpec& spec,
                                        const crypto::ThresholdScheme& ts,
                                        proto::ReplicaId id) {
  struct Maker {
    const crypto::ThresholdScheme& ts;
    proto::ReplicaId id;
    const core::ByzantineSpec& byz;

    std::unique_ptr<Protocol> operator()(const core::LeopardConfig& cfg) const {
      return std::make_unique<core::LeopardReplica>(cfg, ts, id, byz);
    }
    std::unique_ptr<Protocol> operator()(const baselines::HotStuffConfig& cfg) const {
      return std::make_unique<baselines::HotStuffReplica>(cfg, ts, id);
    }
    std::unique_ptr<Protocol> operator()(const baselines::PbftConfig& cfg) const {
      return std::make_unique<baselines::PbftReplica>(cfg, ts, id);
    }
  };
  return std::visit(Maker{ts, id, spec.byzantine}, spec.config);
}

SimReplica make_sim_replica(sim::Network& net, core::ProtocolMetrics& metrics,
                            const ProtocolSpec& spec, const crypto::ThresholdScheme& ts,
                            proto::ReplicaId id) {
  SimReplica r;
  r.core = make_protocol(spec, ts, id);
  r.env = std::make_unique<SimEnv>(net, metrics, spec.n());
  r.env->attach(*r.core);
  const auto node_id = net.add_node(r.env.get());
  util::ensures(node_id == id, "replica node ids must equal replica ids");
  r.env->set_node_id(node_id);
  return r;
}

SimClient make_sim_client(sim::Network& net, core::ProtocolMetrics& metrics,
                          const core::ClientConfig& cfg, sim::NodeId target,
                          std::uint32_t replica_count, sim::NodeId avoid,
                          std::uint64_t seed) {
  SimClient c;
  c.core = std::make_unique<core::LeopardClient>(cfg, target, replica_count, avoid, seed);
  c.env = std::make_unique<SimEnv>(net, metrics, replica_count);
  c.env->attach(*c.core);
  const auto node_id = net.add_node(c.env.get(), /*metered=*/false);
  c.core->set_self_id(node_id);
  c.env->set_node_id(node_id);
  return c;
}

}  // namespace leopard::protocol
