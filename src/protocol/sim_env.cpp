#include "protocol/sim_env.hpp"

#include <algorithm>

#include "protocol/replay.hpp"
#include "util/check.hpp"

namespace leopard::protocol {

void apply_metrics_update(core::ProtocolMetrics& metrics, const MetricsUpdate& update) {
  switch (update.metric) {
    case Metric::kExecutedRequests:
      metrics.executed_requests += static_cast<std::uint64_t>(update.value);
      break;
    case Metric::kBreakdownCount:
      metrics.breakdown_count += static_cast<std::uint64_t>(update.value);
      break;
    case Metric::kSumGenerationSec:
      metrics.sum_generation_sec += update.value;
      break;
    case Metric::kSumDisseminationSec:
      metrics.sum_dissemination_sec += update.value;
      break;
    case Metric::kSumAgreementSec:
      metrics.sum_agreement_sec += update.value;
      break;
    case Metric::kQueriesSent:
      metrics.queries_sent += static_cast<std::uint64_t>(update.value);
      break;
    case Metric::kChunksSent:
      metrics.chunks_sent += static_cast<std::uint64_t>(update.value);
      break;
    case Metric::kDatablocksRecovered:
      metrics.datablocks_recovered += static_cast<std::uint64_t>(update.value);
      break;
    case Metric::kRecoveryTimeSumSec:
      metrics.recovery_time_sum_sec += update.value;
      break;
    case Metric::kViewChangesCompleted:
      metrics.view_changes_completed += static_cast<std::uint32_t>(update.value);
      break;
    case Metric::kVcTriggeredAt:
      if (metrics.vc_triggered_at < 0) {
        metrics.vc_triggered_at = static_cast<sim::SimTime>(update.value);
      }
      break;
    case Metric::kVcCompletedAt:
      metrics.vc_completed_at =
          std::max(metrics.vc_completed_at, static_cast<sim::SimTime>(update.value));
      break;
    case Metric::kSafetyViolation:
      metrics.safety_violation = true;
      break;
    case Metric::kAckLatencySample:
      metrics.record_ack_latency(update.value);
      break;
  }
}

SimEnv::SimEnv(sim::Network& net, core::ProtocolMetrics& metrics, std::uint32_t n_replicas)
    : net_(net), metrics_(metrics) {
  replica_ids_.resize(n_replicas);
  for (std::uint32_t i = 0; i < n_replicas; ++i) replica_ids_[i] = i;
}

void SimEnv::attach(Protocol& protocol) {
  protocol_ = &protocol;
  id_ = protocol.id();
}

void SimEnv::start() {
  util::expects(protocol_ != nullptr, "SimEnv::start without an attached protocol");
  begin_step(Event{Start{}});
  protocol_->on_start(*this);
}

void SimEnv::on_message(sim::NodeId from, const sim::PayloadPtr& msg) {
  if (auto cr = std::dynamic_pointer_cast<const proto::ClientRequestMsg>(msg)) {
    begin_step(Event{ClientRequest{from, cr}});
    protocol_->on_client_request(*this, from, cr);
  } else {
    begin_step(Event{MessageIn{from, msg}});
    protocol_->on_message(*this, from, msg);
  }
}

void SimEnv::fire_timer(TimerToken token) {
  timers_.erase(token);  // fired: the handle is spent
  begin_step(Event{TimerFired{token}});
  protocol_->on_timer(*this, token);
}

void SimEnv::apply(Action action) {
  record_action(action);
  std::visit(
      [&](auto& a) {
        using T = std::decay_t<decltype(a)>;
        if constexpr (std::is_same_v<T, Send>) {
          net_.send(id_, a.to, std::move(a.payload));
        } else if constexpr (std::is_same_v<T, Broadcast>) {
          net_.multicast(id_, replica_ids_, a.payload);
        } else if constexpr (std::is_same_v<T, SetTimer>) {
          auto& slot = timers_[a.token];
          slot.cancel();  // re-arming an armed token replaces it
          slot = net_.sim().schedule_after(a.delay,
                                           [this, token = a.token] { fire_timer(token); });
        } else if constexpr (std::is_same_v<T, CancelTimer>) {
          if (const auto it = timers_.find(a.token); it != timers_.end()) {
            it->second.cancel();
            timers_.erase(it);
          }
        } else if constexpr (std::is_same_v<T, Execute>) {
          if (execute_observer_) execute_observer_(a);
        } else if constexpr (std::is_same_v<T, MetricsUpdate>) {
          apply_metrics_update(metrics_, a);
        } else {
          net_.charge_cpu(id_, a.cost);
        }
      },
      action);
}

void SimEnv::begin_step(Event event) {
  if (trace_ == nullptr) return;
  trace_->steps.push_back(TraceStep{now(), std::move(event), {}});
}

void SimEnv::record_action(const Action& action) {
  if (trace_ == nullptr || trace_->steps.empty()) return;
  trace_->steps.back().actions.push_back(action);
}

}  // namespace leopard::protocol
