// Generic protocol construction: one spec type covering every state machine
// in the repo, so harnesses, fixtures, and examples build clusters without
// naming concrete replica classes — adding a protocol (or a transport) no
// longer touches the simulator or the experiment drivers.
#pragma once

#include <memory>
#include <variant>

#include "baselines/hotstuff.hpp"
#include "baselines/pbft.hpp"
#include "core/byzantine.hpp"
#include "core/client.hpp"
#include "core/config.hpp"
#include "core/replica.hpp"
#include "protocol/sim_env.hpp"

namespace leopard::protocol {

/// Which core `make_protocol` builds, with its per-protocol configuration.
struct ProtocolSpec {
  std::variant<core::LeopardConfig, baselines::HotStuffConfig, baselines::PbftConfig> config;
  core::ByzantineSpec byzantine;  // honoured by Leopard; baselines are honest-only

  [[nodiscard]] std::uint32_t n() const;
};

/// Builds the protocol core named by `spec` for replica `id`.
std::unique_ptr<Protocol> make_protocol(const ProtocolSpec& spec,
                                        const crypto::ThresholdScheme& ts,
                                        proto::ReplicaId id);

/// A protocol core bound to its simulator adapter. Construction order matters
/// for the network-id invariant (replica ids == node ids), so use
/// make_sim_replica instead of wiring the pieces by hand.
struct SimReplica {
  std::unique_ptr<Protocol> core;
  std::unique_ptr<SimEnv> env;

  /// Typed access for tests that inspect protocol state; aborts on mismatch.
  template <typename T>
  [[nodiscard]] T& as() const {
    return dynamic_cast<T&>(*core);
  }
};

/// Builds the core, wraps it in a SimEnv, and registers it with `net`
/// (asserting the node id equals the replica id).
SimReplica make_sim_replica(sim::Network& net, core::ProtocolMetrics& metrics,
                            const ProtocolSpec& spec, const crypto::ThresholdScheme& ts,
                            proto::ReplicaId id);

/// A client core bound to its simulator adapter (clients are unmetered nodes
/// whose env-level id is assigned by the network at registration).
struct SimClient {
  std::unique_ptr<core::LeopardClient> core;
  std::unique_ptr<SimEnv> env;
};

/// Builds a LeopardClient core, wraps it in a SimEnv, registers it with
/// `net` as an unmetered node, and wires the assigned node id into the core.
SimClient make_sim_client(sim::Network& net, core::ProtocolMetrics& metrics,
                          const core::ClientConfig& cfg, sim::NodeId target,
                          std::uint32_t replica_count, sim::NodeId avoid,
                          std::uint64_t seed);

}  // namespace leopard::protocol
