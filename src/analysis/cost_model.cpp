#include "analysis/cost_model.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/check.hpp"

namespace leopard::analysis {

namespace {
/// The per-proposal vote/link overhead (β + 4κ/τ) of Eqs. (2)/(3): one link
/// hash plus four vote-stage signatures amortized over the τ-link batch.
double link_overhead(const LeopardParams& p, const SizeParams& s) {
  return s.beta + 4.0 * s.kappa / p.tau;
}
}  // namespace

double leopard_leader_cost_per_bit(std::uint32_t n, const LeopardParams& p,
                                   const SizeParams& s) {
  util::expects(n >= 2, "need at least two replicas");
  return link_overhead(p, s) * static_cast<double>(n - 1) / p.alpha_bytes + 1.0;
}

double leopard_replica_cost_per_bit(std::uint32_t n, const LeopardParams& p,
                                    const SizeParams& s) {
  util::expects(n >= 2, "need at least two replicas");
  return 2.0 + link_overhead(p, s) / p.alpha_bytes;
}

double leopard_scaling_factor(std::uint32_t n, const LeopardParams& p,
                              const SizeParams& s) {
  return std::max(leopard_leader_cost_per_bit(n, p, s),
                  leopard_replica_cost_per_bit(n, p, s));
}

LeopardParams leopard_params_for_constant_sf(std::uint32_t n, double requests_per_unit,
                                             double tau, const SizeParams& s) {
  util::expects(requests_per_unit > 0 && tau > 0, "positive batch parameters required");
  LeopardParams p;
  p.tau = tau;
  // α = λ(n−1) with λ = X · payload bytes (X requests per replica unit).
  p.alpha_bytes = requests_per_unit * s.payload_bytes * static_cast<double>(n - 1);
  return p;
}

double leader_based_leader_cost_per_bit(std::uint32_t n, double batch_size,
                                        bool aggregated_votes, const SizeParams& s) {
  util::expects(n >= 2 && batch_size > 0, "bad parameters");
  const double batch_bits = batch_size * s.payload_bytes;
  // Dissemination: every request to n−1 replicas (Eq. (1)); plus receiving
  // votes (n−1 shares aggregated to one proof, or 2(n−1) flat PBFT votes)
  // amortized over the batch.
  const double vote_bytes = aggregated_votes
                                ? static_cast<double>(n - 1) * s.kappa + 2.0 * s.kappa
                                : 2.0 * static_cast<double>(n - 1) * s.kappa;
  return static_cast<double>(n - 1) + vote_bytes / batch_bits;
}

double leader_based_replica_cost_per_bit(std::uint32_t n, double batch_size,
                                         bool aggregated_votes, const SizeParams& s) {
  util::expects(n >= 2 && batch_size > 0, "bad parameters");
  const double batch_bits = batch_size * s.payload_bytes;
  // Receive the batch once; send votes (one share to the leader, or 2(n−1)
  // all-to-all PBFT votes) amortized over the batch.
  const double vote_bytes = aggregated_votes
                                ? 2.0 * s.kappa
                                : 4.0 * static_cast<double>(n - 1) * s.kappa;
  return 1.0 + vote_bytes / batch_bits;
}

double leader_based_scaling_factor(std::uint32_t n, double batch_size,
                                   bool aggregated_votes, const SizeParams& s) {
  return std::max(leader_based_leader_cost_per_bit(n, batch_size, aggregated_votes, s),
                  leader_based_replica_cost_per_bit(n, batch_size, aggregated_votes, s));
}

double scale_up_gamma(double scaling_factor) {
  util::expects(scaling_factor > 0, "scaling factor must be positive");
  return 1.0 / scaling_factor;
}

double expected_throughput_bps(double capacity_bps, double scaling_factor) {
  util::expects(capacity_bps > 0 && scaling_factor > 0, "bad parameters");
  return capacity_bps / scaling_factor;
}

double retrieval_recover_bytes(std::uint32_t n, double alpha_bytes, const SizeParams& s) {
  const double f = std::floor(static_cast<double>(n - 1) / 3.0);
  const double chunks = f + 1.0;
  return chunks * (alpha_bytes / chunks + s.beta * std::log2(static_cast<double>(n)));
}

double retrieval_respond_bytes(std::uint32_t n, double alpha_bytes, const SizeParams& s) {
  const double f = std::floor(static_cast<double>(n - 1) / 3.0);
  return alpha_bytes / (f + 1.0) + s.beta * std::log2(static_cast<double>(n));
}

double retrieval_attack_overhead_per_bit(std::uint32_t n, double alpha_bytes,
                                         const SizeParams& s) {
  const double f = std::floor(static_cast<double>(n - 1) / 3.0);
  return 5.0 / (3.0 * alpha_bytes) *
         (alpha_bytes + s.beta * (f * std::log2(static_cast<double>(n)) + 3.0 / 5.0));
}

std::vector<TableOneRow> table_one() {
  return {
      {"PBFT", "O(n)", "O(1)", "O(n)", 2, 2},
      {"SBFT", "O(n)", "O(1)", "O(n)", 1, 2},
      {"HotStuff (pipelined)", "O(n)", "O(1)", "O(n)", 1, 1},
      {"Leopard", "O(1)", "O(1)", "O(1)", 2, 3},
  };
}

}  // namespace leopard::analysis
