// Closed-form efficiency analysis of §V: per-protocol communication cost per
// confirmed bit, the scaling-factor metric (Definition 1), the scale-up
// effectiveness γ of Eq. (4), and the retrieval cost bounds of cases (b)/(c).
//
// Used by bench_table1_amortized_costs and cross-checked against the
// simulator's measured traffic in tests/analysis_test.cpp.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace leopard::analysis {

/// Shared size parameters (paper §VI footnote 7 defaults).
struct SizeParams {
  double payload_bytes = 128;  // request payload
  double beta = 32;            // hash size (SHA-256)
  double kappa = 48;           // threshold signature size (BLS)
};

/// Leopard parameters: α in *bytes* per datablock, τ links per BFTblock.
struct LeopardParams {
  double alpha_bytes = 2000.0 * 128.0;
  double tau = 100;
};

// -- Leopard (§V case a, Eqs. (2) and (3)) ----------------------------------

/// Leader communication per confirmed request-bit: (β + 4κ/τ)(n−1)/α + 1.
double leopard_leader_cost_per_bit(std::uint32_t n, const LeopardParams& p,
                                   const SizeParams& s = {});

/// Non-leader cost per confirmed request-bit: 2 + (β + 4κ/τ)/α.
double leopard_replica_cost_per_bit(std::uint32_t n, const LeopardParams& p,
                                    const SizeParams& s = {});

/// SF_Leopard = max of the two (Definition 1).
double leopard_scaling_factor(std::uint32_t n, const LeopardParams& p,
                              const SizeParams& s = {});

/// Picks α = λ(n−1) with λ = payload·X (X requests per datablock per replica
/// unit): the paper's recipe for a constant scaling factor.
LeopardParams leopard_params_for_constant_sf(std::uint32_t n, double requests_per_unit,
                                             double tau, const SizeParams& s = {});

// -- Leader-dissemination protocols (PBFT / SBFT / HotStuff, Eq. (1)) --------

/// Leader cost per confirmed bit: the leader ships every request to n−1
/// replicas, plus per-batch vote overhead. `aggregated_votes` distinguishes
/// HotStuff/SBFT (threshold, O(1) per decision) from PBFT (O(n) votes).
double leader_based_leader_cost_per_bit(std::uint32_t n, double batch_size,
                                        bool aggregated_votes, const SizeParams& s = {});

double leader_based_replica_cost_per_bit(std::uint32_t n, double batch_size,
                                         bool aggregated_votes, const SizeParams& s = {});

double leader_based_scaling_factor(std::uint32_t n, double batch_size,
                                   bool aggregated_votes, const SizeParams& s = {});

// -- Scale-up effectiveness (Eq. (4)) -----------------------------------------

/// γ = Λ∆_b / C∆ = 1 / SF: throughput gained per added unit of capacity.
double scale_up_gamma(double scaling_factor);

/// Expected throughput in request-bits/s given per-replica capacity C (bps).
double expected_throughput_bps(double capacity_bps, double scaling_factor);

// -- Retrieval costs (§V cases b and c) ----------------------------------------

/// Bytes a querier receives to recover one missing datablock:
/// (f+1)·(α/(f+1) + β·log2(n)).
double retrieval_recover_bytes(std::uint32_t n, double alpha_bytes,
                               const SizeParams& s = {});

/// Bytes one responder sends per query it answers: α/(f+1) + β·log2(n).
double retrieval_respond_bytes(std::uint32_t n, double alpha_bytes,
                               const SizeParams& s = {});

/// Upper bound on the per-replica extra communication under the selective
/// attack (case b): 5/(3α)·(α + β(f·log n + 3/5)) per request-bit.
double retrieval_attack_overhead_per_bit(std::uint32_t n, double alpha_bytes,
                                         const SizeParams& s = {});

// -- Table I rows ---------------------------------------------------------------

struct TableOneRow {
  std::string protocol;
  std::string leader_complexity;     // amortized, O-notation
  std::string replica_complexity;
  std::string scaling_factor;
  int voting_rounds_optimistic = 0;
  int voting_rounds_faulty = 0;
};

/// The four rows of Table I.
std::vector<TableOneRow> table_one();

}  // namespace leopard::analysis
