#include "proto/messages.hpp"

namespace leopard::proto {

void Request::encode(util::ByteWriter& w) const {
  w.u64(client_id);
  w.u64(seq);
  w.u32(payload_size);
  // Synthetic requests carry no materialized bytes; the blob's own length
  // prefix keeps encode/decode symmetric either way (wire_size() remains the
  // paper-accurate payload-bearing size for bandwidth accounting).
  w.blob(payload);
}

Request Request::decode(util::ByteReader& r) {
  Request req;
  req.client_id = r.u64();
  req.seq = r.u64();
  req.payload_size = r.u32();
  const auto view = r.blob();
  req.payload.assign(view.begin(), view.end());
  return req;
}

crypto::Digest Request::digest() const {
  util::ByteWriter w(24 + payload.size());
  w.u64(client_id);
  w.u64(seq);
  w.u32(payload_size);
  w.raw(payload);
  return crypto::Digest::of(w.bytes());
}

std::size_t Datablock::wire_size() const {
  std::size_t reqs = 0;
  for (const auto& r : requests) reqs += r.wire_size();
  return 4 + 8 + 4 + reqs;
}

void Datablock::encode(util::ByteWriter& w) const {
  w.u32(maker);
  w.u64(counter);
  w.u32(static_cast<std::uint32_t>(requests.size()));
  for (const auto& r : requests) r.encode(w);
}

Datablock Datablock::decode(util::ByteReader& r) {
  Datablock db;
  db.maker = r.u32();
  db.counter = r.u64();
  const auto count = r.u32();
  // Each request occupies at least its fixed header; a count beyond that is
  // a malformed (or hostile) buffer — reject before reserving.
  util::expects(count <= r.remaining() / 24, "Datablock count exceeds buffer");
  db.requests.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) db.requests.push_back(Request::decode(r));
  return db;
}

crypto::Digest Datablock::digest() const {
  // Digest-of-digests keeps hashing cost proportional to the request count,
  // not the payload bytes, while remaining collision resistant.
  util::ByteWriter w(16 + 32 * requests.size());
  w.u32(maker);
  w.u64(counter);
  w.u32(static_cast<std::uint32_t>(requests.size()));
  for (const auto& r : requests) w.raw(r.digest().bytes());
  return crypto::Digest::of(w.bytes());
}

void BftBlock::encode(util::ByteWriter& w) const {
  w.u32(view);
  w.u64(sn);
  w.u32(static_cast<std::uint32_t>(links.size()));
  for (const auto& link : links) w.raw(link.bytes());
}

BftBlock BftBlock::decode(util::ByteReader& r) {
  BftBlock b;
  b.view = r.u32();
  b.sn = r.u64();
  const auto count = r.u32();
  // Every link is 32 bytes of the remaining buffer; bound before reserving
  // (an attacker-controlled count must never drive the allocation).
  util::expects(count <= r.remaining() / 32, "BftBlock link count exceeds buffer");
  b.links.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    crypto::Sha256::DigestBytes bytes{};
    const auto view = r.raw(32);
    std::copy(view.begin(), view.end(), bytes.begin());
    b.links.emplace_back(bytes);
  }
  return b;
}

crypto::Digest BftBlock::digest() const {
  util::ByteWriter w(16 + 32 * links.size());
  encode(w);
  return crypto::Digest::of(w.bytes());
}

crypto::Digest BaselineBlockMsg::compute_digest() const {
  util::ByteWriter w(16 + 32 * batch.size());
  w.u64(height);
  for (const auto& r : batch) w.raw(r.digest().bytes());
  return crypto::Digest::of(w.bytes());
}

}  // namespace leopard::proto
