#include "erasure/gf256.hpp"

#include "util/check.hpp"

namespace leopard::erasure {

Gf256::Tables::Tables() {
  // Generator 2 over 0x11D generates the multiplicative group of GF(2^8).
  int x = 1;
  for (int i = 0; i < 255; ++i) {
    exp[i] = static_cast<Gf>(x);
    log[x] = i;
    x <<= 1;
    if (x & 0x100) x ^= 0x11D;
  }
  // Double the exp table so mul can skip a mod-255 reduction.
  for (int i = 255; i < 512; ++i) exp[i] = exp[i - 255];
  log[0] = -1;  // log(0) is undefined
}

const Gf256::Tables& Gf256::tables() {
  static const Tables t;
  return t;
}

Gf Gf256::mul(Gf a, Gf b) {
  if (a == 0 || b == 0) return 0;
  const auto& t = tables();
  return t.exp[t.log[a] + t.log[b]];
}

Gf Gf256::div(Gf a, Gf b) {
  util::expects(b != 0, "GF(256) division by zero");
  if (a == 0) return 0;
  const auto& t = tables();
  return t.exp[t.log[a] - t.log[b] + 255];
}

Gf Gf256::inv(Gf a) {
  util::expects(a != 0, "GF(256) inverse of zero");
  const auto& t = tables();
  return t.exp[255 - t.log[a]];
}

Gf Gf256::exp(int power) {
  const auto& t = tables();
  int p = power % 255;
  if (p < 0) p += 255;
  return t.exp[p];
}

Gf Gf256::pow(Gf a, unsigned e) {
  if (e == 0) return 1;
  if (a == 0) return 0;
  const auto& t = tables();
  const auto l = static_cast<unsigned>(t.log[a]);
  return t.exp[(l * e) % 255];
}

}  // namespace leopard::erasure
