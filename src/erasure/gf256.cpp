#include "erasure/gf256.hpp"

#include <atomic>
#include <cstring>

#include "util/check.hpp"

#if defined(__x86_64__) || defined(__i386__)
#include <x86intrin.h>
#define LEOPARD_GF256_HAS_SSSE3 1
#elif defined(__aarch64__)
#include <arm_neon.h>
#define LEOPARD_GF256_HAS_NEON 1
#endif

namespace leopard::erasure {

Gf256::Tables::Tables() {
  // Generator 2 over 0x11D generates the multiplicative group of GF(2^8).
  int x = 1;
  for (int i = 0; i < 255; ++i) {
    exp[i] = static_cast<Gf>(x);
    log[x] = i;
    x <<= 1;
    if (x & 0x100) x ^= 0x11D;
  }
  // Double the exp table so mul can skip a mod-255 reduction.
  for (int i = 255; i < 512; ++i) exp[i] = exp[i - 255];
  log[0] = -1;  // log(0) is undefined
}

const Gf256::Tables& Gf256::tables() {
  static const Tables t;
  return t;
}

Gf Gf256::mul(Gf a, Gf b) {
  if (a == 0 || b == 0) return 0;
  const auto& t = tables();
  return t.exp[t.log[a] + t.log[b]];
}

Gf Gf256::div(Gf a, Gf b) {
  util::expects(b != 0, "GF(256) division by zero");
  if (a == 0) return 0;
  const auto& t = tables();
  return t.exp[t.log[a] - t.log[b] + 255];
}

Gf Gf256::inv(Gf a) {
  util::expects(a != 0, "GF(256) inverse of zero");
  const auto& t = tables();
  return t.exp[255 - t.log[a]];
}

Gf Gf256::exp(int power) {
  const auto& t = tables();
  int p = power % 255;
  if (p < 0) p += 255;
  return t.exp[p];
}

Gf Gf256::pow(Gf a, unsigned e) {
  if (a == 0) return e == 0 ? 1 : 0;
  const auto& t = tables();
  const auto l = static_cast<unsigned>(t.log[a]);
  // Reduce the exponent first: l*e overflows 32 bits for e > ~16.8M, and the
  // group order 255 makes a^e == a^(e mod 255).
  return t.exp[(l * (e % 255)) % 255];
}

// ---------------------------------------------------------------------------
// Bulk tables
// ---------------------------------------------------------------------------

Gf256::BulkTables::BulkTables() {
  for (int c = 0; c < 256; ++c) {
    const auto coef = static_cast<Gf>(c);
    for (int x = 0; x < 256; ++x) {
      mul[static_cast<std::size_t>(c) * 256 + static_cast<std::size_t>(x)] =
          Gf256::mul(coef, static_cast<Gf>(x));
    }
    for (int i = 0; i < 16; ++i) {
      nib[static_cast<std::size_t>(c) * 32 + static_cast<std::size_t>(i)] =
          Gf256::mul(coef, static_cast<Gf>(i));
      nib[static_cast<std::size_t>(c) * 32 + 16 + static_cast<std::size_t>(i)] =
          Gf256::mul(coef, static_cast<Gf>(i << 4));
    }
    // "Multiply by c" is GF(2)-linear in x, so it is exactly an 8×8 bit
    // matrix: column j is c * 2^j. vgf2p8affineqb computes output bit i as
    // parity(qword_byte[7-i] & x), so row i lands in qword byte 7-i. This is
    // how a 0x11D field rides an instruction whose native polynomial is
    // 0x11B — the matrix encodes OUR field's multiplication.
    std::uint64_t matrix = 0;
    for (int i = 0; i < 8; ++i) {
      std::uint8_t row = 0;
      for (int j = 0; j < 8; ++j) {
        if ((Gf256::mul(coef, static_cast<Gf>(1u << j)) >> i) & 1u) {
          row |= static_cast<std::uint8_t>(1u << j);
        }
      }
      matrix |= static_cast<std::uint64_t>(row) << (8 * (7 - i));
    }
    gfni[static_cast<std::size_t>(c)] = matrix;
  }
}

const Gf256::BulkTables& Gf256::bulk_tables() {
  static const BulkTables t;
  return t;
}

const std::uint8_t* Gf256::mul_row_table(Gf c) {
  return bulk_tables().mul.data() + static_cast<std::size_t>(c) * 256;
}

const std::uint8_t* Gf256::nibble_table(Gf c) {
  return bulk_tables().nib.data() + static_cast<std::size_t>(c) * 32;
}

std::uint64_t Gf256::gfni_matrix(Gf c) { return bulk_tables().gfni[c]; }

// ---------------------------------------------------------------------------
// Kernels
// ---------------------------------------------------------------------------

namespace {

// dst ^= src over n bytes, 8 at a time (the coef == 1 fast path).
void xor_row(std::uint8_t* dst, const std::uint8_t* src, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    std::uint64_t d, s;
    std::memcpy(&d, dst + i, 8);
    std::memcpy(&s, src + i, 8);
    d ^= s;
    std::memcpy(dst + i, &d, 8);
  }
  for (; i < n; ++i) dst[i] ^= src[i];
}

// Per-coefficient product table, 8 bytes per iteration: one 64-bit load feeds
// eight table lookups whose results are packed and XOR-stored as one word.
void mul_add_row_scalar64(std::uint8_t* dst, const std::uint8_t* src, std::size_t n,
                          const std::uint8_t* table) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    std::uint64_t s;
    std::memcpy(&s, src + i, 8);
    std::uint64_t r = table[s & 0xFF];
    r |= static_cast<std::uint64_t>(table[(s >> 8) & 0xFF]) << 8;
    r |= static_cast<std::uint64_t>(table[(s >> 16) & 0xFF]) << 16;
    r |= static_cast<std::uint64_t>(table[(s >> 24) & 0xFF]) << 24;
    r |= static_cast<std::uint64_t>(table[(s >> 32) & 0xFF]) << 32;
    r |= static_cast<std::uint64_t>(table[(s >> 40) & 0xFF]) << 40;
    r |= static_cast<std::uint64_t>(table[(s >> 48) & 0xFF]) << 48;
    r |= static_cast<std::uint64_t>(table[(s >> 56) & 0xFF]) << 56;
    std::uint64_t d;
    std::memcpy(&d, dst + i, 8);
    d ^= r;
    std::memcpy(dst + i, &d, 8);
  }
  for (; i < n; ++i) dst[i] ^= table[src[i]];
}

void mul_row_scalar64(std::uint8_t* dst, const std::uint8_t* src, std::size_t n,
                      const std::uint8_t* table) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    std::uint64_t s;
    std::memcpy(&s, src + i, 8);
    std::uint64_t r = table[s & 0xFF];
    r |= static_cast<std::uint64_t>(table[(s >> 8) & 0xFF]) << 8;
    r |= static_cast<std::uint64_t>(table[(s >> 16) & 0xFF]) << 16;
    r |= static_cast<std::uint64_t>(table[(s >> 24) & 0xFF]) << 24;
    r |= static_cast<std::uint64_t>(table[(s >> 32) & 0xFF]) << 32;
    r |= static_cast<std::uint64_t>(table[(s >> 40) & 0xFF]) << 40;
    r |= static_cast<std::uint64_t>(table[(s >> 48) & 0xFF]) << 48;
    r |= static_cast<std::uint64_t>(table[(s >> 56) & 0xFF]) << 56;
    std::memcpy(dst + i, &r, 8);
  }
  for (; i < n; ++i) dst[i] = table[src[i]];
}

#if defined(LEOPARD_GF256_HAS_SSSE3)

// Split-nibble pshufb kernel: c*x = lo_tab[x & 0xF] ^ hi_tab[x >> 4], so one
// pshufb pair multiplies 16 bytes. Two pairs per iteration -> 32 bytes.
__attribute__((target("ssse3"))) void mul_add_row_ssse3(std::uint8_t* dst,
                                                        const std::uint8_t* src, std::size_t n,
                                                        const std::uint8_t* nib,
                                                        const std::uint8_t* table) {
  const __m128i lo_tab = _mm_loadu_si128(reinterpret_cast<const __m128i*>(nib));
  const __m128i hi_tab = _mm_loadu_si128(reinterpret_cast<const __m128i*>(nib + 16));
  const __m128i mask = _mm_set1_epi8(0x0F);
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m128i s0 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    const __m128i s1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i + 16));
    const __m128i p0 = _mm_xor_si128(_mm_shuffle_epi8(lo_tab, _mm_and_si128(s0, mask)),
                                     _mm_shuffle_epi8(hi_tab, _mm_and_si128(
                                                                  _mm_srli_epi64(s0, 4), mask)));
    const __m128i p1 = _mm_xor_si128(_mm_shuffle_epi8(lo_tab, _mm_and_si128(s1, mask)),
                                     _mm_shuffle_epi8(hi_tab, _mm_and_si128(
                                                                  _mm_srli_epi64(s1, 4), mask)));
    __m128i d0 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i));
    __m128i d1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i + 16));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), _mm_xor_si128(d0, p0));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i + 16), _mm_xor_si128(d1, p1));
  }
  for (; i + 16 <= n; i += 16) {
    const __m128i s = _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    const __m128i p = _mm_xor_si128(_mm_shuffle_epi8(lo_tab, _mm_and_si128(s, mask)),
                                    _mm_shuffle_epi8(hi_tab, _mm_and_si128(
                                                                 _mm_srli_epi64(s, 4), mask)));
    const __m128i d = _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), _mm_xor_si128(d, p));
  }
  for (; i < n; ++i) dst[i] ^= table[src[i]];
}

__attribute__((target("ssse3"))) void mul_row_ssse3(std::uint8_t* dst, const std::uint8_t* src,
                                                    std::size_t n, const std::uint8_t* nib,
                                                    const std::uint8_t* table) {
  const __m128i lo_tab = _mm_loadu_si128(reinterpret_cast<const __m128i*>(nib));
  const __m128i hi_tab = _mm_loadu_si128(reinterpret_cast<const __m128i*>(nib + 16));
  const __m128i mask = _mm_set1_epi8(0x0F);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i s = _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    const __m128i p = _mm_xor_si128(_mm_shuffle_epi8(lo_tab, _mm_and_si128(s, mask)),
                                    _mm_shuffle_epi8(hi_tab, _mm_and_si128(
                                                                 _mm_srli_epi64(s, 4), mask)));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), p);
  }
  for (; i < n; ++i) dst[i] = table[src[i]];
}

bool cpu_has_ssse3() { return __builtin_cpu_supports("ssse3") != 0; }
bool cpu_has_avx2() { return __builtin_cpu_supports("avx2") != 0; }
bool cpu_has_gfni() {
  return __builtin_cpu_supports("gfni") != 0 && __builtin_cpu_supports("avx512f") != 0 &&
         __builtin_cpu_supports("avx512bw") != 0;
}

// One vgf2p8affineqb multiplies 64 bytes by the coefficient's bit matrix —
// no per-coefficient table loads at all, just a broadcast qword. The 0..63
// byte tail runs masked in the same instruction.
__attribute__((target("gfni,avx512f,avx512bw"))) void mul_add_row_gfni(
    std::uint8_t* dst, const std::uint8_t* src, std::size_t n, std::uint64_t matrix) {
  const __m512i a = _mm512_set1_epi64(static_cast<long long>(matrix));
  std::size_t i = 0;
  for (; i + 64 <= n; i += 64) {
    const __m512i s = _mm512_loadu_si512(src + i);
    const __m512i p = _mm512_gf2p8affine_epi64_epi8(s, a, 0);
    const __m512i d = _mm512_loadu_si512(dst + i);
    _mm512_storeu_si512(dst + i, _mm512_xor_si512(d, p));
  }
  if (i < n) {
    const __mmask64 m = ~std::uint64_t{0} >> (64 - (n - i));
    const __m512i s = _mm512_maskz_loadu_epi8(m, src + i);
    const __m512i p = _mm512_gf2p8affine_epi64_epi8(s, a, 0);
    const __m512i d = _mm512_maskz_loadu_epi8(m, dst + i);
    _mm512_mask_storeu_epi8(dst + i, m, _mm512_xor_si512(d, p));
  }
}

__attribute__((target("gfni,avx512f,avx512bw"))) void mul_row_gfni(
    std::uint8_t* dst, const std::uint8_t* src, std::size_t n, std::uint64_t matrix) {
  const __m512i a = _mm512_set1_epi64(static_cast<long long>(matrix));
  std::size_t i = 0;
  for (; i + 64 <= n; i += 64) {
    const __m512i s = _mm512_loadu_si512(src + i);
    _mm512_storeu_si512(dst + i, _mm512_gf2p8affine_epi64_epi8(s, a, 0));
  }
  if (i < n) {
    const __mmask64 m = ~std::uint64_t{0} >> (64 - (n - i));
    const __m512i s = _mm512_maskz_loadu_epi8(m, src + i);
    _mm512_mask_storeu_epi8(dst + i, m, _mm512_gf2p8affine_epi64_epi8(s, a, 0));
  }
}

// AVX2 widening of the split-nibble kernel: the two 16-entry tables are
// broadcast into both halves of a ymm register (vpshufb shuffles within each
// 128-bit lane, so both halves need the same table) and each iteration
// multiplies 64 bytes.
__attribute__((target("avx2"))) void mul_add_row_avx2(std::uint8_t* dst,
                                                      const std::uint8_t* src, std::size_t n,
                                                      const std::uint8_t* nib,
                                                      const std::uint8_t* table) {
  const __m256i lo_tab = _mm256_broadcastsi128_si256(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(nib)));
  const __m256i hi_tab = _mm256_broadcastsi128_si256(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(nib + 16)));
  const __m256i mask = _mm256_set1_epi8(0x0F);
  std::size_t i = 0;
  for (; i + 64 <= n; i += 64) {
    const __m256i s0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    const __m256i s1 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i + 32));
    const __m256i p0 = _mm256_xor_si256(
        _mm256_shuffle_epi8(lo_tab, _mm256_and_si256(s0, mask)),
        _mm256_shuffle_epi8(hi_tab, _mm256_and_si256(_mm256_srli_epi64(s0, 4), mask)));
    const __m256i p1 = _mm256_xor_si256(
        _mm256_shuffle_epi8(lo_tab, _mm256_and_si256(s1, mask)),
        _mm256_shuffle_epi8(hi_tab, _mm256_and_si256(_mm256_srli_epi64(s1, 4), mask)));
    const __m256i d0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i d1 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i + 32));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), _mm256_xor_si256(d0, p0));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i + 32), _mm256_xor_si256(d1, p1));
  }
  for (; i + 32 <= n; i += 32) {
    const __m256i s = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    const __m256i p = _mm256_xor_si256(
        _mm256_shuffle_epi8(lo_tab, _mm256_and_si256(s, mask)),
        _mm256_shuffle_epi8(hi_tab, _mm256_and_si256(_mm256_srli_epi64(s, 4), mask)));
    const __m256i d = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), _mm256_xor_si256(d, p));
  }
  for (; i < n; ++i) dst[i] ^= table[src[i]];
}

__attribute__((target("avx2"))) void mul_row_avx2(std::uint8_t* dst, const std::uint8_t* src,
                                                  std::size_t n, const std::uint8_t* nib,
                                                  const std::uint8_t* table) {
  const __m256i lo_tab = _mm256_broadcastsi128_si256(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(nib)));
  const __m256i hi_tab = _mm256_broadcastsi128_si256(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(nib + 16)));
  const __m256i mask = _mm256_set1_epi8(0x0F);
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i s = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    const __m256i p = _mm256_xor_si256(
        _mm256_shuffle_epi8(lo_tab, _mm256_and_si256(s, mask)),
        _mm256_shuffle_epi8(hi_tab, _mm256_and_si256(_mm256_srli_epi64(s, 4), mask)));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), p);
  }
  for (; i < n; ++i) dst[i] = table[src[i]];
}

#endif  // LEOPARD_GF256_HAS_SSSE3

#if defined(LEOPARD_GF256_HAS_NEON)

void mul_add_row_neon(std::uint8_t* dst, const std::uint8_t* src, std::size_t n,
                      const std::uint8_t* nib, const std::uint8_t* table) {
  const uint8x16_t lo_tab = vld1q_u8(nib);
  const uint8x16_t hi_tab = vld1q_u8(nib + 16);
  const uint8x16_t mask = vdupq_n_u8(0x0F);
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const uint8x16_t s0 = vld1q_u8(src + i);
    const uint8x16_t s1 = vld1q_u8(src + i + 16);
    const uint8x16_t p0 = veorq_u8(vqtbl1q_u8(lo_tab, vandq_u8(s0, mask)),
                                   vqtbl1q_u8(hi_tab, vshrq_n_u8(s0, 4)));
    const uint8x16_t p1 = veorq_u8(vqtbl1q_u8(lo_tab, vandq_u8(s1, mask)),
                                   vqtbl1q_u8(hi_tab, vshrq_n_u8(s1, 4)));
    vst1q_u8(dst + i, veorq_u8(vld1q_u8(dst + i), p0));
    vst1q_u8(dst + i + 16, veorq_u8(vld1q_u8(dst + i + 16), p1));
  }
  for (; i + 16 <= n; i += 16) {
    const uint8x16_t s = vld1q_u8(src + i);
    const uint8x16_t p = veorq_u8(vqtbl1q_u8(lo_tab, vandq_u8(s, mask)),
                                  vqtbl1q_u8(hi_tab, vshrq_n_u8(s, 4)));
    vst1q_u8(dst + i, veorq_u8(vld1q_u8(dst + i), p));
  }
  for (; i < n; ++i) dst[i] ^= table[src[i]];
}

void mul_row_neon(std::uint8_t* dst, const std::uint8_t* src, std::size_t n,
                  const std::uint8_t* nib, const std::uint8_t* table) {
  const uint8x16_t lo_tab = vld1q_u8(nib);
  const uint8x16_t hi_tab = vld1q_u8(nib + 16);
  const uint8x16_t mask = vdupq_n_u8(0x0F);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const uint8x16_t s = vld1q_u8(src + i);
    vst1q_u8(dst + i, veorq_u8(vqtbl1q_u8(lo_tab, vandq_u8(s, mask)),
                               vqtbl1q_u8(hi_tab, vshrq_n_u8(s, 4))));
  }
  for (; i < n; ++i) dst[i] = table[src[i]];
}

#endif  // LEOPARD_GF256_HAS_NEON

Gf256::Kernel detect_kernel() {
#if defined(LEOPARD_GF256_HAS_SSSE3)
  if (cpu_has_gfni()) return Gf256::Kernel::kGfni;
  if (cpu_has_avx2()) return Gf256::Kernel::kAvx2;
  if (cpu_has_ssse3()) return Gf256::Kernel::kSsse3;
#elif defined(LEOPARD_GF256_HAS_NEON)
  return Gf256::Kernel::kNeon;
#endif
  return Gf256::Kernel::kScalar64;
}

std::atomic<Gf256::Kernel>& kernel_slot() {
  static std::atomic<Gf256::Kernel> k{detect_kernel()};
  return k;
}

}  // namespace

bool Gf256::kernel_available(Kernel k) {
  switch (k) {
    case Kernel::kScalarRef:
    case Kernel::kScalar64:
      return true;
    case Kernel::kSsse3:
#if defined(LEOPARD_GF256_HAS_SSSE3)
      return cpu_has_ssse3();
#else
      return false;
#endif
    case Kernel::kAvx2:
#if defined(LEOPARD_GF256_HAS_SSSE3)
      return cpu_has_avx2();
#else
      return false;
#endif
    case Kernel::kGfni:
#if defined(LEOPARD_GF256_HAS_SSSE3)
      return cpu_has_gfni();
#else
      return false;
#endif
    case Kernel::kNeon:
#if defined(LEOPARD_GF256_HAS_NEON)
      return true;
#else
      return false;
#endif
  }
  return false;
}

Gf256::Kernel Gf256::active_kernel() { return kernel_slot().load(std::memory_order_relaxed); }

Gf256::Kernel Gf256::force_kernel(Kernel k) {
  if (!kernel_available(k)) k = detect_kernel();
  kernel_slot().store(k, std::memory_order_relaxed);
  return k;
}

const char* Gf256::kernel_name(Kernel k) {
  switch (k) {
    case Kernel::kScalarRef:
      return "scalar_ref";
    case Kernel::kScalar64:
      return "scalar64";
    case Kernel::kSsse3:
      return "ssse3";
    case Kernel::kNeon:
      return "neon";
    case Kernel::kAvx2:
      return "avx2";
    case Kernel::kGfni:
      return "gfni";
  }
  return "unknown";
}

void Gf256::mul_add_row_ref(std::uint8_t* dst, const std::uint8_t* src, std::size_t n,
                            Gf coef) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = add(dst[i], mul(coef, src[i]));
}

void Gf256::mul_row_ref(std::uint8_t* dst, const std::uint8_t* src, std::size_t n, Gf coef) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = mul(coef, src[i]);
}

void Gf256::mul_add_row(std::uint8_t* dst, const std::uint8_t* src, std::size_t n, Gf coef) {
  if (coef == 0 || n == 0) return;
  if (coef == 1) {
    if (active_kernel() == Kernel::kScalarRef) {
      mul_add_row_ref(dst, src, n, coef);
    } else {
      xor_row(dst, src, n);
    }
    return;
  }
  switch (active_kernel()) {
    case Kernel::kScalarRef:
      mul_add_row_ref(dst, src, n, coef);
      return;
#if defined(LEOPARD_GF256_HAS_SSSE3)
    case Kernel::kSsse3:
      mul_add_row_ssse3(dst, src, n, nibble_table(coef), mul_row_table(coef));
      return;
    case Kernel::kAvx2:
      mul_add_row_avx2(dst, src, n, nibble_table(coef), mul_row_table(coef));
      return;
    case Kernel::kGfni:
      mul_add_row_gfni(dst, src, n, gfni_matrix(coef));
      return;
#endif
#if defined(LEOPARD_GF256_HAS_NEON)
    case Kernel::kNeon:
      mul_add_row_neon(dst, src, n, nibble_table(coef), mul_row_table(coef));
      return;
#endif
    default:
      mul_add_row_scalar64(dst, src, n, mul_row_table(coef));
      return;
  }
}

void Gf256::mul_row(std::uint8_t* dst, const std::uint8_t* src, std::size_t n, Gf coef) {
  if (n == 0) return;
  if (coef == 0) {
    std::memset(dst, 0, n);
    return;
  }
  if (coef == 1 && active_kernel() != Kernel::kScalarRef) {
    if (dst != src) std::memmove(dst, src, n);
    return;
  }
  switch (active_kernel()) {
    case Kernel::kScalarRef:
      mul_row_ref(dst, src, n, coef);
      return;
#if defined(LEOPARD_GF256_HAS_SSSE3)
    case Kernel::kSsse3:
      mul_row_ssse3(dst, src, n, nibble_table(coef), mul_row_table(coef));
      return;
    case Kernel::kAvx2:
      mul_row_avx2(dst, src, n, nibble_table(coef), mul_row_table(coef));
      return;
    case Kernel::kGfni:
      mul_row_gfni(dst, src, n, gfni_matrix(coef));
      return;
#endif
#if defined(LEOPARD_GF256_HAS_NEON)
    case Kernel::kNeon:
      mul_row_neon(dst, src, n, nibble_table(coef), mul_row_table(coef));
      return;
#endif
    default:
      mul_row_scalar64(dst, src, n, mul_row_table(coef));
      return;
  }
}

}  // namespace leopard::erasure
