// Arithmetic over GF(2^8) with the AES/RS-standard reduction polynomial
// x^8 + x^4 + x^3 + x^2 + 1 (0x11D). Backs the Reed-Solomon erasure codes
// used by Leopard's datablock retrieval (§IV, Algorithm 3).
#pragma once

#include <array>
#include <cstdint>

namespace leopard::erasure {

/// Field element.
using Gf = std::uint8_t;

/// Table-driven GF(2^8) operations; tables are built once at static init.
class Gf256 {
 public:
  static Gf add(Gf a, Gf b) { return a ^ b; }
  static Gf sub(Gf a, Gf b) { return a ^ b; }
  static Gf mul(Gf a, Gf b);
  static Gf div(Gf a, Gf b);  // b must be non-zero
  static Gf inv(Gf a);        // a must be non-zero
  static Gf exp(int power);   // generator^power (power taken mod 255)
  static Gf pow(Gf a, unsigned e);

 private:
  struct Tables {
    std::array<Gf, 512> exp{};
    std::array<int, 256> log{};
    Tables();
  };
  static const Tables& tables();
};

}  // namespace leopard::erasure
