// Arithmetic over GF(2^8) with the AES/RS-standard reduction polynomial
// x^8 + x^4 + x^3 + x^2 + 1 (0x11D). Backs the Reed-Solomon erasure codes
// used by Leopard's datablock retrieval (§IV, Algorithm 3).
//
// Besides the scalar field ops, this header exposes the bulk row kernels the
// Reed-Solomon hot path is built on: dst ^= coef * src over whole shards.
// Three implementations sit behind a runtime dispatch:
//
//   kScalarRef — the original branchy log/exp loop, retained as the
//                byte-exact reference for property tests and bench baselines;
//   kScalar64  — per-coefficient 256-entry product table, 8 bytes per
//                iteration via 64-bit loads/XOR-stores;
//   kSsse3     — the ISA-L/klauspost split-nibble technique: two 16-entry
//                tables per coefficient, 32 bytes per iteration via pshufb
//                (NEON tbl on aarch64 builds);
//   kAvx2      — the same split-nibble technique widened to 32-byte lanes:
//                the nibble tables are broadcast into both 128-bit halves of
//                a ymm register and vpshufb shuffles within each half, 64
//                bytes per iteration;
//   kGfni      — Galois Field New Instructions: vgf2p8affineqb multiplies 64
//                bytes per instruction by an 8×8 bit matrix. The instruction's
//                native field uses the AES polynomial 0x11B, not our 0x11D, so
//                each coefficient is precomputed as the bit matrix of "multiply
//                by c over 0x11D" — affine transforms express multiplication by
//                a constant in ANY GF(2^8) representation. Needs gfni+avx512bw.
//
// All kernels produce byte-identical output; tests sweep every available
// kernel against kScalarRef.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace leopard::erasure {

/// Field element.
using Gf = std::uint8_t;

/// Table-driven GF(2^8) operations; tables are built once at static init.
class Gf256 {
 public:
  static Gf add(Gf a, Gf b) { return a ^ b; }
  static Gf sub(Gf a, Gf b) { return a ^ b; }
  static Gf mul(Gf a, Gf b);
  static Gf div(Gf a, Gf b);  // b must be non-zero
  static Gf inv(Gf a);        // a must be non-zero
  static Gf exp(int power);   // generator^power (power taken mod 255)
  static Gf pow(Gf a, unsigned e);

  // --- bulk row kernels (the erasure-coding hot path) ----------------------

  /// Which bulk implementation mul_row/mul_add_row dispatch to.
  enum class Kernel { kScalarRef, kScalar64, kSsse3, kNeon, kAvx2, kGfni };

  /// Kernel currently in effect (auto-detected at startup, see force_kernel).
  static Kernel active_kernel();

  /// Human-readable name of `k` ("scalar_ref", "scalar64", "ssse3", "neon",
  /// "avx2", "gfni").
  static const char* kernel_name(Kernel k);

  /// Overrides dispatch, clamped to what this CPU supports; returns the
  /// kernel actually installed. Intended for tests and benches.
  static Kernel force_kernel(Kernel k);

  /// True if `k` can run on this CPU/build.
  static bool kernel_available(Kernel k);

  /// dst[i] ^= coef * src[i] for i in [0, n). The multiply-accumulate inner
  /// step of every Reed-Solomon encode/decode. dst and src must not overlap
  /// unless dst == src.
  static void mul_add_row(std::uint8_t* dst, const std::uint8_t* src, std::size_t n, Gf coef);

  /// dst[i] = coef * src[i] for i in [0, n).
  static void mul_row(std::uint8_t* dst, const std::uint8_t* src, std::size_t n, Gf coef);

  /// The original log/exp-per-byte loops, kept as the property-test oracle.
  static void mul_add_row_ref(std::uint8_t* dst, const std::uint8_t* src, std::size_t n,
                              Gf coef);
  static void mul_row_ref(std::uint8_t* dst, const std::uint8_t* src, std::size_t n, Gf coef);

  /// 256-entry product row for coefficient `c`: mul_row_table(c)[x] == c*x.
  static const std::uint8_t* mul_row_table(Gf c);

  /// Split-nibble tables for `c`: 32 bytes, [0,16) low-nibble products
  /// c*(x & 0xF), [16,32) high-nibble products c*(x << 4). c*x is the XOR of
  /// one entry from each half.
  static const std::uint8_t* nibble_table(Gf c);

  /// 8×8 bit matrix (vgf2p8affineqb operand layout: qword byte 7-i is output
  /// bit i's row) such that the affine transform of x by it equals c*x over
  /// our 0x11D field.
  static std::uint64_t gfni_matrix(Gf c);

 private:
  struct Tables {
    std::array<Gf, 512> exp{};
    std::array<int, 256> log{};
    Tables();
  };
  static const Tables& tables();

  struct BulkTables {
    // mul[c * 256 + x] = c * x — 64 KiB, one cache-resident row per coefficient.
    std::array<std::uint8_t, 256 * 256> mul{};
    // nib[c * 32 + i]      = c * i          (i < 16)
    // nib[c * 32 + 16 + i] = c * (i << 4)   (i < 16)
    std::array<std::uint8_t, 256 * 32> nib{};
    // gfni[c] = bit matrix of "multiply by c" for vgf2p8affineqb (2 KiB).
    std::array<std::uint64_t, 256> gfni{};
    BulkTables();
  };
  static const BulkTables& bulk_tables();
};

}  // namespace leopard::erasure
