#include "erasure/reed_solomon.hpp"

#include <algorithm>
#include <cstring>

#include "obs/metrics.hpp"
#include "util/check.hpp"
#include "util/worker_pool.hpp"

namespace leopard::erasure {

namespace {

obs::Histogram encode_hist() {
  static const obs::Histogram h = obs::Registry::global().histogram(
      "leopard_erasure_encode_ns", "Reed-Solomon encode latency in nanoseconds");
  return h;
}

obs::Histogram decode_hist() {
  static const obs::Histogram h = obs::Registry::global().histogram(
      "leopard_erasure_decode_ns", "Reed-Solomon decode latency in nanoseconds");
  return h;
}

/// rows (r×k, flat row-major) times k input rows, restricted to the byte
/// columns [col_begin, col_end) of every row, into r contiguous output rows
/// of `width` bytes at `out`. The field is per-byte, so any column slice of
/// the product is the product of the column slices — this is the unit the
/// worker pool hands each lane. The inner step is a whole-slice
/// multiply-accumulate through the dispatched Gf256 bulk kernel, so the per
/// byte cost is one table-lookup/pshufb, not a log/exp chain.
void matrix_apply_slice(const Gf* rows, std::size_t r_count, std::size_t k,
                        const std::uint8_t* const* inputs, std::size_t width,
                        std::uint8_t* out, std::size_t col_begin, std::size_t col_end) {
  const std::size_t len = col_end - col_begin;
  for (std::size_t r = 0; r < r_count; ++r) {
    std::uint8_t* dst = out + r * width + col_begin;
    const Gf* row = rows + r * k;
    bool first = true;
    for (std::size_t c = 0; c < k; ++c) {
      const Gf coef = row[c];
      if (coef == 0) continue;
      if (first) {
        Gf256::mul_row(dst, inputs[c] + col_begin, len, coef);
        first = false;
      } else {
        Gf256::mul_add_row(dst, inputs[c] + col_begin, len, coef);
      }
    }
    if (first) std::memset(dst, 0, len);  // all-zero row
  }
}

void matrix_apply_flat(const Gf* rows, std::size_t r_count, std::size_t k,
                       const std::uint8_t* const* inputs, std::size_t width,
                       std::uint8_t* out) {
  matrix_apply_slice(rows, r_count, k, inputs, width, out, 0, width);
}

/// Don't fan a matrix apply out below this many output bytes per lane —
/// dispatch latency (a cv wake per worker) dwarfs sub-L1 kernel work.
constexpr std::size_t kParallelMinBytesPerLane = 16 * 1024;

/// Fans matrix_apply_slice across the global worker pool, splitting the
/// shard width into 64-byte-aligned column ranges (one per lane, so SIMD
/// lanes never straddle a chunk boundary). Every lane writes a disjoint
/// column slice of every output row, so the result is byte-identical to the
/// serial apply for any pool size.
void matrix_apply_parallel(const Gf* rows, std::size_t r_count, std::size_t k,
                           const std::uint8_t* const* inputs, std::size_t width,
                           std::uint8_t* out) {
  auto& pool = util::WorkerPool::global();
  if (pool.lanes() <= 1 ||
      r_count * width < pool.lanes() * kParallelMinBytesPerLane) {
    matrix_apply_flat(rows, r_count, k, inputs, width, out);
    return;
  }
  pool.for_ranges(width, 64, [&](std::size_t, std::size_t begin, std::size_t end) {
    matrix_apply_slice(rows, r_count, k, inputs, width, out, begin, end);
  });
}

/// Strips the u32 length header + zero padding off a reconstructed padded
/// buffer into `out`. Returns false on a corrupt/inconsistent header.
bool unpack_padded(const util::Bytes& padded, util::Bytes& out) {
  if (padded.size() < 4) return false;  // too small to hold the header
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i) {
    len |= static_cast<std::uint32_t>(padded[i]) << (8 * i);
  }
  // Compare without the `len + 4` wrap-around (a corrupt shard can put len
  // near UINT32_MAX).
  if (len > padded.size() - 4) return false;  // corrupt/mismatched shards
  out.assign(padded.begin() + 4, padded.begin() + 4 + len);
  return true;
}

}  // namespace

bool invert_matrix_flat(Gf* m, std::size_t k, std::vector<Gf>& aug) {
  // Augment with identity: aug is k rows × 2k cols, flat.
  aug.assign(k * 2 * k, 0);
  for (std::size_t i = 0; i < k; ++i) {
    std::memcpy(aug.data() + i * 2 * k, m + i * k, k);
    aug[i * 2 * k + k + i] = 1;
  }

  for (std::size_t col = 0; col < k; ++col) {
    // Find pivot.
    std::size_t pivot = col;
    while (pivot < k && aug[pivot * 2 * k + col] == 0) ++pivot;
    if (pivot == k) return false;  // singular
    if (pivot != col) {
      std::swap_ranges(aug.begin() + static_cast<std::ptrdiff_t>(pivot * 2 * k),
                       aug.begin() + static_cast<std::ptrdiff_t>((pivot + 1) * 2 * k),
                       aug.begin() + static_cast<std::ptrdiff_t>(col * 2 * k));
    }

    // Scale pivot row to 1.
    Gf* prow = aug.data() + col * 2 * k;
    const Gf inv = Gf256::inv(prow[col]);
    Gf256::mul_row(prow, prow, 2 * k, inv);

    // Eliminate other rows — a row-wide multiply-accumulate per row.
    for (std::size_t r = 0; r < k; ++r) {
      if (r == col) continue;
      Gf* rrow = aug.data() + r * 2 * k;
      const Gf factor = rrow[col];
      if (factor == 0) continue;
      Gf256::mul_add_row(rrow, prow, 2 * k, factor);
    }
  }

  for (std::size_t i = 0; i < k; ++i) {
    std::memcpy(m + i * k, aug.data() + i * 2 * k + k, k);
  }
  return true;
}

bool invert_matrix(std::vector<std::vector<Gf>>& m) {
  const std::size_t k = m.size();
  for (auto& r : m) {
    if (r.size() != k) return false;
  }
  std::vector<Gf> flat(k * k);
  for (std::size_t i = 0; i < k; ++i) std::memcpy(flat.data() + i * k, m[i].data(), k);
  std::vector<Gf> aug;
  if (!invert_matrix_flat(flat.data(), k, aug)) return false;
  for (std::size_t i = 0; i < k; ++i) std::memcpy(m[i].data(), flat.data() + i * k, k);
  return true;
}

ReedSolomon::ReedSolomon(std::uint32_t data_shards, std::uint32_t total_shards)
    : k_(data_shards), n_(total_shards) {
  util::expects(k_ >= 1, "need at least one data shard");
  util::expects(n_ >= k_, "total shards must be >= data shards");
  util::expects(n_ <= 255, "GF(256) Reed-Solomon supports at most 255 shards");

  // Vandermonde rows: V[r][c] = (r+1)^c. (Row value r+1 avoids the all-zero
  // row for r = 0 power progression degeneracy; any distinct non-zero
  // evaluation points work.)
  std::vector<Gf> vand(static_cast<std::size_t>(n_) * k_, 0);
  for (std::uint32_t r = 0; r < n_; ++r) {
    for (std::uint32_t c = 0; c < k_; ++c) {
      vand[static_cast<std::size_t>(r) * k_ + c] = Gf256::pow(static_cast<Gf>(r + 1), c);
    }
  }

  // Row-reduce so the top k×k block becomes the identity (systematic form):
  // multiply the whole matrix by inverse(top block). Any k rows of the result
  // remain invertible because it differs from Vandermonde by a nonsingular
  // right factor.
  std::vector<Gf> top(vand.begin(), vand.begin() + static_cast<std::ptrdiff_t>(k_) * k_);
  std::vector<Gf> aug;
  const bool ok = invert_matrix_flat(top.data(), k_, aug);
  util::ensures(ok, "Vandermonde top block must be invertible");

  matrix_.assign(static_cast<std::size_t>(n_) * k_, 0);
  for (std::uint32_t r = 0; r < n_; ++r) {
    for (std::uint32_t c = 0; c < k_; ++c) {
      Gf acc = 0;
      for (std::uint32_t i = 0; i < k_; ++i) {
        acc = Gf256::add(acc, Gf256::mul(vand[static_cast<std::size_t>(r) * k_ + i],
                                         top[static_cast<std::size_t>(i) * k_ + c]));
      }
      matrix_[static_cast<std::size_t>(r) * k_ + c] = acc;
    }
  }
}

std::size_t ReedSolomon::shard_size(std::size_t message_size) const {
  const std::size_t with_header = message_size + 4;
  return (with_header + k_ - 1) / k_;
}

EncodedShards ReedSolomon::encode_into(std::span<const std::uint8_t> message,
                                       RsScratch& scratch) const {
  const auto t0 = obs::mono_now_ns();
  const std::size_t width = shard_size(message.size());

  // Layout: u32 length || message || zero padding, split row-major into k rows.
  scratch.padded.assign(width * k_, 0);
  const auto len = static_cast<std::uint32_t>(message.size());
  for (int i = 0; i < 4; ++i) scratch.padded[i] = static_cast<std::uint8_t>(len >> (8 * i));
  if (!message.empty()) {
    // (guarded: memcpy from a null data() of an empty span is UB)
    std::memcpy(scratch.padded.data() + 4, message.data(), message.size());
  }

  scratch.inputs.resize(k_);
  for (std::uint32_t c = 0; c < k_; ++c) scratch.inputs[c] = scratch.padded.data() + c * width;

  // The top k×k block is the identity, so the first k output rows equal the
  // input rows: memcpy them and run the kernel only over the parity rows.
  // Large parity blocks fan out across the worker pool by byte range (the
  // leader's datablock-dispersal hot path); the output is byte-identical for
  // every pool size.
  scratch.coded.resize(static_cast<std::size_t>(n_) * width);
  std::memcpy(scratch.coded.data(), scratch.padded.data(), width * k_);
  if (n_ > k_) {
    matrix_apply_parallel(row(k_), n_ - k_, k_, scratch.inputs.data(), width,
                          scratch.coded.data() + static_cast<std::size_t>(k_) * width);
  }
  encode_hist().record_since(t0);
  return EncodedShards{scratch.coded.data(), width, n_};
}

std::vector<Shard> ReedSolomon::encode(std::span<const std::uint8_t> message) const {
  RsScratch scratch;
  const EncodedShards enc = encode_into(message, scratch);
  std::vector<Shard> out(n_);
  for (std::uint32_t r = 0; r < n_; ++r) {
    const auto view = enc.shard(r);
    out[r] = Shard{r, util::Bytes(view.begin(), view.end())};
  }
  return out;
}

bool ReedSolomon::decode_into(std::span<const ShardView> shards, RsScratch& scratch,
                              util::Bytes& out) const {
  // Select the first k distinct, in-range shards of consistent size.
  auto& chosen = scratch.chosen;
  chosen.clear();
  for (const auto& s : shards) {
    if (s.index >= n_) continue;
    const bool dup = std::any_of(chosen.begin(), chosen.end(),
                                 [&](const ShardView* c) { return c->index == s.index; });
    if (dup) continue;
    if (!chosen.empty() && s.data.size() != chosen.front()->data.size()) continue;
    chosen.push_back(&s);
    if (chosen.size() == k_) break;
  }
  if (chosen.size() < k_) return false;
  const std::size_t width = chosen.front()->data.size();
  if (width == 0) return false;

  // Systematic fast path: k distinct in-range indices all below k means we
  // hold every data row, so reassembly is pure memcpy — no submatrix
  // inversion and no kernel work (ROADMAP: decode fast path).
  const auto t0 = obs::mono_now_ns();
  bool all_systematic = true;
  for (const auto* c : chosen) all_systematic = all_systematic && c->index < k_;
  if (all_systematic) {
    scratch.padded.resize(width * k_);
    for (const auto* c : chosen) {
      std::memcpy(scratch.padded.data() + static_cast<std::size_t>(c->index) * width,
                  c->data.data(), width);
    }
    const bool ok = unpack_padded(scratch.padded, out);
    if (ok) decode_hist().record_since(t0);
    return ok;
  }

  // Invert the k×k submatrix of the rows we actually hold.
  scratch.sub.resize(static_cast<std::size_t>(k_) * k_);
  for (std::uint32_t i = 0; i < k_; ++i) {
    std::memcpy(scratch.sub.data() + static_cast<std::size_t>(i) * k_, row(chosen[i]->index),
                k_);
  }
  if (!invert_matrix_flat(scratch.sub.data(), k_, scratch.aug)) return false;

  scratch.inputs.resize(k_);
  for (std::uint32_t i = 0; i < k_; ++i) scratch.inputs[i] = chosen[i]->data.data();

  // Reconstruct the k data rows directly into a contiguous padded buffer —
  // row c lands at offset c*width, so no reassembly copy is needed. The
  // inversion apply has the same column-sliceable shape as encode, so large
  // recoveries fan out across the worker pool by byte range (byte-identical
  // to the serial apply for any pool size).
  scratch.padded.resize(width * k_);
  matrix_apply_parallel(scratch.sub.data(), k_, k_, scratch.inputs.data(), width,
                        scratch.padded.data());
  const bool ok = unpack_padded(scratch.padded, out);
  if (ok) decode_hist().record_since(t0);
  return ok;
}

std::optional<util::Bytes> ReedSolomon::decode(std::span<const Shard> shards) const {
  std::vector<ShardView> views(shards.size());
  for (std::size_t i = 0; i < shards.size(); ++i) {
    views[i] = ShardView{shards[i].index, shards[i].data};
  }
  RsScratch scratch;
  util::Bytes out;
  if (!decode_into(views, scratch, out)) return std::nullopt;
  return out;
}

}  // namespace leopard::erasure
