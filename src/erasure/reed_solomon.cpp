#include "erasure/reed_solomon.hpp"

#include <algorithm>
#include <cstring>

#include "util/check.hpp"

namespace leopard::erasure {

namespace {

/// Multiplies an r×k GF matrix by a k×w byte matrix (shards as rows).
void matrix_apply(const std::vector<std::vector<Gf>>& rows,
                  const std::vector<const std::uint8_t*>& inputs, std::size_t width,
                  std::vector<util::Bytes>& outputs) {
  outputs.resize(rows.size());
  for (std::size_t r = 0; r < rows.size(); ++r) {
    auto& out = outputs[r];
    out.assign(width, 0);
    for (std::size_t c = 0; c < rows[r].size(); ++c) {
      const Gf coef = rows[r][c];
      if (coef == 0) continue;
      const std::uint8_t* in = inputs[c];
      for (std::size_t b = 0; b < width; ++b) {
        out[b] = Gf256::add(out[b], Gf256::mul(coef, in[b]));
      }
    }
  }
}

}  // namespace

bool invert_matrix(std::vector<std::vector<Gf>>& m) {
  const std::size_t k = m.size();
  for (auto& r : m) {
    if (r.size() != k) return false;
  }

  // Augment with identity.
  std::vector<std::vector<Gf>> aug(k, std::vector<Gf>(2 * k, 0));
  for (std::size_t i = 0; i < k; ++i) {
    std::copy(m[i].begin(), m[i].end(), aug[i].begin());
    aug[i][k + i] = 1;
  }

  for (std::size_t col = 0; col < k; ++col) {
    // Find pivot.
    std::size_t pivot = col;
    while (pivot < k && aug[pivot][col] == 0) ++pivot;
    if (pivot == k) return false;  // singular
    std::swap(aug[pivot], aug[col]);

    // Scale pivot row to 1.
    const Gf inv = Gf256::inv(aug[col][col]);
    for (auto& v : aug[col]) v = Gf256::mul(v, inv);

    // Eliminate other rows.
    for (std::size_t r = 0; r < k; ++r) {
      if (r == col || aug[r][col] == 0) continue;
      const Gf factor = aug[r][col];
      for (std::size_t c = 0; c < 2 * k; ++c) {
        aug[r][c] = Gf256::add(aug[r][c], Gf256::mul(factor, aug[col][c]));
      }
    }
  }

  for (std::size_t i = 0; i < k; ++i) {
    std::copy(aug[i].begin() + static_cast<std::ptrdiff_t>(k), aug[i].end(), m[i].begin());
  }
  return true;
}

ReedSolomon::ReedSolomon(std::uint32_t data_shards, std::uint32_t total_shards)
    : k_(data_shards), n_(total_shards) {
  util::expects(k_ >= 1, "need at least one data shard");
  util::expects(n_ >= k_, "total shards must be >= data shards");
  util::expects(n_ <= 255, "GF(256) Reed-Solomon supports at most 255 shards");

  // Vandermonde rows: V[r][c] = (r+1)^c. (Row value r+1 avoids the all-zero
  // row for r = 0 power progression degeneracy; any distinct non-zero
  // evaluation points work.)
  std::vector<std::vector<Gf>> vand(n_, std::vector<Gf>(k_, 0));
  for (std::uint32_t r = 0; r < n_; ++r) {
    for (std::uint32_t c = 0; c < k_; ++c) {
      vand[r][c] = Gf256::pow(static_cast<Gf>(r + 1), c);
    }
  }

  // Row-reduce so the top k×k block becomes the identity (systematic form):
  // multiply the whole matrix by inverse(top block). Any k rows of the result
  // remain invertible because it differs from Vandermonde by a nonsingular
  // right factor.
  std::vector<std::vector<Gf>> top(vand.begin(), vand.begin() + k_);
  const bool ok = invert_matrix(top);
  util::ensures(ok, "Vandermonde top block must be invertible");

  matrix_.assign(n_, std::vector<Gf>(k_, 0));
  for (std::uint32_t r = 0; r < n_; ++r) {
    for (std::uint32_t c = 0; c < k_; ++c) {
      Gf acc = 0;
      for (std::uint32_t i = 0; i < k_; ++i) {
        acc = Gf256::add(acc, Gf256::mul(vand[r][i], top[i][c]));
      }
      matrix_[r][c] = acc;
    }
  }
}

std::size_t ReedSolomon::shard_size(std::size_t message_size) const {
  const std::size_t with_header = message_size + 4;
  return (with_header + k_ - 1) / k_;
}

std::vector<Shard> ReedSolomon::encode(std::span<const std::uint8_t> message) const {
  const std::size_t width = shard_size(message.size());

  // Layout: u32 length || message || zero padding, split row-major into k rows.
  util::Bytes padded(width * k_, 0);
  const auto len = static_cast<std::uint32_t>(message.size());
  for (int i = 0; i < 4; ++i) padded[i] = static_cast<std::uint8_t>(len >> (8 * i));
  std::memcpy(padded.data() + 4, message.data(), message.size());

  std::vector<const std::uint8_t*> inputs(k_);
  for (std::uint32_t c = 0; c < k_; ++c) inputs[c] = padded.data() + c * width;

  std::vector<util::Bytes> coded;
  matrix_apply(matrix_, inputs, width, coded);

  std::vector<Shard> out(n_);
  for (std::uint32_t r = 0; r < n_; ++r) {
    out[r] = Shard{r, std::move(coded[r])};
  }
  return out;
}

std::optional<util::Bytes> ReedSolomon::decode(std::span<const Shard> shards) const {
  // Select the first k distinct, in-range shards of consistent size.
  std::vector<const Shard*> chosen;
  for (const auto& s : shards) {
    if (s.index >= n_) continue;
    const bool dup = std::any_of(chosen.begin(), chosen.end(),
                                 [&](const Shard* c) { return c->index == s.index; });
    if (dup) continue;
    if (!chosen.empty() && s.data.size() != chosen.front()->data.size()) continue;
    chosen.push_back(&s);
    if (chosen.size() == k_) break;
  }
  if (chosen.size() < k_) return std::nullopt;
  const std::size_t width = chosen.front()->data.size();
  if (width == 0) return std::nullopt;

  // Invert the k×k submatrix of the rows we actually hold.
  std::vector<std::vector<Gf>> sub(k_, std::vector<Gf>(k_));
  for (std::uint32_t i = 0; i < k_; ++i) sub[i] = matrix_[chosen[i]->index];
  if (!invert_matrix(sub)) return std::nullopt;

  std::vector<const std::uint8_t*> inputs(k_);
  for (std::uint32_t i = 0; i < k_; ++i) inputs[i] = chosen[i]->data.data();

  std::vector<util::Bytes> data_rows;
  matrix_apply(sub, inputs, width, data_rows);

  // Reassemble and strip the length header + padding.
  util::Bytes padded;
  padded.reserve(width * k_);
  for (const auto& row : data_rows) padded.insert(padded.end(), row.begin(), row.end());

  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i) len |= static_cast<std::uint32_t>(padded[i]) << (8 * i);
  if (len + 4 > padded.size()) return std::nullopt;  // corrupt/mismatched shards
  return util::Bytes(padded.begin() + 4, padded.begin() + 4 + len);
}

}  // namespace leopard::erasure
