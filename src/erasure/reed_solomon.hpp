// Systematic Reed-Solomon erasure code over GF(2^8): a message split into
// `data_shards` chunks is extended to `total_shards` chunks such that ANY
// `data_shards` of them reconstruct the message. Leopard uses (f+1, n) codes
// so a missing datablock of α bits costs each responder only ≈ α/(f+1) bits
// (§IV Datablock Retrieval, §V case (b)).
//
// Construction: an n×k Vandermonde matrix row-reduced so its top k×k block is
// the identity (systematic form). Every k×k submatrix of a Vandermonde-derived
// matrix is invertible, which yields the any-k-of-n decoding property.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "erasure/gf256.hpp"
#include "util/bytes.hpp"

namespace leopard::erasure {

/// A single erasure-coded chunk: its index within [0, total_shards) plus data.
struct Shard {
  std::uint32_t index = 0;
  util::Bytes data;
};

class ReedSolomon {
 public:
  /// `data_shards` = k (f+1 in Leopard), `total_shards` = n; requires
  /// 1 <= k <= n <= 255 (field-size limit of GF(2^8)).
  ReedSolomon(std::uint32_t data_shards, std::uint32_t total_shards);

  [[nodiscard]] std::uint32_t data_shards() const { return k_; }
  [[nodiscard]] std::uint32_t total_shards() const { return n_; }

  /// Encodes a message into `total_shards` shards. A 4-byte length header is
  /// prepended internally so decode() can strip padding.
  [[nodiscard]] std::vector<Shard> encode(std::span<const std::uint8_t> message) const;

  /// Size in bytes of each shard produced for a message of `message_size`.
  [[nodiscard]] std::size_t shard_size(std::size_t message_size) const;

  /// Reconstructs the message from any >= data_shards distinct valid shards.
  /// Returns nullopt if there are not enough distinct in-range shards or the
  /// shard sizes disagree. (Corrupted-but-well-formed shards yield a wrong
  /// message; callers authenticate shards via Merkle proofs, Algorithm 3.)
  [[nodiscard]] std::optional<util::Bytes> decode(std::span<const Shard> shards) const;

 private:
  /// Row `r` of the systematic encoding matrix (length k).
  [[nodiscard]] const std::vector<Gf>& row(std::uint32_t r) const { return matrix_[r]; }

  std::uint32_t k_;
  std::uint32_t n_;
  std::vector<std::vector<Gf>> matrix_;  // n rows × k cols, top k×k = identity
};

/// Inverts a square GF(256) matrix in place; returns false if singular.
/// Exposed for tests.
bool invert_matrix(std::vector<std::vector<Gf>>& m);

}  // namespace leopard::erasure
