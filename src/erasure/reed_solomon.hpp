// Systematic Reed-Solomon erasure code over GF(2^8): a message split into
// `data_shards` chunks is extended to `total_shards` chunks such that ANY
// `data_shards` of them reconstruct the message. Leopard uses (f+1, n) codes
// so a missing datablock of α bits costs each responder only ≈ α/(f+1) bits
// (§IV Datablock Retrieval, §V case (b)).
//
// Construction: an n×k Vandermonde matrix row-reduced so its top k×k block is
// the identity (systematic form). Every k×k submatrix of a Vandermonde-derived
// matrix is invertible, which yields the any-k-of-n decoding property.
//
// Two API tiers:
//   encode()/decode()           — allocating, value-returning (legacy callers,
//                                 tests, one-shot use);
//   encode_into()/decode_into() — allocation-free hot path. All working
//                                 storage lives in a caller-owned RsScratch
//                                 arena that is reused across calls, and
//                                 inputs/outputs are spans over existing
//                                 buffers (no per-shard copies).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "erasure/gf256.hpp"
#include "util/bytes.hpp"

namespace leopard::erasure {

/// A single erasure-coded chunk: its index within [0, total_shards) plus data.
struct Shard {
  std::uint32_t index = 0;
  util::Bytes data;
};

/// Non-owning view of a shard; the zero-copy decode input.
struct ShardView {
  std::uint32_t index = 0;
  std::span<const std::uint8_t> data;
};

/// Reusable working storage for encode_into/decode_into. One scratch may be
/// shared by any number of sequential calls (it grows to the high-water mark
/// and never shrinks); it is not thread-safe.
class RsScratch {
 public:
  RsScratch() = default;

 private:
  friend class ReedSolomon;
  util::Bytes padded;                        // header+message+padding (k rows)
  util::Bytes coded;                         // encode output arena (n rows)
  std::vector<Gf> sub;                       // decode k×k submatrix, flat
  std::vector<Gf> aug;                       // k×2k inversion workspace
  std::vector<const std::uint8_t*> inputs;   // row pointers
  std::vector<const ShardView*> chosen;      // selected decode shards
};

/// Result of encode_into: `count` shards of `width` bytes laid out
/// contiguously in the scratch arena (shard i at base + i*width). Views stay
/// valid until the next encode_into/decode_into on the same scratch.
struct EncodedShards {
  const std::uint8_t* base = nullptr;
  std::size_t width = 0;
  std::uint32_t count = 0;

  [[nodiscard]] std::span<const std::uint8_t> shard(std::uint32_t i) const {
    return {base + static_cast<std::size_t>(i) * width, width};
  }
  /// The whole arena: count*width bytes, shards back to back.
  [[nodiscard]] std::span<const std::uint8_t> bytes() const {
    return {base, static_cast<std::size_t>(count) * width};
  }
};

class ReedSolomon {
 public:
  /// `data_shards` = k (f+1 in Leopard), `total_shards` = n; requires
  /// 1 <= k <= n <= 255 (field-size limit of GF(2^8)).
  ReedSolomon(std::uint32_t data_shards, std::uint32_t total_shards);

  [[nodiscard]] std::uint32_t data_shards() const { return k_; }
  [[nodiscard]] std::uint32_t total_shards() const { return n_; }

  /// Encodes a message into `total_shards` shards. A 4-byte length header is
  /// prepended internally so decode() can strip padding.
  [[nodiscard]] std::vector<Shard> encode(std::span<const std::uint8_t> message) const;

  /// Zero-copy encode: shards are written into `scratch` and returned as
  /// views. No allocation once the scratch has warmed up.
  EncodedShards encode_into(std::span<const std::uint8_t> message, RsScratch& scratch) const;

  /// Size in bytes of each shard produced for a message of `message_size`.
  [[nodiscard]] std::size_t shard_size(std::size_t message_size) const;

  /// Reconstructs the message from any >= data_shards distinct valid shards.
  /// Returns nullopt if there are not enough distinct in-range shards or the
  /// shard sizes disagree. (Corrupted-but-well-formed shards yield a wrong
  /// message; callers authenticate shards via Merkle proofs, Algorithm 3.)
  [[nodiscard]] std::optional<util::Bytes> decode(std::span<const Shard> shards) const;

  /// Zero-copy decode: reads shard views in place, reconstructs into `out`
  /// (reusing its capacity). Returns false on the same conditions decode()
  /// returns nullopt.
  bool decode_into(std::span<const ShardView> shards, RsScratch& scratch,
                   util::Bytes& out) const;

 private:
  /// Row `r` of the systematic encoding matrix (length k).
  [[nodiscard]] const Gf* row(std::uint32_t r) const { return matrix_.data() + r * k_; }

  std::uint32_t k_;
  std::uint32_t n_;
  std::vector<Gf> matrix_;  // flat n×k row-major, top k×k = identity
};

/// Inverts a k×k row-major GF(256) matrix in place using `aug` (resized to
/// k×2k) as workspace; returns false if singular.
bool invert_matrix_flat(Gf* m, std::size_t k, std::vector<Gf>& aug);

/// Inverts a square GF(256) matrix in place; returns false if singular.
/// Exposed for tests.
bool invert_matrix(std::vector<std::vector<Gf>>& m);

}  // namespace leopard::erasure
