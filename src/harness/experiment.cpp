#include "harness/experiment.hpp"

#include <algorithm>
#include <cmath>

#include "core/client.hpp"
#include "crypto/threshold_sig.hpp"
#include "protocol/factory.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"
#include "util/check.hpp"
#include "util/worker_pool.hpp"

namespace leopard::harness {

const char* protocol_name(Protocol p) {
  switch (p) {
    case Protocol::kLeopard: return "Leopard";
    case Protocol::kHotStuff: return "HotStuff";
    case Protocol::kPbft: return "PBFT";
  }
  return "?";
}

double ComponentBandwidth::total_send() const {
  double sum = 0;
  for (const auto v : send_bps) sum += v;
  return sum;
}

double ComponentBandwidth::total_recv() const {
  double sum = 0;
  for (const auto v : recv_bps) sum += v;
  return sum;
}

namespace {

constexpr std::size_t kComponents = static_cast<std::size_t>(sim::Component::kCount);

double leopard_capacity(const ExperimentConfig& cfg, const sim::CostModel& c) {
  const double n = cfg.n;
  const double payload = cfg.payload_size;
  // Per-request CPU at a (receive-bound) replica, in ns.
  const double cpu_ns = static_cast<double>(c.datablock_per_request) +
                        static_cast<double>(c.execute_per_request) +
                        c.recv_per_byte_ns * payload + c.hash_per_byte_ns * payload +
                        c.send_per_byte_ns * payload +
                        static_cast<double>(c.client_request_ingress) / (n - 1.0);
  // Leader extra: per-agreement-instance vote processing and proof/proposal
  // multicasts, amortized over the τ·α requests each BFTblock covers. This
  // is what makes tiny BFTblocks expensive at large n (Fig. 7).
  const double quorum = 2.0 * std::floor((n - 1.0) / 3.0) + 1.0;
  const double per_block_ns =
      2.0 * (n - 1.0) *
          static_cast<double>(c.recv_per_msg + c.share_verify) +
      2.0 * (static_cast<double>(c.combine_base) +
             quorum * static_cast<double>(c.combine_per_share)) +
      3.0 * (n - 1.0) * static_cast<double>(c.send_per_msg);
  const double reqs_per_block =
      static_cast<double>(cfg.bftblock_links) * cfg.datablock_requests;
  // Per-datablock ready processing at the leader, amortized over α.
  const double per_datablock_ns = (n - 1.0) * static_cast<double>(c.recv_per_msg);
  const double leader_cpu_ns = cpu_ns + per_block_ns / reqs_per_block +
                               per_datablock_ns / cfg.datablock_requests;
  const double cpu_cap = 1e9 / leader_cpu_ns;
  // NIC: each replica both sends and receives ≈ Λ request-wire bits/s of
  // datablocks (§V: c_R ≈ 2 per confirmed bit, split across directions).
  // The on-wire request carries a 20-byte header; client ingress shares the
  // receive side.
  const double wire_bits = (payload + 20.0) * 8.0;
  const double send_per_bit = 1.0;
  const double recv_per_bit = (n - 2.0) / (n - 1.0) + 1.0 / (n - 1.0);
  const double nic_cap =
      cfg.shared_duplex
          ? cfg.bandwidth_bps / ((send_per_bit + recv_per_bit) * wire_bits)
          : cfg.bandwidth_bps / (std::max(send_per_bit, recv_per_bit) * wire_bits);
  return std::min(cpu_cap, nic_cap);
}

double baseline_capacity(const ExperimentConfig& cfg, const sim::CostModel& c,
                         bool aggregated_votes) {
  const double n = cfg.n;
  const double payload = cfg.payload_size;
  const double batch = cfg.batch_size;
  const double quorum = 2.0 * std::floor((n - 1.0) / 3.0) + 1.0;

  // Leader CPU per request (ns): ingress, hashing, per-copy egress
  // serialization, and vote processing amortized over the batch.
  const double vote_count = aggregated_votes ? (n - 1.0) : 2.0 * (n - 1.0);
  const double vote_cpu = aggregated_votes
                              ? (n - 1.0) * static_cast<double>(c.share_verify) +
                                    static_cast<double>(c.combine_base) +
                                    quorum * static_cast<double>(c.combine_per_share)
                              : 2.0 * (n - 1.0) * 3000.0;  // MAC-vector checks
  const double leader_cpu_ns =
      static_cast<double>(c.client_request_ingress) + c.hash_per_byte_ns * payload +
      static_cast<double>(c.execute_per_request) +
      (n - 1.0) * c.send_per_byte_ns * payload +
      (vote_cpu + vote_count * static_cast<double>(c.recv_per_msg) +
       (n - 1.0) * static_cast<double>(c.send_per_msg)) /
          batch;
  const double leader_cpu_cap = 1e9 / leader_cpu_ns;

  // Leader NIC egress: n−1 full copies of every request; under a shared link
  // client ingress rides the same capacity.
  const double wire_bits = (payload + 20.0) * 8.0;
  const double leader_nic_cap =
      cfg.bandwidth_bps / (((n - 1.0) + (cfg.shared_duplex ? 1.0 : 0.0)) * wire_bits);

  // Replica CPU per request.
  const double extra_vote_cpu =
      aggregated_votes ? 0.0
                       : (2.0 * (n - 1.0) *
                          (static_cast<double>(c.send_per_msg) + 3000.0 +
                           static_cast<double>(c.recv_per_msg))) /
                             batch;
  const double replica_cpu_ns = static_cast<double>(c.block_per_request) +
                                c.recv_per_byte_ns * payload +
                                static_cast<double>(c.execute_per_request) + extra_vote_cpu;
  const double replica_cpu_cap = 1e9 / replica_cpu_ns;
  const double replica_nic_cap = cfg.bandwidth_bps / wire_bits;

  return std::min(std::min(leader_cpu_cap, leader_nic_cap),
                  std::min(replica_cpu_cap, replica_nic_cap));
}

ComponentBandwidth breakdown_for(const sim::TrafficAccountant& traffic, sim::NodeId node,
                                 sim::SimTime now) {
  ComponentBandwidth out;
  const double window = sim::to_seconds(now - traffic.measurement_start());
  if (window <= 0) return out;
  for (std::size_t comp = 0; comp < kComponents; ++comp) {
    out.send_bps[comp] = static_cast<double>(traffic.bytes(
                             node, sim::Direction::kSend, static_cast<sim::Component>(comp))) *
                         8.0 / window;
    out.recv_bps[comp] = static_cast<double>(traffic.bytes(
                             node, sim::Direction::kReceive, static_cast<sim::Component>(comp))) *
                         8.0 / window;
  }
  return out;
}

std::uint64_t component_bytes(const sim::TrafficAccountant& traffic, sim::NodeId node,
                              sim::Direction dir, std::initializer_list<sim::Component> comps) {
  std::uint64_t sum = 0;
  for (const auto c : comps) sum += traffic.bytes(node, dir, c);
  return sum;
}

}  // namespace

double estimate_capacity(const ExperimentConfig& cfg) {
  const sim::CostModel costs;  // defaults used by run_experiment
  switch (cfg.protocol) {
    case Protocol::kLeopard: return leopard_capacity(cfg, costs);
    case Protocol::kHotStuff: return baseline_capacity(cfg, costs, true);
    case Protocol::kPbft: return baseline_capacity(cfg, costs, false);
  }
  return 0;
}

ExperimentResult run_experiment(const ExperimentConfig& cfg) {
  util::expects(cfg.n >= 4, "experiments require n >= 4");

  // Size the compute pool for this run. Deterministic for any value: the
  // pool only accelerates pure kernels (erasure encode, Merkle hashing)
  // whose outputs are byte-identical at every lane count, and simulated CPU
  // costs come from the CostModel, not wall clock.
  util::WorkerPool::global().resize(std::max<std::uint32_t>(cfg.encode_workers, 1));

  sim::Simulator sim;
  sim::NetworkConfig net_cfg;
  net_cfg.default_out_bps = cfg.bandwidth_bps;
  net_cfg.default_in_bps = cfg.bandwidth_bps;
  net_cfg.shared_duplex = cfg.shared_duplex;
  sim::Network net(sim, net_cfg);

  const std::uint32_t f = (cfg.n - 1) / 3;
  const crypto::ThresholdScheme ts(cfg.n, 2 * f + 1, cfg.seed);
  core::ProtocolMetrics metrics;

  const bool leopard = cfg.protocol == Protocol::kLeopard;
  const sim::NodeId leader_id = leopard ? 1 % cfg.n : 0;

  // Auto-saturation. Leopard runs with a standing client backlog that keeps
  // every datablock at full size, so the offered rate must sit just BELOW
  // capacity — any structural excess grows every replica's CPU queue without
  // bound and pushes confirmation latency past the measurement window.
  // The baselines shed cheaply at the leader, so a slight overshoot is safe
  // and keeps their batches full.
  double saturation = 1.15;
  if (leopard) saturation = 0.97;
  if (cfg.shared_duplex) saturation = 0.90;  // shared links queue badly near rho=1
  const double offered =
      cfg.offered_load > 0 ? cfg.offered_load : saturation * estimate_capacity(cfg);

  // --- Build replicas ------------------------------------------------------
  // Protocol-generic construction: translate the experiment knobs into a
  // ProtocolSpec once, then stamp out sans-I/O cores behind SimEnv adapters.
  protocol::ProtocolSpec base_spec;
  if (leopard) {
    core::LeopardConfig lcfg;
    lcfg.n = cfg.n;
    lcfg.datablock_requests = cfg.datablock_requests;
    lcfg.bftblock_links = cfg.bftblock_links;
    lcfg.payload_size = cfg.payload_size;
    lcfg.mempool_capacity = std::max<std::uint32_t>(3 * cfg.datablock_requests, 4000);
    lcfg.enable_ready_round = cfg.enable_ready_round;
    lcfg.encode_workers = cfg.encode_workers;
    if (cfg.proposal_max_wait > 0) lcfg.proposal_max_wait = cfg.proposal_max_wait;
    if (cfg.view_timeout > 0) {
      lcfg.view_timeout = cfg.view_timeout;
    } else if (!cfg.crash_leader_at) {
      // Throughput experiments under saturation: queues legitimately run
      // deep during the fill phase at large n. The paper requires the
      // view-change timer be "set appropriately ... to avoid switching to
      // a new view too frequently"; disable spurious switches unless the
      // experiment is about the view-change itself.
      lcfg.view_timeout = 3600 * sim::kSecond;
    }
    base_spec.config = lcfg;
  } else if (cfg.protocol == Protocol::kHotStuff) {
    baselines::HotStuffConfig hcfg;
    hcfg.n = cfg.n;
    hcfg.batch_size = cfg.batch_size;
    hcfg.payload_size = cfg.payload_size;
    base_spec.config = hcfg;
  } else {
    baselines::PbftConfig pcfg;
    pcfg.n = cfg.n;
    pcfg.batch_size = cfg.batch_size;
    pcfg.payload_size = cfg.payload_size;
    base_spec.config = pcfg;
  }

  std::vector<protocol::SimReplica> replicas;
  replicas.reserve(cfg.n);

  std::uint32_t byz_assigned = 0;
  for (std::uint32_t id = 0; id < cfg.n; ++id) {
    auto spec = base_spec;
    if (id != leader_id && id != 0 && byz_assigned < cfg.byzantine_count) {
      spec.byzantine = cfg.byzantine_spec;
      ++byz_assigned;
    }
    if (cfg.crash_leader_at && id == leader_id) spec.byzantine.crash_at = *cfg.crash_leader_at;

    replicas.push_back(protocol::make_sim_replica(net, metrics, spec, ts, id));
  }

  // --- Build clients --------------------------------------------------------
  std::vector<protocol::SimClient> clients;
  if (leopard) {
    const double per_group = offered / static_cast<double>(cfg.n - 1);
    // Saturation requires the mempool pinned at capacity from t = 0 so every
    // datablock fills to α (the paper stress-tests "with a saturated request
    // rate"); without the standing backlog, large-n runs degrade into tiny
    // timer-flushed datablocks and the ready round floods the leader.
    const auto backlog = std::max<std::uint32_t>(3 * cfg.datablock_requests, 4000);
    for (std::uint32_t id = 0; id < cfg.n; ++id) {
      if (id == leader_id) continue;  // clients submit to non-leader replicas
      core::ClientConfig ccfg;
      ccfg.request_rate = per_group;
      ccfg.payload_size = cfg.payload_size;
      ccfg.resubmit_timeout = cfg.client_resubmit_timeout;
      ccfg.initial_backlog = backlog;
      clients.push_back(protocol::make_sim_client(net, metrics, ccfg, id, cfg.n, leader_id,
                                                  cfg.seed + 1000 + id));
    }
  } else {
    core::ClientConfig ccfg;
    ccfg.request_rate = offered;
    ccfg.payload_size = cfg.payload_size;
    ccfg.initial_backlog = 2 * cfg.batch_size;
    clients.push_back(protocol::make_sim_client(net, metrics, ccfg, leader_id, cfg.n,
                                                cfg.n /*avoid: none*/, cfg.seed + 999));
  }

  // --- Windows ---------------------------------------------------------------
  sim::SimTime warmup = cfg.warmup;
  sim::SimTime measure = cfg.measure;
  if (leopard) {
    const double block_period_sec =
        static_cast<double>(cfg.bftblock_links) * cfg.datablock_requests / offered;
    // The initial standing backlog is a one-off CPU shock at every replica;
    // warmup must cover draining it plus at least one consensus cadence.
    const double backlog_total =
        static_cast<double>(std::max<std::uint32_t>(3 * cfg.datablock_requests, 4000)) *
        (cfg.n - 1);
    const double backlog_drain_sec = backlog_total / offered;
    if (warmup == 0) {
      warmup = sim::from_seconds(
          std::max(2.0, 2.0 + 2.0 * block_period_sec + backlog_drain_sec));
    }
    if (measure == 0) {
      // BFTblocks confirm in bursts of τ·α requests; the window must span
      // several bursts or quantization dominates the measurement.
      measure = sim::from_seconds(std::max(4.0, 4.0 * block_period_sec));
    }
  } else {
    if (warmup == 0) warmup = 2 * sim::kSecond;
    if (measure == 0) measure = 4 * sim::kSecond;
  }

  // --- Run ---------------------------------------------------------------------
  net.start_all();
  sim.run_until(warmup);

  net.traffic().mark_measurement_start(sim.now());
  core::ProtocolMetrics baseline = metrics;
  metrics.latency_hist.reset();  // percentiles from the window only

  sim.run_until(warmup + measure);
  const auto now = sim.now();
  const double window_sec = sim::to_seconds(measure);

  // --- Aggregate ------------------------------------------------------------------
  ExperimentResult r;
  r.offered_load = offered;
  r.measured_for = measure;
  r.executed_requests = metrics.executed_requests - baseline.executed_requests;
  r.acked_requests = metrics.acked_requests - baseline.acked_requests;
  r.throughput_kreqs = static_cast<double>(r.executed_requests) / window_sec / 1e3;
  r.throughput_mbps =
      static_cast<double>(r.executed_requests) * cfg.payload_size * 8.0 / window_sec / 1e6;

  if (r.acked_requests > 0) {
    r.mean_latency_sec =
        (metrics.latency_sum_sec - baseline.latency_sum_sec) / static_cast<double>(r.acked_requests);
  }
  r.p50_latency_sec = metrics.latency_percentile(0.50);
  r.p99_latency_sec = metrics.latency_percentile(0.99);

  const auto& traffic = net.traffic();
  r.leader_send_bps = traffic.bandwidth_bps(leader_id, sim::Direction::kSend, now);
  r.leader_recv_bps = traffic.bandwidth_bps(leader_id, sim::Direction::kReceive, now);
  r.leader_breakdown = breakdown_for(traffic, leader_id, now);

  std::uint32_t replica_count = 0;
  for (std::uint32_t id = 0; id < cfg.n; ++id) {
    if (id == leader_id) continue;
    const auto b = breakdown_for(traffic, id, now);
    for (std::size_t c = 0; c < kComponents; ++c) {
      r.replica_breakdown.send_bps[c] += b.send_bps[c];
      r.replica_breakdown.recv_bps[c] += b.recv_bps[c];
    }
    ++replica_count;
  }
  if (replica_count > 0) {
    for (std::size_t c = 0; c < kComponents; ++c) {
      r.replica_breakdown.send_bps[c] /= replica_count;
      r.replica_breakdown.recv_bps[c] /= replica_count;
    }
  }

  // Latency breakdown (Table IV).
  const auto bd_count = metrics.breakdown_count - baseline.breakdown_count;
  if (bd_count > 0 && r.mean_latency_sec > 0) {
    const double gen = (metrics.sum_generation_sec - baseline.sum_generation_sec) /
                       static_cast<double>(bd_count);
    const double dis = (metrics.sum_dissemination_sec - baseline.sum_dissemination_sec) /
                       static_cast<double>(bd_count);
    const double agr = (metrics.sum_agreement_sec - baseline.sum_agreement_sec) /
                       static_cast<double>(bd_count);
    const double resp = std::max(0.0, r.mean_latency_sec - gen - dis - agr);
    const double total = gen + dis + agr + resp;
    if (total > 0) {
      r.frac_generation = gen / total;
      r.frac_dissemination = dis / total;
      r.frac_agreement = agr / total;
      r.frac_response = resp / total;
    }
  }

  // Retrieval (Fig. 12 / Table V).
  r.datablocks_recovered = metrics.datablocks_recovered - baseline.datablocks_recovered;
  if (r.datablocks_recovered > 0) {
    r.mean_recovery_time_sec =
        (metrics.recovery_time_sum_sec - baseline.recovery_time_sum_sec) /
        static_cast<double>(r.datablocks_recovered);
    std::uint64_t chunk_recv = 0;
    std::uint64_t chunk_send = 0;
    for (std::uint32_t id = 0; id < cfg.n; ++id) {
      chunk_recv += traffic.bytes(id, sim::Direction::kReceive, sim::Component::kChunkResponse);
      chunk_send += traffic.bytes(id, sim::Direction::kSend, sim::Component::kChunkResponse);
    }
    r.recover_bytes_per_datablock =
        static_cast<double>(chunk_recv) / static_cast<double>(r.datablocks_recovered);
    const auto responses = metrics.chunks_sent - baseline.chunks_sent;
    if (responses > 0) {
      r.respond_bytes_per_response =
          static_cast<double>(chunk_send) / static_cast<double>(responses);
    }
  }

  // View-change (Fig. 13).
  r.view_changes = metrics.view_changes_completed - baseline.view_changes_completed;
  if (metrics.vc_triggered_at >= 0 && metrics.vc_completed_at >= metrics.vc_triggered_at) {
    r.view_change_duration_sec =
        sim::to_seconds(metrics.vc_completed_at - metrics.vc_triggered_at);
  }
  {
    const auto comps = {sim::Component::kTimeout, sim::Component::kViewChange,
                        sim::Component::kNewView};
    const sim::NodeId new_leader = leopard ? (2 % cfg.n) : 0;
    double total = 0;
    double rep_send = 0;
    double rep_recv = 0;
    std::uint32_t reps = 0;
    for (std::uint32_t id = 0; id < cfg.n; ++id) {
      const auto send = component_bytes(traffic, id, sim::Direction::kSend, comps);
      const auto recv = component_bytes(traffic, id, sim::Direction::kReceive, comps);
      total += static_cast<double>(send);
      if (id == new_leader) {
        r.vc_leader_send_bytes = static_cast<double>(send);
        r.vc_leader_recv_bytes = static_cast<double>(recv);
      } else {
        rep_send += static_cast<double>(send);
        rep_recv += static_cast<double>(recv);
        ++reps;
      }
    }
    r.vc_total_bytes = total;
    if (reps > 0) {
      r.vc_replica_send_bytes = rep_send / reps;
      r.vc_replica_recv_bytes = rep_recv / reps;
    }
  }

  r.safety_violation = metrics.safety_violation;
  return r;
}

}  // namespace leopard::harness
