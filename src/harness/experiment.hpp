// Experiment harness: builds a cluster (protocol, scale, bandwidth, batches,
// faults, workload), runs the simulation through a warmup + measurement
// window, and reports the metrics every bench and integration test consumes.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "core/byzantine.hpp"
#include "core/config.hpp"
#include "core/metrics.hpp"
#include "sim/message.hpp"
#include "sim/time.hpp"

namespace leopard::harness {

enum class Protocol { kLeopard, kHotStuff, kPbft };

const char* protocol_name(Protocol p);

struct ExperimentConfig {
  Protocol protocol = Protocol::kLeopard;
  std::uint32_t n = 4;
  std::uint32_t payload_size = 128;

  // Leopard batch parameters (Table II).
  std::uint32_t datablock_requests = 2000;
  std::uint32_t bftblock_links = 100;

  // Baseline batch parameter (Fig. 6).
  std::uint32_t batch_size = 800;

  /// Per-replica NIC capacity in bits/s. `shared_duplex` models NetEm-style
  /// throttling where send+receive share the capacity (Fig. 10).
  double bandwidth_bps = 9.8e9;
  bool shared_duplex = false;

  /// Offered load in requests/s; 0 = auto-saturate (≈1.15× estimated
  /// capacity, with a standing backlog so batches fill immediately).
  double offered_load = 0;

  /// Simulated warmup/measurement durations; 0 = choose automatically from
  /// the expected consensus cadence.
  sim::SimTime warmup = 0;
  sim::SimTime measure = 0;

  std::uint64_t seed = 1;

  /// Fault injection: the spec is applied to the first `byzantine_count`
  /// replicas that are neither the initial leader nor the observer
  /// (replica 0). `crash_leader_at` stops the initial leader to force a
  /// view-change (Fig. 13).
  std::uint32_t byzantine_count = 0;
  core::ByzantineSpec byzantine_spec;
  std::optional<sim::SimTime> crash_leader_at;

  /// Client re-submission timeout (0 = disabled).
  sim::SimTime client_resubmit_timeout = 0;

  /// Leopard timer overrides (0 = library default).
  sim::SimTime proposal_max_wait = 0;
  sim::SimTime view_timeout = 0;

  /// Ablation: disable the ready round (see LeopardConfig::enable_ready_round).
  bool enable_ready_round = true;

  /// Worker lanes for erasure-encode/Merkle-hash compute (see
  /// LeopardConfig::encode_workers). Applied to the process-global
  /// util::WorkerPool for the run; protocol output is byte-identical for any
  /// value — only wall clock changes.
  std::uint32_t encode_workers = 1;
};

/// Per-component bandwidth numbers for one role (Table III rows).
struct ComponentBandwidth {
  std::array<double, static_cast<std::size_t>(sim::Component::kCount)> send_bps{};
  std::array<double, static_cast<std::size_t>(sim::Component::kCount)> recv_bps{};
  [[nodiscard]] double total_send() const;
  [[nodiscard]] double total_recv() const;
};

struct ExperimentResult {
  // Headline numbers.
  double throughput_kreqs = 0;      // confirmed requests / s / 1000
  double throughput_mbps = 0;       // confirmed payload bits / s / 1e6
  double mean_latency_sec = 0;
  double p50_latency_sec = 0;
  double p99_latency_sec = 0;

  // Leader and representative-replica bandwidth (Figs. 2, 11; Table III).
  double leader_send_bps = 0;
  double leader_recv_bps = 0;
  ComponentBandwidth leader_breakdown;
  ComponentBandwidth replica_breakdown;  // averaged over non-leader replicas

  // Latency breakdown fractions (Table IV); sums to <= 1.
  double frac_generation = 0;
  double frac_dissemination = 0;
  double frac_agreement = 0;
  double frac_response = 0;

  // Retrieval (Fig. 12 / Table V).
  std::uint64_t datablocks_recovered = 0;
  double mean_recovery_time_sec = 0;
  double recover_bytes_per_datablock = 0;  // querier-side receive
  double respond_bytes_per_response = 0;   // responder-side send

  // View-change (Fig. 13).
  std::uint32_t view_changes = 0;
  double view_change_duration_sec = 0;
  double vc_total_bytes = 0;         // all view-change traffic, send side
  double vc_leader_send_bytes = 0;   // new leader
  double vc_leader_recv_bytes = 0;
  double vc_replica_send_bytes = 0;  // per non-leader average
  double vc_replica_recv_bytes = 0;

  // Safety canary and raw counters.
  bool safety_violation = false;
  std::uint64_t executed_requests = 0;
  std::uint64_t acked_requests = 0;
  double offered_load = 0;
  sim::SimTime measured_for = 0;
};

/// Estimated sustainable throughput (requests/s) for auto-saturation; also
/// useful to size workloads in examples.
double estimate_capacity(const ExperimentConfig& cfg);

/// Builds the cluster, runs warmup + measurement, returns aggregated results.
ExperimentResult run_experiment(const ExperimentConfig& cfg);

}  // namespace leopard::harness
