// Safety oracles for the adversarial scenario engine.
//
// Every chaos scenario — sim-side trace mutation and wire-side byzantine
// clusters alike — asserts the same three invariants the ICDCS threat model
// promises under f faults:
//
//   1. monotonic commit: a replica's Execute stream advances strictly in
//      (seq, ordinal) order — no rollback, no duplicate coordinate;
//   2. no conflicting commit ("no fork"): any coordinate executed by two
//      replicas carries the same block. Checkpoint adoption may legitimately
//      SKIP coordinates on a lagging replica, so the oracle is a join on
//      coordinates present in both streams, not prefix equality;
//   3. confirmed-log agreement: per-sn confirmed digests never differ across
//      replicas.
//
// Oracles never throw; they accumulate human-readable violations so a fuzz
// sweep can report every breakage of one mutated trace at once.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "crypto/digest.hpp"
#include "protocol/replay.hpp"

namespace leopard::chaos {

/// One Execute action, reduced to its order-and-content identity.
struct ExecRecord {
  std::uint64_t seq = 0;
  std::uint32_t ordinal = 0;
  std::uint64_t fingerprint = 0;  // payload_fingerprint of the executed block
  std::uint64_t requests = 0;

  [[nodiscard]] friend auto operator<=>(const ExecRecord&, const ExecRecord&) = default;
};

/// Accumulated oracle verdict; empty violations == all invariants hold.
struct OracleResult {
  std::vector<std::string> violations;

  [[nodiscard]] bool ok() const { return violations.empty(); }
  void merge(OracleResult other);
  /// All violations joined with newlines (for test failure messages).
  [[nodiscard]] std::string summary() const;
};

/// Extracts the Execute actions of a trace in emission order.
[[nodiscard]] std::vector<ExecRecord> execute_stream(const protocol::Trace& trace);

/// Order-sensitive fold over an execute stream: the sim-side analogue of the
/// deployment report's exec_digest, so cross-replica equality means the same
/// blocks in the same order.
[[nodiscard]] crypto::Digest fold_digest(const std::vector<ExecRecord>& stream);

/// Invariant 1: coordinates strictly increase along the stream.
[[nodiscard]] OracleResult check_monotonic_commit(const std::vector<ExecRecord>& stream,
                                                  const std::string& label);

/// Invariant 2: every coordinate present in both streams carries the same
/// block fingerprint and request count.
[[nodiscard]] OracleResult check_no_conflict(const std::vector<ExecRecord>& a,
                                             const std::string& label_a,
                                             const std::vector<ExecRecord>& b,
                                             const std::string& label_b);

/// Invariants 1+2 across a whole cluster: each stream monotonic, every pair
/// conflict-free. Labels default to "replica <i>".
[[nodiscard]] OracleResult check_cross_replica_consistency(
    const std::vector<std::vector<ExecRecord>>& streams);

/// Invariant 3: per-sn confirmed digests agree across replicas (keys may
/// differ — replicas confirm at different speeds — but a shared sn must map
/// to one digest).
[[nodiscard]] OracleResult check_confirmed_logs(
    const std::vector<std::map<std::uint64_t, crypto::Digest>>& logs);

}  // namespace leopard::chaos
