#include "chaos/interposer.hpp"

#include <algorithm>
#include <utility>
#include <variant>
#include <vector>

#include "proto/messages.hpp"

namespace leopard::chaos {

std::optional<WireAttack> parse_wire_attack(std::string_view name) {
  if (name == "equivocate") return WireAttack::kEquivocate;
  if (name == "silence") return WireAttack::kSilence;
  if (name == "garbage-shares") return WireAttack::kGarbageShares;
  if (name == "laggard") return WireAttack::kLaggard;
  return std::nullopt;
}

const char* wire_attack_name(WireAttack attack) {
  switch (attack) {
    case WireAttack::kEquivocate: return "equivocate";
    case WireAttack::kSilence: return "silence";
    case WireAttack::kGarbageShares: return "garbage-shares";
    case WireAttack::kLaggard: return "laggard";
  }
  return "?";
}

ByzantineInterposer::ByzantineInterposer(std::unique_ptr<protocol::Protocol> core,
                                         const crypto::ThresholdScheme& scheme,
                                         InterposerOptions opts)
    : core_(std::move(core)), scheme_(scheme), opts_(opts) {
  auto& reg = obs::Registry::global();
  const std::string attack = "attack=\"" + std::string(wire_attack_name(opts_.attack)) + "\"";
  const auto kind_counter = [&](const char* kind) {
    return reg.counter("leopard_chaos_byz_actions_total",
                       "Actions rewritten by the byzantine interposer",
                       attack + ",kind=\"" + kind + "\"");
  };
  obs_equivocations_ = kind_counter("equivocation");
  obs_suppressed_ = kind_counter("suppressed");
  obs_corrupted_ = kind_counter("corrupted");
  obs_delayed_ = kind_counter("delayed");
}

void ByzantineInterposer::on_start(protocol::Env& env) {
  ShimEnv shim(*this, env);
  core_->on_start(shim);
}

void ByzantineInterposer::on_message(protocol::Env& env, protocol::NodeId from,
                                     const sim::PayloadPtr& payload) {
  ShimEnv shim(*this, env);
  core_->on_message(shim, from, payload);
}

void ByzantineInterposer::on_timer(protocol::Env& env, protocol::TimerToken token) {
  if ((token & kChaosTimerBit) != 0) {
    flush_armed_ = false;
    flush_held(env);
    return;
  }
  ShimEnv shim(*this, env);
  core_->on_timer(shim, token);
}

void ByzantineInterposer::on_client_request(
    protocol::Env& env, protocol::NodeId from,
    const std::shared_ptr<const proto::ClientRequestMsg>& msg) {
  ShimEnv shim(*this, env);
  core_->on_client_request(shim, from, msg);
}

sim::PayloadPtr ByzantineInterposer::filter_deployment_send(protocol::NodeId to,
                                                            sim::PayloadPtr payload) {
  switch (opts_.attack) {
    case WireAttack::kSilence:
      if (is_victim(to)) {
        ++stats_.suppressed;
        obs_suppressed_.inc();
        return nullptr;
      }
      return payload;
    case WireAttack::kGarbageShares:
      if (auto corrupted = corrupt_chunk(payload)) return corrupted;
      return payload;
    case WireAttack::kEquivocate:
    case WireAttack::kLaggard:
      // Equivocation targets consensus proposals; the laggard's delay machinery
      // runs on core timers, which deployment sends don't traverse.
      return payload;
  }
  return payload;
}

void ByzantineInterposer::handle_action(protocol::Action action, protocol::Env& inner) {
  const bool network = std::holds_alternative<protocol::Send>(action) ||
                       std::holds_alternative<protocol::Broadcast>(action);
  if (!network) {
    inner.apply(std::move(action));
    return;
  }
  switch (opts_.attack) {
    case WireAttack::kEquivocate: apply_equivocate(std::move(action), inner); break;
    case WireAttack::kSilence: apply_silence(std::move(action), inner); break;
    case WireAttack::kGarbageShares: apply_garbage(std::move(action), inner); break;
    case WireAttack::kLaggard: apply_laggard(std::move(action), inner); break;
  }
}

void ByzantineInterposer::apply_equivocate(protocol::Action action, protocol::Env& inner) {
  auto* bcast = std::get_if<protocol::Broadcast>(&action);
  const auto* proposal =
      bcast ? dynamic_cast<const proto::BftBlockMsg*>(bcast->payload.get()) : nullptr;
  if (proposal == nullptr) {
    inner.apply(std::move(action));
    return;
  }

  // Twin proposal for the same (view, sn) with a different link set: reversed
  // when there is something to reverse, emptied otherwise, so the twin exists
  // for every proposal shape. Signing the twin is legitimate — the interposer
  // runs inside the byzantine leader's process, which owns this key share.
  proto::BftBlock twin = proposal->block;
  if (twin.links.size() >= 2) {
    std::reverse(twin.links.begin(), twin.links.end());
  } else {
    twin.links.clear();
  }
  const auto self = core_->id();
  const auto twin_share = scheme_.sign_share(self, twin.digest());
  const auto twin_msg = std::make_shared<proto::BftBlockMsg>(std::move(twin), twin_share);

  for (std::uint32_t r = 0; r < opts_.n; ++r) {
    if (r == self) continue;
    const bool first_half = r < opts_.n / 2;
    inner.apply(protocol::Send{r, first_half ? bcast->payload : twin_msg});
  }
  ++stats_.equivocations;
  obs_equivocations_.inc();
}

bool ByzantineInterposer::is_victim(protocol::NodeId to) const {
  // The f lowest-id replicas that are not ourselves.
  std::uint32_t counted = 0;
  for (std::uint32_t r = 0; r < opts_.n && counted < opts_.f; ++r) {
    if (r == core_->id()) continue;
    if (r == to) return true;
    ++counted;
  }
  return false;
}

void ByzantineInterposer::apply_silence(protocol::Action action, protocol::Env& inner) {
  if (auto* send = std::get_if<protocol::Send>(&action)) {
    if (is_victim(send->to)) {
      ++stats_.suppressed;
      obs_suppressed_.inc();
      return;
    }
    inner.apply(std::move(action));
    return;
  }
  // Expand the broadcast so the victims can be skipped.
  auto& bcast = std::get<protocol::Broadcast>(action);
  for (std::uint32_t r = 0; r < opts_.n; ++r) {
    if (r == core_->id()) continue;
    if (is_victim(r)) {
      ++stats_.suppressed;
      obs_suppressed_.inc();
      continue;
    }
    inner.apply(protocol::Send{r, bcast.payload});
  }
}

sim::PayloadPtr ByzantineInterposer::corrupt_chunk(const sim::PayloadPtr& payload) {
  if (const auto* chunk = dynamic_cast<const proto::ChunkResponseMsg*>(payload.get())) {
    auto copy = std::make_shared<proto::ChunkResponseMsg>(*chunk);
    if (!copy->chunk.empty()) {
      copy->chunk[0] ^= 0xFF;
    } else {
      // Synthetic chunk: garble the root the receiver verifies against.
      crypto::Sha256::DigestBytes b{};
      std::copy(copy->merkle_root.bytes().begin(), copy->merkle_root.bytes().end(), b.begin());
      b[0] ^= 0xFF;
      copy->merkle_root = crypto::Digest(b);
    }
    ++stats_.corrupted;
    obs_corrupted_.inc();
    return copy;
  }
  if (const auto* chunk = dynamic_cast<const proto::StateChunkMsg*>(payload.get())) {
    auto copy = std::make_shared<proto::StateChunkMsg>(*chunk);
    if (!copy->chunk.empty()) {
      copy->chunk[copy->chunk.size() / 2] ^= 0xFF;
    } else {
      crypto::Sha256::DigestBytes b{};
      std::copy(copy->exec_digest.bytes().begin(), copy->exec_digest.bytes().end(), b.begin());
      b[0] ^= 0xFF;
      copy->exec_digest = crypto::Digest(b);
    }
    ++stats_.corrupted;
    obs_corrupted_.inc();
    return copy;
  }
  return nullptr;
}

void ByzantineInterposer::apply_garbage(protocol::Action action, protocol::Env& inner) {
  if (auto* send = std::get_if<protocol::Send>(&action)) {
    if (auto corrupted = corrupt_chunk(send->payload)) send->payload = std::move(corrupted);
  } else if (auto* bcast = std::get_if<protocol::Broadcast>(&action)) {
    if (auto corrupted = corrupt_chunk(bcast->payload)) bcast->payload = std::move(corrupted);
  }
  inner.apply(std::move(action));
}

void ByzantineInterposer::apply_laggard(protocol::Action action, protocol::Env& inner) {
  held_.push_back(HeldAction{inner.now() + opts_.lag, std::move(action)});
  ++stats_.delayed;
  obs_delayed_.inc();
  if (!flush_armed_) {
    // held_ is FIFO with a constant lag, so the front is always the earliest.
    inner.apply(protocol::SetTimer{kChaosTimerBit, opts_.lag});
    flush_armed_ = true;
  }
}

void ByzantineInterposer::flush_held(protocol::Env& inner) {
  const auto now = inner.now();
  while (!held_.empty() && held_.front().release <= now) {
    auto action = std::move(held_.front().action);
    held_.pop_front();
    inner.apply(std::move(action));
  }
  if (!held_.empty() && !flush_armed_) {
    inner.apply(protocol::SetTimer{kChaosTimerBit, held_.front().release - now});
    flush_armed_ = true;
  }
}

}  // namespace leopard::chaos
