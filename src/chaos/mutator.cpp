#include "chaos/mutator.hpp"

#include <algorithm>
#include <bit>
#include <unordered_map>
#include <utility>
#include <variant>

#include "proto/messages.hpp"

namespace leopard::chaos {

namespace {

constexpr std::size_t kMaxOps = 6;       // total ops per plan (corpus parent + fresh)
constexpr std::size_t kMaxCorpus = 256;  // coverage corpus cap

bool is_eligible(const protocol::Event& event) {
  return std::holds_alternative<protocol::MessageIn>(event) ||
         std::holds_alternative<protocol::ClientRequest>(event);
}

std::uint32_t count_eligible(const protocol::Trace& trace) {
  std::uint32_t n = 0;
  for (const auto& step : trace.steps) {
    if (is_eligible(step.event)) ++n;
  }
  return n;
}

crypto::Digest flip_digest(const crypto::Digest& d, std::uint64_t param) {
  crypto::Sha256::DigestBytes b{};
  std::copy(d.bytes().begin(), d.bytes().end(), b.begin());
  b[param % b.size()] ^= static_cast<std::uint8_t>(1u << ((param >> 5) % 8));
  return crypto::Digest(b);
}

template <typename ShareLike>
void flip_share(ShareLike& s, std::uint64_t param) {
  s.bytes[param % s.bytes.size()] ^= static_cast<std::uint8_t>(1u << ((param >> 6) % 8));
}

/// Returns a corrupted copy of `payload`, or nullptr when the type has no
/// modeled corruption (the op is then a no-op, not a drop — classes stay
/// distinct for coverage accounting).
sim::PayloadPtr corrupt_payload(const sim::Payload& payload, std::uint64_t param) {
  const auto pick = [&](std::uint64_t arms) { return param % arms; };

  if (const auto* m = dynamic_cast<const proto::ClientRequestMsg*>(&payload)) {
    auto copy = std::make_shared<proto::ClientRequestMsg>(*m);
    if (copy->requests.empty()) return nullptr;
    auto& req = copy->requests[(param >> 8) % copy->requests.size()];
    if (pick(2) == 0) {
      req.seq ^= 1 + ((param >> 16) & 0xFFFF);
    } else {
      req.client_id ^= 1 + ((param >> 16) & 0xFFFF);
    }
    return copy;
  }
  if (const auto* m = dynamic_cast<const proto::DatablockMsg*>(&payload)) {
    auto copy = std::make_shared<proto::DatablockMsg>(*m);
    copy->cached_digest = flip_digest(copy->cached_digest, param);
    return copy;
  }
  if (const auto* m = dynamic_cast<const proto::ReadyMsg*>(&payload)) {
    auto copy = std::make_shared<proto::ReadyMsg>(*m);
    if (copy->datablock_hashes.empty()) return nullptr;
    auto& h = copy->datablock_hashes[(param >> 8) % copy->datablock_hashes.size()];
    h = flip_digest(h, param);
    return copy;
  }
  if (const auto* m = dynamic_cast<const proto::BftBlockMsg*>(&payload)) {
    auto copy = std::make_shared<proto::BftBlockMsg>(*m);
    switch (pick(4)) {
      case 0: copy->cached_digest = flip_digest(copy->cached_digest, param); break;
      case 1: copy->block.view ^= 1 + ((param >> 16) & 0xF); break;
      case 2: copy->block.sn ^= 1 + ((param >> 16) & 0xF); break;
      default:
        if (copy->block.links.empty()) return nullptr;
        copy->block.links[(param >> 8) % copy->block.links.size()] =
            flip_digest(copy->block.links[0], param);
        break;
    }
    return copy;
  }
  if (const auto* m = dynamic_cast<const proto::VoteMsg*>(&payload)) {
    auto copy = std::make_shared<proto::VoteMsg>(*m);
    switch (pick(3)) {
      case 0: copy->round = copy->round == 1 ? 2 : 1; break;
      case 1: copy->block_digest = flip_digest(copy->block_digest, param); break;
      default: flip_share(copy->share, param); break;
    }
    return copy;
  }
  if (const auto* m = dynamic_cast<const proto::ProofMsg*>(&payload)) {
    auto copy = std::make_shared<proto::ProofMsg>(*m);
    if (pick(2) == 0) {
      copy->round = copy->round == 1 ? 2 : 1;
    } else {
      flip_share(copy->signature, param);
    }
    return copy;
  }
  if (const auto* m = dynamic_cast<const proto::QueryMsg*>(&payload)) {
    auto copy = std::make_shared<proto::QueryMsg>(*m);
    if (copy->missing.empty()) return nullptr;
    auto& h = copy->missing[(param >> 8) % copy->missing.size()];
    h = flip_digest(h, param);
    return copy;
  }
  if (const auto* m = dynamic_cast<const proto::ChunkResponseMsg*>(&payload)) {
    auto copy = std::make_shared<proto::ChunkResponseMsg>(*m);
    if (!copy->chunk.empty() && pick(2) == 0) {
      copy->chunk[(param >> 8) % copy->chunk.size()] ^= 0xFF;
    } else {
      copy->merkle_root = flip_digest(copy->merkle_root, param);
    }
    return copy;
  }
  if (const auto* m = dynamic_cast<const proto::CheckpointMsg*>(&payload)) {
    auto copy = std::make_shared<proto::CheckpointMsg>(*m);
    switch (pick(3)) {
      case 0: copy->sn ^= 1 + ((param >> 16) & 0xF); break;
      case 1: copy->state = flip_digest(copy->state, param); break;
      default:
        if (copy->share) {
          flip_share(*copy->share, param);
        } else if (copy->signature) {
          flip_share(*copy->signature, param);
        }
        break;
    }
    return copy;
  }
  if (const auto* m = dynamic_cast<const proto::TimeoutMsg*>(&payload)) {
    auto copy = std::make_shared<proto::TimeoutMsg>(*m);
    if (pick(2) == 0) {
      copy->view ^= 1 + ((param >> 16) & 0xF);
    } else {
      flip_share(copy->share, param);
    }
    return copy;
  }
  if (const auto* m = dynamic_cast<const proto::ViewChangeMsg*>(&payload)) {
    auto copy = std::make_shared<proto::ViewChangeMsg>(*m);
    switch (pick(3)) {
      case 0: copy->new_view ^= 1 + ((param >> 16) & 0xF); break;
      case 1: copy->checkpoint_sn ^= 1 + ((param >> 16) & 0xF); break;
      default: copy->checkpoint_state = flip_digest(copy->checkpoint_state, param); break;
    }
    return copy;
  }
  if (const auto* m = dynamic_cast<const proto::NewViewMsg*>(&payload)) {
    auto copy = std::make_shared<proto::NewViewMsg>(*m);
    if (pick(2) == 0 || copy->view_changes.empty()) {
      copy->new_view ^= 1 + ((param >> 16) & 0xF);
    } else {
      copy->view_changes[(param >> 8) % copy->view_changes.size()].checkpoint_sn ^= 1;
    }
    return copy;
  }
  if (const auto* m = dynamic_cast<const proto::BaselineBlockMsg*>(&payload)) {
    auto copy = std::make_shared<proto::BaselineBlockMsg>(*m);
    switch (pick(3)) {
      case 0: copy->cached_digest = flip_digest(copy->cached_digest, param); break;
      case 1: copy->height ^= 1 + ((param >> 16) & 0xF); break;
      default: copy->parent = flip_digest(copy->parent, param); break;
    }
    return copy;
  }
  if (const auto* m = dynamic_cast<const proto::BaselineVoteMsg*>(&payload)) {
    auto copy = std::make_shared<proto::BaselineVoteMsg>(*m);
    switch (pick(3)) {
      case 0: copy->height ^= 1 + ((param >> 16) & 0xF); break;
      case 1: copy->block_digest = flip_digest(copy->block_digest, param); break;
      default: flip_share(copy->share, param); break;
    }
    return copy;
  }
  if (const auto* m = dynamic_cast<const proto::StateOfferMsg*>(&payload)) {
    auto copy = std::make_shared<proto::StateOfferMsg>(*m);
    switch (pick(3)) {
      case 0: copy->until_index ^= 1 + ((param >> 16) & 0xF); break;
      case 1: copy->from_index ^= 1 + ((param >> 16) & 0xF); break;
      default: copy->exec_digest = flip_digest(copy->exec_digest, param); break;
    }
    return copy;
  }
  if (const auto* m = dynamic_cast<const proto::StateChunkMsg*>(&payload)) {
    auto copy = std::make_shared<proto::StateChunkMsg>(*m);
    if (!copy->chunk.empty() && pick(2) == 0) {
      copy->chunk[(param >> 8) % copy->chunk.size()] ^= 0xFF;
    } else {
      copy->exec_digest = flip_digest(copy->exec_digest, param);
    }
    return copy;
  }
  if (const auto* m = dynamic_cast<const proto::AckMsg*>(&payload)) {
    auto copy = std::make_shared<proto::AckMsg>(*m);
    if (copy->seqs.empty()) return nullptr;
    copy->seqs[(param >> 8) % copy->seqs.size()] ^= 1 + ((param >> 16) & 0xFFFF);
    return copy;
  }
  return nullptr;
}

void corrupt_event(protocol::Event& event, std::uint64_t param) {
  if (auto* in = std::get_if<protocol::MessageIn>(&event)) {
    if (auto corrupted = corrupt_payload(*in->payload, param)) in->payload = std::move(corrupted);
  } else if (auto* cr = std::get_if<protocol::ClientRequest>(&event)) {
    if (auto corrupted = corrupt_payload(*cr->request, param)) {
      cr->request = std::static_pointer_cast<const proto::ClientRequestMsg>(std::move(corrupted));
    }
  }
}

std::uint64_t mix64(std::uint64_t v) {
  std::uint64_t state = v;
  return util::splitmix64(state);
}

}  // namespace

const char* mutation_class_name(MutationClass cls) {
  switch (cls) {
    case MutationClass::kFieldCorruption: return "corrupt";
    case MutationClass::kDrop: return "drop";
    case MutationClass::kDuplicate: return "dup";
    case MutationClass::kReorder: return "reorder";
    case MutationClass::kDelay: return "delay";
    case MutationClass::kSpoofSender: return "spoof";
  }
  return "?";
}

std::string MutationPlan::describe() const {
  std::string out = "seed=" + std::to_string(seed) + " ops=[";
  for (std::size_t i = 0; i < ops.size(); ++i) {
    if (i != 0) out += ' ';
    out += mutation_class_name(ops[i].cls);
    out += '@';
    out += std::to_string(ops[i].step);
  }
  out += ']';
  return out;
}

TraceMutator::TraceMutator(std::uint64_t sweep_seed, std::uint32_t n_replicas)
    : sweep_seed_(sweep_seed), n_(n_replicas == 0 ? 1 : n_replicas) {}

MutationPlan TraceMutator::plan(std::uint64_t case_seed, const protocol::Trace& base) {
  MutationPlan p;
  p.seed = case_seed;
  const std::uint32_t eligible = count_eligible(base);
  if (eligible == 0) return p;

  util::Rng rng(mix64(sweep_seed_) ^ (case_seed * 0x9E3779B97F4A7C15ull));
  if (!corpus_.empty() && rng.uniform(2) == 0) {
    p.ops = corpus_[rng.uniform(corpus_.size())].ops;
  }
  const auto fresh = 1 + rng.uniform(3);
  for (std::uint64_t i = 0; i < fresh && p.ops.size() < kMaxOps; ++i) {
    Mutation op;
    op.cls = static_cast<MutationClass>(rng.uniform(kMutationClassCount));
    op.step = static_cast<std::uint32_t>(rng.uniform(eligible));
    op.param = rng.next_u64();
    p.ops.push_back(op);
  }
  return p;
}

protocol::Trace TraceMutator::mutated_input(const MutationPlan& plan,
                                            const protocol::Trace& base) const {
  protocol::Trace t = base;
  for (const auto& op : plan.ops) {
    if (op.cls != MutationClass::kDuplicate && op.cls != MutationClass::kReorder &&
        op.cls != MutationClass::kDelay) {
      continue;
    }
    std::vector<std::size_t> eligible;
    for (std::size_t i = 0; i < t.steps.size(); ++i) {
      if (is_eligible(t.steps[i].event)) eligible.push_back(i);
    }
    if (eligible.empty()) continue;
    const std::size_t raw = eligible[op.step % eligible.size()];
    switch (op.cls) {
      case MutationClass::kDuplicate:
        t.steps.insert(t.steps.begin() + static_cast<std::ptrdiff_t>(raw) + 1, t.steps[raw]);
        break;
      case MutationClass::kReorder: {
        const std::size_t other = eligible[op.param % eligible.size()];
        std::swap(t.steps[raw], t.steps[other]);
        break;
      }
      case MutationClass::kDelay: {
        auto step = std::move(t.steps[raw]);
        t.steps.erase(t.steps.begin() + static_cast<std::ptrdiff_t>(raw));
        const std::size_t dst = std::min(raw + 1 + op.param % 5, t.steps.size());
        t.steps.insert(t.steps.begin() + static_cast<std::ptrdiff_t>(dst), std::move(step));
        break;
      }
      default: break;
    }
  }
  // The moves above scramble step timestamps; the replay clock must still be
  // non-decreasing (cores compare against `now`).
  for (std::size_t i = 1; i < t.steps.size(); ++i) {
    t.steps[i].at = std::max(t.steps[i].at, t.steps[i - 1].at);
  }
  return t;
}

protocol::ReplayEnv::EventFilter TraceMutator::make_filter(const MutationPlan& plan) const {
  std::unordered_map<std::uint32_t, std::vector<Mutation>> targets;
  for (const auto& op : plan.ops) {
    if (op.cls == MutationClass::kFieldCorruption || op.cls == MutationClass::kDrop ||
        op.cls == MutationClass::kSpoofSender) {
      targets[op.step].push_back(op);
    }
  }
  if (targets.empty()) return nullptr;

  return [targets = std::move(targets), n = n_,
          counter = std::uint32_t{0}](protocol::TraceStep& step) mutable {
    if (!is_eligible(step.event)) return true;
    const auto idx = counter++;
    const auto it = targets.find(idx);
    if (it == targets.end()) return true;
    for (const auto& op : it->second) {
      switch (op.cls) {
        case MutationClass::kDrop:
          return false;
        case MutationClass::kSpoofSender:
          if (auto* in = std::get_if<protocol::MessageIn>(&step.event)) {
            in->from = static_cast<protocol::NodeId>(op.param % n);
          } else if (auto* cr = std::get_if<protocol::ClientRequest>(&step.event)) {
            cr->from = static_cast<protocol::NodeId>(op.param % (2 * n));
          }
          break;
        case MutationClass::kFieldCorruption:
          corrupt_event(step.event, op.param);
          break;
        default:
          break;  // structural ops were applied to the input stream
      }
    }
    return true;
  };
}

bool TraceMutator::record_coverage(const MutationPlan& plan, const protocol::Trace& replayed) {
  bool fresh = false;
  for (const auto& step : replayed.steps) {
    std::uint64_t kinds = 0;
    for (const auto& action : step.actions) kinds |= 1ull << action.index();
    const std::uint64_t bucket = std::bit_width(step.actions.size());
    const std::uint64_t feature =
        mix64(static_cast<std::uint64_t>(step.event.index()) | (kinds << 8) | (bucket << 40));
    if (features_.insert(feature).second) fresh = true;
  }
  if (fresh && corpus_.size() < kMaxCorpus) corpus_.push_back(plan);
  return fresh;
}

}  // namespace leopard::chaos
