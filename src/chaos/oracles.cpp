#include "chaos/oracles.hpp"

#include <algorithm>
#include <map>
#include <utility>

#include "obs/metrics.hpp"
#include "util/bytes.hpp"

namespace leopard::chaos {

namespace {

// Verdict counters: one check/violation pair per oracle, so a harness run's
// /metrics (or a test's registry dump) shows which safety properties were
// exercised and whether any tripped.
void count_verdict(const char* oracle, std::size_t violations) {
  auto& reg = obs::Registry::global();
  const std::string label = "oracle=\"" + std::string(oracle) + "\"";
  reg.counter("leopard_chaos_oracle_checks_total", "Safety-oracle evaluations", label)
      .inc();
  if (violations > 0) {
    reg.counter("leopard_chaos_oracle_violations_total", "Safety-oracle violations",
                label)
        .inc(violations);
  }
}

}  // namespace

void OracleResult::merge(OracleResult other) {
  violations.insert(violations.end(), std::make_move_iterator(other.violations.begin()),
                    std::make_move_iterator(other.violations.end()));
}

std::string OracleResult::summary() const {
  std::string out;
  for (const auto& v : violations) {
    if (!out.empty()) out += '\n';
    out += v;
  }
  return out;
}

std::vector<ExecRecord> execute_stream(const protocol::Trace& trace) {
  std::vector<ExecRecord> stream;
  for (const auto& step : trace.steps) {
    for (const auto& action : step.actions) {
      if (const auto* exec = std::get_if<protocol::Execute>(&action)) {
        stream.push_back(ExecRecord{exec->seq, exec->ordinal,
                                    protocol::payload_fingerprint(*exec->block),
                                    exec->requests});
      }
    }
  }
  return stream;
}

crypto::Digest fold_digest(const std::vector<ExecRecord>& stream) {
  util::ByteWriter w;
  w.str("chaos.exec_fold");
  for (const auto& r : stream) {
    w.u64(r.seq);
    w.u32(r.ordinal);
    w.u64(r.fingerprint);
    w.u64(r.requests);
  }
  return crypto::Digest::of(w.bytes());
}

namespace {

std::string coord(const ExecRecord& r) {
  return "(" + std::to_string(r.seq) + "," + std::to_string(r.ordinal) + ")";
}

}  // namespace

OracleResult check_monotonic_commit(const std::vector<ExecRecord>& stream,
                                    const std::string& label) {
  OracleResult result;
  for (std::size_t i = 1; i < stream.size(); ++i) {
    const auto& prev = stream[i - 1];
    const auto& cur = stream[i];
    const bool advances =
        cur.seq > prev.seq || (cur.seq == prev.seq && cur.ordinal > prev.ordinal);
    if (!advances) {
      result.violations.push_back("monotonic-commit: " + label + " executed " + coord(cur) +
                                  " after " + coord(prev) + " (position " + std::to_string(i) +
                                  ")");
    }
  }
  count_verdict("monotonic-commit", result.violations.size());
  return result;
}

OracleResult check_no_conflict(const std::vector<ExecRecord>& a, const std::string& label_a,
                               const std::vector<ExecRecord>& b, const std::string& label_b) {
  OracleResult result;
  std::map<std::pair<std::uint64_t, std::uint32_t>, const ExecRecord*> by_coord;
  for (const auto& r : a) by_coord.emplace(std::make_pair(r.seq, r.ordinal), &r);
  for (const auto& r : b) {
    const auto it = by_coord.find({r.seq, r.ordinal});
    if (it == by_coord.end()) continue;
    const auto& other = *it->second;
    if (other.fingerprint != r.fingerprint || other.requests != r.requests) {
      result.violations.push_back("no-conflict: coordinate " + coord(r) + " forked — " + label_a +
                                  " fp=" + std::to_string(other.fingerprint) + "/" +
                                  std::to_string(other.requests) + "req vs " + label_b +
                                  " fp=" + std::to_string(r.fingerprint) + "/" +
                                  std::to_string(r.requests) + "req");
    }
  }
  count_verdict("no-conflict", result.violations.size());
  return result;
}

OracleResult check_cross_replica_consistency(const std::vector<std::vector<ExecRecord>>& streams) {
  OracleResult result;
  std::vector<std::string> labels;
  labels.reserve(streams.size());
  for (std::size_t i = 0; i < streams.size(); ++i) {
    labels.push_back("replica " + std::to_string(i));
  }
  for (std::size_t i = 0; i < streams.size(); ++i) {
    result.merge(check_monotonic_commit(streams[i], labels[i]));
  }
  for (std::size_t i = 0; i < streams.size(); ++i) {
    for (std::size_t j = i + 1; j < streams.size(); ++j) {
      result.merge(check_no_conflict(streams[i], labels[i], streams[j], labels[j]));
    }
  }
  return result;
}

OracleResult check_confirmed_logs(
    const std::vector<std::map<std::uint64_t, crypto::Digest>>& logs) {
  OracleResult result;
  std::map<std::uint64_t, std::pair<std::size_t, crypto::Digest>> canonical;
  for (std::size_t i = 0; i < logs.size(); ++i) {
    for (const auto& [sn, digest] : logs[i]) {
      const auto [it, inserted] = canonical.emplace(sn, std::make_pair(i, digest));
      if (!inserted && it->second.second != digest) {
        result.violations.push_back(
            "confirmed-log: sn " + std::to_string(sn) + " diverges — replica " +
            std::to_string(it->second.first) + " has " + it->second.second.short_hex() +
            ", replica " + std::to_string(i) + " has " + digest.short_hex());
      }
    }
  }
  count_verdict("confirmed-log", result.violations.size());
  return result;
}

}  // namespace leopard::chaos
