// Env-wrapping byzantine interposer for real-wire deployments.
//
// `leopard_node --byzantine=<mode>` hosts the UNMODIFIED protocol core inside
// a `ByzantineInterposer`: the interposer is itself a `protocol::Protocol`, so
// `SocketEnv::attach` sees one core, while every action the inner core emits
// passes through a shim `Env` that rewrites it according to the attack:
//
//   equivocate — a leader's BftBlockMsg broadcast is split into two
//     conflicting proposals for the same (view, sn), sent to disjoint replica
//     subsets (the classic safety attack; honest replicas must refuse to
//     confirm either and view-change past the traitor);
//   silence    — all traffic toward the f lowest-id honest victims is
//     suppressed (selective silence: victims must catch up via checkpoints
//     and state transfer while the cluster stays live);
//   garbage-shares — erasure-coded retrieval and state-transfer chunks are
//     corrupted before sending (Merkle / digest re-verification on the
//     receiving side must reject them);
//   laggard    — FnF-style performance attack: every outbound message is
//     held for a fixed lag chosen to stay just inside the view timeout, so
//     no view change fires yet throughput degrades.
//
// Delayed delivery reuses the core timer path: the interposer arms its own
// flush timers through the inner Env with bit 63 (`kChaosTimerBit`) set, a
// namespace no core token uses (core tokens are kind+sequence counters; bit
// 63 would take ~2^59 arms to reach).
//
// Deployment-layer sends (state sync) bypass the protocol core, so the node
// routes them through `filter_deployment_send` to keep the attack total.
#pragma once

#include <deque>
#include <memory>
#include <optional>
#include <string_view>

#include "crypto/threshold_sig.hpp"
#include "obs/metrics.hpp"
#include "protocol/protocol.hpp"

namespace leopard::chaos {

enum class WireAttack : std::uint8_t {
  kEquivocate,
  kSilence,
  kGarbageShares,
  kLaggard,
};

[[nodiscard]] std::optional<WireAttack> parse_wire_attack(std::string_view name);
[[nodiscard]] const char* wire_attack_name(WireAttack attack);

/// Timer-token namespace bit reserved for interposer flush timers.
inline constexpr protocol::TimerToken kChaosTimerBit = 1ull << 63;

struct InterposerOptions {
  WireAttack attack = WireAttack::kEquivocate;
  std::uint32_t n = 4;
  std::uint32_t f = 1;
  /// Laggard hold per message; pick just inside the cluster's view timeout.
  sim::SimTime lag = 150 * sim::kMillisecond;
};

class ByzantineInterposer final : public protocol::Protocol {
 public:
  struct Stats {
    std::uint64_t equivocations = 0;  // twin proposals emitted
    std::uint64_t suppressed = 0;     // sends silently dropped
    std::uint64_t corrupted = 0;      // chunks garbled before sending
    std::uint64_t delayed = 0;        // sends held by the laggard
  };

  ByzantineInterposer(std::unique_ptr<protocol::Protocol> core,
                      const crypto::ThresholdScheme& scheme, InterposerOptions opts);

  [[nodiscard]] proto::ReplicaId id() const override { return core_->id(); }
  void on_start(protocol::Env& env) override;
  void on_message(protocol::Env& env, protocol::NodeId from,
                  const sim::PayloadPtr& payload) override;
  void on_timer(protocol::Env& env, protocol::TimerToken token) override;
  void on_client_request(protocol::Env& env, protocol::NodeId from,
                         const std::shared_ptr<const proto::ClientRequestMsg>& msg) override;

  /// Applies the attack to a deployment-layer (state-sync) send. Returns the
  /// payload to actually send, possibly corrupted, or nullptr to suppress.
  [[nodiscard]] sim::PayloadPtr filter_deployment_send(protocol::NodeId to,
                                                       sim::PayloadPtr payload);

  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] const protocol::Protocol& inner() const { return *core_; }

 private:
  // Env shim handed to the inner core: forwards now()/costs(), routes every
  // action through the interposer's attack logic.
  class ShimEnv final : public protocol::Env {
   public:
    ShimEnv(ByzantineInterposer& owner, protocol::Env& inner) : owner_(owner), inner_(inner) {}
    [[nodiscard]] sim::SimTime now() const override { return inner_.now(); }
    [[nodiscard]] const sim::CostModel& costs() const override { return inner_.costs(); }
    void apply(protocol::Action action) override { owner_.handle_action(std::move(action), inner_); }

   private:
    ByzantineInterposer& owner_;
    protocol::Env& inner_;
  };

  struct HeldAction {
    sim::SimTime release = 0;
    protocol::Action action;
  };

  void handle_action(protocol::Action action, protocol::Env& inner);
  void apply_equivocate(protocol::Action action, protocol::Env& inner);
  void apply_silence(protocol::Action action, protocol::Env& inner);
  void apply_garbage(protocol::Action action, protocol::Env& inner);
  void apply_laggard(protocol::Action action, protocol::Env& inner);
  void flush_held(protocol::Env& inner);
  [[nodiscard]] bool is_victim(protocol::NodeId to) const;
  [[nodiscard]] sim::PayloadPtr corrupt_chunk(const sim::PayloadPtr& payload);

  std::unique_ptr<protocol::Protocol> core_;
  const crypto::ThresholdScheme& scheme_;
  InterposerOptions opts_;
  Stats stats_;
  // Mirrors of stats_ in the global registry (labeled by attack and kind) so
  // an attacked node's /metrics shows the byzantine activity live.
  obs::Counter obs_equivocations_;
  obs::Counter obs_suppressed_;
  obs::Counter obs_corrupted_;
  obs::Counter obs_delayed_;
  std::deque<HeldAction> held_;
  bool flush_armed_ = false;
};

}  // namespace leopard::chaos
