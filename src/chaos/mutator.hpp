// Seeded, coverage-guided trace mutator for the sans-I/O replay harness.
//
// Mutations model a network-level adversary, so only network-delivered events
// (MessageIn, ClientRequest) are eligible — Start and TimerFired are local
// facts the Env contract owns. Two mutation families:
//
//   - structural (kDuplicate, kReorder, kDelay): rewrite the *input* event
//     stream before replay — copies, position moves — with timestamps
//     re-normalized to stay non-decreasing;
//   - in-flight (kFieldCorruption, kDrop, kSpoofSender): applied through
//     `ReplayEnv::set_event_filter` as each event is delivered, exactly the
//     byzantine injection point replay.hpp documents.
//
// Determinism: a case is fully identified by (sweep_seed, case_seed). The
// plan derivation, every random parameter, and the corpus evolution depend
// only on those seeds and the base trace, so any sweep failure replays from
// its printed seed (`--chaos-seed`).
//
// Coverage guidance (greybox-fuzzer shaped): each replayed step is hashed to
// a feature — (event tag, action-kind bitmap, bucketed action count) — and a
// plan that produced previously unseen features joins the corpus; later plans
// stack fresh ops onto a random corpus parent with probability 1/2. The
// mutator thus spends its budget on mutations that drive cores into new
// behaviour instead of resampling the same rejection paths.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "protocol/replay.hpp"
#include "util/rng.hpp"

namespace leopard::chaos {

enum class MutationClass : std::uint8_t {
  kFieldCorruption = 0,
  kDrop = 1,
  kDuplicate = 2,
  kReorder = 3,
  kDelay = 4,
  kSpoofSender = 5,
};
inline constexpr std::uint32_t kMutationClassCount = 6;

[[nodiscard]] const char* mutation_class_name(MutationClass cls);

/// One mutation op. `step` indexes the eligible (network-delivered) steps of
/// the trace, not raw trace positions, so the same plan stays meaningful
/// after structural ops shift raw indices.
struct Mutation {
  MutationClass cls = MutationClass::kDrop;
  std::uint32_t step = 0;
  std::uint64_t param = 0;
};

struct MutationPlan {
  std::uint64_t seed = 0;
  std::vector<Mutation> ops;

  /// "seed=N ops=[corrupt@3 drop@7 ...]" — printed on oracle failure so the
  /// case is reproducible without the sweep.
  [[nodiscard]] std::string describe() const;
};

class TraceMutator {
 public:
  TraceMutator(std::uint64_t sweep_seed, std::uint32_t n_replicas);

  /// Derives the mutation plan for one case, possibly stacking onto a corpus
  /// parent. Deterministic in (sweep_seed, case_seed, base shape).
  [[nodiscard]] MutationPlan plan(std::uint64_t case_seed, const protocol::Trace& base);

  /// Applies the plan's structural ops to a copy of the base input stream.
  [[nodiscard]] protocol::Trace mutated_input(const MutationPlan& plan,
                                              const protocol::Trace& base) const;

  /// Builds the event filter applying the plan's in-flight ops.
  [[nodiscard]] protocol::ReplayEnv::EventFilter make_filter(const MutationPlan& plan) const;

  /// Feeds a replayed trace back for coverage guidance; returns true (and
  /// adopts the plan into the corpus) if it exercised new features.
  bool record_coverage(const MutationPlan& plan, const protocol::Trace& replayed);

  [[nodiscard]] std::size_t corpus_size() const { return corpus_.size(); }
  [[nodiscard]] std::size_t feature_count() const { return features_.size(); }

 private:
  std::uint64_t sweep_seed_;
  std::uint32_t n_;
  std::vector<MutationPlan> corpus_;
  std::unordered_set<std::uint64_t> features_;
};

}  // namespace leopard::chaos
