#include "crypto/digest.hpp"

#include "util/hex.hpp"

namespace leopard::crypto {

std::string Digest::hex() const { return util::to_hex(bytes_); }

std::string Digest::short_hex() const {
  return util::to_hex(std::span<const std::uint8_t>(bytes_.data(), 4));
}

}  // namespace leopard::crypto
