#include "crypto/merkle.hpp"

#include "util/check.hpp"

namespace leopard::crypto {

namespace {

// hash_many reads Digest rows as raw bytes: a Digest is exactly its 32-byte
// array, and vector<Digest> lays them out back to back.
static_assert(sizeof(Digest) == Digest::kSize);

constexpr std::uint8_t kLeafTag = 0x00;
constexpr std::uint8_t kInteriorTag = 0x01;

}  // namespace

Digest MerkleTree::hash_leaf(std::span<const std::uint8_t> data) {
  Sha256 ctx;
  ctx.update({&kLeafTag, 1});
  ctx.update(data);
  return Digest(ctx.finalize());
}

std::vector<Digest> MerkleTree::hash_leaves(std::span<const std::uint8_t> buf,
                                            std::size_t leaf_size) {
  util::expects(leaf_size > 0, "hash_leaves requires a non-zero leaf size");
  util::expects(buf.size() % leaf_size == 0, "buffer is not a whole number of leaves");
  const std::size_t count = buf.size() / leaf_size;
  // The shards sit back to back in the arena, so they are exactly the
  // equal-size rows the multi-buffer interface wants: leaves hash in n-lane
  // batches (8-wide under AVX2) — and, for arena-scale inputs, row ranges
  // fan out across the worker pool — written straight into the Digest
  // storage (licensed by the sizeof static_assert above).
  std::vector<Digest> leaves(count);
  Sha256::hash_many({&kLeafTag, 1}, buf.data(), leaf_size, leaf_size, count,
                    reinterpret_cast<Sha256::DigestBytes*>(leaves.data()));
  return leaves;
}

Digest MerkleTree::hash_interior(const Digest& left, const Digest& right) {
  Sha256 ctx;
  ctx.update({&kInteriorTag, 1});
  ctx.update(left.bytes());
  ctx.update(right.bytes());
  return Digest(ctx.finalize());
}

MerkleTree::MerkleTree(std::vector<Digest> leaves) {
  util::expects(!leaves.empty(), "MerkleTree requires at least one leaf");
  levels_.push_back(std::move(leaves));
  while (levels_.back().size() > 1) {
    const auto& below = levels_.back();
    const std::size_t pairs = below.size() / 2;
    // Each interior node hashes 0x01 || left || right, and sibling digests
    // are adjacent 64-byte rows of the level below — the same n-lane
    // multi-buffer shape as the leaves.
    std::vector<Digest> above(pairs);
    above.reserve(pairs + below.size() % 2);
    Sha256::hash_many({&kInteriorTag, 1},
                      reinterpret_cast<const std::uint8_t*>(below.data()),
                      2 * Digest::kSize, 2 * Digest::kSize, pairs,
                      reinterpret_cast<Sha256::DigestBytes*>(above.data()));
    if (below.size() % 2 == 1) above.push_back(below.back());  // promote odd node
    levels_.push_back(std::move(above));
  }
}

std::vector<Digest> MerkleTree::proof(std::size_t index) const {
  util::expects(index < leaf_count(), "Merkle proof index out of range");
  std::vector<Digest> path;
  std::size_t i = index;
  for (std::size_t level = 0; level + 1 < levels_.size(); ++level) {
    const auto& nodes = levels_[level];
    const std::size_t sibling = (i % 2 == 0) ? i + 1 : i - 1;
    if (sibling < nodes.size()) path.push_back(nodes[sibling]);
    // else: promoted node, nothing to prove at this level
    i /= 2;
  }
  return path;
}

bool MerkleTree::verify(const Digest& root, const Digest& leaf, std::size_t index,
                        std::size_t leaf_count, std::span<const Digest> proof) {
  if (leaf_count == 0 || index >= leaf_count) return false;
  Digest node = leaf;
  std::size_t i = index;
  std::size_t width = leaf_count;
  std::size_t used = 0;
  while (width > 1) {
    const bool has_sibling = (i % 2 == 0) ? (i + 1 < width) : true;
    if (has_sibling) {
      if (used >= proof.size()) return false;
      const Digest& sibling = proof[used++];
      node = (i % 2 == 0) ? hash_interior(node, sibling) : hash_interior(sibling, node);
    }
    i /= 2;
    width = (width + 1) / 2;
  }
  return used == proof.size() && node == root;
}

}  // namespace leopard::crypto
