#include "crypto/hmac.hpp"

#include <array>
#include <cstring>

namespace leopard::crypto {

Sha256::DigestBytes hmac_sha256(std::span<const std::uint8_t> key,
                                std::span<const std::uint8_t> message) {
  constexpr std::size_t kBlockSize = 64;

  std::array<std::uint8_t, kBlockSize> key_block{};
  if (key.size() > kBlockSize) {
    const auto hashed = Sha256::hash(key);
    std::memcpy(key_block.data(), hashed.data(), hashed.size());
  } else {
    std::memcpy(key_block.data(), key.data(), key.size());
  }

  std::array<std::uint8_t, kBlockSize> ipad{};
  std::array<std::uint8_t, kBlockSize> opad{};
  for (std::size_t i = 0; i < kBlockSize; ++i) {
    ipad[i] = static_cast<std::uint8_t>(key_block[i] ^ 0x36);
    opad[i] = static_cast<std::uint8_t>(key_block[i] ^ 0x5c);
  }

  Sha256 inner;
  inner.update(ipad);
  inner.update(message);
  const auto inner_digest = inner.finalize();

  Sha256 outer;
  outer.update(opad);
  outer.update(inner_digest);
  return outer.finalize();
}

}  // namespace leopard::crypto
