#include "crypto/hmac.hpp"

#include <array>
#include <cstring>

#include "util/check.hpp"

namespace leopard::crypto {

void HmacContext::init(std::span<const std::uint8_t> key) {
  constexpr std::size_t kBlockSize = Sha256::kBlockSize;

  std::array<std::uint8_t, kBlockSize> key_block{};
  if (key.size() > kBlockSize) {
    const auto hashed = Sha256::hash(key);
    std::memcpy(key_block.data(), hashed.data(), hashed.size());
  } else if (!key.empty()) {
    std::memcpy(key_block.data(), key.data(), key.size());
  }

  std::array<std::uint8_t, kBlockSize> ipad;
  std::array<std::uint8_t, kBlockSize> opad;
  for (std::size_t i = 0; i < kBlockSize; ++i) {
    ipad[i] = static_cast<std::uint8_t>(key_block[i] ^ 0x36);
    opad[i] = static_cast<std::uint8_t>(key_block[i] ^ 0x5c);
  }

  inner_ = Sha256();
  outer_ = Sha256();
  inner_.update(ipad);
  outer_.update(opad);
}

Sha256::DigestBytes HmacContext::mac(std::span<const std::uint8_t> message) const {
  Sha256 in = inner_;
  in.update(message);
  const auto inner_digest = in.finalize();

  Sha256 out = outer_;
  out.update(inner_digest);
  return out.finalize();
}

void HmacContext::mac_pair(std::span<const std::uint8_t> m0, std::span<const std::uint8_t> m1,
                           Sha256::DigestBytes& out0, Sha256::DigestBytes& out1) const {
  Sha256 in0 = inner_;
  Sha256 in1 = inner_;
  Sha256::update_two(in0, m0, in1, m1);
  Sha256::DigestBytes d0;
  Sha256::DigestBytes d1;
  Sha256::finalize_two(in0, in1, d0, d1);

  Sha256 o0 = outer_;
  Sha256 o1 = outer_;
  Sha256::update_two(o0, d0, o1, d1);
  Sha256::finalize_two(o0, o1, out0, out1);
}

namespace {

constexpr std::size_t kBlock = Sha256::kBlockSize;

/// Longest tag||message that still pads into ONE inner block
/// (1 tag + len + 0x80 + 8-byte length <= 64).
constexpr std::size_t kFusedMaxMessage = kBlock - 10;

void store_be64(std::uint8_t* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<std::uint8_t>(v >> (56 - 8 * i));
}

void store_be32x8(std::uint8_t* p, const std::uint32_t s[8]) {
  for (int i = 0; i < 8; ++i) {
    p[4 * i + 0] = static_cast<std::uint8_t>(s[i] >> 24);
    p[4 * i + 1] = static_cast<std::uint8_t>(s[i] >> 16);
    p[4 * i + 2] = static_cast<std::uint8_t>(s[i] >> 8);
    p[4 * i + 3] = static_cast<std::uint8_t>(s[i]);
  }
}

/// Builds the single padded inner block for HMAC(·, tag || message) on the
/// fused path; message.size() must be <= kFusedMaxMessage.
void build_fused_inner_block(std::uint8_t tag, std::span<const std::uint8_t> message,
                             std::uint8_t block[/*kBlock*/]) {
  std::memset(block, 0, kBlock);
  block[0] = tag;
  if (!message.empty()) std::memcpy(block + 1, message.data(), message.size());
  block[1 + message.size()] = 0x80;
  store_be64(block + kBlock - 8, static_cast<std::uint64_t>(kBlock + 1 + message.size()) * 8);
}

/// Shared fused-path finish: per lane, builds the padded outer block
/// H(opad-midstate || inner-digest) from the advanced inner state
/// `inner[i]`, compresses it over the opad midstate `outer_mid[i]` (advanced
/// in place), and emits the final MAC. One n-lane pass for the whole batch.
void fused_outer_pass(const std::uint32_t inner[][8], std::uint32_t outer_mid[][8],
                      std::size_t count, Sha256::DigestBytes* out) {
  std::uint8_t blocks[Sha256::kMaxBatch][kBlock];
  std::uint32_t* st[Sha256::kMaxBatch];
  const std::uint8_t* bl[Sha256::kMaxBatch];
  for (std::size_t i = 0; i < count; ++i) {
    std::memset(blocks[i], 0, kBlock);
    store_be32x8(blocks[i], inner[i]);
    blocks[i][Sha256::kDigestSize] = 0x80;
    store_be64(blocks[i] + kBlock - 8, (kBlock + Sha256::kDigestSize) * 8);
    st[i] = outer_mid[i];
    bl[i] = blocks[i];
  }
  Sha256::compress_wide(st, bl, count, 1);
  for (std::size_t i = 0; i < count; ++i) store_be32x8(out[i].data(), outer_mid[i]);
}

}  // namespace

void HmacContext::mac_tagged_pair(std::uint8_t tag0, std::uint8_t tag1,
                                  std::span<const std::uint8_t> message,
                                  Sha256::DigestBytes& out0,
                                  Sha256::DigestBytes& out1) const {
  if (message.size() <= kFusedMaxMessage) {
    // Fused fixed-shape path: one key, two domain tags — the single-share
    // sign/verify shape (ROADMAP: the incremental machinery cost ~40% of
    // those calls). The two inner blocks differ only in the tag byte; both
    // lanes start from the same precomputed ipad midstate, then one padded
    // outer block each. Two compress_pair calls total.
    std::uint8_t block0[kBlock];
    std::uint8_t block1[kBlock];
    build_fused_inner_block(tag0, message, block0);
    build_fused_inner_block(tag1, message, block1);

    std::uint32_t inner_states[2][8];
    inner_.export_midstate(inner_states[0]);
    inner_.export_midstate(inner_states[1]);
    Sha256::compress_pair(inner_states[0], block0, inner_states[1], block1, 1);

    std::uint32_t outer_states[2][8];
    outer_.export_midstate(outer_states[0]);
    outer_.export_midstate(outer_states[1]);
    Sha256::DigestBytes outs[2];
    fused_outer_pass(inner_states, outer_states, 2, outs);
    out0 = outs[0];
    out1 = outs[1];
    return;
  }

  Sha256 in0 = inner_;
  Sha256 in1 = inner_;
  in0.update({&tag0, 1});
  in1.update({&tag1, 1});
  Sha256::update_two(in0, message, in1, message);
  Sha256::DigestBytes d0;
  Sha256::DigestBytes d1;
  Sha256::finalize_two(in0, in1, d0, d1);

  Sha256 o0 = outer_;
  Sha256 o1 = outer_;
  Sha256::update_two(o0, d0, o1, d1);
  Sha256::finalize_two(o0, o1, out0, out1);
}

void HmacContext::mac_tagged_cross(const HmacContext& a, const HmacContext& b,
                                   std::uint8_t tag, std::span<const std::uint8_t> message,
                                   Sha256::DigestBytes& out_a, Sha256::DigestBytes& out_b) {
  const HmacContext* ctxs[2] = {&a, &b};
  Sha256::DigestBytes out[2];
  mac_tagged_cross_many(ctxs, 2, tag, message, out);
  out_a = out[0];
  out_b = out[1];
}

void HmacContext::mac_tagged_cross_many(const HmacContext* const* ctxs, std::size_t count,
                                        std::uint8_t tag,
                                        std::span<const std::uint8_t> message,
                                        Sha256::DigestBytes* out) {
  constexpr std::size_t kMax = Sha256::kMaxBatch;
  util::expects(count <= kMax, "mac_tagged_cross_many: batch too large");
  if (count == 0) return;

  if (message.size() <= kFusedMaxMessage) {
    // Fused fixed-shape path (the vote hot path: message is a 32-byte
    // digest). EVERY lane compresses the SAME prepared inner block — only
    // the key midstates differ — then one padded outer block each. No
    // context copies, no incremental-update buffering, no finalize
    // machinery: two compress_wide passes total, up to wide_lanes() shares
    // per pass.
    std::uint8_t inner_block[kBlock];
    build_fused_inner_block(tag, message, inner_block);

    std::uint32_t inner_states[kMax][8];
    std::uint32_t* st[kMax];
    const std::uint8_t* bl[kMax];
    for (std::size_t i = 0; i < count; ++i) {
      ctxs[i]->inner_.export_midstate(inner_states[i]);
      st[i] = inner_states[i];
      bl[i] = inner_block;
    }
    Sha256::compress_wide(st, bl, count, 1);

    std::uint32_t outer_states[kMax][8];
    for (std::size_t i = 0; i < count; ++i) ctxs[i]->outer_.export_midstate(outer_states[i]);
    fused_outer_pass(inner_states, outer_states, count, out);
    return;
  }

  // Long messages: paired incremental runs (rare — votes are digests).
  std::size_t i = 0;
  for (; i + 2 <= count; i += 2) {
    Sha256 ia = ctxs[i]->inner_;
    Sha256 ib = ctxs[i + 1]->inner_;
    ia.update({&tag, 1});
    ib.update({&tag, 1});
    Sha256::update_two(ia, message, ib, message);
    Sha256::DigestBytes da;
    Sha256::DigestBytes db;
    Sha256::finalize_two(ia, ib, da, db);

    Sha256 oa = ctxs[i]->outer_;
    Sha256 ob = ctxs[i + 1]->outer_;
    Sha256::update_two(oa, da, ob, db);
    Sha256::finalize_two(oa, ob, out[i], out[i + 1]);
  }
  if (i < count) {
    Sha256 in = ctxs[i]->inner_;
    in.update({&tag, 1});
    in.update(message);
    const auto d = in.finalize();
    Sha256 o = ctxs[i]->outer_;
    o.update(d);
    out[i] = o.finalize();
  }
}

Sha256::DigestBytes hmac_sha256(std::span<const std::uint8_t> key,
                                std::span<const std::uint8_t> message) {
  return HmacContext(key).mac(message);
}

}  // namespace leopard::crypto
