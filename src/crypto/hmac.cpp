#include "crypto/hmac.hpp"

#include <array>
#include <cstring>

namespace leopard::crypto {

void HmacContext::init(std::span<const std::uint8_t> key) {
  constexpr std::size_t kBlockSize = Sha256::kBlockSize;

  std::array<std::uint8_t, kBlockSize> key_block{};
  if (key.size() > kBlockSize) {
    const auto hashed = Sha256::hash(key);
    std::memcpy(key_block.data(), hashed.data(), hashed.size());
  } else if (!key.empty()) {
    std::memcpy(key_block.data(), key.data(), key.size());
  }

  std::array<std::uint8_t, kBlockSize> ipad;
  std::array<std::uint8_t, kBlockSize> opad;
  for (std::size_t i = 0; i < kBlockSize; ++i) {
    ipad[i] = static_cast<std::uint8_t>(key_block[i] ^ 0x36);
    opad[i] = static_cast<std::uint8_t>(key_block[i] ^ 0x5c);
  }

  inner_ = Sha256();
  outer_ = Sha256();
  inner_.update(ipad);
  outer_.update(opad);
}

Sha256::DigestBytes HmacContext::mac(std::span<const std::uint8_t> message) const {
  Sha256 in = inner_;
  in.update(message);
  const auto inner_digest = in.finalize();

  Sha256 out = outer_;
  out.update(inner_digest);
  return out.finalize();
}

void HmacContext::mac_pair(std::span<const std::uint8_t> m0, std::span<const std::uint8_t> m1,
                           Sha256::DigestBytes& out0, Sha256::DigestBytes& out1) const {
  Sha256 in0 = inner_;
  Sha256 in1 = inner_;
  Sha256::update_two(in0, m0, in1, m1);
  Sha256::DigestBytes d0;
  Sha256::DigestBytes d1;
  Sha256::finalize_two(in0, in1, d0, d1);

  Sha256 o0 = outer_;
  Sha256 o1 = outer_;
  Sha256::update_two(o0, d0, o1, d1);
  Sha256::finalize_two(o0, o1, out0, out1);
}

void HmacContext::mac_tagged_pair(std::uint8_t tag0, std::uint8_t tag1,
                                  std::span<const std::uint8_t> message,
                                  Sha256::DigestBytes& out0,
                                  Sha256::DigestBytes& out1) const {
  Sha256 in0 = inner_;
  Sha256 in1 = inner_;
  in0.update({&tag0, 1});
  in1.update({&tag1, 1});
  Sha256::update_two(in0, message, in1, message);
  Sha256::DigestBytes d0;
  Sha256::DigestBytes d1;
  Sha256::finalize_two(in0, in1, d0, d1);

  Sha256 o0 = outer_;
  Sha256 o1 = outer_;
  Sha256::update_two(o0, d0, o1, d1);
  Sha256::finalize_two(o0, o1, out0, out1);
}

namespace {

constexpr std::size_t kBlock = Sha256::kBlockSize;

/// Longest tag||message that still pads into ONE inner block
/// (1 tag + len + 0x80 + 8-byte length <= 64).
constexpr std::size_t kFusedMaxMessage = kBlock - 10;

void store_be64(std::uint8_t* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<std::uint8_t>(v >> (56 - 8 * i));
}

void store_be32x8(std::uint8_t* p, const std::uint32_t s[8]) {
  for (int i = 0; i < 8; ++i) {
    p[4 * i + 0] = static_cast<std::uint8_t>(s[i] >> 24);
    p[4 * i + 1] = static_cast<std::uint8_t>(s[i] >> 16);
    p[4 * i + 2] = static_cast<std::uint8_t>(s[i] >> 8);
    p[4 * i + 3] = static_cast<std::uint8_t>(s[i]);
  }
}

}  // namespace

void HmacContext::mac_tagged_cross(const HmacContext& a, const HmacContext& b,
                                   std::uint8_t tag, std::span<const std::uint8_t> message,
                                   Sha256::DigestBytes& out_a, Sha256::DigestBytes& out_b) {
  if (message.size() <= kFusedMaxMessage) {
    // Fused fixed-shape path (the vote hot path: message is a 32-byte
    // digest). Both lanes compress the SAME prepared inner block — only the
    // key midstates differ — then one padded outer block each. No context
    // copies, no incremental-update buffering, no finalize machinery: two
    // compress_pair calls total.
    std::uint8_t inner_block[kBlock] = {};
    inner_block[0] = tag;
    if (!message.empty()) std::memcpy(inner_block + 1, message.data(), message.size());
    inner_block[1 + message.size()] = 0x80;
    store_be64(inner_block + kBlock - 8,
               static_cast<std::uint64_t>(kBlock + 1 + message.size()) * 8);

    std::uint32_t sa[8];
    std::uint32_t sb[8];
    a.inner_.export_midstate(sa);
    b.inner_.export_midstate(sb);
    Sha256::compress_pair(sa, inner_block, sb, inner_block, 1);

    // Outer: H(opad-midstate || inner-digest), one padded block per lane.
    std::uint8_t outer_a[kBlock] = {};
    std::uint8_t outer_b[kBlock] = {};
    store_be32x8(outer_a, sa);
    store_be32x8(outer_b, sb);
    outer_a[Sha256::kDigestSize] = 0x80;
    outer_b[Sha256::kDigestSize] = 0x80;
    store_be64(outer_a + kBlock - 8, (kBlock + Sha256::kDigestSize) * 8);
    store_be64(outer_b + kBlock - 8, (kBlock + Sha256::kDigestSize) * 8);

    std::uint32_t oa[8];
    std::uint32_t ob[8];
    a.outer_.export_midstate(oa);
    b.outer_.export_midstate(ob);
    Sha256::compress_pair(oa, outer_a, ob, outer_b, 1);
    store_be32x8(out_a.data(), oa);
    store_be32x8(out_b.data(), ob);
    return;
  }

  Sha256 ia = a.inner_;
  Sha256 ib = b.inner_;
  ia.update({&tag, 1});
  ib.update({&tag, 1});
  Sha256::update_two(ia, message, ib, message);
  Sha256::DigestBytes da;
  Sha256::DigestBytes db;
  Sha256::finalize_two(ia, ib, da, db);

  Sha256 oa = a.outer_;
  Sha256 ob = b.outer_;
  Sha256::update_two(oa, da, ob, db);
  Sha256::finalize_two(oa, ob, out_a, out_b);
}

Sha256::DigestBytes hmac_sha256(std::span<const std::uint8_t> key,
                                std::span<const std::uint8_t> message) {
  return HmacContext(key).mac(message);
}

}  // namespace leopard::crypto
