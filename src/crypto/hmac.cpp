#include "crypto/hmac.hpp"

#include <array>
#include <cstring>

namespace leopard::crypto {

void HmacContext::init(std::span<const std::uint8_t> key) {
  constexpr std::size_t kBlockSize = Sha256::kBlockSize;

  std::array<std::uint8_t, kBlockSize> key_block{};
  if (key.size() > kBlockSize) {
    const auto hashed = Sha256::hash(key);
    std::memcpy(key_block.data(), hashed.data(), hashed.size());
  } else if (!key.empty()) {
    std::memcpy(key_block.data(), key.data(), key.size());
  }

  std::array<std::uint8_t, kBlockSize> ipad;
  std::array<std::uint8_t, kBlockSize> opad;
  for (std::size_t i = 0; i < kBlockSize; ++i) {
    ipad[i] = static_cast<std::uint8_t>(key_block[i] ^ 0x36);
    opad[i] = static_cast<std::uint8_t>(key_block[i] ^ 0x5c);
  }

  inner_ = Sha256();
  outer_ = Sha256();
  inner_.update(ipad);
  outer_.update(opad);
}

Sha256::DigestBytes HmacContext::mac(std::span<const std::uint8_t> message) const {
  Sha256 in = inner_;
  in.update(message);
  const auto inner_digest = in.finalize();

  Sha256 out = outer_;
  out.update(inner_digest);
  return out.finalize();
}

void HmacContext::mac_pair(std::span<const std::uint8_t> m0, std::span<const std::uint8_t> m1,
                           Sha256::DigestBytes& out0, Sha256::DigestBytes& out1) const {
  Sha256 in0 = inner_;
  Sha256 in1 = inner_;
  Sha256::update_two(in0, m0, in1, m1);
  Sha256::DigestBytes d0;
  Sha256::DigestBytes d1;
  Sha256::finalize_two(in0, in1, d0, d1);

  Sha256 o0 = outer_;
  Sha256 o1 = outer_;
  Sha256::update_two(o0, d0, o1, d1);
  Sha256::finalize_two(o0, o1, out0, out1);
}

void HmacContext::mac_tagged_pair(std::uint8_t tag0, std::uint8_t tag1,
                                  std::span<const std::uint8_t> message,
                                  Sha256::DigestBytes& out0,
                                  Sha256::DigestBytes& out1) const {
  Sha256 in0 = inner_;
  Sha256 in1 = inner_;
  in0.update({&tag0, 1});
  in1.update({&tag1, 1});
  Sha256::update_two(in0, message, in1, message);
  Sha256::DigestBytes d0;
  Sha256::DigestBytes d1;
  Sha256::finalize_two(in0, in1, d0, d1);

  Sha256 o0 = outer_;
  Sha256 o1 = outer_;
  Sha256::update_two(o0, d0, o1, d1);
  Sha256::finalize_two(o0, o1, out0, out1);
}

Sha256::DigestBytes hmac_sha256(std::span<const std::uint8_t> key,
                                std::span<const std::uint8_t> message) {
  return HmacContext(key).mac(message);
}

}  // namespace leopard::crypto
