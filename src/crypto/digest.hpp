// 32-byte digest value type (the paper's β = 32 bytes, SHA-256 based).
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <string_view>

#include "crypto/sha256.hpp"

namespace leopard::crypto {

/// A 32-byte hash value with value semantics; ordered and hashable so it can
/// key maps of datablocks/BFTblocks.
class Digest {
 public:
  static constexpr std::size_t kSize = Sha256::kDigestSize;

  constexpr Digest() = default;
  explicit Digest(const Sha256::DigestBytes& bytes) : bytes_(bytes) {}

  static Digest of(std::span<const std::uint8_t> data) { return Digest(Sha256::hash(data)); }
  static Digest of_string(std::string_view s) {
    return of({reinterpret_cast<const std::uint8_t*>(s.data()), s.size()});
  }

  [[nodiscard]] std::span<const std::uint8_t, kSize> bytes() const { return bytes_; }
  [[nodiscard]] bool is_zero() const {
    for (auto b : bytes_) {
      if (b != 0) return false;
    }
    return true;
  }

  /// First 8 bytes as a little-endian integer, for cheap hashing/short ids.
  [[nodiscard]] std::uint64_t prefix64() const {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(bytes_[i]) << (8 * i);
    return v;
  }

  [[nodiscard]] std::string hex() const;
  /// Short human-readable form (first 4 bytes) for logs.
  [[nodiscard]] std::string short_hex() const;

  friend auto operator<=>(const Digest&, const Digest&) = default;

 private:
  Sha256::DigestBytes bytes_{};
};

}  // namespace leopard::crypto

template <>
struct std::hash<leopard::crypto::Digest> {
  std::size_t operator()(const leopard::crypto::Digest& d) const noexcept {
    return static_cast<std::size_t>(d.prefix64());
  }
};
