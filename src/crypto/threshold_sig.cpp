#include "crypto/threshold_sig.hpp"

#include <algorithm>
#include <cstring>

#include "crypto/hmac.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace leopard::crypto {

ThresholdScheme::ThresholdScheme(std::uint32_t n, std::uint32_t threshold, std::uint64_t seed)
    : n_(n), threshold_(threshold) {
  util::expects(n >= 1, "threshold scheme needs at least one signer");
  util::expects(threshold >= 1 && threshold <= n, "threshold must be in [1, n]");

  // Trusted key generation: master key plus per-signer keys derived from it.
  // Each key's HMAC pad schedule is compressed once here; every subsequent
  // sign/verify reuses the midstates.
  util::Rng rng(seed ^ 0x7e0bafd5u);
  util::Bytes master_key(32);
  rng.fill(master_key.data(), master_key.size());
  master_ctx_.init(master_key);

  signer_ctxs_.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    util::ByteWriter w(32);
    w.str("leopard.tsig.signer");
    w.u32(i);
    const auto derived = master_ctx_.mac(w.bytes());
    signer_ctxs_.emplace_back(derived);
  }
}

SignatureBytes ThresholdScheme::evaluate(const HmacContext& ctx,
                                         std::span<const std::uint8_t> message) const {
  // 48-byte output: HMAC(key, 0x00 || m) || first 16 bytes of HMAC(key, 0x01 || m).
  // The two domain-separated MACs share one message, so their inner and outer
  // hashes run as a two-lane pair.
  Sha256::DigestBytes h0;
  Sha256::DigestBytes h1;
  ctx.mac_tagged_pair(0x00, 0x01, message, h0, h1);
  SignatureBytes out{};
  std::memcpy(out.data(), h0.data(), 32);
  std::memcpy(out.data() + 32, h1.data(), 16);
  return out;
}

SignatureShare ThresholdScheme::sign_share(SignerIndex i,
                                           std::span<const std::uint8_t> message) const {
  util::expects(i < n_, "signer index out of range");
  return SignatureShare{i, evaluate(signer_ctxs_[i], message)};
}

bool ThresholdScheme::verify_share(std::span<const std::uint8_t> message,
                                   const SignatureShare& share) const {
  if (share.signer >= n_) return false;
  return evaluate(signer_ctxs_[share.signer], message) == share.bytes;
}

void ThresholdScheme::evaluate_pair(const HmacContext& ctx_a, const HmacContext& ctx_b,
                                    std::span<const std::uint8_t> message,
                                    SignatureBytes& out_a, SignatureBytes& out_b) const {
  // Same 48-byte construction as evaluate(), but the two signers' MACs are
  // paired per tag: the tag-0x00 pass and the tag-0x01 pass carry no data
  // dependency on each other, so the four inner/outer compressions of a
  // share pair overlap instead of serializing inner→outer per share.
  Sha256::DigestBytes a0, b0, a1, b1;
  HmacContext::mac_tagged_cross(ctx_a, ctx_b, 0x00, message, a0, b0);
  HmacContext::mac_tagged_cross(ctx_a, ctx_b, 0x01, message, a1, b1);
  std::memcpy(out_a.data(), a0.data(), 32);
  std::memcpy(out_a.data() + 32, a1.data(), 16);
  std::memcpy(out_b.data(), b0.data(), 32);
  std::memcpy(out_b.data() + 32, b1.data(), 16);
}

std::optional<ThresholdSignature> ThresholdScheme::combine(
    std::span<const std::uint8_t> message, std::span<const SignatureShare> shares) const {
  // Count distinct signers with valid shares. Verification is batched:
  // adjacent shares are evaluated as a cross-keyed two-lane pair instead of
  // one full evaluate() per share (see evaluate_pair). Distinctness is a
  // signer bitmap, not a linear scan — the scan was O(quorum²) at n >= 100.
  std::vector<std::uint64_t> seen_mask((n_ + 63) / 64, 0);
  std::uint32_t distinct_valid = 0;
  const auto admit = [&](const SignatureShare& share, const SignatureBytes& expected) {
    if (share.bytes != expected) return;
    auto& word = seen_mask[share.signer >> 6];
    const auto bit = std::uint64_t{1} << (share.signer & 63);
    if ((word & bit) != 0) return;
    word |= bit;
    ++distinct_valid;
  };

  std::size_t i = 0;
  for (; i + 1 < shares.size(); i += 2) {
    const auto& a = shares[i];
    const auto& b = shares[i + 1];
    if (a.signer >= n_ || b.signer >= n_) break;  // fall back to singles
    SignatureBytes ea, eb;
    evaluate_pair(signer_ctxs_[a.signer], signer_ctxs_[b.signer], message, ea, eb);
    admit(a, ea);
    admit(b, eb);
  }
  for (; i < shares.size(); ++i) {
    const auto& share = shares[i];
    if (share.signer >= n_) continue;
    admit(share, evaluate(signer_ctxs_[share.signer], message));
  }

  if (distinct_valid < threshold_) return std::nullopt;
  // Unique-signature property: the combined value depends only on the message.
  return ThresholdSignature{evaluate(master_ctx_, message)};
}

bool ThresholdScheme::verify(std::span<const std::uint8_t> message,
                             const ThresholdSignature& sig) const {
  return evaluate(master_ctx_, message) == sig.bytes;
}

}  // namespace leopard::crypto
