#include "crypto/threshold_sig.hpp"

#include <algorithm>
#include <cstring>

#include "crypto/hmac.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace leopard::crypto {

ThresholdScheme::ThresholdScheme(std::uint32_t n, std::uint32_t threshold, std::uint64_t seed)
    : n_(n), threshold_(threshold) {
  util::expects(n >= 1, "threshold scheme needs at least one signer");
  util::expects(threshold >= 1 && threshold <= n, "threshold must be in [1, n]");

  // Trusted key generation: master key plus per-signer keys derived from it.
  // Each key's HMAC pad schedule is compressed once here; every subsequent
  // sign/verify reuses the midstates.
  util::Rng rng(seed ^ 0x7e0bafd5u);
  util::Bytes master_key(32);
  rng.fill(master_key.data(), master_key.size());
  master_ctx_.init(master_key);

  signer_ctxs_.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    util::ByteWriter w(32);
    w.str("leopard.tsig.signer");
    w.u32(i);
    const auto derived = master_ctx_.mac(w.bytes());
    signer_ctxs_.emplace_back(derived);
  }
}

SignatureBytes ThresholdScheme::evaluate(const HmacContext& ctx,
                                         std::span<const std::uint8_t> message) const {
  // 48-byte output: HMAC(key, 0x00 || m) || first 16 bytes of HMAC(key, 0x01 || m).
  // The two domain-separated MACs share one message, so their inner and outer
  // hashes run as a two-lane pair.
  Sha256::DigestBytes h0;
  Sha256::DigestBytes h1;
  ctx.mac_tagged_pair(0x00, 0x01, message, h0, h1);
  SignatureBytes out{};
  std::memcpy(out.data(), h0.data(), 32);
  std::memcpy(out.data() + 32, h1.data(), 16);
  return out;
}

SignatureShare ThresholdScheme::sign_share(SignerIndex i,
                                           std::span<const std::uint8_t> message) const {
  util::expects(i < n_, "signer index out of range");
  return SignatureShare{i, evaluate(signer_ctxs_[i], message)};
}

bool ThresholdScheme::verify_share(std::span<const std::uint8_t> message,
                                   const SignatureShare& share) const {
  if (share.signer >= n_) return false;
  return evaluate(signer_ctxs_[share.signer], message) == share.bytes;
}

std::optional<ThresholdSignature> ThresholdScheme::combine(
    std::span<const std::uint8_t> message, std::span<const SignatureShare> shares) const {
  // Count distinct signers with valid shares.
  std::vector<SignerIndex> seen;
  seen.reserve(shares.size());
  for (const auto& share : shares) {
    if (!verify_share(message, share)) continue;
    if (std::find(seen.begin(), seen.end(), share.signer) != seen.end()) continue;
    seen.push_back(share.signer);
  }
  if (seen.size() < threshold_) return std::nullopt;
  // Unique-signature property: the combined value depends only on the message.
  return ThresholdSignature{evaluate(master_ctx_, message)};
}

bool ThresholdScheme::verify(std::span<const std::uint8_t> message,
                             const ThresholdSignature& sig) const {
  return evaluate(master_ctx_, message) == sig.bytes;
}

}  // namespace leopard::crypto
