#include "crypto/threshold_sig.hpp"

#include <algorithm>
#include <cstring>

#include "crypto/hmac.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/worker_pool.hpp"

namespace leopard::crypto {

ThresholdScheme::ThresholdScheme(std::uint32_t n, std::uint32_t threshold, std::uint64_t seed)
    : n_(n), threshold_(threshold) {
  util::expects(n >= 1, "threshold scheme needs at least one signer");
  util::expects(threshold >= 1 && threshold <= n, "threshold must be in [1, n]");

  // Trusted key generation: master key plus per-signer keys derived from it.
  // Each key's HMAC pad schedule is compressed once here; every subsequent
  // sign/verify reuses the midstates.
  util::Rng rng(seed ^ 0x7e0bafd5u);
  util::Bytes master_key(32);
  rng.fill(master_key.data(), master_key.size());
  master_ctx_.init(master_key);

  signer_ctxs_.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    util::ByteWriter w(32);
    w.str("leopard.tsig.signer");
    w.u32(i);
    const auto derived = master_ctx_.mac(w.bytes());
    signer_ctxs_.emplace_back(derived);
  }
}

SignatureBytes ThresholdScheme::evaluate(const HmacContext& ctx,
                                         std::span<const std::uint8_t> message) const {
  // 48-byte output: HMAC(key, 0x00 || m) || first 16 bytes of HMAC(key, 0x01 || m).
  // The two domain-separated MACs share one message, so their inner and outer
  // hashes run as a two-lane pair.
  Sha256::DigestBytes h0;
  Sha256::DigestBytes h1;
  ctx.mac_tagged_pair(0x00, 0x01, message, h0, h1);
  SignatureBytes out{};
  std::memcpy(out.data(), h0.data(), 32);
  std::memcpy(out.data() + 32, h1.data(), 16);
  return out;
}

SignatureShare ThresholdScheme::sign_share(SignerIndex i,
                                           std::span<const std::uint8_t> message) const {
  util::expects(i < n_, "signer index out of range");
  return SignatureShare{i, evaluate(signer_ctxs_[i], message)};
}

bool ThresholdScheme::verify_share(std::span<const std::uint8_t> message,
                                   const SignatureShare& share) const {
  if (share.signer >= n_) return false;
  return evaluate(signer_ctxs_[share.signer], message) == share.bytes;
}

void ThresholdScheme::evaluate_batch(const HmacContext* const* ctxs, std::size_t count,
                                     std::span<const std::uint8_t> message,
                                     SignatureBytes* out) const {
  // Same 48-byte construction as evaluate(), but the signers' MACs run as
  // cross-keyed n-lane batches per tag: the tag-0x00 pass and the tag-0x01
  // pass carry no data dependency on each other, and within a pass every
  // lane shares the prepared inner block, so a whole batch of shares costs
  // four compress_wide passes regardless of batch size (up to wide_lanes()).
  Sha256::DigestBytes h0[Sha256::kMaxBatch];
  Sha256::DigestBytes h1[Sha256::kMaxBatch];
  HmacContext::mac_tagged_cross_many(ctxs, count, 0x00, message, h0);
  HmacContext::mac_tagged_cross_many(ctxs, count, 0x01, message, h1);
  for (std::size_t i = 0; i < count; ++i) {
    std::memcpy(out[i].data(), h0[i].data(), 32);
    std::memcpy(out[i].data() + 32, h1[i].data(), 16);
  }
}

std::optional<ThresholdSignature> ThresholdScheme::combine(
    std::span<const std::uint8_t> message, std::span<const SignatureShare> shares) const {
  // Count distinct signers with valid shares. Per-share validity is a pure
  // function, so it is computed first — SIMD-batched (groups of up to
  // wide_lanes() shares per cross-keyed n-lane pass, see evaluate_batch)
  // and, for combine bursts, fanned across the worker pool — then folded
  // into a distinctness bitmap serially. The fold bitmap, not a linear
  // scan: the scan was O(quorum²) at n >= 100.
  const std::size_t batch =
      std::min<std::size_t>(std::max<std::size_t>(Sha256::wide_lanes(), 2),
                            Sha256::kMaxBatch);
  std::vector<std::uint8_t> valid(shares.size(), 0);
  const auto verify_range = [&](std::size_t i, std::size_t end) {
    while (end - i >= 2) {
      const std::size_t g = std::min(batch, end - i);
      const HmacContext* ctxs[Sha256::kMaxBatch];
      bool in_range = true;
      for (std::size_t l = 0; l < g && in_range; ++l) {
        in_range = shares[i + l].signer < n_;
        if (in_range) ctxs[l] = &signer_ctxs_[shares[i + l].signer];
      }
      if (!in_range) break;  // fall back to singles
      SignatureBytes expected[Sha256::kMaxBatch];
      evaluate_batch(ctxs, g, message, expected);
      for (std::size_t l = 0; l < g; ++l) {
        valid[i + l] = shares[i + l].bytes == expected[l] ? 1 : 0;
      }
      i += g;
    }
    for (; i < end; ++i) {
      const auto& share = shares[i];
      if (share.signer >= n_) continue;
      valid[i] = evaluate(signer_ctxs_[share.signer], message) == share.bytes ? 1 : 0;
    }
  };

  // Quorum-sized bursts (and S sharded instances combining on one process)
  // split across the pool's lanes, chunked on batch boundaries so each lane
  // keeps full SIMD width. Lanes write disjoint flag ranges and the MAC
  // kernels are pure stack compute, so the flags — and therefore the
  // combine result — are identical for every pool size; small bursts and
  // the 1-lane pool run inline, bit-for-bit the old serial path.
  auto& pool = util::WorkerPool::global();
  if (pool.lanes() > 1 && shares.size() >= 2 * batch) {
    pool.for_ranges(shares.size(), batch,
                    [&](std::size_t, std::size_t begin, std::size_t end) {
                      verify_range(begin, end);
                    });
  } else {
    verify_range(0, shares.size());
  }

  std::vector<std::uint64_t> seen_mask((n_ + 63) / 64, 0);
  std::uint32_t distinct_valid = 0;
  for (std::size_t i = 0; i < shares.size(); ++i) {
    if (!valid[i]) continue;
    auto& word = seen_mask[shares[i].signer >> 6];
    const auto bit = std::uint64_t{1} << (shares[i].signer & 63);
    if ((word & bit) != 0) continue;
    word |= bit;
    ++distinct_valid;
  }

  if (distinct_valid < threshold_) return std::nullopt;
  // Unique-signature property: the combined value depends only on the message.
  return ThresholdSignature{evaluate(master_ctx_, message)};
}

bool ThresholdScheme::verify(std::span<const std::uint8_t> message,
                             const ThresholdSignature& sig) const {
  return evaluate(master_ctx_, message) == sig.bytes;
}

}  // namespace leopard::crypto
