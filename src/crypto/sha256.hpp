// SHA-256 (FIPS 180-4), implemented from scratch.
//
// This is the β = 32-byte collision-resistant hash H(·) used throughout the
// Leopard protocol: datablock/BFTblock digests, Merkle trees, vote targets.
#pragma once

#include <array>
#include <cstdint>
#include <span>

namespace leopard::crypto {

/// Incremental SHA-256 context. Use Sha256::hash() for one-shot hashing.
class Sha256 {
 public:
  static constexpr std::size_t kDigestSize = 32;
  using DigestBytes = std::array<std::uint8_t, kDigestSize>;

  Sha256();

  /// Absorbs more input; can be called repeatedly.
  void update(std::span<const std::uint8_t> data);

  /// Finalizes and returns the digest. The context must not be reused after.
  DigestBytes finalize();

  /// One-shot convenience.
  static DigestBytes hash(std::span<const std::uint8_t> data);

 private:
  void process_block(const std::uint8_t* block);
  void absorb_padding(const std::uint8_t* data, std::size_t len);

  std::array<std::uint32_t, 8> state_{};
  std::array<std::uint8_t, 64> buffer_{};
  std::size_t buffered_ = 0;
  std::uint64_t total_bytes_ = 0;
  bool finalized_ = false;
};

}  // namespace leopard::crypto
