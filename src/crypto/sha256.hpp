// SHA-256 (FIPS 180-4), implemented from scratch.
//
// This is the β = 32-byte collision-resistant hash H(·) used throughout the
// Leopard protocol: datablock/BFTblock digests, Merkle trees, vote targets.
//
// The compression function sits behind a runtime kernel dispatch mirroring
// erasure::Gf256 (see docs/PERF.md):
//
//   kPortable — the original from-scratch round loop, retained as the
//               byte-exact reference oracle for property tests;
//   kShaNi    — x86 SHA extensions (sha256rnds2/sha256msg1/sha256msg2),
//               one block in ~64 instructions;
//   kArmCe    — ARMv8 crypto extensions (sha256h/sha256h2/sha256su0/su1).
//
//   kAvx2     — 8-wide transposed multi-buffer: eight independent message
//               streams, one ymm register per working variable (lane j of
//               each register is stream j), the message schedule computed
//               with AVX2 32-bit ops. Single-stream calls fall back to the
//               portable loop — this kernel only pays off when several
//               streams are available;
//   kSse2     — the same technique at 4 lanes on baseline x86-64 vectors;
//   kNeon     — the 4-lane variant on aarch64 without the crypto extensions.
//
// On top of the single-stream context there is a multi-buffer interface:
// hash_many() and the update_many()/finalize_many() drivers run up to
// wide_lanes() independent message streams through the compression function
// together — truly simultaneously on the wide kernels, back to back (so the
// hardware dependency chains overlap in the out-of-order window) on the
// two-lane kShaNi/kArmCe drivers. Merkle leaf and interior hashing, the
// HMAC-based vote evaluation, and batched vote verification all have this
// n-lane shape.
#pragma once

#include <array>
#include <cstdint>
#include <span>

namespace leopard::crypto {

/// Incremental SHA-256 context. Use Sha256::hash() for one-shot hashing.
class Sha256 {
 public:
  static constexpr std::size_t kDigestSize = 32;
  static constexpr std::size_t kBlockSize = 64;
  using DigestBytes = std::array<std::uint8_t, kDigestSize>;

  // --- kernel dispatch ------------------------------------------------------

  /// Which compression-function implementation update/finalize dispatch to.
  /// kAvx2/kSse2/kNeon are multi-buffer kernels: their single-stream path is
  /// the portable loop, their n-lane path runs 8 (AVX2) or 4 (SSE2/NEON)
  /// streams per pass.
  enum class Kernel { kPortable, kShaNi, kArmCe, kAvx2, kSse2, kNeon };

  /// Largest batch update_many/finalize_many/compress_wide accept per call.
  static constexpr std::size_t kMaxBatch = 16;

  /// Kernel currently in effect (auto-detected at startup, see force_kernel).
  static Kernel active_kernel();

  /// Human-readable name of `k` ("portable", "sha_ni", "arm_ce").
  static const char* kernel_name(Kernel k);

  /// Overrides dispatch, clamped to what this CPU supports; returns the
  /// kernel actually installed. Intended for tests and benches.
  static Kernel force_kernel(Kernel k);

  /// True if `k` can run on this CPU/build.
  static bool kernel_available(Kernel k);

  // --- single-stream API ----------------------------------------------------

  Sha256();

  /// Absorbs more input; can be called repeatedly.
  void update(std::span<const std::uint8_t> data);

  /// Finalizes and returns the digest. The context must not be reused after.
  DigestBytes finalize();

  /// One-shot convenience.
  static DigestBytes hash(std::span<const std::uint8_t> data);

  // --- multi-buffer interface -----------------------------------------------

  /// Hashes `count` equal-size rows laid out at base + i*stride (row i is
  /// `len` bytes): out[i] = H(prefix || row_i). Rows are paired into the
  /// two-lane drivers below; this is the Merkle hash_leaves shape, where the
  /// rows are erasure-coded shards back to back in an arena and `prefix` is
  /// the 1-byte domain-separation tag.
  static void hash_many(std::span<const std::uint8_t> prefix, const std::uint8_t* base,
                        std::size_t stride, std::size_t len, std::size_t count,
                        DigestBytes* out);

  /// Absorbs `da` into `a` and `db` into `b`, pairing full blocks of the two
  /// streams through the kernel's two-block driver. Equivalent to
  /// a.update(da); b.update(db).
  static void update_two(Sha256& a, std::span<const std::uint8_t> da, Sha256& b,
                         std::span<const std::uint8_t> db);

  /// Finalizes both contexts, pairing their padding blocks when the streams
  /// are shaped alike. Equivalent to out_a = a.finalize(); out_b = b.finalize().
  static void finalize_two(Sha256& a, Sha256& b, DigestBytes& out_a, DigestBytes& out_b);

  /// Lanes the active kernel's widest multi-buffer driver runs per pass: 8
  /// for kAvx2, 4 for kSse2/kNeon, 2 everywhere else (the paired drivers).
  static std::size_t wide_lanes();

  /// Absorbs data[i] into *ctxs[i] for i in [0, count), count <= kMaxBatch.
  /// Streams that stay block-aligned in lockstep (equal shapes — the
  /// hash_many case) run through the n-lane kernel; stragglers fall back to
  /// pairs/singles. Equivalent to ctxs[i]->update(data[i]) for each i.
  static void update_many(Sha256* const* ctxs, const std::span<const std::uint8_t>* data,
                          std::size_t count);

  /// Finalizes *ctxs[i] into out[i] for i in [0, count), count <= kMaxBatch,
  /// batching the padding blocks of like-shaped streams through the n-lane
  /// kernel. Equivalent to out[i] = ctxs[i]->finalize() for each i.
  static void finalize_many(Sha256* const* ctxs, DigestBytes* out, std::size_t count);

  // --- raw block interface (fused fixed-shape flows) ------------------------

  /// Exports the 8-word compression state. Only valid at a block boundary
  /// (no buffered partial input); HMAC midstates qualify by construction.
  /// Lets fused paths (HmacContext::mac_tagged_cross) run prepared padded
  /// blocks through compress_pair without the incremental-update machinery.
  void export_midstate(std::uint32_t out[8]) const;

  /// Two-lane raw compression: advances `state_a` over `blocks_a` and
  /// `state_b` over `blocks_b` (`nblocks` 64-byte blocks each) through the
  /// active kernel's paired driver. Blocks must be fully padded already.
  static void compress_pair(std::uint32_t* state_a, const std::uint8_t* blocks_a,
                            std::uint32_t* state_b, const std::uint8_t* blocks_b,
                            std::size_t nblocks);

  /// n-lane raw compression: advances states[i] over blocks[i] (`nblocks`
  /// 64-byte blocks each) for i in [0, count), count <= kMaxBatch. Full
  /// wide_lanes() groups run through the wide kernel; the remainder runs as
  /// pairs/singles. Lanes are independent — sharing a blocks pointer across
  /// lanes is allowed (the batched-HMAC inner-block shape).
  static void compress_wide(std::uint32_t* const* states, const std::uint8_t* const* blocks,
                            std::size_t count, std::size_t nblocks);

 private:
  /// Tops the carry buffer up from `data` and compresses it once full;
  /// returns the unconsumed remainder. Post: buffered_ == 0 unless `data`
  /// ran out before filling a whole block.
  std::span<const std::uint8_t> drain_buffer(std::span<const std::uint8_t> data);

  /// Stores a sub-block tail into the carry buffer (tail.size() < 64).
  void stash_tail(std::span<const std::uint8_t> tail);

  /// Builds the final padded tail (1 or 2 blocks) into `tail`; returns the
  /// block count. Does not touch state_.
  std::size_t build_final_blocks(std::uint8_t* tail) const;

  /// Writes state_ out big-endian.
  void emit_digest(DigestBytes& out) const;

  std::array<std::uint32_t, 8> state_{};
  std::array<std::uint8_t, kBlockSize> buffer_{};
  std::size_t buffered_ = 0;
  std::uint64_t total_bytes_ = 0;
  bool finalized_ = false;
};

}  // namespace leopard::crypto
