// (2f+1, n)-threshold signature scheme TS = (TSig, TVrf, TSR) per §III-B.
//
// SUBSTITUTION (documented in DESIGN.md): the paper instantiates TS with
// threshold BLS (48-byte signatures over BN curves). Pairing-based crypto is
// unavailable offline, so this scheme is a deterministic keyed-hash
// construction with identical *protocol-visible* behaviour:
//   - per-replica signing keys tsk_i, a master public key, fixed-size shares;
//   - shares and combined signatures serialize to exactly κ = 48 bytes, so
//     every wire-size computation in the evaluation matches the paper's;
//   - TSR accepts any `threshold` distinct valid shares and produces the same
//     unique combined signature (threshold BLS is also a unique signature
//     scheme), so vote aggregation and proof forwarding behave identically;
//   - invalid, duplicate, or insufficient shares are rejected.
// Verification uses a process-local key registry (the scheme object shared by
// the simulation). Unforgeability holds in the simulated threat model: the
// adversary is code we wrote, and it has no access to other replicas' keys.
// BLS CPU costs are charged via the simulator's CostModel instead.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "crypto/digest.hpp"
#include "crypto/hmac.hpp"
#include "util/bytes.hpp"

namespace leopard::crypto {

/// Index of a replica within the replica set, 0-based.
using SignerIndex = std::uint32_t;

/// κ = 48 bytes, matching threshold-BLS signature size used in the paper.
inline constexpr std::size_t kSignatureSize = 48;
using SignatureBytes = std::array<std::uint8_t, kSignatureSize>;

/// A single replica's vote: a threshold signature share ˆσ_i on a message.
struct SignatureShare {
  SignerIndex signer = 0;
  SignatureBytes bytes{};

  /// Wire size: 4-byte signer index + 48-byte share.
  static constexpr std::size_t kWireSize = 4 + kSignatureSize;

  friend bool operator==(const SignatureShare&, const SignatureShare&) = default;
};

/// A combined signature ˆσ = TSR(S): the notarization/confirmation proof.
struct ThresholdSignature {
  SignatureBytes bytes{};

  static constexpr std::size_t kWireSize = kSignatureSize;

  friend bool operator==(const ThresholdSignature&, const ThresholdSignature&) = default;
};

/// The threshold scheme instance shared by a cluster: key generation happens
/// at construction (trusted setup, as the paper assumes distributed keys are
/// in place: "Each replica holds a signature key pair ... known to all").
class ThresholdScheme {
 public:
  /// Creates keys for `n` signers with reconstruction threshold `threshold`
  /// (Leopard uses threshold = 2f + 1). Deterministic in `seed`.
  ThresholdScheme(std::uint32_t n, std::uint32_t threshold, std::uint64_t seed);

  [[nodiscard]] std::uint32_t n() const { return n_; }
  [[nodiscard]] std::uint32_t threshold() const { return threshold_; }

  /// TSig(tsk_i, m): deterministic share of signer `i` on `message`.
  [[nodiscard]] SignatureShare sign_share(SignerIndex i,
                                          std::span<const std::uint8_t> message) const;

  /// TVrf(tpk_i, ˆσ_i, m): checks a share against signer i's public key.
  [[nodiscard]] bool verify_share(std::span<const std::uint8_t> message,
                                  const SignatureShare& share) const;

  /// TSR(S): combines ≥ threshold distinct valid shares into the unique
  /// combined signature; returns nullopt if the set is insufficient/invalid.
  [[nodiscard]] std::optional<ThresholdSignature> combine(
      std::span<const std::uint8_t> message,
      std::span<const SignatureShare> shares) const;

  /// TVrf(tpk, ˆσ, m): verifies a combined signature under the master key.
  [[nodiscard]] bool verify(std::span<const std::uint8_t> message,
                            const ThresholdSignature& sig) const;

  /// Convenience overloads for signing/verifying digests (the common case:
  /// votes are on H(m)).
  [[nodiscard]] SignatureShare sign_share(SignerIndex i, const Digest& d) const {
    return sign_share(i, d.bytes());
  }
  [[nodiscard]] bool verify_share(const Digest& d, const SignatureShare& s) const {
    return verify_share(d.bytes(), s);
  }
  [[nodiscard]] std::optional<ThresholdSignature> combine(
      const Digest& d, std::span<const SignatureShare> shares) const {
    return combine(d.bytes(), shares);
  }
  [[nodiscard]] bool verify(const Digest& d, const ThresholdSignature& s) const {
    return verify(d.bytes(), s);
  }

 private:
  [[nodiscard]] SignatureBytes evaluate(const HmacContext& ctx,
                                        std::span<const std::uint8_t> message) const;

  /// Evaluates `count` signers' 48-byte values over one message with
  /// cross-keyed n-lane passes (batched vote verification; see combine()).
  /// One mac_tagged_cross_many call per domain tag — up to
  /// Sha256::wide_lanes() shares' MACs per compression pass.
  void evaluate_batch(const HmacContext* const* ctxs, std::size_t count,
                      std::span<const std::uint8_t> message, SignatureBytes* out) const;

  std::uint32_t n_;
  std::uint32_t threshold_;
  // Keyed HMAC midstates, precomputed once per key at setup: signing/verifying
  // a vote costs only the message blocks, not a fresh key schedule per call.
  HmacContext master_ctx_;
  std::vector<HmacContext> signer_ctxs_;
};

}  // namespace leopard::crypto
