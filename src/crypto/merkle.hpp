// Merkle tree with audit proofs, used by the datablock retrieval mechanism
// (Algorithm 3): responders erasure-code a datablock into n chunks, build a
// Merkle tree over the chunks, and attach an inclusion proof so the querier
// can validate each chunk before decoding (proof size β·log n, as in §V).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "crypto/digest.hpp"

namespace leopard::crypto {

/// Binary Merkle tree over caller-provided leaf digests. Odd nodes at a level
/// are promoted unchanged (no duplication). Domain separation: leaves are
/// hashed with a 0x00 prefix, interior nodes with 0x01.
class MerkleTree {
 public:
  /// Builds the full tree; `leaves` must be non-empty.
  explicit MerkleTree(std::vector<Digest> leaves);

  /// Hashes raw chunk data into a leaf digest (0x00-prefixed).
  static Digest hash_leaf(std::span<const std::uint8_t> data);

  /// Hashes `buf` as consecutive `leaf_size`-byte chunks, in place — the
  /// zero-copy companion to erasure::EncodedShards, whose arena lays shards
  /// out back to back. `buf.size()` must be a non-zero multiple of
  /// `leaf_size`.
  static std::vector<Digest> hash_leaves(std::span<const std::uint8_t> buf,
                                         std::size_t leaf_size);

  [[nodiscard]] const Digest& root() const { return levels_.back().front(); }
  [[nodiscard]] std::size_t leaf_count() const { return levels_.front().size(); }

  /// Sibling path for the leaf at `index`, bottom-up. Levels where the node
  /// was promoted (no sibling) contribute no entry.
  [[nodiscard]] std::vector<Digest> proof(std::size_t index) const;

  /// Verifies an audit proof produced by proof(); `leaf_count` must match the
  /// tree the proof came from.
  static bool verify(const Digest& root, const Digest& leaf, std::size_t index,
                     std::size_t leaf_count, std::span<const Digest> proof);

  /// Serialized proof size in bytes (each element is one digest).
  static std::size_t proof_wire_size(std::size_t proof_len) { return proof_len * Digest::kSize; }

 private:
  static Digest hash_interior(const Digest& left, const Digest& right);

  // levels_[0] = leaves, levels_.back() = {root}.
  std::vector<std::vector<Digest>> levels_;
};

}  // namespace leopard::crypto
