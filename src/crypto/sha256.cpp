#include "crypto/sha256.hpp"

#include <atomic>
#include <cstring>

#include "util/check.hpp"

#if defined(__x86_64__) || defined(__i386__)
#include <cpuid.h>
#include <x86intrin.h>
#define LEOPARD_SHA256_HAS_SHANI 1
#elif defined(__aarch64__)
#include <arm_neon.h>
#if defined(__linux__)
#include <sys/auxv.h>
#endif
#define LEOPARD_SHA256_HAS_ARMCE 1
#endif

namespace leopard::crypto {

namespace {

alignas(16) constexpr std::array<std::uint32_t, 64> kRoundConstants = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

constexpr std::array<std::uint32_t, 8> kInitialState = {
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
    0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19};

// ---------------------------------------------------------------------------
// Portable kernel (the reference oracle)
// ---------------------------------------------------------------------------

inline std::uint32_t rotr(std::uint32_t x, int n) { return (x >> n) | (x << (32 - n)); }
inline std::uint32_t big_sigma0(std::uint32_t x) { return rotr(x, 2) ^ rotr(x, 13) ^ rotr(x, 22); }
inline std::uint32_t big_sigma1(std::uint32_t x) { return rotr(x, 6) ^ rotr(x, 11) ^ rotr(x, 25); }
inline std::uint32_t small_sigma0(std::uint32_t x) { return rotr(x, 7) ^ rotr(x, 18) ^ (x >> 3); }
inline std::uint32_t small_sigma1(std::uint32_t x) { return rotr(x, 17) ^ rotr(x, 19) ^ (x >> 10); }
inline std::uint32_t ch(std::uint32_t x, std::uint32_t y, std::uint32_t z) {
  return (x & y) ^ (~x & z);
}
inline std::uint32_t maj(std::uint32_t x, std::uint32_t y, std::uint32_t z) {
  return (x & y) ^ (x & z) ^ (y & z);
}

void compress_portable(std::uint32_t* state, const std::uint8_t* data, std::size_t nblocks) {
  while (nblocks-- > 0) {
    const std::uint8_t* block = data;
    data += Sha256::kBlockSize;

    std::array<std::uint32_t, 64> w{};
    for (int i = 0; i < 16; ++i) {
      w[i] = (static_cast<std::uint32_t>(block[4 * i]) << 24) |
             (static_cast<std::uint32_t>(block[4 * i + 1]) << 16) |
             (static_cast<std::uint32_t>(block[4 * i + 2]) << 8) |
             static_cast<std::uint32_t>(block[4 * i + 3]);
    }
    for (int i = 16; i < 64; ++i) {
      w[i] = small_sigma1(w[i - 2]) + w[i - 7] + small_sigma0(w[i - 15]) + w[i - 16];
    }

    std::uint32_t a = state[0], b = state[1], c = state[2], d = state[3];
    std::uint32_t e = state[4], f = state[5], g = state[6], h = state[7];

    for (int i = 0; i < 64; ++i) {
      const std::uint32_t t1 = h + big_sigma1(e) + ch(e, f, g) + kRoundConstants[i] + w[i];
      const std::uint32_t t2 = big_sigma0(a) + maj(a, b, c);
      h = g;
      g = f;
      f = e;
      e = d + t1;
      d = c;
      c = b;
      b = a;
      a = t1 + t2;
    }

    state[0] += a;
    state[1] += b;
    state[2] += c;
    state[3] += d;
    state[4] += e;
    state[5] += f;
    state[6] += g;
    state[7] += h;
  }
}

// ---------------------------------------------------------------------------
// x86 SHA-NI kernel
// ---------------------------------------------------------------------------

#if defined(LEOPARD_SHA256_HAS_SHANI)

bool cpu_has_sha_ni() {
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (!__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx)) return false;
  if ((ebx & (1u << 29)) == 0) return false;  // CPUID.7.0:EBX.SHA
  if (!__get_cpuid(1, &eax, &ebx, &ecx, &edx)) return false;
  // The kernel also uses pshufb (SSSE3) and pblendw (SSE4.1).
  return (ecx & (1u << 9)) != 0 && (ecx & (1u << 19)) != 0;
}

// One 64-byte block on the (ABEF, CDGH) register layout the sha256rnds2
// instruction wants. Marked always_inline so compress_shani_x2 lays two
// independent dependency chains into one instruction window — the hardware's
// out-of-order engine then overlaps them, which is where the multi-buffer
// speedup comes from (sha256rnds2 has multi-cycle latency but pipelines).
__attribute__((target("sha,sse4.1,ssse3"), always_inline)) inline void shani_one_block(
    __m128i& state0, __m128i& state1, const std::uint8_t* p) {
  const __m128i bswap =
      _mm_set_epi64x(0x0c0d0e0f08090a0bLL, 0x0405060700010203LL);
  __m128i m0 = _mm_shuffle_epi8(_mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 0)), bswap);
  __m128i m1 = _mm_shuffle_epi8(_mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 16)), bswap);
  __m128i m2 = _mm_shuffle_epi8(_mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 32)), bswap);
  __m128i m3 = _mm_shuffle_epi8(_mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 48)), bswap);
  const __m128i abef_save = state0;
  const __m128i cdgh_save = state1;
  __m128i msg;

// Four rounds: add the round constants for group `g` to the current message
// vector and run both sha256rnds2 halves.
#define LEOPARD_SHANI_ROUNDS4(g, cur)                                               \
  msg = _mm_add_epi32(                                                              \
      (cur), _mm_load_si128(reinterpret_cast<const __m128i*>(&kRoundConstants[4 * (g)]))); \
  state1 = _mm_sha256rnds2_epu32(state1, state0, msg);                              \
  state0 = _mm_sha256rnds2_epu32(state0, state1, _mm_shuffle_epi32(msg, 0x0E))

// Message-schedule step: extend `dst` (the next w-quad) from the quad that
// just finished (`cur`) and its predecessor (`prev`).
#define LEOPARD_SHANI_SCHED(dst, cur, prev) \
  (dst) = _mm_sha256msg2_epu32(_mm_add_epi32((dst), _mm_alignr_epi8((cur), (prev), 4)), (cur))

  LEOPARD_SHANI_ROUNDS4(0, m0);
  LEOPARD_SHANI_ROUNDS4(1, m1);
  m0 = _mm_sha256msg1_epu32(m0, m1);
  LEOPARD_SHANI_ROUNDS4(2, m2);
  m1 = _mm_sha256msg1_epu32(m1, m2);
  LEOPARD_SHANI_ROUNDS4(3, m3);
  LEOPARD_SHANI_SCHED(m0, m3, m2);
  m2 = _mm_sha256msg1_epu32(m2, m3);
  LEOPARD_SHANI_ROUNDS4(4, m0);
  LEOPARD_SHANI_SCHED(m1, m0, m3);
  m3 = _mm_sha256msg1_epu32(m3, m0);
  LEOPARD_SHANI_ROUNDS4(5, m1);
  LEOPARD_SHANI_SCHED(m2, m1, m0);
  m0 = _mm_sha256msg1_epu32(m0, m1);
  LEOPARD_SHANI_ROUNDS4(6, m2);
  LEOPARD_SHANI_SCHED(m3, m2, m1);
  m1 = _mm_sha256msg1_epu32(m1, m2);
  LEOPARD_SHANI_ROUNDS4(7, m3);
  LEOPARD_SHANI_SCHED(m0, m3, m2);
  m2 = _mm_sha256msg1_epu32(m2, m3);
  LEOPARD_SHANI_ROUNDS4(8, m0);
  LEOPARD_SHANI_SCHED(m1, m0, m3);
  m3 = _mm_sha256msg1_epu32(m3, m0);
  LEOPARD_SHANI_ROUNDS4(9, m1);
  LEOPARD_SHANI_SCHED(m2, m1, m0);
  m0 = _mm_sha256msg1_epu32(m0, m1);
  LEOPARD_SHANI_ROUNDS4(10, m2);
  LEOPARD_SHANI_SCHED(m3, m2, m1);
  m1 = _mm_sha256msg1_epu32(m1, m2);
  LEOPARD_SHANI_ROUNDS4(11, m3);
  LEOPARD_SHANI_SCHED(m0, m3, m2);
  m2 = _mm_sha256msg1_epu32(m2, m3);
  LEOPARD_SHANI_ROUNDS4(12, m0);
  LEOPARD_SHANI_SCHED(m1, m0, m3);
  m3 = _mm_sha256msg1_epu32(m3, m0);
  LEOPARD_SHANI_ROUNDS4(13, m1);
  LEOPARD_SHANI_SCHED(m2, m1, m0);
  LEOPARD_SHANI_ROUNDS4(14, m2);
  LEOPARD_SHANI_SCHED(m3, m2, m1);
  LEOPARD_SHANI_ROUNDS4(15, m3);

#undef LEOPARD_SHANI_SCHED
#undef LEOPARD_SHANI_ROUNDS4

  state0 = _mm_add_epi32(state0, abef_save);
  state1 = _mm_add_epi32(state1, cdgh_save);
}

// Converts the flat {a..h} state into the (ABEF, CDGH) register pair.
__attribute__((target("sha,sse4.1,ssse3"), always_inline)) inline void shani_load_state(
    const std::uint32_t* state, __m128i& state0, __m128i& state1) {
  __m128i lo = _mm_loadu_si128(reinterpret_cast<const __m128i*>(state));      // a b c d
  __m128i hi = _mm_loadu_si128(reinterpret_cast<const __m128i*>(state + 4));  // e f g h
  lo = _mm_shuffle_epi32(lo, 0xB1);                                           // CDAB
  hi = _mm_shuffle_epi32(hi, 0x1B);                                           // EFGH
  state0 = _mm_alignr_epi8(lo, hi, 8);                                        // ABEF
  state1 = _mm_blend_epi16(hi, lo, 0xF0);                                     // CDGH
}

__attribute__((target("sha,sse4.1,ssse3"), always_inline)) inline void shani_store_state(
    std::uint32_t* state, __m128i state0, __m128i state1) {
  state0 = _mm_shuffle_epi32(state0, 0x1B);                                     // FEBA
  state1 = _mm_shuffle_epi32(state1, 0xB1);                                     // DCHG
  const __m128i lo = _mm_blend_epi16(state0, state1, 0xF0);                     // DCBA
  const __m128i hi = _mm_alignr_epi8(state1, state0, 8);                        // HGFE
  _mm_storeu_si128(reinterpret_cast<__m128i*>(state), lo);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(state + 4), hi);
}

__attribute__((target("sha,sse4.1,ssse3"))) void compress_shani(std::uint32_t* state,
                                                               const std::uint8_t* data,
                                                               std::size_t nblocks) {
  __m128i s0, s1;
  shani_load_state(state, s0, s1);
  while (nblocks-- > 0) {
    shani_one_block(s0, s1, data);
    data += Sha256::kBlockSize;
  }
  shani_store_state(state, s0, s1);
}

__attribute__((target("sha,sse4.1,ssse3"))) void compress_shani_x2(
    std::uint32_t* state_a, const std::uint8_t* da, std::uint32_t* state_b,
    const std::uint8_t* db, std::size_t nblocks) {
  __m128i a0, a1, b0, b1;
  shani_load_state(state_a, a0, a1);
  shani_load_state(state_b, b0, b1);
  while (nblocks-- > 0) {
    shani_one_block(a0, a1, da);
    shani_one_block(b0, b1, db);
    da += Sha256::kBlockSize;
    db += Sha256::kBlockSize;
  }
  shani_store_state(state_a, a0, a1);
  shani_store_state(state_b, b0, b1);
}

#endif  // LEOPARD_SHA256_HAS_SHANI

// ---------------------------------------------------------------------------
// ARMv8 crypto-extension kernel
// ---------------------------------------------------------------------------

#if defined(LEOPARD_SHA256_HAS_ARMCE)

#if defined(__clang__)
#define LEOPARD_ARMCE_TARGET __attribute__((target("sha2")))
#else
#define LEOPARD_ARMCE_TARGET __attribute__((target("arch=armv8-a+crypto")))
#endif

bool cpu_has_arm_sha2() {
#if defined(__ARM_FEATURE_SHA2)
  return true;  // baked into the build target
#elif defined(__linux__)
#ifndef HWCAP_SHA2
#define HWCAP_SHA2 (1 << 6)
#endif
  return (getauxval(AT_HWCAP) & HWCAP_SHA2) != 0;
#elif defined(__APPLE__)
  return true;  // all Apple Silicon has the SHA-2 extensions
#else
  return false;
#endif
}

LEOPARD_ARMCE_TARGET __attribute__((always_inline)) inline void armce_one_block(
    uint32x4_t& abcd, uint32x4_t& efgh, const std::uint8_t* p) {
  const uint32x4_t abcd_save = abcd;
  const uint32x4_t efgh_save = efgh;
  uint32x4_t m0 = vreinterpretq_u32_u8(vrev32q_u8(vld1q_u8(p + 0)));
  uint32x4_t m1 = vreinterpretq_u32_u8(vrev32q_u8(vld1q_u8(p + 16)));
  uint32x4_t m2 = vreinterpretq_u32_u8(vrev32q_u8(vld1q_u8(p + 32)));
  uint32x4_t m3 = vreinterpretq_u32_u8(vrev32q_u8(vld1q_u8(p + 48)));
  uint32x4_t wk, prev_abcd;

// Four rounds with the constants of group `g`; `cur` is the w-quad entering
// these rounds.
#define LEOPARD_ARMCE_ROUNDS4(g, cur)                        \
  wk = vaddq_u32((cur), vld1q_u32(&kRoundConstants[4 * (g)])); \
  prev_abcd = abcd;                                          \
  abcd = vsha256hq_u32(abcd, efgh, wk);                      \
  efgh = vsha256h2q_u32(efgh, prev_abcd, wk)

// Message-schedule step: w-quad `w` extended from the following three quads.
#define LEOPARD_ARMCE_SCHED(w, wa, wb, wc) \
  (w) = vsha256su1q_u32(vsha256su0q_u32((w), (wa)), (wb), (wc))

  LEOPARD_ARMCE_ROUNDS4(0, m0);
  LEOPARD_ARMCE_SCHED(m0, m1, m2, m3);
  LEOPARD_ARMCE_ROUNDS4(1, m1);
  LEOPARD_ARMCE_SCHED(m1, m2, m3, m0);
  LEOPARD_ARMCE_ROUNDS4(2, m2);
  LEOPARD_ARMCE_SCHED(m2, m3, m0, m1);
  LEOPARD_ARMCE_ROUNDS4(3, m3);
  LEOPARD_ARMCE_SCHED(m3, m0, m1, m2);
  LEOPARD_ARMCE_ROUNDS4(4, m0);
  LEOPARD_ARMCE_SCHED(m0, m1, m2, m3);
  LEOPARD_ARMCE_ROUNDS4(5, m1);
  LEOPARD_ARMCE_SCHED(m1, m2, m3, m0);
  LEOPARD_ARMCE_ROUNDS4(6, m2);
  LEOPARD_ARMCE_SCHED(m2, m3, m0, m1);
  LEOPARD_ARMCE_ROUNDS4(7, m3);
  LEOPARD_ARMCE_SCHED(m3, m0, m1, m2);
  LEOPARD_ARMCE_ROUNDS4(8, m0);
  LEOPARD_ARMCE_SCHED(m0, m1, m2, m3);
  LEOPARD_ARMCE_ROUNDS4(9, m1);
  LEOPARD_ARMCE_SCHED(m1, m2, m3, m0);
  LEOPARD_ARMCE_ROUNDS4(10, m2);
  LEOPARD_ARMCE_SCHED(m2, m3, m0, m1);
  LEOPARD_ARMCE_ROUNDS4(11, m3);
  LEOPARD_ARMCE_SCHED(m3, m0, m1, m2);
  LEOPARD_ARMCE_ROUNDS4(12, m0);
  LEOPARD_ARMCE_ROUNDS4(13, m1);
  LEOPARD_ARMCE_ROUNDS4(14, m2);
  LEOPARD_ARMCE_ROUNDS4(15, m3);

#undef LEOPARD_ARMCE_SCHED
#undef LEOPARD_ARMCE_ROUNDS4

  abcd = vaddq_u32(abcd, abcd_save);
  efgh = vaddq_u32(efgh, efgh_save);
}

LEOPARD_ARMCE_TARGET void compress_armce(std::uint32_t* state, const std::uint8_t* data,
                                         std::size_t nblocks) {
  uint32x4_t abcd = vld1q_u32(state);
  uint32x4_t efgh = vld1q_u32(state + 4);
  while (nblocks-- > 0) {
    armce_one_block(abcd, efgh, data);
    data += Sha256::kBlockSize;
  }
  vst1q_u32(state, abcd);
  vst1q_u32(state + 4, efgh);
}

LEOPARD_ARMCE_TARGET void compress_armce_x2(std::uint32_t* state_a, const std::uint8_t* da,
                                            std::uint32_t* state_b, const std::uint8_t* db,
                                            std::size_t nblocks) {
  uint32x4_t a_abcd = vld1q_u32(state_a);
  uint32x4_t a_efgh = vld1q_u32(state_a + 4);
  uint32x4_t b_abcd = vld1q_u32(state_b);
  uint32x4_t b_efgh = vld1q_u32(state_b + 4);
  while (nblocks-- > 0) {
    armce_one_block(a_abcd, a_efgh, da);
    armce_one_block(b_abcd, b_efgh, db);
    da += Sha256::kBlockSize;
    db += Sha256::kBlockSize;
  }
  vst1q_u32(state_a, a_abcd);
  vst1q_u32(state_a + 4, a_efgh);
  vst1q_u32(state_b, b_abcd);
  vst1q_u32(state_b + 4, b_efgh);
}

#endif  // LEOPARD_SHA256_HAS_ARMCE

// ---------------------------------------------------------------------------
// Dispatch
// ---------------------------------------------------------------------------

using CompressFn = void (*)(std::uint32_t*, const std::uint8_t*, std::size_t);
using CompressX2Fn = void (*)(std::uint32_t*, const std::uint8_t*, std::uint32_t*,
                              const std::uint8_t*, std::size_t);

struct KernelOps {
  CompressFn compress = nullptr;
  CompressX2Fn compress_x2 = nullptr;  // null: two compress() calls instead
};

KernelOps ops_for(Sha256::Kernel k) {
  switch (k) {
#if defined(LEOPARD_SHA256_HAS_SHANI)
    case Sha256::Kernel::kShaNi:
      return {&compress_shani, &compress_shani_x2};
#endif
#if defined(LEOPARD_SHA256_HAS_ARMCE)
    case Sha256::Kernel::kArmCe:
      return {&compress_armce, &compress_armce_x2};
#endif
    default:
      return {&compress_portable, nullptr};
  }
}

Sha256::Kernel detect_kernel() {
#if defined(LEOPARD_SHA256_HAS_SHANI)
  if (cpu_has_sha_ni()) return Sha256::Kernel::kShaNi;
#elif defined(LEOPARD_SHA256_HAS_ARMCE)
  if (cpu_has_arm_sha2()) return Sha256::Kernel::kArmCe;
#endif
  return Sha256::Kernel::kPortable;
}

std::atomic<Sha256::Kernel>& kernel_slot() {
  static std::atomic<Sha256::Kernel> k{detect_kernel()};
  return k;
}

KernelOps active_ops() { return ops_for(kernel_slot().load(std::memory_order_relaxed)); }

}  // namespace

bool Sha256::kernel_available(Kernel k) {
  switch (k) {
    case Kernel::kPortable:
      return true;
    case Kernel::kShaNi:
#if defined(LEOPARD_SHA256_HAS_SHANI)
      return cpu_has_sha_ni();
#else
      return false;
#endif
    case Kernel::kArmCe:
#if defined(LEOPARD_SHA256_HAS_ARMCE)
      return cpu_has_arm_sha2();
#else
      return false;
#endif
  }
  return false;
}

Sha256::Kernel Sha256::active_kernel() { return kernel_slot().load(std::memory_order_relaxed); }

Sha256::Kernel Sha256::force_kernel(Kernel k) {
  if (!kernel_available(k)) k = detect_kernel();
  kernel_slot().store(k, std::memory_order_relaxed);
  return k;
}

const char* Sha256::kernel_name(Kernel k) {
  switch (k) {
    case Kernel::kPortable:
      return "portable";
    case Kernel::kShaNi:
      return "sha_ni";
    case Kernel::kArmCe:
      return "arm_ce";
  }
  return "unknown";
}

// ---------------------------------------------------------------------------
// Single-stream context
// ---------------------------------------------------------------------------

Sha256::Sha256() { state_ = kInitialState; }

std::span<const std::uint8_t> Sha256::drain_buffer(std::span<const std::uint8_t> data) {
  // (guarded: memcpy from a null data() of an empty span is UB)
  if (buffered_ == 0 || data.empty()) return data;
  const std::size_t take = std::min(kBlockSize - buffered_, data.size());
  std::memcpy(buffer_.data() + buffered_, data.data(), take);
  buffered_ += take;
  if (buffered_ == kBlockSize) {
    active_ops().compress(state_.data(), buffer_.data(), 1);
    buffered_ = 0;
  }
  return data.subspan(take);
}

void Sha256::stash_tail(std::span<const std::uint8_t> tail) {
  if (tail.empty()) return;
  std::memcpy(buffer_.data() + buffered_, tail.data(), tail.size());
  buffered_ += tail.size();
}

void Sha256::update(std::span<const std::uint8_t> data) {
  util::expects(!finalized_, "Sha256 reused after finalize");
  total_bytes_ += data.size();
  data = drain_buffer(data);
  const std::size_t nblocks = data.size() / kBlockSize;
  if (nblocks > 0) {
    active_ops().compress(state_.data(), data.data(), nblocks);
    data = data.subspan(nblocks * kBlockSize);
  }
  stash_tail(data);
}

std::size_t Sha256::build_final_blocks(std::uint8_t* tail) const {
  // buffered message bytes || 0x80 || zeros || 8-byte big-endian bit length.
  std::size_t len = buffered_;
  std::memcpy(tail, buffer_.data(), len);
  tail[len++] = 0x80;
  const std::size_t nblocks = (len + 8 > kBlockSize) ? 2 : 1;
  const std::size_t padded = nblocks * kBlockSize;
  std::memset(tail + len, 0, padded - len - 8);
  const std::uint64_t bit_len = total_bytes_ * 8;
  for (int i = 0; i < 8; ++i) {
    tail[padded - 8 + i] = static_cast<std::uint8_t>(bit_len >> (56 - 8 * i));
  }
  return nblocks;
}

void Sha256::emit_digest(DigestBytes& out) const {
  for (int i = 0; i < 8; ++i) {
    out[4 * i + 0] = static_cast<std::uint8_t>(state_[i] >> 24);
    out[4 * i + 1] = static_cast<std::uint8_t>(state_[i] >> 16);
    out[4 * i + 2] = static_cast<std::uint8_t>(state_[i] >> 8);
    out[4 * i + 3] = static_cast<std::uint8_t>(state_[i]);
  }
}

Sha256::DigestBytes Sha256::finalize() {
  util::expects(!finalized_, "Sha256 reused after finalize");
  finalized_ = true;
  std::array<std::uint8_t, 2 * kBlockSize> tail;
  const std::size_t nblocks = build_final_blocks(tail.data());
  active_ops().compress(state_.data(), tail.data(), nblocks);
  DigestBytes out;
  emit_digest(out);
  return out;
}

Sha256::DigestBytes Sha256::hash(std::span<const std::uint8_t> data) {
  Sha256 ctx;
  ctx.update(data);
  return ctx.finalize();
}

// ---------------------------------------------------------------------------
// Raw block interface
// ---------------------------------------------------------------------------

void Sha256::export_midstate(std::uint32_t out[8]) const {
  util::expects(buffered_ == 0 && !finalized_,
                "export_midstate requires a block-aligned, live context");
  std::memcpy(out, state_.data(), sizeof(state_));
}

void Sha256::compress_pair(std::uint32_t* state_a, const std::uint8_t* blocks_a,
                           std::uint32_t* state_b, const std::uint8_t* blocks_b,
                           std::size_t nblocks) {
  const KernelOps ops = active_ops();
  if (ops.compress_x2 != nullptr) {
    ops.compress_x2(state_a, blocks_a, state_b, blocks_b, nblocks);
  } else {
    ops.compress(state_a, blocks_a, nblocks);
    ops.compress(state_b, blocks_b, nblocks);
  }
}

// ---------------------------------------------------------------------------
// Multi-buffer drivers
// ---------------------------------------------------------------------------

void Sha256::update_two(Sha256& a, std::span<const std::uint8_t> da, Sha256& b,
                        std::span<const std::uint8_t> db) {
  util::expects(!a.finalized_ && !b.finalized_, "Sha256 reused after finalize");
  const KernelOps ops = active_ops();
  a.total_bytes_ += da.size();
  b.total_bytes_ += db.size();
  da = a.drain_buffer(da);
  db = b.drain_buffer(db);

  const std::size_t na = da.size() / kBlockSize;
  const std::size_t nb = db.size() / kBlockSize;
  const std::size_t paired = ops.compress_x2 != nullptr ? std::min(na, nb) : 0;
  if (paired > 0) {
    ops.compress_x2(a.state_.data(), da.data(), b.state_.data(), db.data(), paired);
  }
  if (na > paired) {
    ops.compress(a.state_.data(), da.data() + paired * kBlockSize, na - paired);
  }
  if (nb > paired) {
    ops.compress(b.state_.data(), db.data() + paired * kBlockSize, nb - paired);
  }
  a.stash_tail(da.subspan(na * kBlockSize));
  b.stash_tail(db.subspan(nb * kBlockSize));
}

void Sha256::finalize_two(Sha256& a, Sha256& b, DigestBytes& out_a, DigestBytes& out_b) {
  util::expects(!a.finalized_ && !b.finalized_, "Sha256 reused after finalize");
  a.finalized_ = true;
  b.finalized_ = true;
  std::array<std::uint8_t, 2 * kBlockSize> tail_a;
  std::array<std::uint8_t, 2 * kBlockSize> tail_b;
  const std::size_t blocks_a = a.build_final_blocks(tail_a.data());
  const std::size_t blocks_b = b.build_final_blocks(tail_b.data());
  const KernelOps ops = active_ops();
  if (ops.compress_x2 != nullptr && blocks_a == blocks_b) {
    ops.compress_x2(a.state_.data(), tail_a.data(), b.state_.data(), tail_b.data(), blocks_a);
  } else {
    ops.compress(a.state_.data(), tail_a.data(), blocks_a);
    ops.compress(b.state_.data(), tail_b.data(), blocks_b);
  }
  a.emit_digest(out_a);
  b.emit_digest(out_b);
}

void Sha256::hash_many(std::span<const std::uint8_t> prefix, const std::uint8_t* base,
                       std::size_t stride, std::size_t len, std::size_t count,
                       DigestBytes* out) {
  util::expects(count == 0 || base != nullptr, "hash_many: null rows");
  std::size_t i = 0;
  for (; i + 2 <= count; i += 2) {
    Sha256 a;
    Sha256 b;
    if (!prefix.empty()) {
      a.update(prefix);
      b.update(prefix);
    }
    update_two(a, {base + i * stride, len}, b, {base + (i + 1) * stride, len});
    finalize_two(a, b, out[i], out[i + 1]);
  }
  if (i < count) {
    Sha256 c;
    if (!prefix.empty()) c.update(prefix);
    c.update({base + i * stride, len});
    out[i] = c.finalize();
  }
}

}  // namespace leopard::crypto
