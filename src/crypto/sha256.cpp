#include "crypto/sha256.hpp"

#include <algorithm>
#include <atomic>
#include <cstring>

#include "util/check.hpp"
#include "util/worker_pool.hpp"

#if defined(__x86_64__) || defined(__i386__)
#include <cpuid.h>
#include <x86intrin.h>
#define LEOPARD_SHA256_HAS_SHANI 1
#elif defined(__aarch64__)
#include <arm_neon.h>
#if defined(__linux__)
#include <sys/auxv.h>
#endif
#define LEOPARD_SHA256_HAS_ARMCE 1
#endif

namespace leopard::crypto {

namespace {

alignas(16) constexpr std::array<std::uint32_t, 64> kRoundConstants = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

constexpr std::array<std::uint32_t, 8> kInitialState = {
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
    0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19};

// ---------------------------------------------------------------------------
// Portable kernel (the reference oracle)
// ---------------------------------------------------------------------------

inline std::uint32_t rotr(std::uint32_t x, int n) { return (x >> n) | (x << (32 - n)); }
inline std::uint32_t big_sigma0(std::uint32_t x) { return rotr(x, 2) ^ rotr(x, 13) ^ rotr(x, 22); }
inline std::uint32_t big_sigma1(std::uint32_t x) { return rotr(x, 6) ^ rotr(x, 11) ^ rotr(x, 25); }
inline std::uint32_t small_sigma0(std::uint32_t x) { return rotr(x, 7) ^ rotr(x, 18) ^ (x >> 3); }
inline std::uint32_t small_sigma1(std::uint32_t x) { return rotr(x, 17) ^ rotr(x, 19) ^ (x >> 10); }
inline std::uint32_t ch(std::uint32_t x, std::uint32_t y, std::uint32_t z) {
  return (x & y) ^ (~x & z);
}
inline std::uint32_t maj(std::uint32_t x, std::uint32_t y, std::uint32_t z) {
  return (x & y) ^ (x & z) ^ (y & z);
}

void compress_portable(std::uint32_t* state, const std::uint8_t* data, std::size_t nblocks) {
  while (nblocks-- > 0) {
    const std::uint8_t* block = data;
    data += Sha256::kBlockSize;

    std::array<std::uint32_t, 64> w{};
    for (int i = 0; i < 16; ++i) {
      w[i] = (static_cast<std::uint32_t>(block[4 * i]) << 24) |
             (static_cast<std::uint32_t>(block[4 * i + 1]) << 16) |
             (static_cast<std::uint32_t>(block[4 * i + 2]) << 8) |
             static_cast<std::uint32_t>(block[4 * i + 3]);
    }
    for (int i = 16; i < 64; ++i) {
      w[i] = small_sigma1(w[i - 2]) + w[i - 7] + small_sigma0(w[i - 15]) + w[i - 16];
    }

    std::uint32_t a = state[0], b = state[1], c = state[2], d = state[3];
    std::uint32_t e = state[4], f = state[5], g = state[6], h = state[7];

    for (int i = 0; i < 64; ++i) {
      const std::uint32_t t1 = h + big_sigma1(e) + ch(e, f, g) + kRoundConstants[i] + w[i];
      const std::uint32_t t2 = big_sigma0(a) + maj(a, b, c);
      h = g;
      g = f;
      f = e;
      e = d + t1;
      d = c;
      c = b;
      b = a;
      a = t1 + t2;
    }

    state[0] += a;
    state[1] += b;
    state[2] += c;
    state[3] += d;
    state[4] += e;
    state[5] += f;
    state[6] += g;
    state[7] += h;
  }
}

// ---------------------------------------------------------------------------
// x86 SHA-NI kernel
// ---------------------------------------------------------------------------

#if defined(LEOPARD_SHA256_HAS_SHANI)

bool cpu_has_sha_ni() {
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (!__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx)) return false;
  if ((ebx & (1u << 29)) == 0) return false;  // CPUID.7.0:EBX.SHA
  if (!__get_cpuid(1, &eax, &ebx, &ecx, &edx)) return false;
  // The kernel also uses pshufb (SSSE3) and pblendw (SSE4.1).
  return (ecx & (1u << 9)) != 0 && (ecx & (1u << 19)) != 0;
}

// One 64-byte block on the (ABEF, CDGH) register layout the sha256rnds2
// instruction wants. Marked always_inline so compress_shani_x2 lays two
// independent dependency chains into one instruction window — the hardware's
// out-of-order engine then overlaps them, which is where the multi-buffer
// speedup comes from (sha256rnds2 has multi-cycle latency but pipelines).
__attribute__((target("sha,sse4.1,ssse3"), always_inline)) inline void shani_one_block(
    __m128i& state0, __m128i& state1, const std::uint8_t* p) {
  const __m128i bswap =
      _mm_set_epi64x(0x0c0d0e0f08090a0bLL, 0x0405060700010203LL);
  __m128i m0 = _mm_shuffle_epi8(_mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 0)), bswap);
  __m128i m1 = _mm_shuffle_epi8(_mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 16)), bswap);
  __m128i m2 = _mm_shuffle_epi8(_mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 32)), bswap);
  __m128i m3 = _mm_shuffle_epi8(_mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 48)), bswap);
  const __m128i abef_save = state0;
  const __m128i cdgh_save = state1;
  __m128i msg;

// Four rounds: add the round constants for group `g` to the current message
// vector and run both sha256rnds2 halves.
#define LEOPARD_SHANI_ROUNDS4(g, cur)                                               \
  msg = _mm_add_epi32(                                                              \
      (cur), _mm_load_si128(reinterpret_cast<const __m128i*>(&kRoundConstants[4 * (g)]))); \
  state1 = _mm_sha256rnds2_epu32(state1, state0, msg);                              \
  state0 = _mm_sha256rnds2_epu32(state0, state1, _mm_shuffle_epi32(msg, 0x0E))

// Message-schedule step: extend `dst` (the next w-quad) from the quad that
// just finished (`cur`) and its predecessor (`prev`).
#define LEOPARD_SHANI_SCHED(dst, cur, prev) \
  (dst) = _mm_sha256msg2_epu32(_mm_add_epi32((dst), _mm_alignr_epi8((cur), (prev), 4)), (cur))

  LEOPARD_SHANI_ROUNDS4(0, m0);
  LEOPARD_SHANI_ROUNDS4(1, m1);
  m0 = _mm_sha256msg1_epu32(m0, m1);
  LEOPARD_SHANI_ROUNDS4(2, m2);
  m1 = _mm_sha256msg1_epu32(m1, m2);
  LEOPARD_SHANI_ROUNDS4(3, m3);
  LEOPARD_SHANI_SCHED(m0, m3, m2);
  m2 = _mm_sha256msg1_epu32(m2, m3);
  LEOPARD_SHANI_ROUNDS4(4, m0);
  LEOPARD_SHANI_SCHED(m1, m0, m3);
  m3 = _mm_sha256msg1_epu32(m3, m0);
  LEOPARD_SHANI_ROUNDS4(5, m1);
  LEOPARD_SHANI_SCHED(m2, m1, m0);
  m0 = _mm_sha256msg1_epu32(m0, m1);
  LEOPARD_SHANI_ROUNDS4(6, m2);
  LEOPARD_SHANI_SCHED(m3, m2, m1);
  m1 = _mm_sha256msg1_epu32(m1, m2);
  LEOPARD_SHANI_ROUNDS4(7, m3);
  LEOPARD_SHANI_SCHED(m0, m3, m2);
  m2 = _mm_sha256msg1_epu32(m2, m3);
  LEOPARD_SHANI_ROUNDS4(8, m0);
  LEOPARD_SHANI_SCHED(m1, m0, m3);
  m3 = _mm_sha256msg1_epu32(m3, m0);
  LEOPARD_SHANI_ROUNDS4(9, m1);
  LEOPARD_SHANI_SCHED(m2, m1, m0);
  m0 = _mm_sha256msg1_epu32(m0, m1);
  LEOPARD_SHANI_ROUNDS4(10, m2);
  LEOPARD_SHANI_SCHED(m3, m2, m1);
  m1 = _mm_sha256msg1_epu32(m1, m2);
  LEOPARD_SHANI_ROUNDS4(11, m3);
  LEOPARD_SHANI_SCHED(m0, m3, m2);
  m2 = _mm_sha256msg1_epu32(m2, m3);
  LEOPARD_SHANI_ROUNDS4(12, m0);
  LEOPARD_SHANI_SCHED(m1, m0, m3);
  m3 = _mm_sha256msg1_epu32(m3, m0);
  LEOPARD_SHANI_ROUNDS4(13, m1);
  LEOPARD_SHANI_SCHED(m2, m1, m0);
  LEOPARD_SHANI_ROUNDS4(14, m2);
  LEOPARD_SHANI_SCHED(m3, m2, m1);
  LEOPARD_SHANI_ROUNDS4(15, m3);

#undef LEOPARD_SHANI_SCHED
#undef LEOPARD_SHANI_ROUNDS4

  state0 = _mm_add_epi32(state0, abef_save);
  state1 = _mm_add_epi32(state1, cdgh_save);
}

// Converts the flat {a..h} state into the (ABEF, CDGH) register pair.
__attribute__((target("sha,sse4.1,ssse3"), always_inline)) inline void shani_load_state(
    const std::uint32_t* state, __m128i& state0, __m128i& state1) {
  __m128i lo = _mm_loadu_si128(reinterpret_cast<const __m128i*>(state));      // a b c d
  __m128i hi = _mm_loadu_si128(reinterpret_cast<const __m128i*>(state + 4));  // e f g h
  lo = _mm_shuffle_epi32(lo, 0xB1);                                           // CDAB
  hi = _mm_shuffle_epi32(hi, 0x1B);                                           // EFGH
  state0 = _mm_alignr_epi8(lo, hi, 8);                                        // ABEF
  state1 = _mm_blend_epi16(hi, lo, 0xF0);                                     // CDGH
}

__attribute__((target("sha,sse4.1,ssse3"), always_inline)) inline void shani_store_state(
    std::uint32_t* state, __m128i state0, __m128i state1) {
  state0 = _mm_shuffle_epi32(state0, 0x1B);                                     // FEBA
  state1 = _mm_shuffle_epi32(state1, 0xB1);                                     // DCHG
  const __m128i lo = _mm_blend_epi16(state0, state1, 0xF0);                     // DCBA
  const __m128i hi = _mm_alignr_epi8(state1, state0, 8);                        // HGFE
  _mm_storeu_si128(reinterpret_cast<__m128i*>(state), lo);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(state + 4), hi);
}

__attribute__((target("sha,sse4.1,ssse3"))) void compress_shani(std::uint32_t* state,
                                                               const std::uint8_t* data,
                                                               std::size_t nblocks) {
  __m128i s0, s1;
  shani_load_state(state, s0, s1);
  while (nblocks-- > 0) {
    shani_one_block(s0, s1, data);
    data += Sha256::kBlockSize;
  }
  shani_store_state(state, s0, s1);
}

__attribute__((target("sha,sse4.1,ssse3"))) void compress_shani_x2(
    std::uint32_t* state_a, const std::uint8_t* da, std::uint32_t* state_b,
    const std::uint8_t* db, std::size_t nblocks) {
  __m128i a0, a1, b0, b1;
  shani_load_state(state_a, a0, a1);
  shani_load_state(state_b, b0, b1);
  while (nblocks-- > 0) {
    shani_one_block(a0, a1, da);
    shani_one_block(b0, b1, db);
    da += Sha256::kBlockSize;
    db += Sha256::kBlockSize;
  }
  shani_store_state(state_a, a0, a1);
  shani_store_state(state_b, b0, b1);
}

#endif  // LEOPARD_SHA256_HAS_SHANI

// ---------------------------------------------------------------------------
// x86 transposed multi-buffer kernels (AVX2 8-wide, SSE2 4-wide)
//
// The classic SHA-256-MB technique: N independent message streams, one vector
// register per working variable whose lane j belongs to stream j. Every round
// and every message-schedule step is an ordinary 32-bit vector op, so the
// kernel needs no SHA ISA at all — it is the fast path for multi-stream work
// on CPUs whose only SHA option would otherwise be the portable loop. Blocks
// are loaded per lane and transposed in registers (8x8 or 4x4 32-bit
// transpose) so w[i] holds word i of all lanes.
// ---------------------------------------------------------------------------

// x86-64 only: SSE2 is baseline there, so compress_sse2_x4 needs no target
// attribute and no CPUID gate. (An i386 build would need both — it falls
// back to the portable/SHA-NI dispatch instead.)
#if defined(__x86_64__)
#define LEOPARD_SHA256_HAS_X86_WIDE 1

bool cpu_has_avx2_sha() { return __builtin_cpu_supports("avx2") != 0; }

#define LEOPARD_AVX2_FN __attribute__((target("avx2"), always_inline)) static inline

LEOPARD_AVX2_FN __m256i v8_add(__m256i a, __m256i b) { return _mm256_add_epi32(a, b); }
LEOPARD_AVX2_FN __m256i v8_xor(__m256i a, __m256i b) { return _mm256_xor_si256(a, b); }
LEOPARD_AVX2_FN __m256i v8_and(__m256i a, __m256i b) { return _mm256_and_si256(a, b); }

template <int N>
LEOPARD_AVX2_FN __m256i v8_rotr(__m256i x) {
  return _mm256_or_si256(_mm256_srli_epi32(x, N), _mm256_slli_epi32(x, 32 - N));
}
LEOPARD_AVX2_FN __m256i v8_big_sigma0(__m256i x) {
  return v8_xor(v8_rotr<2>(x), v8_xor(v8_rotr<13>(x), v8_rotr<22>(x)));
}
LEOPARD_AVX2_FN __m256i v8_big_sigma1(__m256i x) {
  return v8_xor(v8_rotr<6>(x), v8_xor(v8_rotr<11>(x), v8_rotr<25>(x)));
}
LEOPARD_AVX2_FN __m256i v8_small_sigma0(__m256i x) {
  return v8_xor(v8_rotr<7>(x), v8_xor(v8_rotr<18>(x), _mm256_srli_epi32(x, 3)));
}
LEOPARD_AVX2_FN __m256i v8_small_sigma1(__m256i x) {
  return v8_xor(v8_rotr<17>(x), v8_xor(v8_rotr<19>(x), _mm256_srli_epi32(x, 10)));
}
LEOPARD_AVX2_FN __m256i v8_ch(__m256i e, __m256i f, __m256i g) {
  return v8_xor(v8_and(e, f), _mm256_andnot_si256(e, g));
}
LEOPARD_AVX2_FN __m256i v8_maj(__m256i a, __m256i b, __m256i c) {
  return v8_xor(v8_and(a, b), v8_and(c, v8_xor(a, b)));
}

/// Eight lanes, `nblocks` 64-byte blocks each: states[l] advances over
/// blocks[l]. Lanes are fully independent streams.
__attribute__((target("avx2"))) void compress_avx2_x8(std::uint32_t* const* states,
                                                      const std::uint8_t* const* blocks,
                                                      std::size_t nblocks) {
  // Transposed state load: s[j] lane l = states[l][j].
  __m256i s[8];
  alignas(32) std::uint32_t tmp[8];
  for (int j = 0; j < 8; ++j) {
    for (int l = 0; l < 8; ++l) tmp[l] = states[l][j];
    s[j] = _mm256_load_si256(reinterpret_cast<const __m256i*>(tmp));
  }
  // Byte swap within each 32-bit element (per 128-bit half, as vpshufb works).
  const __m256i bswap = _mm256_setr_epi8(3, 2, 1, 0, 7, 6, 5, 4, 11, 10, 9, 8, 15, 14, 13, 12,
                                         3, 2, 1, 0, 7, 6, 5, 4, 11, 10, 9, 8, 15, 14, 13, 12);

  for (std::size_t blk = 0; blk < nblocks; ++blk) {
    const std::size_t off = blk * Sha256::kBlockSize;
    // Load+transpose the 16 message words of all 8 lanes, one 8-word half at
    // a time (rows = per-lane word runs, columns = per-word lane vectors).
    __m256i w[16];
    for (int half = 0; half < 2; ++half) {
      __m256i r[8], t[8], u[8];
      for (int l = 0; l < 8; ++l) {
        r[l] = _mm256_shuffle_epi8(
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(blocks[l] + off + 32 * half)),
            bswap);
      }
      for (int p = 0; p < 4; ++p) {
        t[2 * p] = _mm256_unpacklo_epi32(r[2 * p], r[2 * p + 1]);
        t[2 * p + 1] = _mm256_unpackhi_epi32(r[2 * p], r[2 * p + 1]);
      }
      u[0] = _mm256_unpacklo_epi64(t[0], t[2]);
      u[1] = _mm256_unpackhi_epi64(t[0], t[2]);
      u[2] = _mm256_unpacklo_epi64(t[1], t[3]);
      u[3] = _mm256_unpackhi_epi64(t[1], t[3]);
      u[4] = _mm256_unpacklo_epi64(t[4], t[6]);
      u[5] = _mm256_unpackhi_epi64(t[4], t[6]);
      u[6] = _mm256_unpacklo_epi64(t[5], t[7]);
      u[7] = _mm256_unpackhi_epi64(t[5], t[7]);
      for (int j = 0; j < 4; ++j) {
        w[8 * half + j] = _mm256_permute2x128_si256(u[j], u[j + 4], 0x20);
        w[8 * half + 4 + j] = _mm256_permute2x128_si256(u[j], u[j + 4], 0x31);
      }
    }

    __m256i a = s[0], b = s[1], c = s[2], d = s[3];
    __m256i e = s[4], f = s[5], g = s[6], h = s[7];
    for (int i = 0; i < 64; ++i) {
      __m256i wi;
      if (i < 16) {
        wi = w[i];
      } else {
        wi = v8_add(v8_add(v8_small_sigma1(w[(i - 2) & 15]), w[(i - 7) & 15]),
                    v8_add(v8_small_sigma0(w[(i - 15) & 15]), w[i & 15]));
        w[i & 15] = wi;
      }
      const __m256i t1 = v8_add(v8_add(h, v8_big_sigma1(e)),
                                v8_add(v8_ch(e, f, g),
                                       v8_add(_mm256_set1_epi32(
                                                  static_cast<int>(kRoundConstants[i])),
                                              wi)));
      const __m256i t2 = v8_add(v8_big_sigma0(a), v8_maj(a, b, c));
      h = g;
      g = f;
      f = e;
      e = v8_add(d, t1);
      d = c;
      c = b;
      b = a;
      a = v8_add(t1, t2);
    }
    s[0] = v8_add(s[0], a);
    s[1] = v8_add(s[1], b);
    s[2] = v8_add(s[2], c);
    s[3] = v8_add(s[3], d);
    s[4] = v8_add(s[4], e);
    s[5] = v8_add(s[5], f);
    s[6] = v8_add(s[6], g);
    s[7] = v8_add(s[7], h);
  }

  for (int j = 0; j < 8; ++j) {
    _mm256_store_si256(reinterpret_cast<__m256i*>(tmp), s[j]);
    for (int l = 0; l < 8; ++l) states[l][j] = tmp[l];
  }
}

#undef LEOPARD_AVX2_FN

// SSE2 4-wide variant: baseline x86-64 vectors, no target attribute needed.

static inline __m128i v4_add(__m128i a, __m128i b) { return _mm_add_epi32(a, b); }
static inline __m128i v4_xor(__m128i a, __m128i b) { return _mm_xor_si128(a, b); }
static inline __m128i v4_and(__m128i a, __m128i b) { return _mm_and_si128(a, b); }

template <int N>
static inline __m128i v4_rotr(__m128i x) {
  return _mm_or_si128(_mm_srli_epi32(x, N), _mm_slli_epi32(x, 32 - N));
}
static inline __m128i v4_big_sigma0(__m128i x) {
  return v4_xor(v4_rotr<2>(x), v4_xor(v4_rotr<13>(x), v4_rotr<22>(x)));
}
static inline __m128i v4_big_sigma1(__m128i x) {
  return v4_xor(v4_rotr<6>(x), v4_xor(v4_rotr<11>(x), v4_rotr<25>(x)));
}
static inline __m128i v4_small_sigma0(__m128i x) {
  return v4_xor(v4_rotr<7>(x), v4_xor(v4_rotr<18>(x), _mm_srli_epi32(x, 3)));
}
static inline __m128i v4_small_sigma1(__m128i x) {
  return v4_xor(v4_rotr<17>(x), v4_xor(v4_rotr<19>(x), _mm_srli_epi32(x, 10)));
}
static inline __m128i v4_ch(__m128i e, __m128i f, __m128i g) {
  return v4_xor(v4_and(e, f), _mm_andnot_si128(e, g));
}
static inline __m128i v4_maj(__m128i a, __m128i b, __m128i c) {
  return v4_xor(v4_and(a, b), v4_and(c, v4_xor(a, b)));
}
/// 32-bit byte swap with pure SSE2 (no pshufb).
static inline __m128i v4_bswap32(__m128i x) {
  const __m128i mask = _mm_set1_epi32(0x0000FF00);
  return _mm_or_si128(
      _mm_or_si128(_mm_slli_epi32(x, 24), _mm_slli_epi32(v4_and(x, mask), 8)),
      _mm_or_si128(v4_and(_mm_srli_epi32(x, 8), mask), _mm_srli_epi32(x, 24)));
}

void compress_sse2_x4(std::uint32_t* const* states, const std::uint8_t* const* blocks,
                      std::size_t nblocks) {
  __m128i s[8];
  alignas(16) std::uint32_t tmp[4];
  for (int j = 0; j < 8; ++j) {
    for (int l = 0; l < 4; ++l) tmp[l] = states[l][j];
    s[j] = _mm_load_si128(reinterpret_cast<const __m128i*>(tmp));
  }

  for (std::size_t blk = 0; blk < nblocks; ++blk) {
    const std::size_t off = blk * Sha256::kBlockSize;
    __m128i w[16];
    for (int q = 0; q < 4; ++q) {
      __m128i r[4];
      for (int l = 0; l < 4; ++l) {
        r[l] = v4_bswap32(
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(blocks[l] + off + 16 * q)));
      }
      const __m128i t0 = _mm_unpacklo_epi32(r[0], r[1]);
      const __m128i t1 = _mm_unpackhi_epi32(r[0], r[1]);
      const __m128i t2 = _mm_unpacklo_epi32(r[2], r[3]);
      const __m128i t3 = _mm_unpackhi_epi32(r[2], r[3]);
      w[4 * q + 0] = _mm_unpacklo_epi64(t0, t2);
      w[4 * q + 1] = _mm_unpackhi_epi64(t0, t2);
      w[4 * q + 2] = _mm_unpacklo_epi64(t1, t3);
      w[4 * q + 3] = _mm_unpackhi_epi64(t1, t3);
    }

    __m128i a = s[0], b = s[1], c = s[2], d = s[3];
    __m128i e = s[4], f = s[5], g = s[6], h = s[7];
    for (int i = 0; i < 64; ++i) {
      __m128i wi;
      if (i < 16) {
        wi = w[i];
      } else {
        wi = v4_add(v4_add(v4_small_sigma1(w[(i - 2) & 15]), w[(i - 7) & 15]),
                    v4_add(v4_small_sigma0(w[(i - 15) & 15]), w[i & 15]));
        w[i & 15] = wi;
      }
      const __m128i t1 =
          v4_add(v4_add(h, v4_big_sigma1(e)),
                 v4_add(v4_ch(e, f, g),
                        v4_add(_mm_set1_epi32(static_cast<int>(kRoundConstants[i])), wi)));
      const __m128i t2 = v4_add(v4_big_sigma0(a), v4_maj(a, b, c));
      h = g;
      g = f;
      f = e;
      e = v4_add(d, t1);
      d = c;
      c = b;
      b = a;
      a = v4_add(t1, t2);
    }
    s[0] = v4_add(s[0], a);
    s[1] = v4_add(s[1], b);
    s[2] = v4_add(s[2], c);
    s[3] = v4_add(s[3], d);
    s[4] = v4_add(s[4], e);
    s[5] = v4_add(s[5], f);
    s[6] = v4_add(s[6], g);
    s[7] = v4_add(s[7], h);
  }

  for (int j = 0; j < 8; ++j) {
    _mm_store_si128(reinterpret_cast<__m128i*>(tmp), s[j]);
    for (int l = 0; l < 4; ++l) states[l][j] = tmp[l];
  }
}

#endif  // x86 wide kernels

// ---------------------------------------------------------------------------
// ARMv8 crypto-extension kernel
// ---------------------------------------------------------------------------

#if defined(LEOPARD_SHA256_HAS_ARMCE)

#if defined(__clang__)
#define LEOPARD_ARMCE_TARGET __attribute__((target("sha2")))
#else
#define LEOPARD_ARMCE_TARGET __attribute__((target("arch=armv8-a+crypto")))
#endif

bool cpu_has_arm_sha2() {
#if defined(__ARM_FEATURE_SHA2)
  return true;  // baked into the build target
#elif defined(__linux__)
#ifndef HWCAP_SHA2
#define HWCAP_SHA2 (1 << 6)
#endif
  return (getauxval(AT_HWCAP) & HWCAP_SHA2) != 0;
#elif defined(__APPLE__)
  return true;  // all Apple Silicon has the SHA-2 extensions
#else
  return false;
#endif
}

LEOPARD_ARMCE_TARGET __attribute__((always_inline)) inline void armce_one_block(
    uint32x4_t& abcd, uint32x4_t& efgh, const std::uint8_t* p) {
  const uint32x4_t abcd_save = abcd;
  const uint32x4_t efgh_save = efgh;
  uint32x4_t m0 = vreinterpretq_u32_u8(vrev32q_u8(vld1q_u8(p + 0)));
  uint32x4_t m1 = vreinterpretq_u32_u8(vrev32q_u8(vld1q_u8(p + 16)));
  uint32x4_t m2 = vreinterpretq_u32_u8(vrev32q_u8(vld1q_u8(p + 32)));
  uint32x4_t m3 = vreinterpretq_u32_u8(vrev32q_u8(vld1q_u8(p + 48)));
  uint32x4_t wk, prev_abcd;

// Four rounds with the constants of group `g`; `cur` is the w-quad entering
// these rounds.
#define LEOPARD_ARMCE_ROUNDS4(g, cur)                        \
  wk = vaddq_u32((cur), vld1q_u32(&kRoundConstants[4 * (g)])); \
  prev_abcd = abcd;                                          \
  abcd = vsha256hq_u32(abcd, efgh, wk);                      \
  efgh = vsha256h2q_u32(efgh, prev_abcd, wk)

// Message-schedule step: w-quad `w` extended from the following three quads.
#define LEOPARD_ARMCE_SCHED(w, wa, wb, wc) \
  (w) = vsha256su1q_u32(vsha256su0q_u32((w), (wa)), (wb), (wc))

  LEOPARD_ARMCE_ROUNDS4(0, m0);
  LEOPARD_ARMCE_SCHED(m0, m1, m2, m3);
  LEOPARD_ARMCE_ROUNDS4(1, m1);
  LEOPARD_ARMCE_SCHED(m1, m2, m3, m0);
  LEOPARD_ARMCE_ROUNDS4(2, m2);
  LEOPARD_ARMCE_SCHED(m2, m3, m0, m1);
  LEOPARD_ARMCE_ROUNDS4(3, m3);
  LEOPARD_ARMCE_SCHED(m3, m0, m1, m2);
  LEOPARD_ARMCE_ROUNDS4(4, m0);
  LEOPARD_ARMCE_SCHED(m0, m1, m2, m3);
  LEOPARD_ARMCE_ROUNDS4(5, m1);
  LEOPARD_ARMCE_SCHED(m1, m2, m3, m0);
  LEOPARD_ARMCE_ROUNDS4(6, m2);
  LEOPARD_ARMCE_SCHED(m2, m3, m0, m1);
  LEOPARD_ARMCE_ROUNDS4(7, m3);
  LEOPARD_ARMCE_SCHED(m3, m0, m1, m2);
  LEOPARD_ARMCE_ROUNDS4(8, m0);
  LEOPARD_ARMCE_SCHED(m0, m1, m2, m3);
  LEOPARD_ARMCE_ROUNDS4(9, m1);
  LEOPARD_ARMCE_SCHED(m1, m2, m3, m0);
  LEOPARD_ARMCE_ROUNDS4(10, m2);
  LEOPARD_ARMCE_SCHED(m2, m3, m0, m1);
  LEOPARD_ARMCE_ROUNDS4(11, m3);
  LEOPARD_ARMCE_SCHED(m3, m0, m1, m2);
  LEOPARD_ARMCE_ROUNDS4(12, m0);
  LEOPARD_ARMCE_ROUNDS4(13, m1);
  LEOPARD_ARMCE_ROUNDS4(14, m2);
  LEOPARD_ARMCE_ROUNDS4(15, m3);

#undef LEOPARD_ARMCE_SCHED
#undef LEOPARD_ARMCE_ROUNDS4

  abcd = vaddq_u32(abcd, abcd_save);
  efgh = vaddq_u32(efgh, efgh_save);
}

LEOPARD_ARMCE_TARGET void compress_armce(std::uint32_t* state, const std::uint8_t* data,
                                         std::size_t nblocks) {
  uint32x4_t abcd = vld1q_u32(state);
  uint32x4_t efgh = vld1q_u32(state + 4);
  while (nblocks-- > 0) {
    armce_one_block(abcd, efgh, data);
    data += Sha256::kBlockSize;
  }
  vst1q_u32(state, abcd);
  vst1q_u32(state + 4, efgh);
}

LEOPARD_ARMCE_TARGET void compress_armce_x2(std::uint32_t* state_a, const std::uint8_t* da,
                                            std::uint32_t* state_b, const std::uint8_t* db,
                                            std::size_t nblocks) {
  uint32x4_t a_abcd = vld1q_u32(state_a);
  uint32x4_t a_efgh = vld1q_u32(state_a + 4);
  uint32x4_t b_abcd = vld1q_u32(state_b);
  uint32x4_t b_efgh = vld1q_u32(state_b + 4);
  while (nblocks-- > 0) {
    armce_one_block(a_abcd, a_efgh, da);
    armce_one_block(b_abcd, b_efgh, db);
    da += Sha256::kBlockSize;
    db += Sha256::kBlockSize;
  }
  vst1q_u32(state_a, a_abcd);
  vst1q_u32(state_a + 4, a_efgh);
  vst1q_u32(state_b, b_abcd);
  vst1q_u32(state_b + 4, b_efgh);
}

#endif  // LEOPARD_SHA256_HAS_ARMCE

// ---------------------------------------------------------------------------
// NEON transposed 4-wide kernel (aarch64 without the crypto extensions)
// ---------------------------------------------------------------------------

#if defined(__aarch64__)
#define LEOPARD_SHA256_HAS_NEON_WIDE 1

static inline uint32x4_t vn_add(uint32x4_t a, uint32x4_t b) { return vaddq_u32(a, b); }
static inline uint32x4_t vn_xor(uint32x4_t a, uint32x4_t b) { return veorq_u32(a, b); }

template <int N>
static inline uint32x4_t vn_rotr(uint32x4_t x) {
  return vorrq_u32(vshrq_n_u32(x, N), vshlq_n_u32(x, 32 - N));
}
static inline uint32x4_t vn_big_sigma0(uint32x4_t x) {
  return vn_xor(vn_rotr<2>(x), vn_xor(vn_rotr<13>(x), vn_rotr<22>(x)));
}
static inline uint32x4_t vn_big_sigma1(uint32x4_t x) {
  return vn_xor(vn_rotr<6>(x), vn_xor(vn_rotr<11>(x), vn_rotr<25>(x)));
}
static inline uint32x4_t vn_small_sigma0(uint32x4_t x) {
  return vn_xor(vn_rotr<7>(x), vn_xor(vn_rotr<18>(x), vshrq_n_u32(x, 3)));
}
static inline uint32x4_t vn_small_sigma1(uint32x4_t x) {
  return vn_xor(vn_rotr<17>(x), vn_xor(vn_rotr<19>(x), vshrq_n_u32(x, 10)));
}
static inline uint32x4_t vn_ch(uint32x4_t e, uint32x4_t f, uint32x4_t g) {
  return vbslq_u32(e, f, g);  // bitwise select: (e & f) | (~e & g)
}
static inline uint32x4_t vn_maj(uint32x4_t a, uint32x4_t b, uint32x4_t c) {
  return vn_xor(vandq_u32(a, b), vandq_u32(c, vn_xor(a, b)));
}
static inline uint32x4_t vn_trn1_64(uint32x4_t a, uint32x4_t b) {
  return vreinterpretq_u32_u64(
      vtrn1q_u64(vreinterpretq_u64_u32(a), vreinterpretq_u64_u32(b)));
}
static inline uint32x4_t vn_trn2_64(uint32x4_t a, uint32x4_t b) {
  return vreinterpretq_u32_u64(
      vtrn2q_u64(vreinterpretq_u64_u32(a), vreinterpretq_u64_u32(b)));
}

void compress_neon_x4(std::uint32_t* const* states, const std::uint8_t* const* blocks,
                      std::size_t nblocks) {
  uint32x4_t s[8];
  std::uint32_t tmp[4];
  for (int j = 0; j < 8; ++j) {
    for (int l = 0; l < 4; ++l) tmp[l] = states[l][j];
    s[j] = vld1q_u32(tmp);
  }

  for (std::size_t blk = 0; blk < nblocks; ++blk) {
    const std::size_t off = blk * Sha256::kBlockSize;
    uint32x4_t w[16];
    for (int q = 0; q < 4; ++q) {
      uint32x4_t r[4];
      for (int l = 0; l < 4; ++l) {
        r[l] = vreinterpretq_u32_u8(vrev32q_u8(vld1q_u8(blocks[l] + off + 16 * q)));
      }
      const uint32x4_t t0 = vtrn1q_u32(r[0], r[1]);
      const uint32x4_t t1 = vtrn2q_u32(r[0], r[1]);
      const uint32x4_t t2 = vtrn1q_u32(r[2], r[3]);
      const uint32x4_t t3 = vtrn2q_u32(r[2], r[3]);
      w[4 * q + 0] = vn_trn1_64(t0, t2);
      w[4 * q + 1] = vn_trn1_64(t1, t3);
      w[4 * q + 2] = vn_trn2_64(t0, t2);
      w[4 * q + 3] = vn_trn2_64(t1, t3);
    }

    uint32x4_t a = s[0], b = s[1], c = s[2], d = s[3];
    uint32x4_t e = s[4], f = s[5], g = s[6], h = s[7];
    for (int i = 0; i < 64; ++i) {
      uint32x4_t wi;
      if (i < 16) {
        wi = w[i];
      } else {
        wi = vn_add(vn_add(vn_small_sigma1(w[(i - 2) & 15]), w[(i - 7) & 15]),
                    vn_add(vn_small_sigma0(w[(i - 15) & 15]), w[i & 15]));
        w[i & 15] = wi;
      }
      const uint32x4_t t1 = vn_add(vn_add(h, vn_big_sigma1(e)),
                                   vn_add(vn_ch(e, f, g),
                                          vn_add(vdupq_n_u32(kRoundConstants[i]), wi)));
      const uint32x4_t t2 = vn_add(vn_big_sigma0(a), vn_maj(a, b, c));
      h = g;
      g = f;
      f = e;
      e = vn_add(d, t1);
      d = c;
      c = b;
      b = a;
      a = vn_add(t1, t2);
    }
    s[0] = vn_add(s[0], a);
    s[1] = vn_add(s[1], b);
    s[2] = vn_add(s[2], c);
    s[3] = vn_add(s[3], d);
    s[4] = vn_add(s[4], e);
    s[5] = vn_add(s[5], f);
    s[6] = vn_add(s[6], g);
    s[7] = vn_add(s[7], h);
  }

  for (int j = 0; j < 8; ++j) {
    vst1q_u32(tmp, s[j]);
    for (int l = 0; l < 4; ++l) states[l][j] = tmp[l];
  }
}

#endif  // LEOPARD_SHA256_HAS_NEON_WIDE

// ---------------------------------------------------------------------------
// Dispatch
// ---------------------------------------------------------------------------

using CompressFn = void (*)(std::uint32_t*, const std::uint8_t*, std::size_t);
using CompressX2Fn = void (*)(std::uint32_t*, const std::uint8_t*, std::uint32_t*,
                              const std::uint8_t*, std::size_t);
using CompressWideFn = void (*)(std::uint32_t* const*, const std::uint8_t* const*,
                                std::size_t);

struct KernelOps {
  CompressFn compress = nullptr;
  CompressX2Fn compress_x2 = nullptr;      // null: two compress() calls instead
  CompressWideFn compress_wide = nullptr;  // fixed-lane n-buffer driver (or null)
  std::size_t wide_lanes = 2;              // lanes of the widest driver
};

KernelOps ops_for(Sha256::Kernel k) {
  switch (k) {
#if defined(LEOPARD_SHA256_HAS_SHANI)
    case Sha256::Kernel::kShaNi:
      return {&compress_shani, &compress_shani_x2, nullptr, 2};
#endif
#if defined(LEOPARD_SHA256_HAS_ARMCE)
    case Sha256::Kernel::kArmCe:
      return {&compress_armce, &compress_armce_x2, nullptr, 2};
#endif
#if defined(LEOPARD_SHA256_HAS_X86_WIDE)
    case Sha256::Kernel::kAvx2:
      return {&compress_portable, nullptr, &compress_avx2_x8, 8};
    case Sha256::Kernel::kSse2:
      return {&compress_portable, nullptr, &compress_sse2_x4, 4};
#endif
#if defined(LEOPARD_SHA256_HAS_NEON_WIDE)
    case Sha256::Kernel::kNeon:
      return {&compress_portable, nullptr, &compress_neon_x4, 4};
#endif
    default:
      return {&compress_portable, nullptr, nullptr, 2};
  }
}

Sha256::Kernel detect_kernel() {
#if defined(LEOPARD_SHA256_HAS_SHANI)
  if (cpu_has_sha_ni()) return Sha256::Kernel::kShaNi;
#endif
#if defined(LEOPARD_SHA256_HAS_X86_WIDE)
  // No SHA ISA: the transposed multi-buffer kernels still beat the portable
  // loop wherever several streams are in flight (hash_many, batched votes);
  // their single-stream path IS the portable loop, so nothing regresses.
  if (cpu_has_avx2_sha()) return Sha256::Kernel::kAvx2;
  return Sha256::Kernel::kSse2;  // baseline x86-64
#endif
#if defined(LEOPARD_SHA256_HAS_ARMCE)
  if (cpu_has_arm_sha2()) return Sha256::Kernel::kArmCe;
#endif
#if defined(LEOPARD_SHA256_HAS_NEON_WIDE)
  return Sha256::Kernel::kNeon;
#endif
  return Sha256::Kernel::kPortable;
}

std::atomic<Sha256::Kernel>& kernel_slot() {
  static std::atomic<Sha256::Kernel> k{detect_kernel()};
  return k;
}

KernelOps active_ops() { return ops_for(kernel_slot().load(std::memory_order_relaxed)); }

}  // namespace

bool Sha256::kernel_available(Kernel k) {
  switch (k) {
    case Kernel::kPortable:
      return true;
    case Kernel::kShaNi:
#if defined(LEOPARD_SHA256_HAS_SHANI)
      return cpu_has_sha_ni();
#else
      return false;
#endif
    case Kernel::kArmCe:
#if defined(LEOPARD_SHA256_HAS_ARMCE)
      return cpu_has_arm_sha2();
#else
      return false;
#endif
    case Kernel::kAvx2:
#if defined(LEOPARD_SHA256_HAS_X86_WIDE)
      return cpu_has_avx2_sha();
#else
      return false;
#endif
    case Kernel::kSse2:
#if defined(LEOPARD_SHA256_HAS_X86_WIDE)
      return true;  // SSE2 is x86-64 baseline
#else
      return false;
#endif
    case Kernel::kNeon:
#if defined(LEOPARD_SHA256_HAS_NEON_WIDE)
      return true;
#else
      return false;
#endif
  }
  return false;
}

Sha256::Kernel Sha256::active_kernel() { return kernel_slot().load(std::memory_order_relaxed); }

Sha256::Kernel Sha256::force_kernel(Kernel k) {
  if (!kernel_available(k)) k = detect_kernel();
  kernel_slot().store(k, std::memory_order_relaxed);
  return k;
}

const char* Sha256::kernel_name(Kernel k) {
  switch (k) {
    case Kernel::kPortable:
      return "portable";
    case Kernel::kShaNi:
      return "sha_ni";
    case Kernel::kArmCe:
      return "arm_ce";
    case Kernel::kAvx2:
      return "avx2_x8";
    case Kernel::kSse2:
      return "sse2_x4";
    case Kernel::kNeon:
      return "neon_x4";
  }
  return "unknown";
}

// ---------------------------------------------------------------------------
// Single-stream context
// ---------------------------------------------------------------------------

Sha256::Sha256() { state_ = kInitialState; }

std::span<const std::uint8_t> Sha256::drain_buffer(std::span<const std::uint8_t> data) {
  // (guarded: memcpy from a null data() of an empty span is UB)
  if (buffered_ == 0 || data.empty()) return data;
  const std::size_t take = std::min(kBlockSize - buffered_, data.size());
  std::memcpy(buffer_.data() + buffered_, data.data(), take);
  buffered_ += take;
  if (buffered_ == kBlockSize) {
    active_ops().compress(state_.data(), buffer_.data(), 1);
    buffered_ = 0;
  }
  return data.subspan(take);
}

void Sha256::stash_tail(std::span<const std::uint8_t> tail) {
  if (tail.empty()) return;
  std::memcpy(buffer_.data() + buffered_, tail.data(), tail.size());
  buffered_ += tail.size();
}

void Sha256::update(std::span<const std::uint8_t> data) {
  util::expects(!finalized_, "Sha256 reused after finalize");
  total_bytes_ += data.size();
  data = drain_buffer(data);
  const std::size_t nblocks = data.size() / kBlockSize;
  if (nblocks > 0) {
    active_ops().compress(state_.data(), data.data(), nblocks);
    data = data.subspan(nblocks * kBlockSize);
  }
  stash_tail(data);
}

std::size_t Sha256::build_final_blocks(std::uint8_t* tail) const {
  // buffered message bytes || 0x80 || zeros || 8-byte big-endian bit length.
  std::size_t len = buffered_;
  std::memcpy(tail, buffer_.data(), len);
  tail[len++] = 0x80;
  const std::size_t nblocks = (len + 8 > kBlockSize) ? 2 : 1;
  const std::size_t padded = nblocks * kBlockSize;
  std::memset(tail + len, 0, padded - len - 8);
  const std::uint64_t bit_len = total_bytes_ * 8;
  for (int i = 0; i < 8; ++i) {
    tail[padded - 8 + i] = static_cast<std::uint8_t>(bit_len >> (56 - 8 * i));
  }
  return nblocks;
}

void Sha256::emit_digest(DigestBytes& out) const {
  for (int i = 0; i < 8; ++i) {
    out[4 * i + 0] = static_cast<std::uint8_t>(state_[i] >> 24);
    out[4 * i + 1] = static_cast<std::uint8_t>(state_[i] >> 16);
    out[4 * i + 2] = static_cast<std::uint8_t>(state_[i] >> 8);
    out[4 * i + 3] = static_cast<std::uint8_t>(state_[i]);
  }
}

Sha256::DigestBytes Sha256::finalize() {
  util::expects(!finalized_, "Sha256 reused after finalize");
  finalized_ = true;
  std::array<std::uint8_t, 2 * kBlockSize> tail;
  const std::size_t nblocks = build_final_blocks(tail.data());
  active_ops().compress(state_.data(), tail.data(), nblocks);
  DigestBytes out;
  emit_digest(out);
  return out;
}

Sha256::DigestBytes Sha256::hash(std::span<const std::uint8_t> data) {
  Sha256 ctx;
  ctx.update(data);
  return ctx.finalize();
}

// ---------------------------------------------------------------------------
// Raw block interface
// ---------------------------------------------------------------------------

void Sha256::export_midstate(std::uint32_t out[8]) const {
  util::expects(buffered_ == 0 && !finalized_,
                "export_midstate requires a block-aligned, live context");
  std::memcpy(out, state_.data(), sizeof(state_));
}

void Sha256::compress_pair(std::uint32_t* state_a, const std::uint8_t* blocks_a,
                           std::uint32_t* state_b, const std::uint8_t* blocks_b,
                           std::size_t nblocks) {
  std::uint32_t* states[2] = {state_a, state_b};
  const std::uint8_t* blocks[2] = {blocks_a, blocks_b};
  compress_wide(states, blocks, 2, nblocks);
}

std::size_t Sha256::wide_lanes() { return active_ops().wide_lanes; }

void Sha256::compress_wide(std::uint32_t* const* states, const std::uint8_t* const* blocks,
                           std::size_t count, std::size_t nblocks) {
  util::expects(count <= kMaxBatch, "compress_wide: batch too large");
  if (count == 0 || nblocks == 0) return;
  const KernelOps ops = active_ops();
  std::size_t i = 0;
  if (ops.compress_wide != nullptr) {
    for (; i + ops.wide_lanes <= count; i += ops.wide_lanes) {
      ops.compress_wide(states + i, blocks + i, nblocks);
    }
    // Pad a short tail group with throwaway lanes rather than dropping to the
    // (portable) single-stream path: garbage columns cost nothing extra, and
    // lanes are independent so the real columns are unaffected.
    if (count - i >= 2) {
      std::uint32_t dummy[8];
      std::memcpy(dummy, kInitialState.data(), sizeof(dummy));
      std::uint32_t* st[kMaxBatch];
      const std::uint8_t* bl[kMaxBatch];
      for (std::size_t l = 0; l < ops.wide_lanes; ++l) {
        st[l] = i + l < count ? states[i + l] : dummy;
        bl[l] = i + l < count ? blocks[i + l] : blocks[i];
      }
      ops.compress_wide(st, bl, nblocks);
      i = count;
    }
  }
  if (ops.compress_x2 != nullptr) {
    for (; i + 2 <= count; i += 2) {
      ops.compress_x2(states[i], blocks[i], states[i + 1], blocks[i + 1], nblocks);
    }
  }
  for (; i < count; ++i) ops.compress(states[i], blocks[i], nblocks);
}

// ---------------------------------------------------------------------------
// Multi-buffer drivers
// ---------------------------------------------------------------------------

void Sha256::update_two(Sha256& a, std::span<const std::uint8_t> da, Sha256& b,
                        std::span<const std::uint8_t> db) {
  util::expects(!a.finalized_ && !b.finalized_, "Sha256 reused after finalize");
  const KernelOps ops = active_ops();
  a.total_bytes_ += da.size();
  b.total_bytes_ += db.size();
  da = a.drain_buffer(da);
  db = b.drain_buffer(db);

  const std::size_t na = da.size() / kBlockSize;
  const std::size_t nb = db.size() / kBlockSize;
  const std::size_t paired = ops.compress_x2 != nullptr ? std::min(na, nb) : 0;
  if (paired > 0) {
    ops.compress_x2(a.state_.data(), da.data(), b.state_.data(), db.data(), paired);
  }
  if (na > paired) {
    ops.compress(a.state_.data(), da.data() + paired * kBlockSize, na - paired);
  }
  if (nb > paired) {
    ops.compress(b.state_.data(), db.data() + paired * kBlockSize, nb - paired);
  }
  a.stash_tail(da.subspan(na * kBlockSize));
  b.stash_tail(db.subspan(nb * kBlockSize));
}

void Sha256::finalize_two(Sha256& a, Sha256& b, DigestBytes& out_a, DigestBytes& out_b) {
  util::expects(!a.finalized_ && !b.finalized_, "Sha256 reused after finalize");
  a.finalized_ = true;
  b.finalized_ = true;
  std::array<std::uint8_t, 2 * kBlockSize> tail_a;
  std::array<std::uint8_t, 2 * kBlockSize> tail_b;
  const std::size_t blocks_a = a.build_final_blocks(tail_a.data());
  const std::size_t blocks_b = b.build_final_blocks(tail_b.data());
  const KernelOps ops = active_ops();
  if (ops.compress_x2 != nullptr && blocks_a == blocks_b) {
    ops.compress_x2(a.state_.data(), tail_a.data(), b.state_.data(), tail_b.data(), blocks_a);
  } else {
    ops.compress(a.state_.data(), tail_a.data(), blocks_a);
    ops.compress(b.state_.data(), tail_b.data(), blocks_b);
  }
  a.emit_digest(out_a);
  b.emit_digest(out_b);
}

void Sha256::update_many(Sha256* const* ctxs, const std::span<const std::uint8_t>* data,
                         std::size_t count) {
  util::expects(count <= kMaxBatch, "update_many: batch too large");
  std::span<const std::uint8_t> rest[kMaxBatch];
  for (std::size_t i = 0; i < count; ++i) {
    util::expects(!ctxs[i]->finalized_, "Sha256 reused after finalize");
    ctxs[i]->total_bytes_ += data[i].size();
    rest[i] = data[i];
  }

  // Phase 1: top carry buffers up; the lanes whose buffer fills compress the
  // buffered block as one batch (equal-shaped streams all fill together).
  std::uint32_t* st[kMaxBatch];
  const std::uint8_t* bl[kMaxBatch];
  std::size_t filled[kMaxBatch];
  std::size_t nfill = 0;
  for (std::size_t i = 0; i < count; ++i) {
    Sha256& c = *ctxs[i];
    if (c.buffered_ == 0 || rest[i].empty()) continue;
    const std::size_t take = std::min(kBlockSize - c.buffered_, rest[i].size());
    std::memcpy(c.buffer_.data() + c.buffered_, rest[i].data(), take);
    c.buffered_ += take;
    rest[i] = rest[i].subspan(take);
    if (c.buffered_ == kBlockSize) {
      st[nfill] = c.state_.data();
      bl[nfill] = c.buffer_.data();
      filled[nfill] = i;
      ++nfill;
    }
  }
  compress_wide(st, bl, nfill, 1);
  for (std::size_t j = 0; j < nfill; ++j) ctxs[filled[j]]->buffered_ = 0;

  // Phase 2: whole blocks, batched over the lanes still holding full blocks.
  // Like-shaped streams (the hash_many case) stay in lockstep and run one
  // n-lane pass; ragged shapes peel off as they run dry.
  std::size_t off[kMaxBatch] = {};
  std::size_t nblocks[kMaxBatch];
  for (std::size_t i = 0; i < count; ++i) nblocks[i] = rest[i].size() / kBlockSize;
  for (;;) {
    std::size_t active[kMaxBatch];
    std::size_t nactive = 0;
    std::size_t common = 0;
    for (std::size_t i = 0; i < count; ++i) {
      const std::size_t left = nblocks[i] - off[i];
      if (left == 0) continue;
      common = nactive == 0 ? left : std::min(common, left);
      active[nactive++] = i;
    }
    if (nactive == 0) break;
    for (std::size_t j = 0; j < nactive; ++j) {
      const std::size_t i = active[j];
      st[j] = ctxs[i]->state_.data();
      bl[j] = rest[i].data() + off[i] * kBlockSize;
    }
    compress_wide(st, bl, nactive, common);
    for (std::size_t j = 0; j < nactive; ++j) off[active[j]] += common;
  }

  // Phase 3: stash the sub-block tails.
  for (std::size_t i = 0; i < count; ++i) {
    ctxs[i]->stash_tail(rest[i].subspan(nblocks[i] * kBlockSize));
  }
}

void Sha256::finalize_many(Sha256* const* ctxs, DigestBytes* out, std::size_t count) {
  util::expects(count <= kMaxBatch, "finalize_many: batch too large");
  std::uint8_t tails[kMaxBatch][2 * kBlockSize];
  std::size_t tail_blocks[kMaxBatch];
  for (std::size_t i = 0; i < count; ++i) {
    util::expects(!ctxs[i]->finalized_, "Sha256 reused after finalize");
    ctxs[i]->finalized_ = true;
    tail_blocks[i] = ctxs[i]->build_final_blocks(tails[i]);
  }
  // Batch the one-block finishes together, then the two-block finishes.
  for (std::size_t want = 1; want <= 2; ++want) {
    std::uint32_t* st[kMaxBatch];
    const std::uint8_t* bl[kMaxBatch];
    std::size_t n = 0;
    for (std::size_t i = 0; i < count; ++i) {
      if (tail_blocks[i] != want) continue;
      st[n] = ctxs[i]->state_.data();
      bl[n] = tails[i];
      ++n;
    }
    compress_wide(st, bl, n, want);
  }
  for (std::size_t i = 0; i < count; ++i) ctxs[i]->emit_digest(out[i]);
}

namespace {

/// hash_many over one row range, on the calling thread. Wide batches when the
/// active kernel has an n-lane driver; the two-lane pairing otherwise.
void hash_many_rows(std::span<const std::uint8_t> prefix, const std::uint8_t* base,
                    std::size_t stride, std::size_t len, std::size_t count,
                    Sha256::DigestBytes* out) {
  std::size_t i = 0;
  const std::size_t wide = Sha256::wide_lanes();
  if (wide > 2) {
    while (count - i >= 3) {
      const std::size_t g = std::min(wide, count - i);
      Sha256 ctxs[Sha256::kMaxBatch];
      Sha256* ptrs[Sha256::kMaxBatch];
      std::span<const std::uint8_t> rows[Sha256::kMaxBatch];
      for (std::size_t l = 0; l < g; ++l) {
        if (!prefix.empty()) ctxs[l].update(prefix);
        ptrs[l] = &ctxs[l];
        rows[l] = {base + (i + l) * stride, len};
      }
      Sha256::update_many(ptrs, rows, g);
      Sha256::finalize_many(ptrs, out + i, g);
      i += g;
    }
  }
  for (; i + 2 <= count; i += 2) {
    Sha256 a;
    Sha256 b;
    if (!prefix.empty()) {
      a.update(prefix);
      b.update(prefix);
    }
    Sha256::update_two(a, {base + i * stride, len}, b, {base + (i + 1) * stride, len});
    Sha256::finalize_two(a, b, out[i], out[i + 1]);
  }
  if (i < count) {
    Sha256 c;
    if (!prefix.empty()) c.update(prefix);
    c.update({base + i * stride, len});
    out[i] = c.finalize();
  }
}

/// Don't fan hash_many out across the pool below this much hashed data — a
/// dispatch costs a cv wake per worker (~µs), which only amortizes against
/// arena-scale inputs (Merkle trees over whole datablocks).
constexpr std::size_t kHashManyParallelMin = 128 * 1024;

}  // namespace

void Sha256::hash_many(std::span<const std::uint8_t> prefix, const std::uint8_t* base,
                       std::size_t stride, std::size_t len, std::size_t count,
                       DigestBytes* out) {
  util::expects(count == 0 || base != nullptr, "hash_many: null rows");
  // Large arenas split by row range across the worker pool (each lane then
  // runs the n-lane kernel on its rows). Rows are independent one-shot
  // hashes, so the digests are identical for every pool size.
  auto& pool = util::WorkerPool::global();
  if (pool.lanes() > 1 && count >= 2 * pool.lanes() &&
      count * (len + prefix.size()) >= kHashManyParallelMin) {
    pool.for_ranges(count, wide_lanes(), [&](std::size_t, std::size_t b, std::size_t e) {
      hash_many_rows(prefix, base + b * stride, stride, len, e - b, out + b);
    });
    return;
  }
  hash_many_rows(prefix, base, stride, len, count, out);
}

}  // namespace leopard::crypto
