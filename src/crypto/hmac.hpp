// HMAC-SHA-256 (RFC 2104), from scratch. Backs the deterministic threshold
// signature scheme (see threshold_sig.hpp for the substitution rationale).
//
// HmacContext is the keyed hot path: constructing it compresses the
// key ^ ipad / key ^ opad blocks once, so each mac() afterwards costs only
// the message blocks plus two finalization blocks — the per-message key
// schedule the free function pays on every call is amortized away. One
// context per authenticated link/signer key is the intended usage.
#pragma once

#include <cstdint>
#include <span>

#include "crypto/sha256.hpp"

namespace leopard::crypto {

/// Reusable keyed HMAC-SHA-256 state with precomputed ipad/opad midstates.
class HmacContext {
 public:
  /// Empty context; mac() must not be called before init().
  HmacContext() = default;

  /// Precomputes the pad schedules for `key` (hashed first if > 64 bytes).
  explicit HmacContext(std::span<const std::uint8_t> key) { init(key); }

  /// (Re)keys the context.
  void init(std::span<const std::uint8_t> key);

  /// HMAC(key, message).
  [[nodiscard]] Sha256::DigestBytes mac(std::span<const std::uint8_t> message) const;

  /// HMAC(key, m0) and HMAC(key, m1) with the inner and outer hashes running
  /// through the two-lane compression driver.
  void mac_pair(std::span<const std::uint8_t> m0, std::span<const std::uint8_t> m1,
                Sha256::DigestBytes& out0, Sha256::DigestBytes& out1) const;

  /// HMAC(key, tag0 || m) and HMAC(key, tag1 || m) — the threshold-signature
  /// evaluation shape (two domain-separated MACs over one message), without
  /// materializing the concatenations. Messages short enough that tag||m pads
  /// into one block (the vote shape: m is a 32-byte digest) run the fused
  /// raw-block path — two compress_pair calls total, no incremental-update
  /// machinery — which is what makes single-share sign/verify cheap.
  void mac_tagged_pair(std::uint8_t tag0, std::uint8_t tag1,
                       std::span<const std::uint8_t> message, Sha256::DigestBytes& out0,
                       Sha256::DigestBytes& out1) const;

  /// HMAC(key_a, tag || m) and HMAC(key_b, tag || m) — two DIFFERENT keys,
  /// one message: the cross-signer shape of batched vote verification
  /// (ThresholdScheme::combine pairs adjacent shares through this). Unlike
  /// back-to-back mac() calls, the two keys' inner compressions share one
  /// two-lane pass and their outer compressions another, and consecutive
  /// mac_tagged_cross calls (tag 0x00 then 0x01) are data-independent, so
  /// the compression chains of a share pair overlap in the OoO window.
  static void mac_tagged_cross(const HmacContext& a, const HmacContext& b, std::uint8_t tag,
                               std::span<const std::uint8_t> message,
                               Sha256::DigestBytes& out_a, Sha256::DigestBytes& out_b);

  /// The n-lane generalization: HMAC(key_i, tag || m) for i in [0, count),
  /// count <= Sha256::kMaxBatch. All lanes share one prepared inner block on
  /// the fused path (only the key midstates differ), so a whole batch of
  /// vote shares runs as two compress_wide passes — 8 shares per pass under
  /// the AVX2 kernel. Longer messages fall back to paired incremental runs.
  static void mac_tagged_cross_many(const HmacContext* const* ctxs, std::size_t count,
                                    std::uint8_t tag, std::span<const std::uint8_t> message,
                                    Sha256::DigestBytes* out);

 private:
  Sha256 inner_;  // midstate after absorbing key ^ ipad
  Sha256 outer_;  // midstate after absorbing key ^ opad
};

/// Computes HMAC-SHA-256(key, message). One-shot convenience; repeated calls
/// under one key should hold an HmacContext instead.
Sha256::DigestBytes hmac_sha256(std::span<const std::uint8_t> key,
                                std::span<const std::uint8_t> message);

}  // namespace leopard::crypto
