// HMAC-SHA-256 (RFC 2104), from scratch. Backs the deterministic threshold
// signature scheme (see threshold_sig.hpp for the substitution rationale).
#pragma once

#include <cstdint>
#include <span>

#include "crypto/sha256.hpp"

namespace leopard::crypto {

/// Computes HMAC-SHA-256(key, message).
Sha256::DigestBytes hmac_sha256(std::span<const std::uint8_t> key,
                                std::span<const std::uint8_t> message);

}  // namespace leopard::crypto
