#include "baselines/hotstuff.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace leopard::baselines {

using crypto::Digest;
using proto::ReplicaId;
using proto::SeqNum;
using protocol::Metric;

namespace {
constexpr protocol::TimerToken kProposalFlushToken = 1;
}  // namespace

HotStuffReplica::HotStuffReplica(HotStuffConfig cfg, const crypto::ThresholdScheme& ts,
                                 ReplicaId id)
    : cfg_(cfg), ts_(ts), id_(id) {
  util::expects(cfg_.n >= 4, "HotStuff baseline requires n >= 4");
}

void HotStuffReplica::do_start() {
  if (is_leader()) proposal_flush_tick();
}

void HotStuffReplica::do_timer(protocol::TimerToken token) {
  if (token == kProposalFlushToken) proposal_flush_tick();
}

void HotStuffReplica::do_client_request(protocol::NodeId, const proto::ClientRequestMsg& msg) {
  handle_client_request(msg);
}

void HotStuffReplica::do_message(protocol::NodeId from, const sim::PayloadPtr& msg) {
  if (auto b = std::dynamic_pointer_cast<const proto::BaselineBlockMsg>(msg)) {
    handle_block(static_cast<ReplicaId>(from), b);
  } else if (auto v = std::dynamic_pointer_cast<const proto::BaselineVoteMsg>(msg)) {
    handle_vote(static_cast<ReplicaId>(from), *v);
  }
}

void HotStuffReplica::handle_client_request(const proto::ClientRequestMsg& msg) {
  if (!is_leader()) return;  // clients submit to the leader in HotStuff
  sim::SimTime cost = 0;
  for (const auto& req : msg.requests) {
    if (mempool_.size() >= cfg_.mempool_capacity) {
      cost += costs().client_request_shed;  // overload: reject cheaply
      continue;
    }
    cost += costs().client_request_ingress;
    if (mempool_.empty()) oldest_pending_at_ = now();
    mempool_.push_back(req);
  }
  charge(cost);
  maybe_propose();
}

void HotStuffReplica::maybe_propose() {
  if (!is_leader() || proposal_outstanding_) return;
  if (mempool_.size() >= cfg_.batch_size) propose();
}

void HotStuffReplica::proposal_flush_tick() {
  if (!proposal_outstanding_) {
    if (!mempool_.empty() && now() - oldest_pending_at_ >= cfg_.proposal_max_wait) {
      propose();
    } else if (mempool_.empty() && committed_ < last_payload_height_) {
      // Closed-loop tail flush: no new requests are coming, but payload
      // blocks sit above the commit point. Drive the 3-chain rule with
      // empty pacemaker blocks (paced by the vote round trip) until every
      // payload height commits. Saturated open-loop runs never enter this
      // branch — their mempool is never empty.
      propose(/*allow_empty=*/true);
    }
  }
  env().set_timer(kProposalFlushToken,
                  std::max<sim::SimTime>(cfg_.proposal_max_wait / 4, sim::kMillisecond));
}

void HotStuffReplica::propose(bool allow_empty) {
  const auto take = std::min<std::size_t>(mempool_.size(), cfg_.batch_size);
  if (take == 0 && !allow_empty) return;

  auto block = std::make_shared<proto::BaselineBlockMsg>();
  block->view = 1;
  block->height = next_height_++;
  block->parent = high_qc_digest_;
  block->justify_target = high_qc_digest_;
  block->justify_sig = high_qc_sig_;
  block->batch.reserve(take);
  for (std::size_t i = 0; i < take; ++i) {
    block->batch.push_back(std::move(mempool_.front()));
    mempool_.pop_front();
  }
  oldest_pending_at_ = now();
  if (take > 0) last_payload_height_ = block->height;

  block->cached_digest = block->compute_digest();
  charge(costs().per_bytes(costs().hash_per_byte_ns, block->wire_size()));

  // Leader's own vote opens the collection for this height.
  proposal_outstanding_ = true;
  voting_digest_ = block->cached_digest;
  voting_height_ = block->height;
  votes_.clear();
  voters_.clear();
  charge(costs().share_sign);
  votes_.push_back(ts_.sign_share(id_, voting_digest_));
  voters_.insert(id_);

  chain_.emplace(block->height, block);
  env().broadcast(block);

  // The justify QC notarizes the parent: leader advances its commit state too.
  if (block->height > 1) advance_commit(block->height - 1);
}

void HotStuffReplica::handle_block(ReplicaId from,
                                   std::shared_ptr<const proto::BaselineBlockMsg> msg) {
  if (from != 0 || is_leader()) return;  // stable leader protocol

  // Verify the justify QC and charge per-request batch handling.
  charge(costs().combined_verify +
         costs().block_per_request * static_cast<sim::SimTime>(msg->batch.size()));
  if (msg->height > 1 && !ts_.verify(msg->justify_target, msg->justify_sig)) return;

  const auto height = msg->height;
  chain_.emplace(height, std::move(msg));

  // Vote for the block (threshold share to the leader).
  charge(costs().share_sign);
  auto vote = std::make_shared<proto::BaselineVoteMsg>();
  vote->view = 1;
  vote->height = height;
  vote->block_digest = chain_[height]->cached_digest;
  vote->share = ts_.sign_share(id_, vote->block_digest);
  env().send(0, std::move(vote));

  // The justify QC notarizes the parent height.
  if (height > 1) advance_commit(height - 1);
}

void HotStuffReplica::handle_vote(ReplicaId from, const proto::BaselineVoteMsg& msg) {
  if (!is_leader() || msg.height != voting_height_ || !proposal_outstanding_) return;
  charge(costs().share_verify);
  if (msg.block_digest != voting_digest_) return;
  if (!ts_.verify_share(voting_digest_, msg.share) || msg.share.signer != from) return;
  if (!voters_.insert(from).second) return;
  votes_.push_back(msg.share);

  if (votes_.size() >= cfg_.quorum()) {
    charge(costs().combine_base +
           costs().combine_per_share * static_cast<sim::SimTime>(cfg_.quorum()));
    const auto qc = ts_.combine(voting_digest_, votes_);
    util::ensures(qc.has_value(), "HotStuff QC combine must succeed");
    high_qc_digest_ = voting_digest_;
    high_qc_sig_ = *qc;
    high_qc_height_ = voting_height_;
    proposal_outstanding_ = false;
    // Chained pipelining: the QC ships inside the next proposal.
    maybe_propose();
  }
}

void HotStuffReplica::advance_commit(SeqNum notarized_height) {
  notarized_ = std::max(notarized_, notarized_height);
  // 3-chain rule with a stable leader and consecutive heights: the
  // grandparent of the newest notarized block is committed.
  if (notarized_ >= 3) {
    const auto commit_to = notarized_ - 2;
    if (commit_to > committed_) {
      committed_ = commit_to;
      execute_through(committed_);
    }
  }
}

void HotStuffReplica::execute_through(SeqNum height) {
  while (executed_ < height) {
    const auto it = chain_.find(executed_ + 1);
    if (it == chain_.end()) return;
    const auto& block = it->second;
    const auto reqs = block->batch.size();
    charge(costs().execute_per_request * static_cast<sim::SimTime>(reqs));
    executed_requests_ += reqs;
    env().execute(block, reqs, executed_ + 1, 0);

    if (is_leader()) {
      // The leader is the observer and the clients' contact point.
      env().metric(Metric::kExecutedRequests, static_cast<double>(reqs));
      std::unordered_map<std::uint64_t, std::vector<std::uint64_t>> acks;
      for (const auto& r : block->batch) acks[r.client_id].push_back(r.seq);
      for (auto& [client, seqs] : acks) {
        auto ack = std::make_shared<proto::AckMsg>();
        ack->client_id = client;
        ack->seqs = std::move(seqs);
        env().send(static_cast<protocol::NodeId>(client), std::move(ack));
      }
    }
    ++executed_;
    // Keep memory bounded on long runs: executed blocks are no longer needed.
    if (executed_ > 8) chain_.erase(executed_ - 8);
  }
}

std::optional<Digest> HotStuffReplica::committed_digest(SeqNum height) const {
  if (height > committed_) return std::nullopt;
  const auto it = chain_.find(height);
  if (it == chain_.end()) return std::nullopt;
  return it->second->cached_digest;
}

}  // namespace leopard::baselines
