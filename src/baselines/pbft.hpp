// PBFT baseline (BFT-SMaRt stand-in for Fig. 1) as a sans-I/O protocol core:
// leader disseminates full-payload blocks; voting is ALL-TO-ALL with flat
// (non-aggregated) authenticators — the O(n²) vote pattern that threshold
// signatures remove. BFT-SMaRt authenticates with MAC vectors, so vote
// verification is cheap; the dominant large-n cost is the quadratic vote
// traffic plus the leader's O(n) dissemination.
//
// Normal case only (honest stable leader, after GST), matching its role in
// the paper's evaluation.
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "crypto/threshold_sig.hpp"
#include "proto/messages.hpp"
#include "protocol/protocol.hpp"

namespace leopard::baselines {

struct PbftConfig {
  std::uint32_t n = 4;
  std::uint32_t batch_size = 800;
  std::uint32_t payload_size = 128;
  /// Parallel in-flight instances (BFT-SMaRt pipelines consensus instances).
  std::uint32_t max_parallel_instances = 10;
  sim::SimTime proposal_max_wait = 20 * sim::kMillisecond;
  std::uint32_t mempool_capacity = 40000;
  /// MAC-vector verification cost per vote (BFT-SMaRt-style, much cheaper
  /// than signature verification).
  sim::SimTime vote_verify_cost = 3 * sim::kMicrosecond;

  [[nodiscard]] std::uint32_t f() const { return (n - 1) / 3; }
  [[nodiscard]] std::uint32_t quorum() const { return 2 * f() + 1; }
};

/// The leader is replica 0 (also the throughput observer).
class PbftReplica final : public protocol::ProtocolBase {
 public:
  PbftReplica(PbftConfig cfg, const crypto::ThresholdScheme& ts, proto::ReplicaId id);

  // -- protocol::Protocol ----------------------------------------------------
  [[nodiscard]] proto::ReplicaId id() const override { return id_; }

  [[nodiscard]] bool is_leader() const { return id_ == 0; }
  [[nodiscard]] proto::SeqNum executed_through() const { return executed_; }
  [[nodiscard]] std::uint64_t executed_request_count() const { return executed_requests_; }

 protected:
  // -- protocol::ProtocolBase hooks ------------------------------------------
  void do_start() override;
  void do_message(protocol::NodeId from, const sim::PayloadPtr& payload) override;
  void do_timer(protocol::TimerToken token) override;
  void do_client_request(protocol::NodeId from, const proto::ClientRequestMsg& msg) override;

 private:
  struct Instance {
    std::shared_ptr<const proto::BaselineBlockMsg> block;
    std::set<proto::ReplicaId> prepares;
    std::set<proto::ReplicaId> commits;
    bool prepared = false;
    bool committed = false;
    bool executed = false;
  };

  void handle_client_request(const proto::ClientRequestMsg& msg);
  void handle_preprepare(proto::ReplicaId from,
                         std::shared_ptr<const proto::BaselineBlockMsg> msg);
  void handle_vote(proto::ReplicaId from, const proto::BaselineVoteMsg& msg);

  void maybe_propose();
  void propose();
  void proposal_flush_tick();
  void broadcast_vote(std::uint8_t phase, proto::SeqNum sn, const crypto::Digest& digest);
  void try_advance(proto::SeqNum sn);
  void execute_ready();

  PbftConfig cfg_;
  const crypto::ThresholdScheme& ts_;
  proto::ReplicaId id_;

  std::deque<proto::Request> mempool_;
  sim::SimTime oldest_pending_at_ = 0;
  proto::SeqNum next_sn_ = 1;

  std::map<proto::SeqNum, Instance> instances_;
  proto::SeqNum executed_ = 0;
  std::uint64_t executed_requests_ = 0;
};

}  // namespace leopard::baselines
