#include "baselines/pbft.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace leopard::baselines {

using crypto::Digest;
using proto::ReplicaId;
using proto::SeqNum;
using protocol::Metric;

namespace {
constexpr protocol::TimerToken kProposalFlushToken = 1;
}  // namespace

PbftReplica::PbftReplica(PbftConfig cfg, const crypto::ThresholdScheme& ts, ReplicaId id)
    : cfg_(cfg), ts_(ts), id_(id) {
  util::expects(cfg_.n >= 4, "PBFT baseline requires n >= 4");
}

void PbftReplica::do_start() {
  if (is_leader()) proposal_flush_tick();
}

void PbftReplica::do_timer(protocol::TimerToken token) {
  if (token == kProposalFlushToken) proposal_flush_tick();
}

void PbftReplica::do_client_request(protocol::NodeId, const proto::ClientRequestMsg& msg) {
  handle_client_request(msg);
}

void PbftReplica::do_message(protocol::NodeId from, const sim::PayloadPtr& msg) {
  if (auto b = std::dynamic_pointer_cast<const proto::BaselineBlockMsg>(msg)) {
    handle_preprepare(static_cast<ReplicaId>(from), b);
  } else if (auto v = std::dynamic_pointer_cast<const proto::BaselineVoteMsg>(msg)) {
    handle_vote(static_cast<ReplicaId>(from), *v);
  }
}

void PbftReplica::handle_client_request(const proto::ClientRequestMsg& msg) {
  if (!is_leader()) return;
  sim::SimTime cost = 0;
  for (const auto& req : msg.requests) {
    if (mempool_.size() >= cfg_.mempool_capacity) {
      cost += costs().client_request_shed;
      continue;
    }
    cost += costs().client_request_ingress;
    if (mempool_.empty()) oldest_pending_at_ = now();
    mempool_.push_back(req);
  }
  charge(cost);
  maybe_propose();
}

void PbftReplica::maybe_propose() {
  while (is_leader() && mempool_.size() >= cfg_.batch_size &&
         next_sn_ <= executed_ + cfg_.max_parallel_instances) {
    propose();
  }
}

void PbftReplica::proposal_flush_tick() {
  if (!mempool_.empty() && next_sn_ <= executed_ + cfg_.max_parallel_instances &&
      now() - oldest_pending_at_ >= cfg_.proposal_max_wait) {
    propose();
  }
  env().set_timer(kProposalFlushToken,
                  std::max<sim::SimTime>(cfg_.proposal_max_wait / 4, sim::kMillisecond));
}

void PbftReplica::propose() {
  const auto take = std::min<std::size_t>(mempool_.size(), cfg_.batch_size);
  if (take == 0) return;

  auto block = std::make_shared<proto::BaselineBlockMsg>();
  block->view = 1;
  block->height = next_sn_++;
  block->batch.reserve(take);
  for (std::size_t i = 0; i < take; ++i) {
    block->batch.push_back(std::move(mempool_.front()));
    mempool_.pop_front();
  }
  oldest_pending_at_ = now();

  block->cached_digest = block->compute_digest();
  charge(costs().per_bytes(costs().hash_per_byte_ns, block->wire_size()));

  auto& inst = instances_[block->height];
  inst.block = block;
  inst.prepares.insert(id_);

  env().broadcast(block);
  broadcast_vote(1, block->height, block->cached_digest);
}

void PbftReplica::handle_preprepare(ReplicaId from,
                                    std::shared_ptr<const proto::BaselineBlockMsg> msg) {
  if (from != 0 || is_leader()) return;
  charge(costs().block_per_request * static_cast<sim::SimTime>(msg->batch.size()));

  const auto sn = msg->height;
  auto& inst = instances_[sn];
  if (inst.block) return;  // duplicate
  inst.block = std::move(msg);
  inst.prepares.insert(id_);
  broadcast_vote(1, sn, inst.block->cached_digest);
  try_advance(sn);
}

void PbftReplica::broadcast_vote(std::uint8_t phase, SeqNum sn, const Digest& digest) {
  // Flat authenticator (MAC vector): reuse the share container for its wire
  // size; verification cost is the cheap cfg_.vote_verify_cost.
  auto vote = std::make_shared<proto::BaselineVoteMsg>();
  vote->phase = phase;
  vote->view = 1;
  vote->height = sn;
  vote->block_digest = digest;
  vote->share = ts_.sign_share(id_, digest);
  env().broadcast(std::move(vote));
}

void PbftReplica::handle_vote(ReplicaId from, const proto::BaselineVoteMsg& msg) {
  charge(cfg_.vote_verify_cost);
  auto& inst = instances_[msg.height];
  if (inst.block && msg.block_digest != inst.block->cached_digest) return;
  if (msg.phase == 1) {
    inst.prepares.insert(from);
  } else {
    inst.commits.insert(from);
  }
  try_advance(msg.height);
}

void PbftReplica::try_advance(SeqNum sn) {
  auto& inst = instances_[sn];
  if (!inst.block) return;

  if (!inst.prepared && inst.prepares.size() >= cfg_.quorum()) {
    inst.prepared = true;
    inst.commits.insert(id_);
    broadcast_vote(2, sn, inst.block->cached_digest);
  }
  if (inst.prepared && !inst.committed && inst.commits.size() >= cfg_.quorum()) {
    inst.committed = true;
    execute_ready();
  }
}

void PbftReplica::execute_ready() {
  while (true) {
    const auto it = instances_.find(executed_ + 1);
    if (it == instances_.end() || !it->second.committed || it->second.executed) return;
    auto& inst = it->second;
    const auto reqs = inst.block->batch.size();
    charge(costs().execute_per_request * static_cast<sim::SimTime>(reqs));
    executed_requests_ += reqs;
    inst.executed = true;
    env().execute(inst.block, reqs, executed_ + 1, 0);

    if (is_leader()) {
      env().metric(Metric::kExecutedRequests, static_cast<double>(reqs));
      std::unordered_map<std::uint64_t, std::vector<std::uint64_t>> acks;
      for (const auto& r : inst.block->batch) acks[r.client_id].push_back(r.seq);
      for (auto& [client, seqs] : acks) {
        auto ack = std::make_shared<proto::AckMsg>();
        ack->client_id = client;
        ack->seqs = std::move(seqs);
        env().send(static_cast<protocol::NodeId>(client), std::move(ack));
      }
    }
    ++executed_;
    if (executed_ > 16) instances_.erase(executed_ - 16);
    if (is_leader()) maybe_propose();  // window advanced
  }
}

}  // namespace leopard::baselines
