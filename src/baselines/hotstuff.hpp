// Chained, pipelined HotStuff baseline (Yin et al. 2019) as a sans-I/O
// protocol core: the leader batches client requests into blocks carrying FULL
// request payloads and disseminates them to all replicas — the O(n) leader
// cost of Eq. (1) that Leopard removes. Votes are threshold signature shares
// aggregated by the leader into QCs; a block commits under the 3-chain rule.
//
// Scope: the paper compares against HotStuff only in the normal case (honest
// stable leader, after GST) — Figs. 1, 2, 6, 9, 10, 11. The HotStuff
// pacemaker/view-change is therefore not modelled (Leopard's own view-change
// is, see core/replica.hpp).
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "crypto/threshold_sig.hpp"
#include "proto/messages.hpp"
#include "protocol/protocol.hpp"

namespace leopard::baselines {

struct HotStuffConfig {
  std::uint32_t n = 4;
  std::uint32_t batch_size = 800;  // requests per block (Fig. 6 sweeps this)
  std::uint32_t payload_size = 128;
  /// Propose a partial block if requests waited this long (keeps the pipeline
  /// alive under light load).
  sim::SimTime proposal_max_wait = 20 * sim::kMillisecond;
  std::uint32_t mempool_capacity = 40000;

  [[nodiscard]] std::uint32_t f() const { return (n - 1) / 3; }
  [[nodiscard]] std::uint32_t quorum() const { return 2 * f() + 1; }
};

/// The leader is replica 0 (also the throughput observer).
class HotStuffReplica final : public protocol::ProtocolBase {
 public:
  HotStuffReplica(HotStuffConfig cfg, const crypto::ThresholdScheme& ts, proto::ReplicaId id);

  // -- protocol::Protocol ----------------------------------------------------
  [[nodiscard]] proto::ReplicaId id() const override { return id_; }

  [[nodiscard]] bool is_leader() const { return id_ == 0; }
  [[nodiscard]] proto::SeqNum committed_height() const { return committed_; }
  [[nodiscard]] std::uint64_t executed_request_count() const { return executed_requests_; }
  [[nodiscard]] std::size_t mempool_size() const { return mempool_.size(); }
  /// Digest of the committed block at `height` (safety checks in tests).
  [[nodiscard]] std::optional<crypto::Digest> committed_digest(proto::SeqNum height) const;

 protected:
  // -- protocol::ProtocolBase hooks ------------------------------------------
  void do_start() override;
  void do_message(protocol::NodeId from, const sim::PayloadPtr& payload) override;
  void do_timer(protocol::TimerToken token) override;
  void do_client_request(protocol::NodeId from, const proto::ClientRequestMsg& msg) override;

 private:
  void handle_client_request(const proto::ClientRequestMsg& msg);
  void handle_block(proto::ReplicaId from, std::shared_ptr<const proto::BaselineBlockMsg> msg);
  void handle_vote(proto::ReplicaId from, const proto::BaselineVoteMsg& msg);

  void maybe_propose();
  /// `allow_empty` proposes a batch-less pacemaker block: the 3-chain rule
  /// only commits a height once two descendants are notarized, so when the
  /// mempool drains (closed-loop workloads) the chain tail would strand
  /// without them.
  void propose(bool allow_empty = false);
  void proposal_flush_tick();
  void advance_commit(proto::SeqNum notarized_height);
  void execute_through(proto::SeqNum height);

  HotStuffConfig cfg_;
  const crypto::ThresholdScheme& ts_;
  proto::ReplicaId id_;

  // Leader state.
  std::deque<proto::Request> mempool_;
  sim::SimTime oldest_pending_at_ = 0;
  proto::SeqNum next_height_ = 1;
  proto::SeqNum last_payload_height_ = 0;  // newest height carrying requests
  bool proposal_outstanding_ = false;  // one in-flight proposal (chained pipeline)
  std::vector<crypto::SignatureShare> votes_;
  std::set<proto::ReplicaId> voters_;
  crypto::Digest voting_digest_;
  proto::SeqNum voting_height_ = 0;
  crypto::Digest high_qc_digest_;
  crypto::ThresholdSignature high_qc_sig_;
  proto::SeqNum high_qc_height_ = 0;

  // Replica state.
  std::map<proto::SeqNum, std::shared_ptr<const proto::BaselineBlockMsg>> chain_;
  proto::SeqNum notarized_ = 0;  // highest height with a known QC
  proto::SeqNum committed_ = 0;  // 3-chain committed prefix
  proto::SeqNum executed_ = 0;
  std::uint64_t executed_requests_ = 0;
};

}  // namespace leopard::baselines
