// Run-wide protocol metrics shared by replicas and clients (single-threaded
// simulation: plain counters). The harness snapshots counters at warmup end
// and reports deltas.
#pragma once

#include <cstdint>

#include "obs/histogram.hpp"
#include "sim/time.hpp"

namespace leopard::core {

struct ProtocolMetrics {
  // Confirmed throughput: counted once per request, at its datablock's maker
  // (Leopard) or at the leader (baselines), when executed.
  std::uint64_t executed_requests = 0;

  // Client-observed latency (submit → ack). Percentiles come from the same
  // log-bucketed HDR histogram the wire path exposes on /metrics (bounded
  // memory, ≤ ~3% relative error), so sim and wire report through one
  // implementation. Recorded in nanoseconds.
  std::uint64_t acked_requests = 0;
  double latency_sum_sec = 0;
  obs::HdrHistogram latency_hist;

  // Latency breakdown sums (Table IV), recorded at execution time on the
  // datablock maker for its own requests.
  std::uint64_t breakdown_count = 0;
  double sum_generation_sec = 0;     // submit → datablock created
  double sum_dissemination_sec = 0;  // datablock created → linked by leader
  double sum_agreement_sec = 0;      // linked → executed

  // Retrieval (Fig. 12 / Table V).
  std::uint64_t queries_sent = 0;
  std::uint64_t chunks_sent = 0;
  std::uint64_t datablocks_recovered = 0;
  double recovery_time_sum_sec = 0;  // query sent → datablock decoded

  // View-change (Fig. 13).
  std::uint32_t view_changes_completed = 0;
  sim::SimTime vc_triggered_at = -1;
  sim::SimTime vc_completed_at = -1;

  // Safety-violation canary: set by replicas if they ever observe conflicting
  // confirmations; integration tests assert it stays false.
  bool safety_violation = false;

  void record_ack_latency(double seconds) {
    ++acked_requests;
    latency_sum_sec += seconds;
    const double ns = seconds * 1e9;
    latency_hist.record(ns > 0 ? static_cast<std::uint64_t>(ns) : 0);
  }

  [[nodiscard]] double mean_latency_sec() const {
    return acked_requests == 0 ? 0.0 : latency_sum_sec / static_cast<double>(acked_requests);
  }

  [[nodiscard]] double latency_percentile(double p) const {
    return static_cast<double>(latency_hist.percentile(p)) / 1e9;
  }
};

}  // namespace leopard::core
