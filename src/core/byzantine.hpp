// Scripted Byzantine behaviours for fault-injection experiments (§VI-D).
// Honest replicas keep ByzantineSpec{} (all behaviours off); attacks compose.
#pragma once

#include <cstdint>
#include <optional>

#include "sim/time.hpp"

namespace leopard::core {

struct ByzantineSpec {
  /// Selective attack (§IV, §V case b): multicast own datablocks only to the
  /// leader plus the first `s - 1` other replicas instead of everyone.
  std::optional<std::uint32_t> selective_recipients;

  /// Drop datablocks received from other replicas (pretend not received):
  /// no pool insert, no Ready. Combined with `vote_blindly` the replica still
  /// participates in agreement so the attack stays covert.
  bool drop_foreign_datablocks = false;

  /// Vote on BFTblocks without checking datablock availability.
  bool vote_blindly = false;

  /// Never answer retrieval queries.
  bool ignore_queries = false;

  /// Withhold all votes (reduces effective quorum progress).
  bool withhold_votes = false;

  /// Leader-only: propose two different BFTblocks with the same serial number
  /// to two halves of the replicas (safety attack; must never confirm both).
  bool equivocate = false;

  /// Stop participating entirely at this time (models a crashed/silent
  /// replica; used to trigger view-changes in Fig. 13).
  std::optional<sim::SimTime> crash_at;

  [[nodiscard]] bool is_byzantine() const {
    return selective_recipients || drop_foreign_datablocks || vote_blindly ||
           ignore_queries || withhold_votes || equivocate || crash_at.has_value();
  }
};

}  // namespace leopard::core
