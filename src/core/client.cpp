#include "core/client.hpp"

#include <algorithm>
#include <map>
#include <memory>

#include "core/replica.hpp"

namespace leopard::core {

LeopardClient::LeopardClient(ClientConfig cfg, protocol::NodeId target,
                             std::uint32_t replica_count, protocol::NodeId avoid,
                             std::uint64_t seed)
    : cfg_(cfg), target_(target), replica_count_(replica_count), avoid_(avoid), rng_(seed) {}

void LeopardClient::do_start() {
  if (cfg_.burst == 0) {
    // Keep client-side event rates near ~25k messages/s regardless of load.
    cfg_.burst = static_cast<std::uint32_t>(std::max(1.0, cfg_.request_rate / 25000.0));
  }
  if (cfg_.closed_loop_window > 0) {
    refill_window();
    if (cfg_.resubmit_timeout > 0) env().set_timer(kResubmitTick, cfg_.resubmit_timeout / 2);
    return;
  }
  if (cfg_.initial_backlog > 0) {
    // Stagger backlog injection across clients so the cluster does not take
    // the whole standing backlog as one synchronized CPU shock.
    const auto jitter = static_cast<sim::SimTime>(rng_.uniform(300 * sim::kMillisecond));
    env().set_timer(kBacklogBurst, jitter);
  }
  if (cfg_.request_rate > 0) {
    submit_next();
    if (cfg_.resubmit_timeout > 0) env().set_timer(kResubmitTick, cfg_.resubmit_timeout / 2);
  }
}

void LeopardClient::do_timer(protocol::TimerToken token) {
  switch (token) {
    case kSubmitTick:
      submit_next();
      break;
    case kResubmitTick:
      resubmit_tick();
      break;
    case kBacklogBurst:
      submit_burst(cfg_.initial_backlog);
      break;
    default:
      break;  // unknown token: stale env artifact, ignore
  }
}

std::uint64_t LeopardClient::remaining_budget() const {
  if (cfg_.total_requests == 0) return UINT64_MAX;
  return cfg_.total_requests > next_seq_ ? cfg_.total_requests - next_seq_ : 0;
}

void LeopardClient::submit_burst(std::uint32_t count) {
  count = static_cast<std::uint32_t>(
      std::min<std::uint64_t>(count, remaining_budget()));
  if (count == 0) return;
  const auto t = now();
  // One batch per destination: the pinned target, or µ(req)-routed buckets.
  std::map<protocol::NodeId, std::shared_ptr<proto::ClientRequestMsg>> batches;
  for (std::uint32_t i = 0; i < count; ++i) {
    proto::Request req;
    req.client_id = self_;
    req.seq = next_seq_++;
    req.payload_size = cfg_.payload_size;
    req.submitted_at = t;
    if (cfg_.real_payload) {
      req.payload.resize(cfg_.payload_size);
      rng_.fill(req.payload.data(), req.payload.size());
    }

    protocol::NodeId first = target_;
    if (cfg_.route_by_mu) {
      first = assign_replica(req, replica_count_,
                             static_cast<proto::ReplicaId>(avoid_ % replica_count_));
    }
    if (outstanding_.size() < kMaxTracked) {
      outstanding_[req.seq] = Outstanding{t, t, 1, first};
    }

    // §IV-1: optionally submit to several replicas at once for lower latency
    // at the cost of duplicate dissemination.
    auto dest = first;
    for (std::uint32_t copy = 0; copy < std::max<std::uint32_t>(cfg_.submit_copies, 1);
         ++copy) {
      auto& batch = batches[dest];
      if (!batch) batch = std::make_shared<proto::ClientRequestMsg>();
      batch->requests.push_back(req);
      dest = (dest + 1) % replica_count_;
      if (dest == avoid_) dest = (dest + 1) % replica_count_;
    }
  }
  for (auto& [to, batch] : batches) env().send(to, std::move(batch));
}

void LeopardClient::submit_next() {
  if (cfg_.stop_at >= 0 && now() >= cfg_.stop_at) return;
  if (remaining_budget() == 0) return;
  submit_burst(cfg_.burst);
  // Poisson-distributed gaps between bursts at the configured mean rate.
  const double gap_sec =
      rng_.exponential(static_cast<double>(cfg_.burst) / cfg_.request_rate);
  env().set_timer(kSubmitTick, sim::from_seconds(gap_sec));
}

void LeopardClient::refill_window() {
  if (outstanding_.size() >= cfg_.closed_loop_window) return;
  const auto room = cfg_.closed_loop_window - outstanding_.size();
  submit_burst(static_cast<std::uint32_t>(
      std::min<std::uint64_t>(room, remaining_budget())));
}

void LeopardClient::do_message(protocol::NodeId, const sim::PayloadPtr& payload) {
  const auto ack = std::dynamic_pointer_cast<const proto::AckMsg>(payload);
  if (!ack) return;
  const auto t = now();
  for (const auto seq : ack->seqs) {
    const auto it = outstanding_.find(seq);
    if (it == outstanding_.end()) continue;  // duplicate ack after re-submission
    env().metric(protocol::Metric::kAckLatencySample,
                 sim::to_seconds(t - it->second.submitted_at));
    ++acked_;
    outstanding_.erase(it);
  }
  if (cfg_.closed_loop_window > 0) refill_window();
}

void LeopardClient::resubmit_tick() {
  const auto t = now();
  // Scan only the oldest entries: requests are acked roughly in order.
  std::size_t scanned = 0;
  for (auto& [seq, out] : outstanding_) {
    if (++scanned > 64 || t - out.last_sent_at < cfg_.resubmit_timeout) break;

    // Rotate to the next replica, skipping the initial leader (µ re-selection).
    auto next = (out.sent_to + 1) % replica_count_;
    if (next == avoid_) next = (next + 1) % replica_count_;
    out.sent_to = next;
    out.last_sent_at = t;
    ++out.attempts;

    proto::Request req;
    req.client_id = self_;
    req.seq = seq;
    req.payload_size = cfg_.payload_size;
    req.submitted_at = out.submitted_at;
    if (cfg_.real_payload) {
      req.payload.resize(cfg_.payload_size);
      rng_.fill(req.payload.data(), req.payload.size());
    }
    env().send(next, std::make_shared<proto::ClientRequestMsg>(std::move(req)));
  }
  env().set_timer(kResubmitTick,
                  std::max<sim::SimTime>(cfg_.resubmit_timeout / 2, sim::kMillisecond));
}

}  // namespace leopard::core
