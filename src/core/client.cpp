#include "core/client.hpp"

#include <algorithm>
#include <map>

#include "core/replica.hpp"

namespace leopard::core {

LeopardClient::LeopardClient(sim::Network& net, ProtocolMetrics& metrics, ClientConfig cfg,
                             sim::NodeId target, std::uint32_t replica_count,
                             sim::NodeId avoid, std::uint64_t seed)
    : net_(net),
      metrics_(metrics),
      cfg_(cfg),
      target_(target),
      replica_count_(replica_count),
      avoid_(avoid),
      rng_(seed) {}

void LeopardClient::start() {
  if (cfg_.burst == 0) {
    // Keep client-side event rates near ~25k messages/s regardless of load.
    cfg_.burst = static_cast<std::uint32_t>(std::max(1.0, cfg_.request_rate / 25000.0));
  }
  if (cfg_.initial_backlog > 0) {
    // Stagger backlog injection across clients so the cluster does not take
    // the whole standing backlog as one synchronized CPU shock.
    const auto jitter = static_cast<sim::SimTime>(rng_.uniform(300 * sim::kMillisecond));
    const auto backlog = cfg_.initial_backlog;
    net_.sim().schedule_after(jitter, [this, backlog] { submit_burst(backlog); });
  }
  if (cfg_.request_rate > 0) {
    submit_next();
    if (cfg_.resubmit_timeout > 0) resubmit_tick();
  }
}

void LeopardClient::submit_burst(std::uint32_t count) {
  const auto now = net_.sim().now();
  // One batch per destination: the pinned target, or µ(req)-routed buckets.
  std::map<sim::NodeId, std::shared_ptr<proto::ClientRequestMsg>> batches;
  for (std::uint32_t i = 0; i < count; ++i) {
    proto::Request req;
    req.client_id = self_;
    req.seq = next_seq_++;
    req.payload_size = cfg_.payload_size;
    req.submitted_at = now;
    if (cfg_.real_payload) {
      req.payload.resize(cfg_.payload_size);
      rng_.fill(req.payload.data(), req.payload.size());
    }

    sim::NodeId first = target_;
    if (cfg_.route_by_mu) {
      first = assign_replica(req, replica_count_,
                             static_cast<proto::ReplicaId>(avoid_ % replica_count_));
    }
    if (outstanding_.size() < kMaxTracked) {
      outstanding_[req.seq] = Outstanding{now, now, 1, first};
    }

    // §IV-1: optionally submit to several replicas at once for lower latency
    // at the cost of duplicate dissemination.
    auto dest = first;
    for (std::uint32_t copy = 0; copy < std::max<std::uint32_t>(cfg_.submit_copies, 1);
         ++copy) {
      auto& batch = batches[dest];
      if (!batch) batch = std::make_shared<proto::ClientRequestMsg>();
      batch->requests.push_back(req);
      dest = (dest + 1) % replica_count_;
      if (dest == avoid_) dest = (dest + 1) % replica_count_;
    }
  }
  for (auto& [to, batch] : batches) net_.send(self_, to, std::move(batch));
}

void LeopardClient::submit_next() {
  if (cfg_.stop_at >= 0 && net_.sim().now() >= cfg_.stop_at) return;
  submit_burst(cfg_.burst);
  // Poisson-distributed gaps between bursts at the configured mean rate.
  const double gap_sec =
      rng_.exponential(static_cast<double>(cfg_.burst) / cfg_.request_rate);
  net_.sim().schedule_after(sim::from_seconds(gap_sec), [this] { submit_next(); });
}

void LeopardClient::on_message(sim::NodeId, const sim::PayloadPtr& msg) {
  const auto ack = std::dynamic_pointer_cast<const proto::AckMsg>(msg);
  if (!ack) return;
  const auto now = net_.sim().now();
  for (const auto seq : ack->seqs) {
    const auto it = outstanding_.find(seq);
    if (it == outstanding_.end()) continue;  // duplicate ack after re-submission
    metrics_.record_ack_latency(sim::to_seconds(now - it->second.submitted_at));
    ++acked_;
    outstanding_.erase(it);
  }
}

void LeopardClient::resubmit_tick() {
  const auto now = net_.sim().now();
  // Scan only the oldest entries: requests are acked roughly in order.
  std::size_t scanned = 0;
  for (auto& [seq, out] : outstanding_) {
    if (++scanned > 64 || now - out.last_sent_at < cfg_.resubmit_timeout) break;

    // Rotate to the next replica, skipping the initial leader (µ re-selection).
    auto next = (out.sent_to + 1) % replica_count_;
    if (next == avoid_) next = (next + 1) % replica_count_;
    out.sent_to = next;
    out.last_sent_at = now;
    ++out.attempts;

    proto::Request req;
    req.client_id = self_;
    req.seq = seq;
    req.payload_size = cfg_.payload_size;
    req.submitted_at = out.submitted_at;
    if (cfg_.real_payload) {
      req.payload.resize(cfg_.payload_size);
      rng_.fill(req.payload.data(), req.payload.size());
    }
    net_.send(self_, next, std::make_shared<proto::ClientRequestMsg>(std::move(req)));
  }
  net_.sim().schedule_after(std::max<sim::SimTime>(cfg_.resubmit_timeout / 2, sim::kMillisecond),
                            [this] { resubmit_tick(); });
}

}  // namespace leopard::core
