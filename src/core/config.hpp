// Leopard protocol configuration (§IV parameters).
#pragma once

#include <cstdint>

#include "sim/time.hpp"

namespace leopard::core {

struct LeopardConfig {
  /// Number of replicas n = 3f + 1.
  std::uint32_t n = 4;

  /// Datablock batch size in requests (the paper's α expressed in requests;
  /// α_bits = datablock_requests × payload_bits). Table II uses 2000–4000.
  std::uint32_t datablock_requests = 2000;

  /// BFTblock batch size: number of datablock links per consensus proposal
  /// (the paper's τ). Table II uses 100–400.
  std::uint32_t bftblock_links = 100;

  /// Maximum number of parallel agreement instances (the paper's k; PBFT-style
  /// watermark window is (lw, lw + k]).
  std::uint32_t max_parallel_instances = 100;

  /// Checkpoint every k/2 confirmed serial numbers (Appendix A).
  [[nodiscard]] std::uint32_t checkpoint_interval() const {
    return max_parallel_instances / 2;
  }

  /// Request payload size in bytes (paper default: 128).
  std::uint32_t payload_size = 128;

  /// Mempool capacity in requests; ingress beyond this is shed (open-loop
  /// saturation keeps the pool full, which is how §VI stress-tests).
  std::uint32_t mempool_capacity = 12000;

  /// Flush a partial datablock if its oldest request waited this long.
  sim::SimTime datablock_max_wait = 500 * sim::kMillisecond;

  /// Leader: flush a partial BFTblock if ready links waited this long.
  sim::SimTime proposal_max_wait = 50 * sim::kMillisecond;

  /// Wait before multicasting a Query for a missing linked datablock.
  sim::SimTime retrieval_timeout = 10 * sim::kMillisecond;

  /// Replica-side progress timeout that triggers the view-change (§Appendix A).
  sim::SimTime view_timeout = 4 * sim::kSecond;

  /// Ablation switch: when false, the leader links datablocks as soon as it
  /// holds them, WITHOUT waiting for 2f+1 Ready acknowledgements. Removes the
  /// extra voting round of Algorithm 3 — and with it the guarantee that a
  /// committee of f+1 honest holders exists for retrieval. Keep true except
  /// in the ready-round ablation bench.
  bool enable_ready_round = true;

  /// Worker lanes for the dispersal hot path: Reed-Solomon parity encode
  /// splits shard width and Merkle hashing splits leaf rows across this many
  /// threads (util::WorkerPool). 1 = today's serial path, bit for bit.
  /// Applied to the process-global pool by the replica constructor (and by
  /// the harness per run); any value yields byte-identical protocol output —
  /// simulated CPU charges come from the CostModel, not wall clock, so pool
  /// size can never perturb a run.
  std::uint32_t encode_workers = 1;

  /// Maximum faulty replicas tolerated.
  [[nodiscard]] std::uint32_t f() const { return (n - 1) / 3; }
  /// Votes needed for notarization/confirmation proofs (2f + 1).
  [[nodiscard]] std::uint32_t quorum() const { return 2 * f() + 1; }
};

}  // namespace leopard::core
