// Client group as a sans-I/O protocol core: submits request batches to an
// assigned replica (the paper's µ(req) deterministic assignment), measures
// submit→ack latency, and re-submits to the next replica on timeout (§IV-1:
// "up to f times changes will guarantee the existence of an honest replica").
//
// Like the replicas, the client is a `protocol::Protocol`: pacing and
// re-submission run on `SetTimer`/`TimerFired`, submissions leave as `Send`
// actions, and ack latency is reported through `MetricsUpdate`
// (`Metric::kAckLatencySample`). The same core therefore drives both the
// discrete-event simulator (`SimEnv`, via `make_sim_client`) and a real
// deployment (`net::SocketEnv`, via the `leopard_node --client` driver).
//
// Two load modes:
//   - open loop (default): Poisson-paced bursts at `request_rate` req/s, the
//     paper's saturation workload;
//   - closed loop (`closed_loop_window` > 0): keeps a fixed window of
//     requests outstanding, refilling on acks — the socket-mode throughput
//     driver (achieved rate = acked / wall time).
//
// A ClientGroup aggregates all clients attached to one replica; under the
// simulator it is an unmetered node (its own NIC/CPU are not modelled) but
// its traffic meters the replica side, which is what Table III's "Reqs. from
// Clients" row needs.
#pragma once

#include <cstdint>
#include <map>

#include "proto/messages.hpp"
#include "protocol/protocol.hpp"
#include "util/rng.hpp"

namespace leopard::core {

struct ClientConfig {
  /// Requests per second this group submits (0 = inject nothing). Ignored in
  /// closed-loop mode.
  double request_rate = 0;
  std::uint32_t payload_size = 128;
  /// Materialize payload bytes (true) or use synthetic sizes (false).
  bool real_payload = false;
  /// Re-submit to the next replica if unacked after this long (0 = never).
  sim::SimTime resubmit_timeout = 0;
  /// Stop submitting at this time (<0 = run forever).
  sim::SimTime stop_at = -1;
  /// Requests injected in one burst at t = 0 (models a standing backlog:
  /// "stress test with a saturated request rate", §VI-A).
  std::uint32_t initial_backlog = 0;
  /// Requests batched per submission message (transport pipelining; 0 = pick
  /// automatically from the rate so event counts stay bounded).
  std::uint32_t burst = 0;
  /// Submit each request to this many replicas at once (§IV-1: "The number
  /// of identified replicas in each submit can also be as large as f+1 —
  /// more replicas lower latency whereas fewer replicas increase
  /// throughput"). 1 = the paper's default single-replica submission.
  std::uint32_t submit_copies = 1;
  /// Route each request by the deterministic µ(req) assignment instead of
  /// pinning this group to one replica (§IV-1 load balancing).
  bool route_by_mu = false;
  /// Closed-loop mode: keep this many requests outstanding, topping the
  /// window up as acks arrive (0 = open loop).
  std::uint32_t closed_loop_window = 0;
  /// Stop submitting after this many requests in total (0 = unlimited).
  std::uint64_t total_requests = 0;
};

class LeopardClient final : public protocol::ProtocolBase {
 public:
  /// `target` is the replica this group submits to; `replica_count` bounds
  /// the re-submission rotation; `avoid` (the initial leader) is skipped.
  LeopardClient(ClientConfig cfg, protocol::NodeId target, std::uint32_t replica_count,
                protocol::NodeId avoid, std::uint64_t seed);

  // -- protocol::Protocol ----------------------------------------------------
  [[nodiscard]] proto::ReplicaId id() const override {
    return static_cast<proto::ReplicaId>(self_);
  }

  /// Env-level node id of this client group; must be set before Start (it is
  /// the `client_id` carried by every request, which replicas ack to).
  void set_self_id(protocol::NodeId id) { self_ = id; }

  [[nodiscard]] std::uint64_t submitted() const { return next_seq_; }
  [[nodiscard]] std::uint64_t acked() const { return acked_; }
  [[nodiscard]] std::uint64_t outstanding() const { return outstanding_.size(); }
  /// True once every configured request (total_requests) has been acked.
  [[nodiscard]] bool done() const {
    return cfg_.total_requests > 0 && acked_ >= cfg_.total_requests;
  }

 protected:
  // -- protocol::ProtocolBase hooks ------------------------------------------
  void do_start() override;
  void do_message(protocol::NodeId from, const sim::PayloadPtr& payload) override;
  void do_timer(protocol::TimerToken token) override;
  void do_client_request(protocol::NodeId, const proto::ClientRequestMsg&) override {}

 private:
  // Timer tokens (the client arms at most one of each).
  enum Timer : protocol::TimerToken {
    kSubmitTick = 1,    // open-loop Poisson pacing
    kResubmitTick = 2,  // re-submission scan
    kBacklogBurst = 3,  // staggered standing-backlog injection
  };

  [[nodiscard]] std::uint64_t remaining_budget() const;
  void submit_burst(std::uint32_t count);
  void submit_next();
  void refill_window();
  void resubmit_tick();

  struct Outstanding {
    sim::SimTime submitted_at = 0;
    sim::SimTime last_sent_at = 0;
    std::uint32_t attempts = 1;
    protocol::NodeId sent_to = 0;
  };

  ClientConfig cfg_;
  protocol::NodeId self_ = 0;
  protocol::NodeId target_;
  std::uint32_t replica_count_;
  protocol::NodeId avoid_;
  util::Rng rng_;

  std::uint64_t next_seq_ = 0;
  std::uint64_t acked_ = 0;
  std::map<std::uint64_t, Outstanding> outstanding_;
  static constexpr std::size_t kMaxTracked = 400000;  // bound memory at saturation
};

}  // namespace leopard::core
