// Open-loop client group: submits requests at a configured rate to an
// assigned replica (the paper's µ(req) deterministic assignment), measures
// submit→ack latency, and re-submits to the next replica on timeout (§IV-1:
// "up to f times changes will guarantee the existence of an honest replica").
//
// A ClientGroup aggregates all clients attached to one replica; it is an
// unmetered node (its own NIC/CPU are not modelled) but its traffic meters
// the replica side, which is what Table III's "Reqs. from Clients" row needs.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "core/metrics.hpp"
#include "proto/messages.hpp"
#include "sim/network.hpp"
#include "util/rng.hpp"

namespace leopard::core {

struct ClientConfig {
  /// Requests per second this group submits (0 = inject nothing).
  double request_rate = 0;
  std::uint32_t payload_size = 128;
  /// Materialize payload bytes (true) or use synthetic sizes (false).
  bool real_payload = false;
  /// Re-submit to the next replica if unacked after this long (0 = never).
  sim::SimTime resubmit_timeout = 0;
  /// Stop submitting at this time (<0 = run forever).
  sim::SimTime stop_at = -1;
  /// Requests injected in one burst at t = 0 (models a standing backlog:
  /// "stress test with a saturated request rate", §VI-A).
  std::uint32_t initial_backlog = 0;
  /// Requests batched per submission message (transport pipelining; 0 = pick
  /// automatically from the rate so event counts stay bounded).
  std::uint32_t burst = 0;
  /// Submit each request to this many replicas at once (§IV-1: "The number
  /// of identified replicas in each submit can also be as large as f+1 —
  /// more replicas lower latency whereas fewer replicas increase
  /// throughput"). 1 = the paper's default single-replica submission.
  std::uint32_t submit_copies = 1;
  /// Route each request by the deterministic µ(req) assignment instead of
  /// pinning this group to one replica (§IV-1 load balancing).
  bool route_by_mu = false;
};

class LeopardClient final : public sim::Node {
 public:
  /// `target` is the replica this group submits to; `replica_count` bounds
  /// the re-submission rotation; `avoid` (the initial leader) is skipped.
  LeopardClient(sim::Network& net, ProtocolMetrics& metrics, ClientConfig cfg,
                sim::NodeId target, std::uint32_t replica_count, sim::NodeId avoid,
                std::uint64_t seed);

  void start() override;
  void on_message(sim::NodeId from, const sim::PayloadPtr& msg) override;

  /// Network node id of this client group; must be set right after add_node.
  void set_node_id(sim::NodeId id) { self_ = id; }

  [[nodiscard]] std::uint64_t submitted() const { return next_seq_; }
  [[nodiscard]] std::uint64_t acked() const { return acked_; }

 private:
  void submit_next();
  void submit_burst(std::uint32_t count);
  void resubmit_tick();

  struct Outstanding {
    sim::SimTime submitted_at = 0;
    sim::SimTime last_sent_at = 0;
    std::uint32_t attempts = 1;
    sim::NodeId sent_to = 0;
  };

  sim::Network& net_;
  ProtocolMetrics& metrics_;
  ClientConfig cfg_;
  sim::NodeId self_ = 0;
  sim::NodeId target_;
  std::uint32_t replica_count_;
  sim::NodeId avoid_;
  util::Rng rng_;

  std::uint64_t next_seq_ = 0;
  std::uint64_t acked_ = 0;
  std::map<std::uint64_t, Outstanding> outstanding_;
  static constexpr std::size_t kMaxTracked = 400000;  // bound memory at saturation
};

}  // namespace leopard::core
