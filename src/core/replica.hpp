// LeopardReplica: the full Leopard protocol of §IV — datablock preparation
// (Algorithm 1), two-round agreement on BFTblocks with a ready round
// (Algorithms 2 and 3), committee-based datablock retrieval with erasure
// codes (Algorithm 3), checkpointing/garbage collection (Algorithm 4), and
// the PBFT-style view-change (Appendix A).
//
// The replica is a sans-I/O `protocol::Protocol` core: it consumes typed
// events and emits Send/Broadcast/SetTimer/Execute/... actions through the
// `protocol::Env` it is driven by (see src/protocol/). It never touches a
// transport or scheduler itself — `protocol::SimEnv` hosts it inside the
// discrete-event simulator, `protocol::ReplayEnv` re-drives it from recorded
// traces.
//
// One instance per replica; all replicas of a cluster share a
// ThresholdScheme. Replica ids must equal their env-level node ids.
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/byzantine.hpp"
#include "core/config.hpp"
#include "crypto/merkle.hpp"
#include "crypto/threshold_sig.hpp"
#include "erasure/reed_solomon.hpp"
#include "proto/messages.hpp"
#include "protocol/protocol.hpp"

namespace leopard::core {

class LeopardReplica final : public protocol::ProtocolBase {
 public:
  LeopardReplica(LeopardConfig cfg, const crypto::ThresholdScheme& ts, proto::ReplicaId id,
                 ByzantineSpec byz = {});

  // -- protocol::Protocol ----------------------------------------------------
  [[nodiscard]] proto::ReplicaId id() const override { return id_; }

  /// Application hook: invoked once per request, in the total order the
  /// protocol commits (BFTblock serial number, then link order, then request
  /// order within a datablock). This is where a replicated state machine
  /// applies commands (see examples/kv_store.cpp). The committed batch is
  /// also emitted as an `Execute` action for env-level observers.
  using ExecutionHandler = std::function<void(const proto::Request&)>;
  void set_execution_handler(ExecutionHandler handler) {
    execution_handler_ = std::move(handler);
  }

  /// Application-specific request validity predicate verify(·) (§IV):
  /// invoked on each request at client ingress (invalid submissions are
  /// rejected outright) and on every received datablock before the replica
  /// will vote for a BFTblock linking it. Datablocks containing any invalid
  /// request are treated as invalid in their entirety.
  using RequestValidator = std::function<bool(const proto::Request&)>;
  void set_request_validator(RequestValidator validator) {
    request_validator_ = std::move(validator);
  }

  /// Observability hooks for the request-stage tracer (obs::StageTracer).
  /// Fired for requests this replica is the datablock maker of, so every
  /// timestamp handed to one request's hooks is on this replica's clock:
  /// `on_generated` when the request is batched into a datablock (with its
  /// mempool-ingress time), `on_executed` when the block linking that
  /// datablock executes (with the datablock creation, link-receipt, and
  /// execution times). Unset by default — zero cost when unused.
  using StageGeneratedHook = std::function<void(
      std::uint64_t client_id, std::uint64_t seq, sim::SimTime ingress_at,
      sim::SimTime created_at)>;
  using StageExecutedHook = std::function<void(
      std::uint64_t client_id, std::uint64_t seq, sim::SimTime created_at,
      sim::SimTime linked_at, sim::SimTime executed_at)>;
  void set_stage_hooks(StageGeneratedHook on_generated, StageExecutedHook on_executed) {
    stage_generated_ = std::move(on_generated);
    stage_executed_ = std::move(on_executed);
  }

  // -- Introspection (tests, harness) --------------------------------------
  [[nodiscard]] proto::View view() const { return view_; }
  [[nodiscard]] proto::ReplicaId leader_of(proto::View v) const { return v % cfg_.n; }
  [[nodiscard]] bool is_leader() const { return leader_of(view_) == id_ && !in_view_change_; }
  [[nodiscard]] proto::SeqNum executed_through() const { return exec_sn_; }
  [[nodiscard]] proto::SeqNum low_watermark() const { return lw_; }
  [[nodiscard]] std::size_t mempool_size() const { return mempool_.size(); }
  [[nodiscard]] std::size_t datablock_pool_size() const { return pool_.size(); }
  [[nodiscard]] std::uint64_t executed_request_count() const { return executed_request_count_; }
  [[nodiscard]] bool in_view_change() const { return in_view_change_; }
  [[nodiscard]] std::size_t ready_queue_size() const { return ready_queue_.size(); }
  [[nodiscard]] proto::SeqNum next_sn() const { return next_sn_; }
  [[nodiscard]] std::size_t open_instances() const { return instances_.size(); }

  /// Digest of the confirmed BFTblock at `sn`, if confirmed at this replica.
  [[nodiscard]] std::optional<crypto::Digest> confirmed_digest(proto::SeqNum sn) const;
  /// All confirmed (sn → digest) pairs; safety tests compare across replicas.
  /// A maintained snapshot — O(1) per call, no per-call map construction.
  [[nodiscard]] const std::map<proto::SeqNum, crypto::Digest>& confirmed_log() const {
    return confirmed_log_;
  }
  /// Running hash over the executed block sequence (state-machine state).
  [[nodiscard]] const crypto::Digest& state_digest() const { return state_digest_; }

 protected:
  // -- protocol::ProtocolBase hooks ------------------------------------------
  void do_start() override;
  void do_message(protocol::NodeId from, const sim::PayloadPtr& payload) override;
  void do_timer(protocol::TimerToken token) override;
  void do_client_request(protocol::NodeId from, const proto::ClientRequestMsg& msg) override;

 private:
  // -- Timer identity --------------------------------------------------------
  // Tokens carry their purpose in the low 3 bits; unique timers (retrieval,
  // view-change escalation) get a fresh sequence in the high bits per arm.
  enum class TimerKind : std::uint8_t {
    kDatablockFlush = 0,
    kProposalFlush = 1,
    kProgress = 2,
    kRetrieval = 3,
    kVcEscalation = 4,
  };
  [[nodiscard]] static constexpr protocol::TimerToken token_of(TimerKind kind,
                                                               std::uint64_t seq = 0) {
    return (seq << 3) | static_cast<std::uint64_t>(kind);
  }

  // -- Agreement-instance bookkeeping ---------------------------------------
  struct Instance {
    proto::BftBlock block;
    crypto::Digest digest;          // H(m)
    proto::View proposed_view = 0;
    sim::SimTime received_at = 0;  // when this replica saw the proposal
    bool have_block = false;
    bool voted1 = false;
    bool voted2 = false;
    bool notarized = false;
    bool confirmed = false;
    bool executed = false;
    std::optional<crypto::ThresholdSignature> sigma1;  // notarization proof
    crypto::Digest sigma1_digest;                      // H(ˆσ1): round-2 target
    std::optional<crypto::ThresholdSignature> sigma2;  // confirmation proof
    std::set<crypto::Digest> missing;                  // links awaiting retrieval
    // Leader-side vote collection.
    std::vector<crypto::SignatureShare> votes1, votes2;
    std::set<proto::ReplicaId> voters1, voters2;
  };

  struct Retrieval {
    protocol::TimerToken timer_token = 0;  // 0 = none armed
    bool query_sent = false;
    sim::SimTime query_sent_at = 0;
    // chunks grouped by claimed Merkle root; decode at f+1 consistent chunks.
    std::unordered_map<crypto::Digest, std::vector<std::shared_ptr<const proto::ChunkResponseMsg>>>
        chunks_by_root;
  };

  // -- Message handlers ------------------------------------------------------
  void handle_client_request(const proto::ClientRequestMsg& msg);
  void handle_datablock(proto::ReplicaId from, std::shared_ptr<const proto::DatablockMsg> msg);
  void handle_ready(proto::ReplicaId from, const proto::ReadyMsg& msg);
  void handle_bftblock(proto::ReplicaId from, const proto::BftBlockMsg& msg);
  void handle_vote(proto::ReplicaId from, const proto::VoteMsg& msg);
  void handle_proof(proto::ReplicaId from, const proto::ProofMsg& msg);
  void handle_query(proto::ReplicaId from, const proto::QueryMsg& msg);
  void handle_chunk(proto::ReplicaId from, std::shared_ptr<const proto::ChunkResponseMsg> msg);
  void handle_checkpoint(proto::ReplicaId from, const proto::CheckpointMsg& msg);
  void handle_timeout(proto::ReplicaId from, const proto::TimeoutMsg& msg);
  void handle_view_change(proto::ReplicaId from, std::shared_ptr<const proto::ViewChangeMsg> msg);
  void handle_new_view(proto::ReplicaId from, const proto::NewViewMsg& msg);

  // -- Datablock preparation (Algorithm 1) ----------------------------------
  void maybe_generate_datablocks();
  void generate_datablock(std::size_t request_count);
  void accept_datablock(const std::shared_ptr<const proto::DatablockMsg>& msg, bool recovered);
  void datablock_flush_tick();

  // -- Leader: ready round and proposals (Algorithms 2, 3) -------------------
  void leader_note_ready(proto::ReplicaId from, const crypto::Digest& digest);
  void leader_promote_if_ready(const crypto::Digest& digest);
  void maybe_propose();
  void propose(std::vector<crypto::Digest> links);
  void propose_block(proto::SeqNum sn, std::vector<crypto::Digest> links);
  void proposal_flush_tick();
  void leader_install_proposal(const proto::BftBlockMsg& msg);

  // -- Voting ----------------------------------------------------------------
  [[nodiscard]] bool verify_bftblock(const proto::BftBlockMsg& msg);
  void try_vote_round1(proto::SeqNum sn);
  void send_vote(std::uint8_t round, const Instance& inst);
  void on_notarized(proto::SeqNum sn);
  void on_confirmed(proto::SeqNum sn);
  void execute_ready_blocks();
  void execute_block(Instance& inst);

  // -- Retrieval (Algorithm 3) ------------------------------------------------
  void note_missing(proto::SeqNum sn, const crypto::Digest& digest);
  void send_queries(const crypto::Digest& digest);
  void try_decode(const crypto::Digest& digest, Retrieval& ret);
  /// Abandons an in-flight retrieval: cancels its armed timer (and the
  /// token → digest mapping) before erasing the entry, so a stale token can
  /// never fire after the digest is re-missed and multicast a Query early.
  void drop_retrieval(const crypto::Digest& digest);

  // -- Checkpoint / garbage collection (Algorithm 4) --------------------------
  void maybe_checkpoint();
  void adopt_checkpoint(proto::SeqNum sn, const crypto::Digest& state,
                        const crypto::ThresholdSignature& proof);
  void garbage_collect(proto::SeqNum through_sn);

  // -- View-change (Appendix A) ------------------------------------------------
  void progress_tick();
  void broadcast_timeout();
  void enter_view_change();
  void send_view_change(proto::View target);
  void schedule_vc_escalation();
  void vc_escalation_fire();
  void leader_try_new_view(proto::View target);
  void adopt_new_view(const proto::NewViewMsg& msg);

  // -- Helpers -----------------------------------------------------------------
  [[nodiscard]] bool crashed() const;
  void send_to(protocol::NodeId to, sim::PayloadPtr msg);
  void multicast_to_replicas(sim::PayloadPtr msg);
  void mark_confirmed(proto::SeqNum sn, const crypto::Digest& digest);
  void unmark_confirmed(proto::SeqNum sn);
  [[nodiscard]] Instance* instance_by_digest(const crypto::Digest& d);
  [[nodiscard]] crypto::Digest timeout_digest(proto::View v) const;

  LeopardConfig cfg_;
  const crypto::ThresholdScheme& ts_;
  proto::ReplicaId id_;
  ByzantineSpec byz_;
  erasure::ReedSolomon rs_;               // (f+1, n) code for retrieval
  erasure::RsScratch rs_scratch_;         // reusable arena for the zero-copy
                                          // encode/decode hot path
  util::Bytes decode_buf_;                // reconstructed datablock bytes
  std::vector<erasure::ShardView> decode_views_;  // reused per try_decode call

  // handle_query memo: the last datablock this replica erasure-coded and
  // Merkle-hashed for a querier. Every member of the f+1 committee answers
  // each querier, so a retrieval storm asks for the same datablock many
  // times back to back; the memo skips the redundant recompute. CPU charges
  // stay per-query (they model the paper's replica, which has no such
  // cache), so simulated time is unchanged — this is wall clock only. The
  // memo owns a dedicated scratch: EncodedShards views are only valid until
  // the next encode/decode on their scratch, and try_decode runs
  // decode_into on rs_scratch_ between queries.
  erasure::RsScratch query_scratch_;
  crypto::Digest query_cache_digest_;
  std::size_t query_cache_bytes_ = 0;     // serialized datablock size
  erasure::EncodedShards query_cache_enc_;
  std::optional<crypto::MerkleTree> query_cache_tree_;

  // Protocol state.
  proto::View view_ = 1;
  bool in_view_change_ = false;
  proto::SeqNum next_sn_ = 1;   // leader: next serial number to assign
  proto::SeqNum exec_sn_ = 0;   // highest consecutively executed sn
  proto::SeqNum lw_ = 0;        // low watermark (latest stable checkpoint)
  crypto::Digest state_digest_;
  crypto::ThresholdSignature checkpoint_proof_;  // proof for lw_
  crypto::Digest checkpoint_state_;

  // Mempool of pending client requests (FIFO) with enqueue times.
  std::deque<proto::Request> mempool_;
  std::deque<sim::SimTime> mempool_enqueued_;
  std::uint64_t datablock_counter_ = 1;
  std::uint64_t shed_requests_ = 0;

  // Datablock storage.
  std::unordered_map<crypto::Digest, std::shared_ptr<const proto::DatablockMsg>> pool_;
  std::unordered_map<proto::ReplicaId, std::unordered_set<std::uint64_t>> seen_counters_;

  // Leader-side ready tracking.
  std::unordered_map<crypto::Digest, std::set<proto::ReplicaId>> ready_votes_;
  std::deque<crypto::Digest> ready_queue_;
  std::unordered_set<crypto::Digest> queued_or_linked_;
  sim::SimTime oldest_ready_at_ = 0;

  // Agreement instances.
  std::map<proto::SeqNum, Instance> instances_;
  std::unordered_map<crypto::Digest, proto::SeqNum> sn_by_digest_;
  std::unordered_map<crypto::Digest, std::vector<proto::SeqNum>> waiting_on_datablock_;
  // Maintained (sn → digest) snapshot of confirmed live instances, mirroring
  // instances_ confirm/reset/GC transitions (confirmed_log() returns a view).
  std::map<proto::SeqNum, crypto::Digest> confirmed_log_;

  // Retrieval state.
  std::unordered_map<crypto::Digest, Retrieval> retrievals_;
  std::unordered_map<protocol::TimerToken, crypto::Digest> retrieval_timers_;
  std::uint64_t timer_seq_ = 0;  // unique-token allocator
  std::set<std::pair<crypto::Digest, proto::ReplicaId>> responded_once_;

  // Checkpoint votes (leader).
  std::unordered_map<proto::SeqNum, std::vector<crypto::SignatureShare>> checkpoint_votes_;
  std::unordered_map<proto::SeqNum, std::set<proto::ReplicaId>> checkpoint_voters_;
  std::unordered_map<proto::SeqNum, crypto::Digest> checkpoint_states_;

  // View-change state.
  std::unordered_map<proto::View, std::set<proto::ReplicaId>> timeout_votes_;
  bool timeout_sent_ = false;
  std::unordered_map<proto::View, std::vector<std::shared_ptr<const proto::ViewChangeMsg>>>
      view_change_msgs_;
  std::unordered_map<proto::View, std::set<proto::ReplicaId>> view_change_senders_;
  proto::View last_new_view_sent_ = 0;
  sim::SimTime last_progress_at_ = 0;
  proto::SeqNum last_progress_sn_ = 0;
  // View-change escalation: if the prospective leader is also faulty, retry
  // with the next one after an exponentially growing delay (PBFT-style).
  proto::View vc_target_ = 0;
  sim::SimTime vc_escalation_delay_ = 0;
  protocol::TimerToken vc_escalation_token_ = 0;  // 0 = none armed

  // Execution accounting.
  std::uint64_t executed_request_count_ = 0;
  ExecutionHandler execution_handler_;
  RequestValidator request_validator_;
  StageGeneratedHook stage_generated_;
  StageExecutedHook stage_executed_;
  std::unordered_set<crypto::Digest> invalid_datablocks_;
};

/// The paper's deterministic assignment function µ(req): maps a request to
/// the non-leader replica responsible for disseminating it, balancing load
/// uniformly. Deterministic but not predictable-in-advance by the assignee
/// (clients may switch to the next replica on censorship, §IV-1).
proto::ReplicaId assign_replica(const proto::Request& request, std::uint32_t n,
                                proto::ReplicaId leader);

}  // namespace leopard::core
