#include "core/replica.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "crypto/merkle.hpp"
#include "util/check.hpp"
#include "util/worker_pool.hpp"

namespace leopard::core {

using crypto::Digest;
using proto::ReplicaId;
using proto::SeqNum;
using proto::View;
using protocol::Metric;

namespace {
/// Watermark slack: proposals are accepted up to lw + kSlack·k so that a
/// replica whose checkpoint adoption lags the leader's does not spuriously
/// reject valid proposals (the leader itself still proposes within lw + k).
constexpr std::uint64_t kWatermarkSlack = 2;
}  // namespace

LeopardReplica::LeopardReplica(LeopardConfig cfg, const crypto::ThresholdScheme& ts,
                               ReplicaId id, ByzantineSpec byz)
    : cfg_(cfg),
      ts_(ts),
      id_(id),
      byz_(byz),
      // GF(2^8) Reed-Solomon caps at 255 shards (the paper's Go library has
      // the same 256 limit): beyond n = 255 only the first 255 replicas serve
      // chunks, which still leaves >= f+1 potential responders up to n = 763.
      rs_(cfg.f() + 1, std::min<std::uint32_t>(cfg.n, 255)) {
  util::expects(cfg_.n >= 4, "Leopard requires n >= 4 (f >= 1)");
  util::expects(id_ < cfg_.n, "replica id out of range");
  // Size the process-global compute pool from the config. A cluster's
  // replicas share one config (and one process), so this is idempotent;
  // with mixed values the last constructed replica wins. Any value yields
  // byte-identical protocol output (see config.hpp).
  util::WorkerPool::global().resize(std::max<std::uint32_t>(cfg_.encode_workers, 1));
}

bool LeopardReplica::crashed() const {
  return byz_.crash_at.has_value() && now() >= *byz_.crash_at;
}

void LeopardReplica::send_to(protocol::NodeId to, sim::PayloadPtr msg) {
  if (crashed()) return;
  env().send(to, std::move(msg));
}

void LeopardReplica::multicast_to_replicas(sim::PayloadPtr msg) {
  if (crashed()) return;
  env().broadcast(std::move(msg));
}

Digest LeopardReplica::timeout_digest(View v) const {
  util::ByteWriter w;
  w.str("leopard.timeout");
  w.u32(v);
  return Digest::of(w.bytes());
}

LeopardReplica::Instance* LeopardReplica::instance_by_digest(const Digest& d) {
  const auto it = sn_by_digest_.find(d);
  if (it == sn_by_digest_.end()) return nullptr;
  const auto inst = instances_.find(it->second);
  return inst == instances_.end() ? nullptr : &inst->second;
}

std::optional<Digest> LeopardReplica::confirmed_digest(SeqNum sn) const {
  const auto it = instances_.find(sn);
  if (it == instances_.end() || !it->second.confirmed) return std::nullopt;
  return it->second.digest;
}

void LeopardReplica::mark_confirmed(SeqNum sn, const Digest& digest) {
  confirmed_log_[sn] = digest;
}

void LeopardReplica::unmark_confirmed(SeqNum sn) { confirmed_log_.erase(sn); }

// ---------------------------------------------------------------------------
// Event entry points (protocol::Protocol)
// ---------------------------------------------------------------------------

void LeopardReplica::do_start() {
  last_progress_at_ = now();
  datablock_flush_tick();
  proposal_flush_tick();
  progress_tick();
}

void LeopardReplica::do_client_request(protocol::NodeId, const proto::ClientRequestMsg& msg) {
  if (crashed()) return;
  handle_client_request(msg);
}

void LeopardReplica::do_timer(protocol::TimerToken token) {
  switch (static_cast<TimerKind>(token & 7)) {
    case TimerKind::kDatablockFlush:
      datablock_flush_tick();
      break;
    case TimerKind::kProposalFlush:
      proposal_flush_tick();
      break;
    case TimerKind::kProgress:
      progress_tick();
      break;
    case TimerKind::kRetrieval: {
      const auto it = retrieval_timers_.find(token);
      if (it == retrieval_timers_.end()) break;  // cancelled or GC'd
      const Digest digest = it->second;
      retrieval_timers_.erase(it);
      send_queries(digest);
      break;
    }
    case TimerKind::kVcEscalation:
      if (token == vc_escalation_token_) vc_escalation_fire();
      break;
  }
}

void LeopardReplica::do_message(protocol::NodeId from, const sim::PayloadPtr& msg) {
  if (crashed()) return;

  if (auto db = std::dynamic_pointer_cast<const proto::DatablockMsg>(msg)) {
    handle_datablock(static_cast<ReplicaId>(from), db);
  } else if (auto rd = std::dynamic_pointer_cast<const proto::ReadyMsg>(msg)) {
    handle_ready(static_cast<ReplicaId>(from), *rd);
  } else if (auto bb = std::dynamic_pointer_cast<const proto::BftBlockMsg>(msg)) {
    handle_bftblock(static_cast<ReplicaId>(from), *bb);
  } else if (auto v = std::dynamic_pointer_cast<const proto::VoteMsg>(msg)) {
    handle_vote(static_cast<ReplicaId>(from), *v);
  } else if (auto p = std::dynamic_pointer_cast<const proto::ProofMsg>(msg)) {
    handle_proof(static_cast<ReplicaId>(from), *p);
  } else if (auto q = std::dynamic_pointer_cast<const proto::QueryMsg>(msg)) {
    handle_query(static_cast<ReplicaId>(from), *q);
  } else if (auto c = std::dynamic_pointer_cast<const proto::ChunkResponseMsg>(msg)) {
    handle_chunk(static_cast<ReplicaId>(from), c);
  } else if (auto cp = std::dynamic_pointer_cast<const proto::CheckpointMsg>(msg)) {
    handle_checkpoint(static_cast<ReplicaId>(from), *cp);
  } else if (auto t = std::dynamic_pointer_cast<const proto::TimeoutMsg>(msg)) {
    handle_timeout(static_cast<ReplicaId>(from), *t);
  } else if (auto vc = std::dynamic_pointer_cast<const proto::ViewChangeMsg>(msg)) {
    handle_view_change(static_cast<ReplicaId>(from), vc);
  } else if (auto nv = std::dynamic_pointer_cast<const proto::NewViewMsg>(msg)) {
    handle_new_view(static_cast<ReplicaId>(from), *nv);
  }
}

// ---------------------------------------------------------------------------
// Datablock preparation (Algorithm 1)
// ---------------------------------------------------------------------------

void LeopardReplica::handle_client_request(const proto::ClientRequestMsg& msg) {
  sim::SimTime cost = 0;
  for (const auto& req : msg.requests) {
    if (mempool_.size() >= cfg_.mempool_capacity) {
      ++shed_requests_;  // open-loop overload: shed cheaply, client will retry
      cost += costs().client_request_shed;
      continue;
    }
    cost += costs().client_request_ingress;
    if (request_validator_ && !request_validator_(req)) continue;  // verify(·)
    mempool_.push_back(req);
    mempool_enqueued_.push_back(now());
  }
  charge(cost);
  maybe_generate_datablocks();
}

void LeopardReplica::maybe_generate_datablocks() {
  while (mempool_.size() >= cfg_.datablock_requests) {
    generate_datablock(cfg_.datablock_requests);
  }
}

void LeopardReplica::generate_datablock(std::size_t request_count) {
  util::expects(request_count > 0 && request_count <= mempool_.size(),
                "generate_datablock: bad count");

  proto::Datablock db;
  db.maker = id_;
  db.counter = datablock_counter_++;
  db.requests.reserve(request_count);
  std::vector<sim::SimTime> ingress_at;
  if (stage_generated_) ingress_at.reserve(request_count);
  for (std::size_t i = 0; i < request_count; ++i) {
    if (stage_generated_) ingress_at.push_back(mempool_enqueued_.front());
    db.requests.push_back(std::move(mempool_.front()));
    mempool_.pop_front();
    mempool_enqueued_.pop_front();
  }

  auto msg = std::make_shared<proto::DatablockMsg>(std::move(db));
  msg->created_at = now();
  if (stage_generated_) {
    for (std::size_t i = 0; i < request_count; ++i) {
      const auto& r = msg->datablock.requests[i];
      stage_generated_(r.client_id, r.seq, ingress_at[i], msg->created_at);
    }
  }
  // Hashing the datablock (digest-of-digests over the batch).
  charge(costs().per_bytes(costs().hash_per_byte_ns, msg->wire_size()));

  if (byz_.selective_recipients) {
    // Selective attack: only the leader and the first s-1 other replicas see
    // this datablock (§V case b).
    const auto leader = leader_of(view_);
    std::uint32_t sent = 0;
    for (ReplicaId r = 0; r < cfg_.n && sent + 1 < *byz_.selective_recipients; ++r) {
      if (r == id_ || r == leader) continue;
      send_to(r, msg);
      ++sent;
    }
    if (leader != id_) send_to(leader, msg);
  } else {
    multicast_to_replicas(msg);
  }

  accept_datablock(msg, /*recovered=*/false);
}

void LeopardReplica::handle_datablock(ReplicaId, std::shared_ptr<const proto::DatablockMsg> msg) {
  if (byz_.drop_foreign_datablocks) return;  // pretend not received
  charge(costs().datablock_per_request *
             static_cast<sim::SimTime>(msg->datablock.requests.size()) +
         costs().per_bytes(costs().hash_per_byte_ns, msg->wire_size()));
  accept_datablock(msg, /*recovered=*/false);
}

void LeopardReplica::accept_datablock(const std::shared_ptr<const proto::DatablockMsg>& msg,
                                      bool recovered) {
  const Digest& digest = msg->cached_digest;
  if (pool_.contains(digest)) return;

  // Per-maker counter dedup (rate-limit / flooding defence, Algorithm 1).
  auto& counters = seen_counters_[msg->datablock.maker];
  if (!counters.insert(msg->datablock.counter).second &&
      msg->datablock.maker != id_) {
    return;  // duplicate counter from this maker: reject
  }

  pool_.emplace(digest, msg);

  // verify(·) over the datablock's requests (§IV): a datablock with any
  // invalid request never gets this replica's vote.
  if (request_validator_) {
    for (const auto& req : msg->datablock.requests) {
      if (!request_validator_(req)) {
        invalid_datablocks_.insert(digest);
        break;
      }
    }
  }

  // Cancel any in-flight retrieval for this datablock.
  if (auto it = retrievals_.find(digest); it != retrievals_.end()) {
    if (recovered && it->second.query_sent) {
      env().metric(Metric::kDatablocksRecovered, 1);
      env().metric(Metric::kRecoveryTimeSumSec,
                   sim::to_seconds(now() - it->second.query_sent_at));
    }
    drop_retrieval(digest);
  }

  // Ready round: tell the leader this datablock is held here (Algorithm 3).
  const auto leader = leader_of(view_);
  if (leader == id_) {
    leader_note_ready(id_, digest);
  } else if (!recovered && cfg_.enable_ready_round) {
    auto ready = std::make_shared<proto::ReadyMsg>();
    ready->datablock_hashes.push_back(digest);
    send_to(leader, std::move(ready));
  }

  // Unblock agreement instances waiting on this datablock.
  if (auto it = waiting_on_datablock_.find(digest); it != waiting_on_datablock_.end()) {
    const auto waiting = std::move(it->second);
    waiting_on_datablock_.erase(it);
    for (const auto sn : waiting) {
      auto inst = instances_.find(sn);
      if (inst == instances_.end()) continue;
      inst->second.missing.erase(digest);
      if (inst->second.missing.empty()) {
        try_vote_round1(sn);
        execute_ready_blocks();  // a confirmed block may have been waiting
      }
    }
  }
}

void LeopardReplica::datablock_flush_tick() {
  if (!crashed() && !mempool_.empty() &&
      now() - mempool_enqueued_.front() >= cfg_.datablock_max_wait) {
    generate_datablock(std::min<std::size_t>(mempool_.size(), cfg_.datablock_requests));
  }
  env().set_timer(token_of(TimerKind::kDatablockFlush),
                  std::max<sim::SimTime>(cfg_.datablock_max_wait / 4, sim::kMillisecond));
}

// ---------------------------------------------------------------------------
// Leader: ready round and proposals (Algorithms 2, 3)
// ---------------------------------------------------------------------------

void LeopardReplica::handle_ready(ReplicaId from, const proto::ReadyMsg& msg) {
  if (leader_of(view_) != id_) return;
  for (const auto& digest : msg.datablock_hashes) leader_note_ready(from, digest);
}

void LeopardReplica::leader_note_ready(ReplicaId from, const Digest& digest) {
  if (queued_or_linked_.contains(digest)) return;
  ready_votes_[digest].insert(from);
  leader_promote_if_ready(digest);
}

void LeopardReplica::leader_promote_if_ready(const Digest& digest) {
  if (queued_or_linked_.contains(digest)) return;
  const auto it = ready_votes_.find(digest);
  // Ablation: without the ready round the leader links on receipt alone.
  const auto needed = cfg_.enable_ready_round ? cfg_.quorum() : 1;
  if (it == ready_votes_.end() || it->second.size() < needed) return;
  if (!pool_.contains(digest)) return;  // readyblockPool requires the leader holds m

  if (ready_queue_.empty()) oldest_ready_at_ = now();
  ready_queue_.push_back(digest);
  queued_or_linked_.insert(digest);
  ready_votes_.erase(it);
  maybe_propose();
}

void LeopardReplica::maybe_propose() {
  if (leader_of(view_) != id_ || in_view_change_ || crashed()) return;
  const auto batch = static_cast<std::ptrdiff_t>(cfg_.bftblock_links);
  while (next_sn_ <= lw_ + cfg_.max_parallel_instances &&
         ready_queue_.size() >= cfg_.bftblock_links) {
    std::vector<Digest> links(ready_queue_.begin(), ready_queue_.begin() + batch);
    ready_queue_.erase(ready_queue_.begin(), ready_queue_.begin() + batch);
    oldest_ready_at_ = now();
    propose(std::move(links));
  }
}

void LeopardReplica::proposal_flush_tick() {
  if (!crashed() && leader_of(view_) == id_ && !in_view_change_ && !ready_queue_.empty() &&
      next_sn_ <= lw_ + cfg_.max_parallel_instances &&
      now() - oldest_ready_at_ >= cfg_.proposal_max_wait) {
    const auto take = std::min<std::size_t>(ready_queue_.size(), cfg_.bftblock_links);
    std::vector<Digest> links(ready_queue_.begin(),
                              ready_queue_.begin() + static_cast<std::ptrdiff_t>(take));
    ready_queue_.erase(ready_queue_.begin(),
                       ready_queue_.begin() + static_cast<std::ptrdiff_t>(take));
    oldest_ready_at_ = now();
    propose(std::move(links));
  }
  env().set_timer(token_of(TimerKind::kProposalFlush),
                  std::max<sim::SimTime>(cfg_.proposal_max_wait / 4, sim::kMillisecond));
}

void LeopardReplica::propose(std::vector<Digest> links) {
  propose_block(next_sn_++, std::move(links));
}

void LeopardReplica::propose_block(SeqNum sn, std::vector<Digest> links) {
  proto::BftBlock block;
  block.view = view_;
  block.sn = sn;
  block.links = std::move(links);

  const auto digest = block.digest();
  charge(costs().share_sign);
  const auto share = ts_.sign_share(id_, digest);
  auto msg = std::make_shared<proto::BftBlockMsg>(block, share);

  if (byz_.equivocate && block.links.size() >= 2) {
    // Equivocation: a second block with the same sn but reversed links goes
    // to the upper half of the replicas.
    proto::BftBlock twin = block;
    std::reverse(twin.links.begin(), twin.links.end());
    const auto twin_digest = twin.digest();
    auto twin_msg = std::make_shared<proto::BftBlockMsg>(
        std::move(twin), ts_.sign_share(id_, twin_digest));
    for (ReplicaId r = 0; r < cfg_.n; ++r) {
      if (r == id_) continue;
      send_to(r, r < cfg_.n / 2 ? sim::PayloadPtr(msg) : sim::PayloadPtr(twin_msg));
    }
  } else {
    multicast_to_replicas(msg);
  }

  leader_install_proposal(*msg);
}

void LeopardReplica::leader_install_proposal(const proto::BftBlockMsg& msg) {
  auto& inst = instances_[msg.block.sn];
  if (inst.have_block) sn_by_digest_.erase(inst.digest);  // view-change redo
  inst.block = msg.block;
  inst.digest = msg.cached_digest;
  inst.proposed_view = view_;
  inst.received_at = now();
  inst.have_block = true;
  inst.voted1 = true;  // the leader's attached share is its round-1 vote
  inst.voted2 = false;
  inst.notarized = false;
  inst.confirmed = false;
  unmark_confirmed(msg.block.sn);
  inst.sigma1.reset();
  inst.sigma2.reset();
  inst.missing.clear();
  inst.votes1.clear();
  inst.voters1.clear();
  inst.votes2.clear();
  inst.voters2.clear();
  inst.votes1.push_back(msg.leader_share);
  inst.voters1.insert(id_);
  sn_by_digest_[inst.digest] = msg.block.sn;
}

// ---------------------------------------------------------------------------
// Voting (Algorithm 2)
// ---------------------------------------------------------------------------

bool LeopardReplica::verify_bftblock(const proto::BftBlockMsg& msg) {
  // VRFBFTBLOCK (Algorithm 2 line 37): leader signature, current view,
  // watermark window, and no conflicting same-sn vote in this view.
  charge(costs().share_verify);
  if (msg.block.view != view_ || in_view_change_) return false;
  if (msg.leader_share.signer != leader_of(view_)) return false;
  if (!ts_.verify_share(msg.cached_digest, msg.leader_share)) return false;
  if (msg.block.sn <= lw_ ||
      msg.block.sn > lw_ + kWatermarkSlack * cfg_.max_parallel_instances) {
    return false;
  }
  const auto it = instances_.find(msg.block.sn);
  if (it != instances_.end() && it->second.proposed_view == view_ &&
      it->second.digest != msg.cached_digest && it->second.voted1) {
    return false;  // equivocation: already voted another block at this sn
  }
  return true;
}

void LeopardReplica::handle_bftblock(ReplicaId from, const proto::BftBlockMsg& msg) {
  if (from != leader_of(view_)) return;
  if (!verify_bftblock(msg)) return;

  auto& inst = instances_[msg.block.sn];
  if (inst.have_block && inst.digest == msg.cached_digest) return;  // duplicate

  if (inst.have_block && inst.proposed_view < msg.block.view) {
    // Redo after a view-change: same sn re-proposed under the new view. The
    // content must match what was (if anything) confirmed locally (Lemma 2).
    if (inst.confirmed && inst.block.links != msg.block.links) {
      env().metric(Metric::kSafetyViolation, 1);
      return;
    }
    sn_by_digest_.erase(inst.digest);
    inst.voted1 = false;
    inst.voted2 = false;
    inst.notarized = false;
    inst.confirmed = false;
    unmark_confirmed(msg.block.sn);
    inst.sigma1.reset();
    inst.sigma2.reset();
    inst.votes1.clear();
    inst.voters1.clear();
    inst.votes2.clear();
    inst.voters2.clear();
    inst.missing.clear();
  }

  inst.block = msg.block;
  inst.digest = msg.cached_digest;
  inst.proposed_view = msg.block.view;
  inst.received_at = now();
  inst.have_block = true;
  sn_by_digest_[inst.digest] = msg.block.sn;

  if (!byz_.vote_blindly) {
    for (const auto& link : inst.block.links) {
      if (!pool_.contains(link)) {
        inst.missing.insert(link);
        note_missing(msg.block.sn, link);
      }
    }
  }
  try_vote_round1(msg.block.sn);
}

void LeopardReplica::try_vote_round1(SeqNum sn) {
  const auto it = instances_.find(sn);
  if (it == instances_.end()) return;
  auto& inst = it->second;
  if (inst.voted1 || !inst.have_block || !inst.missing.empty()) return;
  if (in_view_change_ || byz_.withhold_votes || crashed()) return;
  if (!invalid_datablocks_.empty()) {
    for (const auto& link : inst.block.links) {
      if (invalid_datablocks_.contains(link)) return;  // verify(·) veto
    }
  }
  inst.voted1 = true;
  send_vote(1, inst);
}

void LeopardReplica::send_vote(std::uint8_t round, const Instance& inst) {
  charge(costs().share_sign);
  auto vote = std::make_shared<proto::VoteMsg>();
  vote->round = round;
  vote->block_digest = inst.digest;
  vote->share = ts_.sign_share(id_, round == 1 ? inst.digest : inst.sigma1_digest);
  send_to(leader_of(view_), std::move(vote));
}

void LeopardReplica::handle_vote(ReplicaId from, const proto::VoteMsg& msg) {
  if (leader_of(view_) != id_ || in_view_change_) return;
  auto* inst = instance_by_digest(msg.block_digest);
  if (inst == nullptr || inst->proposed_view != view_) return;

  charge(costs().share_verify);
  if (msg.round == 1) {
    if (inst->notarized || inst->voters1.contains(from)) return;
    if (!ts_.verify_share(inst->digest, msg.share) || msg.share.signer != from) return;
    inst->voters1.insert(from);
    inst->votes1.push_back(msg.share);
    if (inst->votes1.size() >= cfg_.quorum()) {
      charge(costs().combine_base +
             costs().combine_per_share * static_cast<sim::SimTime>(cfg_.quorum()));
      const auto sigma1 = ts_.combine(inst->digest, inst->votes1);
      util::ensures(sigma1.has_value(), "combine must succeed with a verified quorum");
      inst->sigma1 = *sigma1;

      auto proof = std::make_shared<proto::ProofMsg>();
      proof->round = 1;
      proof->block_digest = inst->digest;
      proof->signature = *sigma1;
      multicast_to_replicas(std::move(proof));
      on_notarized(inst->block.sn);
    }
  } else {
    if (inst->confirmed || !inst->notarized || inst->voters2.contains(from)) return;
    if (!ts_.verify_share(inst->sigma1_digest, msg.share) || msg.share.signer != from) return;
    inst->voters2.insert(from);
    inst->votes2.push_back(msg.share);
    if (inst->votes2.size() >= cfg_.quorum()) {
      charge(costs().combine_base +
             costs().combine_per_share * static_cast<sim::SimTime>(cfg_.quorum()));
      const auto sigma2 = ts_.combine(inst->sigma1_digest, inst->votes2);
      util::ensures(sigma2.has_value(), "combine must succeed with a verified quorum");
      inst->sigma2 = *sigma2;

      auto proof = std::make_shared<proto::ProofMsg>();
      proof->round = 2;
      proof->block_digest = inst->digest;
      proof->signature = *sigma2;
      multicast_to_replicas(std::move(proof));
      on_confirmed(inst->block.sn);
    }
  }
}

void LeopardReplica::handle_proof(ReplicaId from, const proto::ProofMsg& msg) {
  if (from != leader_of(view_)) return;
  auto* inst = instance_by_digest(msg.block_digest);
  if (inst == nullptr) return;

  charge(costs().combined_verify);
  if (msg.round == 1) {
    if (inst->notarized) return;
    if (!ts_.verify(inst->digest, msg.signature)) return;
    inst->sigma1 = msg.signature;
    on_notarized(inst->block.sn);
  } else {
    if (inst->confirmed || !inst->notarized) return;
    if (!ts_.verify(inst->sigma1_digest, msg.signature)) return;
    inst->sigma2 = msg.signature;
    on_confirmed(inst->block.sn);
  }
}

void LeopardReplica::on_notarized(SeqNum sn) {
  auto& inst = instances_.at(sn);
  util::expects(inst.sigma1.has_value(), "notarized without sigma1");
  inst.notarized = true;
  inst.sigma1_digest = Digest::of(inst.sigma1->bytes);

  if (leader_of(view_) == id_) {
    // The leader's own round-2 share.
    if (!inst.voted2) {
      inst.voted2 = true;
      charge(costs().share_sign);
      inst.voters2.insert(id_);
      inst.votes2.push_back(ts_.sign_share(id_, inst.sigma1_digest));
    }
    return;
  }
  if (!inst.voted2 && !in_view_change_ && !byz_.withhold_votes) {
    inst.voted2 = true;
    send_vote(2, inst);
  }
}

void LeopardReplica::on_confirmed(SeqNum sn) {
  auto& inst = instances_.at(sn);
  inst.confirmed = true;
  mark_confirmed(sn, inst.digest);
  last_progress_at_ = now();
  execute_ready_blocks();
}

// ---------------------------------------------------------------------------
// Execution, acknowledgements, checkpoints
// ---------------------------------------------------------------------------

void LeopardReplica::execute_ready_blocks() {
  while (true) {
    const auto it = instances_.find(exec_sn_ + 1);
    if (it == instances_.end()) return;
    auto& inst = it->second;
    if (inst.executed) {  // re-confirmed after a view-change redo
      ++exec_sn_;
      continue;
    }
    if (!inst.confirmed || !inst.missing.empty()) return;
    // All linked datablocks must be present to execute.
    bool have_all = true;
    for (const auto& link : inst.block.links) {
      if (!pool_.contains(link)) {
        have_all = false;
        break;
      }
    }
    if (!have_all) return;
    execute_block(inst);
    ++exec_sn_;
    maybe_checkpoint();
  }
}

void LeopardReplica::execute_block(Instance& inst) {
  const auto at = now();
  std::unordered_map<std::uint64_t, std::vector<std::uint64_t>> acks_by_client;

  for (std::size_t li = 0; li < inst.block.links.size(); ++li) {
    const auto& link = inst.block.links[li];
    const auto& db = pool_.at(link);
    const auto reqs = db->datablock.requests.size();
    charge(costs().execute_per_request * static_cast<sim::SimTime>(reqs));
    executed_request_count_ += reqs;
    env().execute(db, reqs, inst.block.sn, static_cast<std::uint32_t>(li));
    if (execution_handler_) {
      for (const auto& r : db->datablock.requests) execution_handler_(r);
    }

    // Throughput is counted once, by replica 0 (the designated observer).
    if (id_ == 0) {
      env().metric(Metric::kExecutedRequests, static_cast<double>(reqs));
      env().metric(Metric::kBreakdownCount, static_cast<double>(reqs));
      double generation = 0;
      for (const auto& r : db->datablock.requests) {
        generation += sim::to_seconds(db->created_at - r.submitted_at);
      }
      env().metric(Metric::kSumGenerationSec, generation);
      // Dissemination ends when the leader links the datablock; the nearest
      // local observation is this replica's receipt of the linking BFTblock.
      env().metric(Metric::kSumDisseminationSec,
                   static_cast<double>(reqs) *
                       sim::to_seconds(inst.received_at - db->created_at));
      env().metric(Metric::kSumAgreementSec,
                   static_cast<double>(reqs) * sim::to_seconds(at - inst.received_at));
    }

    // Acknowledge own requests to their clients (the maker is the client's
    // contact point).
    if (db->datablock.maker == id_) {
      for (const auto& r : db->datablock.requests) {
        acks_by_client[r.client_id].push_back(r.seq);
        if (stage_executed_) {
          stage_executed_(r.client_id, r.seq, db->created_at, inst.received_at, at);
        }
      }
    }
  }

  for (auto& [client, seqs] : acks_by_client) {
    auto ack = std::make_shared<proto::AckMsg>();
    ack->client_id = client;
    ack->seqs = std::move(seqs);
    send_to(static_cast<protocol::NodeId>(client), std::move(ack));
  }

  // Fold the block into the running state digest.
  util::ByteWriter w;
  w.raw(state_digest_.bytes());
  w.raw(inst.digest.bytes());
  state_digest_ = Digest::of(w.bytes());
  inst.executed = true;
}

void LeopardReplica::maybe_checkpoint() {
  const auto interval = cfg_.checkpoint_interval();
  if (interval == 0 || exec_sn_ == 0 || exec_sn_ % interval != 0) return;
  if (in_view_change_) return;

  util::ByteWriter w;
  w.str("leopard.checkpoint");
  w.u64(exec_sn_);
  w.raw(state_digest_.bytes());
  const auto cp_digest = Digest::of(w.bytes());

  charge(costs().share_sign);
  auto msg = std::make_shared<proto::CheckpointMsg>();
  msg->sn = exec_sn_;
  msg->state = state_digest_;
  msg->share = ts_.sign_share(id_, cp_digest);

  const auto leader = leader_of(view_);
  if (leader == id_) {
    handle_checkpoint(id_, *msg);
  } else {
    send_to(leader, std::move(msg));
  }
}

void LeopardReplica::handle_checkpoint(ReplicaId from, const proto::CheckpointMsg& msg) {
  util::ByteWriter w;
  w.str("leopard.checkpoint");
  w.u64(msg.sn);
  w.raw(msg.state.bytes());
  const auto cp_digest = Digest::of(w.bytes());

  if (msg.signature.has_value()) {
    // Combined checkpoint proof from the leader.
    charge(costs().combined_verify);
    if (!ts_.verify(cp_digest, *msg.signature)) return;
    adopt_checkpoint(msg.sn, msg.state, *msg.signature);
    return;
  }

  // Checkpoint vote: only the leader aggregates.
  if (leader_of(view_) != id_ || !msg.share.has_value()) return;
  if (msg.sn <= lw_) return;
  charge(costs().share_verify);
  if (!ts_.verify_share(cp_digest, *msg.share) || msg.share->signer != from) return;

  auto& voters = checkpoint_voters_[msg.sn];
  if (!voters.insert(from).second) return;
  checkpoint_votes_[msg.sn].push_back(*msg.share);
  checkpoint_states_[msg.sn] = msg.state;

  if (voters.size() >= cfg_.quorum()) {
    charge(costs().combine_base +
           costs().combine_per_share * static_cast<sim::SimTime>(cfg_.quorum()));
    const auto sigma = ts_.combine(cp_digest, checkpoint_votes_[msg.sn]);
    util::ensures(sigma.has_value(), "checkpoint combine must succeed");

    auto proof = std::make_shared<proto::CheckpointMsg>();
    proof->sn = msg.sn;
    proof->state = msg.state;
    proof->signature = *sigma;
    multicast_to_replicas(std::move(proof));

    checkpoint_votes_.erase(msg.sn);
    checkpoint_voters_.erase(msg.sn);
    checkpoint_states_.erase(msg.sn);
    adopt_checkpoint(msg.sn, msg.state, *sigma);
  }
}

void LeopardReplica::adopt_checkpoint(SeqNum sn, const Digest& state,
                                      const crypto::ThresholdSignature& proof) {
  if (sn <= lw_) return;
  lw_ = sn;
  checkpoint_state_ = state;
  checkpoint_proof_ = proof;

  if (exec_sn_ < sn) {
    // PBFT-style state transfer: the stable checkpoint proves 2f+1 replicas
    // executed through sn. A lagging replica (e.g., one that lost the
    // retrieval race for a Byzantine maker's datablock) adopts the certified
    // state instead of stalling forever on data peers may since have
    // garbage-collected.
    exec_sn_ = sn;
    state_digest_ = state;
    for (auto it = instances_.begin(); it != instances_.end() && it->first <= sn;) {
      // Drop the skipped instances AND their datablocks: they are below the
      // stable checkpoint, so every correct replica is (or will be) past
      // them, and keeping the datablocks would risk re-linking.
      for (const auto& link : it->second.block.links) {
        pool_.erase(link);
        ready_votes_.erase(link);
        queued_or_linked_.erase(link);
        drop_retrieval(link);
        waiting_on_datablock_.erase(link);
      }
      sn_by_digest_.erase(it->second.digest);
      unmark_confirmed(it->first);
      it = instances_.erase(it);
    }
    execute_ready_blocks();  // confirmed instances beyond sn may now unblock
  }

  // Garbage-collect one checkpoint interval BEHIND the stable checkpoint so
  // lagging replicas retain a full window to retrieve datablocks before the
  // holders drop them.
  const auto interval = cfg_.checkpoint_interval();
  garbage_collect(lw_ > interval ? lw_ - interval : 0);
  maybe_propose();  // the watermark window just advanced
}

void LeopardReplica::garbage_collect(SeqNum through_sn) {
  for (auto it = instances_.begin(); it != instances_.end();) {
    auto& [sn, inst] = *it;
    if (sn > through_sn || !inst.executed) {
      ++it;
      continue;
    }
    for (const auto& link : inst.block.links) {
      pool_.erase(link);
      ready_votes_.erase(link);
      queued_or_linked_.erase(link);
      drop_retrieval(link);
      waiting_on_datablock_.erase(link);
      responded_once_.erase(responded_once_.lower_bound({link, 0}),
                            responded_once_.upper_bound({link, cfg_.n}));
    }
    sn_by_digest_.erase(inst.digest);
    unmark_confirmed(sn);
    it = instances_.erase(it);
  }
}

// ---------------------------------------------------------------------------
// Datablock retrieval (Algorithm 3)
// ---------------------------------------------------------------------------

void LeopardReplica::drop_retrieval(const Digest& digest) {
  const auto it = retrievals_.find(digest);
  if (it == retrievals_.end()) return;
  if (it->second.timer_token != 0) {
    env().cancel_timer(it->second.timer_token);
    retrieval_timers_.erase(it->second.timer_token);
  }
  retrievals_.erase(it);
}

void LeopardReplica::note_missing(SeqNum sn, const Digest& digest) {
  waiting_on_datablock_[digest].push_back(sn);
  if (retrievals_.contains(digest)) return;
  auto& ret = retrievals_[digest];
  ret.timer_token = token_of(TimerKind::kRetrieval, ++timer_seq_);
  retrieval_timers_.emplace(ret.timer_token, digest);
  env().set_timer(ret.timer_token, cfg_.retrieval_timeout);
}

void LeopardReplica::send_queries(const Digest& digest) {
  if (crashed() || pool_.contains(digest)) return;
  const auto it = retrievals_.find(digest);
  if (it == retrievals_.end() || it->second.query_sent) return;
  it->second.query_sent = true;
  it->second.query_sent_at = now();
  env().metric(Metric::kQueriesSent, 1);

  auto query = std::make_shared<proto::QueryMsg>();
  query->missing.push_back(digest);
  multicast_to_replicas(std::move(query));
}

void LeopardReplica::handle_query(ReplicaId from, const proto::QueryMsg& msg) {
  if (byz_.ignore_queries) return;
  if (id_ >= rs_.total_shards()) return;  // no chunk slot beyond the RS cap
  for (const auto& digest : msg.missing) {
    const auto db_it = pool_.find(digest);
    if (db_it == pool_.end()) continue;
    if (!responded_once_.insert({digest, from}).second) continue;  // once per querier

    // Erasure-code the datablock into n chunks; send ours with a Merkle
    // proof. Shards are written into the reusable scratch arena and hashed
    // in place (both stages fan out across the worker pool at size) — the
    // only per-chunk copy is our own shard into the outgoing message.
    // Consecutive queriers for the same datablock reuse the memoized
    // shards + tree: the same digest serializes/encodes/hashes to the same
    // bytes, so responses are identical and only the redundant wall-clock
    // recompute is skipped.
    if (query_cache_digest_ != digest || !query_cache_tree_.has_value()) {
      util::ByteWriter w(db_it->second->wire_size());
      db_it->second->datablock.encode(w);
      const auto encoded = w.bytes();
      query_cache_bytes_ = encoded.size();
      query_cache_enc_ = rs_.encode_into(encoded, query_scratch_);
      query_cache_tree_.emplace(
          crypto::MerkleTree::hash_leaves(query_cache_enc_.bytes(), query_cache_enc_.width));
      query_cache_digest_ = digest;
    }
    // Charges model the paper's replica, which recomputes per query.
    charge(costs().per_bytes(costs().erasure_encode_per_byte_ns, query_cache_bytes_));
    charge(costs().per_bytes(costs().hash_per_byte_ns, query_cache_bytes_));
    const auto& enc = query_cache_enc_;
    const crypto::MerkleTree& tree = *query_cache_tree_;

    auto resp = std::make_shared<proto::ChunkResponseMsg>();
    resp->datablock_hash = digest;
    resp->merkle_root = tree.root();
    resp->chunk_index = id_;
    resp->leaf_count = enc.count;
    const auto own = enc.shard(id_);
    resp->chunk.assign(own.begin(), own.end());
    // Wire size reflects the claimed (payload-bearing) datablock size even
    // when payloads are synthetic.
    resp->chunk_size = static_cast<std::uint32_t>(
        rs_.shard_size(db_it->second->wire_size()));
    resp->proof = tree.proof(id_);
    env().metric(Metric::kChunksSent, 1);
    send_to(from, std::move(resp));
  }
}

void LeopardReplica::handle_chunk(ReplicaId,
                                  std::shared_ptr<const proto::ChunkResponseMsg> msg) {
  const auto it = retrievals_.find(msg->datablock_hash);
  if (it == retrievals_.end()) return;  // already recovered or GC'd

  charge(costs().per_bytes(costs().hash_per_byte_ns, msg->chunk.size()));
  const auto leaf = crypto::MerkleTree::hash_leaf(msg->chunk);
  if (!crypto::MerkleTree::verify(msg->merkle_root, leaf, msg->chunk_index,
                                  msg->leaf_count, msg->proof)) {
    return;
  }
  it->second.chunks_by_root[msg->merkle_root].push_back(std::move(msg));
  try_decode(it->first, it->second);
}

void LeopardReplica::try_decode(const Digest& digest, Retrieval& ret) {
  for (auto& [root, chunks] : ret.chunks_by_root) {
    if (chunks.size() < rs_.data_shards()) continue;

    // Decode straight from the buffered chunk messages: ShardView borrows each
    // chunk's bytes, so nothing is copied on the way into the kernel (and the
    // view vector itself is a reused member — this runs once per arriving
    // chunk during a retrieval storm).
    decode_views_.clear();
    decode_views_.reserve(chunks.size());
    std::size_t total = 0;
    for (const auto& c : chunks) {
      decode_views_.push_back(erasure::ShardView{c->chunk_index, c->chunk});
      total += c->chunk.size();
    }
    charge(costs().per_bytes(costs().erasure_decode_per_byte_ns, total));
    if (!rs_.decode_into(decode_views_, rs_scratch_, decode_buf_)) continue;

    util::ByteReader r(decode_buf_);
    auto db = proto::Datablock::decode(r);
    auto msg = std::make_shared<proto::DatablockMsg>(std::move(db));
    if (msg->cached_digest != digest) continue;  // forged chunk set
    msg->created_at = now();
    accept_datablock(msg, /*recovered=*/true);
    return;
  }
}

// ---------------------------------------------------------------------------
// View-change (Appendix A)
// ---------------------------------------------------------------------------

void LeopardReplica::progress_tick() {
  if (!crashed() && !in_view_change_) {
    if (exec_sn_ > last_progress_sn_) {
      last_progress_sn_ = exec_sn_;
      last_progress_at_ = now();
    } else {
      const bool pending_work =
          !mempool_.empty() || (!instances_.empty() && instances_.rbegin()->first > exec_sn_);
      if (pending_work && now() - last_progress_at_ >= cfg_.view_timeout) {
        broadcast_timeout();
      }
    }
  }
  env().set_timer(token_of(TimerKind::kProgress),
                  std::max<sim::SimTime>(cfg_.view_timeout / 4, sim::kMillisecond));
}

void LeopardReplica::broadcast_timeout() {
  if (timeout_sent_ || crashed()) return;
  // Cold-path diagnostic: spurious view-changes are the most common
  // mis-tuning symptom, so make them observable without a debugger.
  if (std::getenv("LEOPARD_DEBUG_VC") != nullptr) {
    std::fprintf(stderr, "[%.2fs] r%u timeout in view %u (exec=%llu mempool=%zu insts=%zu)\n",
                 sim::to_seconds(now()), id_, view_,
                 static_cast<unsigned long long>(exec_sn_), mempool_.size(),
                 instances_.size());
  }
  timeout_sent_ = true;

  charge(costs().share_sign);
  auto msg = std::make_shared<proto::TimeoutMsg>();
  msg->view = view_;
  msg->share = ts_.sign_share(id_, timeout_digest(view_));
  multicast_to_replicas(std::move(msg));
  timeout_votes_[view_].insert(id_);
  enter_view_change();
}

void LeopardReplica::handle_timeout(ReplicaId from, const proto::TimeoutMsg& msg) {
  if (msg.view != view_) return;
  charge(costs().share_verify);
  if (!ts_.verify_share(timeout_digest(msg.view), msg.share) || msg.share.signer != from) {
    return;
  }
  timeout_votes_[msg.view].insert(from);
  // f+1 timeouts prove at least one honest replica timed out: join in.
  if (!timeout_sent_ && timeout_votes_[msg.view].size() >= cfg_.f() + 1) {
    broadcast_timeout();
  }
}

void LeopardReplica::enter_view_change() {
  if (in_view_change_ || crashed()) return;
  in_view_change_ = true;
  env().metric(Metric::kVcTriggeredAt, static_cast<double>(now()));

  vc_target_ = view_ + 1;
  vc_escalation_delay_ = 2 * cfg_.view_timeout;
  send_view_change(vc_target_);
  schedule_vc_escalation();
}

void LeopardReplica::send_view_change(View target) {
  auto msg = std::make_shared<proto::ViewChangeMsg>();
  msg->new_view = target;
  msg->checkpoint_sn = lw_;
  msg->checkpoint_state = checkpoint_state_;
  msg->checkpoint_proof = checkpoint_proof_;
  msg->sender = id_;
  for (const auto& [sn, inst] : instances_) {
    if (sn > lw_ && inst.notarized && inst.sigma1.has_value()) {
      msg->notarized.push_back(proto::NotarizedBlock{inst.block, *inst.sigma1});
    }
  }
  charge(costs().share_sign);
  util::ByteWriter w;
  w.str("leopard.viewchange");
  w.u32(target);
  w.u64(msg->checkpoint_sn);
  msg->sender_sig = ts_.sign_share(id_, Digest::of(w.bytes()));

  const auto next_leader = leader_of(target);
  if (next_leader == id_) {
    handle_view_change(id_, msg);
  } else {
    send_to(next_leader, std::move(msg));
  }
}

void LeopardReplica::schedule_vc_escalation() {
  vc_escalation_token_ = token_of(TimerKind::kVcEscalation, ++timer_seq_);
  env().set_timer(vc_escalation_token_, vc_escalation_delay_);
}

void LeopardReplica::vc_escalation_fire() {
  if (!in_view_change_ || crashed()) return;
  // The prospective leader did not produce a new-view in time: it may be
  // faulty as well. Target the next leader, with exponential backoff so
  // honest replicas converge on the same view despite clock skew.
  ++vc_target_;
  vc_escalation_delay_ *= 2;
  send_view_change(vc_target_);
  schedule_vc_escalation();
}

void LeopardReplica::handle_view_change(ReplicaId from,
                                        std::shared_ptr<const proto::ViewChangeMsg> msg) {
  const View target = msg->new_view;
  if (leader_of(target) != id_ || target <= view_) return;

  charge(costs().share_verify);
  util::ByteWriter w;
  w.str("leopard.viewchange");
  w.u32(target);
  w.u64(msg->checkpoint_sn);
  if (!ts_.verify_share(Digest::of(w.bytes()), msg->sender_sig) ||
      msg->sender_sig.signer != from || msg->sender != from) {
    return;
  }

  if (!view_change_senders_[target].insert(from).second) return;
  view_change_msgs_[target].push_back(std::move(msg));
  leader_try_new_view(target);
}

void LeopardReplica::leader_try_new_view(View target) {
  if (view_change_senders_[target].size() < cfg_.quorum()) return;
  if (target <= view_ || target <= last_new_view_sent_) return;
  last_new_view_sent_ = target;

  auto nv = std::make_shared<proto::NewViewMsg>();
  nv->new_view = target;
  for (const auto& vc : view_change_msgs_[target]) nv->view_changes.push_back(*vc);
  charge(costs().share_sign);
  util::ByteWriter w;
  w.str("leopard.newview");
  w.u32(target);
  nv->leader_sig = ts_.sign_share(id_, Digest::of(w.bytes()));

  multicast_to_replicas(nv);
  adopt_new_view(*nv);
}

void LeopardReplica::handle_new_view(ReplicaId from, const proto::NewViewMsg& msg) {
  if (msg.new_view <= view_ || leader_of(msg.new_view) != from) return;
  charge(costs().share_verify);
  util::ByteWriter w;
  w.str("leopard.newview");
  w.u32(msg.new_view);
  if (!ts_.verify_share(Digest::of(w.bytes()), msg.leader_sig) ||
      msg.leader_sig.signer != from) {
    return;
  }
  if (msg.view_changes.size() < cfg_.quorum()) return;
  adopt_new_view(msg);
}

void LeopardReplica::adopt_new_view(const proto::NewViewMsg& msg) {
  view_ = msg.new_view;
  in_view_change_ = false;
  timeout_sent_ = false;
  if (vc_escalation_token_ != 0) {
    env().cancel_timer(vc_escalation_token_);
    vc_escalation_token_ = 0;
  }
  last_progress_at_ = now();
  env().metric(Metric::kVcCompletedAt, static_cast<double>(now()));
  if (id_ == 0) env().metric(Metric::kViewChangesCompleted, 1);

  // Adopt the newest stable checkpoint proven in V (synchronizes watermarks
  // and garbage-collects stale datablocks before ready state is rebuilt).
  const proto::ViewChangeMsg* best_cp = nullptr;
  for (const auto& vc : msg.view_changes) {
    if (vc.checkpoint_sn > lw_ && (best_cp == nullptr || vc.checkpoint_sn > best_cp->checkpoint_sn)) {
      best_cp = &vc;
    }
  }
  if (best_cp != nullptr) {
    adopt_checkpoint(best_cp->checkpoint_sn, best_cp->checkpoint_state,
                     best_cp->checkpoint_proof);
  }
  SeqNum max_lw = lw_;
  for (const auto& vc : msg.view_changes) max_lw = std::max(max_lw, vc.checkpoint_sn);
  SeqNum max_sn = max_lw;
  // Redo set: for each sn, the notarized block from the highest view wins
  // (Lemma 1 makes per-view notarizations unique).
  std::map<SeqNum, const proto::NotarizedBlock*> redo;
  for (const auto& vc : msg.view_changes) {
    for (const auto& nb : vc.notarized) {
      if (nb.block.sn <= max_lw) continue;
      max_sn = std::max(max_sn, nb.block.sn);
      auto& slot = redo[nb.block.sn];
      if (slot == nullptr || slot->block.view < nb.block.view) slot = &nb;
    }
  }

  // Re-send Ready for every datablock we hold that is not yet linked by an
  // executed instance, so the new leader can rebuild its ready state.
  const auto new_leader = leader_of(view_);
  if (new_leader != id_) {
    auto ready = std::make_shared<proto::ReadyMsg>();
    for (const auto& [digest, db] : pool_) ready->datablock_hashes.push_back(digest);
    if (!ready->datablock_hashes.empty()) send_to(new_leader, std::move(ready));
  } else {
    ready_votes_.clear();
    ready_queue_.clear();
    queued_or_linked_.clear();
    // Links of every surviving instance — executed, confirmed, or about to be
    // redone — must never be linked a second time: peers may already have
    // garbage-collected those datablocks, so a proposal relinking them could
    // never gather votes (and would double-execute if it did).
    for (const auto& [sn2, inst] : instances_) {
      for (const auto& link : inst.block.links) queued_or_linked_.insert(link);
    }
    for (const auto& [digest, db] : pool_) leader_note_ready(id_, digest);

    // Redo the agreement for every undecided slot; fill gaps with dummies.
    next_sn_ = std::max<SeqNum>(next_sn_, max_sn + 1);
    for (SeqNum sn = max_lw + 1; sn <= max_sn; ++sn) {
      const auto r = redo.find(sn);
      std::vector<Digest> links;
      if (r != redo.end()) links = r->second->block.links;
      // Redone links stay marked so fresh proposals do not relink them.
      for (const auto& link : links) queued_or_linked_.insert(link);
      propose_block(sn, std::move(links));
    }
  }
}

ReplicaId assign_replica(const proto::Request& request, std::uint32_t n,
                         ReplicaId leader) {
  util::expects(n >= 2, "assign_replica needs at least two replicas");
  util::expects(leader < n, "leader id out of range");
  // Uniform over the n-1 non-leader replicas, keyed by the request identity.
  util::ByteWriter w;
  w.str("leopard.mu");
  w.u64(request.client_id);
  w.u64(request.seq);
  const auto h = crypto::Digest::of(w.bytes()).prefix64();
  const auto slot = static_cast<ReplicaId>(h % (n - 1));
  // Skip the leader's slot deterministically.
  return slot >= leader ? slot + 1 : slot;
}

}  // namespace leopard::core
