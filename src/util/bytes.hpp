// Byte-level serialization: little-endian fixed-width integers and
// length-prefixed byte ranges over a growable buffer.
//
// Every wire message in src/proto is encoded through ByteWriter/ByteReader so
// that digests are computed over a canonical encoding and wire_size() can be
// cross-checked against the actual encoded size in tests.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/check.hpp"

namespace leopard::util {

using Bytes = std::vector<std::uint8_t>;

/// Appends primitive values to a byte buffer in a canonical little-endian form.
class ByteWriter {
 public:
  ByteWriter() = default;
  explicit ByteWriter(std::size_t reserve) { buf_.reserve(reserve); }

  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) { append_le(v); }
  void u32(std::uint32_t v) { append_le(v); }
  void u64(std::uint64_t v) { append_le(v); }
  void i64(std::int64_t v) { append_le(static_cast<std::uint64_t>(v)); }

  /// Raw bytes, no length prefix (caller knows the size, e.g. fixed digests).
  void raw(std::span<const std::uint8_t> bytes) {
    buf_.insert(buf_.end(), bytes.begin(), bytes.end());
  }

  /// Length-prefixed (u32) variable-size byte range.
  void blob(std::span<const std::uint8_t> bytes) {
    expects(bytes.size() <= UINT32_MAX, "blob too large");
    u32(static_cast<std::uint32_t>(bytes.size()));
    raw(bytes);
  }

  void str(std::string_view s) {
    blob({reinterpret_cast<const std::uint8_t*>(s.data()), s.size()});
  }

  [[nodiscard]] const Bytes& bytes() const { return buf_; }
  [[nodiscard]] Bytes take() { return std::move(buf_); }
  [[nodiscard]] std::size_t size() const { return buf_.size(); }

 private:
  template <typename T>
  void append_le(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }

  Bytes buf_;
};

/// Reads values written by ByteWriter; throws ContractViolation on underflow.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8() { return take(1)[0]; }
  std::uint16_t u16() { return read_le<std::uint16_t>(); }
  std::uint32_t u32() { return read_le<std::uint32_t>(); }
  std::uint64_t u64() { return read_le<std::uint64_t>(); }
  std::int64_t i64() { return static_cast<std::int64_t>(read_le<std::uint64_t>()); }

  std::span<const std::uint8_t> raw(std::size_t len) { return take(len); }

  std::span<const std::uint8_t> blob() {
    const auto len = u32();
    return take(len);
  }

  std::string str() {
    const auto b = blob();
    return std::string(reinterpret_cast<const char*>(b.data()), b.size());
  }

  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] bool done() const { return remaining() == 0; }

 private:
  template <typename T>
  T read_le() {
    const auto b = take(sizeof(T));
    T v = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v = static_cast<T>(v | (static_cast<T>(b[i]) << (8 * i)));
    }
    return v;
  }

  std::span<const std::uint8_t> take(std::size_t len) {
    expects(remaining() >= len, "ByteReader underflow");
    auto out = data_.subspan(pos_, len);
    pos_ += len;
    return out;
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

/// Convenience: copy a span into an owned Bytes vector.
Bytes to_bytes(std::span<const std::uint8_t> s);

/// Convenience: view a string's bytes.
std::span<const std::uint8_t> as_bytes(std::string_view s);

}  // namespace leopard::util
