// Deterministic pseudo-random generators for reproducible simulation runs.
//
// xoshiro256** seeded via splitmix64, per Blackman & Vigna. Not cryptographic;
// used only for workload generation and tie-breaking in experiments.
#pragma once

#include <array>
#include <cstdint>

namespace leopard::util {

/// splitmix64: seeds other generators and serves as a cheap stateless mixer.
std::uint64_t splitmix64(std::uint64_t& state);

/// xoshiro256** — fast, high-quality, deterministic PRNG.
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  std::uint64_t next_u64();

  /// Uniform in [0, bound) with Lemire's rejection method; bound must be > 0.
  std::uint64_t uniform(std::uint64_t bound);

  /// Uniform in [lo, hi] inclusive.
  std::int64_t uniform_range(std::int64_t lo, std::int64_t hi);

  /// Uniform real in [0, 1).
  double uniform_real();

  /// Exponentially distributed with the given mean (> 0); used for open-loop
  /// Poisson request arrivals.
  double exponential(double mean);

  /// Fills a byte span with pseudo-random bytes.
  void fill(std::uint8_t* out, std::size_t len);

 private:
  std::array<std::uint64_t, 4> s_{};
};

}  // namespace leopard::util
