#include "util/worker_pool.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace leopard::util {

WorkerPool::WorkerPool(std::size_t lanes) { resize(lanes); }

WorkerPool::~WorkerPool() { stop_workers(); }

void WorkerPool::stop_workers() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) t.join();
  threads_.clear();
  stop_ = false;
}

void WorkerPool::resize(std::size_t lanes) {
  lanes = std::clamp<std::size_t>(lanes, 1, kMaxLanes);
  if (lanes == lanes_ && threads_.size() == lanes - 1) return;
  stop_workers();
  // Fresh workers start with a seen-epoch of 0: reset the counter (the pool
  // is quiescent here) so they wait for the NEXT dispatch instead of
  // re-running the previous job's stale descriptor.
  epoch_ = 0;
  pending_ = 0;
  job_ = Job{};
  lanes_ = lanes;
  threads_.reserve(lanes - 1);
  for (std::size_t lane = 1; lane < lanes; ++lane) {
    threads_.emplace_back([this, lane] { worker_loop(lane); });
  }
}

std::pair<std::size_t, std::size_t> WorkerPool::chunk_of(std::size_t count, std::size_t align,
                                                         std::size_t lanes, std::size_t lane) {
  if (count == 0 || lanes == 0) return {0, 0};
  if (align == 0) align = 1;
  std::size_t chunk = (count + lanes - 1) / lanes;
  chunk = (chunk + align - 1) / align * align;
  const std::size_t begin = std::min(lane * chunk, count);
  const std::size_t end = std::min(begin + chunk, count);
  return {begin, end};
}

void WorkerPool::worker_loop(std::size_t lane) {
  std::uint64_t seen = 0;
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lk(mu_);
      work_cv_.wait(lk, [&] { return stop_ || epoch_ != seen; });
      if (stop_) return;
      seen = epoch_;
      job = job_;
    }
    const auto [begin, end] = chunk_of(job.count, job.align, job.lanes, lane);
    if (begin < end) job.fn(job.ctx, lane, begin, end);
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (--pending_ == 0) done_cv_.notify_one();
    }
  }
}

void WorkerPool::run(std::size_t count, std::size_t align, TaskFn fn, void* ctx) {
  expects(fn != nullptr, "WorkerPool::run: null task");
  if (count == 0) return;
  const std::size_t lanes = lanes_;
  // Serial pool, or a single chunk covers everything: run inline with zero
  // synchronization — exactly the pre-pool serial path.
  if (lanes <= 1 || chunk_of(count, align, lanes, 1).first >= count) {
    fn(ctx, 0, 0, count);
    return;
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    job_ = Job{fn, ctx, count, align == 0 ? 1 : align, lanes};
    pending_ = lanes - 1;
    ++epoch_;
  }
  work_cv_.notify_all();
  const auto [begin, end] = chunk_of(count, align, lanes, 0);
  if (begin < end) fn(ctx, 0, begin, end);
  std::unique_lock<std::mutex> lk(mu_);
  done_cv_.wait(lk, [&] { return pending_ == 0; });
}

WorkerPool& WorkerPool::global() {
  static WorkerPool pool(1);
  return pool;
}

}  // namespace leopard::util
