#include "util/rng.hpp"

#include <cmath>

#include "util/check.hpp"

namespace leopard::util {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::uniform(std::uint64_t bound) {
  expects(bound > 0, "uniform bound must be positive");
  // Lemire's nearly-divisionless method with rejection for exactness.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_range(std::int64_t lo, std::int64_t hi) {
  expects(lo <= hi, "uniform_range requires lo <= hi");
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(span == 0 ? next_u64() : uniform(span));
}

double Rng::uniform_real() {
  // 53 random bits into [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::exponential(double mean) {
  expects(mean > 0, "exponential mean must be positive");
  double u = uniform_real();
  if (u <= 0.0) u = 0x1.0p-53;  // avoid log(0)
  return -mean * std::log(u);
}

void Rng::fill(std::uint8_t* out, std::size_t len) {
  std::size_t i = 0;
  while (i + 8 <= len) {
    const std::uint64_t v = next_u64();
    for (int b = 0; b < 8; ++b) out[i++] = static_cast<std::uint8_t>(v >> (8 * b));
  }
  if (i < len) {
    const std::uint64_t v = next_u64();
    for (int b = 0; i < len; ++b) out[i++] = static_cast<std::uint8_t>(v >> (8 * b));
  }
}

}  // namespace leopard::util
