#include "util/hex.hpp"

#include <vector>

#include "util/check.hpp"

namespace leopard::util {

namespace {
constexpr char kDigits[] = "0123456789abcdef";

int digit_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

std::string to_hex(std::span<const std::uint8_t> bytes) {
  std::string out;
  out.reserve(bytes.size() * 2);
  for (auto b : bytes) {
    out.push_back(kDigits[b >> 4]);
    out.push_back(kDigits[b & 0xF]);
  }
  return out;
}

std::vector<std::uint8_t> from_hex(std::string_view hex) {
  expects(hex.size() % 2 == 0, "hex string must have even length");
  std::vector<std::uint8_t> out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    const int hi = digit_value(hex[i]);
    const int lo = digit_value(hex[i + 1]);
    expects(hi >= 0 && lo >= 0, "invalid hex digit");
    out.push_back(static_cast<std::uint8_t>((hi << 4) | lo));
  }
  return out;
}

}  // namespace leopard::util
