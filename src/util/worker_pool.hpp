// Deterministic fork-join worker pool for the dispersal hot path.
//
// The leader's two heavy per-datablock stages — Reed-Solomon parity encode
// and Merkle leaf hashing — are embarrassingly parallel per byte range /
// per row. This pool runs ONE data-parallel task at a time over a fixed set
// of lanes with static chunked partitioning:
//
//   - lane i always receives the same contiguous chunk of [0, count) for a
//     given (count, align, lanes), so the work split is a pure function of
//     the inputs — no stealing, no dynamic scheduling, no ordering races;
//   - lanes write disjoint output ranges, so results are byte-identical to
//     the serial computation for EVERY pool size (size 1 runs the task
//     inline on the caller thread with zero synchronization — bit-for-bit
//     today's serial path);
//   - the dispatch path performs no allocation: the job descriptor is a
//     POD slot guarded by the pool mutex, and callers pass a function
//     pointer + context (the template adapter keeps the callable on the
//     caller's stack for the blocking duration of run()).
//
// The pool is deliberately NOT a general task executor: run() is blocking,
// non-reentrant, and single-dispatcher (one thread issues jobs at a time).
// The simulator stays single-threaded and deterministic — the pool only
// accelerates pure compute kernels whose outputs are order-independent.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace leopard::util {

class WorkerPool {
 public:
  /// A data-parallel task body: process [begin, end) as lane `lane`.
  using TaskFn = void (*)(void* ctx, std::size_t lane, std::size_t begin, std::size_t end);

  /// Hard cap on lanes (threads are expensive; beyond the core count they
  /// only add contention).
  static constexpr std::size_t kMaxLanes = 64;

  /// `lanes` parallel execution lanes: the caller thread plus lanes-1
  /// workers. lanes == 1 spawns no threads at all.
  explicit WorkerPool(std::size_t lanes = 1);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  [[nodiscard]] std::size_t lanes() const { return lanes_; }

  /// Re-sizes the lane count (clamped to [1, kMaxLanes]), joining or
  /// spawning workers as needed. Must not be called concurrently with run().
  void resize(std::size_t lanes);

  /// The deterministic static partition: the chunk lane `lane` of `lanes`
  /// receives from [0, count), with chunk boundaries rounded up to `align`
  /// (the final chunk takes the remainder). Chunks are contiguous,
  /// disjoint, cover [0, count), and depend only on the arguments.
  [[nodiscard]] static std::pair<std::size_t, std::size_t> chunk_of(std::size_t count,
                                                                    std::size_t align,
                                                                    std::size_t lanes,
                                                                    std::size_t lane);

  /// Runs `fn` over [0, count) split into lanes() chunks; blocks until every
  /// lane finished. The caller thread executes lane 0. Empty chunks are not
  /// invoked. No allocation on this path.
  void run(std::size_t count, std::size_t align, TaskFn fn, void* ctx);

  /// Adapter for callables: f(lane, begin, end). The callable stays on the
  /// caller's stack (run() blocks), so capturing locals by reference is safe.
  template <typename F>
  void for_ranges(std::size_t count, std::size_t align, F&& f) {
    auto& body = f;  // materialize a referencable lvalue for the thunk ctx
    run(count, align,
        [](void* ctx, std::size_t lane, std::size_t begin, std::size_t end) {
          (*static_cast<std::remove_reference_t<F>*>(ctx))(lane, begin, end);
        },
        &body);
  }

  /// The process-wide pool the erasure/crypto hot paths dispatch through.
  /// Defaults to 1 lane (serial); the harness sizes it from Config and
  /// benches/tests resize it around measurements.
  static WorkerPool& global();

 private:
  /// One dispatched job; copied by each worker under the lock.
  struct Job {
    TaskFn fn = nullptr;
    void* ctx = nullptr;
    std::size_t count = 0;
    std::size_t align = 1;
    std::size_t lanes = 1;
  };

  void worker_loop(std::size_t lane);
  void stop_workers();

  std::mutex mu_;
  std::condition_variable work_cv_;  // workers: a new epoch or stop
  std::condition_variable done_cv_;  // dispatcher: all lanes finished
  std::uint64_t epoch_ = 0;          // bumps once per dispatched job
  std::size_t pending_ = 0;          // workers still running the current job
  bool stop_ = false;
  Job job_;

  std::size_t lanes_ = 1;
  std::vector<std::thread> threads_;  // lanes_ - 1 workers
};

}  // namespace leopard::util
