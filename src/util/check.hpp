// Lightweight contract checks in the spirit of the Core Guidelines' Expects/Ensures.
// Violations throw ContractViolation so tests can assert on misuse, and so a
// violated invariant never silently corrupts a simulation run.
#pragma once

#include <stdexcept>
#include <string>

namespace leopard::util {

/// Thrown when a precondition, postcondition or internal invariant is violated.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

/// Precondition check: call at function entry.
inline void expects(bool cond, const char* msg = "precondition violated") {
  if (!cond) throw ContractViolation(msg);
}

/// Postcondition / invariant check.
inline void ensures(bool cond, const char* msg = "postcondition violated") {
  if (!cond) throw ContractViolation(msg);
}

}  // namespace leopard::util
