#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace leopard::util {

/// Lowercase hex encoding of a byte range.
std::string to_hex(std::span<const std::uint8_t> bytes);

/// Decodes a hex string; throws ContractViolation on odd length or bad digit.
std::vector<std::uint8_t> from_hex(std::string_view hex);

}  // namespace leopard::util
