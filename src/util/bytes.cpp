#include "util/bytes.hpp"

namespace leopard::util {

Bytes to_bytes(std::span<const std::uint8_t> s) { return Bytes(s.begin(), s.end()); }

std::span<const std::uint8_t> as_bytes(std::string_view s) {
  return {reinterpret_cast<const std::uint8_t*>(s.data()), s.size()};
}

}  // namespace leopard::util
