// Minimal streaming JSON writer for the /statusz endpoint and trace dumps:
// handles comma placement and string escaping, nothing else. Misuse (value
// without key inside an object, unbalanced end) is a programming error and
// trips util::expects.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace leopard::obs {

class JsonWriter {
 public:
  JsonWriter& object_begin();
  JsonWriter& object_end();
  JsonWriter& array_begin();
  JsonWriter& array_end();
  JsonWriter& key(std::string_view k);
  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(double v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint32_t v) { return value(static_cast<std::uint64_t>(v)); }
  JsonWriter& value(std::int32_t v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(bool v);

  [[nodiscard]] const std::string& str() const { return out_; }

 private:
  enum class Ctx : std::uint8_t { kObject, kArray };
  void before_value();
  void escape(std::string_view s);

  std::string out_;
  std::vector<Ctx> stack_;
  std::vector<bool> has_elems_;
  bool pending_key_ = false;
};

}  // namespace leopard::obs
