// Minimal HTTP/1.0 exposition server for observability endpoints, hooked
// into an existing epoll EventLoop (net/event_loop.hpp) — no thread of its
// own. Single-threaded by construction: every callback (accept, read,
// write, handler dispatch) runs on whichever thread polls the loop, which in
// leopard_node is the transport thread. That is a feature, not a limitation:
// /statusz handlers may read transport-owned state directly.
//
// Protocol support is deliberately tiny: GET only, request line + headers
// read and discarded (8 KiB cap), response is HTTP/1.0 with Content-Length
// and Connection: close. Exactly what `curl` and a Prometheus scraper need.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <unordered_map>

#include "net/event_loop.hpp"

namespace leopard::obs {

class Registry;

class HttpServer {
 public:
  struct Options {
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;  // 0 binds an ephemeral port (tests)
  };

  struct Response {
    int status = 200;
    std::string content_type = "text/plain; charset=utf-8";
    std::string body;
  };

  /// The handler receives the raw query string (text after '?', possibly
  /// empty) and runs on the loop's polling thread.
  using Handler = std::function<Response(std::string_view query)>;

  HttpServer(net::EventLoop& loop, Options opts);
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// False when the listen socket could not be bound (port in use, bad host).
  [[nodiscard]] bool listening() const { return listen_fd_ >= 0; }
  [[nodiscard]] std::uint16_t port() const { return port_; }

  /// Registers `handler` for an exact path (e.g. "/metrics"). Re-registering
  /// a path replaces the handler. Unknown paths answer 404.
  void handle(std::string path, Handler handler);

  /// Registers the standard trio: /metrics (Prometheus text from `registry`),
  /// /healthz ("ok"), and — unless the caller installs its own — a /statusz
  /// serving the registry's JSON dump.
  void serve_registry(Registry& registry);

 private:
  struct Client {
    std::string in;
    std::string out;
    std::size_t sent = 0;
    bool responding = false;
  };

  static constexpr std::size_t kMaxRequestBytes = 8192;

  void on_accept();
  void on_client(int fd, std::uint32_t events);
  void respond(int fd, Client& client);
  void close_client(int fd);

  net::EventLoop& loop_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::map<std::string, Handler> handlers_;
  std::unordered_map<int, Client> clients_;
};

/// Parses `key` out of a query string ("a=1&b=2"); empty when absent.
[[nodiscard]] std::string query_param(std::string_view query, std::string_view key);

}  // namespace leopard::obs
