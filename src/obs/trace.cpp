#include "obs/trace.hpp"

#include <algorithm>

#include "obs/json.hpp"

namespace leopard::obs {

namespace {

std::uint64_t clamp_ns(std::int64_t dt) {
  return dt > 0 ? static_cast<std::uint64_t>(dt) : 0;
}

}  // namespace

StageTracer::StageTracer(Registry& registry, Options opts)
    : opts_(std::move(opts)),
      stash_cap_(std::max<std::size_t>(64, opts_.ring_capacity * 4)) {
  const auto hist = [&](const char* stage, const char* help) {
    std::string labels = "stage=\"" + std::string(stage) + "\"";
    if (!opts_.labels.empty()) labels = opts_.labels + "," + labels;
    return registry.histogram("leopard_request_stage_ns", help, labels);
  };
  generation_ = hist("generation", "Table IV request stage latency in nanoseconds");
  dissemination_ = hist("dissemination", "Table IV request stage latency in nanoseconds");
  agreement_ = hist("agreement", "Table IV request stage latency in nanoseconds");
  total_ = hist("total", "Table IV request stage latency in nanoseconds");
  observed_ = registry.counter("leopard_trace_requests_observed_total",
                               "Requests seen by the stage tracer at generation",
                               opts_.labels);
  spans_ = registry.counter("leopard_trace_spans_total",
                            "Sampled spans completed into the trace ring", opts_.labels);
}

std::uint64_t StageTracer::mix(std::uint64_t client_id, std::uint64_t seq) {
  // splitmix64 over the packed identity; good avalanche so `% sample_every`
  // does not correlate with client id or sequence stride.
  std::uint64_t x = client_id * 0x9e3779b97f4a7c15ULL ^ (seq + 0xbf58476d1ce4e5b9ULL);
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

bool StageTracer::sampled(std::uint64_t client_id, std::uint64_t seq) const {
  if (opts_.sample_every == 0) return false;
  return mix(client_id, seq) % opts_.sample_every == 0;
}

void StageTracer::on_generated(std::uint64_t client_id, std::uint64_t seq,
                               std::int64_t ingress_ns, std::int64_t created_ns) {
  observed_.inc();
  generation_.record(clamp_ns(created_ns - ingress_ns));
  if (!sampled(client_id, seq)) return;
  std::lock_guard<std::mutex> lk(mu_);
  if (stash_.size() >= stash_cap_) return;  // bounded: drop the sample, not memory
  stash_.emplace(mix(client_id, seq), ingress_ns);
}

void StageTracer::on_executed(std::uint64_t client_id, std::uint64_t seq,
                              std::int64_t created_ns, std::int64_t linked_ns,
                              std::int64_t executed_ns) {
  dissemination_.record(clamp_ns(linked_ns - created_ns));
  agreement_.record(clamp_ns(executed_ns - linked_ns));
  if (!sampled(client_id, seq)) return;
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = stash_.find(mix(client_id, seq));
  if (it == stash_.end()) return;  // generated before the tracer, or stash-dropped
  const auto ingress_ns = it->second;
  stash_.erase(it);
  total_.record(clamp_ns(executed_ns - ingress_ns));
  spans_.inc();
  Span span{client_id, seq, ingress_ns, created_ns, linked_ns, executed_ns};
  if (ring_.size() < opts_.ring_capacity) {
    ring_.push_back(span);
  } else if (!ring_.empty()) {
    ring_[ring_next_] = span;
    ring_next_ = (ring_next_ + 1) % ring_.size();
  }
  ++ring_seen_;
}

void StageTracer::write_json(JsonWriter& w) const {
  std::lock_guard<std::mutex> lk(mu_);
  w.object_begin();
  w.key("sample_every").value(static_cast<std::uint64_t>(opts_.sample_every));
  w.key("ring_capacity").value(static_cast<std::uint64_t>(opts_.ring_capacity));
  w.key("spans_completed").value(ring_seen_);
  w.key("spans").array_begin();
  // Oldest → newest: once the ring wraps, ring_next_ points at the oldest.
  const std::size_t n = ring_.size();
  const std::size_t start = n < opts_.ring_capacity ? 0 : ring_next_;
  for (std::size_t i = 0; i < n; ++i) {
    const Span& s = ring_[(start + i) % n];
    w.object_begin();
    w.key("client_id").value(s.client_id);
    w.key("seq").value(s.seq);
    w.key("ingress_ns").value(static_cast<std::int64_t>(s.ingress_ns));
    w.key("generation_ns").value(clamp_ns(s.created_ns - s.ingress_ns));
    w.key("dissemination_ns").value(clamp_ns(s.linked_ns - s.created_ns));
    w.key("agreement_ns").value(clamp_ns(s.executed_ns - s.linked_ns));
    w.key("total_ns").value(clamp_ns(s.executed_ns - s.ingress_ns));
    w.object_end();
  }
  w.array_end();
  w.object_end();
}

}  // namespace leopard::obs
