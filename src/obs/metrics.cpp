#include "obs/metrics.hpp"

#include <time.h>

#include <algorithm>
#include <cstdio>
#include <map>

#include "obs/json.hpp"
#include "util/check.hpp"

namespace leopard::obs {

std::int64_t mono_now_ns() {
  timespec ts{};
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::int64_t>(ts.tv_sec) * 1'000'000'000 + ts.tv_nsec;
}

namespace {
std::atomic<std::uint64_t> g_next_uid{1};
}  // namespace

thread_local Registry::TlsRef Registry::tls_cache_[Registry::kTlsRefs];

Registry::Registry() : uid_(g_next_uid.fetch_add(1, std::memory_order_relaxed)) {}

Registry::~Registry() = default;

Registry& Registry::global() {
  static Registry* instance = new Registry();  // leaked: record handles may
  return *instance;                            // outlive every static dtor
}

std::atomic<std::uint64_t>* Registry::thread_slots_slow() {
  std::lock_guard<std::mutex> lk(mu_);
  ThreadBlock block;
  block.slots = std::make_unique<std::atomic<std::uint64_t>[]>(kBlockSlots);
  for (std::uint32_t i = 0; i < kBlockSlots; ++i) {
    block.slots[i].store(0, std::memory_order_relaxed);
  }
  auto* slots = block.slots.get();
  blocks_.push_back(std::move(block));
  // Rotate into the front of this thread's cache. Eviction of a still-live
  // registry only wastes a block on re-entry (counts stay correct: scrapes
  // sum every block) — and with the handful of registries a process ever
  // holds, eviction does not happen in practice.
  for (std::size_t i = kTlsRefs - 1; i > 0; --i) tls_cache_[i] = tls_cache_[i - 1];
  tls_cache_[0] = TlsRef{uid_, slots};
  return slots;
}

Registry::Def& Registry::intern(Kind kind, const std::string& name, const std::string& help,
                                const std::string& labels, std::uint32_t slots_needed) {
  // Callers hold mu_.
  for (auto& def : defs_) {
    if (def.name == name && def.labels == labels) {
      util::expects(def.kind == kind,
                    "obs::Registry: metric re-registered with a different type");
      return def;
    }
  }
  util::expects(next_slot_ + slots_needed <= kBlockSlots,
                "obs::Registry: slot capacity exhausted");
  if (std::find(family_order_.begin(), family_order_.end(), name) == family_order_.end()) {
    family_order_.push_back(name);
  }
  Def def;
  def.kind = kind;
  def.name = name;
  def.help = help;
  def.labels = labels;
  def.slot = next_slot_;
  next_slot_ += slots_needed;
  defs_.push_back(std::move(def));
  return defs_.back();
}

Counter Registry::counter(const std::string& name, const std::string& help,
                          const std::string& labels) {
  std::lock_guard<std::mutex> lk(mu_);
  return Counter{this, intern(Kind::kCounter, name, help, labels, 1).slot};
}

Gauge Registry::gauge(const std::string& name, const std::string& help,
                      const std::string& labels) {
  std::lock_guard<std::mutex> lk(mu_);
  auto& def = intern(Kind::kGauge, name, help, labels, 0);
  if (def.cell == nullptr) {
    gauge_cells_.emplace_back(0.0);
    def.cell = &gauge_cells_.back();
  }
  return Gauge{def.cell};
}

Histogram Registry::histogram(const std::string& name, const std::string& help,
                              const std::string& labels) {
  std::lock_guard<std::mutex> lk(mu_);
  // Buckets, then a sum slot, then a max slot.
  return Histogram{this, intern(Kind::kHistogram, name, help, labels,
                                HdrLayout::kBuckets + 2).slot};
}

void Registry::gauge_fn(const std::string& name, const std::string& help,
                        const std::string& labels, std::function<double()> fn) {
  std::lock_guard<std::mutex> lk(mu_);
  intern(Kind::kGaugeFn, name, help, labels, 0).fn = std::move(fn);
}

void Registry::counter_fn(const std::string& name, const std::string& help,
                          const std::string& labels, std::function<double()> fn) {
  std::lock_guard<std::mutex> lk(mu_);
  intern(Kind::kCounterFn, name, help, labels, 0).fn = std::move(fn);
}

std::uint64_t Registry::sum_slot(std::uint32_t slot) const {
  std::uint64_t total = 0;
  for (const auto& block : blocks_) {
    total += block.slots[slot].load(std::memory_order_relaxed);
  }
  return total;
}

std::uint64_t Registry::counter_value(const Counter& c) {
  util::expects(c.reg_ == this, "obs::Registry: counter from another registry");
  std::lock_guard<std::mutex> lk(mu_);
  return sum_slot(c.slot_);
}

HistogramSnapshot Registry::histogram_snapshot(const Histogram& h) {
  util::expects(h.reg_ == this, "obs::Registry: histogram from another registry");
  std::lock_guard<std::mutex> lk(mu_);
  HistogramSnapshot snap;
  snap.buckets.assign(HdrLayout::kBuckets, 0);
  for (const auto& block : blocks_) {
    const auto* base = block.slots.get() + h.slot_;
    for (std::uint32_t i = 0; i < HdrLayout::kBuckets; ++i) {
      const auto n = base[i].load(std::memory_order_relaxed);
      snap.buckets[i] += n;
      snap.count += n;
    }
    snap.sum += base[HdrLayout::kBuckets].load(std::memory_order_relaxed);
    snap.max = std::max(snap.max, base[HdrLayout::kBuckets + 1].load(std::memory_order_relaxed));
  }
  return snap;
}

namespace {

void append_series(std::string& out, const std::string& name, const std::string& labels,
                   const char* suffix, const std::string& extra_label, double value) {
  out += name;
  out += suffix;
  if (!labels.empty() || !extra_label.empty()) {
    out += '{';
    out += labels;
    if (!labels.empty() && !extra_label.empty()) out += ',';
    out += extra_label;
    out += '}';
  }
  char buf[64];
  if (value == static_cast<double>(static_cast<std::uint64_t>(value)) && value >= 0) {
    std::snprintf(buf, sizeof(buf), " %llu\n",
                  static_cast<unsigned long long>(value));
  } else {
    std::snprintf(buf, sizeof(buf), " %.17g\n", value);
  }
  out += buf;
}

const char* type_name(bool counter_like, bool histogram) {
  if (histogram) return "histogram";
  return counter_like ? "counter" : "gauge";
}

}  // namespace

std::string Registry::render_prometheus() {
  std::lock_guard<std::mutex> lk(mu_);
  std::string out;
  out.reserve(4096);
  for (const auto& family : family_order_) {
    bool header_done = false;
    for (const auto& def : defs_) {
      if (def.name != family) continue;
      if (!header_done) {
        header_done = true;
        out += "# HELP " + family + " ";
        for (const char c : def.help) out += (c == '\n' ? ' ' : c);
        out += '\n';
        const bool counter_like =
            def.kind == Kind::kCounter || def.kind == Kind::kCounterFn;
        out += "# TYPE " + family + " " +
               type_name(counter_like, def.kind == Kind::kHistogram) + "\n";
      }
      switch (def.kind) {
        case Kind::kCounter:
          append_series(out, def.name, def.labels, "",
                        {}, static_cast<double>(sum_slot(def.slot)));
          break;
        case Kind::kGauge:
          append_series(out, def.name, def.labels, "", {},
                        def.cell->load(std::memory_order_relaxed));
          break;
        case Kind::kCounterFn:
        case Kind::kGaugeFn:
          append_series(out, def.name, def.labels, "", {}, def.fn ? def.fn() : 0.0);
          break;
        case Kind::kHistogram: {
          // Cumulative buckets coarsened to the power-of-two boundaries: the
          // kSub sub-buckets inside each power of two nest exactly, so the
          // cumulative count at le=2^e is exact.
          std::uint64_t cum = 0;
          std::uint64_t total = 0;
          std::uint64_t sum = 0;
          std::vector<std::uint64_t> agg(HdrLayout::kBuckets, 0);
          for (const auto& block : blocks_) {
            const auto* base = block.slots.get() + def.slot;
            for (std::uint32_t i = 0; i < HdrLayout::kBuckets; ++i) {
              agg[i] += base[i].load(std::memory_order_relaxed);
            }
            sum += base[HdrLayout::kBuckets].load(std::memory_order_relaxed);
          }
          std::uint32_t next = 0;
          for (std::uint32_t e = HdrLayout::kSubBits; e < HdrLayout::kMaxBits; ++e) {
            const auto boundary = HdrLayout::index_of(std::uint64_t{1} << e);
            while (next < boundary) cum += agg[next++];
            char le[32];
            std::snprintf(le, sizeof(le), "le=\"%llu\"",
                          static_cast<unsigned long long>(std::uint64_t{1} << e));
            append_series(out, def.name, def.labels, "_bucket", le,
                          static_cast<double>(cum));
          }
          while (next < HdrLayout::kBuckets) cum += agg[next++];
          total = cum;
          append_series(out, def.name, def.labels, "_bucket", "le=\"+Inf\"",
                        static_cast<double>(total));
          append_series(out, def.name, def.labels, "_sum", {}, static_cast<double>(sum));
          append_series(out, def.name, def.labels, "_count", {},
                        static_cast<double>(total));
          break;
        }
      }
    }
  }
  return out;
}

void Registry::write_statusz(JsonWriter& w) {
  std::lock_guard<std::mutex> lk(mu_);
  w.object_begin();
  for (const auto& def : defs_) {
    std::string key = def.name;
    if (!def.labels.empty()) key += "{" + def.labels + "}";
    w.key(key);
    switch (def.kind) {
      case Kind::kCounter:
        w.value(sum_slot(def.slot));
        break;
      case Kind::kGauge:
        w.value(def.cell->load(std::memory_order_relaxed));
        break;
      case Kind::kCounterFn:
      case Kind::kGaugeFn:
        w.value(def.fn ? def.fn() : 0.0);
        break;
      case Kind::kHistogram: {
        HistogramSnapshot snap;
        snap.buckets.assign(HdrLayout::kBuckets, 0);
        for (const auto& block : blocks_) {
          const auto* base = block.slots.get() + def.slot;
          for (std::uint32_t i = 0; i < HdrLayout::kBuckets; ++i) {
            const auto n = base[i].load(std::memory_order_relaxed);
            snap.buckets[i] += n;
            snap.count += n;
          }
          snap.sum += base[HdrLayout::kBuckets].load(std::memory_order_relaxed);
          snap.max =
              std::max(snap.max, base[HdrLayout::kBuckets + 1].load(std::memory_order_relaxed));
        }
        w.object_begin();
        w.key("count").value(snap.count);
        w.key("mean").value(snap.mean());
        w.key("p50").value(snap.percentile(0.50));
        w.key("p90").value(snap.percentile(0.90));
        w.key("p99").value(snap.percentile(0.99));
        w.key("p999").value(snap.percentile(0.999));
        w.key("max").value(snap.max);
        w.object_end();
        break;
      }
    }
  }
  w.object_end();
}

}  // namespace leopard::obs
