#include "obs/json.hpp"

#include <cmath>
#include <cstdio>

#include "util/check.hpp"

namespace leopard::obs {

void JsonWriter::before_value() {
  if (stack_.empty()) return;  // top-level single value
  if (stack_.back() == Ctx::kObject) {
    util::expects(pending_key_, "JsonWriter: value without key inside object");
    pending_key_ = false;
    return;
  }
  if (has_elems_.back()) out_ += ',';
  has_elems_.back() = true;
}

void JsonWriter::escape(std::string_view s) {
  out_ += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out_ += "\\\""; break;
      case '\\': out_ += "\\\\"; break;
      case '\n': out_ += "\\n"; break;
      case '\r': out_ += "\\r"; break;
      case '\t': out_ += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out_ += buf;
        } else {
          out_ += c;
        }
    }
  }
  out_ += '"';
}

JsonWriter& JsonWriter::object_begin() {
  before_value();
  out_ += '{';
  stack_.push_back(Ctx::kObject);
  has_elems_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::object_end() {
  util::expects(!stack_.empty() && stack_.back() == Ctx::kObject && !pending_key_,
                "JsonWriter: unbalanced object_end");
  out_ += '}';
  stack_.pop_back();
  has_elems_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::array_begin() {
  before_value();
  out_ += '[';
  stack_.push_back(Ctx::kArray);
  has_elems_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::array_end() {
  util::expects(!stack_.empty() && stack_.back() == Ctx::kArray,
                "JsonWriter: unbalanced array_end");
  out_ += ']';
  stack_.pop_back();
  has_elems_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  util::expects(!stack_.empty() && stack_.back() == Ctx::kObject && !pending_key_,
                "JsonWriter: key outside object");
  if (has_elems_.back()) out_ += ',';
  has_elems_.back() = true;
  escape(k);
  out_ += ':';
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  before_value();
  escape(v);
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  before_value();
  if (!std::isfinite(v)) {
    out_ += "null";
    return *this;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  before_value();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  before_value();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  before_value();
  out_ += v ? "true" : "false";
  return *this;
}

}  // namespace leopard::obs
