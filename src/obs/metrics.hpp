// Lock-free metrics registry: counters, gauges, and HDR histograms recorded
// through per-thread shard blocks and aggregated only at scrape time.
//
// Record path (Counter::inc, Histogram::record): resolve this thread's slot
// block from a small thread-local cache, then plain relaxed atomic
// load+store on slots this thread exclusively writes — no locks, no RMW, no
// cache-line ping-pong between io-threads. A thread's first record against a
// registry takes a mutex once to allocate its block; blocks are append-only
// and owned by the registry, so counts survive thread exit.
//
// Scrape path (render_prometheus, snapshots): takes the registration mutex
// (blocking registration, never recording) and sums every thread block with
// relaxed loads. Scrapes are permitted to tear across slots — a counter read
// concurrent with increments is merely slightly stale, which is the
// Prometheus contract anyway.
//
// Gauges are single atomic cells (last-writer-wins set from any thread).
// Callback series (gauge_fn/counter_fn) are evaluated on the scraping thread
// at scrape time; callers registering one must only read state owned by the
// thread that scrapes (in leopard_node the HTTP server runs on the transport
// thread's event loop, so transport-owned state is safe).
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/histogram.hpp"

namespace leopard::obs {

/// CLOCK_MONOTONIC in nanoseconds — the shared timestamp source for duration
/// histograms (comparable across threads, and across processes on one host).
[[nodiscard]] std::int64_t mono_now_ns();

class Registry;
class JsonWriter;

class Counter {
 public:
  Counter() = default;
  inline void inc(std::uint64_t n = 1) const;

 private:
  friend class Registry;
  Counter(Registry* reg, std::uint32_t slot) : reg_(reg), slot_(slot) {}
  Registry* reg_ = nullptr;
  std::uint32_t slot_ = 0;
};

class Gauge {
 public:
  Gauge() = default;
  void set(double v) const {
    if (cell_ != nullptr) cell_->store(v, std::memory_order_relaxed);
  }
  [[nodiscard]] double value() const {
    return cell_ == nullptr ? 0.0 : cell_->load(std::memory_order_relaxed);
  }

 private:
  friend class Registry;
  explicit Gauge(std::atomic<double>* cell) : cell_(cell) {}
  std::atomic<double>* cell_ = nullptr;
};

class Histogram {
 public:
  Histogram() = default;
  inline void record(std::uint64_t value) const;
  /// Convenience for duration instrumentation: record(now - t0_ns), clamped
  /// at zero.
  inline void record_since(std::int64_t t0_ns) const;

 private:
  friend class Registry;
  Histogram(Registry* reg, std::uint32_t slot) : reg_(reg), slot_(slot) {}
  Registry* reg_ = nullptr;
  std::uint32_t slot_ = 0;
};

/// Aggregated histogram state at one scrape.
struct HistogramSnapshot {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t max = 0;
  std::vector<std::uint64_t> buckets;  // HdrLayout::kBuckets entries

  [[nodiscard]] std::uint64_t percentile(double p) const {
    return buckets.empty() ? 0 : hdr_percentile(buckets, count, p);
  }
  [[nodiscard]] double mean() const {
    return count == 0 ? 0.0 : static_cast<double>(sum) / static_cast<double>(count);
  }
};

class Registry {
 public:
  Registry();
  ~Registry();
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// The process-wide registry every layer's instrumentation lands in.
  static Registry& global();

  /// Register (or look up — same name+labels returns the same series) a
  /// metric. `labels` is a raw Prometheus label body, e.g. `peer="3"`.
  Counter counter(const std::string& name, const std::string& help,
                  const std::string& labels = {});
  Gauge gauge(const std::string& name, const std::string& help,
              const std::string& labels = {});
  Histogram histogram(const std::string& name, const std::string& help,
                      const std::string& labels = {});

  /// Scrape-evaluated series: `fn` runs on the scraping thread at scrape
  /// time. Re-registering the same name+labels replaces the callback (so a
  /// recreated owner never leaves a dangling capture behind).
  void gauge_fn(const std::string& name, const std::string& help, const std::string& labels,
                std::function<double()> fn);
  void counter_fn(const std::string& name, const std::string& help, const std::string& labels,
                  std::function<double()> fn);

  [[nodiscard]] std::uint64_t counter_value(const Counter& c);
  [[nodiscard]] HistogramSnapshot histogram_snapshot(const Histogram& h);

  /// Prometheus text exposition format (version 0.0.4). Histogram `le`
  /// boundaries are coarsened to powers of two; full-resolution percentiles
  /// live in write_statusz / snapshots.
  [[nodiscard]] std::string render_prometheus();

  /// JSON object of every series: counters/gauges as numbers, histograms as
  /// {count,mean,p50,p90,p99,p999,max}. The writer must be positioned for a
  /// value (this emits one object).
  void write_statusz(JsonWriter& w);

  // -- record-path internals (public for the inline handle methods) ---------
  [[nodiscard]] std::atomic<std::uint64_t>* thread_slots() {
    for (const auto& ref : tls_cache_) {
      if (ref.uid == uid_) return ref.slots;
    }
    return thread_slots_slow();
  }

 private:
  /// Fixed slot capacity per thread block. The bump allocator below hands
  /// offsets out of this range, so blocks allocated before a late
  /// registration still cover it.
  static constexpr std::uint32_t kBlockSlots = 1u << 16;

  struct ThreadBlock {
    std::unique_ptr<std::atomic<std::uint64_t>[]> slots;
  };

  enum class Kind : std::uint8_t { kCounter, kGauge, kHistogram, kCounterFn, kGaugeFn };

  struct Def {
    Kind kind;
    std::string name;
    std::string help;
    std::string labels;
    std::uint32_t slot = 0;                   // counters, histograms
    std::atomic<double>* cell = nullptr;      // gauges
    std::function<double()> fn;               // callback series
  };

  struct TlsRef {
    std::uint64_t uid = 0;
    std::atomic<std::uint64_t>* slots = nullptr;
  };
  static constexpr std::size_t kTlsRefs = 4;
  static thread_local TlsRef tls_cache_[kTlsRefs];

  std::atomic<std::uint64_t>* thread_slots_slow();
  Def& intern(Kind kind, const std::string& name, const std::string& help,
              const std::string& labels, std::uint32_t slots_needed);
  [[nodiscard]] std::uint64_t sum_slot(std::uint32_t slot) const;  // callers hold mu_

  const std::uint64_t uid_;  // never reused: stale TLS refs can never false-match
  mutable std::mutex mu_;
  std::vector<ThreadBlock> blocks_;
  std::vector<Def> defs_;
  std::vector<std::string> family_order_;               // first-registration name order
  std::deque<std::atomic<double>> gauge_cells_;         // stable addresses
  std::uint32_t next_slot_ = 0;
};

// -- inline record paths -----------------------------------------------------

inline void Counter::inc(std::uint64_t n) const {
  if (reg_ == nullptr) return;
  auto* s = reg_->thread_slots() + slot_;
  s->store(s->load(std::memory_order_relaxed) + n, std::memory_order_relaxed);
}

inline void Histogram::record(std::uint64_t value) const {
  if (reg_ == nullptr) return;
  auto* base = reg_->thread_slots() + slot_;
  auto* bucket = base + HdrLayout::index_of(value);
  bucket->store(bucket->load(std::memory_order_relaxed) + 1, std::memory_order_relaxed);
  auto* sum = base + HdrLayout::kBuckets;
  sum->store(sum->load(std::memory_order_relaxed) + value, std::memory_order_relaxed);
  auto* max = base + HdrLayout::kBuckets + 1;
  if (value > max->load(std::memory_order_relaxed)) {
    max->store(value, std::memory_order_relaxed);  // slot is thread-exclusive
  }
}

inline void Histogram::record_since(std::int64_t t0_ns) const {
  const auto dt = mono_now_ns() - t0_ns;
  record(dt > 0 ? static_cast<std::uint64_t>(dt) : 0);
}

}  // namespace leopard::obs
