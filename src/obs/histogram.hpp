// Log-bucketed HDR-style histogram layout shared by every percentile path in
// the tree: the lock-free registry histograms (obs/metrics.hpp), the
// single-threaded HdrHistogram value type embedded in core::ProtocolMetrics
// (sim + wire client latency), and snapshot percentile math.
//
// Layout: values below kSub are exact (width-1 buckets); above that each
// power-of-two range [2^h, 2^(h+1)) splits into kSub sub-buckets, so the
// relative quantization error is bounded by 1/kSub (~3.1%) everywhere.
// Values at or above 2^kMaxBits clamp into the top bucket (2^40 ns ≈ 18 min
// — far beyond any latency this tree measures).
#pragma once

#include <bit>
#include <cstdint>
#include <vector>

namespace leopard::obs {

struct HdrLayout {
  static constexpr std::uint32_t kSubBits = 5;
  static constexpr std::uint32_t kSub = 1u << kSubBits;  // 32 sub-buckets
  static constexpr std::uint32_t kMaxBits = 40;
  static constexpr std::uint32_t kBuckets = kSub * (kMaxBits - kSubBits + 1);  // 1152

  [[nodiscard]] static constexpr std::uint32_t index_of(std::uint64_t v) {
    if (v < kSub) return static_cast<std::uint32_t>(v);
    std::uint32_t h = 63u - static_cast<std::uint32_t>(std::countl_zero(v));
    if (h >= kMaxBits) {  // clamp into the top bucket
      h = kMaxBits - 1;
      v = (std::uint64_t{1} << kMaxBits) - 1;
    }
    const auto sub = static_cast<std::uint32_t>((v >> (h - kSubBits)) & (kSub - 1));
    return kSub + (h - kSubBits) * kSub + sub;
  }

  /// Smallest value mapping to `index`.
  [[nodiscard]] static constexpr std::uint64_t lower_bound(std::uint32_t index) {
    if (index < kSub) return index;
    const std::uint32_t exp = index / kSub - 1;
    const std::uint32_t sub = index % kSub;
    return static_cast<std::uint64_t>(kSub + sub) << exp;
  }

  /// Bucket width (number of distinct values collapsing into `index`).
  [[nodiscard]] static constexpr std::uint64_t width_of(std::uint32_t index) {
    return index < kSub ? 1 : std::uint64_t{1} << (index / kSub - 1);
  }

  /// The value a bucket reports for everything it absorbed (midpoint).
  [[nodiscard]] static constexpr std::uint64_t representative(std::uint32_t index) {
    return lower_bound(index) + width_of(index) / 2;
  }
};

/// Percentile over any indexable bucket-count sequence laid out per
/// HdrLayout. `p` in [0, 1]; nearest-rank, so p=0 is the smallest recorded
/// bucket and p=1 the largest.
template <typename Counts>
[[nodiscard]] std::uint64_t hdr_percentile(const Counts& counts, std::uint64_t total, double p) {
  if (total == 0) return 0;
  auto rank = static_cast<std::uint64_t>(p * static_cast<double>(total) + 0.5);
  if (rank < 1) rank = 1;
  if (rank > total) rank = total;
  std::uint64_t cum = 0;
  for (std::uint32_t i = 0; i < HdrLayout::kBuckets; ++i) {
    cum += counts[i];
    if (cum >= rank) return HdrLayout::representative(i);
  }
  return HdrLayout::representative(HdrLayout::kBuckets - 1);
}

/// Plain single-threaded histogram value type (copyable; buckets allocated on
/// first record so an idle instance costs three words).
class HdrHistogram {
 public:
  void record(std::uint64_t value) {
    if (counts_.empty()) counts_.assign(HdrLayout::kBuckets, 0);
    ++counts_[HdrLayout::index_of(value)];
    ++count_;
    sum_ += value;
    if (value > max_) max_ = value;
  }

  void reset() {
    counts_.clear();
    count_ = 0;
    sum_ = 0;
    max_ = 0;
  }

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] std::uint64_t sum() const { return sum_; }
  [[nodiscard]] std::uint64_t max() const { return max_; }
  [[nodiscard]] double mean() const {
    return count_ == 0 ? 0.0 : static_cast<double>(sum_) / static_cast<double>(count_);
  }
  [[nodiscard]] std::uint64_t percentile(double p) const {
    return counts_.empty() ? 0 : hdr_percentile(counts_, count_, p);
  }

 private:
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t max_ = 0;
};

}  // namespace leopard::obs
