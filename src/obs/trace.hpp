// Sampled request-stage tracer: timestamps the Table IV pipeline stages of a
// request on the wire path and summarizes them as per-stage histograms, with
// a fixed-size ring of complete spans dumpable via /statusz?traces=1.
//
// Stage boundaries (all on ONE replica's clock — the datablock maker's — so
// the arithmetic never mixes process epochs; SocketEnv clocks are relative to
// each process's own start and do NOT compare across processes):
//
//   ingress   request enters the maker's mempool (client submit, as locally
//             observable)
//   created   the maker batches it into a datablock       → generation stage
//   linked    the maker receives the BFTblock linking it  → dissemination
//   executed  the maker executes the linking block        → agreement
//
// Per-stage histograms are recorded for EVERY maker-owned request (the
// duration inputs ride on hooks the replica already fires); the mutex-guarded
// span stash and ring are touched only for the 1-in-`sample_every` requests
// selected by a deterministic hash of (client_id, seq) — the same request is
// sampled at every replica, so cross-node dumps line up.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/metrics.hpp"

namespace leopard::obs {

class JsonWriter;

class StageTracer {
 public:
  struct Options {
    std::uint32_t sample_every = 64;  // 1 = every request, 0 = spans disabled
    std::size_t ring_capacity = 256;  // completed spans kept for dumping
    std::string labels;               // label body for the stage histograms
  };

  /// A completed request trace; times are env-clock nanoseconds.
  struct Span {
    std::uint64_t client_id = 0;
    std::uint64_t seq = 0;
    std::int64_t ingress_ns = 0;
    std::int64_t created_ns = 0;
    std::int64_t linked_ns = 0;
    std::int64_t executed_ns = 0;
  };

  StageTracer(Registry& registry, Options opts);

  /// Deterministic sampling decision — identical on every replica.
  [[nodiscard]] bool sampled(std::uint64_t client_id, std::uint64_t seq) const;

  /// The maker batched (client_id, seq) into a datablock.
  void on_generated(std::uint64_t client_id, std::uint64_t seq, std::int64_t ingress_ns,
                    std::int64_t created_ns);
  /// The maker executed the block linking (client_id, seq)'s datablock.
  void on_executed(std::uint64_t client_id, std::uint64_t seq, std::int64_t created_ns,
                   std::int64_t linked_ns, std::int64_t executed_ns);

  /// {"sample_every":N,"observed":N,"spans":[...]} — newest span last.
  void write_json(JsonWriter& w) const;

  [[nodiscard]] const Options& options() const { return opts_; }

  // Stage histogram handles (pass to Registry::histogram_snapshot for
  // percentile summaries in shutdown reports).
  [[nodiscard]] const Histogram& generation_hist() const { return generation_; }
  [[nodiscard]] const Histogram& dissemination_hist() const { return dissemination_; }
  [[nodiscard]] const Histogram& agreement_hist() const { return agreement_; }
  [[nodiscard]] const Histogram& total_hist() const { return total_; }

 private:
  [[nodiscard]] static std::uint64_t mix(std::uint64_t client_id, std::uint64_t seq);

  Options opts_;
  Histogram generation_;     // ingress → created
  Histogram dissemination_;  // created → linked
  Histogram agreement_;      // linked → executed
  Histogram total_;          // ingress → executed (sampled spans only)
  Counter observed_;         // requests seen at generation
  Counter spans_;            // spans completed into the ring

  // Sampled-request state. The stash holds ingress stamps between the two
  // hooks; bounded so a request that never executes (view-change churn,
  // crash) cannot grow it without limit.
  mutable std::mutex mu_;
  std::unordered_map<std::uint64_t, std::int64_t> stash_;  // mix(id,seq) → ingress
  std::size_t stash_cap_;
  std::vector<Span> ring_;
  std::size_t ring_next_ = 0;
  std::uint64_t ring_seen_ = 0;
};

}  // namespace leopard::obs
