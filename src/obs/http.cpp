#include "obs/http.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace leopard::obs {

namespace {

const char* status_text(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    default: return "Error";
  }
}

}  // namespace

std::string query_param(std::string_view query, std::string_view key) {
  std::size_t pos = 0;
  while (pos < query.size()) {
    auto end = query.find('&', pos);
    if (end == std::string_view::npos) end = query.size();
    const auto pair = query.substr(pos, end - pos);
    const auto eq = pair.find('=');
    const auto k = eq == std::string_view::npos ? pair : pair.substr(0, eq);
    if (k == key) {
      return std::string(eq == std::string_view::npos ? std::string_view{}
                                                      : pair.substr(eq + 1));
    }
    pos = end + 1;
  }
  return {};
}

HttpServer::HttpServer(net::EventLoop& loop, Options opts) : loop_(loop) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) return;
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(opts.port);
  if (::inet_pton(AF_INET, opts.host.c_str(), &addr.sin_addr) != 1 ||
      ::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 16) != 0) {
    ::close(fd);
    return;
  }
  socklen_t len = sizeof(addr);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  listen_fd_ = fd;
  loop_.add(fd, net::EventLoop::kReadable, [this](std::uint32_t) { on_accept(); });
}

HttpServer::~HttpServer() {
  for (const auto& [fd, client] : clients_) {
    loop_.remove(fd);
    ::close(fd);
    (void)client;
  }
  clients_.clear();
  if (listen_fd_ >= 0) {
    loop_.remove(listen_fd_);
    ::close(listen_fd_);
  }
}

void HttpServer::handle(std::string path, Handler handler) {
  handlers_[std::move(path)] = std::move(handler);
}

void HttpServer::serve_registry(Registry& registry) {
  handle("/metrics", [&registry](std::string_view) {
    Response r;
    r.content_type = "text/plain; version=0.0.4; charset=utf-8";
    r.body = registry.render_prometheus();
    return r;
  });
  handle("/healthz", [](std::string_view) {
    Response r;
    r.body = "ok\n";
    return r;
  });
  if (handlers_.find("/statusz") == handlers_.end()) {
    handle("/statusz", [&registry](std::string_view) {
      JsonWriter w;
      registry.write_statusz(w);
      Response r;
      r.content_type = "application/json";
      r.body = w.str();
      return r;
    });
  }
}

void HttpServer::on_accept() {
  for (;;) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    clients_.emplace(fd, Client{});
    loop_.add(fd, net::EventLoop::kReadable,
              [this, fd](std::uint32_t events) { on_client(fd, events); });
  }
}

void HttpServer::close_client(int fd) {
  loop_.remove(fd);
  ::close(fd);
  clients_.erase(fd);
}

void HttpServer::on_client(int fd, std::uint32_t events) {
  const auto it = clients_.find(fd);
  if (it == clients_.end()) return;
  Client& client = it->second;

  if ((events & net::EventLoop::kError) != 0) {
    close_client(fd);
    return;
  }

  if (!client.responding && (events & net::EventLoop::kReadable) != 0) {
    char buf[4096];
    for (;;) {
      const auto n = ::read(fd, buf, sizeof(buf));
      if (n > 0) {
        client.in.append(buf, static_cast<std::size_t>(n));
        if (client.in.size() > kMaxRequestBytes) {
          close_client(fd);
          return;
        }
        continue;
      }
      if (n == 0) {  // EOF before a full request
        close_client(fd);
        return;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      close_client(fd);
      return;
    }
    if (client.in.find("\r\n\r\n") != std::string::npos ||
        client.in.find("\n\n") != std::string::npos) {
      respond(fd, client);  // may close and invalidate `client`
      return;
    }
  }

  if ((events & net::EventLoop::kWritable) != 0 && client.responding) {
    while (client.sent < client.out.size()) {
      const auto n =
          ::write(fd, client.out.data() + client.sent, client.out.size() - client.sent);
      if (n > 0) {
        client.sent += static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
      close_client(fd);
      return;
    }
    close_client(fd);  // HTTP/1.0: close after the response
  }
}

void HttpServer::respond(int fd, Client& client) {
  // Request line: METHOD SP path[?query] SP version.
  Response resp;
  const auto line_end = client.in.find_first_of("\r\n");
  const std::string_view line(client.in.data(),
                              line_end == std::string::npos ? client.in.size() : line_end);
  const auto sp1 = line.find(' ');
  const auto sp2 = sp1 == std::string_view::npos ? std::string_view::npos
                                                 : line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos) {
    resp.status = 400;
    resp.body = "bad request\n";
  } else if (line.substr(0, sp1) != "GET") {
    resp.status = 405;
    resp.body = "only GET is served here\n";
  } else {
    auto target = line.substr(sp1 + 1, sp2 - sp1 - 1);
    std::string_view query;
    if (const auto q = target.find('?'); q != std::string_view::npos) {
      query = target.substr(q + 1);
      target = target.substr(0, q);
    }
    const auto handler = handlers_.find(std::string(target));
    if (handler == handlers_.end()) {
      resp.status = 404;
      resp.body = "unknown path\n";
    } else {
      resp = handler->second(query);
    }
  }

  char header[256];
  std::snprintf(header, sizeof(header),
                "HTTP/1.0 %d %s\r\nContent-Type: %s\r\nContent-Length: %zu\r\n"
                "Connection: close\r\n\r\n",
                resp.status, status_text(resp.status), resp.content_type.c_str(),
                resp.body.size());
  client.out = header;
  client.out += resp.body;
  client.responding = true;
  client.in.clear();
  loop_.modify(fd, net::EventLoop::kWritable);
  on_client(fd, net::EventLoop::kWritable);  // try the write immediately
}

}  // namespace leopard::obs
