// chaos_proxy: a standalone TCP forwarder that degrades links on purpose.
//
//   chaos_proxy --route 5100:127.0.0.1:4100 [--route ...]
//               [--delay-ms N] [--jitter-ms N] [--drop-pct P] [--reorder-pct P]
//               [--rate-kbps N] [--partition LPORT@START_MS+DUR_MS ...]
//               [--seed N] [--run-for SEC] [--report FILE]
//
// Each --route listens on 127.0.0.1:LPORT and forwards every accepted
// connection to HOST:PORT, both directions, chunk by chunk through a delay
// queue:
//
//   delay/jitter — every chunk is released `delay ± jitter` after it arrived
//     (deterministic jitter from --seed);
//   drop         — a chunk is discarded with probability P%. NOTE: dropping
//     bytes from a TCP stream desyncs the leopard wire framing; the receiving
//     node counts a decode error, drops the connection, and reconnects —
//     exactly the failure mode the transport is built to absorb;
//   reorder      — with probability P% a chunk swaps with its queue
//     predecessor (same byte-desync caveat as drop);
//   rate         — a per-direction token bucket caps throughput at N kbit/s,
//     so outbound buffers upstream of the proxy fill and shed;
//   partition    — at START_MS every connection through LPORT is severed and
//     new ones are refused until START_MS+DUR_MS (repeat the flag for
//     flapping schedules). Healing is just accepting again: the cluster's
//     own reconnect machinery restores the links.
//
// The proxy is protocol-agnostic (it never parses frames) and exits with a
// key=value stats report on SIGTERM/SIGINT or when --run-for elapses.
#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <deque>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "net/event_loop.hpp"
#include "net/timer_wheel.hpp"
#include "obs/http.hpp"
#include "obs/metrics.hpp"
#include "sim/time.hpp"
#include "util/rng.hpp"

namespace {

namespace lp = leopard;

volatile std::sig_atomic_t g_stop = 0;
void on_signal(int) { g_stop = 1; }

constexpr std::size_t kReadChunk = 16 * 1024;
/// A direction whose delay queue exceeds this is torn down: the proxy bounds
/// its own memory instead of absorbing an unbounded backlog.
constexpr std::size_t kMaxHeldBytes = 32u << 20;

struct Options {
  struct RouteSpec {
    std::uint16_t lport = 0;
    std::string host;
    std::uint16_t port = 0;
  };
  struct PartitionSpec {
    std::uint16_t lport = 0;
    lp::sim::SimTime start = 0;
    lp::sim::SimTime duration = 0;
  };

  std::vector<RouteSpec> routes;
  std::vector<PartitionSpec> partitions;
  lp::sim::SimTime delay = 0;
  lp::sim::SimTime jitter = 0;
  double drop_pct = 0;
  double reorder_pct = 0;
  std::uint64_t rate_kbps = 0;  // 0 = uncapped
  std::uint64_t seed = 1;
  double run_for = -1;
  std::string report_path;
  std::string metrics_addr;  // HOST:PORT (or :PORT / PORT); empty disables
};

struct Stats {
  std::uint64_t links_opened = 0;
  std::uint64_t links_closed = 0;
  std::uint64_t chunks_forwarded = 0;
  std::uint64_t bytes_forwarded = 0;
  std::uint64_t chunks_dropped = 0;
  std::uint64_t bytes_dropped = 0;
  std::uint64_t chunks_reordered = 0;
  std::uint64_t accepts_refused = 0;
  std::uint64_t partitions_started = 0;
  std::uint64_t partitions_healed = 0;
};

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage: chaos_proxy --route LPORT:HOST:PORT [--route ...]\n"
               "                   [--delay-ms N] [--jitter-ms N] [--drop-pct P]\n"
               "                   [--reorder-pct P] [--rate-kbps N]\n"
               "                   [--partition LPORT@START_MS+DUR_MS ...]\n"
               "                   [--seed N] [--run-for SEC] [--report FILE]\n"
               "                   [--metrics-addr HOST:PORT]\n");
  std::exit(2);
}

Options parse_args(int argc, char** argv) {
  Options opts;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage();
      return argv[++i];
    };
    if (arg == "--route") {
      const std::string spec = next();
      const auto c1 = spec.find(':');
      const auto c2 = spec.rfind(':');
      if (c1 == std::string::npos || c2 == c1) usage();
      Options::RouteSpec r;
      r.lport = static_cast<std::uint16_t>(std::strtoul(spec.substr(0, c1).c_str(), nullptr, 10));
      r.host = spec.substr(c1 + 1, c2 - c1 - 1);
      r.port = static_cast<std::uint16_t>(std::strtoul(spec.substr(c2 + 1).c_str(), nullptr, 10));
      if (r.lport == 0 || r.port == 0 || r.host.empty()) usage();
      opts.routes.push_back(std::move(r));
    } else if (arg == "--partition") {
      unsigned lport = 0;
      unsigned long long start_ms = 0;
      unsigned long long dur_ms = 0;
      if (std::sscanf(next(), "%u@%llu+%llu", &lport, &start_ms, &dur_ms) != 3 || lport == 0 ||
          dur_ms == 0) {
        usage();
      }
      opts.partitions.push_back(
          {static_cast<std::uint16_t>(lport),
           static_cast<lp::sim::SimTime>(start_ms) * lp::sim::kMillisecond,
           static_cast<lp::sim::SimTime>(dur_ms) * lp::sim::kMillisecond});
    } else if (arg == "--delay-ms") {
      opts.delay = static_cast<lp::sim::SimTime>(std::strtoull(next(), nullptr, 10)) *
                   lp::sim::kMillisecond;
    } else if (arg == "--jitter-ms") {
      opts.jitter = static_cast<lp::sim::SimTime>(std::strtoull(next(), nullptr, 10)) *
                    lp::sim::kMillisecond;
    } else if (arg == "--drop-pct") {
      opts.drop_pct = std::strtod(next(), nullptr);
    } else if (arg == "--reorder-pct") {
      opts.reorder_pct = std::strtod(next(), nullptr);
    } else if (arg == "--rate-kbps") {
      opts.rate_kbps = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--seed") {
      opts.seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--run-for") {
      opts.run_for = std::strtod(next(), nullptr);
    } else if (arg == "--report") {
      opts.report_path = next();
    } else if (arg == "--metrics-addr") {
      opts.metrics_addr = next();
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", std::string(arg).c_str());
      usage();
    }
  }
  if (opts.routes.empty()) usage();
  return opts;
}

void set_nonblocking(int fd) { ::fcntl(fd, F_SETFL, ::fcntl(fd, F_GETFL, 0) | O_NONBLOCK); }

void set_nodelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

class Proxy {
 public:
  Proxy(Options opts) : opts_(std::move(opts)), rng_(opts_.seed) {
    timespec ts{};
    ::clock_gettime(CLOCK_MONOTONIC, &ts);
    epoch_ = static_cast<lp::sim::SimTime>(ts.tv_sec) * lp::sim::kSecond + ts.tv_nsec;
  }

  [[nodiscard]] lp::sim::SimTime now() const {
    timespec ts{};
    ::clock_gettime(CLOCK_MONOTONIC, &ts);
    return static_cast<lp::sim::SimTime>(ts.tv_sec) * lp::sim::kSecond + ts.tv_nsec - epoch_;
  }

  int run() {
    for (auto& spec : opts_.routes) {
      if (!open_route(spec)) return 1;
    }
    if (!setup_metrics()) return 1;
    for (std::size_t i = 0; i < opts_.partitions.size(); ++i) {
      timers_.arm(kPartitionBit | (i << 1), opts_.partitions[i].start);
      timers_.arm(kPartitionBit | (i << 1) | 1,
                  opts_.partitions[i].start + opts_.partitions[i].duration);
    }

    const auto deadline =
        opts_.run_for >= 0 ? lp::sim::from_seconds(opts_.run_for) : lp::sim::SimTime{-1};
    while (g_stop == 0 && (deadline < 0 || now() < deadline)) {
      timers_.advance(now(), [this](std::uint64_t token) { on_timer(token); });
      const auto wake = timers_.next_wake();
      int timeout_ms = 100;
      if (wake >= 0) {
        const auto delta = wake - now();
        timeout_ms = delta <= 0 ? 0 : static_cast<int>(
            std::min<lp::sim::SimTime>(delta / lp::sim::kMillisecond + 1, 100));
      }
      loop_.poll(timeout_ms);
    }
    report();
    return 0;
  }

 private:
  struct Route;
  struct Link;

  /// One forwarding direction of a link: src fd -> delay queue -> dst fd.
  struct Pipe {
    Link* link = nullptr;
    int src = -1;
    int dst = -1;
    std::uint64_t timer_token = 0;
    struct Chunk {
      lp::sim::SimTime release = 0;
      std::vector<std::uint8_t> bytes;
      std::size_t offset = 0;  // written prefix
    };
    std::deque<Chunk> held;
    std::size_t held_bytes = 0;
    lp::sim::SimTime bucket_free_at = 0;  // token-bucket virtual clock
    bool src_eof = false;
  };

  struct Link {
    std::uint64_t id = 0;
    Route* route = nullptr;
    int cfd = -1;  // accepted (cluster-node) side
    int ufd = -1;  // upstream side
    Pipe in;       // cfd -> ufd
    Pipe out;      // ufd -> cfd
  };

  struct Route {
    Options::RouteSpec spec;
    int listen_fd = -1;
    bool partitioned = false;
    std::vector<Link*> links;
  };

  static constexpr std::uint64_t kPartitionBit = 1ull << 62;

  bool open_route(const Options::RouteSpec& spec) {
    const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
    if (fd < 0) return false;
    int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(spec.lport);
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0 ||
        ::listen(fd, 64) != 0) {
      std::fprintf(stderr, "chaos_proxy: cannot listen on 127.0.0.1:%u: %s\n", spec.lport,
                   std::strerror(errno));
      ::close(fd);
      return false;
    }
    auto route = std::make_unique<Route>();
    route->spec = spec;
    route->listen_fd = fd;
    Route* r = route.get();
    routes_.push_back(std::move(route));
    loop_.add(fd, lp::net::EventLoop::kReadable, [this, r](std::uint32_t) { on_accept(*r); });
    return true;
  }

  void on_accept(Route& route) {
    for (;;) {
      const int cfd = ::accept4(route.listen_fd, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (cfd < 0) return;
      if (route.partitioned) {
        ++stats_.accepts_refused;
        ::close(cfd);
        continue;
      }
      // Loopback connect is effectively instant; a refused upstream simply
      // closes the accepted side (the dialer backs off and retries).
      const int ufd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
      sockaddr_in addr{};
      addr.sin_family = AF_INET;
      addr.sin_port = htons(route.spec.port);
      if (ufd < 0 || ::inet_pton(AF_INET, route.spec.host.c_str(), &addr.sin_addr) != 1 ||
          ::connect(ufd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
        if (ufd >= 0) ::close(ufd);
        ::close(cfd);
        continue;
      }
      set_nonblocking(ufd);
      set_nodelay(cfd);
      set_nodelay(ufd);

      auto link = std::make_unique<Link>();
      link->id = next_link_id_++;
      link->route = &route;
      link->cfd = cfd;
      link->ufd = ufd;
      link->in = Pipe{link.get(), cfd, ufd, link->id * 4, {}, 0, 0, false};
      link->out = Pipe{link.get(), ufd, cfd, link->id * 4 + 1, {}, 0, 0, false};
      Link* l = link.get();
      route.links.push_back(l);
      links_.emplace_back(std::move(link));
      ++stats_.links_opened;

      loop_.add(cfd, lp::net::EventLoop::kReadable,
                [this, l](std::uint32_t ev) { on_io(*l, l->in, ev); });
      loop_.add(ufd, lp::net::EventLoop::kReadable,
                [this, l](std::uint32_t ev) { on_io(*l, l->out, ev); });
    }
  }

  void on_io(Link& link, Pipe& pipe, std::uint32_t events) {
    if ((events & lp::net::EventLoop::kError) != 0) {
      close_link(link);
      return;
    }
    std::uint8_t buf[kReadChunk];
    for (;;) {
      const auto got = ::read(pipe.src, buf, sizeof(buf));
      if (got < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        close_link(link);
        return;
      }
      if (got == 0) {
        pipe.src_eof = true;
        maybe_finish(link, pipe);
        return;
      }
      ingest(link, pipe, buf, static_cast<std::size_t>(got));
      if (pipe.held_bytes > kMaxHeldBytes) {
        close_link(link);  // bounded memory: a hopeless backlog tears down
        return;
      }
    }
  }

  void ingest(Link& link, Pipe& pipe, const std::uint8_t* data, std::size_t len) {
    if (opts_.drop_pct > 0 && rng_.uniform_real() * 100.0 < opts_.drop_pct) {
      ++stats_.chunks_dropped;
      stats_.bytes_dropped += len;
      return;
    }
    auto release = now() + opts_.delay;
    if (opts_.jitter > 0) {
      release += static_cast<lp::sim::SimTime>(rng_.uniform_real() * 2.0 *
                                               static_cast<double>(opts_.jitter)) -
                 opts_.jitter;
    }
    if (opts_.rate_kbps > 0) {
      // Token bucket as a virtual clock: each byte occupies 8/rate seconds of
      // line time; a chunk releases no earlier than the line frees up.
      const auto line_time = static_cast<lp::sim::SimTime>(
          (static_cast<double>(len) * 8.0 * 1e9) / (static_cast<double>(opts_.rate_kbps) * 1e3));
      pipe.bucket_free_at = std::max(pipe.bucket_free_at, now()) + line_time;
      release = std::max(release, pipe.bucket_free_at);
    }
    // FIFO per direction: a chunk never releases before its predecessor.
    if (!pipe.held.empty()) release = std::max(release, pipe.held.back().release);

    Pipe::Chunk chunk;
    chunk.release = release;
    chunk.bytes.assign(data, data + len);
    pipe.held_bytes += len;
    pipe.held.push_back(std::move(chunk));

    if (opts_.reorder_pct > 0 && pipe.held.size() >= 2 &&
        rng_.uniform_real() * 100.0 < opts_.reorder_pct) {
      auto& a = pipe.held[pipe.held.size() - 2];
      auto& b = pipe.held.back();
      std::swap(a.bytes, b.bytes);
      std::swap(a.offset, b.offset);
      ++stats_.chunks_reordered;
    }
    arm_pipe(pipe);
  }

  void arm_pipe(Pipe& pipe) {
    if (!pipe.held.empty()) timers_.arm(pipe.timer_token, pipe.held.front().release);
  }

  void on_timer(std::uint64_t token) {
    if ((token & kPartitionBit) != 0) {
      const std::size_t idx = (token & ~kPartitionBit) >> 1;
      const bool heal = (token & 1) != 0;
      apply_partition(opts_.partitions[idx], heal);
      return;
    }
    // Pipe timer: find the live link it belongs to (links are few; a map
    // would outlive closed links anyway).
    for (auto& link : links_) {
      if (link->in.timer_token == token) {
        drain(*link, link->in);
        return;
      }
      if (link->out.timer_token == token) {
        drain(*link, link->out);
        return;
      }
    }
  }

  void drain(Link& link, Pipe& pipe) {
    const auto t = now();
    while (!pipe.held.empty() && pipe.held.front().release <= t) {
      auto& front = pipe.held.front();
      const auto wrote =
          ::write(pipe.dst, front.bytes.data() + front.offset, front.bytes.size() - front.offset);
      if (wrote < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
          // Receiver backpressure: retry on the next tick rather than adding
          // writability plumbing — pacing is timer-driven anyway.
          timers_.arm(pipe.timer_token, t + lp::sim::kMillisecond);
          return;
        }
        close_link(link);
        return;
      }
      front.offset += static_cast<std::size_t>(wrote);
      if (front.offset < front.bytes.size()) {
        timers_.arm(pipe.timer_token, t + lp::sim::kMillisecond);
        return;
      }
      pipe.held_bytes -= front.bytes.size();
      stats_.bytes_forwarded += front.bytes.size();
      ++stats_.chunks_forwarded;
      pipe.held.pop_front();
    }
    arm_pipe(pipe);
    maybe_finish(link, pipe);
  }

  void maybe_finish(Link& link, Pipe& pipe) {
    if (pipe.src_eof && pipe.held.empty()) {
      // Half-close propagates: the peer sees EOF once the queue drains.
      ::shutdown(pipe.dst, SHUT_WR);
      if (link.in.src_eof && link.in.held.empty() && link.out.src_eof && link.out.held.empty()) {
        close_link(link);
      }
    }
  }

  void close_link(Link& link) {
    timers_.cancel(link.in.timer_token);
    timers_.cancel(link.out.timer_token);
    if (loop_.watching(link.cfd)) loop_.remove(link.cfd);
    if (loop_.watching(link.ufd)) loop_.remove(link.ufd);
    ::close(link.cfd);
    ::close(link.ufd);
    auto& siblings = link.route->links;
    siblings.erase(std::remove(siblings.begin(), siblings.end(), &link), siblings.end());
    ++stats_.links_closed;
    const auto it = std::find_if(links_.begin(), links_.end(),
                                 [&](const auto& l) { return l.get() == &link; });
    if (it != links_.end()) links_.erase(it);
  }

  void apply_partition(const Options::PartitionSpec& spec, bool heal) {
    for (auto& route : routes_) {
      if (route->spec.lport != spec.lport) continue;
      route->partitioned = !heal;
      if (!heal) {
        ++stats_.partitions_started;
        while (!route->links.empty()) close_link(*route->links.front());
      } else {
        ++stats_.partitions_healed;
      }
    }
  }

  void report() {
    std::string out;
    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "role=chaos_proxy routes=%zu links_opened=%llu links_closed=%llu\n"
                  "chunks_forwarded=%llu bytes_forwarded=%llu chunks_dropped=%llu "
                  "bytes_dropped=%llu chunks_reordered=%llu\n"
                  "accepts_refused=%llu partitions_started=%llu partitions_healed=%llu\n",
                  routes_.size(), static_cast<unsigned long long>(stats_.links_opened),
                  static_cast<unsigned long long>(stats_.links_closed),
                  static_cast<unsigned long long>(stats_.chunks_forwarded),
                  static_cast<unsigned long long>(stats_.bytes_forwarded),
                  static_cast<unsigned long long>(stats_.chunks_dropped),
                  static_cast<unsigned long long>(stats_.bytes_dropped),
                  static_cast<unsigned long long>(stats_.chunks_reordered),
                  static_cast<unsigned long long>(stats_.accepts_refused),
                  static_cast<unsigned long long>(stats_.partitions_started),
                  static_cast<unsigned long long>(stats_.partitions_healed));
    out += buf;
    std::fputs(out.c_str(), stdout);
    std::fflush(stdout);
    if (!opts_.report_path.empty()) {
      std::ofstream f(opts_.report_path);
      f << out;
    }
  }

  /// Binds the /metrics endpoint when --metrics-addr is set. The proxy's
  /// fault counters become live scrape targets, so an experiment can watch
  /// drops/reorders/partitions while the cluster runs through the proxy.
  bool setup_metrics() {
    if (opts_.metrics_addr.empty()) return true;
    lp::obs::HttpServer::Options hopts;
    const auto& addr = opts_.metrics_addr;
    const auto colon = addr.rfind(':');
    if (colon == std::string::npos) {
      hopts.port = static_cast<std::uint16_t>(std::strtoul(addr.c_str(), nullptr, 10));
    } else {
      if (colon > 0) hopts.host = addr.substr(0, colon);
      hopts.port =
          static_cast<std::uint16_t>(std::strtoul(addr.c_str() + colon + 1, nullptr, 10));
    }
    http_ = std::make_unique<lp::obs::HttpServer>(loop_, hopts);
    if (!http_->listening()) {
      std::fprintf(stderr, "chaos_proxy: cannot bind --metrics-addr %s\n", addr.c_str());
      return false;
    }
    auto& reg = lp::obs::Registry::global();
    const struct {
      const char* name;
      const char* help;
      const std::uint64_t* field;
    } kCounters[] = {
        {"leopard_proxy_links_opened_total", "Accepted client links", &stats_.links_opened},
        {"leopard_proxy_links_closed_total", "Links torn down", &stats_.links_closed},
        {"leopard_proxy_chunks_forwarded_total", "Chunks relayed", &stats_.chunks_forwarded},
        {"leopard_proxy_bytes_forwarded_total", "Bytes relayed", &stats_.bytes_forwarded},
        {"leopard_proxy_chunks_dropped_total", "Chunks dropped by fault injection",
         &stats_.chunks_dropped},
        {"leopard_proxy_bytes_dropped_total", "Bytes dropped by fault injection",
         &stats_.bytes_dropped},
        {"leopard_proxy_chunks_reordered_total", "Chunks delivered out of order",
         &stats_.chunks_reordered},
        {"leopard_proxy_accepts_refused_total", "Accepts refused while partitioned",
         &stats_.accepts_refused},
        {"leopard_proxy_partitions_started_total", "Partition windows opened",
         &stats_.partitions_started},
        {"leopard_proxy_partitions_healed_total", "Partition windows closed",
         &stats_.partitions_healed},
    };
    for (const auto& c : kCounters) {
      reg.counter_fn(c.name, c.help, {},
                     [field = c.field] { return static_cast<double>(*field); });
    }
    reg.gauge_fn("leopard_proxy_routes", "Configured listen routes", {},
                 [this] { return static_cast<double>(routes_.size()); });
    reg.gauge_fn("leopard_proxy_live_links", "Currently open links", {},
                 [this] { return static_cast<double>(links_.size()); });
    http_->serve_registry(reg);
    return true;
  }

  Options opts_;
  lp::util::Rng rng_;
  lp::net::EventLoop loop_;
  lp::net::TimerWheel timers_;
  lp::sim::SimTime epoch_ = 0;
  std::vector<std::unique_ptr<Route>> routes_;
  std::vector<std::unique_ptr<Link>> links_;
  std::uint64_t next_link_id_ = 1;
  Stats stats_;
  std::unique_ptr<lp::obs::HttpServer> http_;
};

}  // namespace

int main(int argc, char** argv) {
  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  std::signal(SIGPIPE, SIG_IGN);
  Proxy proxy(parse_args(argc, argv));
  return proxy.run();
}
