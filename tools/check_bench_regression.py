#!/usr/bin/env python3
"""Compare a bench JSON record against its committed baseline.

Understands four record families, selected by the record's "bench" field:
  hotpath         — bench_hotpath (BENCH_hotpath.json baseline)
  erasure_kernel  — bench_erasure_kernel (BENCH_erasure.json baseline)
  shard           — bench_shard (BENCH_shard.json baseline)
  wire            — bench_wire (BENCH_wire.json baseline)

Only machine-portable *ratio* metrics are compared (speedups of one kernel
over another on the same machine in the same run); absolute MB/s, events/s,
and wall-clock numbers vary across runner hardware and are recorded purely
as trajectory data.

Policy: a metric fails when it regresses more than TOLERANCE below the
committed baseline AND also falls below its hard acceptance floor (the
floors the benches themselves enforce). The floor override keeps noisy
shared runners from flagging a run that still meets the PR's acceptance
criteria.

Usage: check_bench_regression.py BASELINE.json CURRENT.json
Exit status: 0 ok, 1 regression, 2 usage/parse error.
"""

import json
import sys

TOLERANCE = 0.30

# bench name -> [(json path, hard acceptance floor or None[, min hw threads])]
# A third tuple element gates the metric on parallel hardware: when either
# record's machine has fewer hardware threads, the comparison is skipped —
# a 1-core runner measures handoff overhead, not scaling, and its ~0.9x
# "speedup" would poison the trajectory either as baseline or as current.
METRIC_SETS = {
    "hotpath": [
        ("sha256.speedup_one_shot", 4.0),
        ("sha256.speedup_hash_many", None),
        ("sha256_wide.speedup_wide", 1.5),
        ("hmac.speedup", None),
        ("vote_combine.speedup", None),
        ("event_queue.speedup", 5.0),
        ("gf256.avx2_vs_ssse3", 1.5),
    ],
    "erasure_kernel": [
        ("acceptance.speedup", 10.0),
        ("parallel.speedup_w4", 2.0, 4),
        # GFNI vs AVX2 on the same machine in the same run; null (skipped)
        # where the ISA is absent.
        ("gfni.vs_avx2", None),
    ],
    "shard": [
        # Simulated-time ratios (deterministic, machine-portable). The
        # loopback kreq/s in the same record are single-host wall clock and
        # deliberately not gated.
        ("scaling.sim_speedup_s2", 1.5),
        ("scaling.sim_speedup_s4", 3.0),
    ],
    "obs": [
        # 50 ns/op record ceiling expressed as a floor: 20 Mops/thread. The
        # bench also enforces this itself unless run with --no-acceptance.
        ("record.histogram_Mops", 20.0),
        ("record.counter_Mops", 20.0),
        # Per-thread-shard registry vs one shared fetch_add histogram; only a
        # scaling statement with real parallelism underneath.
        ("contention.shard_speedup", 1.5, 4),
    ],
    "wire": [
        # Exact arithmetic, not a timing: one serialization fanned to 15
        # peer queues. Any copy-per-peer regression drops this to ~1.
        ("zero_copy.fanout_per_copy", 15.0),
        # Loopback cluster at --io-threads 4 vs 1; single-host wall clock,
        # only meaningful with >= 4 hardware threads.
        ("io_threads.speedup_io4", 1.5, 4),
    ],
}


def hw_threads(record):
    """Hardware-thread count a record was produced on (None when unrecorded)."""
    for path in ("hw_threads", "parallel.hw_threads"):
        n = lookup(record, path)
        if n is not None:
            return n
    return None


def lookup(record, dotted):
    node = record
    for part in dotted.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return node if isinstance(node, (int, float)) else None


def main(argv):
    if len(argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    try:
        with open(argv[1]) as f:
            baseline = json.load(f)
        with open(argv[2]) as f:
            current = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: {e}", file=sys.stderr)
        return 2

    bench = current.get("bench")
    if bench != baseline.get("bench"):
        print(f"error: bench mismatch (baseline={baseline.get('bench')} current={bench})",
              file=sys.stderr)
        return 2
    metrics = METRIC_SETS.get(bench)
    if metrics is None:
        print(f"error: unknown bench record '{bench}'", file=sys.stderr)
        return 2

    failures = []
    print(f"bench: {bench}")
    print(f"{'metric':<28} {'baseline':>10} {'current':>10} {'min ok':>10}  verdict")
    for entry in metrics:
        path, floor = entry[0], entry[1]
        min_hw = entry[2] if len(entry) > 2 else None
        base = lookup(baseline, path)
        cur = lookup(current, path)
        if base is None or cur is None:
            # Kernel not available on one of the machines (e.g. no AVX2), or
            # a section the current invocation skipped: nothing portable to
            # compare.
            print(f"{path:<28} {'-':>10} {'-':>10} {'-':>10}  skipped")
            continue
        if min_hw is not None:
            cores = [hw_threads(baseline), hw_threads(current)]
            if any(c is None or c < min_hw for c in cores):
                print(f"{path:<28} {base:>10.2f} {cur:>10.2f} {'-':>10}  "
                      f"skipped (< {min_hw} hw threads)")
                continue
        min_ok = base * (1.0 - TOLERANCE)
        ok = cur >= min_ok or (floor is not None and cur >= floor)
        verdict = "ok" if ok else "REGRESSION"
        if not ok:
            failures.append(path)
        print(f"{path:<28} {base:>10.2f} {cur:>10.2f} {min_ok:>10.2f}  {verdict}")

    if failures:
        print(f"\nFAILED: {len(failures)} metric(s) regressed >{TOLERANCE:.0%} "
              f"below the committed trajectory: {', '.join(failures)}", file=sys.stderr)
        return 1
    print("\nall tracked metrics within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
