// leopard_node: run one replica of a real-wire Leopard/HotStuff/PBFT cluster,
// or a closed-loop client driver, from a cluster manifest (net/manifest.hpp).
//
// Replica mode (one process per replica):
//
//   leopard_node --manifest cluster.conf --id 2 [--run-for SECONDS]
//
// Hosts the protocol core named by the manifest behind a SocketEnv: real
// nonblocking TCP to every peer, wire framing, timer wheel. Runs until
// SIGINT/SIGTERM (or --run-for elapses), then prints a key=value report:
// executed request count, the Execute-stream fold digest (exec_digest, equal
// across honest replicas), Leopard's state_digest, and transport stats.
//
// Client mode (the throughput driver):
//
//   leopard_node --manifest cluster.conf --client --id 100 --requests 500
//                [--window 64] [--payload 128] [--resubmit-ms 1000]
//                [--timeout SECONDS]
//
// Submits a closed-loop window of requests (Leopard: µ(req)-routed to
// non-leader replicas; baselines: to the leader), waits for every ack, and
// reports achieved kreq/s plus latency. Exits non-zero if the run times out
// before all requests are acked.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>

#include "chaos/interposer.hpp"
#include "core/client.hpp"
#include "core/replica.hpp"
#include "crypto/threshold_sig.hpp"
#include "net/manifest.hpp"
#include "net/socket_env.hpp"
#include "net/wire.hpp"
#include "obs/http.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "protocol/factory.hpp"
#include "shard/mux_env.hpp"
#include "shard/sequencer.hpp"
#include "store/replica_store.hpp"
#include "store/state_sync.hpp"
#include "util/bytes.hpp"
#include "util/worker_pool.hpp"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void on_signal(int) { g_stop = 1; }

struct Args {
  std::string manifest_path;
  leopard::sim::NodeId id = 0;
  bool id_set = false;
  bool client = false;
  double run_for = -1;        // replica: seconds before voluntary shutdown
  double timeout = 120;       // client: give-up deadline
  std::uint64_t requests = 0; // client: total requests to drive
  std::uint32_t window = 64;  // client: closed-loop window
  std::uint32_t payload = 0;  // client: payload override (0 = manifest value)
  std::uint32_t resubmit_ms = 1000;
  std::uint32_t shards = 0;   // parallel protocol instances (0 = manifest value)
  std::uint32_t io_threads = 1;  // worker threads for shard instances (sharded mode)
  std::string report_path;    // optional: also write the report to a file

  // Observability: HOST:PORT (or :PORT / PORT) for /metrics, /statusz,
  // /healthz; empty disables the endpoint. trace_sample is the stage tracer's
  // 1-in-N span sampling (0 = histograms only, no span ring).
  std::string metrics_addr;
  std::uint32_t trace_sample = 64;

  // Byzantine behaviour (replica mode; empty = honest).
  std::string byzantine;
  std::uint32_t byzantine_lag_ms = 150;

  // Durability (replica mode; empty data_dir = run without persistence).
  std::string data_dir;
  leopard::store::RecoverMode recover = leopard::store::RecoverMode::kStrict;
  leopard::store::FsyncPolicy fsync = leopard::store::FsyncPolicy::kAlways;
  std::uint32_t fsync_interval_ms = 50;
  std::uint64_t snapshot_every = 4096;
};

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --manifest FILE --id ID [--run-for SEC] [--shards S]\n"
               "          [--io-threads N]\n"
               "          [--byzantine equivocate|silence|garbage-shares|laggard]\n"
               "          [--byzantine-lag-ms MS]\n"
               "          [--data-dir DIR] [--recover strict|truncate]\n"
               "          [--fsync always|interval|none] [--fsync-interval-ms MS]\n"
               "          [--snapshot-every N]\n"
               "          [--metrics-addr HOST:PORT] [--trace-sample N]\n"
               "       %s --manifest FILE --id ID --client --requests N [--window W]\n"
               "          [--payload BYTES] [--resubmit-ms MS] [--timeout SEC]\n"
               "          [--shards S] [--metrics-addr HOST:PORT]\n"
               "       (see docs/DEPLOY.md)\n",
               argv0, argv0);
  std::exit(2);
}

Args parse_args(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--manifest") {
      args.manifest_path = next();
    } else if (arg == "--id") {
      args.id = static_cast<leopard::sim::NodeId>(std::strtoul(next(), nullptr, 10));
      args.id_set = true;
    } else if (arg == "--client") {
      args.client = true;
    } else if (arg == "--run-for") {
      args.run_for = std::strtod(next(), nullptr);
    } else if (arg == "--timeout") {
      args.timeout = std::strtod(next(), nullptr);
    } else if (arg == "--requests") {
      args.requests = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--window") {
      args.window = static_cast<std::uint32_t>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--payload") {
      args.payload = static_cast<std::uint32_t>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--resubmit-ms") {
      args.resubmit_ms = static_cast<std::uint32_t>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--shards") {
      args.shards = static_cast<std::uint32_t>(std::strtoul(next(), nullptr, 10));
      if (args.shards < 1 || args.shards > leopard::shard::kMaxShards) {
        std::fprintf(stderr, "--shards out of range\n");
        usage(argv[0]);
      }
    } else if (arg == "--io-threads") {
      args.io_threads = static_cast<std::uint32_t>(std::strtoul(next(), nullptr, 10));
      if (args.io_threads < 1 || args.io_threads > 64) {
        std::fprintf(stderr, "--io-threads out of range\n");
        usage(argv[0]);
      }
    } else if (arg == "--report") {
      args.report_path = next();
    } else if (arg == "--metrics-addr") {
      args.metrics_addr = next();
    } else if (arg == "--trace-sample") {
      args.trace_sample = static_cast<std::uint32_t>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--byzantine") {
      args.byzantine = next();
      if (!leopard::chaos::parse_wire_attack(args.byzantine)) {
        std::fprintf(stderr, "unknown --byzantine mode '%s'\n", args.byzantine.c_str());
        usage(argv[0]);
      }
    } else if (arg == "--byzantine-lag-ms") {
      args.byzantine_lag_ms = static_cast<std::uint32_t>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--data-dir") {
      args.data_dir = next();
    } else if (arg == "--recover") {
      const std::string_view mode = next();
      if (mode == "strict") {
        args.recover = leopard::store::RecoverMode::kStrict;
      } else if (mode == "truncate") {
        args.recover = leopard::store::RecoverMode::kTruncate;
      } else {
        std::fprintf(stderr, "--recover must be strict or truncate\n");
        usage(argv[0]);
      }
    } else if (arg == "--fsync") {
      const std::string_view policy = next();
      if (policy == "always") {
        args.fsync = leopard::store::FsyncPolicy::kAlways;
      } else if (policy == "interval") {
        args.fsync = leopard::store::FsyncPolicy::kInterval;
      } else if (policy == "none") {
        args.fsync = leopard::store::FsyncPolicy::kNever;
      } else {
        std::fprintf(stderr, "--fsync must be always, interval, or none\n");
        usage(argv[0]);
      }
    } else if (arg == "--fsync-interval-ms") {
      args.fsync_interval_ms = static_cast<std::uint32_t>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--snapshot-every") {
      args.snapshot_every = std::strtoull(next(), nullptr, 10);
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", std::string(arg).c_str());
      usage(argv[0]);
    }
  }
  if (args.manifest_path.empty() || !args.id_set) usage(argv[0]);
  if (args.client && args.requests == 0) usage(argv[0]);
  return args;
}

void emit_report(const Args& args, const std::string& report) {
  std::fputs(report.c_str(), stdout);
  std::fflush(stdout);
  if (!args.report_path.empty()) {
    std::ofstream out(args.report_path);
    out << report;
  }
}

void print_transport_stats(std::string& report, const leopard::net::SocketEnv& env,
                           std::uint32_t io_threads = 1) {
  const auto& s = env.stats();
  char buf[384];
  std::snprintf(buf, sizeof(buf),
                "frames_sent=%llu frames_received=%llu bytes_sent=%llu "
                "bytes_received=%llu decode_errors=%llu frames_dropped=%llu "
                "connects=%llu accepts=%llu\n",
                static_cast<unsigned long long>(s.frames_sent),
                static_cast<unsigned long long>(s.frames_received),
                static_cast<unsigned long long>(s.bytes_sent),
                static_cast<unsigned long long>(s.bytes_received),
                static_cast<unsigned long long>(s.decode_errors),
                static_cast<unsigned long long>(s.frames_dropped),
                static_cast<unsigned long long>(s.connects),
                static_cast<unsigned long long>(s.accepts));
  report += buf;
  // Zero-copy/io-thread health: payload_copies counts serializations,
  // frames_shared counts broadcast enqueues that aliased an existing body
  // (fanout minus one per broadcast), writev_calls counts sendmsg syscalls.
  std::snprintf(buf, sizeof(buf),
                "io_threads=%u writev_calls=%llu payload_copies=%llu frames_shared=%llu\n",
                io_threads, static_cast<unsigned long long>(s.writev_calls),
                static_cast<unsigned long long>(s.payload_copies),
                static_cast<unsigned long long>(s.frames_shared));
  report += buf;

  // Per-peer attribution of shed frames and reconnect churn ("id:count"
  // pairs, "-" when clean) so attack-load shedding is visible per link.
  std::string shed;
  std::string reconnects;
  for (const auto& [peer, counters] : env.peer_counters()) {
    if (counters.shed_frames > 0) {
      if (!shed.empty()) shed += ',';
      shed += std::to_string(peer) + ":" + std::to_string(counters.shed_frames);
    }
    if (counters.reconnect_attempts > 0) {
      if (!reconnects.empty()) reconnects += ',';
      reconnects += std::to_string(peer) + ":" + std::to_string(counters.reconnect_attempts);
    }
  }
  report += "peer_shed=" + (shed.empty() ? "-" : shed) + "\n";
  report += "peer_reconnects=" + (reconnects.empty() ? "-" : reconnects) + "\n";
}

/// Recomputes a block's canonical digest from its wire frame, mirroring the
/// execute-observer fold below: the cached_digest of a Datablock/Baseline
/// block, the zero digest for anything else, nullopt if the frame is
/// malformed. StateSync uses this to verify transferred entries.
std::optional<leopard::crypto::Digest> digest_of_frame(
    std::span<const std::uint8_t> frame) {
  namespace lp = leopard;
  if (frame.size() < lp::net::kFrameHeaderBytes + 1) return std::nullopt;
  std::uint32_t len = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    len |= static_cast<std::uint32_t>(frame[i]) << (8 * i);
  }
  if (len == 0 || len + lp::net::kFrameHeaderBytes != frame.size()) return std::nullopt;
  const auto type = static_cast<lp::net::MsgType>(frame[4]);
  const auto payload =
      lp::net::decode_payload(type, frame.subspan(lp::net::kFrameHeaderBytes + 1), 0);
  if (payload == nullptr) return std::nullopt;
  if (const auto* db = dynamic_cast<const lp::proto::DatablockMsg*>(payload.get())) {
    return db->cached_digest;
  }
  if (const auto* bb = dynamic_cast<const lp::proto::BaselineBlockMsg*>(payload.get())) {
    return bb->cached_digest;
  }
  return lp::crypto::Digest{};
}

/// The canonical digest of an executed block (what the exec_digest fold and
/// state transfer verify against): the cached digest of a Datablock/Baseline
/// block, the zero digest for anything else.
leopard::crypto::Digest block_digest_of(const leopard::sim::Payload& block) {
  if (const auto* db = dynamic_cast<const leopard::proto::DatablockMsg*>(&block)) {
    return db->cached_digest;
  }
  if (const auto* bb = dynamic_cast<const leopard::proto::BaselineBlockMsg*>(&block)) {
    return bb->cached_digest;
  }
  return {};
}

/// Sizes the process-wide worker pool from the manifest: 0 derives from the
/// machine, 1 keeps the serial path, N pins N lanes.
void size_worker_pool(const leopard::net::Manifest& manifest) {
  std::size_t lanes = manifest.encode_workers;
  if (lanes == 0) {
    const auto hw = std::thread::hardware_concurrency();
    lanes = hw != 0 ? hw : 1;
  }
  leopard::util::WorkerPool::global().resize(lanes);
}

/// "HOST:PORT", ":PORT", or bare "PORT" → listen options.
leopard::obs::HttpServer::Options parse_metrics_addr(const std::string& addr) {
  leopard::obs::HttpServer::Options opts;
  const auto colon = addr.rfind(':');
  if (colon == std::string::npos) {
    opts.port = static_cast<std::uint16_t>(std::strtoul(addr.c_str(), nullptr, 10));
  } else {
    if (colon > 0) opts.host = addr.substr(0, colon);
    opts.port =
        static_cast<std::uint16_t>(std::strtoul(addr.c_str() + colon + 1, nullptr, 10));
  }
  return opts;
}

/// Binds the observability endpoint or returns nullptr when --metrics-addr is
/// unset. A bind failure is fatal: an operator who asked for the endpoint
/// must not silently lose it.
std::unique_ptr<leopard::obs::HttpServer> make_metrics_server(
    const Args& args, leopard::net::SocketEnv& env, bool* failed) {
  *failed = false;
  if (args.metrics_addr.empty()) return nullptr;
  auto http = std::make_unique<leopard::obs::HttpServer>(
      env.loop(), parse_metrics_addr(args.metrics_addr));
  if (!http->listening()) {
    std::fprintf(stderr, "leopard_node: cannot bind --metrics-addr %s\n",
                 args.metrics_addr.c_str());
    *failed = true;
    return nullptr;
  }
  return http;
}

void write_peers_json(leopard::obs::JsonWriter& w, leopard::net::SocketEnv& env) {
  w.key("peers").array_begin();
  for (const auto& p : env.peer_snapshots()) {
    w.object_begin();
    w.key("id").value(static_cast<std::uint64_t>(p.id));
    w.key("connected").value(p.connected);
    w.key("queued_bytes").value(p.queued_bytes);
    w.key("shed_frames").value(p.shed_frames);
    w.key("reconnect_attempts").value(p.reconnect_attempts);
    w.object_end();
  }
  w.array_end();
}

/// Table IV stage percentiles for the shutdown report (only when the stage
/// tracer ran — the histograms are empty otherwise).
void print_stage_latency(std::string& report, leopard::obs::Registry& registry,
                         const leopard::obs::StageTracer& tracer) {
  const struct {
    const char* name;
    const leopard::obs::Histogram& hist;
  } kStages[] = {
      {"generation", tracer.generation_hist()},
      {"dissemination", tracer.dissemination_hist()},
      {"agreement", tracer.agreement_hist()},
      {"total", tracer.total_hist()},
  };
  for (const auto& stage : kStages) {
    const auto snap = registry.histogram_snapshot(stage.hist);
    if (snap.count == 0) continue;
    char buf[192];
    std::snprintf(buf, sizeof(buf),
                  "stage_%s_count=%llu stage_%s_p50_ms=%.3f stage_%s_p99_ms=%.3f\n",
                  stage.name, static_cast<unsigned long long>(snap.count), stage.name,
                  static_cast<double>(snap.percentile(0.50)) / 1e6, stage.name,
                  static_cast<double>(snap.percentile(0.99)) / 1e6);
    report += buf;
  }
}

/// Client commit-latency summary. `mean_latency_ms`/`p50_latency_ms` are the
/// historical keys (scripts parse them); the tail percentiles are additive.
void print_client_latency(std::string& report, const leopard::core::ProtocolMetrics& metrics) {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "mean_latency_ms=%.2f p50_latency_ms=%.2f p90_latency_ms=%.2f "
                "p99_latency_ms=%.2f p999_latency_ms=%.2f\n",
                metrics.mean_latency_sec() * 1e3, metrics.latency_percentile(0.5) * 1e3,
                metrics.latency_percentile(0.9) * 1e3,
                metrics.latency_percentile(0.99) * 1e3,
                metrics.latency_percentile(0.999) * 1e3);
  report += buf;
}

int run_replica(const Args& args, const leopard::net::Manifest& manifest) {
  namespace lp = leopard;

  size_worker_pool(manifest);
  const lp::crypto::ThresholdScheme ts(manifest.n, manifest.quorum(), manifest.seed);
  const auto spec = manifest.spec();

  // The hosted protocol is either the honest core or, under --byzantine, the
  // unmodified core wrapped in the attack interposer (chaos/interposer.hpp).
  // `inner_core` always points at the consensus core for report accessors.
  std::unique_ptr<lp::protocol::Protocol> hosted = lp::protocol::make_protocol(spec, ts, args.id);
  const lp::protocol::Protocol* inner_core = hosted.get();

  // Request-stage tracer: hooks into the (still-unwrapped) Leopard core so
  // Table IV stage latencies are measured on the real wire path. Stage
  // histograms land in the global registry; sampled spans are dumpable via
  // /statusz?traces=1.
  auto& registry = lp::obs::Registry::global();
  lp::obs::StageTracer::Options topts;
  topts.sample_every = args.trace_sample;
  auto tracer = std::make_unique<lp::obs::StageTracer>(registry, topts);
  if (auto* lr = dynamic_cast<lp::core::LeopardReplica*>(hosted.get())) {
    lp::obs::StageTracer* t = tracer.get();
    lr->set_stage_hooks(
        [t](std::uint64_t client, std::uint64_t seq, lp::sim::SimTime ingress,
            lp::sim::SimTime created) { t->on_generated(client, seq, ingress, created); },
        [t](std::uint64_t client, std::uint64_t seq, lp::sim::SimTime created,
            lp::sim::SimTime linked, lp::sim::SimTime executed) {
          t->on_executed(client, seq, created, linked, executed);
        });
  }

  lp::chaos::ByzantineInterposer* byz = nullptr;
  if (!args.byzantine.empty()) {
    lp::chaos::InterposerOptions bopts;
    bopts.attack = *lp::chaos::parse_wire_attack(args.byzantine);
    bopts.n = manifest.n;
    bopts.f = (manifest.n - 1) / 3;
    bopts.lag =
        static_cast<lp::sim::SimTime>(args.byzantine_lag_ms) * lp::sim::kMillisecond;
    auto wrapped =
        std::make_unique<lp::chaos::ByzantineInterposer>(std::move(hosted), ts, bopts);
    byz = wrapped.get();
    hosted = std::move(wrapped);
  }

  lp::net::SocketEnv env(manifest.replica_env_options(args.id));
  env.attach(*hosted);  // --io-threads needs shard instances; a lone core stays single-threaded

  // Durable state: recover the WAL + snapshot before touching the network.
  // A corrupt store refuses to start under --recover=strict — restarting on
  // silently damaged state is how a replica ends up voting against its past.
  std::unique_ptr<lp::store::ReplicaStore> rstore;
  lp::store::RecoveryResult recovery;
  if (!args.data_dir.empty()) {
    lp::store::StoreOptions sopts;
    sopts.dir = args.data_dir;
    sopts.fsync_policy = args.fsync;
    sopts.fsync_interval =
        static_cast<lp::sim::SimTime>(args.fsync_interval_ms) * lp::sim::kMillisecond;
    sopts.snapshot_every = args.snapshot_every;
    rstore = std::make_unique<lp::store::ReplicaStore>(sopts);
    recovery = rstore->open(args.recover);
    if (!recovery.ok()) {
      std::fprintf(stderr, "leopard_node: data dir '%s' unusable: %s\n",
                   args.data_dir.c_str(), recovery.detail.c_str());
      return 3;
    }
  }

  // StateSync owns the node-level Execute stream: the exec_digest fold (equal
  // across honest replicas for all three protocols), durable appends, and
  // catch-up from peers after a restart. The consensus core stays unaware.
  const std::uint32_t f = (manifest.n - 1) / 3;
  lp::store::StateSyncOptions syncopts;
  syncopts.frame_digest = digest_of_frame;
  lp::store::StateSync sync(args.id, manifest.n, f, rstore.get(), syncopts);
  sync.init_from_recovery(recovery);
  sync.set_send([&](lp::sim::NodeId to, lp::sim::PayloadPtr payload) {
    // State-sync traffic bypasses the protocol core, so the byzantine
    // interposer taps it here to keep the attack covering every byte sent.
    if (byz != nullptr) {
      payload = byz->filter_deployment_send(to, std::move(payload));
      if (payload == nullptr) return;
    }
    env.apply(lp::protocol::Send{to, std::move(payload)});
  });
  sync.set_timer_hooks(
      [&](std::uint64_t token, lp::sim::SimTime delay) { env.arm_aux_timer(token, delay); },
      [&](std::uint64_t token) { env.cancel_aux_timer(token); });
  env.set_aux_timer_handler([&](std::uint64_t token) { sync.on_timer(token, env.now()); });
  env.set_payload_interceptor([&](lp::sim::NodeId from, const lp::sim::PayloadPtr& payload) {
    return sync.on_payload(from, payload, env.now());
  });

  env.set_execute_observer([&](const lp::protocol::Execute& e) {
    const auto block_digest = block_digest_of(*e.block);
    // The frame only matters when it can be persisted or buffered for later
    // persistence; skip the re-serialization when running ephemeral + live.
    lp::util::Bytes frame;
    if (rstore != nullptr || !sync.live()) frame = lp::net::encode_frame(*e.block);
    sync.on_execute(e.seq, e.ordinal, block_digest, e.requests, frame, env.now());
  });

  // Observability endpoint: runs on the transport thread's event loop, so
  // handlers may read env/sync/core state directly (the unsharded core runs
  // on that same thread). Declared after env/sync — destroyed before them.
  env.register_observability(registry);
  if (const auto* replica = dynamic_cast<const lp::core::LeopardReplica*>(inner_core)) {
    registry.gauge_fn("leopard_view", "Current consensus view", "",
                      [replica] { return static_cast<double>(replica->view()); });
    registry.gauge_fn("leopard_executed_through", "Highest contiguously executed sn", "",
                      [replica] { return static_cast<double>(replica->executed_through()); });
  }
  bool metrics_bind_failed = false;
  auto http = make_metrics_server(args, env, &metrics_bind_failed);
  if (metrics_bind_failed) return 3;
  if (http != nullptr) {
    http->handle("/statusz", [&, inner_core](std::string_view query) {
      lp::obs::JsonWriter w;
      w.object_begin();
      w.key("role").value("replica");
      w.key("id").value(static_cast<std::uint64_t>(args.id));
      w.key("protocol").value(manifest.protocol);
      w.key("n").value(static_cast<std::uint64_t>(manifest.n));
      if (const auto* replica = dynamic_cast<const lp::core::LeopardReplica*>(inner_core)) {
        w.key("view").value(static_cast<std::uint64_t>(replica->view()));
        w.key("executed_through").value(replica->executed_through());
        w.key("state_digest").value(replica->state_digest().hex());
      }
      w.key("executed_requests").value(sync.executed_requests());
      w.key("executed_blocks").value(sync.executed_blocks());
      w.key("exec_digest").value(sync.exec_digest().hex());
      w.key("sync_live").value(sync.live());
      write_peers_json(w, env);
      w.key("metrics");
      registry.write_statusz(w);
      if (lp::obs::query_param(query, "traces") == "1") {
        w.key("traces");
        tracer->write_json(w);
      }
      w.object_end();
      lp::obs::HttpServer::Response resp;
      resp.content_type = "application/json";
      resp.body = w.str();
      return resp;
    });
    http->serve_registry(registry);
  }

  sync.start(env.now());

  const auto deadline =
      args.run_for >= 0 ? lp::sim::from_seconds(args.run_for) : lp::sim::SimTime{-1};
  env.run([&] {
    if (g_stop != 0) return true;
    return deadline >= 0 && env.now() >= deadline;
  });

  if (rstore != nullptr) rstore->flush();

  std::string report;
  char buf[512];
  std::snprintf(buf, sizeof(buf), "role=replica id=%u protocol=%s n=%u\n", args.id,
                manifest.protocol.c_str(), manifest.n);
  report += buf;
  std::snprintf(buf, sizeof(buf), "executed_requests=%llu executed_blocks=%llu\n",
                static_cast<unsigned long long>(sync.executed_requests()),
                static_cast<unsigned long long>(sync.executed_blocks()));
  report += buf;
  report += "exec_digest=" + sync.exec_digest().hex() + "\n";
  if (byz != nullptr) {
    const auto& bs = byz->stats();
    std::snprintf(buf, sizeof(buf),
                  "byzantine=%s byz_equivocations=%llu byz_suppressed=%llu "
                  "byz_corrupted=%llu byz_delayed=%llu\n",
                  args.byzantine.c_str(),
                  static_cast<unsigned long long>(bs.equivocations),
                  static_cast<unsigned long long>(bs.suppressed),
                  static_cast<unsigned long long>(bs.corrupted),
                  static_cast<unsigned long long>(bs.delayed));
    report += buf;
  }
  if (const auto* replica = dynamic_cast<const lp::core::LeopardReplica*>(inner_core)) {
    report += "state_digest=" + replica->state_digest().hex() + "\n";
    std::snprintf(buf, sizeof(buf), "view=%u executed_through=%llu\n", replica->view(),
                  static_cast<unsigned long long>(replica->executed_through()));
    report += buf;
  }
  print_stage_latency(report, registry, *tracer);
  if (rstore != nullptr) {
    const auto& st = rstore->stats();
    std::snprintf(buf, sizeof(buf),
                  "store_entries=%llu store_recovered_entries=%llu "
                  "store_snapshot_index=%llu store_torn_bytes=%llu "
                  "store_corrupt_dropped=%llu\n",
                  static_cast<unsigned long long>(rstore->entries()),
                  static_cast<unsigned long long>(recovery.entries),
                  static_cast<unsigned long long>(recovery.snapshot_index),
                  static_cast<unsigned long long>(recovery.torn_bytes),
                  static_cast<unsigned long long>(recovery.corrupt_dropped));
    report += buf;
    std::snprintf(buf, sizeof(buf),
                  "store_appends=%llu store_append_errors=%llu store_fsyncs=%llu "
                  "store_fsync_errors=%llu store_snapshots=%llu\n",
                  static_cast<unsigned long long>(st.appends),
                  static_cast<unsigned long long>(st.append_errors),
                  static_cast<unsigned long long>(st.fsyncs),
                  static_cast<unsigned long long>(st.fsync_errors),
                  static_cast<unsigned long long>(st.snapshots_written));
    report += buf;
  }
  {
    const auto& ss = sync.stats();
    std::snprintf(buf, sizeof(buf),
                  "sync_live=%d sync_rounds=%llu sync_entries=%llu "
                  "sync_duplicates=%llu sync_probes=%llu sync_pulls_served=%llu "
                  "sync_verify_failures=%llu\n",
                  sync.live() ? 1 : 0,
                  static_cast<unsigned long long>(ss.rounds_completed),
                  static_cast<unsigned long long>(ss.entries_transferred),
                  static_cast<unsigned long long>(ss.duplicates_dropped),
                  static_cast<unsigned long long>(ss.probes_sent),
                  static_cast<unsigned long long>(ss.pulls_served),
                  static_cast<unsigned long long>(ss.verify_failures));
    report += buf;
  }
  print_transport_stats(report, env);
  emit_report(args, report);
  return 0;
}

/// Aux-timer token for the cross-shard stall tick. StateSync owns tokens 1
/// and 2 on the same aux wheel; this namespace is disjoint by construction.
constexpr std::uint64_t kStallTimer = 0x100;
constexpr leopard::sim::SimTime kStallTickInterval = 100 * leopard::sim::kMillisecond;

int run_replica_sharded(const Args& args, const leopard::net::Manifest& manifest,
                        std::uint32_t shards) {
  namespace lp = leopard;

  size_worker_pool(manifest);
  const std::uint32_t n = manifest.n;
  const auto spec = manifest.spec();

  auto eopts = manifest.replica_env_options(args.id);
  eopts.io_threads = args.io_threads;
  lp::net::SocketEnv env(std::move(eopts));

  // Durability + state transfer: ONE store and ONE StateSync consuming the
  // MERGED global stream — (gseq, gordinal) is the durable-commit identity,
  // so the whole PR6 stack runs unchanged under sharding.
  std::unique_ptr<lp::store::ReplicaStore> rstore;
  lp::store::RecoveryResult recovery;
  if (!args.data_dir.empty()) {
    lp::store::StoreOptions sopts;
    sopts.dir = args.data_dir;
    sopts.fsync_policy = args.fsync;
    sopts.fsync_interval =
        static_cast<lp::sim::SimTime>(args.fsync_interval_ms) * lp::sim::kMillisecond;
    sopts.snapshot_every = args.snapshot_every;
    rstore = std::make_unique<lp::store::ReplicaStore>(sopts);
    recovery = rstore->open(args.recover);
    if (!recovery.ok()) {
      std::fprintf(stderr, "leopard_node: data dir '%s' unusable: %s\n",
                   args.data_dir.c_str(), recovery.detail.c_str());
      return 3;
    }
  }

  const std::uint32_t f = (n - 1) / 3;
  lp::store::StateSyncOptions syncopts;
  syncopts.frame_digest = digest_of_frame;
  lp::store::StateSync sync(args.id, n, f, rstore.get(), syncopts);
  sync.init_from_recovery(recovery);

  // Per-shard report state: the shard-LOCAL stream fold, comparable across
  // replicas per shard (each shard is its own consensus instance).
  struct PerShard {
    std::uint64_t requests = 0;
    std::uint64_t blocks = 0;
    lp::crypto::Digest fold;
  };
  std::vector<PerShard> per_shard(shards);
  const auto fold_into = [](lp::crypto::Digest& fold, const lp::crypto::Digest& block_digest,
                            std::uint64_t seq, std::uint32_t ordinal) {
    std::uint8_t buf[2 * lp::crypto::Digest::kSize + 12];
    std::memcpy(buf, fold.bytes().data(), lp::crypto::Digest::kSize);
    std::memcpy(buf + lp::crypto::Digest::kSize, block_digest.bytes().data(),
                lp::crypto::Digest::kSize);
    for (std::size_t i = 0; i < 8; ++i) {
      buf[2 * lp::crypto::Digest::kSize + i] = static_cast<std::uint8_t>(seq >> (8 * i));
    }
    for (std::size_t i = 0; i < 4; ++i) {
      buf[2 * lp::crypto::Digest::kSize + 8 + i] =
          static_cast<std::uint8_t>(ordinal >> (8 * i));
    }
    fold = lp::crypto::Digest::of(buf);
  };

  // Real (non-filler) records pushed but not yet merged — the stall
  // detector's trigger (see shard/sequencer.hpp for why filler must not
  // count). Resynced to zero whenever the sequencer drains completely, so a
  // recovery-time prune can only overcount transiently.
  std::uint64_t pending_real = 0;
  std::uint64_t noops_injected = 0;
  std::uint64_t noop_seq = 0;
  std::uint64_t last_emitted = 0;

  lp::shard::Sequencer sequencer(shards, [&](const lp::shard::GlobalRecord& r) {
    if (!lp::shard::is_filler_block(*r.exec.block) && pending_real > 0) --pending_real;
    const auto block_digest = block_digest_of(*r.exec.block);
    lp::util::Bytes frame;
    if (rstore != nullptr || !sync.live()) frame = lp::net::encode_frame(*r.exec.block);
    sync.on_execute(r.exec.seq, r.exec.ordinal, block_digest, r.exec.requests, frame,
                    env.now());
  });

  // S unmodified cores over the shared transport: shard s hosts core-level
  // replica (id - s) mod n under a per-shard threshold domain (seed + s), so
  // each shard's leader lands on a different machine.
  std::vector<lp::crypto::ThresholdScheme> schemes;
  schemes.reserve(shards);
  for (std::uint32_t s = 0; s < shards; ++s) {
    schemes.emplace_back(n, manifest.quorum(), manifest.seed + s);
  }
  // Request-stage tracer shared by every shard core. The stage hooks fire on
  // whichever worker thread runs the shard; the tracer's histograms record
  // through per-thread registry shards and its span ring is mutex-guarded, so
  // one tracer serves all shards.
  auto& registry = lp::obs::Registry::global();
  lp::obs::StageTracer::Options topts;
  topts.sample_every = args.trace_sample;
  auto tracer = std::make_unique<lp::obs::StageTracer>(registry, topts);

  std::vector<std::unique_ptr<lp::protocol::Protocol>> cores;
  std::vector<std::unique_ptr<lp::shard::MuxEnv>> muxes;
  std::vector<const lp::core::LeopardReplica*> leopard_cores(shards, nullptr);
  std::vector<lp::chaos::ByzantineInterposer*> byzs(shards, nullptr);
  for (std::uint32_t s = 0; s < shards; ++s) {
    const auto core_id = static_cast<lp::proto::ReplicaId>((args.id + n - s % n) % n);
    auto hosted = lp::protocol::make_protocol(spec, schemes[s], core_id);
    leopard_cores[s] = dynamic_cast<const lp::core::LeopardReplica*>(hosted.get());
    if (auto* lr = dynamic_cast<lp::core::LeopardReplica*>(hosted.get())) {
      lp::obs::StageTracer* t = tracer.get();
      lr->set_stage_hooks(
          [t](std::uint64_t client, std::uint64_t seq, lp::sim::SimTime ingress,
              lp::sim::SimTime created) { t->on_generated(client, seq, ingress, created); },
          [t](std::uint64_t client, std::uint64_t seq, lp::sim::SimTime created,
              lp::sim::SimTime linked, lp::sim::SimTime executed) {
            t->on_executed(client, seq, created, linked, executed);
          });
    }
    if (!args.byzantine.empty()) {
      lp::chaos::InterposerOptions bopts;
      bopts.attack = *lp::chaos::parse_wire_attack(args.byzantine);
      bopts.n = n;
      bopts.f = f;
      bopts.lag =
          static_cast<lp::sim::SimTime>(args.byzantine_lag_ms) * lp::sim::kMillisecond;
      auto wrapped =
          std::make_unique<lp::chaos::ByzantineInterposer>(std::move(hosted), schemes[s], bopts);
      byzs[s] = wrapped.get();
      hosted = std::move(wrapped);
    }
    // env.metrics() is the transport-owned ProtocolMetrics the registry's
    // core counter_fns read; MuxEnv posts its updates to the transport thread.
    auto mux = std::make_unique<lp::shard::MuxEnv>(env, env.metrics(), n, s, shards);
    mux->attach(*hosted);
    mux->set_execute_observer([&, s](const lp::protocol::Execute& e) {
      auto& ps = per_shard[s];
      ps.requests += e.requests;
      ++ps.blocks;
      fold_into(ps.fold, block_digest_of(*e.block), e.seq, e.ordinal);
      const bool real = !lp::shard::is_filler_block(*e.block);
      if (real) ++pending_real;
      if (!sequencer.push(s, e) && real && pending_real > 0) --pending_real;
    });
    cores.push_back(std::move(hosted));
    muxes.push_back(std::move(mux));
  }

  sync.set_send([&](lp::sim::NodeId to, lp::sim::PayloadPtr payload) {
    if (byzs[0] != nullptr) {
      payload = byzs[0]->filter_deployment_send(to, std::move(payload));
      if (payload == nullptr) return;
    }
    env.apply(lp::protocol::Send{to, std::move(payload)});
  });
  sync.set_timer_hooks(
      [&](std::uint64_t token, lp::sim::SimTime delay) { env.arm_aux_timer(token, delay); },
      [&](std::uint64_t token) { env.cancel_aux_timer(token); });
  env.set_payload_interceptor([&](lp::sim::NodeId from, const lp::sim::PayloadPtr& payload) {
    return sync.on_payload(from, payload, env.now());
  });

  env.register_observability(registry);
  registry.gauge_fn("leopard_seq_emitted", "Global records emitted by the sequencer", "",
                    [&sequencer] { return static_cast<double>(sequencer.emitted()); });
  registry.gauge_fn("leopard_seq_round", "Cross-shard sequencer round cursor", "",
                    [&sequencer] { return static_cast<double>(sequencer.round()); });
  bool metrics_bind_failed = false;
  auto http = make_metrics_server(args, env, &metrics_bind_failed);
  if (metrics_bind_failed) return 3;
  if (http != nullptr) {
    http->handle("/statusz", [&](std::string_view query) {
      lp::obs::JsonWriter w;
      w.object_begin();
      w.key("role").value("replica");
      w.key("id").value(static_cast<std::uint64_t>(args.id));
      w.key("protocol").value(manifest.protocol);
      w.key("n").value(static_cast<std::uint64_t>(n));
      w.key("shards").value(static_cast<std::uint64_t>(shards));
      w.key("executed_requests").value(sync.executed_requests());
      w.key("executed_blocks").value(sync.executed_blocks());
      w.key("exec_digest").value(sync.exec_digest().hex());
      w.key("sync_live").value(sync.live());
      // Sequencer cursors are transport-owned (the merge callback runs on the
      // transport thread), so they are always safe to read here.
      w.key("seq_emitted").value(sequencer.emitted());
      w.key("seq_round").value(sequencer.round());
      // Shard cores run on worker threads when io_threads > 1; their live
      // views are only coherently readable from this (transport) thread in
      // the single-io-thread layout.
      if (args.io_threads <= 1) {
        w.key("shard_views").array_begin();
        for (std::uint32_t s = 0; s < shards; ++s) {
          w.value(static_cast<std::uint64_t>(
              leopard_cores[s] != nullptr ? leopard_cores[s]->view() : 0));
        }
        w.array_end();
      }
      write_peers_json(w, env);
      w.key("metrics");
      registry.write_statusz(w);
      if (lp::obs::query_param(query, "traces") == "1") {
        w.key("traces");
        tracer->write_json(w);
      }
      w.object_end();
      lp::obs::HttpServer::Response resp;
      resp.content_type = "application/json";
      resp.body = w.str();
      return resp;
    });
    http->serve_registry(registry);
  }

  const auto stall_tick = [&] {
    // Recovery or state transfer may have advanced the durable tail without
    // going through the sequencer: re-seat the cursor before judging a stall.
    if (sync.executed_blocks() > 0) {
      sequencer.advance_to(sync.tail_seq(), sync.tail_ordinal());
    }
    if (!sequencer.has_backlog()) pending_real = 0;  // prune-drift resync
    if (sync.live() && sequencer.emitted() == last_emitted && pending_real > 0) {
      // Real work is stuck behind an idle shard: commit a no-op through the
      // blocking shard's LOCAL core so the round fills (and every earlier
      // round is proven) via ordinary consensus.
      const auto s = sequencer.cursor_shard();
      lp::proto::Request req;
      req.client_id = lp::shard::kFillerClientBase + args.id;
      req.seq = noop_seq++;
      req.payload_size = 1;
      req.submitted_at = env.now();
      muxes[s]->inject_request(
          static_cast<lp::sim::NodeId>(lp::shard::kFillerClientBase + args.id),
          std::make_shared<lp::proto::ClientRequestMsg>(std::move(req)));
      ++noops_injected;
    }
    last_emitted = sequencer.emitted();
    env.arm_aux_timer(kStallTimer, kStallTickInterval);
  };
  env.set_aux_timer_handler([&](std::uint64_t token) {
    if (token == kStallTimer) {
      stall_tick();
    } else {
      sync.on_timer(token, env.now());
    }
  });

  sync.start(env.now());
  if (sync.executed_blocks() > 0) {
    sequencer.advance_to(sync.tail_seq(), sync.tail_ordinal());
  }
  env.arm_aux_timer(kStallTimer, kStallTickInterval);

  const auto deadline =
      args.run_for >= 0 ? lp::sim::from_seconds(args.run_for) : lp::sim::SimTime{-1};
  env.run([&] {
    if (g_stop != 0) return true;
    return deadline >= 0 && env.now() >= deadline;
  });

  if (rstore != nullptr) rstore->flush();

  std::string report;
  char buf[512];
  std::snprintf(buf, sizeof(buf), "role=replica id=%u protocol=%s n=%u shards=%u\n",
                args.id, manifest.protocol.c_str(), n, shards);
  report += buf;
  std::snprintf(buf, sizeof(buf), "executed_requests=%llu executed_blocks=%llu\n",
                static_cast<unsigned long long>(sync.executed_requests()),
                static_cast<unsigned long long>(sync.executed_blocks()));
  report += buf;
  report += "exec_digest=" + sync.exec_digest().hex() + "\n";
  for (std::uint32_t s = 0; s < shards; ++s) {
    std::snprintf(buf, sizeof(buf), "shard%u_executed=%llu shard%u_blocks=%llu ", s,
                  static_cast<unsigned long long>(per_shard[s].requests), s,
                  static_cast<unsigned long long>(per_shard[s].blocks));
    report += buf;
    if (leopard_cores[s] != nullptr) {
      std::snprintf(buf, sizeof(buf), "shard%u_view=%u ", s, leopard_cores[s]->view());
      report += buf;
    }
    report += "shard" + std::to_string(s) + "_digest=" + per_shard[s].fold.hex() + "\n";
  }
  std::snprintf(buf, sizeof(buf), "seq_emitted=%llu seq_round=%llu noops_injected=%llu\n",
                static_cast<unsigned long long>(sequencer.emitted()),
                static_cast<unsigned long long>(sequencer.round()),
                static_cast<unsigned long long>(noops_injected));
  report += buf;
  print_stage_latency(report, registry, *tracer);
  if (byzs[0] != nullptr) {
    lp::chaos::ByzantineInterposer::Stats total{};
    for (const auto* b : byzs) {
      if (b == nullptr) continue;
      total.equivocations += b->stats().equivocations;
      total.suppressed += b->stats().suppressed;
      total.corrupted += b->stats().corrupted;
      total.delayed += b->stats().delayed;
    }
    std::snprintf(buf, sizeof(buf),
                  "byzantine=%s byz_equivocations=%llu byz_suppressed=%llu "
                  "byz_corrupted=%llu byz_delayed=%llu\n",
                  args.byzantine.c_str(),
                  static_cast<unsigned long long>(total.equivocations),
                  static_cast<unsigned long long>(total.suppressed),
                  static_cast<unsigned long long>(total.corrupted),
                  static_cast<unsigned long long>(total.delayed));
    report += buf;
  }
  if (rstore != nullptr) {
    const auto& st = rstore->stats();
    std::snprintf(buf, sizeof(buf),
                  "store_entries=%llu store_recovered_entries=%llu "
                  "store_snapshot_index=%llu store_torn_bytes=%llu "
                  "store_corrupt_dropped=%llu\n",
                  static_cast<unsigned long long>(rstore->entries()),
                  static_cast<unsigned long long>(recovery.entries),
                  static_cast<unsigned long long>(recovery.snapshot_index),
                  static_cast<unsigned long long>(recovery.torn_bytes),
                  static_cast<unsigned long long>(recovery.corrupt_dropped));
    report += buf;
    std::snprintf(buf, sizeof(buf),
                  "store_appends=%llu store_append_errors=%llu store_fsyncs=%llu "
                  "store_fsync_errors=%llu store_snapshots=%llu\n",
                  static_cast<unsigned long long>(st.appends),
                  static_cast<unsigned long long>(st.append_errors),
                  static_cast<unsigned long long>(st.fsyncs),
                  static_cast<unsigned long long>(st.fsync_errors),
                  static_cast<unsigned long long>(st.snapshots_written));
    report += buf;
  }
  {
    const auto& ss = sync.stats();
    std::snprintf(buf, sizeof(buf),
                  "sync_live=%d sync_rounds=%llu sync_entries=%llu "
                  "sync_duplicates=%llu sync_probes=%llu sync_pulls_served=%llu "
                  "sync_verify_failures=%llu\n",
                  sync.live() ? 1 : 0,
                  static_cast<unsigned long long>(ss.rounds_completed),
                  static_cast<unsigned long long>(ss.entries_transferred),
                  static_cast<unsigned long long>(ss.duplicates_dropped),
                  static_cast<unsigned long long>(ss.probes_sent),
                  static_cast<unsigned long long>(ss.pulls_served),
                  static_cast<unsigned long long>(ss.verify_failures));
    report += buf;
  }
  print_transport_stats(report, env, args.io_threads);
  emit_report(args, report);
  return 0;
}

int run_client(const Args& args, const leopard::net::Manifest& manifest) {
  namespace lp = leopard;

  lp::core::ClientConfig cfg;
  cfg.payload_size = args.payload != 0 ? args.payload : manifest.payload_size;
  cfg.real_payload = true;  // a real deployment ships real bytes
  cfg.closed_loop_window = args.window;
  cfg.total_requests = args.requests;
  cfg.resubmit_timeout =
      static_cast<lp::sim::SimTime>(args.resubmit_ms) * lp::sim::kMillisecond;

  const auto leader = manifest.initial_leader();
  const bool leopard = manifest.protocol == "leopard";
  if (leopard) {
    cfg.route_by_mu = true;  // µ(req) load balancing over non-leader replicas
  }
  // Baselines accept client requests only at the leader, so the re-submission
  // rotation set is just {leader}; Leopard rotates over all non-leader
  // replicas.
  lp::core::LeopardClient client(cfg, /*target=*/leader,
                                 /*replica_count=*/leopard ? manifest.n : 1,
                                 /*avoid=*/leopard ? leader : manifest.n,
                                 manifest.seed + args.id);
  client.set_self_id(args.id);

  lp::net::SocketEnv env(manifest.client_env_options(args.id));
  env.attach(client);

  auto& registry = lp::obs::Registry::global();
  env.register_observability(registry);
  bool metrics_bind_failed = false;
  auto http = make_metrics_server(args, env, &metrics_bind_failed);
  if (metrics_bind_failed) return 3;
  if (http != nullptr) {
    http->handle("/statusz", [&](std::string_view) {
      lp::obs::JsonWriter w;
      w.object_begin();
      w.key("role").value("client");
      w.key("id").value(static_cast<std::uint64_t>(args.id));
      w.key("protocol").value(manifest.protocol);
      w.key("submitted").value(client.submitted());
      w.key("acked").value(client.acked());
      write_peers_json(w, env);
      w.key("metrics");
      registry.write_statusz(w);
      w.object_end();
      lp::obs::HttpServer::Response resp;
      resp.content_type = "application/json";
      resp.body = w.str();
      return resp;
    });
    http->serve_registry(registry);
  }

  const auto deadline = lp::sim::from_seconds(args.timeout);
  env.run([&] { return g_stop != 0 || client.done() || env.now() >= deadline; });
  const double elapsed = lp::sim::to_seconds(env.now());

  auto& metrics = env.metrics();
  std::string report;
  char buf[256];
  std::snprintf(buf, sizeof(buf), "role=client id=%u protocol=%s n=%u\n", args.id,
                manifest.protocol.c_str(), manifest.n);
  report += buf;
  std::snprintf(buf, sizeof(buf),
                "submitted=%llu acked=%llu elapsed_s=%.3f kreq_s=%.3f\n",
                static_cast<unsigned long long>(client.submitted()),
                static_cast<unsigned long long>(client.acked()), elapsed,
                elapsed > 0 ? static_cast<double>(client.acked()) / elapsed / 1e3 : 0.0);
  report += buf;
  print_client_latency(report, metrics);
  print_transport_stats(report, env);
  emit_report(args, report);
  return client.done() ? 0 : 1;
}

int run_client_sharded(const Args& args, const leopard::net::Manifest& manifest,
                       std::uint32_t shards) {
  namespace lp = leopard;

  lp::core::ClientConfig cfg;
  cfg.payload_size = args.payload != 0 ? args.payload : manifest.payload_size;
  cfg.real_payload = true;
  cfg.resubmit_timeout =
      static_cast<lp::sim::SimTime>(args.resubmit_ms) * lp::sim::kMillisecond;

  const auto leader = manifest.initial_leader();
  const bool leopard = manifest.protocol == "leopard";
  if (leopard) cfg.route_by_mu = true;

  // Hash-partition the request index space across shards (the same
  // shard_of split the sim driver uses), with a per-shard slice of the
  // closed-loop window.
  const std::uint64_t seed = manifest.seed + args.id;
  std::vector<std::uint64_t> totals(shards, 0);
  for (std::uint64_t i = 0; i < args.requests; ++i) {
    ++totals[lp::shard::shard_of(seed, i, shards)];
  }

  lp::net::SocketEnv env(manifest.client_env_options(args.id));

  std::vector<std::unique_ptr<lp::core::LeopardClient>> subs;
  std::vector<std::unique_ptr<lp::shard::MuxEnv>> muxes;
  for (std::uint32_t s = 0; s < shards; ++s) {
    lp::core::ClientConfig sub_cfg = cfg;
    sub_cfg.total_requests = totals[s];
    sub_cfg.closed_loop_window = std::max(1u, args.window / shards);
    auto sub = std::make_unique<lp::core::LeopardClient>(
        sub_cfg, /*target=*/leader, /*replica_count=*/leopard ? manifest.n : 1,
        /*avoid=*/leopard ? leader : manifest.n, seed + 7919ull * s);
    sub->set_self_id(args.id);
    // env.metrics() is shared across every shard's MuxEnv, so the latency
    // histogram merges and the report math below stays identical.
    auto mux = std::make_unique<lp::shard::MuxEnv>(env, env.metrics(), manifest.n, s, shards);
    mux->attach(*sub);
    subs.push_back(std::move(sub));
    muxes.push_back(std::move(mux));
  }

  const auto all_done = [&] {
    for (const auto& sub : subs) {
      if (!sub->done()) return false;
    }
    return true;
  };

  auto& registry = lp::obs::Registry::global();
  env.register_observability(registry);
  bool metrics_bind_failed = false;
  auto http = make_metrics_server(args, env, &metrics_bind_failed);
  if (metrics_bind_failed) return 3;
  if (http != nullptr) {
    http->handle("/statusz", [&](std::string_view) {
      std::uint64_t submitted = 0;
      std::uint64_t acked = 0;
      for (const auto& sub : subs) {
        submitted += sub->submitted();
        acked += sub->acked();
      }
      lp::obs::JsonWriter w;
      w.object_begin();
      w.key("role").value("client");
      w.key("id").value(static_cast<std::uint64_t>(args.id));
      w.key("protocol").value(manifest.protocol);
      w.key("shards").value(static_cast<std::uint64_t>(shards));
      w.key("submitted").value(submitted);
      w.key("acked").value(acked);
      write_peers_json(w, env);
      w.key("metrics");
      registry.write_statusz(w);
      w.object_end();
      lp::obs::HttpServer::Response resp;
      resp.content_type = "application/json";
      resp.body = w.str();
      return resp;
    });
    http->serve_registry(registry);
  }

  const auto deadline = lp::sim::from_seconds(args.timeout);
  env.run([&] { return g_stop != 0 || all_done() || env.now() >= deadline; });
  const double elapsed = lp::sim::to_seconds(env.now());

  std::uint64_t submitted = 0;
  std::uint64_t acked = 0;
  for (const auto& sub : subs) {
    submitted += sub->submitted();
    acked += sub->acked();
  }

  auto& metrics = env.metrics();
  std::string report;
  char buf[256];
  std::snprintf(buf, sizeof(buf), "role=client id=%u protocol=%s n=%u shards=%u\n",
                args.id, manifest.protocol.c_str(), manifest.n, shards);
  report += buf;
  std::snprintf(buf, sizeof(buf),
                "submitted=%llu acked=%llu elapsed_s=%.3f kreq_s=%.3f\n",
                static_cast<unsigned long long>(submitted),
                static_cast<unsigned long long>(acked), elapsed,
                elapsed > 0 ? static_cast<double>(acked) / elapsed / 1e3 : 0.0);
  report += buf;
  print_client_latency(report, metrics);
  print_transport_stats(report, env);
  emit_report(args, report);
  return all_done() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse_args(argc, argv);

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  std::signal(SIGPIPE, SIG_IGN);

  try {
    const auto manifest = leopard::net::Manifest::parse_file(args.manifest_path);
    if (!args.client && args.id >= manifest.n) {
      std::fprintf(stderr, "replica id %u out of range (n=%u); did you mean --client?\n",
                   args.id, manifest.n);
      return 2;
    }
    // --shards overrides the manifest; every node of a cluster must agree.
    const std::uint32_t shards = args.shards != 0 ? args.shards : manifest.shards;
    if (args.client) {
      return shards > 1 ? run_client_sharded(args, manifest, shards)
                        : run_client(args, manifest);
    }
    return shards > 1 ? run_replica_sharded(args, manifest, shards)
                      : run_replica(args, manifest);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "leopard_node: %s\n", e.what());
    return 2;
  }
}
