// leopard_node: run one replica of a real-wire Leopard/HotStuff/PBFT cluster,
// or a closed-loop client driver, from a cluster manifest (net/manifest.hpp).
//
// Replica mode (one process per replica):
//
//   leopard_node --manifest cluster.conf --id 2 [--run-for SECONDS]
//
// Hosts the protocol core named by the manifest behind a SocketEnv: real
// nonblocking TCP to every peer, wire framing, timer wheel. Runs until
// SIGINT/SIGTERM (or --run-for elapses), then prints a key=value report:
// executed request count, the Execute-stream fold digest (exec_digest, equal
// across honest replicas), Leopard's state_digest, and transport stats.
//
// Client mode (the throughput driver):
//
//   leopard_node --manifest cluster.conf --client --id 100 --requests 500
//                [--window 64] [--payload 128] [--resubmit-ms 1000]
//                [--timeout SECONDS]
//
// Submits a closed-loop window of requests (Leopard: µ(req)-routed to
// non-leader replicas; baselines: to the leader), waits for every ack, and
// reports achieved kreq/s plus latency. Exits non-zero if the run times out
// before all requests are acked.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>

#include "chaos/interposer.hpp"
#include "core/client.hpp"
#include "core/replica.hpp"
#include "crypto/threshold_sig.hpp"
#include "net/manifest.hpp"
#include "net/socket_env.hpp"
#include "net/wire.hpp"
#include "protocol/factory.hpp"
#include "store/replica_store.hpp"
#include "store/state_sync.hpp"
#include "util/bytes.hpp"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void on_signal(int) { g_stop = 1; }

struct Args {
  std::string manifest_path;
  leopard::sim::NodeId id = 0;
  bool id_set = false;
  bool client = false;
  double run_for = -1;        // replica: seconds before voluntary shutdown
  double timeout = 120;       // client: give-up deadline
  std::uint64_t requests = 0; // client: total requests to drive
  std::uint32_t window = 64;  // client: closed-loop window
  std::uint32_t payload = 0;  // client: payload override (0 = manifest value)
  std::uint32_t resubmit_ms = 1000;
  std::string report_path;    // optional: also write the report to a file

  // Byzantine behaviour (replica mode; empty = honest).
  std::string byzantine;
  std::uint32_t byzantine_lag_ms = 150;

  // Durability (replica mode; empty data_dir = run without persistence).
  std::string data_dir;
  leopard::store::RecoverMode recover = leopard::store::RecoverMode::kStrict;
  leopard::store::FsyncPolicy fsync = leopard::store::FsyncPolicy::kAlways;
  std::uint32_t fsync_interval_ms = 50;
  std::uint64_t snapshot_every = 4096;
};

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --manifest FILE --id ID [--run-for SEC]\n"
               "          [--byzantine equivocate|silence|garbage-shares|laggard]\n"
               "          [--byzantine-lag-ms MS]\n"
               "          [--data-dir DIR] [--recover strict|truncate]\n"
               "          [--fsync always|interval|none] [--fsync-interval-ms MS]\n"
               "          [--snapshot-every N]\n"
               "       %s --manifest FILE --id ID --client --requests N [--window W]\n"
               "          [--payload BYTES] [--resubmit-ms MS] [--timeout SEC]\n"
               "       (see docs/DEPLOY.md)\n",
               argv0, argv0);
  std::exit(2);
}

Args parse_args(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--manifest") {
      args.manifest_path = next();
    } else if (arg == "--id") {
      args.id = static_cast<leopard::sim::NodeId>(std::strtoul(next(), nullptr, 10));
      args.id_set = true;
    } else if (arg == "--client") {
      args.client = true;
    } else if (arg == "--run-for") {
      args.run_for = std::strtod(next(), nullptr);
    } else if (arg == "--timeout") {
      args.timeout = std::strtod(next(), nullptr);
    } else if (arg == "--requests") {
      args.requests = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--window") {
      args.window = static_cast<std::uint32_t>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--payload") {
      args.payload = static_cast<std::uint32_t>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--resubmit-ms") {
      args.resubmit_ms = static_cast<std::uint32_t>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--report") {
      args.report_path = next();
    } else if (arg == "--byzantine") {
      args.byzantine = next();
      if (!leopard::chaos::parse_wire_attack(args.byzantine)) {
        std::fprintf(stderr, "unknown --byzantine mode '%s'\n", args.byzantine.c_str());
        usage(argv[0]);
      }
    } else if (arg == "--byzantine-lag-ms") {
      args.byzantine_lag_ms = static_cast<std::uint32_t>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--data-dir") {
      args.data_dir = next();
    } else if (arg == "--recover") {
      const std::string_view mode = next();
      if (mode == "strict") {
        args.recover = leopard::store::RecoverMode::kStrict;
      } else if (mode == "truncate") {
        args.recover = leopard::store::RecoverMode::kTruncate;
      } else {
        std::fprintf(stderr, "--recover must be strict or truncate\n");
        usage(argv[0]);
      }
    } else if (arg == "--fsync") {
      const std::string_view policy = next();
      if (policy == "always") {
        args.fsync = leopard::store::FsyncPolicy::kAlways;
      } else if (policy == "interval") {
        args.fsync = leopard::store::FsyncPolicy::kInterval;
      } else if (policy == "none") {
        args.fsync = leopard::store::FsyncPolicy::kNever;
      } else {
        std::fprintf(stderr, "--fsync must be always, interval, or none\n");
        usage(argv[0]);
      }
    } else if (arg == "--fsync-interval-ms") {
      args.fsync_interval_ms = static_cast<std::uint32_t>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--snapshot-every") {
      args.snapshot_every = std::strtoull(next(), nullptr, 10);
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", std::string(arg).c_str());
      usage(argv[0]);
    }
  }
  if (args.manifest_path.empty() || !args.id_set) usage(argv[0]);
  if (args.client && args.requests == 0) usage(argv[0]);
  return args;
}

void emit_report(const Args& args, const std::string& report) {
  std::fputs(report.c_str(), stdout);
  std::fflush(stdout);
  if (!args.report_path.empty()) {
    std::ofstream out(args.report_path);
    out << report;
  }
}

void print_transport_stats(std::string& report, const leopard::net::SocketEnv& env) {
  const auto& s = env.stats();
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "frames_sent=%llu frames_received=%llu bytes_sent=%llu "
                "bytes_received=%llu decode_errors=%llu frames_dropped=%llu "
                "connects=%llu accepts=%llu\n",
                static_cast<unsigned long long>(s.frames_sent),
                static_cast<unsigned long long>(s.frames_received),
                static_cast<unsigned long long>(s.bytes_sent),
                static_cast<unsigned long long>(s.bytes_received),
                static_cast<unsigned long long>(s.decode_errors),
                static_cast<unsigned long long>(s.frames_dropped),
                static_cast<unsigned long long>(s.connects),
                static_cast<unsigned long long>(s.accepts));
  report += buf;

  // Per-peer attribution of shed frames and reconnect churn ("id:count"
  // pairs, "-" when clean) so attack-load shedding is visible per link.
  std::string shed;
  std::string reconnects;
  for (const auto& [peer, counters] : env.peer_counters()) {
    if (counters.shed_frames > 0) {
      if (!shed.empty()) shed += ',';
      shed += std::to_string(peer) + ":" + std::to_string(counters.shed_frames);
    }
    if (counters.reconnect_attempts > 0) {
      if (!reconnects.empty()) reconnects += ',';
      reconnects += std::to_string(peer) + ":" + std::to_string(counters.reconnect_attempts);
    }
  }
  report += "peer_shed=" + (shed.empty() ? "-" : shed) + "\n";
  report += "peer_reconnects=" + (reconnects.empty() ? "-" : reconnects) + "\n";
}

/// Recomputes a block's canonical digest from its wire frame, mirroring the
/// execute-observer fold below: the cached_digest of a Datablock/Baseline
/// block, the zero digest for anything else, nullopt if the frame is
/// malformed. StateSync uses this to verify transferred entries.
std::optional<leopard::crypto::Digest> digest_of_frame(
    std::span<const std::uint8_t> frame) {
  namespace lp = leopard;
  if (frame.size() < lp::net::kFrameHeaderBytes + 1) return std::nullopt;
  std::uint32_t len = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    len |= static_cast<std::uint32_t>(frame[i]) << (8 * i);
  }
  if (len == 0 || len + lp::net::kFrameHeaderBytes != frame.size()) return std::nullopt;
  const auto type = static_cast<lp::net::MsgType>(frame[4]);
  const auto payload =
      lp::net::decode_payload(type, frame.subspan(lp::net::kFrameHeaderBytes + 1), 0);
  if (payload == nullptr) return std::nullopt;
  if (const auto* db = dynamic_cast<const lp::proto::DatablockMsg*>(payload.get())) {
    return db->cached_digest;
  }
  if (const auto* bb = dynamic_cast<const lp::proto::BaselineBlockMsg*>(payload.get())) {
    return bb->cached_digest;
  }
  return lp::crypto::Digest{};
}

int run_replica(const Args& args, const leopard::net::Manifest& manifest) {
  namespace lp = leopard;

  const lp::crypto::ThresholdScheme ts(manifest.n, manifest.quorum(), manifest.seed);
  const auto spec = manifest.spec();

  // The hosted protocol is either the honest core or, under --byzantine, the
  // unmodified core wrapped in the attack interposer (chaos/interposer.hpp).
  // `inner_core` always points at the consensus core for report accessors.
  std::unique_ptr<lp::protocol::Protocol> hosted = lp::protocol::make_protocol(spec, ts, args.id);
  const lp::protocol::Protocol* inner_core = hosted.get();
  lp::chaos::ByzantineInterposer* byz = nullptr;
  if (!args.byzantine.empty()) {
    lp::chaos::InterposerOptions bopts;
    bopts.attack = *lp::chaos::parse_wire_attack(args.byzantine);
    bopts.n = manifest.n;
    bopts.f = (manifest.n - 1) / 3;
    bopts.lag =
        static_cast<lp::sim::SimTime>(args.byzantine_lag_ms) * lp::sim::kMillisecond;
    auto wrapped =
        std::make_unique<lp::chaos::ByzantineInterposer>(std::move(hosted), ts, bopts);
    byz = wrapped.get();
    hosted = std::move(wrapped);
  }

  lp::net::SocketEnv env(manifest.replica_env_options(args.id));
  env.attach(*hosted);

  // Durable state: recover the WAL + snapshot before touching the network.
  // A corrupt store refuses to start under --recover=strict — restarting on
  // silently damaged state is how a replica ends up voting against its past.
  std::unique_ptr<lp::store::ReplicaStore> rstore;
  lp::store::RecoveryResult recovery;
  if (!args.data_dir.empty()) {
    lp::store::StoreOptions sopts;
    sopts.dir = args.data_dir;
    sopts.fsync_policy = args.fsync;
    sopts.fsync_interval =
        static_cast<lp::sim::SimTime>(args.fsync_interval_ms) * lp::sim::kMillisecond;
    sopts.snapshot_every = args.snapshot_every;
    rstore = std::make_unique<lp::store::ReplicaStore>(sopts);
    recovery = rstore->open(args.recover);
    if (!recovery.ok()) {
      std::fprintf(stderr, "leopard_node: data dir '%s' unusable: %s\n",
                   args.data_dir.c_str(), recovery.detail.c_str());
      return 3;
    }
  }

  // StateSync owns the node-level Execute stream: the exec_digest fold (equal
  // across honest replicas for all three protocols), durable appends, and
  // catch-up from peers after a restart. The consensus core stays unaware.
  const std::uint32_t f = (manifest.n - 1) / 3;
  lp::store::StateSyncOptions syncopts;
  syncopts.frame_digest = digest_of_frame;
  lp::store::StateSync sync(args.id, manifest.n, f, rstore.get(), syncopts);
  sync.init_from_recovery(recovery);
  sync.set_send([&](lp::sim::NodeId to, lp::sim::PayloadPtr payload) {
    // State-sync traffic bypasses the protocol core, so the byzantine
    // interposer taps it here to keep the attack covering every byte sent.
    if (byz != nullptr) {
      payload = byz->filter_deployment_send(to, std::move(payload));
      if (payload == nullptr) return;
    }
    env.apply(lp::protocol::Send{to, std::move(payload)});
  });
  sync.set_timer_hooks(
      [&](std::uint64_t token, lp::sim::SimTime delay) { env.arm_aux_timer(token, delay); },
      [&](std::uint64_t token) { env.cancel_aux_timer(token); });
  env.set_aux_timer_handler([&](std::uint64_t token) { sync.on_timer(token, env.now()); });
  env.set_payload_interceptor([&](lp::sim::NodeId from, const lp::sim::PayloadPtr& payload) {
    return sync.on_payload(from, payload, env.now());
  });

  env.set_execute_observer([&](const lp::protocol::Execute& e) {
    lp::crypto::Digest block_digest;
    if (const auto* db = dynamic_cast<const lp::proto::DatablockMsg*>(e.block.get())) {
      block_digest = db->cached_digest;
    } else if (const auto* bb =
                   dynamic_cast<const lp::proto::BaselineBlockMsg*>(e.block.get())) {
      block_digest = bb->cached_digest;
    }
    // The frame only matters when it can be persisted or buffered for later
    // persistence; skip the re-serialization when running ephemeral + live.
    lp::util::Bytes frame;
    if (rstore != nullptr || !sync.live()) frame = lp::net::encode_frame(*e.block);
    sync.on_execute(e.seq, e.ordinal, block_digest, e.requests, frame, env.now());
  });

  sync.start(env.now());

  const auto deadline =
      args.run_for >= 0 ? lp::sim::from_seconds(args.run_for) : lp::sim::SimTime{-1};
  env.run([&] {
    if (g_stop != 0) return true;
    return deadline >= 0 && env.now() >= deadline;
  });

  if (rstore != nullptr) rstore->flush();

  std::string report;
  char buf[512];
  std::snprintf(buf, sizeof(buf), "role=replica id=%u protocol=%s n=%u\n", args.id,
                manifest.protocol.c_str(), manifest.n);
  report += buf;
  std::snprintf(buf, sizeof(buf), "executed_requests=%llu executed_blocks=%llu\n",
                static_cast<unsigned long long>(sync.executed_requests()),
                static_cast<unsigned long long>(sync.executed_blocks()));
  report += buf;
  report += "exec_digest=" + sync.exec_digest().hex() + "\n";
  if (byz != nullptr) {
    const auto& bs = byz->stats();
    std::snprintf(buf, sizeof(buf),
                  "byzantine=%s byz_equivocations=%llu byz_suppressed=%llu "
                  "byz_corrupted=%llu byz_delayed=%llu\n",
                  args.byzantine.c_str(),
                  static_cast<unsigned long long>(bs.equivocations),
                  static_cast<unsigned long long>(bs.suppressed),
                  static_cast<unsigned long long>(bs.corrupted),
                  static_cast<unsigned long long>(bs.delayed));
    report += buf;
  }
  if (const auto* replica = dynamic_cast<const lp::core::LeopardReplica*>(inner_core)) {
    report += "state_digest=" + replica->state_digest().hex() + "\n";
    std::snprintf(buf, sizeof(buf), "view=%u executed_through=%llu\n", replica->view(),
                  static_cast<unsigned long long>(replica->executed_through()));
    report += buf;
  }
  if (rstore != nullptr) {
    const auto& st = rstore->stats();
    std::snprintf(buf, sizeof(buf),
                  "store_entries=%llu store_recovered_entries=%llu "
                  "store_snapshot_index=%llu store_torn_bytes=%llu "
                  "store_corrupt_dropped=%llu\n",
                  static_cast<unsigned long long>(rstore->entries()),
                  static_cast<unsigned long long>(recovery.entries),
                  static_cast<unsigned long long>(recovery.snapshot_index),
                  static_cast<unsigned long long>(recovery.torn_bytes),
                  static_cast<unsigned long long>(recovery.corrupt_dropped));
    report += buf;
    std::snprintf(buf, sizeof(buf),
                  "store_appends=%llu store_append_errors=%llu store_fsyncs=%llu "
                  "store_fsync_errors=%llu store_snapshots=%llu\n",
                  static_cast<unsigned long long>(st.appends),
                  static_cast<unsigned long long>(st.append_errors),
                  static_cast<unsigned long long>(st.fsyncs),
                  static_cast<unsigned long long>(st.fsync_errors),
                  static_cast<unsigned long long>(st.snapshots_written));
    report += buf;
  }
  {
    const auto& ss = sync.stats();
    std::snprintf(buf, sizeof(buf),
                  "sync_live=%d sync_rounds=%llu sync_entries=%llu "
                  "sync_duplicates=%llu sync_probes=%llu sync_pulls_served=%llu "
                  "sync_verify_failures=%llu\n",
                  sync.live() ? 1 : 0,
                  static_cast<unsigned long long>(ss.rounds_completed),
                  static_cast<unsigned long long>(ss.entries_transferred),
                  static_cast<unsigned long long>(ss.duplicates_dropped),
                  static_cast<unsigned long long>(ss.probes_sent),
                  static_cast<unsigned long long>(ss.pulls_served),
                  static_cast<unsigned long long>(ss.verify_failures));
    report += buf;
  }
  print_transport_stats(report, env);
  emit_report(args, report);
  return 0;
}

int run_client(const Args& args, const leopard::net::Manifest& manifest) {
  namespace lp = leopard;

  lp::core::ClientConfig cfg;
  cfg.payload_size = args.payload != 0 ? args.payload : manifest.payload_size;
  cfg.real_payload = true;  // a real deployment ships real bytes
  cfg.closed_loop_window = args.window;
  cfg.total_requests = args.requests;
  cfg.resubmit_timeout =
      static_cast<lp::sim::SimTime>(args.resubmit_ms) * lp::sim::kMillisecond;

  const auto leader = manifest.initial_leader();
  const bool leopard = manifest.protocol == "leopard";
  if (leopard) {
    cfg.route_by_mu = true;  // µ(req) load balancing over non-leader replicas
  }
  // Baselines accept client requests only at the leader, so the re-submission
  // rotation set is just {leader}; Leopard rotates over all non-leader
  // replicas.
  lp::core::LeopardClient client(cfg, /*target=*/leader,
                                 /*replica_count=*/leopard ? manifest.n : 1,
                                 /*avoid=*/leopard ? leader : manifest.n,
                                 manifest.seed + args.id);
  client.set_self_id(args.id);

  lp::net::SocketEnv env(manifest.client_env_options(args.id));
  env.attach(client);

  const auto deadline = lp::sim::from_seconds(args.timeout);
  env.run([&] { return g_stop != 0 || client.done() || env.now() >= deadline; });
  const double elapsed = lp::sim::to_seconds(env.now());

  auto& metrics = env.metrics();
  std::string report;
  char buf[256];
  std::snprintf(buf, sizeof(buf), "role=client id=%u protocol=%s n=%u\n", args.id,
                manifest.protocol.c_str(), manifest.n);
  report += buf;
  std::snprintf(buf, sizeof(buf),
                "submitted=%llu acked=%llu elapsed_s=%.3f kreq_s=%.3f\n",
                static_cast<unsigned long long>(client.submitted()),
                static_cast<unsigned long long>(client.acked()), elapsed,
                elapsed > 0 ? static_cast<double>(client.acked()) / elapsed / 1e3 : 0.0);
  report += buf;
  std::snprintf(buf, sizeof(buf), "mean_latency_ms=%.2f p50_latency_ms=%.2f\n",
                metrics.mean_latency_sec() * 1e3, metrics.latency_percentile(0.5) * 1e3);
  report += buf;
  print_transport_stats(report, env);
  emit_report(args, report);
  return client.done() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse_args(argc, argv);

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  std::signal(SIGPIPE, SIG_IGN);

  try {
    const auto manifest = leopard::net::Manifest::parse_file(args.manifest_path);
    if (!args.client && args.id >= manifest.n) {
      std::fprintf(stderr, "replica id %u out of range (n=%u); did you mean --client?\n",
                   args.id, manifest.n);
      return 2;
    }
    return args.client ? run_client(args, manifest) : run_replica(args, manifest);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "leopard_node: %s\n", e.what());
    return 2;
  }
}
