#!/usr/bin/env bash
# Launch a 4-node loopback Leopard cluster + closed-loop client, assert every
# request is acked and that all (honest) replicas report the same Execute-fold
# digest. This is the human-runnable twin of tests/socket_cluster_test.cpp and
# tests/chaos_wire_test.cpp (which is what CI runs, under ASan); see
# docs/DEPLOY.md.
#
# usage: tools/run_local_cluster.sh [BUILD_DIR] [PROTOCOL] [REQUESTS] [flags]
#   --shards S         run S parallel protocol shards per node (manifest key
#                      `shards`); replicas report per-shard digests plus the
#                      merged exec_digest, which must still match
#   --byzantine MODE   run one replica under a byzantine interposer
#                      (equivocate | silence | garbage-shares | laggard)
#   --byzantine-id N   which replica misbehaves (default 3; use 1 to attack
#                      the initial leader)
#   --lag-ms MS        frame delay for --byzantine laggard (default 150)
#   --proxy            route the last replica's dials through a chaos_proxy
#   --proxy-args "..." extra chaos_proxy flags, e.g.
#                      "--delay-ms 20 --jitter-ms 10 --drop-pct 1"
#                      (per-route --partition flags work too; routes listen on
#                      consecutive ports printed at startup)
set -euo pipefail

BUILD_DIR=build PROTOCOL=leopard REQUESTS=500
BYZ_MODE="" BYZ_ID=3 LAG_MS=150 USE_PROXY=0 PROXY_ARGS="" SHARDS=1
pos=0
while [ $# -gt 0 ]; do
  case "$1" in
    --shards)       SHARDS="$2"; shift 2 ;;
    --byzantine)    BYZ_MODE="$2"; shift 2 ;;
    --byzantine-id) BYZ_ID="$2"; shift 2 ;;
    --lag-ms)       LAG_MS="$2"; shift 2 ;;
    --proxy)        USE_PROXY=1; shift ;;
    --proxy-args)   PROXY_ARGS="$2"; shift 2 ;;
    --*)            echo "error: unknown flag $1"; exit 1 ;;
    *) case $pos in
         0) BUILD_DIR="$1" ;;
         1) PROTOCOL="$1" ;;
         2) REQUESTS="$1" ;;
         *) echo "error: too many positional args"; exit 1 ;;
       esac; pos=$((pos + 1)); shift ;;
  esac
done

NODE_BIN="$BUILD_DIR/leopard_node"
PROXY_BIN="$BUILD_DIR/chaos_proxy"
[ -x "$NODE_BIN" ] || { echo "error: $NODE_BIN not built (cmake --build $BUILD_DIR)"; exit 1; }
[ "$USE_PROXY" = 0 ] || [ -x "$PROXY_BIN" ] || { echo "error: $PROXY_BIN not built"; exit 1; }

WORK="$(mktemp -d /tmp/leopard_cluster.XXXXXX)"
trap 'kill $(cat "$WORK"/*.pid 2>/dev/null) 2>/dev/null || true; rm -rf "$WORK"' EXIT

# Equivocation is only contained through a view change; everything else should
# commit without one.
VIEW_TIMEOUT_MS=60000
[ "$BYZ_MODE" = "equivocate" ] && VIEW_TIMEOUT_MS=2000

PORT_BASE=$(( 20000 + RANDOM % 20000 ))
{
  echo "protocol $PROTOCOL"
  echo "n 4"
  echo "seed 7"
  echo "payload_size 128"
  echo "datablock_requests 100"
  echo "bftblock_links 8"
  echo "datablock_max_wait_ms 20"
  echo "proposal_max_wait_ms 10"
  echo "view_timeout_ms $VIEW_TIMEOUT_MS"
  echo "batch_size 100"
  echo "shards $SHARDS"
  for id in 0 1 2 3; do echo "node $id 127.0.0.1:$(( PORT_BASE + id ))"; done
} > "$WORK/cluster.conf"

# --proxy: replica 3 reaches each lower-id peer only through a chaos_proxy
# route (higher id dials lower, so its manifest's `proxy` lines cover all of
# its replica links). The proxy is a separate interposer process: kill -TERM
# it for forwarding stats, or pass --partition windows via --proxy-args.
if [ "$USE_PROXY" = 1 ]; then
  PROXY_PORT_BASE=$(( PORT_BASE + 10 ))
  ROUTE_FLAGS=()
  {
    cat "$WORK/cluster.conf"
    for id in 0 1 2; do
      echo "proxy $id 127.0.0.1:$(( PROXY_PORT_BASE + id ))"
    done
  } > "$WORK/node3.conf"
  for id in 0 1 2; do
    ROUTE_FLAGS+=(--route "$(( PROXY_PORT_BASE + id )):127.0.0.1:$(( PORT_BASE + id ))")
    echo "proxy route: :$(( PROXY_PORT_BASE + id )) -> replica $id"
  done
  # shellcheck disable=SC2086
  "$PROXY_BIN" "${ROUTE_FLAGS[@]}" $PROXY_ARGS > "$WORK/proxy.out" 2>&1 &
  echo $! > "$WORK/proxy.pid"
  sleep 0.2
fi

for id in 0 1 2 3; do
  MANIFEST="$WORK/cluster.conf"
  [ "$USE_PROXY" = 1 ] && [ "$id" = 3 ] && MANIFEST="$WORK/node3.conf"
  EXTRA=()
  if [ -n "$BYZ_MODE" ] && [ "$id" = "$BYZ_ID" ]; then
    EXTRA=(--byzantine "$BYZ_MODE")
    [ "$BYZ_MODE" = "laggard" ] && EXTRA+=(--byzantine-lag-ms "$LAG_MS")
    echo "replica $id: byzantine mode $BYZ_MODE"
  fi
  "$NODE_BIN" --manifest "$MANIFEST" --id "$id" "${EXTRA[@]+"${EXTRA[@]}"}" \
    --metrics-addr "127.0.0.1:$(( PORT_BASE + 100 + id ))" \
    > "$WORK/replica$id.out" 2>&1 &
  echo $! > "$WORK/replica$id.pid"
done

# Health gate: don't declare the cluster up (or start the client) until every
# replica's /healthz answers. Catches a replica that died on startup with a
# clear message instead of a hung client.
for id in 0 1 2 3; do
  HEALTH_URL="http://127.0.0.1:$(( PORT_BASE + 100 + id ))/healthz"
  for attempt in $(seq 1 50); do
    if curl -sf --max-time 1 "$HEALTH_URL" > /dev/null 2>&1; then break; fi
    kill -0 "$(cat "$WORK/replica$id.pid")" 2>/dev/null \
      || { echo "FAIL: replica $id exited before becoming healthy"; cat "$WORK/replica$id.out"; exit 1; }
    [ "$attempt" = 50 ] && { echo "FAIL: replica $id /healthz never came up"; exit 1; }
    sleep 0.1
  done
done
echo "cluster up: /healthz ok on replicas 0-3 (metrics at ports $(( PORT_BASE + 100 ))-$(( PORT_BASE + 103 )))"

"$NODE_BIN" --manifest "$WORK/cluster.conf" --client --id 100 \
  --requests "$REQUESTS" --window 64 --timeout 120 | tee "$WORK/client.out"
grep -q "acked=$REQUESTS" "$WORK/client.out" || { echo "FAIL: client not fully acked"; exit 1; }

if [ "$USE_PROXY" = 1 ]; then
  kill -TERM "$(cat "$WORK/proxy.pid")" 2>/dev/null || true
  wait "$(cat "$WORK/proxy.pid")" 2>/dev/null || true
  grep -h "role=chaos_proxy" "$WORK/proxy.out" || true
fi
for id in 0 1 2 3; do kill -TERM "$(cat "$WORK/replica$id.pid")"; done
for id in 0 1 2 3; do wait "$(cat "$WORK/replica$id.pid")" || { echo "FAIL: replica $id unclean exit"; exit 1; }; done

# A byzantine replica is allowed to diverge (it lies to itself too); honest
# replicas must agree.
HONEST_OUTS=()
for id in 0 1 2 3; do
  if [ -n "$BYZ_MODE" ] && [ "$id" = "$BYZ_ID" ]; then continue; fi
  HONEST_OUTS+=("$WORK/replica$id.out")
done
DIGESTS=$(grep -ho "exec_digest=[0-9a-f]*" "${HONEST_OUTS[@]}" | sort -u)
echo "$DIGESTS"
[ "$(echo "$DIGESTS" | wc -l)" -eq 1 ] || { echo "FAIL: replica digests diverged"; exit 1; }
if [ -n "$BYZ_MODE" ]; then
  grep -ho "byz_[a-z]*=[0-9]*" "$WORK/replica$BYZ_ID.out" | tr '\n' ' '; echo
fi
echo "OK: $REQUESTS requests committed end to end on $PROTOCOL, honest digests match"
