#!/usr/bin/env bash
# Launch a 4-node loopback Leopard cluster + closed-loop client, assert every
# request is acked and that all replicas report the same Execute-fold digest.
# This is the human-runnable twin of tests/socket_cluster_test.cpp (which is
# what CI runs, under ASan); see docs/DEPLOY.md.
#
# usage: tools/run_local_cluster.sh [BUILD_DIR] [PROTOCOL] [REQUESTS]
set -euo pipefail

BUILD_DIR="${1:-build}"
PROTOCOL="${2:-leopard}"
REQUESTS="${3:-500}"
NODE_BIN="$BUILD_DIR/leopard_node"
[ -x "$NODE_BIN" ] || { echo "error: $NODE_BIN not built (cmake --build $BUILD_DIR)"; exit 1; }

WORK="$(mktemp -d /tmp/leopard_cluster.XXXXXX)"
trap 'kill $(cat "$WORK"/*.pid 2>/dev/null) 2>/dev/null || true; rm -rf "$WORK"' EXIT

PORT_BASE=$(( 20000 + RANDOM % 20000 ))
{
  echo "protocol $PROTOCOL"
  echo "n 4"
  echo "seed 7"
  echo "payload_size 128"
  echo "datablock_requests 100"
  echo "bftblock_links 8"
  echo "datablock_max_wait_ms 20"
  echo "proposal_max_wait_ms 10"
  echo "view_timeout_ms 60000"
  echo "batch_size 100"
  for id in 0 1 2 3; do echo "node $id 127.0.0.1:$(( PORT_BASE + id ))"; done
} > "$WORK/cluster.conf"

for id in 0 1 2 3; do
  "$NODE_BIN" --manifest "$WORK/cluster.conf" --id "$id" > "$WORK/replica$id.out" 2>&1 &
  echo $! > "$WORK/replica$id.pid"
done

"$NODE_BIN" --manifest "$WORK/cluster.conf" --client --id 100 \
  --requests "$REQUESTS" --window 64 --timeout 120 | tee "$WORK/client.out"
grep -q "acked=$REQUESTS" "$WORK/client.out" || { echo "FAIL: client not fully acked"; exit 1; }

for id in 0 1 2 3; do kill -TERM "$(cat "$WORK/replica$id.pid")"; done
for id in 0 1 2 3; do wait "$(cat "$WORK/replica$id.pid")" || { echo "FAIL: replica $id unclean exit"; exit 1; }; done

DIGESTS=$(grep -ho "exec_digest=[0-9a-f]*" "$WORK"/replica*.out | sort -u)
echo "$DIGESTS"
[ "$(echo "$DIGESTS" | wc -l)" -eq 1 ] || { echo "FAIL: replica digests diverged"; exit 1; }
echo "OK: $REQUESTS requests committed end to end on $PROTOCOL, digests match"
