file(REMOVE_RECURSE
  "CMakeFiles/bench_fig01_baseline_scalability.dir/bench/bench_fig01_baseline_scalability.cpp.o"
  "CMakeFiles/bench_fig01_baseline_scalability.dir/bench/bench_fig01_baseline_scalability.cpp.o.d"
  "bench_fig01_baseline_scalability"
  "bench_fig01_baseline_scalability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig01_baseline_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
