file(REMOVE_RECURSE
  "CMakeFiles/crypto_threshold_test.dir/tests/crypto_threshold_test.cpp.o"
  "CMakeFiles/crypto_threshold_test.dir/tests/crypto_threshold_test.cpp.o.d"
  "crypto_threshold_test"
  "crypto_threshold_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crypto_threshold_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
