# Empty dependencies file for crypto_threshold_test.
# This may be replaced when dependencies are built.
