
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/cost_model.cpp" "CMakeFiles/leopard.dir/src/analysis/cost_model.cpp.o" "gcc" "CMakeFiles/leopard.dir/src/analysis/cost_model.cpp.o.d"
  "/root/repo/src/baselines/hotstuff.cpp" "CMakeFiles/leopard.dir/src/baselines/hotstuff.cpp.o" "gcc" "CMakeFiles/leopard.dir/src/baselines/hotstuff.cpp.o.d"
  "/root/repo/src/baselines/pbft.cpp" "CMakeFiles/leopard.dir/src/baselines/pbft.cpp.o" "gcc" "CMakeFiles/leopard.dir/src/baselines/pbft.cpp.o.d"
  "/root/repo/src/core/client.cpp" "CMakeFiles/leopard.dir/src/core/client.cpp.o" "gcc" "CMakeFiles/leopard.dir/src/core/client.cpp.o.d"
  "/root/repo/src/core/replica.cpp" "CMakeFiles/leopard.dir/src/core/replica.cpp.o" "gcc" "CMakeFiles/leopard.dir/src/core/replica.cpp.o.d"
  "/root/repo/src/crypto/digest.cpp" "CMakeFiles/leopard.dir/src/crypto/digest.cpp.o" "gcc" "CMakeFiles/leopard.dir/src/crypto/digest.cpp.o.d"
  "/root/repo/src/crypto/hmac.cpp" "CMakeFiles/leopard.dir/src/crypto/hmac.cpp.o" "gcc" "CMakeFiles/leopard.dir/src/crypto/hmac.cpp.o.d"
  "/root/repo/src/crypto/merkle.cpp" "CMakeFiles/leopard.dir/src/crypto/merkle.cpp.o" "gcc" "CMakeFiles/leopard.dir/src/crypto/merkle.cpp.o.d"
  "/root/repo/src/crypto/sha256.cpp" "CMakeFiles/leopard.dir/src/crypto/sha256.cpp.o" "gcc" "CMakeFiles/leopard.dir/src/crypto/sha256.cpp.o.d"
  "/root/repo/src/crypto/threshold_sig.cpp" "CMakeFiles/leopard.dir/src/crypto/threshold_sig.cpp.o" "gcc" "CMakeFiles/leopard.dir/src/crypto/threshold_sig.cpp.o.d"
  "/root/repo/src/erasure/gf256.cpp" "CMakeFiles/leopard.dir/src/erasure/gf256.cpp.o" "gcc" "CMakeFiles/leopard.dir/src/erasure/gf256.cpp.o.d"
  "/root/repo/src/erasure/reed_solomon.cpp" "CMakeFiles/leopard.dir/src/erasure/reed_solomon.cpp.o" "gcc" "CMakeFiles/leopard.dir/src/erasure/reed_solomon.cpp.o.d"
  "/root/repo/src/harness/experiment.cpp" "CMakeFiles/leopard.dir/src/harness/experiment.cpp.o" "gcc" "CMakeFiles/leopard.dir/src/harness/experiment.cpp.o.d"
  "/root/repo/src/net/event_loop.cpp" "CMakeFiles/leopard.dir/src/net/event_loop.cpp.o" "gcc" "CMakeFiles/leopard.dir/src/net/event_loop.cpp.o.d"
  "/root/repo/src/net/manifest.cpp" "CMakeFiles/leopard.dir/src/net/manifest.cpp.o" "gcc" "CMakeFiles/leopard.dir/src/net/manifest.cpp.o.d"
  "/root/repo/src/net/socket_env.cpp" "CMakeFiles/leopard.dir/src/net/socket_env.cpp.o" "gcc" "CMakeFiles/leopard.dir/src/net/socket_env.cpp.o.d"
  "/root/repo/src/net/timer_wheel.cpp" "CMakeFiles/leopard.dir/src/net/timer_wheel.cpp.o" "gcc" "CMakeFiles/leopard.dir/src/net/timer_wheel.cpp.o.d"
  "/root/repo/src/net/wire.cpp" "CMakeFiles/leopard.dir/src/net/wire.cpp.o" "gcc" "CMakeFiles/leopard.dir/src/net/wire.cpp.o.d"
  "/root/repo/src/proto/messages.cpp" "CMakeFiles/leopard.dir/src/proto/messages.cpp.o" "gcc" "CMakeFiles/leopard.dir/src/proto/messages.cpp.o.d"
  "/root/repo/src/protocol/factory.cpp" "CMakeFiles/leopard.dir/src/protocol/factory.cpp.o" "gcc" "CMakeFiles/leopard.dir/src/protocol/factory.cpp.o.d"
  "/root/repo/src/protocol/protocol.cpp" "CMakeFiles/leopard.dir/src/protocol/protocol.cpp.o" "gcc" "CMakeFiles/leopard.dir/src/protocol/protocol.cpp.o.d"
  "/root/repo/src/protocol/replay.cpp" "CMakeFiles/leopard.dir/src/protocol/replay.cpp.o" "gcc" "CMakeFiles/leopard.dir/src/protocol/replay.cpp.o.d"
  "/root/repo/src/protocol/sim_env.cpp" "CMakeFiles/leopard.dir/src/protocol/sim_env.cpp.o" "gcc" "CMakeFiles/leopard.dir/src/protocol/sim_env.cpp.o.d"
  "/root/repo/src/sim/event_queue.cpp" "CMakeFiles/leopard.dir/src/sim/event_queue.cpp.o" "gcc" "CMakeFiles/leopard.dir/src/sim/event_queue.cpp.o.d"
  "/root/repo/src/sim/network.cpp" "CMakeFiles/leopard.dir/src/sim/network.cpp.o" "gcc" "CMakeFiles/leopard.dir/src/sim/network.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "CMakeFiles/leopard.dir/src/sim/simulator.cpp.o" "gcc" "CMakeFiles/leopard.dir/src/sim/simulator.cpp.o.d"
  "/root/repo/src/sim/traffic.cpp" "CMakeFiles/leopard.dir/src/sim/traffic.cpp.o" "gcc" "CMakeFiles/leopard.dir/src/sim/traffic.cpp.o.d"
  "/root/repo/src/util/bytes.cpp" "CMakeFiles/leopard.dir/src/util/bytes.cpp.o" "gcc" "CMakeFiles/leopard.dir/src/util/bytes.cpp.o.d"
  "/root/repo/src/util/hex.cpp" "CMakeFiles/leopard.dir/src/util/hex.cpp.o" "gcc" "CMakeFiles/leopard.dir/src/util/hex.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "CMakeFiles/leopard.dir/src/util/rng.cpp.o" "gcc" "CMakeFiles/leopard.dir/src/util/rng.cpp.o.d"
  "/root/repo/src/util/worker_pool.cpp" "CMakeFiles/leopard.dir/src/util/worker_pool.cpp.o" "gcc" "CMakeFiles/leopard.dir/src/util/worker_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
