# Empty dependencies file for leopard.
# This may be replaced when dependencies are built.
