file(REMOVE_RECURSE
  "libleopard.a"
)
