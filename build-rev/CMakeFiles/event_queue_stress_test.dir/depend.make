# Empty dependencies file for event_queue_stress_test.
# This may be replaced when dependencies are built.
