# Empty compiler generated dependencies file for bench_fig02_leader_bottleneck.
# This may be replaced when dependencies are built.
