file(REMOVE_RECURSE
  "CMakeFiles/bench_fig02_leader_bottleneck.dir/bench/bench_fig02_leader_bottleneck.cpp.o"
  "CMakeFiles/bench_fig02_leader_bottleneck.dir/bench/bench_fig02_leader_bottleneck.cpp.o.d"
  "bench_fig02_leader_bottleneck"
  "bench_fig02_leader_bottleneck.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig02_leader_bottleneck.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
