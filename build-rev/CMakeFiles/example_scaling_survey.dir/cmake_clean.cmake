file(REMOVE_RECURSE
  "CMakeFiles/example_scaling_survey.dir/examples/scaling_survey.cpp.o"
  "CMakeFiles/example_scaling_survey.dir/examples/scaling_survey.cpp.o.d"
  "example_scaling_survey"
  "example_scaling_survey.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_scaling_survey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
