# Empty dependencies file for example_scaling_survey.
# This may be replaced when dependencies are built.
