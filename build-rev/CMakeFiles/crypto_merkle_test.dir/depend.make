# Empty dependencies file for crypto_merkle_test.
# This may be replaced when dependencies are built.
