file(REMOVE_RECURSE
  "CMakeFiles/crypto_merkle_test.dir/tests/crypto_merkle_test.cpp.o"
  "CMakeFiles/crypto_merkle_test.dir/tests/crypto_merkle_test.cpp.o.d"
  "crypto_merkle_test"
  "crypto_merkle_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crypto_merkle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
