file(REMOVE_RECURSE
  "CMakeFiles/crypto_sha256_test.dir/tests/crypto_sha256_test.cpp.o"
  "CMakeFiles/crypto_sha256_test.dir/tests/crypto_sha256_test.cpp.o.d"
  "crypto_sha256_test"
  "crypto_sha256_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crypto_sha256_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
