# Empty compiler generated dependencies file for bench_fig06_hotstuff_batch.
# This may be replaced when dependencies are built.
