file(REMOVE_RECURSE
  "CMakeFiles/bench_fig06_hotstuff_batch.dir/bench/bench_fig06_hotstuff_batch.cpp.o"
  "CMakeFiles/bench_fig06_hotstuff_batch.dir/bench/bench_fig06_hotstuff_batch.cpp.o.d"
  "bench_fig06_hotstuff_batch"
  "bench_fig06_hotstuff_batch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_hotstuff_batch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
