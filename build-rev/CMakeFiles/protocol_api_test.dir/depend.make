# Empty dependencies file for protocol_api_test.
# This may be replaced when dependencies are built.
