file(REMOVE_RECURSE
  "CMakeFiles/protocol_api_test.dir/tests/protocol_api_test.cpp.o"
  "CMakeFiles/protocol_api_test.dir/tests/protocol_api_test.cpp.o.d"
  "protocol_api_test"
  "protocol_api_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protocol_api_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
