# Empty dependencies file for example_byzantine_resilience.
# This may be replaced when dependencies are built.
