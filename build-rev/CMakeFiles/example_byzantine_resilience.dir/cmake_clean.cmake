file(REMOVE_RECURSE
  "CMakeFiles/example_byzantine_resilience.dir/examples/byzantine_resilience.cpp.o"
  "CMakeFiles/example_byzantine_resilience.dir/examples/byzantine_resilience.cpp.o.d"
  "example_byzantine_resilience"
  "example_byzantine_resilience.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_byzantine_resilience.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
