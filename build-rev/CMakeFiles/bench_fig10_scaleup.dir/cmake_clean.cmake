file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_scaleup.dir/bench/bench_fig10_scaleup.cpp.o"
  "CMakeFiles/bench_fig10_scaleup.dir/bench/bench_fig10_scaleup.cpp.o.d"
  "bench_fig10_scaleup"
  "bench_fig10_scaleup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_scaleup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
