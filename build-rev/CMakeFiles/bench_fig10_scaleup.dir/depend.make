# Empty dependencies file for bench_fig10_scaleup.
# This may be replaced when dependencies are built.
