file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_retrieval_strategy.dir/bench/bench_abl_retrieval_strategy.cpp.o"
  "CMakeFiles/bench_abl_retrieval_strategy.dir/bench/bench_abl_retrieval_strategy.cpp.o.d"
  "bench_abl_retrieval_strategy"
  "bench_abl_retrieval_strategy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_retrieval_strategy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
