# Empty dependencies file for bench_abl_retrieval_strategy.
# This may be replaced when dependencies are built.
