# Empty dependencies file for bench_abl_scaling_factor.
# This may be replaced when dependencies are built.
