file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_scaling_factor.dir/bench/bench_abl_scaling_factor.cpp.o"
  "CMakeFiles/bench_abl_scaling_factor.dir/bench/bench_abl_scaling_factor.cpp.o.d"
  "bench_abl_scaling_factor"
  "bench_abl_scaling_factor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_scaling_factor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
