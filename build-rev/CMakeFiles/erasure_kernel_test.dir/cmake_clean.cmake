file(REMOVE_RECURSE
  "CMakeFiles/erasure_kernel_test.dir/tests/erasure_kernel_test.cpp.o"
  "CMakeFiles/erasure_kernel_test.dir/tests/erasure_kernel_test.cpp.o.d"
  "erasure_kernel_test"
  "erasure_kernel_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/erasure_kernel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
