# Empty dependencies file for erasure_kernel_test.
# This may be replaced when dependencies are built.
