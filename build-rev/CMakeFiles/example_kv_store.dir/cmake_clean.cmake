file(REMOVE_RECURSE
  "CMakeFiles/example_kv_store.dir/examples/kv_store.cpp.o"
  "CMakeFiles/example_kv_store.dir/examples/kv_store.cpp.o.d"
  "example_kv_store"
  "example_kv_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_kv_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
