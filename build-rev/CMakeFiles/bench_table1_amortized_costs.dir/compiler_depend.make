# Empty compiler generated dependencies file for bench_table1_amortized_costs.
# This may be replaced when dependencies are built.
