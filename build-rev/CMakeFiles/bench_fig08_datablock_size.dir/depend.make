# Empty dependencies file for bench_fig08_datablock_size.
# This may be replaced when dependencies are built.
