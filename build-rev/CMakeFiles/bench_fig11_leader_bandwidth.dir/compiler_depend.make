# Empty compiler generated dependencies file for bench_fig11_leader_bandwidth.
# This may be replaced when dependencies are built.
