file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_leader_bandwidth.dir/bench/bench_fig11_leader_bandwidth.cpp.o"
  "CMakeFiles/bench_fig11_leader_bandwidth.dir/bench/bench_fig11_leader_bandwidth.cpp.o.d"
  "bench_fig11_leader_bandwidth"
  "bench_fig11_leader_bandwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_leader_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
