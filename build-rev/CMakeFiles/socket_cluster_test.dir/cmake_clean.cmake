file(REMOVE_RECURSE
  "CMakeFiles/socket_cluster_test.dir/tests/socket_cluster_test.cpp.o"
  "CMakeFiles/socket_cluster_test.dir/tests/socket_cluster_test.cpp.o.d"
  "socket_cluster_test"
  "socket_cluster_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/socket_cluster_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
