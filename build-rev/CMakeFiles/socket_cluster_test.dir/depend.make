# Empty dependencies file for socket_cluster_test.
# This may be replaced when dependencies are built.
