# Empty dependencies file for bench_fig12_retrieval.
# This may be replaced when dependencies are built.
