file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_retrieval.dir/bench/bench_fig12_retrieval.cpp.o"
  "CMakeFiles/bench_fig12_retrieval.dir/bench/bench_fig12_retrieval.cpp.o.d"
  "bench_fig12_retrieval"
  "bench_fig12_retrieval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_retrieval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
