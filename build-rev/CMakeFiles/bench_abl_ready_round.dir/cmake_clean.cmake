file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_ready_round.dir/bench/bench_abl_ready_round.cpp.o"
  "CMakeFiles/bench_abl_ready_round.dir/bench/bench_abl_ready_round.cpp.o.d"
  "bench_abl_ready_round"
  "bench_abl_ready_round.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_ready_round.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
