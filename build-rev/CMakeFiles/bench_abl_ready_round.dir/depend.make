# Empty dependencies file for bench_abl_ready_round.
# This may be replaced when dependencies are built.
