file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_scalability.dir/bench/bench_fig09_scalability.cpp.o"
  "CMakeFiles/bench_fig09_scalability.dir/bench/bench_fig09_scalability.cpp.o.d"
  "bench_fig09_scalability"
  "bench_fig09_scalability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
