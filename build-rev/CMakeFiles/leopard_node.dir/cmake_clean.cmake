file(REMOVE_RECURSE
  "CMakeFiles/leopard_node.dir/tools/leopard_node.cpp.o"
  "CMakeFiles/leopard_node.dir/tools/leopard_node.cpp.o.d"
  "leopard_node"
  "leopard_node.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/leopard_node.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
