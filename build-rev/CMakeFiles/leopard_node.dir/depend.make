# Empty dependencies file for leopard_node.
# This may be replaced when dependencies are built.
