file(REMOVE_RECURSE
  "CMakeFiles/core_leopard_test.dir/tests/core_leopard_test.cpp.o"
  "CMakeFiles/core_leopard_test.dir/tests/core_leopard_test.cpp.o.d"
  "core_leopard_test"
  "core_leopard_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_leopard_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
