# Empty dependencies file for core_leopard_test.
# This may be replaced when dependencies are built.
