file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_viewchange.dir/bench/bench_fig13_viewchange.cpp.o"
  "CMakeFiles/bench_fig13_viewchange.dir/bench/bench_fig13_viewchange.cpp.o.d"
  "bench_fig13_viewchange"
  "bench_fig13_viewchange.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_viewchange.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
