# Empty dependencies file for bench_fig13_viewchange.
# This may be replaced when dependencies are built.
