# Empty compiler generated dependencies file for bench_table3_bandwidth_breakdown.
# This may be replaced when dependencies are built.
