file(REMOVE_RECURSE
  "CMakeFiles/bench_erasure_kernel.dir/bench/bench_erasure_kernel.cpp.o"
  "CMakeFiles/bench_erasure_kernel.dir/bench/bench_erasure_kernel.cpp.o.d"
  "bench_erasure_kernel"
  "bench_erasure_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_erasure_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
