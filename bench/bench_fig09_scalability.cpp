// Figure 9 (headline result): Leopard vs HotStuff throughput at different
// scales, with the Table II batch parameters. The paper's claims to
// reproduce: Leopard stays near 10^5 req/s through n = 600 while HotStuff
// collapses; ≈5× advantage at n = 300, widening beyond.
//
// Also echoes Table II (the batch parameters used per n).
#include "bench_common.hpp"

namespace {

using namespace leopard;

bench::TablePrinter& table() {
  static bench::TablePrinter t(
      "Figure 9: throughput at different scales (p = 128 B, Table II batches)",
      {"protocol", "n", "datablock", "bftblock", "kreqs/s"});
  return t;
}

void BM_Leopard(benchmark::State& state) {
  harness::ExperimentConfig cfg;
  cfg.n = static_cast<std::uint32_t>(state.range(0));
  bench::apply_table2_batches(cfg);
  const auto r = bench::run_and_count(state, cfg);
  table().add_row({"Leopard", std::to_string(cfg.n), std::to_string(cfg.datablock_requests),
                   std::to_string(cfg.bftblock_links), bench::fmt(r.throughput_kreqs)});
}

void BM_HotStuff(benchmark::State& state) {
  harness::ExperimentConfig cfg;
  cfg.protocol = harness::Protocol::kHotStuff;
  cfg.n = static_cast<std::uint32_t>(state.range(0));
  cfg.batch_size = 800;  // Table II
  cfg.warmup = sim::kSecond;
  cfg.measure = 3 * sim::kSecond;
  const auto r = bench::run_and_count(state, cfg);
  table().add_row({"HotStuff", std::to_string(cfg.n), "-", "800",
                   bench::fmt(r.throughput_kreqs)});
}

}  // namespace

BENCHMARK(BM_Leopard)->Arg(32)->Arg(64)->Arg(128)->Arg(256)->Arg(300)->Arg(400)->Arg(600)
    ->Iterations(1)->Unit(benchmark::kMillisecond);
// The paper notes the HotStuff implementation "can hardly work when n > 300".
BENCHMARK(BM_HotStuff)->Arg(32)->Arg(64)->Arg(128)->Arg(256)->Arg(300)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
