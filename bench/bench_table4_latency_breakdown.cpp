// Table IV: latency breakdown of Leopard with n = 32. The paper's takeaway:
// datablock preparation (generation + dissemination) dominates end-to-end
// latency (>60%), agreement is ~36%, the client response is negligible —
// motivating engineering work on data delivery, not on consensus.
#include "bench_common.hpp"

namespace {

using namespace leopard;

harness::ExperimentResult g_result;

void BM_Table4(benchmark::State& state) {
  harness::ExperimentConfig cfg;
  cfg.n = 32;
  bench::apply_table2_batches(cfg);
  g_result = bench::run_and_count(state, cfg);
  state.counters["frac_dissemination"] = g_result.frac_dissemination;
  state.counters["frac_agreement"] = g_result.frac_agreement;
}

}  // namespace

BENCHMARK(BM_Table4)->Iterations(1)->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  const auto& r = g_result;
  std::printf("\n=== Table IV: latency breakdown of Leopard (n = 32) ===\n");
  std::printf("%-36s%s\n", "Usage", "%Latency");
  std::printf("%-36s%s%%\n", "Datablock Generation",
              leopard::bench::fmt(100 * r.frac_generation, 2).c_str());
  std::printf("%-36s%s%%\n", "Datablock Dissemination",
              leopard::bench::fmt(100 * r.frac_dissemination, 2).c_str());
  std::printf("%-36s%s%%\n", "  (Datablock Preparation SUM)",
              leopard::bench::fmt(100 * (r.frac_generation + r.frac_dissemination), 2).c_str());
  std::printf("%-36s%s%%\n", "Agreement",
              leopard::bench::fmt(100 * r.frac_agreement, 2).c_str());
  std::printf("%-36s%s%%\n", "Response to the Client",
              leopard::bench::fmt(100 * r.frac_response, 2).c_str());
  std::printf("(mean end-to-end latency: %.2f s)\n", r.mean_latency_sec);
  return 0;
}
