// Figure 8: Leopard throughput on varying datablock sizes (α in requests),
// with the BFTblock size fixed at 10 links (top panel: n = 32/64/128) and at
// 100 links (bottom panel: n = 256/400). Small datablocks multiply the
// per-datablock fixed costs — the ready round (n messages to the leader per
// datablock), per-message dispatch, hashing — so throughput rises with α and
// then flattens.
#include "bench_common.hpp"

namespace {

using namespace leopard;

bench::TablePrinter& table() {
  static bench::TablePrinter t("Figure 8: Leopard throughput vs datablock size (Kreq/s)",
                               {"n", "bftblock", "datablock", "kreqs/s"});
  return t;
}

void BM_LeopardDatablockSize(benchmark::State& state) {
  harness::ExperimentConfig cfg;
  cfg.n = static_cast<std::uint32_t>(state.range(0));
  cfg.bftblock_links = static_cast<std::uint32_t>(state.range(1));
  cfg.datablock_requests = static_cast<std::uint32_t>(state.range(2));
  const auto r = bench::run_and_count(state, cfg);
  table().add_row({std::to_string(cfg.n), std::to_string(cfg.bftblock_links),
                   std::to_string(cfg.datablock_requests), bench::fmt(r.throughput_kreqs)});
}

}  // namespace

// Top panel: BFTblock fixed at 10 links.
BENCHMARK(BM_LeopardDatablockSize)
    ->ArgsProduct({{32, 64, 128}, {10}, {100, 250, 500, 1000, 2000, 4000}})
    ->Iterations(1)->Unit(benchmark::kMillisecond);
// Bottom panel: BFTblock fixed at 100 links.
BENCHMARK(BM_LeopardDatablockSize)
    ->ArgsProduct({{256}, {100}, {2000, 3000, 4000}})
    ->Iterations(1)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
