// Figure 6: HotStuff throughput on varying batch sizes. Throughput rises with
// batch size (per-block fixed costs amortize) and then stops growing once the
// leader's per-request dissemination dominates.
#include "bench_common.hpp"

namespace {

using namespace leopard;

bench::TablePrinter& table() {
  static bench::TablePrinter t("Figure 6: HotStuff throughput vs batch size (Kreq/s)",
                               {"n", "batch", "kreqs/s"});
  return t;
}

void BM_HotStuffBatch(benchmark::State& state) {
  harness::ExperimentConfig cfg;
  cfg.protocol = harness::Protocol::kHotStuff;
  cfg.n = static_cast<std::uint32_t>(state.range(0));
  cfg.batch_size = static_cast<std::uint32_t>(state.range(1));
  cfg.warmup = sim::kSecond;
  cfg.measure = 3 * sim::kSecond;
  const auto r = bench::run_and_count(state, cfg);
  table().add_row({std::to_string(cfg.n), std::to_string(cfg.batch_size),
                   bench::fmt(r.throughput_kreqs)});
}

}  // namespace

BENCHMARK(BM_HotStuffBatch)
    ->ArgsProduct({{32, 64, 128, 256, 300}, {50, 100, 200, 400, 800, 1200}})
    ->Iterations(1)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
