// Figure 12 + Table V: communication and time costs of retrieving a missing
// datablock (2000 requests × 128 B) at different scales, under a selective
// attacker whose datablocks reach only the leader and one other replica.
//
// Reproduces: the querier's recovery cost stays ≈ α (325→356 KB in the
// paper) while each responder's cost collapses with n (163 KB → 8 KB) thanks
// to (f+1, n) erasure coding; retrieval time stays in tens of milliseconds.
// The closed-form §V bounds are printed alongside the measurements.
#include "bench_common.hpp"

#include <algorithm>

#include "analysis/cost_model.hpp"

namespace {

using namespace leopard;

bench::TablePrinter& table() {
  static bench::TablePrinter t(
      "Figure 12 / Table V: datablock retrieval costs (2000-request datablock)",
      {"n", "recover_KB", "model_KB", "respond_KB", "model_KB", "time_ms"});
  return t;
}

void BM_Retrieval(benchmark::State& state) {
  harness::ExperimentConfig cfg;
  cfg.n = static_cast<std::uint32_t>(state.range(0));
  cfg.datablock_requests = 2000;
  cfg.bftblock_links = 4;
  // Modest load (well under capacity at every n): isolate retrieval costs.
  cfg.offered_load = std::min(4000.0 * cfg.n / 4.0, 50000.0);
  cfg.byzantine_count = 1;
  // s = 2f recipients: the ready quorum is met exactly, so withheld
  // datablocks get linked and the remaining f replicas must retrieve.
  cfg.byzantine_spec.selective_recipients = 2 * ((cfg.n - 1) / 3);
  cfg.warmup = 2 * sim::kSecond;
  cfg.measure = 8 * sim::kSecond;
  const auto r = bench::run_and_count(state, cfg);

  state.counters["recover_KB"] = r.recover_bytes_per_datablock / 1e3;
  state.counters["respond_KB"] = r.respond_bytes_per_response / 1e3;
  state.counters["time_ms"] = r.mean_recovery_time_sec * 1e3;
  state.counters["recovered"] = static_cast<double>(r.datablocks_recovered);

  const double alpha = 2000.0 * 128.0;
  table().add_row({std::to_string(cfg.n), bench::fmt(r.recover_bytes_per_datablock / 1e3),
                   bench::fmt(analysis::retrieval_recover_bytes(cfg.n, alpha) / 1e3),
                   bench::fmt(r.respond_bytes_per_response / 1e3),
                   bench::fmt(analysis::retrieval_respond_bytes(cfg.n, alpha) / 1e3),
                   bench::fmt(r.mean_recovery_time_sec * 1e3)});
}

}  // namespace

BENCHMARK(BM_Retrieval)->Arg(4)->Arg(7)->Arg(16)->Arg(32)->Arg(64)->Arg(128)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
