// Wire-speed transport benchmark: the zero-copy outbound path, the loopback
// stream path, and the per-shard io-thread scaling, in three sections:
//
//   zero_copy  — broadcasts a 64 KiB chunk to 15 peers and counter-asserts
//                that the whole fanout performed exactly ONE payload
//                serialization (the tentpole invariant: every peer queue
//                aliases the same refcounted body). fanout_per_copy is
//                deterministic — 15 enqueued frames per serialization — and
//                is the gated metric.
//   stream     — two SocketEnvs over real loopback TCP on two threads:
//                frames/s on 64-byte payloads, MB/s on 64 KiB payloads, and
//                p99 round-trip latency on a 1-deep ping-pong. Wall-clock on
//                shared hardware: recorded as trajectory, never gated.
//   io_threads — a real 4-replica S=4 loopback cluster (forked leopard_node
//                processes) at --io-threads 1 vs 4. The speedup ratio only
//                means anything with >= 4 hardware threads; the record
//                carries hw_threads so the regression checker can skip the
//                gate on small runners.
//
// Usage: bench_wire [--smoke] [--no-loopback] [--no-acceptance]
//   --smoke          tiny targets / short timings, for CI smoke runs.
//   --no-loopback    zero_copy section only (CI gate uses this: the fanout
//                    ratio is the portable signal; stream numbers are
//                    wall-clock noise on shared runners).
//   --no-acceptance  record but do not enforce the single-copy assertion.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "net/socket_env.hpp"
#include "net/wire.hpp"
#include "proto/messages.hpp"
#include "sim/time.hpp"
#include "util/rng.hpp"

#ifdef LEOPARD_NODE_BIN
#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#endif

namespace {

using namespace leopard;
using Clock = std::chrono::steady_clock;

std::string fmt1(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1f", v);
  return buf;
}

std::string fmt2(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f", v);
  return buf;
}

std::shared_ptr<proto::ChunkResponseMsg> make_chunk(std::size_t bytes, std::uint64_t seed) {
  auto m = std::make_shared<proto::ChunkResponseMsg>();
  m->chunk.resize(bytes);
  util::Rng rng(seed);
  rng.fill(m->chunk.data(), m->chunk.size());
  m->chunk_size = static_cast<std::uint32_t>(bytes);
  m->leaf_count = 1;
  return m;
}

// ---------------------------------------------------------------------------
// zero_copy section
// ---------------------------------------------------------------------------

struct ZeroCopyResult {
  std::uint64_t broadcasts = 0;
  std::uint64_t peers = 0;
  std::uint64_t payload_copies = 0;
  std::uint64_t frames_shared = 0;
  double fanout_per_copy = 0;
  double ns_per_broadcast = 0;
};

/// Broadcasts `broadcasts` 64 KiB chunks into a 16-replica SocketEnv with no
/// live connections: every frame lands in a disconnected-peer queue, which is
/// exactly where a copy-per-peer transport would pay 15 memcpys. The env's
/// own counters prove the fanout aliased one serialization.
ZeroCopyResult run_zero_copy(std::uint64_t broadcasts) {
  net::SocketEnvOptions opts;
  opts.self = 0;
  opts.n_replicas = 16;
  // Hold the whole run: 15 queues x broadcasts x ~64KiB of WIRE bytes —
  // but only broadcasts x 64KiB of actual memory, which is the point.
  opts.peer_buffer_limit = std::size_t{2} << 30;
  net::SocketEnv env(opts);

  const auto msg = make_chunk(64 * 1024, 42);
  const auto start = Clock::now();
  for (std::uint64_t i = 0; i < broadcasts; ++i) {
    env.broadcast_payload(/*instance=*/0, *msg);
  }
  const double elapsed = std::chrono::duration<double>(Clock::now() - start).count();

  const auto& s = env.stats();
  ZeroCopyResult r;
  r.broadcasts = broadcasts;
  r.peers = opts.n_replicas - 1;
  r.payload_copies = s.payload_copies;
  r.frames_shared = s.frames_shared;
  r.fanout_per_copy = s.payload_copies > 0
                          ? static_cast<double>(r.peers) * static_cast<double>(broadcasts) /
                                static_cast<double>(s.payload_copies)
                          : 0;
  r.ns_per_broadcast = broadcasts > 0 ? elapsed * 1e9 / static_cast<double>(broadcasts) : 0;
  if (s.frames_dropped != 0) {
    std::fprintf(stderr, "zero_copy: unexpected drops (%llu) — raise peer_buffer_limit\n",
                 static_cast<unsigned long long>(s.frames_dropped));
  }
  return r;
}

// ---------------------------------------------------------------------------
// stream section (two real SocketEnvs over loopback TCP)
// ---------------------------------------------------------------------------

constexpr std::uint64_t kBurstTimer = 1;
constexpr std::uint32_t kBurst = 64;

struct StreamPoint {
  double frames_per_s = 0;
  double mb_per_s = 0;
};

/// One-way throughput: a sender env pumps `target` frames of `payload_bytes`
/// at a receiver env over one loopback connection; the receiver timestamps
/// its first and last delivery so dial/rampup never pollute the rate.
StreamPoint run_stream_point(std::size_t payload_bytes, std::uint64_t target) {
  std::atomic<std::uint64_t> delivered{0};
  std::atomic<std::uint64_t> sent{0};
  Clock::time_point first_rx{}, last_rx{};

  net::SocketEnvOptions ropts;
  ropts.self = 0;
  ropts.n_replicas = 2;
  ropts.listen_host = "127.0.0.1";
  net::SocketEnv receiver(ropts);
  net::SocketEnv::InstanceHooks rhooks;
  rhooks.deliver = [&](sim::NodeId, const sim::PayloadPtr&) {
    const auto n = delivered.fetch_add(1, std::memory_order_relaxed) + 1;
    if (n == 1) first_rx = Clock::now();
    if (n == target) last_rx = Clock::now();
  };
  receiver.register_instance(0, std::move(rhooks));

  net::SocketEnvOptions sopts;
  sopts.self = 1;
  sopts.n_replicas = 2;
  sopts.dial[0] = net::PeerAddr{"127.0.0.1", receiver.listen_port()};
  net::SocketEnv sender(sopts);
  const auto msg = make_chunk(payload_bytes, payload_bytes);
  net::SocketEnv::InstanceHooks shooks;
  shooks.deliver = [](sim::NodeId, const sim::PayloadPtr&) {};
  shooks.on_start = [&] { sender.arm_instance_timer(0, kBurstTimer, 0); };
  // Window = frames queued but not yet flushed to the kernel; keeping it
  // bounded means the bench measures the wire, never the shed path.
  const std::uint64_t window = payload_bytes >= 16384 ? 64 : 1024;
  shooks.on_timer = [&](std::uint64_t) {
    // on_timer runs on the transport thread (no io-threads here), so reading
    // stats() is safe.
    for (std::uint32_t i = 0; i < kBurst; ++i) {
      const auto s = sent.load(std::memory_order_relaxed);
      // Signed: frames_sent includes the Hello frame, so it can exceed s.
      const auto inflight = static_cast<std::int64_t>(s) -
                            static_cast<std::int64_t>(sender.stats().frames_sent);
      if (s >= target || inflight >= static_cast<std::int64_t>(window)) break;
      sender.send_payload(0, /*to=*/0, *msg);
      sent.fetch_add(1, std::memory_order_relaxed);
    }
    if (sent.load(std::memory_order_relaxed) < target) {
      sender.arm_instance_timer(0, kBurstTimer, 0);
    } else {
      sender.arm_instance_timer(0, kBurstTimer, sim::kMillisecond);  // idle keep-alive
    }
  };
  sender.register_instance(0, std::move(shooks));

  std::thread rx([&] { receiver.run([&] { return delivered.load() >= target; }); });
  std::thread tx([&] { sender.run(); });
  rx.join();
  sender.stop();
  tx.join();

  StreamPoint p;
  const double elapsed = std::chrono::duration<double>(last_rx - first_rx).count();
  if (elapsed > 0 && target > 1) {
    p.frames_per_s = static_cast<double>(target - 1) / elapsed;
    p.mb_per_s = p.frames_per_s * static_cast<double>(payload_bytes) / 1e6;
  }
  return p;
}

/// Round-trip p50/p99 on a 1-deep ping-pong of 64-byte chunks: each frame
/// crosses the full encode → sendmsg → recv-in-place → decode path twice.
void run_stream_pingpong(std::uint64_t samples, double& p50_us, double& p99_us) {
  std::vector<double> rtts_us;
  rtts_us.reserve(samples);
  std::atomic<bool> done{false};
  Clock::time_point sent_at{};

  net::SocketEnvOptions ropts;
  ropts.self = 0;
  ropts.n_replicas = 2;
  ropts.listen_host = "127.0.0.1";
  net::SocketEnv echo(ropts);
  const auto pong = make_chunk(64, 7);
  net::SocketEnv::InstanceHooks ehooks;
  ehooks.deliver = [&](sim::NodeId from, const sim::PayloadPtr&) {
    echo.send_payload(0, from, *pong);
  };
  echo.register_instance(0, std::move(ehooks));

  net::SocketEnvOptions sopts;
  sopts.self = 1;
  sopts.n_replicas = 2;
  sopts.dial[0] = net::PeerAddr{"127.0.0.1", echo.listen_port()};
  net::SocketEnv pinger(sopts);
  const auto ping = make_chunk(64, 8);
  net::SocketEnv::InstanceHooks phooks;
  phooks.on_start = [&] {
    sent_at = Clock::now();
    pinger.send_payload(0, 0, *ping);
  };
  phooks.deliver = [&](sim::NodeId, const sim::PayloadPtr&) {
    const auto now = Clock::now();
    rtts_us.push_back(std::chrono::duration<double, std::micro>(now - sent_at).count());
    if (rtts_us.size() >= samples) {
      done.store(true);
      return;
    }
    sent_at = now;
    pinger.send_payload(0, 0, *ping);
  };
  pinger.register_instance(0, std::move(phooks));

  std::thread et([&] { echo.run([&] { return done.load(); }); });
  std::thread pt([&] { pinger.run([&] { return done.load(); }); });
  pt.join();
  echo.stop();
  et.join();

  std::sort(rtts_us.begin(), rtts_us.end());
  p50_us = rtts_us.empty() ? 0 : rtts_us[rtts_us.size() / 2];
  p99_us = rtts_us.empty() ? 0 : rtts_us[rtts_us.size() * 99 / 100];
}

// ---------------------------------------------------------------------------
// io_threads section (forked leopard_node cluster, like bench_shard)
// ---------------------------------------------------------------------------

#ifdef LEOPARD_NODE_BIN

pid_t spawn(const std::vector<std::string>& args, const std::string& out_path) {
  const pid_t pid = ::fork();
  if (pid != 0) return pid;
  const int fd = ::open(out_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd >= 0) {
    ::dup2(fd, STDOUT_FILENO);
    ::dup2(fd, STDERR_FILENO);
    ::close(fd);
  }
  std::vector<char*> argv;
  argv.push_back(const_cast<char*>(LEOPARD_NODE_BIN));
  for (const auto& a : args) argv.push_back(const_cast<char*>(a.c_str()));
  argv.push_back(nullptr);
  ::execv(LEOPARD_NODE_BIN, argv.data());
  std::perror("execv leopard_node");
  std::_Exit(127);
}

/// Acked kreq/s of a real 4-replica S=4 loopback cluster with each replica
/// running `io_threads` instance workers. Single-host wall clock: the io4/io1
/// ratio is only a scaling signal when the machine has the cores to back it.
/// Returns < 0 on any failure.
double run_io_point(std::uint32_t io_threads, std::uint32_t requests, int port_base) {
  namespace fs = std::filesystem;
  const fs::path work =
      fs::temp_directory_path() / ("leopard_bench_wire." + std::to_string(::getpid()) + "." +
                                   std::to_string(io_threads));
  std::error_code ec;
  fs::create_directories(work, ec);
  if (ec) return -1;

  const fs::path manifest = work / "cluster.conf";
  {
    std::ofstream m(manifest);
    m << "protocol leopard\nn 4\nseed 7\npayload_size 128\n"
      << "datablock_requests 200\nbftblock_links 8\n"
      << "datablock_max_wait_ms 5\nproposal_max_wait_ms 2\n"
      << "view_timeout_ms 60000\nbatch_size 100\n"
      << "shards 4\n";
    for (int id = 0; id < 4; ++id) {
      m << "node " << id << " 127.0.0.1:" << (port_base + id) << "\n";
    }
  }

  std::vector<pid_t> replicas;
  for (int id = 0; id < 4; ++id) {
    replicas.push_back(spawn({"--manifest", manifest.string(), "--id", std::to_string(id),
                              "--io-threads", std::to_string(io_threads)},
                             (work / ("replica" + std::to_string(id) + ".out")).string()));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(300));

  const auto start = Clock::now();
  const fs::path client_out = work / "client.out";
  const pid_t client = spawn({"--manifest", manifest.string(), "--client", "--id", "100",
                              "--requests", std::to_string(requests), "--window", "1024",
                              "--timeout", "120"},
                             client_out.string());
  int status = 0;
  ::waitpid(client, &status, 0);
  const double elapsed = std::chrono::duration<double>(Clock::now() - start).count();

  for (const auto pid : replicas) ::kill(pid, SIGTERM);
  for (const auto pid : replicas) ::waitpid(pid, nullptr, 0);

  bool acked_all = false;
  {
    std::ifstream in(client_out);
    std::stringstream ss;
    ss << in.rdbuf();
    acked_all = ss.str().find("acked=" + std::to_string(requests)) != std::string::npos;
  }
  fs::remove_all(work, ec);

  if (!WIFEXITED(status) || WEXITSTATUS(status) != 0 || !acked_all || elapsed <= 0) {
    std::fprintf(stderr, "io_threads=%u: client failed (status %d, acked_all=%d)\n",
                 io_threads, status, acked_all ? 1 : 0);
    return -1;
  }
  return static_cast<double>(requests) / elapsed / 1e3;
}

#endif  // LEOPARD_NODE_BIN

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool loopback = true;
  bool enforce_acceptance = true;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--no-loopback") == 0) {
      loopback = false;
    } else if (std::strcmp(argv[i], "--no-acceptance") == 0) {
      enforce_acceptance = false;
    } else {
      std::fprintf(stderr,
                   "unknown flag: %s\nusage: %s [--smoke] [--no-loopback] [--no-acceptance]\n",
                   argv[i], argv[0]);
      return 2;
    }
  }

  const unsigned hw_threads = std::max(1u, std::thread::hardware_concurrency());
  std::printf("{\"bench\":\"wire\",\"smoke\":%s,\"hw_threads\":%u", smoke ? "true" : "false",
              hw_threads);

  // --- zero_copy -------------------------------------------------------------
  const std::uint64_t broadcasts = smoke ? 64 : 512;
  const auto zc = run_zero_copy(broadcasts);
  std::printf(",\"zero_copy\":{\"peers\":%llu,\"payload_bytes\":65536,\"broadcasts\":%llu,"
              "\"payload_copies\":%llu,\"frames_shared\":%llu,\"fanout_per_copy\":%s,"
              "\"ns_per_broadcast\":%s}",
              static_cast<unsigned long long>(zc.peers),
              static_cast<unsigned long long>(zc.broadcasts),
              static_cast<unsigned long long>(zc.payload_copies),
              static_cast<unsigned long long>(zc.frames_shared),
              fmt2(zc.fanout_per_copy).c_str(), fmt1(zc.ns_per_broadcast).c_str());
  std::fflush(stdout);

  // --- stream ----------------------------------------------------------------
  if (loopback) {
    const std::uint64_t small_target = smoke ? 5000 : 200000;
    const std::uint64_t large_target = smoke ? 200 : 4000;
    const std::uint64_t pp_samples = smoke ? 200 : 2000;
    const auto small = run_stream_point(64, small_target);
    const auto large = run_stream_point(64 * 1024, large_target);
    double p50_us = 0, p99_us = 0;
    run_stream_pingpong(pp_samples, p50_us, p99_us);
    std::printf(",\"stream\":{\"small_frames_per_s\":%s,\"large_MBps\":%s,"
                "\"rtt_p50_us\":%s,\"rtt_p99_us\":%s}",
                fmt1(small.frames_per_s).c_str(), fmt1(large.mb_per_s).c_str(),
                fmt1(p50_us).c_str(), fmt1(p99_us).c_str());
  } else {
    std::printf(",\"stream\":null");
  }
  std::fflush(stdout);

  // --- io_threads ------------------------------------------------------------
#ifdef LEOPARD_NODE_BIN
  if (loopback) {
    const std::uint32_t requests = smoke ? 400 : 20000;
    const int port_base = 22000 + static_cast<int>(::getpid() % 7000);
    double io1 = 0, io4 = 0;
    std::printf(",\"io_threads\":{\"shards\":4,\"requests\":%u,\"records\":[", requests);
    bool first = true;
    for (const std::uint32_t io : {1u, 4u}) {
      const double kreqs = run_io_point(io, requests, port_base + static_cast<int>(io) * 8);
      if (io == 1) io1 = kreqs;
      if (io == 4) io4 = kreqs;
      std::printf("%s{\"io_threads\":%u,\"kreqs_per_s\":%s}", first ? "" : ",", io,
                  kreqs >= 0 ? fmt1(kreqs).c_str() : "null");
      first = false;
      std::fflush(stdout);
    }
    std::printf("],\"speedup_io4\":%s}",
                (io1 > 0 && io4 > 0) ? fmt2(io4 / io1).c_str() : "null");
  } else {
    std::printf(",\"io_threads\":null");
  }
#else
  std::printf(",\"io_threads\":null");
#endif

  // --- acceptance ------------------------------------------------------------
  // The single-copy broadcast invariant is exact arithmetic, not a timing:
  // one serialization per broadcast means fanout_per_copy == peers (15).
  const bool single_copy = zc.payload_copies == zc.broadcasts &&
                           zc.frames_shared == zc.broadcasts * (zc.peers - 1);
  std::printf(",\"acceptance\":{\"single_copy_broadcast\":%s,\"fanout_target\":15.0,"
              "\"fanout_per_copy\":%s,\"pass\":%s}}\n",
              single_copy ? "true" : "false", fmt2(zc.fanout_per_copy).c_str(),
              single_copy ? "true" : "false");

  if (!single_copy) {
    std::fprintf(stderr,
                 "acceptance %s: %llu serializations for %llu broadcasts x %llu peers "
                 "(want 1 per broadcast, %llu shared)\n",
                 enforce_acceptance ? "FAILED" : "missed (not enforced)",
                 static_cast<unsigned long long>(zc.payload_copies),
                 static_cast<unsigned long long>(zc.broadcasts),
                 static_cast<unsigned long long>(zc.peers),
                 static_cast<unsigned long long>(zc.frames_shared));
    if (enforce_acceptance) return 1;
  }
  return 0;
}
