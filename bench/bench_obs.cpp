// Observability hot-path cost record: ns/op for Counter::inc and
// Histogram::record through the per-thread-shard registry (the price every
// instrumented layer pays on its fast path), the sharded-vs-contended
// multi-thread ratio (what the no-RMW design buys under parallel recording),
// and the scrape cost for a registry the size of a real replica's.
//
// Emits one JSON record on stdout (diagnostics on stderr);
// tools/check_bench_regression.py compares the ratio metrics against the
// committed BENCH_obs.json. Acceptance (ISSUE): histogram record ≤ 50 ns/op
// single-threaded.
//
// Usage: bench_obs [--smoke] [--no-acceptance]
//   --smoke          short timings, no acceptance enforcement.
//   --no-acceptance  record but do not enforce the 50 ns/op ceiling (CI uses
//                    this so the regression checker is the sole verdict).
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <thread>
#include <vector>

#include "obs/histogram.hpp"
#include "obs/metrics.hpp"
#include "util/rng.hpp"

namespace lo = leopard::obs;
namespace lu = leopard::util;

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

std::string fmt1(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1f", v);
  return buf;
}

std::string fmt2(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f", v);
  return buf;
}

/// ns/op for `op` run `iters` times (median of three passes so a scheduler
/// blip cannot pollute the record).
template <typename Op>
double time_ns_per_op(std::uint64_t iters, Op&& op) {
  double best[3] = {0, 0, 0};
  for (double& pass : best) {
    const auto start = Clock::now();
    for (std::uint64_t i = 0; i < iters; ++i) op(i);
    pass = seconds_since(start) * 1e9 / static_cast<double>(iters);
  }
  if (best[0] > best[1]) std::swap(best[0], best[1]);
  if (best[1] > best[2]) std::swap(best[1], best[2]);
  if (best[0] > best[1]) std::swap(best[0], best[1]);
  return best[1];
}

/// The naive alternative the registry avoids: one shared bucket array updated
/// with fetch_add, so every recording thread contends on the same lines.
struct ContendedHistogram {
  std::vector<std::atomic<std::uint64_t>> buckets;
  std::atomic<std::uint64_t> count{0};
  std::atomic<std::uint64_t> sum{0};

  ContendedHistogram() : buckets(lo::HdrLayout::kBuckets) {}

  void record(std::uint64_t v) {
    buckets[lo::HdrLayout::index_of(v)].fetch_add(1, std::memory_order_relaxed);
    count.fetch_add(1, std::memory_order_relaxed);
    sum.fetch_add(v, std::memory_order_relaxed);
  }
};

/// Million records/s with `threads` recorders hammering `record`.
template <typename Record>
double mops_parallel(unsigned threads, std::uint64_t per_thread, Record&& record) {
  std::atomic<unsigned> ready{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> pool;
  const auto t0 = Clock::now();  // overwritten once everyone is ready
  std::atomic<double> elapsed{0};
  for (unsigned t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      lu::Rng rng(t + 1);
      ready.fetch_add(1);
      while (!go.load(std::memory_order_acquire)) {
      }
      for (std::uint64_t i = 0; i < per_thread; ++i) record(rng.uniform(1u << 20));
    });
  }
  while (ready.load() != threads) {
  }
  const auto start = Clock::now();
  go.store(true, std::memory_order_release);
  for (auto& th : pool) th.join();
  elapsed.store(seconds_since(start));
  (void)t0;
  return static_cast<double>(threads) * static_cast<double>(per_thread) /
         elapsed.load() / 1e6;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool enforce_acceptance = true;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
      enforce_acceptance = false;
    } else if (std::strcmp(argv[i], "--no-acceptance") == 0) {
      enforce_acceptance = false;
    } else {
      std::fprintf(stderr, "unknown flag: %s\nusage: %s [--smoke] [--no-acceptance]\n",
                   argv[i], argv[0]);
      return 2;
    }
  }

  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("{\"bench\":\"obs\",\"smoke\":%s,\"hw_threads\":%u", smoke ? "true" : "false",
              hw);

  // --- single-thread record cost --------------------------------------------
  const std::uint64_t iters = smoke ? 200'000 : 5'000'000;
  lo::Registry reg;
  auto counter = reg.counter("bench_ops_total", "ops");
  auto hist = reg.histogram("bench_latency_ns", "lat");

  counter.inc();       // touch the TLS block outside the timed region
  hist.record(1);
  const double counter_ns = time_ns_per_op(iters, [&](std::uint64_t) { counter.inc(); });
  // Spread values across bucket ranges so the bench pays realistic index math
  // (a fixed value would pin one cache line and flatter the number).
  const double hist_ns =
      time_ns_per_op(iters, [&](std::uint64_t i) { hist.record((i * 2654435761u) & 0xFFFFF); });
  const double since_ns =
      time_ns_per_op(iters, [&](std::uint64_t) { hist.record_since(lo::mono_now_ns() - 1000); });
  // Mops duals so the regression checker (floor = higher-is-better) can gate
  // the same numbers the ns figures report.
  std::printf(",\"record\":{\"counter_ns\":%s,\"histogram_ns\":%s,\"record_since_ns\":%s,"
              "\"counter_Mops\":%s,\"histogram_Mops\":%s}",
              fmt1(counter_ns).c_str(), fmt1(hist_ns).c_str(), fmt1(since_ns).c_str(),
              fmt1(1e3 / counter_ns).c_str(), fmt1(1e3 / hist_ns).c_str());
  std::fflush(stdout);

  // --- sharded vs contended under parallel recording ------------------------
  // Per-thread shard blocks (plain load+store) against one shared fetch_add
  // histogram. On ≥4 hardware threads the sharded path should win clearly;
  // the regression gate skips the ratio on smaller machines.
  const unsigned threads = hw >= 4 ? 4 : (hw == 0 ? 1 : hw);
  const std::uint64_t per_thread = smoke ? 100'000 : 2'000'000;
  lo::Registry preg;
  auto phist = preg.histogram("bench_parallel_ns", "lat");
  const double sharded_mops =
      mops_parallel(threads, per_thread, [&](std::uint64_t v) { phist.record(v); });
  ContendedHistogram contended;
  const double contended_mops =
      mops_parallel(threads, per_thread, [&](std::uint64_t v) { contended.record(v); });
  std::printf(",\"contention\":{\"threads\":%u,\"sharded_Mops\":%s,\"contended_Mops\":%s,"
              "\"shard_speedup\":%s}",
              threads, fmt1(sharded_mops).c_str(), fmt1(contended_mops).c_str(),
              contended_mops > 0 ? fmt2(sharded_mops / contended_mops).c_str() : "null");
  std::fflush(stdout);

  // --- scrape cost -----------------------------------------------------------
  // A registry shaped like a live replica's: ~40 counters, a few gauges, 8
  // histograms with data. Scrapes run on the transport thread, so their cost
  // is protocol jitter — worth tracking.
  lo::Registry sreg;
  for (int i = 0; i < 40; ++i) {
    sreg.counter("scrape_counter_total", "c", "idx=\"" + std::to_string(i) + "\"").inc(i);
  }
  for (int i = 0; i < 4; ++i) {
    sreg.gauge("scrape_gauge", "g", "idx=\"" + std::to_string(i) + "\"").set(i);
  }
  lu::Rng rng(9);
  for (int h = 0; h < 8; ++h) {
    auto sh = sreg.histogram("scrape_hist_ns", "h", "idx=\"" + std::to_string(h) + "\"");
    for (int i = 0; i < 1000; ++i) sh.record(rng.uniform(1u << 24));
  }
  std::size_t series = 0;
  const double render_us = time_ns_per_op(smoke ? 50 : 500, [&](std::uint64_t) {
                             series = sreg.render_prometheus().size();
                           }) /
                           1e3;
  std::printf(",\"scrape\":{\"exposition_bytes\":%zu,\"render_us\":%s}", series,
              fmt1(render_us).c_str());

  // --- acceptance ------------------------------------------------------------
  constexpr double kRecordCeilingNs = 50.0;
  const bool pass = hist_ns <= kRecordCeilingNs && counter_ns <= kRecordCeilingNs;
  std::printf(",\"acceptance\":{\"record_ceiling_ns\":%s,\"histogram_ns\":%s,"
              "\"counter_ns\":%s,\"pass\":%s}}\n",
              fmt1(kRecordCeilingNs).c_str(), fmt1(hist_ns).c_str(),
              fmt1(counter_ns).c_str(), pass ? "true" : "false");

  if (!pass) {
    std::fprintf(stderr,
                 "acceptance %s: histogram %.1f ns/op, counter %.1f ns/op "
                 "(ceiling %.0f ns)\n",
                 enforce_acceptance ? "FAILED" : "missed (not enforced)", hist_ns,
                 counter_ns, kRecordCeilingNs);
    if (enforce_acceptance) return 1;
  }
  return 0;
}
