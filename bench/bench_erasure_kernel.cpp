// Erasure-coding kernel throughput: encode/decode MB/s for the dispatched
// GF(256) kernel vs. the retained scalar log/exp reference, across
// k ∈ {4,16,32,64} and shard sizes 1KiB–1MiB, plus a worker-pool section
// (encode at k=32/1MiB for 1/2/4/8 lanes). Emits one JSON record so CI and
// future PRs can track the trajectory, plus the ISSUE acceptance checks
// (>= 10x encode speedup at k=32, 64KiB shards; >= 2x with 4 workers at
// k=32/1MiB where the machine has >= 4 hardware threads).
//
// Usage: bench_erasure_kernel [--smoke] [--no-acceptance]
//   --smoke          tiny sizes / short timings, for CI smoke runs.
//   --no-acceptance  record but do not enforce the acceptance targets (CI
//                    uses this so check_bench_regression.py — which knows
//                    how to absorb shared-runner noise — is the sole
//                    verdict).
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "erasure/gf256.hpp"
#include "erasure/reed_solomon.hpp"
#include "util/rng.hpp"
#include "util/worker_pool.hpp"

namespace le = leopard::erasure;
namespace lu = leopard::util;

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct Timing {
  double encode_mbps = 0;
  double decode_mbps = 0;
};

/// Times encode_into/decode_into for one (k, n, shard size) point under the
/// currently forced kernel. Throughput is message bytes per second.
Timing run_point(std::uint32_t k, std::uint32_t n, std::size_t shard_bytes, double min_time,
                 int max_iters) {
  const le::ReedSolomon rs(k, n);
  // Message sized so each shard is exactly shard_bytes (4-byte header included).
  const std::size_t msg_bytes = shard_bytes * k - 4;
  lu::Bytes msg(msg_bytes);
  lu::Rng rng(k * 1000003 + shard_bytes);
  rng.fill(msg.data(), msg.size());

  le::RsScratch scratch;
  Timing t;

  // Encode.
  (void)rs.encode_into(msg, scratch);  // warm-up: tables, arena, page faults
  {
    int iters = 0;
    const auto start = Clock::now();
    double elapsed = 0;
    do {
      (void)rs.encode_into(msg, scratch);
      ++iters;
      elapsed = seconds_since(start);
    } while (elapsed < min_time && iters < max_iters);
    t.encode_mbps = static_cast<double>(msg_bytes) * iters / elapsed / 1e6;
  }

  // Decode from parity shards only (forces the full matrix path; systematic
  // survivors would short-circuit through identity rows).
  const auto enc = rs.encode_into(msg, scratch);
  std::vector<lu::Bytes> parity;
  parity.reserve(k);
  std::vector<le::ShardView> survivors;
  for (std::uint32_t i = 0; i < k; ++i) {
    const auto view = enc.shard(n - k + i);
    parity.emplace_back(view.begin(), view.end());
    survivors.push_back(le::ShardView{n - k + i, parity.back()});
  }
  le::RsScratch dec_scratch;
  lu::Bytes out;
  {
    if (!rs.decode_into(survivors, dec_scratch, out) || out != msg) {
      std::fprintf(stderr, "FATAL: decode mismatch at k=%u shard=%zu\n", k, shard_bytes);
      std::exit(1);
    }
    int iters = 0;
    const auto start = Clock::now();
    double elapsed = 0;
    do {
      (void)rs.decode_into(survivors, dec_scratch, out);
      ++iters;
      elapsed = seconds_since(start);
    } while (elapsed < min_time && iters < max_iters);
    t.decode_mbps = static_cast<double>(msg_bytes) * iters / elapsed / 1e6;
  }
  return t;
}

std::string fmt1(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1f", v);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool enforce_acceptance = true;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--no-acceptance") == 0) {
      enforce_acceptance = false;
    } else {
      std::fprintf(stderr, "unknown flag: %s\nusage: %s [--smoke] [--no-acceptance]\n",
                   argv[i], argv[0]);
      return 2;
    }
  }

  const auto fast = le::Gf256::active_kernel();
  const double min_time = smoke ? 0.01 : 0.2;
  const int max_iters = smoke ? 20 : 100000;
  // The reference kernel is ~2 orders of magnitude slower; give it a shorter
  // window and skip it at sizes where a single pass already takes seconds.
  const double ref_min_time = smoke ? 0.01 : 0.05;
  const std::size_t ref_max_work = smoke ? (1u << 22) : (1u << 27);  // k*shard cap

  const std::vector<std::uint32_t> ks = {4, 16, 32, 64};
  const std::vector<std::size_t> shard_sizes =
      smoke ? std::vector<std::size_t>{1024, 4096}
            : std::vector<std::size_t>{1024, 16384, 65536, 1 << 20};

  std::printf("{\"bench\":\"erasure_kernel\",\"kernel\":\"%s\",\"smoke\":%s,\"records\":[",
              le::Gf256::kernel_name(fast), smoke ? "true" : "false");

  double accept_fast = 0, accept_ref = 0;
  bool first = true;
  for (const auto k : ks) {
    const std::uint32_t n = 3 * k;  // Leopard regime: n = 3f+1, k = f+1
    for (const auto shard : shard_sizes) {
      le::Gf256::force_kernel(fast);
      const Timing t = run_point(k, n, shard, min_time, max_iters);

      double ref_encode = 0;
      if (static_cast<std::size_t>(k) * shard <= ref_max_work) {
        le::Gf256::force_kernel(le::Gf256::Kernel::kScalarRef);
        const Timing ref = run_point(k, n, shard, ref_min_time, max_iters);
        le::Gf256::force_kernel(fast);
        ref_encode = ref.encode_mbps;
      }

      if (k == 32 && shard == 65536) {
        accept_fast = t.encode_mbps;
        accept_ref = ref_encode;
      }

      std::printf("%s{\"k\":%u,\"n\":%u,\"shard_bytes\":%zu,\"encode_MBps\":%s,"
                  "\"decode_MBps\":%s,\"ref_encode_MBps\":%s,\"encode_speedup\":%s}",
                  first ? "" : ",", k, n, shard, fmt1(t.encode_mbps).c_str(),
                  fmt1(t.decode_mbps).c_str(), fmt1(ref_encode).c_str(),
                  ref_encode > 0 ? fmt1(t.encode_mbps / ref_encode).c_str() : "null");
      first = false;
      std::fflush(stdout);
    }
  }

  // --- worker-pool encode section -------------------------------------------
  // Encode throughput at the large-datablock dispersal point (k=32, 1 MiB
  // shards) as the global pool grows. The speedup_w4 ratio is the tentpole
  // acceptance signal; it only binds on machines with >= 4 hardware threads
  // (a 1-core container measures the dispatch overhead, not the scaling).
  const unsigned hw_threads = std::max(1u, std::thread::hardware_concurrency());
  const std::size_t par_shard = smoke ? (1u << 14) : (1u << 20);
  auto& pool = leopard::util::WorkerPool::global();
  double w1_mbps = 0, w4_mbps = 0;
  std::printf("],\"parallel\":{\"k\":32,\"shard_bytes\":%zu,\"hw_threads\":%u,\"records\":[",
              par_shard, hw_threads);
  first = true;
  for (const std::size_t workers : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                                    std::size_t{8}}) {
    pool.resize(workers);
    const Timing t = run_point(32, 96, par_shard, min_time, max_iters);
    if (workers == 1) w1_mbps = t.encode_mbps;
    if (workers == 4) w4_mbps = t.encode_mbps;
    std::printf("%s{\"workers\":%zu,\"encode_MBps\":%s}", first ? "" : ",", workers,
                fmt1(t.encode_mbps).c_str());
    first = false;
    std::fflush(stdout);
  }
  pool.resize(1);
  const double w4_speedup = w1_mbps > 0 ? w4_mbps / w1_mbps : 0;
  std::printf("],\"speedup_w4\":%s}", w1_mbps > 0 ? fmt1(w4_speedup).c_str() : "null");

  // --- GFNI section ---------------------------------------------------------
  // vgf2p8affineqb vs the avx2 split-nibble kernel at the acceptance point
  // (k=32, 64KiB shards). Emitted as null where the ISA is absent so the
  // regression checker skips the metric instead of failing the record.
  if (le::Gf256::kernel_available(le::Gf256::Kernel::kGfni) &&
      le::Gf256::kernel_available(le::Gf256::Kernel::kAvx2)) {
    const std::size_t gfni_shard = smoke ? 4096 : 65536;
    le::Gf256::force_kernel(le::Gf256::Kernel::kGfni);
    const Timing gfni_t = run_point(32, 96, gfni_shard, min_time, max_iters);
    le::Gf256::force_kernel(le::Gf256::Kernel::kAvx2);
    const Timing avx2_t = run_point(32, 96, gfni_shard, min_time, max_iters);
    le::Gf256::force_kernel(fast);
    std::printf(",\"gfni\":{\"k\":32,\"shard_bytes\":%zu,\"encode_MBps\":%s,"
                "\"avx2_encode_MBps\":%s,\"vs_avx2\":%s}",
                gfni_shard, fmt1(gfni_t.encode_mbps).c_str(),
                fmt1(avx2_t.encode_mbps).c_str(),
                avx2_t.encode_mbps > 0 ? fmt1(gfni_t.encode_mbps / avx2_t.encode_mbps).c_str()
                                       : "null");
  } else {
    std::printf(",\"gfni\":null");
  }

  const double speedup = accept_ref > 0 ? accept_fast / accept_ref : 0;
  const bool par_ok = smoke || hw_threads < 4 || w4_speedup >= 2.0;
  std::printf(",\"acceptance\":{\"k\":32,\"shard_bytes\":65536,\"encode_MBps\":%s,"
              "\"ref_encode_MBps\":%s,\"speedup\":%s,\"target\":10.0,"
              "\"parallel_speedup_w4\":%s,\"parallel_target\":2.0,\"pass\":%s}}\n",
              fmt1(accept_fast).c_str(), fmt1(accept_ref).c_str(), fmt1(speedup).c_str(),
              fmt1(w4_speedup).c_str(),
              (smoke || (speedup >= 10.0 && par_ok)) ? "true" : "false");

  if (!smoke && speedup < 10.0) {
    std::fprintf(stderr, "acceptance %s: %.1fx < 10x at k=32, 64KiB shards\n",
                 enforce_acceptance ? "FAILED" : "missed (not enforced)", speedup);
    if (enforce_acceptance) return 1;
  }
  if (!par_ok) {
    std::fprintf(stderr,
                 "acceptance %s: %.1fx < 2x encode with 4 workers at k=32/1MiB "
                 "(%u hardware threads)\n",
                 enforce_acceptance ? "FAILED" : "missed (not enforced)", w4_speedup,
                 hw_threads);
    if (enforce_acceptance) return 1;
  }
  return 0;
}
