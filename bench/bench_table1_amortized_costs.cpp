// Table I: amortized communication complexity, scaling factor, and number of
// voting rounds for PBFT / SBFT / HotStuff / Leopard (honest leader, after
// GST). The O(·) rows come from the closed-form §V cost model; numeric
// scaling-factor evaluations at n = 100 vs n = 400 demonstrate the
// constant-vs-linear asymptotics concretely.
#include "bench_common.hpp"

#include "analysis/cost_model.hpp"

namespace {

using namespace leopard;

void BM_TableOne(benchmark::State& state) {
  std::vector<analysis::TableOneRow> rows;
  for (auto _ : state) {
    rows = analysis::table_one();
    benchmark::DoNotOptimize(rows);
  }
  state.counters["rows"] = static_cast<double>(rows.size());
}

void BM_ScalingFactorEvaluation(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  double leopard_sf = 0;
  double hotstuff_sf = 0;
  for (auto _ : state) {
    const auto p = analysis::leopard_params_for_constant_sf(n, 10, 100);
    leopard_sf = analysis::leopard_scaling_factor(n, p);
    hotstuff_sf = analysis::leader_based_scaling_factor(n, 800, true);
    benchmark::DoNotOptimize(leopard_sf);
  }
  state.counters["SF_leopard"] = leopard_sf;
  state.counters["SF_hotstuff"] = hotstuff_sf;
  state.counters["gamma_leopard"] = analysis::scale_up_gamma(leopard_sf);
  state.counters["gamma_hotstuff"] = analysis::scale_up_gamma(hotstuff_sf);
}

}  // namespace

BENCHMARK(BM_TableOne)->Iterations(1000);
BENCHMARK(BM_ScalingFactorEvaluation)->Arg(100)->Arg(400)->Iterations(1000);

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  std::printf("\n=== Table I: amortized cost when the leader is honest and after GST ===\n");
  std::printf("%-24s%-12s%-12s%-10s%-12s%-10s\n", "Protocol", "leader", "non-leader",
              "SF", "vote(opt)", "vote(faulty)");
  for (const auto& row : leopard::analysis::table_one()) {
    std::printf("%-24s%-12s%-12s%-10s%-12d%-10d\n", row.protocol.c_str(),
                row.leader_complexity.c_str(), row.replica_complexity.c_str(),
                row.scaling_factor.c_str(), row.voting_rounds_optimistic,
                row.voting_rounds_faulty);
  }

  std::printf("\nNumeric scaling factors (α = λ(n−1), τ = 100, batch = 800):\n");
  std::printf("%-8s%-16s%-16s\n", "n", "SF_Leopard", "SF_HotStuff");
  for (std::uint32_t n : {16u, 100u, 400u, 600u}) {
    const auto p = leopard::analysis::leopard_params_for_constant_sf(n, 10, 100);
    std::printf("%-8u%-16.3f%-16.1f\n", n, leopard::analysis::leopard_scaling_factor(n, p),
                leopard::analysis::leader_based_scaling_factor(n, 800, true));
  }
  return 0;
}
