// Figure 1: throughput vs scale for the leader-dissemination baselines
// (HotStuff and the BFT-SMaRt/PBFT stand-in) at 128-byte and 1024-byte
// payloads. Reproduces the paper's motivating observation: throughput drops
// sharply as n grows, for every payload size.
//
// PBFT's all-to-all voting is O(n^2) messages per block; simulated points cap
// at n = 128 to keep the bench's wall-clock bounded (the trend is established
// well before that).
#include "bench_common.hpp"

namespace {

using namespace leopard;
using bench::TablePrinter;

TablePrinter& table() {
  static TablePrinter t("Figure 1: baseline throughput vs n (Kreq/s)",
                        {"protocol", "payload", "n", "kreqs/s"});
  return t;
}

void run_point(benchmark::State& state, harness::Protocol proto, std::uint32_t payload) {
  harness::ExperimentConfig cfg;
  cfg.protocol = proto;
  cfg.n = static_cast<std::uint32_t>(state.range(0));
  cfg.payload_size = payload;
  cfg.batch_size = 800;
  cfg.warmup = sim::kSecond;
  cfg.measure = 3 * sim::kSecond;
  const auto r = bench::run_and_count(state, cfg);
  table().add_row({harness::protocol_name(proto), std::to_string(payload),
                   std::to_string(cfg.n), bench::fmt(r.throughput_kreqs)});
}

void BM_HotStuff_p128(benchmark::State& state) {
  run_point(state, harness::Protocol::kHotStuff, 128);
}
void BM_HotStuff_p1024(benchmark::State& state) {
  run_point(state, harness::Protocol::kHotStuff, 1024);
}
void BM_BftSmart_p128(benchmark::State& state) {
  run_point(state, harness::Protocol::kPbft, 128);
}
void BM_BftSmart_p1024(benchmark::State& state) {
  run_point(state, harness::Protocol::kPbft, 1024);
}

}  // namespace

BENCHMARK(BM_HotStuff_p128)->Arg(16)->Arg(32)->Arg(64)->Arg(128)->Arg(256)->Arg(400)
    ->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_HotStuff_p1024)->Arg(16)->Arg(32)->Arg(64)->Arg(128)->Arg(256)
    ->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_BftSmart_p128)->Arg(16)->Arg(32)->Arg(64)->Arg(128)
    ->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_BftSmart_p1024)->Arg(16)->Arg(32)->Arg(64)->Arg(128)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
