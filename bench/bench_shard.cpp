// Sharded-consensus scaling: committed kreq/s vs shard count S ∈ {1, 2, 4}
// at fixed n = 4, in the simulator (shard::ShardedSimCluster — the same
// construction shard_test and the chaos sharded scenario assert against)
// and optionally on a real loopback cluster (forked leopard_node processes,
// like socket_cluster_test). Emits one JSON record so CI and future PRs can
// track the trajectory, plus the ISSUE acceptance check: >= 3x sim kreq/s
// at S = 4 over S = 1.
//
// Only the SIM speedups are machine-portable and gated by
// check_bench_regression.py; the loopback numbers are wall-clock on shared
// hardware and are recorded purely as trajectory data.
//
// Usage: bench_shard [--smoke] [--sim-only] [--no-acceptance]
//   --smoke          short windows / light batches, for CI smoke runs.
//   --sim-only       skip the loopback section (CI gate uses this: the sim
//                    ratio is the portable signal).
//   --no-acceptance  record but do not enforce the >= 3x target.
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "shard/sim_cluster.hpp"
#include "sim/time.hpp"

#ifdef LEOPARD_NODE_BIN
#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#endif

namespace {

using namespace leopard;

std::string fmt1(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1f", v);
  return buf;
}

std::string fmt2(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f", v);
  return buf;
}

struct SimPoint {
  std::uint32_t shards = 1;
  double offered_kreqs = 0;
  double kreqs = 0;
};

/// Saturated committed throughput of an S-shard sim cluster at n = 4:
/// offered load auto-sizes to 0.9 × S × single-shard capacity, so the
/// measured ack rate only reaches S× the S=1 number if the sharded system
/// actually absorbs it (each machine hosts one shard's leader plus S-1
/// follower cores on its single modeled CPU/NIC).
SimPoint run_sim_point(std::uint32_t shards, bool smoke) {
  shard::ShardedClusterConfig cfg;
  cfg.n = 4;
  cfg.shards = shards;
  cfg.seed = 5;
  if (smoke) {
    cfg.datablock_requests = 300;
    cfg.bftblock_links = 20;
  }
  shard::ShardedSimCluster cluster(cfg);

  const sim::SimTime warmup = smoke ? sim::kSecond : 2 * sim::kSecond;
  const sim::SimTime measure = smoke ? 2 * sim::kSecond : 4 * sim::kSecond;
  cluster.run_until(warmup);
  const auto before = cluster.client_acked();
  cluster.run_until(warmup + measure);
  const auto after = cluster.client_acked();

  SimPoint p;
  p.shards = shards;
  p.offered_kreqs = cluster.offered_load() / 1e3;
  p.kreqs = static_cast<double>(after - before) / sim::to_seconds(measure) / 1e3;
  return p;
}

#ifdef LEOPARD_NODE_BIN

pid_t spawn(const std::vector<std::string>& args, const std::string& out_path) {
  const pid_t pid = ::fork();
  if (pid != 0) return pid;
  const int fd = ::open(out_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd >= 0) {
    ::dup2(fd, STDOUT_FILENO);
    ::dup2(fd, STDERR_FILENO);
    ::close(fd);
  }
  std::vector<char*> argv;
  argv.push_back(const_cast<char*>(LEOPARD_NODE_BIN));
  for (const auto& a : args) argv.push_back(const_cast<char*>(a.c_str()));
  argv.push_back(nullptr);
  ::execv(LEOPARD_NODE_BIN, argv.data());
  std::perror("execv leopard_node");
  std::_Exit(127);
}

/// End-to-end acked kreq/s of a real 4-replica loopback cluster at S shards:
/// wall time of a closed-loop client committing `requests` requests
/// (includes dial + first-batch rampup, so short runs understate).
/// Expect S to HURT here, not help: all five processes share one machine's
/// cores and each replica's S instances share one event-loop thread, so
/// sharding adds envelope/mux overhead without adding parallelism. The
/// number records that single-host cost honestly; the scaling claim lives
/// in the sim section, whose one-lane-per-core machines model the
/// multi-core deployment sharding is for. Returns < 0 on any failure — the
/// loopback section is trajectory data, not a gate.
double run_loopback_point(std::uint32_t shards, std::uint32_t requests, int port_base) {
  namespace fs = std::filesystem;
  const fs::path work =
      fs::temp_directory_path() / ("leopard_bench_shard." + std::to_string(::getpid()) +
                                   "." + std::to_string(shards));
  std::error_code ec;
  fs::create_directories(work, ec);
  if (ec) return -1;

  const fs::path manifest = work / "cluster.conf";
  {
    std::ofstream m(manifest);
    m << "protocol leopard\nn 4\nseed 7\npayload_size 128\n"
      << "datablock_requests 200\nbftblock_links 8\n"
      << "datablock_max_wait_ms 5\nproposal_max_wait_ms 2\n"
      << "view_timeout_ms 60000\nbatch_size 100\n"
      << "shards " << shards << "\n";
    for (int id = 0; id < 4; ++id) {
      m << "node " << id << " 127.0.0.1:" << (port_base + id) << "\n";
    }
  }

  std::vector<pid_t> replicas;
  for (int id = 0; id < 4; ++id) {
    replicas.push_back(spawn({"--manifest", manifest.string(), "--id", std::to_string(id)},
                             (work / ("replica" + std::to_string(id) + ".out")).string()));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(300));

  const auto start = std::chrono::steady_clock::now();
  const fs::path client_out = work / "client.out";
  const pid_t client = spawn({"--manifest", manifest.string(), "--client", "--id", "100",
                              "--requests", std::to_string(requests), "--window", "1024",
                              "--timeout", "120"},
                             client_out.string());
  int status = 0;
  ::waitpid(client, &status, 0);
  const double elapsed = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start).count();

  for (const auto pid : replicas) ::kill(pid, SIGTERM);
  for (const auto pid : replicas) ::waitpid(pid, nullptr, 0);

  bool acked_all = false;
  {
    std::ifstream in(client_out);
    std::stringstream ss;
    ss << in.rdbuf();
    acked_all = ss.str().find("acked=" + std::to_string(requests)) != std::string::npos;
  }
  fs::remove_all(work, ec);

  if (!WIFEXITED(status) || WEXITSTATUS(status) != 0 || !acked_all || elapsed <= 0) {
    std::fprintf(stderr, "loopback S=%u: client failed (status %d, acked_all=%d)\n",
                 shards, status, acked_all ? 1 : 0);
    return -1;
  }
  return static_cast<double>(requests) / elapsed / 1e3;
}

#endif  // LEOPARD_NODE_BIN

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool sim_only = false;
  bool enforce_acceptance = true;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--sim-only") == 0) {
      sim_only = true;
    } else if (std::strcmp(argv[i], "--no-acceptance") == 0) {
      enforce_acceptance = false;
    } else {
      std::fprintf(stderr, "unknown flag: %s\nusage: %s [--smoke] [--sim-only] [--no-acceptance]\n",
                   argv[i], argv[0]);
      return 2;
    }
  }

  const std::vector<std::uint32_t> shard_counts = {1, 2, 4};

  std::printf("{\"bench\":\"shard\",\"smoke\":%s,\"sim\":{\"n\":4,\"records\":[",
              smoke ? "true" : "false");
  std::vector<SimPoint> sim_points;
  bool first = true;
  for (const auto s : shard_counts) {
    const auto p = run_sim_point(s, smoke);
    sim_points.push_back(p);
    std::printf("%s{\"shards\":%u,\"offered_kreqs\":%s,\"kreqs_per_s\":%s}",
                first ? "" : ",", p.shards, fmt1(p.offered_kreqs).c_str(),
                fmt1(p.kreqs).c_str());
    first = false;
    std::fflush(stdout);
  }
  std::printf("]}");

  const double s1 = sim_points[0].kreqs;
  const double speedup_s2 = s1 > 0 ? sim_points[1].kreqs / s1 : 0;
  const double speedup_s4 = s1 > 0 ? sim_points[2].kreqs / s1 : 0;

  // --- loopback section (trajectory only; skipped under --sim-only) ---------
#ifdef LEOPARD_NODE_BIN
  if (!sim_only) {
    const std::uint32_t requests = smoke ? 400 : 20000;
    const int port_base = 21000 + static_cast<int>(::getpid() % 7000);
    std::printf(",\"loopback\":{\"requests\":%u,\"records\":[", requests);
    first = true;
    double l1 = 0, l4 = 0;
    for (std::size_t i = 0; i < shard_counts.size(); ++i) {
      const double kreqs =
          run_loopback_point(shard_counts[i], requests, port_base + static_cast<int>(i) * 8);
      if (shard_counts[i] == 1) l1 = kreqs;
      if (shard_counts[i] == 4) l4 = kreqs;
      std::printf("%s{\"shards\":%u,\"kreqs_per_s\":%s}", first ? "" : ",", shard_counts[i],
                  kreqs >= 0 ? fmt1(kreqs).c_str() : "null");
      first = false;
      std::fflush(stdout);
    }
    std::printf("],\"speedup_s4\":%s}",
                (l1 > 0 && l4 > 0) ? fmt2(l4 / l1).c_str() : "null");
  } else {
    std::printf(",\"loopback\":null");
  }
#else
  (void)sim_only;
  std::printf(",\"loopback\":null");
#endif

  const bool pass = speedup_s4 >= 3.0;
  std::printf(",\"scaling\":{\"sim_speedup_s2\":%s,\"sim_speedup_s4\":%s}",
              fmt2(speedup_s2).c_str(), fmt2(speedup_s4).c_str());
  std::printf(",\"acceptance\":{\"target\":3.0,\"sim_speedup_s4\":%s,\"pass\":%s}}\n",
              fmt2(speedup_s4).c_str(), (smoke || pass) ? "true" : "false");

  if (!smoke && !pass) {
    std::fprintf(stderr, "acceptance %s: sim S=4 speedup %.2fx < 3x over S=1\n",
                 enforce_acceptance ? "FAILED" : "missed (not enforced)", speedup_s4);
    if (enforce_acceptance) return 1;
  }
  return 0;
}
