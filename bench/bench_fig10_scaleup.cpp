// Figure 10: effectiveness of scaling up — throughput (Mbps of confirmed
// payload) and latency under per-replica bandwidth throttled from 20 to
// 200 Mbps (shared-duplex NIC, the NetEm substitution of DESIGN.md §2).
//
// Claims reproduced: throughput grows linearly with bandwidth in both
// systems; Leopard converts ≈1/2 of added capacity into throughput at every
// scale, HotStuff's conversion rate decays like 1/(n−1); Leopard's latency is
// higher but the gap narrows as bandwidth grows.
#include "bench_common.hpp"

namespace {

using namespace leopard;

bench::TablePrinter& table() {
  static bench::TablePrinter t(
      "Figure 10: throughput and latency vs per-replica bandwidth (shared duplex)",
      {"protocol", "n", "bw_Mbps", "tput_Mbps", "latency_s"});
  return t;
}

void run_point(benchmark::State& state, harness::Protocol proto) {
  harness::ExperimentConfig cfg;
  cfg.protocol = proto;
  cfg.n = static_cast<std::uint32_t>(state.range(0));
  cfg.bandwidth_bps = static_cast<double>(state.range(1)) * 1e6;
  cfg.shared_duplex = true;
  if (proto == harness::Protocol::kLeopard) {
    cfg.datablock_requests = 1000;  // fixed batches, as the paper does
    cfg.bftblock_links = 10;
    cfg.warmup = 6 * sim::kSecond;
    cfg.measure = 8 * sim::kSecond;
  } else {
    cfg.batch_size = 400;
    cfg.warmup = 4 * sim::kSecond;
    cfg.measure = 8 * sim::kSecond;
  }
  const auto r = bench::run_and_count(state, cfg);
  state.counters["tput_Mbps"] = r.throughput_mbps;
  table().add_row({harness::protocol_name(proto), std::to_string(cfg.n),
                   std::to_string(state.range(1)), bench::fmt(r.throughput_mbps, 2),
                   bench::fmt(r.mean_latency_sec, 2)});
}

void BM_Leopard(benchmark::State& state) { run_point(state, harness::Protocol::kLeopard); }
void BM_HotStuff(benchmark::State& state) { run_point(state, harness::Protocol::kHotStuff); }

}  // namespace

BENCHMARK(BM_Leopard)
    ->ArgsProduct({{4, 16, 64, 128}, {20, 40, 80, 100, 200}})
    ->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_HotStuff)
    ->ArgsProduct({{4, 16, 64, 128}, {20, 40, 80, 100, 200}})
    ->Iterations(1)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
