// Figure 13: view-change time and communication costs as n grows. The leader
// is stopped at a random-ish point mid-run; we measure trigger→new-view
// latency and the traffic split: total, new-leader send/receive (the
// new-view message is O(n)-sized), and per-replica send/receive.
//
// Reproduces: time stays in seconds even at hundreds of replicas; total
// communication is dominated by the new leader's new-view multicast.
#include "bench_common.hpp"

namespace {

using namespace leopard;

bench::TablePrinter& table() {
  static bench::TablePrinter t(
      "Figure 13: view-change time and communication costs",
      {"n", "time_s", "total_MB", "leader_send_MB", "leader_recv_MB", "replica_send_KB",
       "replica_recv_KB"});
  return t;
}

void BM_ViewChange(benchmark::State& state) {
  harness::ExperimentConfig cfg;
  cfg.n = static_cast<std::uint32_t>(state.range(0));
  cfg.datablock_requests = 500;
  cfg.bftblock_links = 5;
  cfg.offered_load = 2000.0 * cfg.n;  // keep some BFTblocks outstanding
  cfg.crash_leader_at = 25 * sim::kSecond / 10;  // 2.5 s: mid-run, after progress
  cfg.view_timeout = 2 * sim::kSecond;
  cfg.client_resubmit_timeout = 3 * sim::kSecond;
  cfg.warmup = sim::kSecond;
  cfg.measure = 12 * sim::kSecond;
  const auto r = bench::run_and_count(state, cfg);

  state.counters["vc_time_s"] = r.view_change_duration_sec;
  state.counters["vc_total_MB"] = r.vc_total_bytes / 1e6;
  state.counters["view_changes"] = static_cast<double>(r.view_changes);

  table().add_row({std::to_string(cfg.n), bench::fmt(r.view_change_duration_sec, 2),
                   bench::fmt(r.vc_total_bytes / 1e6, 2),
                   bench::fmt(r.vc_leader_send_bytes / 1e6, 2),
                   bench::fmt(r.vc_leader_recv_bytes / 1e6, 2),
                   bench::fmt(r.vc_replica_send_bytes / 1e3),
                   bench::fmt(r.vc_replica_recv_bytes / 1e3)});
}

}  // namespace

BENCHMARK(BM_ViewChange)->Arg(4)->Arg(8)->Arg(13)->Arg(32)->Arg(64)->Arg(128)->Arg(400)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
