// Ablation: the scaling factor in practice — measured bytes per confirmed
// bit at the most-loaded replica, with the datablock size α held FIXED vs
// scaled as α = λ(n−1) (the paper's recipe for a constant scaling factor,
// §V). The measured values are compared against the closed-form model.
//
// Expected: with fixed α the leader's cost per confirmed bit grows with n
// (link hashes and votes stop amortizing); with adaptive α it stays flat
// near the model's ≈2.
#include "bench_common.hpp"

#include "analysis/cost_model.hpp"

namespace {

using namespace leopard;

bench::TablePrinter& table() {
  static bench::TablePrinter t(
      "Ablation: measured scaling factor, fixed vs adaptive datablock size",
      {"n", "alpha_mode", "datablock", "SF_measured", "SF_model"});
  return t;
}

void run_point(benchmark::State& state, bool adaptive) {
  harness::ExperimentConfig cfg;
  cfg.n = static_cast<std::uint32_t>(state.range(0));
  cfg.bftblock_links = 10;
  // λ = 8 requests per (n−1): α = 8·(n−1) requests, vs a fixed 200.
  cfg.datablock_requests =
      adaptive ? std::max<std::uint32_t>(8 * (cfg.n - 1), 64) : 200;
  cfg.warmup = 3 * sim::kSecond;
  cfg.measure = 6 * sim::kSecond;
  const auto r = bench::run_and_count(state, cfg);

  // Scaling factor = max over replicas of (send+recv bits per confirmed bit);
  // the leader and the averaged non-leader are the two candidates.
  const double confirmed_bits = r.throughput_kreqs * 1e3 * 128 * 8;
  if (confirmed_bits <= 0) return;
  const double leader_cost = (r.leader_send_bps + r.leader_recv_bps) / confirmed_bits;
  const double replica_cost =
      (r.replica_breakdown.total_send() + r.replica_breakdown.total_recv()) / confirmed_bits;
  const double sf_measured = std::max(leader_cost, replica_cost);

  analysis::LeopardParams p;
  p.alpha_bytes = static_cast<double>(cfg.datablock_requests) * 128.0;
  p.tau = cfg.bftblock_links;
  const double sf_model = analysis::leopard_scaling_factor(cfg.n, p);

  state.counters["SF_measured"] = sf_measured;
  state.counters["SF_model"] = sf_model;
  table().add_row({std::to_string(cfg.n), adaptive ? "adaptive" : "fixed",
                   std::to_string(cfg.datablock_requests), bench::fmt(sf_measured, 2),
                   bench::fmt(sf_model, 2)});
}

void BM_FixedAlpha(benchmark::State& state) { run_point(state, false); }
void BM_AdaptiveAlpha(benchmark::State& state) { run_point(state, true); }

}  // namespace

BENCHMARK(BM_FixedAlpha)->Arg(8)->Arg(16)->Arg(32)->Arg(64)
    ->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_AdaptiveAlpha)->Arg(8)->Arg(16)->Arg(32)->Arg(64)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
