// Figure 11: bandwidth usage of the leader, Leopard vs HotStuff, as n grows.
// Reproduces: HotStuff's leader climbs into multi-Gbps territory while
// Leopard's leader stays far lower and roughly flat — the decoupling removed
// the hot spot.
#include "bench_common.hpp"

namespace {

using namespace leopard;

bench::TablePrinter& table() {
  static bench::TablePrinter t("Figure 11: leader bandwidth usage (Mbps)",
                               {"protocol", "n", "leader_Mbps", "kreqs/s"});
  return t;
}

void run_point(benchmark::State& state, harness::Protocol proto) {
  harness::ExperimentConfig cfg;
  cfg.protocol = proto;
  cfg.n = static_cast<std::uint32_t>(state.range(0));
  if (proto == harness::Protocol::kLeopard) {
    bench::apply_table2_batches(cfg);
  } else {
    cfg.batch_size = 800;
    cfg.warmup = sim::kSecond;
    cfg.measure = 3 * sim::kSecond;
  }
  const auto r = bench::run_and_count(state, cfg);
  const double mbps = (r.leader_send_bps + r.leader_recv_bps) / 1e6;
  state.counters["leader_Mbps"] = mbps;
  table().add_row({harness::protocol_name(proto), std::to_string(cfg.n),
                   bench::fmt(mbps), bench::fmt(r.throughput_kreqs)});
}

void BM_Leopard(benchmark::State& state) { run_point(state, harness::Protocol::kLeopard); }
void BM_HotStuff(benchmark::State& state) { run_point(state, harness::Protocol::kHotStuff); }

}  // namespace

BENCHMARK(BM_Leopard)->Arg(4)->Arg(16)->Arg(32)->Arg(64)->Arg(128)->Arg(256)->Arg(400)
    ->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_HotStuff)->Arg(4)->Arg(16)->Arg(32)->Arg(64)->Arg(128)->Arg(256)->Arg(300)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
