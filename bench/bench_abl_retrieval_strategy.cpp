// Ablation: committee retrieval with erasure codes vs the naive
// "ask the leader" strategy (§IV's rejected intuitive solution).
//
// Measured: per-responder bytes under the committee scheme (each of f+1
// responders ships one chunk + Merkle proof). Modelled: the naive scheme,
// where the leader re-sends the full α-byte datablock for every miss — an
// O(n) hot spot that §V shows would erase the workload-balancing win.
#include "bench_common.hpp"

#include "analysis/cost_model.hpp"

namespace {

using namespace leopard;

bench::TablePrinter& table() {
  static bench::TablePrinter t(
      "Ablation: committee+erasure retrieval vs naive ask-the-leader",
      {"n", "committee_KB", "naive_KB", "reduction", "time_ms"});
  return t;
}

void BM_RetrievalStrategy(benchmark::State& state) {
  harness::ExperimentConfig cfg;
  cfg.n = static_cast<std::uint32_t>(state.range(0));
  cfg.datablock_requests = 2000;
  cfg.bftblock_links = 4;
  cfg.offered_load = 4000.0 * cfg.n / 4.0;
  cfg.byzantine_count = 1;
  cfg.byzantine_spec.selective_recipients = 2 * ((cfg.n - 1) / 3);
  cfg.warmup = 2 * sim::kSecond;
  cfg.measure = 8 * sim::kSecond;
  const auto r = bench::run_and_count(state, cfg);

  // Naive strategy: the single responder (the leader) ships the entire
  // datablock per miss.
  const double alpha = 2000.0 * 128.0;
  const double naive_per_responder = alpha;
  const double reduction =
      r.respond_bytes_per_response > 0 ? naive_per_responder / r.respond_bytes_per_response
                                       : 0;
  state.counters["committee_KB"] = r.respond_bytes_per_response / 1e3;
  state.counters["reduction_x"] = reduction;
  table().add_row({std::to_string(cfg.n), bench::fmt(r.respond_bytes_per_response / 1e3),
                   bench::fmt(naive_per_responder / 1e3),
                   bench::fmt(reduction, 1) + "x",
                   bench::fmt(r.mean_recovery_time_sec * 1e3)});
}

}  // namespace

BENCHMARK(BM_RetrievalStrategy)->Arg(4)->Arg(16)->Arg(64)->Arg(128)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
