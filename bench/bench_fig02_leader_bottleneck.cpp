// Figure 2: HotStuff throughput AND the leader's bandwidth utilization as n
// grows (128-byte payload). The paper's motivating measurement: the leader's
// egress climbs with scale while throughput collapses — the Eq. (1)
// bottleneck Leopard removes.
#include "bench_common.hpp"

namespace {

using namespace leopard;

bench::TablePrinter& table() {
  static bench::TablePrinter t(
      "Figure 2: HotStuff throughput and leader bandwidth vs n (p = 128 B)",
      {"n", "kreqs/s", "leader_Gbps"});
  return t;
}

void BM_HotStuffLeaderLoad(benchmark::State& state) {
  harness::ExperimentConfig cfg;
  cfg.protocol = harness::Protocol::kHotStuff;
  cfg.n = static_cast<std::uint32_t>(state.range(0));
  cfg.batch_size = 800;
  cfg.warmup = sim::kSecond;
  cfg.measure = 3 * sim::kSecond;
  const auto r = bench::run_and_count(state, cfg);
  const double leader_gbps = (r.leader_send_bps + r.leader_recv_bps) / 1e9;
  state.counters["leader_Gbps"] = leader_gbps;
  table().add_row({std::to_string(cfg.n), bench::fmt(r.throughput_kreqs),
                   bench::fmt(leader_gbps, 2)});
}

}  // namespace

BENCHMARK(BM_HotStuffLeaderLoad)
    ->Arg(4)->Arg(16)->Arg(32)->Arg(64)->Arg(128)->Arg(256)->Arg(300)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
