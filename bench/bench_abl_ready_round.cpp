// Ablation: the cost of the ready round when no faults occur.
//
// Leopard adds one extra voting round (Ready, Algorithm 3) before a datablock
// may be linked, purely to guarantee retrievability under Byzantine makers.
// This bench quantifies what that guarantee costs in the fault-free case:
// throughput, leader traffic, and confirmation latency with and without the
// round. Expected: a small constant overhead (≈n Ready hashes per datablock),
// i.e. the insurance is nearly free — the paper's justification for always
// paying it.
#include "bench_common.hpp"

namespace {

using namespace leopard;

bench::TablePrinter& table() {
  static bench::TablePrinter t("Ablation: ready round on/off (fault-free)",
                               {"n", "ready_round", "kreqs/s", "latency_s", "leader_Mbps"});
  return t;
}

void run_point(benchmark::State& state, bool ready_round) {
  harness::ExperimentConfig cfg;
  cfg.n = static_cast<std::uint32_t>(state.range(0));
  bench::apply_table2_batches(cfg);
  cfg.enable_ready_round = ready_round;
  const auto r = bench::run_and_count(state, cfg);
  table().add_row({std::to_string(cfg.n), ready_round ? "on" : "off",
                   bench::fmt(r.throughput_kreqs), bench::fmt(r.mean_latency_sec, 2),
                   bench::fmt((r.leader_send_bps + r.leader_recv_bps) / 1e6)});
}

void BM_WithReadyRound(benchmark::State& state) { run_point(state, true); }
void BM_WithoutReadyRound(benchmark::State& state) { run_point(state, false); }

}  // namespace

BENCHMARK(BM_WithReadyRound)->Arg(16)->Arg(64)->Arg(128)
    ->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_WithoutReadyRound)->Arg(16)->Arg(64)->Arg(128)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
